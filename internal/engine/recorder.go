package engine

import (
	"sync"
	"time"

	"vanguard/internal/trace"
)

// SweepRecorder is the engine flight recorder: when attached via
// Config.Recorder it captures one span per unit lifecycle phase
// (enqueued → dequeued → cache probe → compute → terminal) plus
// lane-group formation records, and renders them as a
// trace.SweepReport. One recorder may span several engine runs (a CLI
// invocation enqueues unit sets as it goes); unit indexes are global
// across runs in enumeration order, so the span ordering of a recording
// is deterministic even though wall times vary.
//
// All hook methods are safe for concurrent use by the worker pool. A nil
// recorder costs the engine one pointer test per hook site and nothing
// else — the contract TestRecorderOffByteIdentical and
// TestRecorderOffZeroAlloc pin.
type SweepRecorder struct {
	mu      sync.Mutex
	start   time.Time
	workers int
	units   []unitRec
	groups  []trace.SweepGroup
}

// unitRec is the mutable per-unit lifecycle record; all times are
// offsets from the recorder's creation.
type unitRec struct {
	label, key, batch string
	enq               time.Duration
	deq               time.Duration
	probeStart        time.Duration
	probeEnd          time.Duration
	runStart          time.Duration
	end               time.Duration
	worker            int // -1 until dequeued
	probed            bool
	hit               bool
	ran               bool
	outcome           string
	width             int
}

// NewSweepRecorder returns an empty recorder; its creation instant is
// the zero of every recorded timestamp.
func NewSweepRecorder() *SweepRecorder {
	return &SweepRecorder{start: time.Now()}
}

// since is the recorder clock: elapsed time since creation. start is
// immutable, so reading the clock takes no lock.
func (r *SweepRecorder) since() time.Duration { return time.Since(r.start) }

// recorderAddRun registers one engine run's units (all enqueued now) and
// its scheduling tasks as group records, returning the global base index
// of the run's unit 0. Generic because it reads Unit[T] metadata; a
// method cannot be.
func recorderAddRun[T any](r *SweepRecorder, units []Unit[T], tasks [][]int, jobs, lanes int) int {
	now := r.since()
	r.mu.Lock()
	defer r.mu.Unlock()
	base := len(r.units)
	for i := range units {
		r.units = append(r.units, unitRec{
			label:  units[i].Label,
			key:    units[i].Key,
			batch:  units[i].BatchKey,
			enq:    now,
			worker: -1,
		})
	}
	if jobs > r.workers {
		r.workers = jobs
	}
	for _, t := range tasks {
		g := trace.SweepGroup{
			BatchKey: units[t[0]].BatchKey,
			Width:    len(t),
			Units:    make([]int, len(t)),
		}
		for j, i := range t {
			g.Units[j] = base + i
		}
		if len(t) == 1 {
			switch {
			case g.BatchKey == "":
				g.ScalarReason = "no-batch-key"
			case lanes <= 1:
				g.ScalarReason = "lanes-off"
			default:
				g.ScalarReason = "singleton"
			}
		}
		r.groups = append(r.groups, g)
	}
	return base
}

// dequeue marks unit u (global index) leaving the queue onto worker wid.
func (r *SweepRecorder) dequeue(u, wid int) {
	now := r.since()
	r.mu.Lock()
	rec := &r.units[u]
	rec.deq = now
	rec.worker = wid
	r.mu.Unlock()
}

// probe records the unit's cache probe: it began at start (on the
// recorder clock) and resolved now as a hit or a miss.
func (r *SweepRecorder) probe(u int, start time.Duration, hit bool) {
	now := r.since()
	r.mu.Lock()
	rec := &r.units[u]
	rec.probed = true
	rec.hit = hit
	rec.probeStart = start
	rec.probeEnd = now
	r.mu.Unlock()
}

// computeStart marks the unit entering its build/sim compute phase.
func (r *SweepRecorder) computeStart(u int) {
	now := r.since()
	r.mu.Lock()
	rec := &r.units[u]
	rec.ran = true
	rec.runStart = now
	r.mu.Unlock()
}

// finish records the unit's terminal outcome. width is the lane-group
// width the unit computed at (1 = scalar, 0 = never computed).
func (r *SweepRecorder) finish(u int, outcome string, width int) {
	now := r.since()
	r.mu.Lock()
	rec := &r.units[u]
	rec.outcome = outcome
	rec.width = width
	rec.end = now
	r.mu.Unlock()
}

// finishRun closes out one engine run: units [base, base+n) still
// without a terminal outcome were drained by a sibling failure and
// cancel now, so every enqueued unit ends with exactly one terminal —
// the conservation invariant trace.SweepReport.Check enforces.
func (r *SweepRecorder) finishRun(base, n int) {
	now := r.since()
	r.mu.Lock()
	for u := base; u < base+n; u++ {
		rec := &r.units[u]
		if rec.outcome == "" {
			rec.outcome = trace.SweepCancel
			rec.end = now
		}
	}
	r.mu.Unlock()
}

// Report renders the recording as a trace.SweepReport: spans in unit
// enumeration order with a fixed phase order (unit, queue, probe,
// compute) per unit, queue-delay and unit-latency histograms, and the
// wasted-work total (compute time of failed units plus queue residency
// of cancelled units). Span boundaries quantize to microseconds through
// a single monotonic floor, so the nesting invariant survives rounding.
func (r *SweepRecorder) Report() *trace.SweepReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	us := func(d time.Duration) int64 { return int64(d / time.Microsecond) }
	s := &trace.SweepReport{
		Schema:      trace.SweepSchema,
		Workers:     r.workers,
		Units:       len(r.units),
		QueueDelay:  &trace.Hist{},
		UnitLatency: &trace.Hist{},
	}
	for u := range r.units {
		rec := &r.units[u]
		end := rec.end
		outcome := rec.outcome
		if outcome == "" {
			// Report taken mid-run: charge the unit as cancelled-at-now so
			// the recording still satisfies Check.
			outcome = trace.SweepCancel
			end = r.since()
		}
		if us(end) > s.WallUS {
			s.WallUS = us(end)
		}
		s.Spans = append(s.Spans, trace.SweepSpan{
			Unit: u, Label: rec.label, Phase: trace.SweepPhaseUnit,
			Worker: rec.worker, StartUS: us(rec.enq), DurUS: us(end) - us(rec.enq),
			Outcome: outcome, Key: rec.key,
		})
		deq := rec.deq
		if rec.worker < 0 {
			deq = end // never dequeued: queued for its whole life
		}
		qw := us(deq) - us(rec.enq)
		s.QueueWaitUS += qw
		s.QueueDelay.Observe(qw)
		s.Spans = append(s.Spans, trace.SweepSpan{
			Unit: u, Label: rec.label, Phase: trace.SweepPhaseQueue,
			Worker: -1, StartUS: us(rec.enq), DurUS: qw,
		})
		switch outcome {
		case trace.SweepFail:
			s.Failed++
		case trace.SweepCancel:
			s.Cancelled++
			s.WastedUS += qw
		}
		if rec.probed {
			po := trace.SweepMiss
			if rec.hit {
				po = trace.SweepHit
				s.CacheHits++
			} else {
				s.CacheMisses++
			}
			s.Spans = append(s.Spans, trace.SweepSpan{
				Unit: u, Label: rec.label, Phase: trace.SweepPhaseProbe,
				Worker: rec.worker, StartUS: us(rec.probeStart),
				DurUS: us(rec.probeEnd) - us(rec.probeStart), Outcome: po,
			})
		}
		if rec.ran {
			cw := us(end) - us(rec.runStart)
			s.Spans = append(s.Spans, trace.SweepSpan{
				Unit: u, Label: rec.label, Phase: trace.SweepPhaseCompute,
				Worker: rec.worker, StartUS: us(rec.runStart), DurUS: cw,
				Batch: rec.batch, Width: rec.width,
			})
			switch outcome {
			case trace.SweepRetire:
				s.UnitLatency.Observe(cw)
			case trace.SweepFail:
				s.WastedUS += cw
			}
		}
	}
	s.Groups = append([]trace.SweepGroup(nil), r.groups...)
	return s
}
