package engine

import (
	"fmt"
	"html/template"
	"io"
	"net/http"
	"sort"

	"vanguard/internal/bpred"
)

// BpredClassTotals accumulates one predictability class across every
// probed run the monitor has observed: how many static branches landed in
// the class, how many dynamic executions they cover, and how many of
// those executions mispredicted.
type BpredClassTotals struct {
	Branches    int64 `json:"branches"`
	Execs       int64 `json:"execs"`
	Mispredicts int64 `json:"mispredicts"`
}

// bpredMon is the monitor's predictor-observatory accumulator, folded
// from bpred.StudyReports by ObserveBpred and exposed at /metrics
// (vanguard_bpred_* families) and /debug/bpred. Guarded by Monitor.mu.
type bpredMon struct {
	studies     int64
	resolves    int64
	mispredicts int64
	classes     map[string]BpredClassTotals
	providers   map[string]int64 // provider table -> times it supplied the prediction
	predictors  map[string]bool  // predictor names seen (dashboard header)
}

// ObserveBpred folds one probed run's study into the monitor's running
// predictor-observatory counters (harness calls it once per simulated
// result carrying a Bpred section, after the engine returns, so cache
// hits count the same as fresh simulations).
func (m *Monitor) ObserveBpred(st *bpred.StudyReport) {
	if st == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b := &m.bpred
	if b.classes == nil {
		b.classes = make(map[string]BpredClassTotals)
		b.providers = make(map[string]int64)
		b.predictors = make(map[string]bool)
	}
	b.studies++
	b.resolves += st.Resolves
	b.mispredicts += st.Mispredicts
	b.predictors[st.Predictor] = true
	for class, ct := range st.Classes {
		t := b.classes[class]
		t.Branches += int64(ct.Branches)
		t.Execs += ct.Execs
		t.Mispredicts += ct.Mispredicts
		b.classes[class] = t
	}
	for i := range st.Providers {
		b.providers[st.Providers[i].Table] += st.Providers[i].Use
	}
}

// bpredSnapshot copies the observatory counters under the lock; sorted
// key slices make the exposition deterministic.
func (m *Monitor) bpredSnapshot() (b bpredMon, classes, tables, preds []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b = bpredMon{
		studies:     m.bpred.studies,
		resolves:    m.bpred.resolves,
		mispredicts: m.bpred.mispredicts,
		classes:     make(map[string]BpredClassTotals, len(m.bpred.classes)),
		providers:   make(map[string]int64, len(m.bpred.providers)),
	}
	for k, v := range m.bpred.classes {
		b.classes[k] = v
		classes = append(classes, k)
	}
	for k, v := range m.bpred.providers {
		b.providers[k] = v
		tables = append(tables, k)
	}
	for k := range m.bpred.predictors {
		preds = append(preds, k)
	}
	sort.Strings(classes)
	sort.Strings(tables)
	sort.Strings(preds)
	return b, classes, tables, preds
}

// writeBpredMetrics appends the vanguard_bpred_* families to a /metrics
// response. Families are emitted only once a probed run has been
// observed, so probe-off invocations expose an unchanged metric set.
func (m *Monitor) writeBpredMetrics(w io.Writer) {
	b, classes, tables, _ := m.bpredSnapshot()
	if b.studies == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP vanguard_bpred_studies_total Probed runs folded into the predictor observatory.\n")
	fmt.Fprintf(w, "# TYPE vanguard_bpred_studies_total counter\nvanguard_bpred_studies_total %d\n", b.studies)
	fmt.Fprintf(w, "# HELP vanguard_bpred_resolves_total Conditional resolutions observed across probed runs.\n")
	fmt.Fprintf(w, "# TYPE vanguard_bpred_resolves_total counter\nvanguard_bpred_resolves_total %d\n", b.resolves)
	fmt.Fprintf(w, "# HELP vanguard_bpred_mispredicts_total Mispredicted resolutions observed across probed runs.\n")
	fmt.Fprintf(w, "# TYPE vanguard_bpred_mispredicts_total counter\nvanguard_bpred_mispredicts_total %d\n", b.mispredicts)
	if len(classes) > 0 {
		fmt.Fprintf(w, "# HELP vanguard_bpred_class_branches_total Static branches per predictability class across probed runs.\n")
		fmt.Fprintf(w, "# TYPE vanguard_bpred_class_branches_total counter\n")
		for _, c := range classes {
			fmt.Fprintf(w, "vanguard_bpred_class_branches_total{class=\"%s\"} %d\n", promLabelEscape(c), b.classes[c].Branches)
		}
		fmt.Fprintf(w, "# HELP vanguard_bpred_class_execs_total Dynamic branch executions per predictability class across probed runs.\n")
		fmt.Fprintf(w, "# TYPE vanguard_bpred_class_execs_total counter\n")
		for _, c := range classes {
			fmt.Fprintf(w, "vanguard_bpred_class_execs_total{class=\"%s\"} %d\n", promLabelEscape(c), b.classes[c].Execs)
		}
		fmt.Fprintf(w, "# HELP vanguard_bpred_class_mispredicts_total Mispredictions per predictability class across probed runs.\n")
		fmt.Fprintf(w, "# TYPE vanguard_bpred_class_mispredicts_total counter\n")
		for _, c := range classes {
			fmt.Fprintf(w, "vanguard_bpred_class_mispredicts_total{class=\"%s\"} %d\n", promLabelEscape(c), b.classes[c].Mispredicts)
		}
	}
	if len(tables) > 0 {
		fmt.Fprintf(w, "# HELP vanguard_bpred_provider_use_total Predictions supplied per predictor table across probed runs.\n")
		fmt.Fprintf(w, "# TYPE vanguard_bpred_provider_use_total counter\n")
		for _, tb := range tables {
			fmt.Fprintf(w, "vanguard_bpred_provider_use_total{table=\"%s\"} %d\n", promLabelEscape(tb), b.providers[tb])
		}
	}
}

// bpredTmpl renders the /debug/bpred panel: the observatory's class and
// provider rollups in the same dependency-free style as /debug/sweep.
var bpredTmpl = template.Must(template.New("bpred").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="1">
<title>vanguard bpred</title>
<style>
body { font-family: monospace; margin: 1.5em; background: #fff; color: #111; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.5em; }
table { border-collapse: collapse; }
td, th { padding: 0.15em 0.8em 0.15em 0; text-align: left; vertical-align: baseline; }
.bar { display: inline-block; height: 0.8em; background: #36c; vertical-align: baseline; }
.num { text-align: right; }
</style>
</head>
<body>
<h1>vanguard predictor observatory</h1>
{{if .Studies}}<p>{{.Studies}} probed runs ({{.Predictors}}): {{.Resolves}} resolutions,
{{.Mispredicts}} mispredicts ({{printf "%.2f%%" .MispPct}}).</p>
<h2>predictability classes</h2>
<table>
<tr><th>class</th><th>branches</th><th></th><th>execs</th><th>mispredicts</th><th>misp rate</th></tr>
{{range .Classes}}<tr><td>{{.Name}}</td><td class="num">{{.Branches}}</td>
<td><span class="bar" style="width: {{.Pct}}px"></span></td>
<td class="num">{{.Execs}}</td><td class="num">{{.Mispredicts}}</td>
<td class="num">{{printf "%.2f%%" .MispPct}}</td></tr>
{{end}}</table>
<h2>provider tables</h2>
<table>
<tr><th>table</th><th>predictions supplied</th><th></th></tr>
{{range .Providers}}<tr><td>{{.Name}}</td><td class="num">{{.Use}}</td>
<td><span class="bar" style="width: {{.Pct}}px"></span></td></tr>
{{end}}</table>
{{else}}<p>(no probed runs yet — run with -bpred-report or -bpred-csv)</p>
{{end}}<p><a href="/progress">progress JSON</a> · <a href="/metrics">metrics</a> · <a href="/debug/sweep">sweep</a></p>
</body>
</html>
`))

type bpredClassRow struct {
	Name                         string
	Branches, Execs, Mispredicts int64
	MispPct                      float64
	Pct                          int
}

type bpredProviderRow struct {
	Name string
	Use  int64
	Pct  int
}

type bpredPage struct {
	Studies, Resolves, Mispredicts int64
	MispPct                        float64
	Predictors                     string
	Classes                        []bpredClassRow
	Providers                      []bpredProviderRow
}

// bpredDashboard serves /debug/bpred from the live accumulators.
func (m *Monitor) bpredDashboard(w http.ResponseWriter, _ *http.Request) {
	b, classes, tables, preds := m.bpredSnapshot()
	page := bpredPage{Studies: b.studies, Resolves: b.resolves, Mispredicts: b.mispredicts}
	if b.resolves > 0 {
		page.MispPct = 100 * float64(b.mispredicts) / float64(b.resolves)
	}
	for i, p := range preds {
		if i > 0 {
			page.Predictors += ", "
		}
		page.Predictors += p
	}
	const barPx = 300
	var maxExecs int64 = 1
	for _, c := range classes {
		if e := b.classes[c].Execs; e > maxExecs {
			maxExecs = e
		}
	}
	for _, c := range classes {
		ct := b.classes[c]
		row := bpredClassRow{
			Name: c, Branches: ct.Branches, Execs: ct.Execs, Mispredicts: ct.Mispredicts,
			Pct: int(float64(ct.Execs) / float64(maxExecs) * barPx),
		}
		if ct.Execs > 0 {
			row.MispPct = 100 * float64(ct.Mispredicts) / float64(ct.Execs)
		}
		page.Classes = append(page.Classes, row)
	}
	var maxUse int64 = 1
	for _, tb := range tables {
		if u := b.providers[tb]; u > maxUse {
			maxUse = u
		}
	}
	for _, tb := range tables {
		page.Providers = append(page.Providers, bpredProviderRow{
			Name: tb, Use: b.providers[tb],
			Pct: int(float64(b.providers[tb]) / float64(maxUse) * barPx),
		})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	bpredTmpl.Execute(w, page)
}
