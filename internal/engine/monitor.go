package engine

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"vanguard/internal/trace"
)

// Monitor makes an engine run inspectable while it executes: workers
// report unit starts/ends into it, and it renders a consistent progress
// snapshot as JSON (/progress), Prometheus text (/metrics), or a
// single-line terminal status. One monitor can span several engine.Run
// calls (a CLI invocation enqueues unit sets as it goes); totals are
// additive. All methods are safe for concurrent use.
type Monitor struct {
	mu          sync.Mutex
	started     time.Time
	total       int
	done        int
	failed      int
	cacheHits   int
	cacheMisses int
	jobs        int // high-water of configured workers, for the idle-ETA divisor
	ewma        time.Duration
	active      map[int]activeUnit
	nextSlot    int
	// latency histograms computed-unit wall times in microseconds
	// (power-of-two buckets, the /metrics histogram and the /debug/sweep
	// bars); busy accumulates worker-occupied time across retired units
	// for the busy-ratio gauge.
	latency trace.Hist
	busy    time.Duration
	// attrSlots accumulates per-cause issue-slot totals from attributed
	// runs (harness calls ObserveAttr once per simulated result). Keys are
	// the attr cause keys; the map is passed by value semantics only
	// through Snapshot copies.
	attrSlots map[string]int64
	// bpred accumulates the predictor-observatory rollup from probed runs
	// (ObserveBpred; /metrics vanguard_bpred_* and /debug/bpred).
	bpred bpredMon
}

type activeUnit struct {
	label string
	since time.Time
}

// ewmaAlpha weights the latest unit wall time in the moving average:
// ewma = (1-alpha)*ewma + alpha*latest.
const ewmaAlpha = 0.2

// NewMonitor returns an empty monitor; hand it to engine.Config.Monitor
// and to Serve/StartStatus.
func NewMonitor() *Monitor {
	return &Monitor{started: time.Now(), active: make(map[int]activeUnit)}
}

// ObserveAttr folds one attributed run's per-cause issue-slot totals
// (attr.Report.Slots; passed as a plain map so the engine stays
// independent of the attr package) into the monitor's running counters,
// exposed at /metrics as vanguard_attr_slots_total{cause="..."}.
func (m *Monitor) ObserveAttr(slots map[string]int64) {
	m.mu.Lock()
	if m.attrSlots == nil {
		m.attrSlots = make(map[string]int64, len(slots))
	}
	for cause, n := range slots {
		m.attrSlots[cause] += n
	}
	m.mu.Unlock()
}

// attrSnapshot copies the per-cause counters in sorted key order.
func (m *Monitor) attrSnapshot() ([]string, map[string]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.attrSlots) == 0 {
		return nil, nil
	}
	causes := make([]string, 0, len(m.attrSlots))
	out := make(map[string]int64, len(m.attrSlots))
	for cause, n := range m.attrSlots {
		causes = append(causes, cause)
		out[cause] = n
	}
	sort.Strings(causes)
	return causes, out
}

// promLabelEscape escapes a label value per the Prometheus text
// exposition format: backslash, double quote, and newline.
func promLabelEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// addRun records a new engine.Run joining this monitor.
func (m *Monitor) addRun(units, jobs int) {
	m.mu.Lock()
	m.total += units
	if jobs > m.jobs {
		m.jobs = jobs
	}
	m.mu.Unlock()
}

// beginUnit registers a unit starting on some worker and returns the
// slot token endUnit takes.
func (m *Monitor) beginUnit(label string) int {
	m.mu.Lock()
	slot := m.nextSlot
	m.nextSlot++
	m.active[slot] = activeUnit{label: label, since: time.Now()}
	m.mu.Unlock()
	return slot
}

// endUnit retires a unit: cache hits complete without touching the
// latency average (they measure the cache, not the simulator), failures
// count separately, and everything else feeds the EWMA.
func (m *Monitor) endUnit(slot int, wall time.Duration, cacheHit, failed bool) {
	m.mu.Lock()
	delete(m.active, slot)
	m.done++
	m.busy += wall
	if !cacheHit {
		m.cacheMisses++
	}
	switch {
	case failed:
		m.failed++
	case cacheHit:
		m.cacheHits++
	default:
		if m.ewma == 0 {
			m.ewma = wall
		} else {
			m.ewma = time.Duration((1-ewmaAlpha)*float64(m.ewma) + ewmaAlpha*float64(wall))
		}
		m.latency.Observe(int64(wall / time.Microsecond))
	}
	m.mu.Unlock()
}

// WorkerUnit is one in-flight unit in a Progress snapshot.
type WorkerUnit struct {
	Slot      int     `json:"slot"`
	Label     string  `json:"label"`
	RunningMS float64 `json:"running_ms"`
}

// Progress is one consistent snapshot of an engine run. ETA is the
// remaining-unit estimate remaining×EWMA÷active-workers; it is zero
// until the first computed unit retires.
type Progress struct {
	Total       int          `json:"total"`
	Done        int          `json:"done"`
	Failed      int          `json:"failed"`
	CacheHits   int          `json:"cache_hits"`
	CacheMisses int          `json:"cache_misses"`
	Workers     []WorkerUnit `json:"workers,omitempty"`
	EWMAUnitMS  float64      `json:"ewma_unit_ms"`
	ETAMS       float64      `json:"eta_ms"`
	ElapsedMS   float64      `json:"elapsed_ms"`
	// Jobs is the high-water configured worker count; QueueDepth counts
	// units enqueued but not yet started; BusyRatio is the fraction of
	// available worker-time (elapsed × jobs) spent executing units,
	// including the still-running tails of active units.
	Jobs       int     `json:"jobs"`
	QueueDepth int     `json:"queue_depth"`
	BusyRatio  float64 `json:"busy_ratio"`
	// UnitLatencyUS is the computed-unit wall-time histogram
	// (microseconds), present once the first computed unit retires.
	UnitLatencyUS *trace.Hist `json:"unit_latency_us,omitempty"`
}

// Snapshot returns the current progress under one lock acquisition, so
// every field is mutually consistent.
func (m *Monitor) Snapshot() Progress {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	p := Progress{
		Total:       m.total,
		Done:        m.done,
		Failed:      m.failed,
		CacheHits:   m.cacheHits,
		CacheMisses: m.cacheMisses,
		EWMAUnitMS:  float64(m.ewma) / float64(time.Millisecond),
		ElapsedMS:   float64(now.Sub(m.started)) / float64(time.Millisecond),
		Jobs:        m.jobs,
	}
	busy := m.busy
	for slot, a := range m.active {
		p.Workers = append(p.Workers, WorkerUnit{
			Slot: slot, Label: a.label,
			RunningMS: float64(now.Sub(a.since)) / float64(time.Millisecond),
		})
		busy += now.Sub(a.since)
	}
	sort.Slice(p.Workers, func(i, j int) bool { return p.Workers[i].Slot < p.Workers[j].Slot })
	if p.QueueDepth = m.total - m.done - len(m.active); p.QueueDepth < 0 {
		p.QueueDepth = 0
	}
	if avail := now.Sub(m.started) * time.Duration(m.jobs); avail > 0 {
		p.BusyRatio = float64(busy) / float64(avail)
		if p.BusyRatio > 1 {
			p.BusyRatio = 1
		}
	}
	if m.latency.Count > 0 {
		h := m.latency
		p.UnitLatencyUS = &h
	}
	if remaining := m.total - m.done; remaining > 0 && m.ewma > 0 {
		div := len(m.active)
		if div == 0 {
			div = m.jobs
		}
		if div == 0 {
			div = 1
		}
		p.ETAMS = float64(remaining) * p.EWMAUnitMS / float64(div)
	}
	return p
}

// StatusLine renders the snapshot as one terminal line (no newline), the
// -progress display.
func (m *Monitor) StatusLine() string {
	p := m.Snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d units", p.Done, p.Total)
	if p.Failed > 0 {
		fmt.Fprintf(&sb, ", %d failed", p.Failed)
	}
	fmt.Fprintf(&sb, ", %d cache hits, %d active", p.CacheHits, len(p.Workers))
	if p.EWMAUnitMS > 0 {
		fmt.Fprintf(&sb, ", %.0f ms/unit", p.EWMAUnitMS)
	}
	if p.ETAMS > 0 {
		fmt.Fprintf(&sb, ", ETA %s", time.Duration(p.ETAMS*float64(time.Millisecond)).Round(time.Second))
	}
	return sb.String()
}

// StartStatus redraws the status line on w every interval until the
// returned stop function is called; stop erases the line. Intended for
// stderr so it composes with redirected stdout reports.
func (m *Monitor) StartStatus(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		width := 0
		draw := func() {
			line := m.StatusLine()
			pad := width - len(line)
			if pad < 0 {
				pad = 0
			}
			fmt.Fprintf(w, "\r%s%s", line, strings.Repeat(" ", pad))
			width = len(line)
		}
		for {
			select {
			case <-t.C:
				draw()
			case <-quit:
				fmt.Fprintf(w, "\r%s\r", strings.Repeat(" ", width))
				return
			}
		}
	}()
	return func() {
		close(quit)
		wg.Wait()
	}
}

// Handler returns the monitor's HTTP surface: /progress (the Snapshot as
// JSON), /metrics (Prometheus text exposition), and the standard
// /debug/pprof endpoints, all on a private mux so attaching a monitor
// never pollutes http.DefaultServeMux.
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(m.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		p := m.Snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# HELP vanguard_units_total Units enqueued on the engine.\n")
		fmt.Fprintf(w, "# TYPE vanguard_units_total counter\nvanguard_units_total %d\n", p.Total)
		fmt.Fprintf(w, "# HELP vanguard_units_done Units completed (including failures).\n")
		fmt.Fprintf(w, "# TYPE vanguard_units_done gauge\nvanguard_units_done %d\n", p.Done)
		fmt.Fprintf(w, "# HELP vanguard_units_failed Units that returned an error.\n")
		fmt.Fprintf(w, "# TYPE vanguard_units_failed gauge\nvanguard_units_failed %d\n", p.Failed)
		fmt.Fprintf(w, "# HELP vanguard_cache_hits_total Units served from the run cache.\n")
		fmt.Fprintf(w, "# TYPE vanguard_cache_hits_total counter\nvanguard_cache_hits_total %d\n", p.CacheHits)
		fmt.Fprintf(w, "# HELP vanguard_cache_misses_total Units computed because the run cache had no entry (includes failures).\n")
		fmt.Fprintf(w, "# TYPE vanguard_cache_misses_total counter\nvanguard_cache_misses_total %d\n", p.CacheMisses)
		fmt.Fprintf(w, "# HELP vanguard_unit_errors_total Units that returned an error (alias of vanguard_units_failed for error-rate dashboards).\n")
		fmt.Fprintf(w, "# TYPE vanguard_unit_errors_total counter\nvanguard_unit_errors_total %d\n", p.Failed)
		fmt.Fprintf(w, "# HELP vanguard_workers_active Units currently executing.\n")
		fmt.Fprintf(w, "# TYPE vanguard_workers_active gauge\nvanguard_workers_active %d\n", len(p.Workers))
		fmt.Fprintf(w, "# HELP vanguard_queue_depth Units enqueued but not yet started.\n")
		fmt.Fprintf(w, "# TYPE vanguard_queue_depth gauge\nvanguard_queue_depth %d\n", p.QueueDepth)
		fmt.Fprintf(w, "# HELP vanguard_worker_busy_ratio Fraction of available worker-time spent executing units.\n")
		fmt.Fprintf(w, "# TYPE vanguard_worker_busy_ratio gauge\nvanguard_worker_busy_ratio %g\n", p.BusyRatio)
		fmt.Fprintf(w, "# HELP vanguard_unit_latency_ewma_seconds EWMA wall time of computed units.\n")
		fmt.Fprintf(w, "# TYPE vanguard_unit_latency_ewma_seconds gauge\nvanguard_unit_latency_ewma_seconds %g\n", p.EWMAUnitMS/1000)
		fmt.Fprintf(w, "# HELP vanguard_eta_seconds Estimated time to drain the remaining units.\n")
		fmt.Fprintf(w, "# TYPE vanguard_eta_seconds gauge\nvanguard_eta_seconds %g\n", p.ETAMS/1000)
		fmt.Fprintf(w, "# HELP vanguard_unit_latency_seconds Wall time of computed units.\n")
		fmt.Fprintf(w, "# TYPE vanguard_unit_latency_seconds histogram\n")
		var cum int64
		if h := p.UnitLatencyUS; h != nil {
			for i, n := range h.Buckets {
				if n == 0 {
					continue
				}
				cum += n
				_, hi := trace.BucketBounds(i)
				fmt.Fprintf(w, "vanguard_unit_latency_seconds_bucket{le=\"%g\"} %d\n", float64(hi)/1e6, cum)
			}
			fmt.Fprintf(w, "vanguard_unit_latency_seconds_bucket{le=\"+Inf\"} %d\n", h.Count)
			fmt.Fprintf(w, "vanguard_unit_latency_seconds_sum %g\n", float64(h.Sum)/1e6)
			fmt.Fprintf(w, "vanguard_unit_latency_seconds_count %d\n", h.Count)
		} else {
			fmt.Fprintf(w, "vanguard_unit_latency_seconds_bucket{le=\"+Inf\"} 0\n")
			fmt.Fprintf(w, "vanguard_unit_latency_seconds_sum 0\n")
			fmt.Fprintf(w, "vanguard_unit_latency_seconds_count 0\n")
		}
		if causes, slots := m.attrSnapshot(); len(causes) > 0 {
			fmt.Fprintf(w, "# HELP vanguard_attr_slots_total Issue slots charged per attribution cause across attributed runs.\n")
			fmt.Fprintf(w, "# TYPE vanguard_attr_slots_total counter\n")
			for _, cause := range causes {
				fmt.Fprintf(w, "vanguard_attr_slots_total{cause=\"%s\"} %d\n", promLabelEscape(cause), slots[cause])
			}
		}
		m.writeBpredMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/sweep", m.sweepDashboard)
	mux.HandleFunc("/debug/bpred", m.bpredDashboard)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// sweepTmpl renders the /debug/sweep dashboard: a dependency-free
// server-side page in the /debug/pprof spirit — worker occupancy bars,
// cache hit-rate, the unit-latency histogram, and the ETA, refreshed by
// the browser once a second.
var sweepTmpl = template.Must(template.New("sweep").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="1">
<title>vanguard sweep</title>
<style>
body { font-family: monospace; margin: 1.5em; background: #fff; color: #111; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.5em; }
table { border-collapse: collapse; }
td, th { padding: 0.15em 0.8em 0.15em 0; text-align: left; vertical-align: baseline; }
.bar { display: inline-block; height: 0.8em; background: #36c; vertical-align: baseline; }
.hit { background: #3a3; } .num { text-align: right; }
</style>
</head>
<body>
<h1>vanguard sweep</h1>
<p>{{.Done}}/{{.Total}} units done{{if .Failed}}, <strong>{{.Failed}} failed</strong>{{end}},
{{.QueueDepth}} queued, {{printf "%.0f%%" .HitPct}} cache hit-rate,
busy {{printf "%.0f%%" .BusyPct}}{{if .ETA}}, ETA {{.ETA}}{{end}}.</p>
<h2>workers ({{len .Workers}} active / {{.Jobs}} configured)</h2>
<table>
{{range .Workers}}<tr><td>{{.Label}}</td>
<td><span class="bar" style="width: {{.Pct}}px"></span></td>
<td class="num">{{printf "%.0f" .RunningMS}} ms</td></tr>
{{else}}<tr><td>(idle)</td></tr>
{{end}}</table>
<h2>unit latency</h2>
{{if .Lat}}<table>
{{range .Lat}}<tr><td>{{.Range}}</td>
<td><span class="bar hit" style="width: {{.Pct}}px"></span></td>
<td class="num">{{.N}}</td></tr>
{{end}}</table>
{{else}}<p>(no computed units yet)</p>
{{end}}<p><a href="/progress">progress JSON</a> · <a href="/metrics">metrics</a> · <a href="/debug/pprof/">pprof</a></p>
</body>
</html>
`))

// sweepRow is one occupancy bar; sweepBucket one latency-histogram row.
type sweepRow struct {
	Label     string
	RunningMS float64
	Pct       int
}

type sweepBucket struct {
	Range string
	N     int64
	Pct   int
}

type sweepPage struct {
	Total, Done, Failed, QueueDepth, Jobs int
	HitPct, BusyPct                       float64
	ETA                                   string
	Workers                               []sweepRow
	Lat                                   []sweepBucket
}

// sweepDashboard serves /debug/sweep from the live Snapshot.
func (m *Monitor) sweepDashboard(w http.ResponseWriter, _ *http.Request) {
	p := m.Snapshot()
	page := sweepPage{
		Total: p.Total, Done: p.Done, Failed: p.Failed,
		QueueDepth: p.QueueDepth, Jobs: p.Jobs,
		BusyPct: p.BusyRatio * 100,
	}
	if probes := p.CacheHits + p.CacheMisses; probes > 0 {
		page.HitPct = 100 * float64(p.CacheHits) / float64(probes)
	}
	if p.ETAMS > 0 {
		page.ETA = time.Duration(p.ETAMS * float64(time.Millisecond)).Round(time.Second).String()
	}
	const barPx = 300
	maxMS := 1.0
	for _, wu := range p.Workers {
		if wu.RunningMS > maxMS {
			maxMS = wu.RunningMS
		}
	}
	for _, wu := range p.Workers {
		page.Workers = append(page.Workers, sweepRow{
			Label: wu.Label, RunningMS: wu.RunningMS,
			Pct: int(wu.RunningMS / maxMS * barPx),
		})
	}
	if h := p.UnitLatencyUS; h != nil {
		var maxN int64 = 1
		for _, n := range h.Buckets {
			if n > maxN {
				maxN = n
			}
		}
		for i, n := range h.Buckets {
			if n == 0 {
				continue
			}
			lo, hi := trace.BucketBounds(i)
			r := fmt.Sprintf("%v–%v", time.Duration(lo)*time.Microsecond, time.Duration(hi)*time.Microsecond)
			if i == 0 {
				r = fmt.Sprintf("≤%v", time.Duration(hi-1)*time.Microsecond)
			}
			page.Lat = append(page.Lat, sweepBucket{
				Range: r, N: n, Pct: int(float64(n) / float64(maxN) * barPx),
			})
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	sweepTmpl.Execute(w, page)
}

// Serve binds addr (":0" picks a free port), serves Handler on it in a
// background goroutine, and returns the bound address plus a close
// function that shuts the server down and releases the listener (the
// server otherwise lives for the life of the process).
func (m *Monitor) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: m.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
