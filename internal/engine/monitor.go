package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Monitor makes an engine run inspectable while it executes: workers
// report unit starts/ends into it, and it renders a consistent progress
// snapshot as JSON (/progress), Prometheus text (/metrics), or a
// single-line terminal status. One monitor can span several engine.Run
// calls (a CLI invocation enqueues unit sets as it goes); totals are
// additive. All methods are safe for concurrent use.
type Monitor struct {
	mu          sync.Mutex
	started     time.Time
	total       int
	done        int
	failed      int
	cacheHits   int
	cacheMisses int
	jobs        int // high-water of configured workers, for the idle-ETA divisor
	ewma        time.Duration
	active      map[int]activeUnit
	nextSlot    int
	// attrSlots accumulates per-cause issue-slot totals from attributed
	// runs (harness calls ObserveAttr once per simulated result). Keys are
	// the attr cause keys; the map is passed by value semantics only
	// through Snapshot copies.
	attrSlots map[string]int64
}

type activeUnit struct {
	label string
	since time.Time
}

// ewmaAlpha weights the latest unit wall time in the moving average:
// ewma = (1-alpha)*ewma + alpha*latest.
const ewmaAlpha = 0.2

// NewMonitor returns an empty monitor; hand it to engine.Config.Monitor
// and to Serve/StartStatus.
func NewMonitor() *Monitor {
	return &Monitor{started: time.Now(), active: make(map[int]activeUnit)}
}

// ObserveAttr folds one attributed run's per-cause issue-slot totals
// (attr.Report.Slots; passed as a plain map so the engine stays
// independent of the attr package) into the monitor's running counters,
// exposed at /metrics as vanguard_attr_slots_total{cause="..."}.
func (m *Monitor) ObserveAttr(slots map[string]int64) {
	m.mu.Lock()
	if m.attrSlots == nil {
		m.attrSlots = make(map[string]int64, len(slots))
	}
	for cause, n := range slots {
		m.attrSlots[cause] += n
	}
	m.mu.Unlock()
}

// attrSnapshot copies the per-cause counters in sorted key order.
func (m *Monitor) attrSnapshot() ([]string, map[string]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.attrSlots) == 0 {
		return nil, nil
	}
	causes := make([]string, 0, len(m.attrSlots))
	out := make(map[string]int64, len(m.attrSlots))
	for cause, n := range m.attrSlots {
		causes = append(causes, cause)
		out[cause] = n
	}
	sort.Strings(causes)
	return causes, out
}

// promLabelEscape escapes a label value per the Prometheus text
// exposition format: backslash, double quote, and newline.
func promLabelEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// addRun records a new engine.Run joining this monitor.
func (m *Monitor) addRun(units, jobs int) {
	m.mu.Lock()
	m.total += units
	if jobs > m.jobs {
		m.jobs = jobs
	}
	m.mu.Unlock()
}

// beginUnit registers a unit starting on some worker and returns the
// slot token endUnit takes.
func (m *Monitor) beginUnit(label string) int {
	m.mu.Lock()
	slot := m.nextSlot
	m.nextSlot++
	m.active[slot] = activeUnit{label: label, since: time.Now()}
	m.mu.Unlock()
	return slot
}

// endUnit retires a unit: cache hits complete without touching the
// latency average (they measure the cache, not the simulator), failures
// count separately, and everything else feeds the EWMA.
func (m *Monitor) endUnit(slot int, wall time.Duration, cacheHit, failed bool) {
	m.mu.Lock()
	delete(m.active, slot)
	m.done++
	if !cacheHit {
		m.cacheMisses++
	}
	switch {
	case failed:
		m.failed++
	case cacheHit:
		m.cacheHits++
	default:
		if m.ewma == 0 {
			m.ewma = wall
		} else {
			m.ewma = time.Duration((1-ewmaAlpha)*float64(m.ewma) + ewmaAlpha*float64(wall))
		}
	}
	m.mu.Unlock()
}

// WorkerUnit is one in-flight unit in a Progress snapshot.
type WorkerUnit struct {
	Slot      int     `json:"slot"`
	Label     string  `json:"label"`
	RunningMS float64 `json:"running_ms"`
}

// Progress is one consistent snapshot of an engine run. ETA is the
// remaining-unit estimate remaining×EWMA÷active-workers; it is zero
// until the first computed unit retires.
type Progress struct {
	Total       int          `json:"total"`
	Done        int          `json:"done"`
	Failed      int          `json:"failed"`
	CacheHits   int          `json:"cache_hits"`
	CacheMisses int          `json:"cache_misses"`
	Workers     []WorkerUnit `json:"workers,omitempty"`
	EWMAUnitMS  float64      `json:"ewma_unit_ms"`
	ETAMS       float64      `json:"eta_ms"`
	ElapsedMS   float64      `json:"elapsed_ms"`
}

// Snapshot returns the current progress under one lock acquisition, so
// every field is mutually consistent.
func (m *Monitor) Snapshot() Progress {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	p := Progress{
		Total:       m.total,
		Done:        m.done,
		Failed:      m.failed,
		CacheHits:   m.cacheHits,
		CacheMisses: m.cacheMisses,
		EWMAUnitMS:  float64(m.ewma) / float64(time.Millisecond),
		ElapsedMS:   float64(now.Sub(m.started)) / float64(time.Millisecond),
	}
	for slot, a := range m.active {
		p.Workers = append(p.Workers, WorkerUnit{
			Slot: slot, Label: a.label,
			RunningMS: float64(now.Sub(a.since)) / float64(time.Millisecond),
		})
	}
	sort.Slice(p.Workers, func(i, j int) bool { return p.Workers[i].Slot < p.Workers[j].Slot })
	if remaining := m.total - m.done; remaining > 0 && m.ewma > 0 {
		div := len(m.active)
		if div == 0 {
			div = m.jobs
		}
		if div == 0 {
			div = 1
		}
		p.ETAMS = float64(remaining) * p.EWMAUnitMS / float64(div)
	}
	return p
}

// StatusLine renders the snapshot as one terminal line (no newline), the
// -progress display.
func (m *Monitor) StatusLine() string {
	p := m.Snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d units", p.Done, p.Total)
	if p.Failed > 0 {
		fmt.Fprintf(&sb, ", %d failed", p.Failed)
	}
	fmt.Fprintf(&sb, ", %d cache hits, %d active", p.CacheHits, len(p.Workers))
	if p.EWMAUnitMS > 0 {
		fmt.Fprintf(&sb, ", %.0f ms/unit", p.EWMAUnitMS)
	}
	if p.ETAMS > 0 {
		fmt.Fprintf(&sb, ", ETA %s", time.Duration(p.ETAMS*float64(time.Millisecond)).Round(time.Second))
	}
	return sb.String()
}

// StartStatus redraws the status line on w every interval until the
// returned stop function is called; stop erases the line. Intended for
// stderr so it composes with redirected stdout reports.
func (m *Monitor) StartStatus(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		width := 0
		draw := func() {
			line := m.StatusLine()
			pad := width - len(line)
			if pad < 0 {
				pad = 0
			}
			fmt.Fprintf(w, "\r%s%s", line, strings.Repeat(" ", pad))
			width = len(line)
		}
		for {
			select {
			case <-t.C:
				draw()
			case <-quit:
				fmt.Fprintf(w, "\r%s\r", strings.Repeat(" ", width))
				return
			}
		}
	}()
	return func() {
		close(quit)
		wg.Wait()
	}
}

// Handler returns the monitor's HTTP surface: /progress (the Snapshot as
// JSON), /metrics (Prometheus text exposition), and the standard
// /debug/pprof endpoints, all on a private mux so attaching a monitor
// never pollutes http.DefaultServeMux.
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(m.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		p := m.Snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# HELP vanguard_units_total Units enqueued on the engine.\n")
		fmt.Fprintf(w, "# TYPE vanguard_units_total gauge\nvanguard_units_total %d\n", p.Total)
		fmt.Fprintf(w, "# HELP vanguard_units_done Units completed (including failures).\n")
		fmt.Fprintf(w, "# TYPE vanguard_units_done gauge\nvanguard_units_done %d\n", p.Done)
		fmt.Fprintf(w, "# HELP vanguard_units_failed Units that returned an error.\n")
		fmt.Fprintf(w, "# TYPE vanguard_units_failed gauge\nvanguard_units_failed %d\n", p.Failed)
		fmt.Fprintf(w, "# HELP vanguard_cache_hits_total Units served from the run cache.\n")
		fmt.Fprintf(w, "# TYPE vanguard_cache_hits_total gauge\nvanguard_cache_hits_total %d\n", p.CacheHits)
		fmt.Fprintf(w, "# HELP vanguard_cache_misses_total Units computed because the run cache had no entry (includes failures).\n")
		fmt.Fprintf(w, "# TYPE vanguard_cache_misses_total gauge\nvanguard_cache_misses_total %d\n", p.CacheMisses)
		fmt.Fprintf(w, "# HELP vanguard_unit_errors_total Units that returned an error (alias of vanguard_units_failed for error-rate dashboards).\n")
		fmt.Fprintf(w, "# TYPE vanguard_unit_errors_total gauge\nvanguard_unit_errors_total %d\n", p.Failed)
		fmt.Fprintf(w, "# HELP vanguard_workers_active Units currently executing.\n")
		fmt.Fprintf(w, "# TYPE vanguard_workers_active gauge\nvanguard_workers_active %d\n", len(p.Workers))
		fmt.Fprintf(w, "# HELP vanguard_unit_latency_ewma_seconds EWMA wall time of computed units.\n")
		fmt.Fprintf(w, "# TYPE vanguard_unit_latency_ewma_seconds gauge\nvanguard_unit_latency_ewma_seconds %g\n", p.EWMAUnitMS/1000)
		fmt.Fprintf(w, "# HELP vanguard_eta_seconds Estimated time to drain the remaining units.\n")
		fmt.Fprintf(w, "# TYPE vanguard_eta_seconds gauge\nvanguard_eta_seconds %g\n", p.ETAMS/1000)
		if causes, slots := m.attrSnapshot(); len(causes) > 0 {
			fmt.Fprintf(w, "# HELP vanguard_attr_slots_total Issue slots charged per attribution cause across attributed runs.\n")
			fmt.Fprintf(w, "# TYPE vanguard_attr_slots_total counter\n")
			for _, cause := range causes {
				fmt.Fprintf(w, "vanguard_attr_slots_total{cause=\"%s\"} %d\n", promLabelEscape(cause), slots[cause])
			}
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (":0" picks a free port), serves Handler on it in a
// background goroutine for the life of the process, and returns the
// bound address.
func (m *Monitor) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, m.Handler())
	return ln.Addr().String(), nil
}
