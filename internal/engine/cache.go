package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Version tags every cache key. Bump it whenever the simulation semantics
// behind cached results change (pipeline timing, transformation
// algorithm, workload generation), so stale entries can never be served.
const Version = "vanguard-engine/v1"

// Cache is a content-keyed on-disk result store. Entries are immutable
// once written: a key fully determines its value, so there is no
// invalidation beyond the Version tag folded into every key. All methods
// are safe for concurrent use; writes are atomic (temp file + rename), so
// concurrent processes can share one directory.
type Cache struct {
	dir          string
	hits, misses atomic.Int64
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("engine: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// DefaultDir returns the conventional cache location
// (os.UserCacheDir()/vanguard/runs), or "" when the platform reports no
// user cache directory.
func DefaultDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "vanguard", "runs")
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path fans entries across 256 subdirectories to keep listings fast.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get returns the stored bytes for key, if present.
func (c *Cache) Get(key string) ([]byte, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return data, true
}

// Put stores data under key. The cache is an optimization, so failures
// (disk full, read-only media) are swallowed: the run still has its
// computed result.
func (c *Cache) Put(key string, data []byte) {
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".put-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
	}
}

// Hits returns the lifetime lookup-hit count of this handle.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the lifetime lookup-miss count of this handle.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Key derives a content key from the JSON encodings of parts, prefixed by
// the engine Version. Parts must be pure data (JSON-encodable); a
// non-encodable part panics, because a silently truncated key could alias
// distinct configurations.
func Key(parts ...any) string {
	h := sha256.New()
	io.WriteString(h, Version+"\n")
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			panic(fmt.Sprintf("engine: unencodable key part %T: %v", p, err))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
