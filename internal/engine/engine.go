// Package engine executes experiment units — self-describing, independent
// pieces of simulation work — on a bounded worker pool with deterministic
// aggregation and an optional content-keyed on-disk result cache.
//
// The harness enumerates every (benchmark, input, width, binary)
// simulation of the paper's evaluation as one Unit; the engine schedules
// them across workers, propagates the first error (cancelling the feed of
// further units), and returns results indexed by enumeration order, so
// downstream tables and JSON reports are byte-stable regardless of how
// the units interleaved at run time.
package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Unit is one schedulable piece of work producing a T.
type Unit[T any] struct {
	// Label identifies the unit in telemetry (unique within a run).
	Label string
	// Key is the content key for the run cache: two units with equal keys
	// must compute equal results. Empty disables caching for this unit
	// (e.g. work that depends on an un-hashable closure or attaches
	// side-effecting trace sinks).
	Key string
	// Run computes the result. The context is cancelled after the first
	// unit error; in-flight units run to completion, but no further units
	// start.
	Run func(ctx context.Context) (T, error)
}

// Config is the execution policy of one engine run.
type Config struct {
	// Jobs bounds the worker pool; <= 0 selects GOMAXPROCS.
	Jobs int
	// Cache, when non-nil, short-circuits units whose Key has a stored
	// result and stores newly computed ones. Results round-trip through
	// JSON, so T must marshal losslessly enough for downstream use.
	Cache *Cache
	// Monitor, when non-nil, receives live progress (unit starts/ends,
	// cache hits, failures) for the -progress status line and the
	// -listen HTTP endpoints. Several Run calls may share one monitor.
	Monitor *Monitor
}

// UnitStat records how one unit executed.
type UnitStat struct {
	Label    string
	Wall     time.Duration
	CacheHit bool
}

// Stats summarizes one engine run.
type Stats struct {
	// Jobs is the effective worker count (after clamping to the unit count).
	Jobs int
	// Wall is the end-to-end run duration.
	Wall time.Duration
	// Units holds per-unit stats in enumeration order.
	Units []UnitStat
	// CacheHits / CacheMisses count cacheable units served from / written
	// to the cache during this run.
	CacheHits, CacheMisses int
}

// Run executes the units on cfg.Jobs workers and returns their results in
// enumeration order. On error it returns the failure of the
// lowest-indexed failing unit observed; results are then incomplete and
// must not be used. Unit results are independent slots, so the returned
// slice is identical for any worker count.
func Run[T any](ctx context.Context, cfg Config, units []Unit[T]) ([]T, Stats, error) {
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(units) {
		jobs = len(units)
	}
	st := Stats{Jobs: jobs, Units: make([]UnitStat, len(units))}
	if len(units) == 0 {
		return nil, st, nil
	}
	if cfg.Monitor != nil {
		cfg.Monitor.addRun(len(units), jobs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, len(units))
	var (
		mu       sync.Mutex
		firstErr error
		firstIdx int
		hits     int
		misses   int
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		cancel()
	}

	runUnit := func(i int) {
		u := units[i]
		t0 := time.Now()
		slot := -1
		if cfg.Monitor != nil {
			slot = cfg.Monitor.beginUnit(u.Label)
		}
		done := func(hit, failed bool) {
			wall := time.Since(t0)
			st.Units[i] = UnitStat{Label: u.Label, Wall: wall, CacheHit: hit}
			if slot >= 0 {
				cfg.Monitor.endUnit(slot, wall, hit, failed)
			}
		}
		cacheable := cfg.Cache != nil && u.Key != ""
		if cacheable {
			if data, ok := cfg.Cache.Get(u.Key); ok {
				var v T
				if err := json.Unmarshal(data, &v); err == nil {
					results[i] = v
					mu.Lock()
					hits++
					mu.Unlock()
					done(true, false)
					return
				}
				// A corrupt entry is treated as a miss and recomputed.
			}
		}
		if ctx.Err() != nil {
			done(false, false)
			return
		}
		v, err := u.Run(ctx)
		if err != nil {
			fail(i, fmt.Errorf("%s: %w", u.Label, err))
			done(false, true)
			return
		}
		results[i] = v
		if cacheable {
			if data, err := json.Marshal(v); err == nil {
				cfg.Cache.Put(u.Key, data)
			}
			mu.Lock()
			misses++
			mu.Unlock()
		}
		done(false, false)
	}

	start := time.Now()
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runUnit(i)
			}
		}()
	}
feed:
	for i := range units {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	st.Wall = time.Since(start)
	st.CacheHits, st.CacheMisses = hits, misses
	if firstErr != nil {
		return nil, st, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	return results, st, nil
}
