// Package engine executes experiment units — self-describing, independent
// pieces of simulation work — on a bounded worker pool with deterministic
// aggregation and an optional content-keyed on-disk result cache.
//
// The harness enumerates every (benchmark, input, width, binary)
// simulation of the paper's evaluation as one Unit; the engine schedules
// them across workers, propagates the first error (cancelling the feed of
// further units), and returns results indexed by enumeration order, so
// downstream tables and JSON reports are byte-stable regardless of how
// the units interleaved at run time.
package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"vanguard/internal/trace"
)

// Unit is one schedulable piece of work producing a T.
type Unit[T any] struct {
	// Label identifies the unit in telemetry (unique within a run).
	Label string
	// Key is the content key for the run cache: two units with equal keys
	// must compute equal results. Empty disables caching for this unit
	// (e.g. work that depends on an un-hashable closure or attaches
	// side-effecting trace sinks).
	Key string
	// Run computes the result. The context is cancelled after the first
	// unit error; in-flight units run to completion, but no further units
	// start.
	Run func(ctx context.Context) (T, error)
	// BatchKey, when non-empty, marks the unit as groupable: RunBatched
	// may hand up to Config.Lanes units sharing a BatchKey to the batch
	// runner as one task. Units whose results could differ when computed
	// together must use distinct keys; the run cache stays per-unit (Key)
	// regardless, so cached scalar and batched results never alias unless
	// they are equal.
	BatchKey string
}

// Config is the execution policy of one engine run.
type Config struct {
	// Jobs bounds the worker pool; <= 0 selects GOMAXPROCS.
	Jobs int
	// Cache, when non-nil, short-circuits units whose Key has a stored
	// result and stores newly computed ones. Results round-trip through
	// JSON, so T must marshal losslessly enough for downstream use.
	Cache *Cache
	// Monitor, when non-nil, receives live progress (unit starts/ends,
	// cache hits, failures) for the -progress status line and the
	// -listen HTTP endpoints. Several Run calls may share one monitor.
	Monitor *Monitor
	// Lanes bounds how many same-BatchKey units one RunBatched task may
	// carry; <= 1 disables batching (every unit runs through its scalar
	// Run func).
	Lanes int
	// Labels, when non-empty, is an alternating key/value list of
	// runtime/pprof labels applied to every worker goroutine (e.g.
	// "dispatch", "kernels", "lanes", "8"), so CPU profiles attribute
	// simulation time per execution-policy axis. A trailing odd element
	// is ignored. Labels are observability only — they never change
	// scheduling or results.
	Labels []string
	// Recorder, when non-nil, receives one span per unit lifecycle phase
	// (the sweep flight recording; see SweepRecorder). Like Monitor it is
	// observability only, may span several Run calls, and costs nothing
	// when nil.
	Recorder *SweepRecorder
}

// UnitStat records how one unit executed.
type UnitStat struct {
	Label    string
	Wall     time.Duration
	CacheHit bool
}

// Stats summarizes one engine run.
type Stats struct {
	// Jobs is the effective worker count (after clamping to the unit count).
	Jobs int
	// Wall is the end-to-end run duration.
	Wall time.Duration
	// Units holds per-unit stats in enumeration order.
	Units []UnitStat
	// CacheHits / CacheMisses count cacheable units served from / written
	// to the cache during this run.
	CacheHits, CacheMisses int
}

// Run executes the units on cfg.Jobs workers and returns their results in
// enumeration order. On error it returns the failure of the
// lowest-indexed failing unit observed; results are then incomplete and
// must not be used. Unit results are independent slots, so the returned
// slice is identical for any worker count.
func Run[T any](ctx context.Context, cfg Config, units []Unit[T]) ([]T, Stats, error) {
	return RunBatched(ctx, cfg, units, nil)
}

// batchTasks partitions unit indexes into scheduling tasks: batchable
// units (non-empty BatchKey) coalesce into groups of up to lanes
// same-key units, everything else is a singleton task. Tasks are emitted
// in order of their lowest index, and a group flushes as soon as it is
// full, so the partition is a pure function of the unit list.
func batchTasks[T any](units []Unit[T], lanes int) [][]int {
	tasks := make([][]int, 0, len(units))
	pending := map[string][]int{}
	var keys []string // flush order for partial groups
	for i := range units {
		k := units[i].BatchKey
		if k == "" || lanes <= 1 {
			tasks = append(tasks, []int{i})
			continue
		}
		if len(pending[k]) == 0 {
			keys = append(keys, k)
		}
		pending[k] = append(pending[k], i)
		if len(pending[k]) == lanes {
			tasks = append(tasks, pending[k])
			pending[k] = nil
		}
	}
	for _, k := range keys {
		// keys may repeat when a group refills after flushing full;
		// clearing the entry makes the trailing flush once-per-key.
		if len(pending[k]) > 0 {
			tasks = append(tasks, pending[k])
			pending[k] = nil
		}
	}
	return tasks
}

// RunBatched is Run with group scheduling: units sharing a non-empty
// BatchKey are handed to batchRun in groups of up to cfg.Lanes, as one
// task on one worker. batchRun receives the unit indexes still needing
// computation (cache hits are served per-unit before it is called) and
// must return a result and error slot per index; a failing unit fails
// the run like a scalar unit failure but does not poison its batch
// siblings. Cache entries remain strictly per-unit. A singleton group
// falls back to the unit's scalar Run func, as does every unit when
// batchRun is nil or cfg.Lanes <= 1.
func RunBatched[T any](ctx context.Context, cfg Config, units []Unit[T],
	batchRun func(ctx context.Context, idxs []int) ([]T, []error)) ([]T, Stats, error) {
	lanes := cfg.Lanes
	if batchRun == nil {
		lanes = 1
	}
	tasks := batchTasks(units, lanes)
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(tasks) {
		jobs = len(tasks)
	}
	st := Stats{Jobs: jobs, Units: make([]UnitStat, len(units))}
	if len(units) == 0 {
		return nil, st, nil
	}
	if cfg.Monitor != nil {
		cfg.Monitor.addRun(len(units), jobs)
	}
	rec := cfg.Recorder
	base := 0
	if rec != nil {
		base = recorderAddRun(rec, units, tasks, jobs, lanes)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, len(units))
	var (
		mu       sync.Mutex
		firstErr error
		firstIdx int
		hits     int
		misses   int
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		cancel()
	}

	runUnit := func(wid, i int) {
		u := units[i]
		t0 := time.Now()
		slot := -1
		if cfg.Monitor != nil {
			slot = cfg.Monitor.beginUnit(u.Label)
		}
		if rec != nil {
			rec.dequeue(base+i, wid)
		}
		done := func(hit, failed bool) {
			wall := time.Since(t0)
			st.Units[i] = UnitStat{Label: u.Label, Wall: wall, CacheHit: hit}
			if slot >= 0 {
				cfg.Monitor.endUnit(slot, wall, hit, failed)
			}
		}
		cacheable := cfg.Cache != nil && u.Key != ""
		if cacheable {
			var p0 time.Duration
			if rec != nil {
				p0 = rec.since()
			}
			hit := false
			if data, ok := cfg.Cache.Get(u.Key); ok {
				var v T
				if err := json.Unmarshal(data, &v); err == nil {
					results[i] = v
					hit = true
				}
				// A corrupt entry is treated as a miss and recomputed.
			}
			if rec != nil {
				rec.probe(base+i, p0, hit)
			}
			if hit {
				mu.Lock()
				hits++
				mu.Unlock()
				if rec != nil {
					rec.finish(base+i, trace.SweepRetire, 0)
				}
				done(true, false)
				return
			}
		}
		if ctx.Err() != nil {
			if rec != nil {
				rec.finish(base+i, trace.SweepCancel, 0)
			}
			done(false, false)
			return
		}
		if rec != nil {
			rec.computeStart(base + i)
		}
		v, err := u.Run(ctx)
		if err != nil {
			fail(i, fmt.Errorf("%s: %w", u.Label, err))
			if rec != nil {
				rec.finish(base+i, trace.SweepFail, 1)
			}
			done(false, true)
			return
		}
		results[i] = v
		if cacheable {
			if data, err := json.Marshal(v); err == nil {
				cfg.Cache.Put(u.Key, data)
			}
			mu.Lock()
			misses++
			mu.Unlock()
		}
		if rec != nil {
			rec.finish(base+i, trace.SweepRetire, 1)
		}
		done(false, false)
	}

	// runBatch executes one multi-unit task: serve per-unit cache hits,
	// hand the remainder to batchRun in one call, then attribute results,
	// errors, and cache writes back to each unit.
	runBatch := func(wid int, idxs []int) {
		t0 := time.Now()
		slots := make([]int, len(idxs))
		for j, i := range idxs {
			slots[j] = -1
			if cfg.Monitor != nil {
				slots[j] = cfg.Monitor.beginUnit(units[i].Label)
			}
			if rec != nil {
				rec.dequeue(base+i, wid)
			}
		}
		done := func(j, i int, hit, failed bool) {
			wall := time.Since(t0)
			st.Units[i] = UnitStat{Label: units[i].Label, Wall: wall, CacheHit: hit}
			if slots[j] >= 0 {
				cfg.Monitor.endUnit(slots[j], wall, hit, failed)
			}
		}
		need := make([]int, 0, len(idxs))
		needSlot := make([]int, 0, len(idxs))
		for j, i := range idxs {
			u := &units[i]
			if cfg.Cache != nil && u.Key != "" {
				var p0 time.Duration
				if rec != nil {
					p0 = rec.since()
				}
				hit := false
				if data, ok := cfg.Cache.Get(u.Key); ok {
					var v T
					if err := json.Unmarshal(data, &v); err == nil {
						results[i] = v
						hit = true
					}
				}
				if rec != nil {
					rec.probe(base+i, p0, hit)
				}
				if hit {
					mu.Lock()
					hits++
					mu.Unlock()
					if rec != nil {
						rec.finish(base+i, trace.SweepRetire, 0)
					}
					done(j, i, true, false)
					continue
				}
			}
			need = append(need, i)
			needSlot = append(needSlot, j)
		}
		if len(need) == 0 {
			return
		}
		if ctx.Err() != nil {
			for j, i := range need {
				if rec != nil {
					rec.finish(base+i, trace.SweepCancel, 0)
				}
				done(needSlot[j], i, false, false)
			}
			return
		}
		if rec != nil {
			for _, i := range need {
				rec.computeStart(base + i)
			}
		}
		vs, errs := batchRun(ctx, need)
		for j, i := range need {
			if errs[j] != nil {
				fail(i, fmt.Errorf("%s: %w", units[i].Label, errs[j]))
				if rec != nil {
					rec.finish(base+i, trace.SweepFail, len(need))
				}
				done(needSlot[j], i, false, true)
				continue
			}
			results[i] = vs[j]
			if cfg.Cache != nil && units[i].Key != "" {
				if data, err := json.Marshal(vs[j]); err == nil {
					cfg.Cache.Put(units[i].Key, data)
				}
				mu.Lock()
				misses++
				mu.Unlock()
			}
			if rec != nil {
				rec.finish(base+i, trace.SweepRetire, len(need))
			}
			done(needSlot[j], i, false, false)
		}
	}

	start := time.Now()
	idx := make(chan int)
	var wg sync.WaitGroup
	worker := func(wid int) {
		defer wg.Done()
		for t := range idx {
			if len(tasks[t]) == 1 {
				runUnit(wid, tasks[t][0])
			} else {
				runBatch(wid, tasks[t])
			}
		}
	}
	labeled := worker
	if kv := cfg.Labels; len(kv) >= 2 {
		labels := pprof.Labels(kv[:len(kv)&^1]...)
		labeled = func(wid int) { pprof.Do(ctx, labels, func(context.Context) { worker(wid) }) }
	}
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go labeled(w)
	}
feed:
	for t := range tasks {
		select {
		case idx <- t:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if rec != nil {
		rec.finishRun(base, len(units))
	}

	st.Wall = time.Since(start)
	st.CacheHits, st.CacheMisses = hits, misses
	if firstErr != nil {
		return nil, st, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	return results, st, nil
}
