package engine

import (
	"net/http/httptest"
	"strings"
	"testing"

	"vanguard/internal/bpred"
)

// bpredStudyFixture is a small study with every rollup the monitor
// accumulates: two classes, two provider tables, and an escaping-hostile
// predictor name is exercised separately below.
func bpredStudyFixture(predictor string) *bpred.StudyReport {
	return &bpred.StudyReport{
		Predictor:   predictor,
		Resolves:    100,
		Updates:     100,
		Mispredicts: 9,
		Providers: []bpred.ProviderReport{
			{Table: "base", Use: 60, Correct: 55},
			{Table: "tage3", Use: 40, Correct: 36},
		},
		Classes: map[string]bpred.ClassTotals{
			bpred.ClassBiased: {Branches: 3, Execs: 80, Mispredicts: 2},
			bpred.ClassRandom: {Branches: 1, Execs: 20, Mispredicts: 7},
		},
	}
}

// TestMonitorBpredMetrics pins the /metrics surface of the observatory:
// without a probed run the vanguard_bpred_* families are absent (the
// exposition is unchanged), with one they appear as promlint-clean
// counters with properly escaped labels, and counters accumulate across
// ObserveBpred calls.
func TestMonitorBpredMetrics(t *testing.T) {
	mon := NewMonitor()
	scrape := func() string {
		rec := httptest.NewRecorder()
		mon.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		return rec.Body.String()
	}

	before := scrape()
	if err := validatePromText(before); err != nil {
		t.Fatalf("baseline exposition invalid: %v", err)
	}
	if strings.Contains(before, "vanguard_bpred_") {
		t.Fatal("probe-off exposition mentions vanguard_bpred_ families")
	}

	mon.ObserveBpred(bpredStudyFixture("tage"))
	mon.ObserveBpred(bpredStudyFixture("tage"))
	mon.ObserveBpred(nil) // must be a no-op
	body := scrape()
	if err := validatePromText(body); err != nil {
		t.Fatalf("probed exposition invalid: %v", err)
	}
	for _, want := range []string{
		"vanguard_bpred_studies_total 2",
		"vanguard_bpred_resolves_total 200",
		"vanguard_bpred_mispredicts_total 18",
		`vanguard_bpred_class_branches_total{class="` + bpred.ClassBiased + `"} 6`,
		`vanguard_bpred_class_execs_total{class="` + bpred.ClassRandom + `"} 40`,
		`vanguard_bpred_class_mispredicts_total{class="` + bpred.ClassRandom + `"} 14`,
		`vanguard_bpred_provider_use_total{table="base"} 120`,
		`vanguard_bpred_provider_use_total{table="tage3"} 80`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition lacks %q:\n%s", want, body)
		}
	}

	// A hostile table name must be escaped, and the document must stay
	// promlint-clean.
	hostile := bpredStudyFixture("tage")
	hostile.Providers = append(hostile.Providers, bpred.ProviderReport{Table: "odd\"table\\\n", Use: 1})
	mon.ObserveBpred(hostile)
	body = scrape()
	if err := validatePromText(body); err != nil {
		t.Fatalf("exposition with hostile label invalid: %v", err)
	}
	if !strings.Contains(body, `table="odd\"table\\\n"`) {
		t.Errorf("hostile table label not escaped:\n%s", body)
	}
}

// TestMonitorBpredDashboard pins /debug/bpred: the empty monitor renders
// the placeholder, a probed one renders the class and provider tables.
func TestMonitorBpredDashboard(t *testing.T) {
	mon := NewMonitor()
	get := func() string {
		rec := httptest.NewRecorder()
		mon.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/bpred", nil))
		if rec.Code != 200 {
			t.Fatalf("/debug/bpred returned %d", rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/html") {
			t.Fatalf("/debug/bpred content type %q", ct)
		}
		return rec.Body.String()
	}

	if body := get(); !strings.Contains(body, "no probed runs yet") {
		t.Errorf("empty dashboard lacks the placeholder:\n%s", body)
	}

	mon.ObserveBpred(bpredStudyFixture("isl-tage"))
	body := get()
	for _, want := range []string{
		"predictability classes", "provider tables", "isl-tage",
		bpred.ClassBiased, bpred.ClassRandom, "tage3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard lacks %q:\n%s", want, body)
		}
	}
}
