package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMonitorLiveRun is the acceptance test: during a live engine.Run,
// /progress reports in-flight workers and /metrics exposes the counters
// in Prometheus text format; after the run both show completion.
func TestMonitorLiveRun(t *testing.T) {
	mon := NewMonitor()
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()

	const n = 6
	release := make(chan struct{})
	started := make(chan struct{}, n)
	units := make([]Unit[int], n)
	for i := range units {
		i := i
		units[i] = Unit[int]{
			Label: fmt.Sprintf("unit-%d", i),
			Run: func(ctx context.Context) (int, error) {
				started <- struct{}{}
				<-release
				return i * i, nil
			},
		}
	}

	var (
		wg      sync.WaitGroup
		results []int
		stats   Stats
		runErr  error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results, stats, runErr = Run(context.Background(), Config{Jobs: 2, Monitor: mon}, units)
	}()

	// Wait until both workers hold a unit, then inspect mid-run.
	<-started
	<-started
	var p Progress
	if err := json.Unmarshal([]byte(getBody(t, srv.URL+"/progress")), &p); err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
	if p.Total != n {
		t.Errorf("mid-run total = %d, want %d", p.Total, n)
	}
	if p.Done != 0 {
		t.Errorf("mid-run done = %d, want 0 (units are blocked)", p.Done)
	}
	if len(p.Workers) != 2 {
		t.Errorf("mid-run active workers = %d, want 2: %+v", len(p.Workers), p.Workers)
	}
	for _, wu := range p.Workers {
		if !strings.HasPrefix(wu.Label, "unit-") {
			t.Errorf("worker carries wrong label: %+v", wu)
		}
	}
	metrics := getBody(t, srv.URL+"/metrics")
	if !strings.Contains(metrics, fmt.Sprintf("vanguard_units_total %d", n)) ||
		!strings.Contains(metrics, "vanguard_workers_active 2") {
		t.Errorf("mid-run metrics wrong:\n%s", metrics)
	}

	close(release)
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(results) != n || results[3] != 9 {
		t.Fatalf("results wrong: %v", results)
	}
	if stats.Jobs != 2 {
		t.Errorf("stats.Jobs = %d", stats.Jobs)
	}

	p = Progress{}
	if err := json.Unmarshal([]byte(getBody(t, srv.URL+"/progress")), &p); err != nil {
		t.Fatal(err)
	}
	if p.Done != n || p.Failed != 0 || len(p.Workers) != 0 {
		t.Errorf("post-run progress = %+v, want done=%d failed=0 no workers", p, n)
	}
	if p.EWMAUnitMS <= 0 {
		t.Errorf("post-run EWMA = %v, want > 0", p.EWMAUnitMS)
	}
	metrics = getBody(t, srv.URL+"/metrics")
	for _, want := range []string{
		fmt.Sprintf("vanguard_units_done %d", n),
		"vanguard_units_failed 0",
		"vanguard_workers_active 0",
		"# TYPE vanguard_unit_latency_ewma_seconds gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("post-run metrics missing %q:\n%s", want, metrics)
		}
	}
	// pprof is mounted on the monitor's private mux.
	if body := getBody(t, srv.URL+"/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline endpoint empty")
	}
}

// TestMonitorFailuresAndHits checks the classification: failed units
// count as failed, cache hits as hits, and neither feeds the EWMA.
func TestMonitorFailuresAndHits(t *testing.T) {
	mon := NewMonitor()
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	units := []Unit[int]{
		{Label: "ok", Key: Key("monitor-test-ok"), Run: func(ctx context.Context) (int, error) { return 1, nil }},
		{Label: "bad", Run: func(ctx context.Context) (int, error) { return 0, fmt.Errorf("boom") }},
	}
	_, _, err = Run(context.Background(), Config{Jobs: 1, Cache: cache, Monitor: mon}, units)
	if err == nil {
		t.Fatal("expected unit error")
	}
	p := mon.Snapshot()
	if p.Failed != 1 {
		t.Errorf("failed = %d, want 1", p.Failed)
	}

	// Re-running the cacheable unit alone is a pure cache hit.
	_, _, err = Run(context.Background(), Config{Jobs: 1, Cache: cache, Monitor: mon}, units[:1])
	if err != nil {
		t.Fatal(err)
	}
	p = mon.Snapshot()
	if p.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", p.CacheHits)
	}
	if p.Total != 3 || p.Done != 3 {
		t.Errorf("totals across runs = %d/%d, want 3/3", p.Done, p.Total)
	}
}

func TestMonitorStatusLineAndETA(t *testing.T) {
	mon := NewMonitor()
	mon.addRun(10, 2)
	slot := mon.beginUnit("a")
	mon.endUnit(slot, 100*time.Millisecond, false, false)
	p := mon.Snapshot()
	if p.EWMAUnitMS != 100 {
		t.Errorf("first sample must set the EWMA directly: %v", p.EWMAUnitMS)
	}
	// 9 remaining × 100ms ÷ 2 configured workers (none active).
	if p.ETAMS != 450 {
		t.Errorf("ETA = %v ms, want 450", p.ETAMS)
	}
	slot = mon.beginUnit("b")
	mon.endUnit(slot, 200*time.Millisecond, false, false)
	if got := mon.Snapshot().EWMAUnitMS; got != 120 {
		t.Errorf("EWMA after 100,200 = %v, want 0.8*100+0.2*200 = 120", got)
	}

	line := mon.StatusLine()
	for _, want := range []string{"2/10 units", "0 cache hits", "0 active", "120 ms/unit", "ETA"} {
		if !strings.Contains(line, want) {
			t.Errorf("status line missing %q: %q", want, line)
		}
	}

	var buf syncBuffer
	stop := mon.StartStatus(&buf, time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	stop()
	out := buf.String()
	if !strings.Contains(out, "2/10 units") {
		t.Errorf("status renderer never drew: %q", out)
	}
	if !strings.HasSuffix(out, "\r") {
		t.Errorf("stop must erase the line: %q", out)
	}
}

// syncBuffer is a strings.Builder safe for the status goroutine + test.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
