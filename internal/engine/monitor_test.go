package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMonitorLiveRun is the acceptance test: during a live engine.Run,
// /progress reports in-flight workers and /metrics exposes the counters
// in Prometheus text format; after the run both show completion.
func TestMonitorLiveRun(t *testing.T) {
	mon := NewMonitor()
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()

	const n = 6
	release := make(chan struct{})
	started := make(chan struct{}, n)
	units := make([]Unit[int], n)
	for i := range units {
		i := i
		units[i] = Unit[int]{
			Label: fmt.Sprintf("unit-%d", i),
			Run: func(ctx context.Context) (int, error) {
				started <- struct{}{}
				<-release
				return i * i, nil
			},
		}
	}

	var (
		wg      sync.WaitGroup
		results []int
		stats   Stats
		runErr  error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results, stats, runErr = Run(context.Background(), Config{Jobs: 2, Monitor: mon}, units)
	}()

	// Wait until both workers hold a unit, then inspect mid-run.
	<-started
	<-started
	var p Progress
	if err := json.Unmarshal([]byte(getBody(t, srv.URL+"/progress")), &p); err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
	if p.Total != n {
		t.Errorf("mid-run total = %d, want %d", p.Total, n)
	}
	if p.Done != 0 {
		t.Errorf("mid-run done = %d, want 0 (units are blocked)", p.Done)
	}
	if len(p.Workers) != 2 {
		t.Errorf("mid-run active workers = %d, want 2: %+v", len(p.Workers), p.Workers)
	}
	for _, wu := range p.Workers {
		if !strings.HasPrefix(wu.Label, "unit-") {
			t.Errorf("worker carries wrong label: %+v", wu)
		}
	}
	metrics := getBody(t, srv.URL+"/metrics")
	if !strings.Contains(metrics, fmt.Sprintf("vanguard_units_total %d", n)) ||
		!strings.Contains(metrics, "vanguard_workers_active 2") {
		t.Errorf("mid-run metrics wrong:\n%s", metrics)
	}

	close(release)
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(results) != n || results[3] != 9 {
		t.Fatalf("results wrong: %v", results)
	}
	if stats.Jobs != 2 {
		t.Errorf("stats.Jobs = %d", stats.Jobs)
	}

	p = Progress{}
	if err := json.Unmarshal([]byte(getBody(t, srv.URL+"/progress")), &p); err != nil {
		t.Fatal(err)
	}
	if p.Done != n || p.Failed != 0 || len(p.Workers) != 0 {
		t.Errorf("post-run progress = %+v, want done=%d failed=0 no workers", p, n)
	}
	if p.EWMAUnitMS <= 0 {
		t.Errorf("post-run EWMA = %v, want > 0", p.EWMAUnitMS)
	}
	metrics = getBody(t, srv.URL+"/metrics")
	for _, want := range []string{
		fmt.Sprintf("vanguard_units_done %d", n),
		"vanguard_units_failed 0",
		"vanguard_workers_active 0",
		"# TYPE vanguard_unit_latency_ewma_seconds gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("post-run metrics missing %q:\n%s", want, metrics)
		}
	}
	// pprof is mounted on the monitor's private mux.
	if body := getBody(t, srv.URL+"/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline endpoint empty")
	}
}

// TestMonitorFailuresAndHits checks the classification: failed units
// count as failed, cache hits as hits, and neither feeds the EWMA.
func TestMonitorFailuresAndHits(t *testing.T) {
	mon := NewMonitor()
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	units := []Unit[int]{
		{Label: "ok", Key: Key("monitor-test-ok"), Run: func(ctx context.Context) (int, error) { return 1, nil }},
		{Label: "bad", Run: func(ctx context.Context) (int, error) { return 0, fmt.Errorf("boom") }},
	}
	_, _, err = Run(context.Background(), Config{Jobs: 1, Cache: cache, Monitor: mon}, units)
	if err == nil {
		t.Fatal("expected unit error")
	}
	p := mon.Snapshot()
	if p.Failed != 1 {
		t.Errorf("failed = %d, want 1", p.Failed)
	}

	// Re-running the cacheable unit alone is a pure cache hit.
	_, _, err = Run(context.Background(), Config{Jobs: 1, Cache: cache, Monitor: mon}, units[:1])
	if err != nil {
		t.Fatal(err)
	}
	p = mon.Snapshot()
	if p.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", p.CacheHits)
	}
	if p.Total != 3 || p.Done != 3 {
		t.Errorf("totals across runs = %d/%d, want 3/3", p.Done, p.Total)
	}
}

func TestMonitorStatusLineAndETA(t *testing.T) {
	mon := NewMonitor()
	mon.addRun(10, 2)
	slot := mon.beginUnit("a")
	mon.endUnit(slot, 100*time.Millisecond, false, false)
	p := mon.Snapshot()
	if p.EWMAUnitMS != 100 {
		t.Errorf("first sample must set the EWMA directly: %v", p.EWMAUnitMS)
	}
	// 9 remaining × 100ms ÷ 2 configured workers (none active).
	if p.ETAMS != 450 {
		t.Errorf("ETA = %v ms, want 450", p.ETAMS)
	}
	slot = mon.beginUnit("b")
	mon.endUnit(slot, 200*time.Millisecond, false, false)
	if got := mon.Snapshot().EWMAUnitMS; got != 120 {
		t.Errorf("EWMA after 100,200 = %v, want 0.8*100+0.2*200 = 120", got)
	}

	line := mon.StatusLine()
	for _, want := range []string{"2/10 units", "0 cache hits", "0 active", "120 ms/unit", "ETA"} {
		if !strings.Contains(line, want) {
			t.Errorf("status line missing %q: %q", want, line)
		}
	}

	var buf syncBuffer
	stop := mon.StartStatus(&buf, time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	stop()
	out := buf.String()
	if !strings.Contains(out, "2/10 units") {
		t.Errorf("status renderer never drew: %q", out)
	}
	if !strings.HasSuffix(out, "\r") {
		t.Errorf("stop must erase the line: %q", out)
	}
}

// TestMonitorServeClose pins the Serve contract: the returned close
// function shuts the server down and releases the listener (Serve used
// to leak both for the life of the process), and /healthz answers while
// the server is up.
func TestMonitorServeClose(t *testing.T) {
	mon := NewMonitor()
	addr, closeSrv, err := mon.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if body := getBody(t, "http://"+addr+"/healthz"); body != "ok\n" {
		t.Errorf("/healthz = %q, want ok", body)
	}
	if err := closeSrv(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still answering after close")
	}
	// The port is free again: a second monitor can bind it.
	addr2, closeSrv2, err := mon.Serve(addr)
	if err != nil {
		t.Fatalf("rebind %s after close: %v", addr, err)
	}
	if addr2 != addr {
		t.Errorf("rebound to %s, want %s", addr2, addr)
	}
	closeSrv2()
}

// TestMonitorHammer races every mutating and reading entry point under
// the race detector and then asserts counter conservation: everything
// begun was ended exactly once, and done partitions into failed + hits +
// computed (the latency histogram's count).
func TestMonitorHammer(t *testing.T) {
	mon := NewMonitor()
	const workers, perWorker = 8, 200
	mon.addRun(workers*perWorker, workers)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = mon.Snapshot()
					_ = mon.StatusLine()
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				slot := mon.beginUnit(fmt.Sprintf("w%d-%d", g, i))
				mon.ObserveAttr(map[string]int64{"base": 2, "br_mispredict": 1})
				switch i % 4 {
				case 0:
					mon.endUnit(slot, time.Microsecond, false, true) // failed
				case 1:
					mon.endUnit(slot, time.Microsecond, true, false) // cache hit
				default:
					mon.endUnit(slot, time.Microsecond, false, false) // computed
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	p := mon.Snapshot()
	const total = workers * perWorker
	if p.Total != total || p.Done != total {
		t.Fatalf("done/total = %d/%d, want %d/%d", p.Done, p.Total, total, total)
	}
	wantFailed, wantHits := total/4, total/4
	computed := total - wantFailed - wantHits
	if p.Failed != wantFailed {
		t.Errorf("failed = %d, want %d", p.Failed, wantFailed)
	}
	if p.CacheHits != wantHits {
		t.Errorf("cache hits = %d, want %d", p.CacheHits, wantHits)
	}
	// Everything not served from cache is a miss, including failures.
	if p.CacheMisses != total-wantHits {
		t.Errorf("cache misses = %d, want %d", p.CacheMisses, total-wantHits)
	}
	if p.UnitLatencyUS == nil || p.UnitLatencyUS.Count != int64(computed) {
		t.Errorf("latency histogram count = %+v, want %d computed units", p.UnitLatencyUS, computed)
	}
	if len(p.Workers) != 0 || p.QueueDepth != 0 {
		t.Errorf("post-run active=%d queue=%d, want 0/0", len(p.Workers), p.QueueDepth)
	}
	if p.BusyRatio < 0 || p.BusyRatio > 1 {
		t.Errorf("busy ratio = %v outside [0,1]", p.BusyRatio)
	}
	if causes, slots := mon.attrSnapshot(); slots["base"] != 2*total || slots["br_mispredict"] != int64(total) {
		t.Errorf("attr counters = %v %v, want base=%d br_mispredict=%d", causes, slots, 2*total, total)
	}
}

// TestSweepDashboard drives /debug/sweep against a seeded monitor: the
// page renders occupancy bars for active units, the hit-rate, and the
// latency histogram without needing any client-side script.
func TestSweepDashboard(t *testing.T) {
	mon := NewMonitor()
	mon.addRun(10, 4)
	slot := mon.beginUnit("done-unit")
	mon.endUnit(slot, 3*time.Millisecond, false, false) // computed
	slot = mon.beginUnit("hit-unit")
	mon.endUnit(slot, time.Millisecond, true, false) // cache hit
	mon.beginUnit("live-unit")                       // stays active

	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()
	body := getBody(t, srv.URL+"/debug/sweep")
	for _, want := range []string{
		"vanguard sweep",
		"2/10 units done",
		"50% cache hit-rate", // 1 hit / 2 probes
		"live-unit",          // the occupancy bar row
		"class=\"bar\"",
		"unit latency",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/sweep missing %q:\n%s", want, body)
		}
	}
	// The idle dashboard renders too (no units, no division by zero).
	empty := httptest.NewServer(NewMonitor().Handler())
	defer empty.Close()
	if body := getBody(t, empty.URL+"/debug/sweep"); !strings.Contains(body, "(idle)") {
		t.Errorf("idle dashboard missing placeholder:\n%s", body)
	}
}

// syncBuffer is a strings.Builder safe for the status goroutine + test.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
