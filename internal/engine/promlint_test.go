package engine

import (
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	promValueRe  = regexp.MustCompile(`^-?(\d+(\.\d+)?([eE][+-]?\d+)?|\+?Inf|NaN)$`)
)

// validatePromText is a minimal Prometheus text-exposition (0.0.4)
// validator: every sample line must parse as name{labels} value, names
// and label keys must be legal, label values must close their quotes
// with only valid escapes (\\, \", \n) inside, every metric family must
// carry HELP and TYPE lines before its first sample, and no series
// (name plus exact label set) may appear twice. Suffix consistency is
// enforced too: _bucket/_sum/_count samples must resolve to a declared
// histogram (or _sum/_count to a summary), _bucket series must carry an
// le label, and any family named *_total must be declared a counter.
func validatePromText(text string) error {
	helped := map[string]bool{}
	typed := map[string]string{}
	seen := map[string]bool{}
	// family resolves a sample name to its declared metric family:
	// the name itself, or — for histogram/summary component samples —
	// the base name with the _bucket/_sum/_count suffix stripped.
	family := func(name string) string {
		if typed[name] != "" || helped[name] {
			return name
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(name, suf)
			if !ok {
				continue
			}
			switch typed[base] {
			case "histogram":
				return base
			case "summary":
				if suf != "_bucket" {
					return base
				}
			}
		}
		return name
	}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			helped[strings.SplitN(rest, " ", 2)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				return fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch f[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", ln+1, f[1])
			}
			typed[f[0]] = f[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}

		name, labels, value, err := splitPromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", ln+1, err)
		}
		if !promMetricRe.MatchString(name) {
			return fmt.Errorf("line %d: bad metric name %q", ln+1, name)
		}
		fam := family(name)
		if !helped[fam] {
			return fmt.Errorf("line %d: %s sampled before its # HELP line", ln+1, name)
		}
		typ := typed[fam]
		if typ == "" {
			return fmt.Errorf("line %d: %s sampled before its # TYPE line", ln+1, name)
		}
		if strings.HasSuffix(fam, "_total") && typ != "counter" {
			return fmt.Errorf("line %d: %s is suffixed _total but declared %s, want counter", ln+1, fam, typ)
		}
		if typ == "histogram" && fam == name {
			return fmt.Errorf("line %d: histogram %s sampled without a _bucket/_sum/_count suffix", ln+1, name)
		}
		if strings.HasSuffix(name, "_bucket") && fam != name && !strings.Contains(labels, `le="`) {
			return fmt.Errorf("line %d: histogram bucket %s has no le label", ln+1, name)
		}
		if !promValueRe.MatchString(value) {
			return fmt.Errorf("line %d: bad sample value %q", ln+1, value)
		}
		series := name + "{" + labels + "}"
		if seen[series] {
			return fmt.Errorf("line %d: duplicate series %s", ln+1, series)
		}
		seen[series] = true
	}
	for name := range helped {
		if typed[name] == "" {
			return fmt.Errorf("%s has HELP but no TYPE", name)
		}
	}
	return nil
}

// splitPromSample parses `name value` or `name{k="v",...} value`,
// checking label-key syntax and label-value escaping.
func splitPromSample(line string) (name, labels, value string, err error) {
	if open := strings.IndexByte(line, '{'); open >= 0 {
		name = line[:open]
		rest := line[open+1:]
		cls, err := scanPromLabels(rest)
		if err != nil {
			return "", "", "", err
		}
		labels = rest[:cls]
		tail := strings.TrimPrefix(rest[cls+1:], " ")
		return name, labels, tail, nil
	}
	f := strings.Fields(line)
	if len(f) != 2 {
		return "", "", "", fmt.Errorf("want `name value`, got %q", line)
	}
	return f[0], "", f[1], nil
}

// scanPromLabels walks `k="v",k2="v2"}`... and returns the index of the
// closing brace, validating keys and escape sequences along the way.
func scanPromLabels(s string) (int, error) {
	i := 0
	for {
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) || !promLabelRe.MatchString(s[i:j]) {
			return 0, fmt.Errorf("bad label key in %q", s)
		}
		if j+1 >= len(s) || s[j+1] != '"' {
			return 0, fmt.Errorf("label value not quoted in %q", s)
		}
		k := j + 2
		for k < len(s) && s[k] != '"' {
			if s[k] == '\\' {
				if k+1 >= len(s) || !strings.ContainsRune(`\"n`, rune(s[k+1])) {
					return 0, fmt.Errorf("bad escape in label value: %q", s)
				}
				k++
			}
			if s[k] == '\n' {
				return 0, fmt.Errorf("raw newline in label value: %q", s)
			}
			k++
		}
		if k >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		switch {
		case strings.HasPrefix(s[k+1:], ","):
			i = k + 2
		case strings.HasPrefix(s[k+1:], "}"):
			return k + 1, nil
		default:
			return 0, fmt.Errorf("junk after label value in %q", s)
		}
	}
}

func TestPromValidatorRejectsMalformed(t *testing.T) {
	bad := []string{
		"no_type_or_help 1\n",
		"# HELP x y\n# TYPE x gauge\nx{k=\"unterminated} 1\n",
		"# HELP x y\n# TYPE x gauge\nx{k=\"v\"} 1\nx{k=\"v\"} 2\n", // duplicate series
		"# HELP x y\n# TYPE x widget\nx 1\n",
		"# HELP x y\n# TYPE x gauge\nx{k=\"bad\\q\"} 1\n", // bad escape
		"# HELP x y\n# TYPE x gauge\nx notanumber\n",
		"# HELP x_total y\n# TYPE x_total gauge\nx_total 1\n",     // _total must be a counter
		"# HELP h w\n# TYPE h histogram\nh 1\n",                   // histogram sampled bare
		"# HELP h w\n# TYPE h histogram\nh_bucket{k=\"v\"} 1\n",   // bucket without le
		"h_bucket{le=\"+Inf\"} 1\n",                               // bucket with no declared family
		"# HELP h w\n# TYPE h summary\nh_bucket{le=\"+Inf\"} 1\n", // _bucket on a summary
	}
	for _, text := range bad {
		if err := validatePromText(text); err == nil {
			t.Errorf("validator accepted malformed exposition:\n%s", text)
		}
	}
	good := "# HELP x y\n# TYPE x counter\nx{k=\"a\\\"b\\\\c\\nd\"} 1\nx{k=\"other\"} 2.5\nx 3\n" +
		"# HELP h w\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.3\nh_count 2\n"
	if err := validatePromText(good); err != nil {
		t.Errorf("validator rejected well-formed exposition: %v\n%s", err, good)
	}
}

// TestMetricsPromFormat is the satellite gate: the full /metrics output —
// including per-cause attribution counters with a label value that needs
// every escape — passes the text-format validator with no duplicate
// series, and the escaped label round-trips.
func TestMetricsPromFormat(t *testing.T) {
	mon := NewMonitor()
	mon.addRun(4, 2)
	slot := mon.beginUnit("u")
	mon.endUnit(slot, 0, false, false) // computed: a cache miss
	slot = mon.beginUnit("u2")
	mon.endUnit(slot, 0, true, false) // cache hit
	slot = mon.beginUnit("u3")
	mon.endUnit(slot, 0, false, true) // failed: also a cache miss
	mon.ObserveAttr(map[string]int64{
		"base":          100,
		"br_mispredict": 40,
		`odd"cause\n`:   7, // forces label escaping
	})
	mon.ObserveAttr(map[string]int64{"base": 20}) // counters accumulate

	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()
	text := getBody(t, srv.URL+"/metrics")

	if err := validatePromText(text); err != nil {
		t.Fatalf("/metrics fails Prometheus text-format validation: %v\n%s", err, text)
	}
	for _, want := range []string{
		`vanguard_attr_slots_total{cause="base"} 120`,
		`vanguard_attr_slots_total{cause="br_mispredict"} 40`,
		`vanguard_attr_slots_total{cause="odd\"cause\\n"} 7`,
		"vanguard_cache_hits_total 1",
		"vanguard_cache_misses_total 2",
		"vanguard_unit_errors_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}
