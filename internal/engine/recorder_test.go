package engine

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"vanguard/internal/trace"
)

// recUnits builds n deterministic cacheable units; every third one is
// batchable under a shared key so RunBatched forms real lane groups.
func recUnits(n int) []Unit[int] {
	units := make([]Unit[int], n)
	for i := range units {
		i := i
		units[i] = Unit[int]{
			Label: fmt.Sprintf("unit-%d", i),
			Key:   Key(fmt.Sprintf("recorder-test-%d", i)),
			Run:   func(ctx context.Context) (int, error) { return i * i, nil },
		}
		if i%3 == 0 {
			units[i].BatchKey = "grp"
		}
	}
	return units
}

// recBatchRun is the batch runner for recUnits: same results as the
// scalar paths, computed as one task.
func recBatchRun(ctx context.Context, idxs []int) ([]int, []error) {
	vs := make([]int, len(idxs))
	for j, i := range idxs {
		vs[j] = i * i
	}
	return vs, make([]error, len(idxs))
}

// TestRecorderLifecycle drives the full span model through a real
// RunBatched — cold misses, lane groups, then a warm rerun for hits on
// the same recorder — and holds the recording to the conservation
// invariant plus the structural properties Report promises.
func TestRecorderLifecycle(t *testing.T) {
	cache, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewSweepRecorder()
	units := recUnits(9)
	cfg := Config{Jobs: 2, Lanes: 2, Cache: cache, Recorder: rec}
	if _, _, err := RunBatched(context.Background(), cfg, units, recBatchRun); err != nil {
		t.Fatal(err)
	}
	// Warm rerun on the same recorder: every unit is a cache hit now.
	if _, _, err := RunBatched(context.Background(), cfg, units, recBatchRun); err != nil {
		t.Fatal(err)
	}

	s := rec.Report()
	if err := s.Check(); err != nil {
		t.Fatalf("recording violates conservation: %v", err)
	}
	if s.Units != 18 {
		t.Fatalf("recorded %d units, want 18 across both runs", s.Units)
	}
	if s.CacheHits != 9 || s.CacheMisses != 9 {
		t.Errorf("probes = %d hits / %d misses, want 9 / 9", s.CacheHits, s.CacheMisses)
	}
	if s.Failed != 0 || s.Cancelled != 0 {
		t.Errorf("failed/cancelled = %d/%d, want 0/0", s.Failed, s.Cancelled)
	}
	if s.Workers != 2 {
		t.Errorf("workers = %d, want 2", s.Workers)
	}

	// Spans come out in unit enumeration order with a fixed per-unit
	// phase order, so the recording is deterministic modulo wall times.
	lastUnit := -1
	for _, sp := range s.Spans {
		if sp.Unit < lastUnit {
			t.Fatalf("span ordering regressed: unit %d after unit %d", sp.Unit, lastUnit)
		}
		lastUnit = sp.Unit
	}
	var unitSpans, computeSpans, batched int
	for _, sp := range s.Spans {
		switch sp.Phase {
		case trace.SweepPhaseUnit:
			unitSpans++
			if sp.Key == "" {
				t.Errorf("unit span %d lost its run-cache key", sp.Unit)
			}
			if sp.Outcome != trace.SweepRetire {
				t.Errorf("unit span %d outcome %q, want retire", sp.Unit, sp.Outcome)
			}
		case trace.SweepPhaseQueue:
			if sp.Worker != -1 {
				t.Errorf("queue span %d on worker %d, want -1", sp.Unit, sp.Worker)
			}
		case trace.SweepPhaseCompute:
			computeSpans++
			if sp.Width > 1 {
				batched++
				if sp.Batch != "grp" {
					t.Errorf("batched compute span %d has batch %q", sp.Unit, sp.Batch)
				}
			}
		}
	}
	if unitSpans != 18 {
		t.Errorf("%d unit spans, want 18", unitSpans)
	}
	if computeSpans != 9 {
		t.Errorf("%d compute spans, want 9 (warm run computes nothing)", computeSpans)
	}
	// recUnits(9) has units 0,3,6 under one BatchKey at Lanes 2: at least
	// one group of two computes together.
	if batched < 2 {
		t.Errorf("%d batched compute spans, want >= 2", batched)
	}

	// Group formation records cover both runs and explain scalar tasks.
	reasons := map[string]int{}
	var wide int
	for _, g := range s.Groups {
		if g.Width > 1 {
			wide++
			if g.BatchKey != "grp" {
				t.Errorf("wide group has batch key %q", g.BatchKey)
			}
		} else {
			reasons[g.ScalarReason]++
		}
	}
	if wide == 0 {
		t.Error("no lane group recorded")
	}
	if reasons["no-batch-key"] == 0 {
		t.Errorf("no no-batch-key scalar reason recorded: %v", reasons)
	}
	if reasons["singleton"] == 0 {
		t.Errorf("no singleton scalar reason recorded: %v", reasons)
	}
	if s.QueueDelay == nil || s.QueueDelay.Count != 18 {
		t.Errorf("queue-delay histogram = %+v, want 18 observations", s.QueueDelay)
	}
	if s.UnitLatency == nil || s.UnitLatency.Count != 9 {
		t.Errorf("unit-latency histogram = %+v, want 9 computed retires", s.UnitLatency)
	}
}

// TestRecorderFailureAndCancel: a failing unit records a fail terminal,
// units drained by the cancellation record cancels, and the recording
// still satisfies Check (the sweep-gate property).
func TestRecorderFailureAndCancel(t *testing.T) {
	rec := NewSweepRecorder()
	units := make([]Unit[int], 8)
	for i := range units {
		i := i
		units[i] = Unit[int]{
			Label: fmt.Sprintf("u%d", i),
			Run: func(ctx context.Context) (int, error) {
				if i == 0 {
					return 0, fmt.Errorf("boom")
				}
				return i, nil
			},
		}
	}
	_, _, err := Run(context.Background(), Config{Jobs: 1, Recorder: rec}, units)
	if err == nil {
		t.Fatal("expected unit failure")
	}
	s := rec.Report()
	if err := s.Check(); err != nil {
		t.Fatalf("failed-run recording violates conservation: %v", err)
	}
	if s.Failed != 1 {
		t.Errorf("failed = %d, want 1", s.Failed)
	}
	if s.Cancelled == 0 {
		t.Error("no cancelled units recorded after a jobs=1 failure drain")
	}
	if s.WastedUS < 0 {
		t.Errorf("wasted = %d", s.WastedUS)
	}
	// A cancelled-before-dequeue unit keeps worker -1 on its unit span.
	sawUndequeued := false
	for _, sp := range s.Spans {
		if sp.Phase == trace.SweepPhaseUnit && sp.Outcome == trace.SweepCancel && sp.Worker == -1 {
			sawUndequeued = true
		}
	}
	if !sawUndequeued {
		t.Error("no never-dequeued cancelled unit span (worker -1)")
	}
}

// TestRecorderMidRunReport: Report taken while units are still open
// charges them as cancelled-at-now, so a live dashboard snapshot is
// always a valid recording.
func TestRecorderMidRunReport(t *testing.T) {
	rec := NewSweepRecorder()
	units := recUnits(3)
	_ = recorderAddRun(rec, units, [][]int{{0}, {1}, {2}}, 2, 1)
	rec.dequeue(0, 0)
	rec.computeStart(0)
	s := rec.Report()
	if err := s.Check(); err != nil {
		t.Fatalf("mid-run recording violates conservation: %v", err)
	}
	if s.Cancelled != 3 {
		t.Errorf("open units charged as %d cancelled, want 3", s.Cancelled)
	}
}

// TestRecorderOffByteIdentical is the nil-hook contract: attaching a
// recorder must not change results or engine statistics in any way —
// byte-identical outputs, identical hit/miss accounting.
func TestRecorderOffByteIdentical(t *testing.T) {
	run := func(rec *SweepRecorder) ([]int, Stats, []int, Stats) {
		t.Helper()
		cache, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		units := recUnits(12)
		cfg := Config{Jobs: 3, Lanes: 2, Cache: cache, Recorder: rec}
		cold, coldSt, err := RunBatched(context.Background(), cfg, units, recBatchRun)
		if err != nil {
			t.Fatal(err)
		}
		warm, warmSt, err := RunBatched(context.Background(), cfg, units, recBatchRun)
		if err != nil {
			t.Fatal(err)
		}
		return cold, coldSt, warm, warmSt
	}
	coldOff, coldStOff, warmOff, warmStOff := run(nil)
	coldOn, coldStOn, warmOn, warmStOn := run(NewSweepRecorder())

	if !reflect.DeepEqual(coldOff, coldOn) || !reflect.DeepEqual(warmOff, warmOn) {
		t.Errorf("results differ with a recorder attached:\noff %v / %v\non  %v / %v",
			coldOff, warmOff, coldOn, warmOn)
	}
	type counts struct{ jobs, hits, misses, units int }
	c := func(s Stats) counts { return counts{s.Jobs, s.CacheHits, s.CacheMisses, len(s.Units)} }
	if c(coldStOff) != c(coldStOn) || c(warmStOff) != c(warmStOn) {
		t.Errorf("stats differ with a recorder attached:\noff %+v / %+v\non  %+v / %+v",
			c(coldStOff), c(warmStOff), c(coldStOn), c(warmStOn))
	}
	for i := range coldStOff.Units {
		if coldStOff.Units[i].Label != coldStOn.Units[i].Label ||
			coldStOff.Units[i].CacheHit != coldStOn.Units[i].CacheHit {
			t.Fatalf("unit %d stat drifted: off %+v, on %+v", i, coldStOff.Units[i], coldStOn.Units[i])
		}
	}
}

// TestRecorderOffZeroAlloc pins the hot-path cost of the nil recorder:
// the marginal allocations per additional unit must not grow when the
// recorder hooks are compiled in but disabled. The engine itself
// allocates a fixed small amount per unit (monitor-free, cache-free
// path); the recorder must add zero to that margin.
func TestRecorderOffZeroAlloc(t *testing.T) {
	mk := func(n int) []Unit[int] {
		units := make([]Unit[int], n)
		for i := range units {
			units[i] = Unit[int]{Label: "u", Run: func(ctx context.Context) (int, error) { return 1, nil }}
		}
		return units
	}
	ctx := context.Background()
	measure := func(n int) float64 {
		units := mk(n)
		return testing.AllocsPerRun(20, func() {
			if _, _, err := Run(ctx, Config{Jobs: 1}, units); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, big := measure(1), measure(101)
	perUnit := (big - small) / 100
	// The scalar path costs one allocation per unit (its done closure);
	// any recorder bookkeeping on the off path would push this up.
	if perUnit > 1.5 {
		t.Errorf("nil-recorder marginal cost = %.2f allocs/unit (1 unit: %.0f, 101 units: %.0f), want <= 1.5",
			perUnit, small, big)
	}
}
