package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunOrder: results come back in enumeration order no matter how the
// scheduler interleaves the workers.
func TestRunOrder(t *testing.T) {
	const n = 50
	var units []Unit[int]
	for i := 0; i < n; i++ {
		units = append(units, Unit[int]{
			Label: fmt.Sprintf("u%d", i),
			Run:   func(context.Context) (int, error) { return i * i, nil },
		})
	}
	for _, jobs := range []int{1, 4, 16} {
		res, st, err := Run(context.Background(), Config{Jobs: jobs}, units)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(res) != n || len(st.Units) != n {
			t.Fatalf("jobs=%d: got %d results, %d unit stats", jobs, len(res), len(st.Units))
		}
		for i, v := range res {
			if v != i*i {
				t.Fatalf("jobs=%d: res[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
		for i, u := range st.Units {
			if u.Label != units[i].Label {
				t.Fatalf("jobs=%d: stats[%d] = %q, want %q", jobs, i, u.Label, units[i].Label)
			}
		}
	}
}

// TestRunFirstError: the lowest-indexed failure wins regardless of which
// worker sees its error first, and later units are cancelled.
func TestRunFirstError(t *testing.T) {
	errA := errors.New("unit 3 failed")
	var ran atomic.Int64
	var units []Unit[int]
	for i := 0; i < 100; i++ {
		units = append(units, Unit[int]{
			Label: fmt.Sprintf("u%d", i),
			Run: func(context.Context) (int, error) {
				ran.Add(1)
				if i == 3 {
					return 0, errA
				}
				return i, nil
			},
		})
	}
	_, _, err := Run(context.Background(), Config{Jobs: 4}, units)
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want %v", err, errA)
	}
	if got := ran.Load(); got == 100 {
		t.Logf("all 100 units ran before cancellation (slow cancel, but legal)")
	}
}

// TestRunBoundedConcurrency: never more than Jobs units in flight.
func TestRunBoundedConcurrency(t *testing.T) {
	const jobs = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	var units []Unit[struct{}]
	for i := 0; i < 30; i++ {
		units = append(units, Unit[struct{}]{
			Label: fmt.Sprintf("u%d", i),
			Run: func(context.Context) (struct{}, error) {
				cur := inFlight.Add(1)
				mu.Lock()
				if cur > peak.Load() {
					peak.Store(cur)
				}
				mu.Unlock()
				defer inFlight.Add(-1)
				return struct{}{}, nil
			},
		})
	}
	if _, _, err := Run(context.Background(), Config{Jobs: jobs}, units); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Fatalf("peak concurrency %d exceeds Jobs=%d", p, jobs)
	}
}

func TestRunEmpty(t *testing.T) {
	res, st, err := Run[int](context.Background(), Config{}, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run: res=%v err=%v", res, err)
	}
	if st.Jobs != 0 {
		t.Fatalf("empty run reported %d jobs", st.Jobs)
	}
}

type payload struct {
	A int
	B string
}

// TestCacheRoundTrip: second run with the same keys is served from disk
// and produces identical results.
func TestCacheRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var computed atomic.Int64
	mk := func() []Unit[payload] {
		var units []Unit[payload]
		for i := 0; i < 8; i++ {
			units = append(units, Unit[payload]{
				Label: fmt.Sprintf("u%d", i),
				Key:   Key("test", i),
				Run: func(context.Context) (payload, error) {
					computed.Add(1)
					return payload{A: i, B: fmt.Sprintf("v%d", i)}, nil
				},
			})
		}
		return units
	}

	r1, st1, err := Run(context.Background(), Config{Jobs: 2, Cache: c}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHits != 0 || st1.CacheMisses != 8 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/8", st1.CacheHits, st1.CacheMisses)
	}
	r2, st2, err := Run(context.Background(), Config{Jobs: 2, Cache: c}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if st2.CacheHits != 8 || st2.CacheMisses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 8/0", st2.CacheHits, st2.CacheMisses)
	}
	if computed.Load() != 8 {
		t.Fatalf("units computed %d times, want 8", computed.Load())
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("r1[%d]=%+v != r2[%d]=%+v", i, r1[i], i, r2[i])
		}
		if !st2.Units[i].CacheHit {
			t.Fatalf("warm run unit %d not marked as a cache hit", i)
		}
	}
}

// TestCacheCorruptEntry: a mangled cache file is recomputed, not trusted.
func TestCacheCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("corrupt", 1)
	unit := Unit[payload]{Label: "u", Key: key, Run: func(context.Context) (payload, error) {
		return payload{A: 7}, nil
	}}
	if _, _, err := Run(context.Background(), Config{Cache: c}, []Unit[payload]{unit}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, st, err := Run(context.Background(), Config{Cache: c}, []Unit[payload]{unit})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].A != 7 {
		t.Fatalf("recomputed value = %+v", res[0])
	}
	if st.CacheHits != 0 || st.CacheMisses != 1 {
		t.Fatalf("corrupt entry counted as a hit (hits=%d misses=%d)", st.CacheHits, st.CacheMisses)
	}
	// The recompute should have repaired the entry.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var p payload
	if err := json.Unmarshal(b, &p); err != nil || p.A != 7 {
		t.Fatalf("cache entry not repaired: %q err=%v", b, err)
	}
}

// TestKeyStability: Key is a pure function of its parts — equal parts give
// equal keys, different parts or orders give different keys.
func TestKeyStability(t *testing.T) {
	a := Key("x", 1, payload{A: 2, B: "b"})
	b := Key("x", 1, payload{A: 2, B: "b"})
	if a != b {
		t.Fatalf("same parts produced different keys: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(a))
	}
	if Key("x", 1) == Key("1", "x") {
		t.Fatal("reordered parts collide")
	}
	if Key("x", 1) == Key("x", 2) {
		t.Fatal("distinct parts collide")
	}
}

// TestUncachedUnitsAlwaysRun: Key == "" bypasses the cache entirely.
func TestUncachedUnitsAlwaysRun(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	unit := Unit[int]{Label: "anon", Run: func(context.Context) (int, error) {
		return int(n.Add(1)), nil
	}}
	for want := 1; want <= 2; want++ {
		res, st, err := Run(context.Background(), Config{Cache: c}, []Unit[int]{unit})
		if err != nil {
			t.Fatal(err)
		}
		if res[0] != want {
			t.Fatalf("run %d returned %d, want %d (cached?)", want, res[0], want)
		}
		if st.CacheHits != 0 || st.CacheMisses != 0 {
			t.Fatalf("keyless unit touched the cache: hits=%d misses=%d", st.CacheHits, st.CacheMisses)
		}
	}
}

// TestRunContextCancelled: a pre-cancelled context stops the run.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	var units []Unit[int]
	for i := 0; i < 10; i++ {
		units = append(units, Unit[int]{Label: fmt.Sprintf("u%d", i),
			Run: func(context.Context) (int, error) { ran.Add(1); return i, nil }})
	}
	_, _, err := Run(ctx, Config{Jobs: 2}, units)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if ran.Load() == 10 {
		t.Log("all units ran despite cancellation (legal but slow)")
	}
}
