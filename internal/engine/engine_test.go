package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunOrder: results come back in enumeration order no matter how the
// scheduler interleaves the workers.
func TestRunOrder(t *testing.T) {
	const n = 50
	var units []Unit[int]
	for i := 0; i < n; i++ {
		units = append(units, Unit[int]{
			Label: fmt.Sprintf("u%d", i),
			Run:   func(context.Context) (int, error) { return i * i, nil },
		})
	}
	for _, jobs := range []int{1, 4, 16} {
		res, st, err := Run(context.Background(), Config{Jobs: jobs}, units)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(res) != n || len(st.Units) != n {
			t.Fatalf("jobs=%d: got %d results, %d unit stats", jobs, len(res), len(st.Units))
		}
		for i, v := range res {
			if v != i*i {
				t.Fatalf("jobs=%d: res[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
		for i, u := range st.Units {
			if u.Label != units[i].Label {
				t.Fatalf("jobs=%d: stats[%d] = %q, want %q", jobs, i, u.Label, units[i].Label)
			}
		}
	}
}

// TestRunFirstError: the lowest-indexed failure wins regardless of which
// worker sees its error first, and later units are cancelled.
func TestRunFirstError(t *testing.T) {
	errA := errors.New("unit 3 failed")
	var ran atomic.Int64
	var units []Unit[int]
	for i := 0; i < 100; i++ {
		units = append(units, Unit[int]{
			Label: fmt.Sprintf("u%d", i),
			Run: func(context.Context) (int, error) {
				ran.Add(1)
				if i == 3 {
					return 0, errA
				}
				return i, nil
			},
		})
	}
	_, _, err := Run(context.Background(), Config{Jobs: 4}, units)
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want %v", err, errA)
	}
	if got := ran.Load(); got == 100 {
		t.Logf("all 100 units ran before cancellation (slow cancel, but legal)")
	}
}

// TestRunBoundedConcurrency: never more than Jobs units in flight.
func TestRunBoundedConcurrency(t *testing.T) {
	const jobs = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	var units []Unit[struct{}]
	for i := 0; i < 30; i++ {
		units = append(units, Unit[struct{}]{
			Label: fmt.Sprintf("u%d", i),
			Run: func(context.Context) (struct{}, error) {
				cur := inFlight.Add(1)
				mu.Lock()
				if cur > peak.Load() {
					peak.Store(cur)
				}
				mu.Unlock()
				defer inFlight.Add(-1)
				return struct{}{}, nil
			},
		})
	}
	if _, _, err := Run(context.Background(), Config{Jobs: jobs}, units); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Fatalf("peak concurrency %d exceeds Jobs=%d", p, jobs)
	}
}

func TestRunEmpty(t *testing.T) {
	res, st, err := Run[int](context.Background(), Config{}, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run: res=%v err=%v", res, err)
	}
	if st.Jobs != 0 {
		t.Fatalf("empty run reported %d jobs", st.Jobs)
	}
}

type payload struct {
	A int
	B string
}

// TestCacheRoundTrip: second run with the same keys is served from disk
// and produces identical results.
func TestCacheRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var computed atomic.Int64
	mk := func() []Unit[payload] {
		var units []Unit[payload]
		for i := 0; i < 8; i++ {
			units = append(units, Unit[payload]{
				Label: fmt.Sprintf("u%d", i),
				Key:   Key("test", i),
				Run: func(context.Context) (payload, error) {
					computed.Add(1)
					return payload{A: i, B: fmt.Sprintf("v%d", i)}, nil
				},
			})
		}
		return units
	}

	r1, st1, err := Run(context.Background(), Config{Jobs: 2, Cache: c}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHits != 0 || st1.CacheMisses != 8 {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/8", st1.CacheHits, st1.CacheMisses)
	}
	r2, st2, err := Run(context.Background(), Config{Jobs: 2, Cache: c}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if st2.CacheHits != 8 || st2.CacheMisses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want 8/0", st2.CacheHits, st2.CacheMisses)
	}
	if computed.Load() != 8 {
		t.Fatalf("units computed %d times, want 8", computed.Load())
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("r1[%d]=%+v != r2[%d]=%+v", i, r1[i], i, r2[i])
		}
		if !st2.Units[i].CacheHit {
			t.Fatalf("warm run unit %d not marked as a cache hit", i)
		}
	}
}

// TestCacheCorruptEntry: a mangled cache file is recomputed, not trusted.
func TestCacheCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("corrupt", 1)
	unit := Unit[payload]{Label: "u", Key: key, Run: func(context.Context) (payload, error) {
		return payload{A: 7}, nil
	}}
	if _, _, err := Run(context.Background(), Config{Cache: c}, []Unit[payload]{unit}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, st, err := Run(context.Background(), Config{Cache: c}, []Unit[payload]{unit})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].A != 7 {
		t.Fatalf("recomputed value = %+v", res[0])
	}
	if st.CacheHits != 0 || st.CacheMisses != 1 {
		t.Fatalf("corrupt entry counted as a hit (hits=%d misses=%d)", st.CacheHits, st.CacheMisses)
	}
	// The recompute should have repaired the entry.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var p payload
	if err := json.Unmarshal(b, &p); err != nil || p.A != 7 {
		t.Fatalf("cache entry not repaired: %q err=%v", b, err)
	}
}

// TestKeyStability: Key is a pure function of its parts — equal parts give
// equal keys, different parts or orders give different keys.
func TestKeyStability(t *testing.T) {
	a := Key("x", 1, payload{A: 2, B: "b"})
	b := Key("x", 1, payload{A: 2, B: "b"})
	if a != b {
		t.Fatalf("same parts produced different keys: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(a))
	}
	if Key("x", 1) == Key("1", "x") {
		t.Fatal("reordered parts collide")
	}
	if Key("x", 1) == Key("x", 2) {
		t.Fatal("distinct parts collide")
	}
}

// TestUncachedUnitsAlwaysRun: Key == "" bypasses the cache entirely.
func TestUncachedUnitsAlwaysRun(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	unit := Unit[int]{Label: "anon", Run: func(context.Context) (int, error) {
		return int(n.Add(1)), nil
	}}
	for want := 1; want <= 2; want++ {
		res, st, err := Run(context.Background(), Config{Cache: c}, []Unit[int]{unit})
		if err != nil {
			t.Fatal(err)
		}
		if res[0] != want {
			t.Fatalf("run %d returned %d, want %d (cached?)", want, res[0], want)
		}
		if st.CacheHits != 0 || st.CacheMisses != 0 {
			t.Fatalf("keyless unit touched the cache: hits=%d misses=%d", st.CacheHits, st.CacheMisses)
		}
	}
}

// TestRunContextCancelled: a pre-cancelled context stops the run.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	var units []Unit[int]
	for i := 0; i < 10; i++ {
		units = append(units, Unit[int]{Label: fmt.Sprintf("u%d", i),
			Run: func(context.Context) (int, error) { ran.Add(1); return i, nil }})
	}
	_, _, err := Run(ctx, Config{Jobs: 2}, units)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if ran.Load() == 10 {
		t.Log("all units ran despite cancellation (legal but slow)")
	}
}

// TestRunBatchedGroups: same-BatchKey units coalesce into batches of at
// most Lanes, units without a BatchKey stay scalar, and results land in
// enumeration order either way.
func TestRunBatchedGroups(t *testing.T) {
	var units []Unit[int]
	for i := 0; i < 10; i++ {
		key := "g1"
		if i >= 6 {
			key = "g2"
		}
		if i == 9 {
			key = "" // scalar straggler
		}
		units = append(units, Unit[int]{
			Label:    fmt.Sprintf("u%d", i),
			BatchKey: key,
			Run:      func(context.Context) (int, error) { return 100 + i, nil },
		})
	}
	var mu sync.Mutex
	var batches [][]int
	batchRun := func(_ context.Context, idxs []int) ([]int, []error) {
		mu.Lock()
		batches = append(batches, append([]int(nil), idxs...))
		mu.Unlock()
		vs := make([]int, len(idxs))
		for j, i := range idxs {
			vs[j] = 100 + i
		}
		return vs, make([]error, len(idxs))
	}
	res, _, err := RunBatched(context.Background(), Config{Jobs: 2, Lanes: 4}, units, batchRun)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != 100+i {
			t.Fatalf("res[%d] = %d, want %d", i, v, 100+i)
		}
	}
	// g1 = {0..5} chunks to [0 1 2 3] + [4 5]; g2 = {6,7,8} is one batch;
	// unit 9 is scalar (never passed to batchRun).
	want := map[string]bool{"[0 1 2 3]": true, "[4 5]": true, "[6 7 8]": true}
	if len(batches) != 3 {
		t.Fatalf("got %d batches %v, want 3", len(batches), batches)
	}
	for _, b := range batches {
		if !want[fmt.Sprint(b)] {
			t.Fatalf("unexpected batch %v (all: %v)", b, batches)
		}
	}
}

// TestRunBatchedPerUnitCache: a batch probes and fills the cache per
// unit, so a later scalar run over the same keys is served entirely from
// cache, and a partially cached batch hands batchRun only the misses.
func TestRunBatchedPerUnitCache(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []Unit[int] {
		var units []Unit[int]
		for i := 0; i < 4; i++ {
			units = append(units, Unit[int]{
				Label:    fmt.Sprintf("u%d", i),
				Key:      fmt.Sprintf("key%d", i),
				BatchKey: "g",
				Run:      func(context.Context) (int, error) { return 7 * i, nil },
			})
		}
		return units
	}
	batchRun := func(_ context.Context, idxs []int) ([]int, []error) {
		vs := make([]int, len(idxs))
		for j, i := range idxs {
			vs[j] = 7 * i
		}
		return vs, make([]error, len(idxs))
	}
	// Pre-seed unit 2's entry, then run the batch: batchRun must see the
	// other three only.
	data, _ := json.Marshal(14)
	c.Put("key2", data)
	var got [][]int
	probe := func(ctx context.Context, idxs []int) ([]int, []error) {
		got = append(got, append([]int(nil), idxs...))
		return batchRun(ctx, idxs)
	}
	_, st, err := RunBatched(context.Background(), Config{Jobs: 1, Lanes: 4, Cache: c}, mk(), probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || fmt.Sprint(got[0]) != "[0 1 3]" {
		t.Fatalf("batchRun saw %v, want [[0 1 3]]", got)
	}
	if st.CacheHits != 1 || st.CacheMisses != 3 {
		t.Fatalf("hits/misses = %d/%d, want 1/3", st.CacheHits, st.CacheMisses)
	}
	// Second run: all four served from per-unit entries, batchRun unused.
	got = nil
	res, st2, err := RunBatched(context.Background(), Config{Jobs: 1, Lanes: 4, Cache: c}, mk(), probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("batchRun ran on fully cached units: %v", got)
	}
	if st2.CacheHits != 4 {
		t.Fatalf("hits = %d, want 4", st2.CacheHits)
	}
	for i, v := range res {
		if v != 7*i {
			t.Fatalf("res[%d] = %d, want %d", i, v, 7*i)
		}
	}
}

// TestRunBatchedErrorAttribution: a failing unit inside a batch fails
// the run with its own label and index, and the lowest-indexed failure
// wins; batch siblings still get their results.
func TestRunBatchedErrorAttribution(t *testing.T) {
	errB := errors.New("lane blew up")
	var units []Unit[int]
	for i := 0; i < 4; i++ {
		units = append(units, Unit[int]{
			Label:    fmt.Sprintf("u%d", i),
			BatchKey: "g",
			Run:      func(context.Context) (int, error) { return i, nil },
		})
	}
	batchRun := func(_ context.Context, idxs []int) ([]int, []error) {
		vs := make([]int, len(idxs))
		errs := make([]error, len(idxs))
		for j, i := range idxs {
			if i == 1 {
				errs[j] = errB
				continue
			}
			vs[j] = i
		}
		return vs, errs
	}
	_, _, err := RunBatched(context.Background(), Config{Jobs: 1, Lanes: 4}, units, batchRun)
	if !errors.Is(err, errB) {
		t.Fatalf("err = %v, want %v", err, errB)
	}
	if want := "u1: lane blew up"; err.Error() != want {
		t.Fatalf("err = %q, want %q", err.Error(), want)
	}
}

// TestRunBatchedLanesDisabled: Lanes <= 1 (or a nil batchRun) degrades
// to the scalar scheduler even when units carry batch keys.
func TestRunBatchedLanesDisabled(t *testing.T) {
	var units []Unit[int]
	for i := 0; i < 4; i++ {
		units = append(units, Unit[int]{
			Label:    fmt.Sprintf("u%d", i),
			BatchKey: "g",
			Run:      func(context.Context) (int, error) { return i, nil },
		})
	}
	called := false
	batchRun := func(_ context.Context, idxs []int) ([]int, []error) {
		called = true
		return make([]int, len(idxs)), make([]error, len(idxs))
	}
	res, _, err := RunBatched(context.Background(), Config{Jobs: 2, Lanes: 1}, units, batchRun)
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("batchRun called with Lanes=1")
	}
	for i, v := range res {
		if v != i {
			t.Fatalf("res[%d] = %d, want %d", i, v, i)
		}
	}
}
