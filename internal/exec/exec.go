// Package exec implements the architectural semantics of the vanguard ISA
// as a single-step function shared by the functional interpreter (the
// golden model) and the pipeline simulator's execute stage. Sharing one
// Step guarantees the timing model computes exactly the architectural
// results the golden model does.
//
// The package also implements the fault model for control speculation:
// a speculative load (LDS) whose address faults writes zero and poisons
// its destination; poison propagates through dataflow and trips an
// architectural fault only when consumed by a side-effecting operation
// (store operands, branch/resolve conditions, return targets, or plain
// load addresses) — the same discipline as Itanium NaT bits.
package exec

import (
	"fmt"
	"math"

	"vanguard/internal/isa"
)

// Memory is the data-memory interface Step loads from and stores to.
// *mem.Memory implements it directly; the pipeline interposes a
// store-buffer view so that speculative stores stay squashable.
type Memory interface {
	Load(addr uint64) (int64, error)
	Store(addr uint64, v int64) error
}

// State is the architectural state of the machine.
type State struct {
	Regs   [isa.NumRegs]int64
	Poison [isa.NumRegs]bool
	Mem    Memory
	PC     int
	Halted bool
}

// NewState returns a fresh state over the given memory, starting at entry.
func NewState(m Memory, entry int) *State {
	return &State{Mem: m, PC: entry}
}

// F reads an FP register as float64.
func (s *State) F(r isa.Reg) float64 { return math.Float64frombits(uint64(s.Regs[r])) }

// SetF writes an FP register from a float64.
func (s *State) SetF(r isa.Reg, v float64) { s.Regs[r] = int64(math.Float64bits(v)) }

// PoisonFault is the architectural fault raised when a poisoned value
// (from a suppressed speculative-load fault) is consumed by a
// side-effecting operation on the committed path.
type PoisonFault struct {
	PC  int
	Reg isa.Reg
}

// Error implements the error interface.
func (p *PoisonFault) Error() string {
	return fmt.Sprintf("poison fault: %s consumed at pc %d", p.Reg, p.PC)
}

// Result describes the side effects of one executed instruction, for the
// benefit of the timing model.
type Result struct {
	NextPC int
	// Taken reports whether control actually transferred away from the
	// fall-through path (JMP/CALL/RET always; BR/RESOLVE/PREDICT when taken).
	Taken bool
	// CondVal is the evaluated condition (Src1 != 0) of a BR or RESOLVE.
	CondVal bool
	// IsMem/MemAddr describe the data-memory access, if any.
	IsMem   bool
	MemAddr uint64
	// SuppressedFault reports that an LDS faulted and poisoned its dest.
	SuppressedFault bool
	// Halted reports the machine stopped.
	Halted bool
}

// poison1 reports whether source register a carries poison; NoReg never
// does. set0/set1/set2 write a destination register, propagating poison
// from zero, one or two sources. These are fixed-arity leaf methods
// (rather than one variadic helper) so the compiler inlines them into
// Step's per-opcode cases — Step is the simulator's innermost call.
func (st *State) poison1(a isa.Reg) bool { return a != isa.NoReg && st.Poison[a] }

func (st *State) set0(d isa.Reg, v int64) {
	st.Regs[d] = v
	st.Poison[d] = false
}

func (st *State) set1(d isa.Reg, v int64, a isa.Reg) {
	st.Regs[d] = v
	st.Poison[d] = a != isa.NoReg && st.Poison[a]
}

func (st *State) set2(d isa.Reg, v int64, a, b isa.Reg) {
	st.Regs[d] = v
	st.Poison[d] = (a != isa.NoReg && st.Poison[a]) || (b != isa.NoReg && st.Poison[b])
}

// Step executes the instruction at st.PC semantics-wise (the caller passes
// the instruction, typically image.Instrs[st.PC]) and advances st.PC.
// predictTaken supplies the front end's choice for PREDICT instructions
// and is ignored otherwise; the functional interpreter may pass any value
// — program results are identical either way by construction of the
// transformation, which is exactly the property the tests check.
func Step(st *State, ins *isa.Instr, predictTaken bool) (Result, error) {
	res := Result{NextPC: st.PC + 1}
	r := &st.Regs

	switch ins.Op {
	case isa.NOP:

	case isa.ADD:
		st.set2(ins.Dst, r[ins.Src1]+r[ins.Src2], ins.Src1, ins.Src2)
	case isa.SUB:
		st.set2(ins.Dst, r[ins.Src1]-r[ins.Src2], ins.Src1, ins.Src2)
	case isa.MUL:
		st.set2(ins.Dst, r[ins.Src1]*r[ins.Src2], ins.Src1, ins.Src2)
	case isa.DIV:
		var v int64
		if d := r[ins.Src2]; d != 0 {
			v = r[ins.Src1] / d
		}
		st.set2(ins.Dst, v, ins.Src1, ins.Src2)
	case isa.REM:
		var v int64
		if d := r[ins.Src2]; d != 0 {
			v = r[ins.Src1] % d
		}
		st.set2(ins.Dst, v, ins.Src1, ins.Src2)
	case isa.AND:
		st.set2(ins.Dst, r[ins.Src1]&r[ins.Src2], ins.Src1, ins.Src2)
	case isa.OR:
		st.set2(ins.Dst, r[ins.Src1]|r[ins.Src2], ins.Src1, ins.Src2)
	case isa.XOR:
		st.set2(ins.Dst, r[ins.Src1]^r[ins.Src2], ins.Src1, ins.Src2)
	case isa.SHL:
		st.set2(ins.Dst, r[ins.Src1]<<(uint64(r[ins.Src2])&63), ins.Src1, ins.Src2)
	case isa.SHR:
		st.set2(ins.Dst, r[ins.Src1]>>(uint64(r[ins.Src2])&63), ins.Src1, ins.Src2)
	case isa.ADDI:
		st.set1(ins.Dst, r[ins.Src1]+ins.Imm, ins.Src1)
	case isa.MULI:
		st.set1(ins.Dst, r[ins.Src1]*ins.Imm, ins.Src1)
	case isa.ANDI:
		st.set1(ins.Dst, r[ins.Src1]&ins.Imm, ins.Src1)
	case isa.LI:
		st.set0(ins.Dst, ins.Imm)
	case isa.MOV, isa.FMOV:
		st.set1(ins.Dst, r[ins.Src1], ins.Src1)

	case isa.CMPEQ:
		st.set2(ins.Dst, b2i(r[ins.Src1] == r[ins.Src2]), ins.Src1, ins.Src2)
	case isa.CMPNE:
		st.set2(ins.Dst, b2i(r[ins.Src1] != r[ins.Src2]), ins.Src1, ins.Src2)
	case isa.CMPLT:
		st.set2(ins.Dst, b2i(r[ins.Src1] < r[ins.Src2]), ins.Src1, ins.Src2)
	case isa.CMPLE:
		st.set2(ins.Dst, b2i(r[ins.Src1] <= r[ins.Src2]), ins.Src1, ins.Src2)
	case isa.CMPGT:
		st.set2(ins.Dst, b2i(r[ins.Src1] > r[ins.Src2]), ins.Src1, ins.Src2)
	case isa.CMPGE:
		st.set2(ins.Dst, b2i(r[ins.Src1] >= r[ins.Src2]), ins.Src1, ins.Src2)

	case isa.FADD:
		st.set2(ins.Dst, fbits(st.F(ins.Src1)+st.F(ins.Src2)), ins.Src1, ins.Src2)
	case isa.FSUB:
		st.set2(ins.Dst, fbits(st.F(ins.Src1)-st.F(ins.Src2)), ins.Src1, ins.Src2)
	case isa.FMUL:
		st.set2(ins.Dst, fbits(st.F(ins.Src1)*st.F(ins.Src2)), ins.Src1, ins.Src2)
	case isa.FDIV:
		st.set2(ins.Dst, fbits(st.F(ins.Src1)/st.F(ins.Src2)), ins.Src1, ins.Src2)
	case isa.FCMPLT:
		st.set2(ins.Dst, b2i(st.F(ins.Src1) < st.F(ins.Src2)), ins.Src1, ins.Src2)
	case isa.FCMPGE:
		st.set2(ins.Dst, b2i(st.F(ins.Src1) >= st.F(ins.Src2)), ins.Src1, ins.Src2)
	case isa.CVTIF:
		st.set1(ins.Dst, fbits(float64(r[ins.Src1])), ins.Src1)
	case isa.CVTFI:
		st.set1(ins.Dst, int64(st.F(ins.Src1)), ins.Src1)

	case isa.LD:
		if st.poison1(ins.Src1) {
			return res, &PoisonFault{PC: st.PC, Reg: ins.Src1}
		}
		addr := uint64(r[ins.Src1] + ins.Imm)
		res.IsMem, res.MemAddr = true, addr
		v, err := st.Mem.Load(addr)
		if err != nil {
			return res, err
		}
		st.set0(ins.Dst, v)
	case isa.LDS:
		addr := uint64(r[ins.Src1] + ins.Imm)
		res.IsMem, res.MemAddr = true, addr
		if st.poison1(ins.Src1) {
			// A poisoned address chain keeps the chain poisoned; the access
			// itself is suppressed.
			r[ins.Dst] = 0
			st.Poison[ins.Dst] = true
			res.SuppressedFault = true
			break
		}
		v, err := st.Mem.Load(addr)
		if err != nil {
			r[ins.Dst] = 0
			st.Poison[ins.Dst] = true
			res.SuppressedFault = true
			break
		}
		st.set0(ins.Dst, v)
	case isa.ST:
		if st.poison1(ins.Src1) {
			return res, &PoisonFault{PC: st.PC, Reg: ins.Src1}
		}
		if st.poison1(ins.Src2) {
			return res, &PoisonFault{PC: st.PC, Reg: ins.Src2}
		}
		addr := uint64(r[ins.Src1] + ins.Imm)
		res.IsMem, res.MemAddr = true, addr
		if err := st.Mem.Store(addr, r[ins.Src2]); err != nil {
			return res, err
		}

	case isa.CMOV:
		if st.poison1(ins.Src1) {
			// The condition steers architectural state: consuming poison
			// here is a fault, like a branch condition.
			return res, &PoisonFault{PC: st.PC, Reg: ins.Src1}
		}
		res.CondVal = r[ins.Src1] != 0
		if res.CondVal {
			st.set1(ins.Dst, r[ins.Src2], ins.Src2)
		}

	case isa.BR:
		if st.poison1(ins.Src1) {
			return res, &PoisonFault{PC: st.PC, Reg: ins.Src1}
		}
		res.CondVal = r[ins.Src1] != 0
		if res.CondVal {
			res.Taken = true
			res.NextPC = ins.Target
		}
	case isa.JMP:
		res.Taken = true
		res.NextPC = ins.Target
	case isa.CALL:
		r[isa.R(isa.NumIntRegs-1)] = int64(st.PC + 1)
		st.Poison[isa.R(isa.NumIntRegs-1)] = false
		res.Taken = true
		res.NextPC = ins.Target
	case isa.RET:
		if st.poison1(ins.Src1) {
			return res, &PoisonFault{PC: st.PC, Reg: ins.Src1}
		}
		res.Taken = true
		res.NextPC = int(r[ins.Src1])
	case isa.HALT:
		st.Halted = true
		res.Halted = true
		res.NextPC = st.PC
	case isa.PREDICT:
		if predictTaken {
			res.Taken = true
			res.NextPC = ins.Target
		}
	case isa.RESOLVE:
		if st.poison1(ins.Src1) {
			return res, &PoisonFault{PC: st.PC, Reg: ins.Src1}
		}
		res.CondVal = r[ins.Src1] != 0
		if res.CondVal != ins.Expect {
			res.Taken = true
			res.NextPC = ins.Target
		}

	default:
		// Name the opcode explicitly via Op.String() so the message stays
		// a readable mnemonic (or "op(N)" for a value outside the table)
		// even if Op's default formatting ever changes.
		return res, fmt.Errorf("exec: unknown opcode %s at pc %d", ins.Op.String(), st.PC)
	}

	st.PC = res.NextPC
	return res, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func fbits(f float64) int64 { return int64(math.Float64bits(f)) }
