// Kernel compilation: the predecode-time replacement for Step's 30-way
// opcode switch. At image load every PC is compiled into a fixed
// func(*State) (Result, error) kernel with its operands pre-resolved —
// registers, immediates, control targets, expected outcomes and
// poison-source sets are baked into the closure — so the simulator's
// innermost loop makes one direct-through-pointer call per instruction
// instead of re-decoding the instruction word through a shared,
// megamorphic dispatch site. Step stays as the reference semantics; the
// property tests in kernel_test.go prove every compiled kernel
// byte-equivalent to it on state, result and error for every opcode.
//
// On top of per-PC kernels, CompileProgram adds straight-line fusion for
// the functional interpreter: maximal runs of non-control, non-memory,
// non-poison-faulting instructions (pure register ops — they cannot
// fault, branch, or touch memory) are compiled into one fused unit of
// work that executes the whole run with a single PC update and no
// per-instruction Result construction. The pipeline deliberately keeps
// per-PC kernels only: fusing would merge issue slots and change timing.
package exec

import (
	"fmt"

	"vanguard/internal/isa"
)

// Dispatch selects how the simulators execute instruction semantics.
type Dispatch uint8

const (
	// DispatchKernels (the default) executes through per-PC compiled
	// kernels; the functional interpreter additionally uses fused
	// straight-line runs.
	DispatchKernels Dispatch = iota
	// DispatchSwitch executes through the reference Step switch.
	DispatchSwitch
)

// String returns the CLI-facing name of the dispatch mode.
func (d Dispatch) String() string {
	if d == DispatchSwitch {
		return "switch"
	}
	return "kernels"
}

// ParseDispatch parses a -dispatch flag value.
func ParseDispatch(s string) (Dispatch, error) {
	switch s {
	case "kernels":
		return DispatchKernels, nil
	case "switch":
		return DispatchSwitch, nil
	}
	return DispatchKernels, fmt.Errorf("unknown dispatch mode %q (want kernels or switch)", s)
}

// Kernel is one instruction's compiled semantics: calling it executes the
// instruction exactly as Step would at its compile-time PC (including the
// final State.PC update) and returns the same Result and error. A kernel
// for a PREDICT instruction executes the not-taken (fall-through) choice;
// callers steering PREDICT by a live predictor or oracle must use Step.
type Kernel func(*State) (Result, error)

// Compile compiles the instruction at pc into a Kernel. Unknown opcodes
// are rejected here, at compile time, rather than surfacing as a step-time
// error mid-simulation.
func Compile(ins *isa.Instr, pc int) (Kernel, error) {
	next := pc + 1
	d, s1, s2 := ins.Dst, ins.Src1, ins.Src2
	imm := ins.Imm
	tgt := ins.Target

	switch ins.Op {
	case isa.NOP:
		return func(st *State) (Result, error) {
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil

	case isa.ADD:
		return func(st *State) (Result, error) {
			st.set2(d, st.Regs[s1]+st.Regs[s2], s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.SUB:
		return func(st *State) (Result, error) {
			st.set2(d, st.Regs[s1]-st.Regs[s2], s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.MUL:
		return func(st *State) (Result, error) {
			st.set2(d, st.Regs[s1]*st.Regs[s2], s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.DIV:
		return func(st *State) (Result, error) {
			var v int64
			if dv := st.Regs[s2]; dv != 0 {
				v = st.Regs[s1] / dv
			}
			st.set2(d, v, s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.REM:
		return func(st *State) (Result, error) {
			var v int64
			if dv := st.Regs[s2]; dv != 0 {
				v = st.Regs[s1] % dv
			}
			st.set2(d, v, s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.AND:
		return func(st *State) (Result, error) {
			st.set2(d, st.Regs[s1]&st.Regs[s2], s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.OR:
		return func(st *State) (Result, error) {
			st.set2(d, st.Regs[s1]|st.Regs[s2], s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.XOR:
		return func(st *State) (Result, error) {
			st.set2(d, st.Regs[s1]^st.Regs[s2], s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.SHL:
		return func(st *State) (Result, error) {
			st.set2(d, st.Regs[s1]<<(uint64(st.Regs[s2])&63), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.SHR:
		return func(st *State) (Result, error) {
			st.set2(d, st.Regs[s1]>>(uint64(st.Regs[s2])&63), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.ADDI:
		return func(st *State) (Result, error) {
			st.set1(d, st.Regs[s1]+imm, s1)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.MULI:
		return func(st *State) (Result, error) {
			st.set1(d, st.Regs[s1]*imm, s1)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.ANDI:
		return func(st *State) (Result, error) {
			st.set1(d, st.Regs[s1]&imm, s1)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.LI:
		return func(st *State) (Result, error) {
			st.set0(d, imm)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.MOV, isa.FMOV:
		return func(st *State) (Result, error) {
			st.set1(d, st.Regs[s1], s1)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil

	case isa.CMPEQ:
		return func(st *State) (Result, error) {
			st.set2(d, b2i(st.Regs[s1] == st.Regs[s2]), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.CMPNE:
		return func(st *State) (Result, error) {
			st.set2(d, b2i(st.Regs[s1] != st.Regs[s2]), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.CMPLT:
		return func(st *State) (Result, error) {
			st.set2(d, b2i(st.Regs[s1] < st.Regs[s2]), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.CMPLE:
		return func(st *State) (Result, error) {
			st.set2(d, b2i(st.Regs[s1] <= st.Regs[s2]), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.CMPGT:
		return func(st *State) (Result, error) {
			st.set2(d, b2i(st.Regs[s1] > st.Regs[s2]), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.CMPGE:
		return func(st *State) (Result, error) {
			st.set2(d, b2i(st.Regs[s1] >= st.Regs[s2]), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil

	case isa.FADD:
		return func(st *State) (Result, error) {
			st.set2(d, fbits(st.F(s1)+st.F(s2)), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.FSUB:
		return func(st *State) (Result, error) {
			st.set2(d, fbits(st.F(s1)-st.F(s2)), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.FMUL:
		return func(st *State) (Result, error) {
			st.set2(d, fbits(st.F(s1)*st.F(s2)), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.FDIV:
		return func(st *State) (Result, error) {
			st.set2(d, fbits(st.F(s1)/st.F(s2)), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.FCMPLT:
		return func(st *State) (Result, error) {
			st.set2(d, b2i(st.F(s1) < st.F(s2)), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.FCMPGE:
		return func(st *State) (Result, error) {
			st.set2(d, b2i(st.F(s1) >= st.F(s2)), s1, s2)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.CVTIF:
		return func(st *State) (Result, error) {
			st.set1(d, fbits(float64(st.Regs[s1])), s1)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.CVTFI:
		return func(st *State) (Result, error) {
			st.set1(d, int64(st.F(s1)), s1)
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil

	case isa.LD:
		return func(st *State) (Result, error) {
			if st.poison1(s1) {
				return Result{NextPC: next}, &PoisonFault{PC: pc, Reg: s1}
			}
			addr := uint64(st.Regs[s1] + imm)
			res := Result{NextPC: next, IsMem: true, MemAddr: addr}
			v, err := st.Mem.Load(addr)
			if err != nil {
				return res, err
			}
			st.set0(d, v)
			st.PC = next
			return res, nil
		}, nil
	case isa.LDS:
		return func(st *State) (Result, error) {
			addr := uint64(st.Regs[s1] + imm)
			res := Result{NextPC: next, IsMem: true, MemAddr: addr}
			if st.poison1(s1) {
				st.Regs[d] = 0
				st.Poison[d] = true
				res.SuppressedFault = true
				st.PC = next
				return res, nil
			}
			v, err := st.Mem.Load(addr)
			if err != nil {
				st.Regs[d] = 0
				st.Poison[d] = true
				res.SuppressedFault = true
				st.PC = next
				return res, nil
			}
			st.set0(d, v)
			st.PC = next
			return res, nil
		}, nil
	case isa.ST:
		return func(st *State) (Result, error) {
			if st.poison1(s1) {
				return Result{NextPC: next}, &PoisonFault{PC: pc, Reg: s1}
			}
			if st.poison1(s2) {
				return Result{NextPC: next}, &PoisonFault{PC: pc, Reg: s2}
			}
			addr := uint64(st.Regs[s1] + imm)
			res := Result{NextPC: next, IsMem: true, MemAddr: addr}
			if err := st.Mem.Store(addr, st.Regs[s2]); err != nil {
				return res, err
			}
			st.PC = next
			return res, nil
		}, nil

	case isa.CMOV:
		return func(st *State) (Result, error) {
			if st.poison1(s1) {
				return Result{NextPC: next}, &PoisonFault{PC: pc, Reg: s1}
			}
			res := Result{NextPC: next, CondVal: st.Regs[s1] != 0}
			if res.CondVal {
				st.set1(d, st.Regs[s2], s2)
			}
			st.PC = next
			return res, nil
		}, nil

	case isa.BR:
		return func(st *State) (Result, error) {
			if st.poison1(s1) {
				return Result{NextPC: next}, &PoisonFault{PC: pc, Reg: s1}
			}
			res := Result{NextPC: next, CondVal: st.Regs[s1] != 0}
			if res.CondVal {
				res.Taken = true
				res.NextPC = tgt
			}
			st.PC = res.NextPC
			return res, nil
		}, nil
	case isa.JMP:
		return func(st *State) (Result, error) {
			st.PC = tgt
			return Result{NextPC: tgt, Taken: true}, nil
		}, nil
	case isa.CALL:
		link := isa.R(isa.NumIntRegs - 1)
		ret := int64(pc + 1)
		return func(st *State) (Result, error) {
			st.Regs[link] = ret
			st.Poison[link] = false
			st.PC = tgt
			return Result{NextPC: tgt, Taken: true}, nil
		}, nil
	case isa.RET:
		return func(st *State) (Result, error) {
			if st.poison1(s1) {
				return Result{NextPC: next}, &PoisonFault{PC: pc, Reg: s1}
			}
			res := Result{NextPC: int(st.Regs[s1]), Taken: true}
			st.PC = res.NextPC
			return res, nil
		}, nil
	case isa.HALT:
		return func(st *State) (Result, error) {
			st.Halted = true
			st.PC = pc
			return Result{NextPC: pc, Halted: true}, nil
		}, nil
	case isa.PREDICT:
		// Compiled as the not-taken choice (see the Kernel doc comment):
		// the pipeline consumes PREDICT in the front end and never issues
		// it, and the interpreter routes oracle-steered PREDICTs through
		// Step. Program results are independent of the choice by
		// construction of the decomposed branch transformation.
		return func(st *State) (Result, error) {
			st.PC = next
			return Result{NextPC: next}, nil
		}, nil
	case isa.RESOLVE:
		expect := ins.Expect
		return func(st *State) (Result, error) {
			if st.poison1(s1) {
				return Result{NextPC: next}, &PoisonFault{PC: pc, Reg: s1}
			}
			res := Result{NextPC: next, CondVal: st.Regs[s1] != 0}
			if res.CondVal != expect {
				res.Taken = true
				res.NextPC = tgt
			}
			st.PC = res.NextPC
			return res, nil
		}, nil
	}

	return nil, fmt.Errorf("exec: cannot compile unknown opcode %s at pc %d", ins.Op.String(), pc)
}

// CompileImage compiles every instruction of an image into its per-PC
// kernel. Any unknown opcode fails the whole compilation — a program that
// cannot execute should be rejected before the machine starts stepping.
func CompileImage(instrs []isa.Instr) ([]Kernel, error) {
	ks := make([]Kernel, len(instrs))
	for pc := range instrs {
		k, err := Compile(&instrs[pc], pc)
		if err != nil {
			return nil, err
		}
		ks[pc] = k
	}
	return ks, nil
}

// Fusable reports whether an opcode is legal inside a fused straight-line
// run: it must be unable to fault (no poison consumption, no memory), to
// transfer control, or to halt — the pure register-to-register subset of
// the ISA. CMOV is excluded because consuming a poisoned condition is an
// architectural fault.
func Fusable(op isa.Op) bool {
	switch op {
	case isa.NOP, isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
		isa.ADDI, isa.MULI, isa.ANDI, isa.LI, isa.MOV,
		isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FMOV,
		isa.FCMPLT, isa.FCMPGE, isa.CVTIF, isa.CVTFI:
		return true
	}
	return false
}

// CompilePure compiles a fusable instruction into its bare register
// effect: no Result, no error, no PC update — the caller (a fused run,
// or the pipeline issue stage fast-pathing a known-pure op) owns those.
// Returns nil for non-fusable opcodes.
func CompilePure(ins *isa.Instr) func(*State) {
	d, s1, s2 := ins.Dst, ins.Src1, ins.Src2
	imm := ins.Imm
	switch ins.Op {
	case isa.NOP:
		return func(*State) {}
	case isa.ADD:
		return func(st *State) { st.set2(d, st.Regs[s1]+st.Regs[s2], s1, s2) }
	case isa.SUB:
		return func(st *State) { st.set2(d, st.Regs[s1]-st.Regs[s2], s1, s2) }
	case isa.MUL:
		return func(st *State) { st.set2(d, st.Regs[s1]*st.Regs[s2], s1, s2) }
	case isa.DIV:
		return func(st *State) {
			var v int64
			if dv := st.Regs[s2]; dv != 0 {
				v = st.Regs[s1] / dv
			}
			st.set2(d, v, s1, s2)
		}
	case isa.REM:
		return func(st *State) {
			var v int64
			if dv := st.Regs[s2]; dv != 0 {
				v = st.Regs[s1] % dv
			}
			st.set2(d, v, s1, s2)
		}
	case isa.AND:
		return func(st *State) { st.set2(d, st.Regs[s1]&st.Regs[s2], s1, s2) }
	case isa.OR:
		return func(st *State) { st.set2(d, st.Regs[s1]|st.Regs[s2], s1, s2) }
	case isa.XOR:
		return func(st *State) { st.set2(d, st.Regs[s1]^st.Regs[s2], s1, s2) }
	case isa.SHL:
		return func(st *State) { st.set2(d, st.Regs[s1]<<(uint64(st.Regs[s2])&63), s1, s2) }
	case isa.SHR:
		return func(st *State) { st.set2(d, st.Regs[s1]>>(uint64(st.Regs[s2])&63), s1, s2) }
	case isa.ADDI:
		return func(st *State) { st.set1(d, st.Regs[s1]+imm, s1) }
	case isa.MULI:
		return func(st *State) { st.set1(d, st.Regs[s1]*imm, s1) }
	case isa.ANDI:
		return func(st *State) { st.set1(d, st.Regs[s1]&imm, s1) }
	case isa.LI:
		return func(st *State) { st.set0(d, imm) }
	case isa.MOV, isa.FMOV:
		return func(st *State) { st.set1(d, st.Regs[s1], s1) }
	case isa.CMPEQ:
		return func(st *State) { st.set2(d, b2i(st.Regs[s1] == st.Regs[s2]), s1, s2) }
	case isa.CMPNE:
		return func(st *State) { st.set2(d, b2i(st.Regs[s1] != st.Regs[s2]), s1, s2) }
	case isa.CMPLT:
		return func(st *State) { st.set2(d, b2i(st.Regs[s1] < st.Regs[s2]), s1, s2) }
	case isa.CMPLE:
		return func(st *State) { st.set2(d, b2i(st.Regs[s1] <= st.Regs[s2]), s1, s2) }
	case isa.CMPGT:
		return func(st *State) { st.set2(d, b2i(st.Regs[s1] > st.Regs[s2]), s1, s2) }
	case isa.CMPGE:
		return func(st *State) { st.set2(d, b2i(st.Regs[s1] >= st.Regs[s2]), s1, s2) }
	case isa.FADD:
		return func(st *State) { st.set2(d, fbits(st.F(s1)+st.F(s2)), s1, s2) }
	case isa.FSUB:
		return func(st *State) { st.set2(d, fbits(st.F(s1)-st.F(s2)), s1, s2) }
	case isa.FMUL:
		return func(st *State) { st.set2(d, fbits(st.F(s1)*st.F(s2)), s1, s2) }
	case isa.FDIV:
		return func(st *State) { st.set2(d, fbits(st.F(s1)/st.F(s2)), s1, s2) }
	case isa.FCMPLT:
		return func(st *State) { st.set2(d, b2i(st.F(s1) < st.F(s2)), s1, s2) }
	case isa.FCMPGE:
		return func(st *State) { st.set2(d, b2i(st.F(s1) >= st.F(s2)), s1, s2) }
	case isa.CVTIF:
		return func(st *State) { st.set1(d, fbits(float64(st.Regs[s1])), s1) }
	case isa.CVTFI:
		return func(st *State) { st.set1(d, int64(st.F(s1)), s1) }
	}
	return nil
}

// Program is the fully compiled form of an image: per-PC kernels plus,
// for every PC inside a straight-line run of fusable instructions, the
// fused suffix of that run. Runs are keyed per PC (the suffix from that
// PC to the run's end), so any control-flow entry point — fall-through,
// branch target, or return address — picks up the longest fused unit
// legal from there; a mid-run PC simply gets a shorter suffix.
type Program struct {
	Kernels []Kernel
	fused   []fusedRun
}

// fusedRun is the fused suffix starting at one PC: n fusable instructions
// executed back to back, then a single PC update to end.
type fusedRun struct {
	n   int32
	end int
	ops []func(*State)
}

// CompileProgram compiles an image into per-PC kernels and fused
// straight-line runs. It fails on any unknown opcode.
func CompileProgram(instrs []isa.Instr) (*Program, error) {
	ks, err := CompileImage(instrs)
	if err != nil {
		return nil, err
	}
	p := &Program{Kernels: ks, fused: make([]fusedRun, len(instrs))}

	// pure[pc] is the bare effect of each fusable instruction; fused
	// suffixes are windows over this one slice, so compiling all suffixes
	// of a run costs one closure per covered PC, not O(n^2).
	pure := make([]func(*State), len(instrs))
	for pc := range instrs {
		pure[pc] = CompilePure(&instrs[pc])
	}
	// Scan backward: runLen[pc] = 1 + runLen[pc+1] while fusable.
	runLen := 0
	for pc := len(instrs) - 1; pc >= 0; pc-- {
		if pure[pc] == nil {
			runLen = 0
			continue
		}
		runLen++
		// Fusing a single instruction still pays: the interpreter skips
		// the Result construction, error check and per-op stats dispatch.
		p.fused[pc] = fusedRun{n: int32(runLen), end: pc + runLen, ops: pure[pc : pc+runLen]}
	}
	return p, nil
}

// FusedLen returns the number of instructions the fused run at pc covers
// (0 when pc has none, is out of range, or starts a non-fusable
// instruction).
func (p *Program) FusedLen(pc int) int {
	if pc < 0 || pc >= len(p.fused) {
		return 0
	}
	return int(p.fused[pc].n)
}

// RunFused executes the fused run at pc (FusedLen(pc) instructions) and
// leaves st.PC at the first instruction past the run. The caller must
// have checked FusedLen(pc) > 0.
func (p *Program) RunFused(pc int, st *State) {
	fr := &p.fused[pc]
	for _, op := range fr.ops {
		op(st)
	}
	st.PC = fr.end
}
