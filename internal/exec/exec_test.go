package exec

import (
	"math"
	"testing"
	"testing/quick"

	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

func newState() *State { return NewState(mem.New(), 0) }

func step(t *testing.T, st *State, ins isa.Instr) Result {
	t.Helper()
	res, err := Step(st, &ins, false)
	if err != nil {
		t.Fatalf("Step(%v): %v", ins, err)
	}
	return res
}

func TestIntegerALU(t *testing.T) {
	st := newState()
	st.Regs[1], st.Regs[2] = 7, -3
	cases := []struct {
		ins  isa.Instr
		want int64
	}{
		{isa.Instr{Op: isa.ADD, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)}, 4},
		{isa.Instr{Op: isa.SUB, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)}, 10},
		{isa.Instr{Op: isa.MUL, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)}, -21},
		{isa.Instr{Op: isa.DIV, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)}, -2},
		{isa.Instr{Op: isa.REM, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)}, 1},
		{isa.Instr{Op: isa.AND, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)}, 7 & -3},
		{isa.Instr{Op: isa.OR, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)}, 7 | -3},
		{isa.Instr{Op: isa.XOR, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)}, 7 ^ -3},
		{isa.Instr{Op: isa.ADDI, Dst: isa.R(3), Src1: isa.R(1), Imm: 100}, 107},
		{isa.Instr{Op: isa.MULI, Dst: isa.R(3), Src1: isa.R(1), Imm: -2}, -14},
		{isa.Instr{Op: isa.ANDI, Dst: isa.R(3), Src1: isa.R(1), Imm: 3}, 3},
		{isa.Instr{Op: isa.LI, Dst: isa.R(3), Imm: -42}, -42},
		{isa.Instr{Op: isa.MOV, Dst: isa.R(3), Src1: isa.R(2)}, -3},
	}
	for _, c := range cases {
		st.PC = 0
		step(t, st, c.ins)
		if st.Regs[3] != c.want {
			t.Errorf("%v: r3 = %d, want %d", c.ins, st.Regs[3], c.want)
		}
		if st.PC != 1 {
			t.Errorf("%v: PC = %d, want 1", c.ins, st.PC)
		}
	}
}

func TestShifts(t *testing.T) {
	st := newState()
	st.Regs[1], st.Regs[2] = -8, 2
	step(t, st, isa.Instr{Op: isa.SHL, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)})
	if st.Regs[3] != -32 {
		t.Errorf("shl: %d", st.Regs[3])
	}
	step(t, st, isa.Instr{Op: isa.SHR, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)})
	if st.Regs[3] != -2 {
		t.Errorf("shr must be arithmetic: %d", st.Regs[3])
	}
	st.Regs[2] = 64 + 3 // shift amounts wrap mod 64
	step(t, st, isa.Instr{Op: isa.SHL, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)})
	if st.Regs[3] != -64 {
		t.Errorf("shl with wrapped amount: %d", st.Regs[3])
	}
}

func TestDivideByZeroIsDefined(t *testing.T) {
	st := newState()
	st.Regs[1] = 99
	for _, op := range []isa.Op{isa.DIV, isa.REM} {
		step(t, st, isa.Instr{Op: op, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)})
		if st.Regs[3] != 0 {
			t.Errorf("%v by zero = %d, want 0", op, st.Regs[3])
		}
	}
}

func TestComparisons(t *testing.T) {
	st := newState()
	st.Regs[1], st.Regs[2] = -5, 3
	cases := map[isa.Op]int64{
		isa.CMPEQ: 0, isa.CMPNE: 1, isa.CMPLT: 1,
		isa.CMPLE: 1, isa.CMPGT: 0, isa.CMPGE: 0,
	}
	for op, want := range cases {
		step(t, st, isa.Instr{Op: op, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)})
		if st.Regs[3] != want {
			t.Errorf("%v(-5,3) = %d, want %d", op, st.Regs[3], want)
		}
	}
}

func TestFloatingPoint(t *testing.T) {
	st := newState()
	st.SetF(isa.F(1), 2.5)
	st.SetF(isa.F(2), -1.25)
	fcases := []struct {
		op   isa.Op
		want float64
	}{
		{isa.FADD, 1.25}, {isa.FSUB, 3.75}, {isa.FMUL, -3.125}, {isa.FDIV, -2},
	}
	for _, c := range fcases {
		step(t, st, isa.Instr{Op: c.op, Dst: isa.F(3), Src1: isa.F(1), Src2: isa.F(2)})
		if got := st.F(isa.F(3)); got != c.want {
			t.Errorf("%v = %g, want %g", c.op, got, c.want)
		}
	}
	step(t, st, isa.Instr{Op: isa.FCMPLT, Dst: isa.R(4), Src1: isa.F(2), Src2: isa.F(1)})
	if st.Regs[4] != 1 {
		t.Error("fcmplt(-1.25, 2.5) should be 1")
	}
	step(t, st, isa.Instr{Op: isa.CVTIF, Dst: isa.F(5), Src1: isa.R(4)})
	if st.F(isa.F(5)) != 1.0 {
		t.Error("cvtif(1) should be 1.0")
	}
	st.SetF(isa.F(5), -7.9)
	step(t, st, isa.Instr{Op: isa.CVTFI, Dst: isa.R(6), Src1: isa.F(5)})
	if st.Regs[6] != -7 {
		t.Errorf("cvtfi(-7.9) = %d, want -7 (truncation)", st.Regs[6])
	}
}

func TestLoadStore(t *testing.T) {
	st := newState()
	base := int64(mem.FaultBoundary)
	st.Regs[1] = base
	st.Regs[2] = 12345
	res := step(t, st, isa.Instr{Op: isa.ST, Src1: isa.R(1), Src2: isa.R(2), Imm: 16})
	if !res.IsMem || res.MemAddr != uint64(base+16) {
		t.Errorf("store result: %+v", res)
	}
	res = step(t, st, isa.Instr{Op: isa.LD, Dst: isa.R(3), Src1: isa.R(1), Imm: 16})
	if st.Regs[3] != 12345 || !res.IsMem {
		t.Errorf("load got %d", st.Regs[3])
	}
}

func TestLoadFaults(t *testing.T) {
	st := newState()
	_, err := Step(st, &isa.Instr{Op: isa.LD, Dst: isa.R(3), Src1: isa.R(1), Imm: 0}, false)
	if _, ok := err.(*mem.Fault); !ok {
		t.Fatalf("plain load of address 0 must fault, got %v", err)
	}
}

func TestSpeculativeLoadSuppressesFault(t *testing.T) {
	st := newState()
	res, err := Step(st, &isa.Instr{Op: isa.LDS, Dst: isa.R(3), Src1: isa.R(1), Imm: 0}, false)
	if err != nil {
		t.Fatalf("LDS must not fault: %v", err)
	}
	if !res.SuppressedFault || st.Regs[3] != 0 || !st.Poison[isa.R(3)] {
		t.Errorf("LDS fault suppression wrong: res=%+v r3=%d poison=%v", res, st.Regs[3], st.Poison[isa.R(3)])
	}
}

func TestPoisonPropagatesAndClears(t *testing.T) {
	st := newState()
	step(t, st, isa.Instr{Op: isa.LDS, Dst: isa.R(3), Src1: isa.R(1), Imm: 0}) // poisons r3
	step(t, st, isa.Instr{Op: isa.ADD, Dst: isa.R(4), Src1: isa.R(3), Src2: isa.R(2)})
	if !st.Poison[isa.R(4)] {
		t.Error("poison must propagate through ALU ops")
	}
	step(t, st, isa.Instr{Op: isa.LI, Dst: isa.R(4), Imm: 1})
	if st.Poison[isa.R(4)] {
		t.Error("overwriting a poisoned register must clear poison")
	}
	// A speculative load whose *address* is poisoned stays poisoned but
	// does not fault.
	res := step(t, st, isa.Instr{Op: isa.LDS, Dst: isa.R(5), Src1: isa.R(3), Imm: int64(mem.FaultBoundary)})
	if !st.Poison[isa.R(5)] || !res.SuppressedFault {
		t.Error("LDS with poisoned address must produce poisoned zero")
	}
}

func TestPoisonConsumptionFaults(t *testing.T) {
	mk := func() *State {
		st := newState()
		st.Regs[1] = mem.FaultBoundary
		if _, err := Step(st, &isa.Instr{Op: isa.LDS, Dst: isa.R(3), Src1: isa.R(9), Imm: 0}, false); err != nil {
			t.Fatal(err)
		}
		return st
	}
	consumers := []isa.Instr{
		{Op: isa.ST, Src1: isa.R(1), Src2: isa.R(3)}, // poisoned data
		{Op: isa.ST, Src1: isa.R(3), Src2: isa.R(1)}, // poisoned address
		{Op: isa.LD, Dst: isa.R(4), Src1: isa.R(3)},  // poisoned address
		{Op: isa.BR, Src1: isa.R(3), Target: 0},      // poisoned condition
		{Op: isa.RESOLVE, Src1: isa.R(3), Target: 0}, // poisoned condition
		{Op: isa.RET, Src1: isa.R(3)},                // poisoned target
	}
	for _, ins := range consumers {
		st := mk()
		_, err := Step(st, &ins, false)
		pf, ok := err.(*PoisonFault)
		if !ok {
			t.Errorf("%v: consuming poison must fault, got %v", ins, err)
			continue
		}
		if pf.Reg != isa.R(3) || pf.Error() == "" {
			t.Errorf("%v: fault fields wrong: %+v", ins, pf)
		}
	}
}

func TestControlFlow(t *testing.T) {
	st := newState()
	st.PC = 10
	st.Regs[1] = 1

	res := step(t, st, isa.Instr{Op: isa.BR, Src1: isa.R(1), Target: 50})
	if !res.Taken || !res.CondVal || st.PC != 50 {
		t.Errorf("taken BR: %+v pc=%d", res, st.PC)
	}
	st.Regs[1] = 0
	res = step(t, st, isa.Instr{Op: isa.BR, Src1: isa.R(1), Target: 99})
	if res.Taken || st.PC != 51 {
		t.Errorf("not-taken BR: %+v pc=%d", res, st.PC)
	}
	res = step(t, st, isa.Instr{Op: isa.JMP, Target: 7})
	if !res.Taken || st.PC != 7 {
		t.Errorf("JMP: pc=%d", st.PC)
	}
	res = step(t, st, isa.Instr{Op: isa.CALL, Target: 100})
	if st.PC != 100 || st.Regs[isa.R(63)] != 8 {
		t.Errorf("CALL: pc=%d link=%d", st.PC, st.Regs[isa.R(63)])
	}
	res = step(t, st, isa.Instr{Op: isa.RET, Src1: isa.R(63)})
	if st.PC != 8 || !res.Taken {
		t.Errorf("RET: pc=%d", st.PC)
	}
	res = step(t, st, isa.Instr{Op: isa.HALT})
	if !st.Halted || !res.Halted || st.PC != 8 {
		t.Errorf("HALT: halted=%v pc=%d", st.Halted, st.PC)
	}
}

func TestPredictFollowsChoice(t *testing.T) {
	st := newState()
	st.PC = 5
	ins := isa.Instr{Op: isa.PREDICT, Target: 40}
	res, err := Step(st, &ins, true)
	if err != nil || !res.Taken || st.PC != 40 {
		t.Fatalf("predict taken: %+v pc=%d err=%v", res, st.PC, err)
	}
	st.PC = 5
	res, err = Step(st, &ins, false)
	if err != nil || res.Taken || st.PC != 6 {
		t.Fatalf("predict not-taken: %+v pc=%d err=%v", res, st.PC, err)
	}
}

func TestResolveSemantics(t *testing.T) {
	// resolve fires iff actual != expect.
	cases := []struct {
		cond   int64
		expect bool
		fire   bool
	}{
		{1, true, false}, {0, true, true}, {1, false, true}, {0, false, false},
	}
	for _, c := range cases {
		st := newState()
		st.PC = 5
		st.Regs[1] = c.cond
		res := step(t, st, isa.Instr{Op: isa.RESOLVE, Src1: isa.R(1), Expect: c.expect, Target: 77})
		if res.Taken != c.fire {
			t.Errorf("resolve cond=%d expect=%v: fired=%v, want %v", c.cond, c.expect, res.Taken, c.fire)
		}
		wantPC := 6
		if c.fire {
			wantPC = 77
		}
		if st.PC != wantPC {
			t.Errorf("resolve cond=%d expect=%v: pc=%d, want %d", c.cond, c.expect, st.PC, wantPC)
		}
		if res.CondVal != (c.cond != 0) {
			t.Error("CondVal must report the actual branch outcome")
		}
	}
}

func TestFPHelpers(t *testing.T) {
	st := newState()
	st.SetF(isa.F(0), math.Pi)
	if st.F(isa.F(0)) != math.Pi {
		t.Error("F/SetF round trip failed")
	}
}

// Property: ADD/SUB round trip — for any values, (a+b)-b == a — and Step
// never mutates PC by more than a jump target or +1.
func TestALURoundTripProperty(t *testing.T) {
	f := func(a, b int64) bool {
		st := newState()
		st.Regs[1], st.Regs[2] = a, b
		Step(st, &isa.Instr{Op: isa.ADD, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)}, false)
		Step(st, &isa.Instr{Op: isa.SUB, Dst: isa.R(4), Src1: isa.R(3), Src2: isa.R(2)}, false)
		return st.Regs[4] == a && st.PC == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparison opcodes agree with Go's comparison operators.
func TestComparisonProperty(t *testing.T) {
	f := func(a, b int64) bool {
		st := newState()
		st.Regs[1], st.Regs[2] = a, b
		checks := []struct {
			op   isa.Op
			want bool
		}{
			{isa.CMPEQ, a == b}, {isa.CMPNE, a != b}, {isa.CMPLT, a < b},
			{isa.CMPLE, a <= b}, {isa.CMPGT, a > b}, {isa.CMPGE, a >= b},
		}
		for _, c := range checks {
			Step(st, &isa.Instr{Op: c.op, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)}, false)
			if (st.Regs[3] != 0) != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCMOVSemantics(t *testing.T) {
	st := newState()
	st.Regs[1] = 1 // condition
	st.Regs[2] = 42
	st.Regs[3] = 7
	step(t, st, isa.Instr{Op: isa.CMOV, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)})
	if st.Regs[3] != 42 {
		t.Errorf("true cmov: r3 = %d, want 42", st.Regs[3])
	}
	st.Regs[1] = 0
	st.Regs[2] = 99
	step(t, st, isa.Instr{Op: isa.CMOV, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)})
	if st.Regs[3] != 42 {
		t.Errorf("false cmov must preserve dst: r3 = %d", st.Regs[3])
	}
}

func TestCMOVPoison(t *testing.T) {
	// Poisoned condition -> fault.
	st := newState()
	step(t, st, isa.Instr{Op: isa.LDS, Dst: isa.R(1), Src1: isa.R(9), Imm: 0})
	if _, err := Step(st, &isa.Instr{Op: isa.CMOV, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)}, false); err == nil {
		t.Error("cmov on a poisoned condition must fault")
	}
	// Poisoned value selected -> poison propagates; not selected -> clean.
	st2 := newState()
	step(t, st2, isa.Instr{Op: isa.LDS, Dst: isa.R(2), Src1: isa.R(9), Imm: 0})
	st2.Regs[1] = 1
	step(t, st2, isa.Instr{Op: isa.CMOV, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)})
	if !st2.Poison[isa.R(3)] {
		t.Error("selecting a poisoned value must propagate poison")
	}
	st3 := newState()
	step(t, st3, isa.Instr{Op: isa.LDS, Dst: isa.R(2), Src1: isa.R(9), Imm: 0})
	st3.Regs[1] = 0
	step(t, st3, isa.Instr{Op: isa.CMOV, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)})
	if st3.Poison[isa.R(3)] {
		t.Error("an unselected poisoned value must not poison dst")
	}
}
