package exec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

// allOps is every defined opcode; RESOLVE is the last one.
func allOps() []isa.Op {
	ops := make([]isa.Op, 0, int(isa.RESOLVE)+1)
	for op := isa.NOP; op <= isa.RESOLVE; op++ {
		ops = append(ops, op)
	}
	return ops
}

// interestingVals mixes the values the fault and poison paths care about:
// zero (divide-by-zero, not-taken conditions), small integers, valid
// memory bases, invalid (faulting) addresses, and FP bit patterns. It
// deliberately excludes MinInt64 so DIV/REM never hit Go's only panicking
// division (MinInt64 / -1) — the ISA inherits the host behavior there in
// both dispatch engines alike.
func interestingVals(r *rand.Rand) int64 {
	switch r.Intn(8) {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return -1
	case 3:
		return int64(r.Intn(1000)) - 500
	case 4:
		return int64(mem.FaultBoundary) + int64(r.Intn(64))*8
	case 5:
		return int64(r.Intn(int(mem.FaultBoundary))) // below the boundary: faults
	case 6:
		return fbits(r.NormFloat64() * 100)
	default:
		return r.Int63() >> uint(r.Intn(32))
	}
}

// randomInstr builds a random instance of the given opcode with all
// register operands in range (Step indexes the register file with every
// operand field of some opcodes regardless of use).
func randomInstr(r *rand.Rand, op isa.Op) isa.Instr {
	reg := func() isa.Reg { return isa.Reg(r.Intn(isa.NumRegs)) }
	ins := isa.Instr{
		Op:     op,
		Dst:    reg(),
		Src1:   reg(),
		Src2:   reg(),
		Target: r.Intn(64),
		Expect: r.Intn(2) == 0,
	}
	switch r.Intn(3) {
	case 0:
		ins.Imm = int64(r.Intn(64)) * 8
	default:
		ins.Imm = interestingVals(r)
	}
	return ins
}

// randomState builds a random architectural state over the given memory,
// with a sprinkling of poisoned registers to exercise every poison path.
func randomState(r *rand.Rand, m Memory, pc int) *State {
	st := NewState(m, pc)
	for i := range st.Regs {
		st.Regs[i] = interestingVals(r)
	}
	for i := range st.Poison {
		st.Poison[i] = r.Intn(4) == 0
	}
	return st
}

func sameError(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// seedMemory stores a few words at valid addresses so loads can hit.
func seedMemory(r *rand.Rand, m *mem.Memory) {
	for i := 0; i < 64; i++ {
		m.MustStore(mem.FaultBoundary+uint64(i)*8, interestingVals(r))
	}
}

// TestKernelStepEquivalence is the dispatch property: for every opcode
// and random (instruction, state) pairs — including poison faults,
// suppressed LDS faults, and real memory faults — the compiled kernel
// must leave the machine in exactly the state the reference Step switch
// does, and return the same Result and error. PREDICT is checked against
// Step's not-taken choice, which is what the kernel compiles.
func TestKernelStepEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, op := range allOps() {
		for trial := 0; trial < 400; trial++ {
			ins := randomInstr(r, op)
			pc := r.Intn(64)

			m1 := mem.New()
			seedMemory(rand.New(rand.NewSource(int64(trial))), m1)
			m2 := m1.Clone()
			st1 := randomState(rand.New(rand.NewSource(int64(trial)*31+1)), m1, pc)
			st2 := randomState(rand.New(rand.NewSource(int64(trial)*31+1)), m2, pc)

			res1, err1 := Step(st1, &ins, false)
			k, kerr := Compile(&ins, pc)
			if kerr != nil {
				t.Fatalf("%v: compile: %v", ins, kerr)
			}
			res2, err2 := k(st2)

			if res1 != res2 || !sameError(err1, err2) {
				t.Fatalf("%v at pc %d: switch (%+v, %v) != kernel (%+v, %v)",
					ins, pc, res1, err1, res2, err2)
			}
			if st1.Regs != st2.Regs || st1.Poison != st2.Poison ||
				st1.PC != st2.PC || st1.Halted != st2.Halted {
				t.Fatalf("%v at pc %d: state diverged: pc %d/%d halted %v/%v",
					ins, pc, st1.PC, st2.PC, st1.Halted, st2.Halted)
			}
			if !m1.Equal(m2) {
				t.Fatalf("%v at pc %d: memory diverged", ins, pc)
			}
			if pf1, ok := err1.(*PoisonFault); ok {
				pf2 := err2.(*PoisonFault)
				if *pf1 != *pf2 {
					t.Fatalf("%v: poison fault fields diverged: %+v vs %+v", ins, pf1, pf2)
				}
			}
		}
	}
}

// TestKernelPredictNotTaken pins the documented PREDICT compilation
// choice: the kernel executes the not-taken (fall-through) leg.
func TestKernelPredictNotTaken(t *testing.T) {
	ins := isa.Instr{Op: isa.PREDICT, Target: 40}
	k, err := Compile(&ins, 5)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(mem.New(), 5)
	res, err := k(st)
	if err != nil || res.Taken || st.PC != 6 || res.NextPC != 6 {
		t.Fatalf("PREDICT kernel must fall through: %+v pc=%d err=%v", res, st.PC, err)
	}
}

// TestCompileRejectsUnknownOpcode: the compiler refuses unknown opcodes
// at compile time, naming the opcode and PC, and CompileImage /
// CompileProgram propagate the rejection.
func TestCompileRejectsUnknownOpcode(t *testing.T) {
	bad := isa.Instr{Op: isa.Op(200)}
	if _, err := Compile(&bad, 3); err == nil {
		t.Fatal("Compile must reject an unknown opcode")
	} else if !strings.Contains(err.Error(), "op(200)") || !strings.Contains(err.Error(), "pc 3") {
		t.Fatalf("rejection must name the opcode and pc: %v", err)
	}
	img := []isa.Instr{{Op: isa.NOP}, bad}
	if _, err := CompileImage(img); err == nil {
		t.Fatal("CompileImage must propagate the rejection")
	}
	if _, err := CompileProgram(img); err == nil {
		t.Fatal("CompileProgram must propagate the rejection")
	}
}

// TestStepUnknownOpcodeNamesOp is the witness for the step-time error
// message: the reference switch reports the opcode via Op.String().
func TestStepUnknownOpcodeNamesOp(t *testing.T) {
	st := NewState(mem.New(), 9)
	bad := isa.Instr{Op: isa.Op(200)}
	_, err := Step(st, &bad, false)
	if err == nil {
		t.Fatal("Step must error on an unknown opcode")
	}
	want := fmt.Sprintf("exec: unknown opcode %s at pc %d", isa.Op(200).String(), 9)
	if err.Error() != want {
		t.Fatalf("unknown-opcode message = %q, want %q", err.Error(), want)
	}
	if st.PC != 9 {
		t.Fatalf("a failed step must not move the PC: %d", st.PC)
	}
}

// TestDivRemByZeroSpecPin pins the ISA's defined divide-by-zero result —
// zero, with normal poison propagation — in both dispatch engines. The
// semantics used to live implicitly in the switch; the pin keeps compiled
// kernels (including fused runs, where DIV/REM are legal precisely
// because they cannot fault) from ever diverging.
func TestDivRemByZeroSpecPin(t *testing.T) {
	for _, op := range []isa.Op{isa.DIV, isa.REM} {
		ins := isa.Instr{Op: op, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)}
		mk := func() *State {
			st := NewState(mem.New(), 0)
			st.Regs[1] = 99
			st.Regs[2] = 0
			st.Regs[3] = 777 // must be overwritten with 0, not preserved
			return st
		}

		st := mk()
		if _, err := Step(st, &ins, false); err != nil {
			t.Fatalf("%v by zero must not fault: %v", op, err)
		}
		if st.Regs[3] != 0 || st.Poison[isa.R(3)] {
			t.Fatalf("switch %v by zero: r3=%d poison=%v, want 0/false", op, st.Regs[3], st.Poison[isa.R(3)])
		}

		k, err := Compile(&ins, 0)
		if err != nil {
			t.Fatal(err)
		}
		st = mk()
		if _, err := k(st); err != nil {
			t.Fatalf("kernel %v by zero must not fault: %v", op, err)
		}
		if st.Regs[3] != 0 || st.Poison[isa.R(3)] {
			t.Fatalf("kernel %v by zero: r3=%d poison=%v, want 0/false", op, st.Regs[3], st.Poison[isa.R(3)])
		}

		// Poison still propagates from the (zero) divisor.
		st = mk()
		st.Poison[isa.R(2)] = true
		if _, err := k(st); err != nil {
			t.Fatal(err)
		}
		if !st.Poison[isa.R(3)] {
			t.Fatalf("kernel %v by poisoned zero must propagate poison", op)
		}
	}
}

// TestFusableLegality pins the fusion legality rule: only instructions
// that can neither fault, touch memory, transfer control, nor halt may
// join a fused run. CMOV is the interesting exclusion — it poison-faults
// on its condition.
func TestFusableLegality(t *testing.T) {
	illegal := []isa.Op{isa.LD, isa.LDS, isa.ST, isa.CMOV, isa.BR, isa.JMP,
		isa.CALL, isa.RET, isa.HALT, isa.PREDICT, isa.RESOLVE, isa.Op(200)}
	for _, op := range illegal {
		if Fusable(op) {
			t.Errorf("%v must not be fusable", op)
		}
	}
	legal := []isa.Op{isa.NOP, isa.ADD, isa.DIV, isa.REM, isa.LI, isa.MOV,
		isa.CMPEQ, isa.FADD, isa.FDIV, isa.CVTIF, isa.CVTFI}
	for _, op := range legal {
		if !Fusable(op) {
			t.Errorf("%v must be fusable", op)
		}
	}
}

// randomFusableBlock builds a straight-line image: n random fusable
// instructions followed by a HALT.
func randomFusableBlock(r *rand.Rand, n int) []isa.Instr {
	fusable := []isa.Op{isa.NOP, isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.ADDI, isa.MULI,
		isa.ANDI, isa.LI, isa.MOV, isa.CMPEQ, isa.CMPNE, isa.CMPLT,
		isa.CMPLE, isa.CMPGT, isa.CMPGE, isa.FADD, isa.FSUB, isa.FMUL,
		isa.FDIV, isa.FMOV, isa.FCMPLT, isa.FCMPGE, isa.CVTIF, isa.CVTFI}
	img := make([]isa.Instr, 0, n+1)
	for i := 0; i < n; i++ {
		img = append(img, randomInstr(r, fusable[r.Intn(len(fusable))]))
	}
	return append(img, isa.Instr{Op: isa.HALT})
}

// TestFusedRunEquivalence: executing a straight-line run through the
// fused form must produce exactly the state per-instruction Step does —
// from every possible entry PC of the run (fall-through, branch target,
// or return address may land mid-run; each entry gets the fused suffix).
func TestFusedRunEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		img := randomFusableBlock(r, 1+r.Intn(12))
		prog, err := CompileProgram(img)
		if err != nil {
			t.Fatal(err)
		}
		n := len(img) - 1 // instructions before the HALT
		for entry := 0; entry <= n; entry++ {
			if got, want := prog.FusedLen(entry), n-entry; got != want {
				t.Fatalf("trial %d: FusedLen(%d) = %d, want %d", trial, entry, got, want)
			}
		}
		if prog.FusedLen(n) != 0 {
			t.Fatalf("trial %d: HALT must not be fusable", trial)
		}

		for entry := 0; entry < n; entry++ {
			seed := int64(trial)*100 + int64(entry)
			st1 := randomState(rand.New(rand.NewSource(seed)), mem.New(), entry)
			st2 := randomState(rand.New(rand.NewSource(seed)), mem.New(), entry)

			for pc := entry; pc < n; pc++ {
				st1.PC = pc
				if _, err := Step(st1, &img[pc], false); err != nil {
					t.Fatalf("trial %d: fusable op must not fault: %v", trial, err)
				}
			}
			prog.RunFused(entry, st2)

			if st1.Regs != st2.Regs || st1.Poison != st2.Poison || st1.PC != st2.PC {
				t.Fatalf("trial %d entry %d: fused run diverged from stepping (pc %d vs %d)",
					trial, entry, st1.PC, st2.PC)
			}
			if st2.PC != n {
				t.Fatalf("trial %d entry %d: fused run must stop at the HALT, pc=%d", trial, entry, st2.PC)
			}
		}
	}
}

// TestFusedRunsBreakAtUnsafeOps: an unsafe instruction (memory, control,
// CMOV) splits runs — the PCs before it fuse only up to it, the op itself
// has no fused form, and the run restarts after it.
func TestFusedRunsBreakAtUnsafeOps(t *testing.T) {
	img := []isa.Instr{
		{Op: isa.ADD, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.R(3)},  // 0
		{Op: isa.LI, Dst: isa.R(4), Imm: 7},                           // 1
		{Op: isa.CMOV, Dst: isa.R(5), Src1: isa.R(1), Src2: isa.R(4)}, // 2: breaks
		{Op: isa.SUB, Dst: isa.R(6), Src1: isa.R(4), Src2: isa.R(1)},  // 3
		{Op: isa.HALT}, // 4
	}
	prog, err := CompileProgram(img)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 0, 1, 0}
	for pc, w := range want {
		if got := prog.FusedLen(pc); got != w {
			t.Errorf("FusedLen(%d) = %d, want %d", pc, got, w)
		}
	}
	if prog.FusedLen(-1) != 0 || prog.FusedLen(len(img)) != 0 {
		t.Error("out-of-range FusedLen must be 0")
	}
}

// The dispatch microbenchmarks time the simulator's innermost operation —
// execute one instruction's semantics — through both engines over the
// same instruction mix (ALU, compare, FP, and a taken/not-taken branch).
// Run with:
//
//	go test -bench 'BenchmarkStep(Kernel|Switch)' -benchmem ./internal/exec/
var benchImage = []isa.Instr{
	{Op: isa.ADD, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2)},
	{Op: isa.ADDI, Dst: isa.R(4), Src1: isa.R(3), Imm: 17},
	{Op: isa.XOR, Dst: isa.R(5), Src1: isa.R(4), Src2: isa.R(1)},
	{Op: isa.CMPLT, Dst: isa.R(6), Src1: isa.R(5), Src2: isa.R(2)},
	{Op: isa.MUL, Dst: isa.R(7), Src1: isa.R(4), Src2: isa.R(3)},
	{Op: isa.SHR, Dst: isa.R(8), Src1: isa.R(7), Src2: isa.R(2)},
	{Op: isa.FADD, Dst: isa.F(2), Src1: isa.F(0), Src2: isa.F(1)},
	{Op: isa.LI, Dst: isa.R(9), Imm: -5},
	{Op: isa.AND, Dst: isa.R(10), Src1: isa.R(9), Src2: isa.R(5)},
	{Op: isa.BR, Src1: isa.R(6), Target: 0},
}

func benchState() *State {
	st := NewState(mem.New(), 0)
	st.Regs[1], st.Regs[2] = 1234, 3
	st.SetF(isa.F(0), 1.5)
	st.SetF(isa.F(1), -2.25)
	return st
}

func BenchmarkStepSwitch(b *testing.B) {
	st := benchState()
	n := len(benchImage)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := i % n
		st.PC = pc
		if _, err := Step(st, &benchImage[pc], false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepKernel(b *testing.B) {
	kernels, err := CompileImage(benchImage)
	if err != nil {
		b.Fatal(err)
	}
	st := benchState()
	n := len(benchImage)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := i % n
		st.PC = pc
		if _, err := kernels[pc](st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepFused(b *testing.B) {
	// The fused form of the image's pure prefix (everything before the
	// BR), amortized per instruction for comparability with the two
	// per-instruction engines.
	prog, err := CompileProgram(benchImage)
	if err != nil {
		b.Fatal(err)
	}
	n := prog.FusedLen(0)
	if n == 0 {
		b.Fatal("bench image must start with a fusable run")
	}
	st := benchState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += n {
		st.PC = 0
		prog.RunFused(0, st)
	}
}
