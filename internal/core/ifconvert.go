package core

import (
	"sort"

	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/profile"
)

// IfConvert implements the remaining Figure 1 quadrant: classic
// predication for UNBIASED, UNPREDICTABLE hammocks. Both arms are
// flattened into the branch block, arm definitions are renamed to
// temporaries (arm loads become non-faulting), and conditional moves
// select the surviving values — converting the control dependence into a
// data dependence and eliminating the misprediction cost entirely.
//
// It is prior art (Allen et al., POPL '83), included both for completeness
// of the taxonomy and for the predication-vs-decomposition ablation.
type IfConvertOptions struct {
	// MaxPredictability: only branches the predictor does WORSE than this
	// on are worth predicating (predictable ones are better left to the
	// predictor or the decomposition).
	MaxPredictability float64
	// MinExecs filters cold branches.
	MinExecs int64
	// MaxArm bounds each arm's instruction count (predication executes
	// both arms always, so big arms cost more than the mispredicts saved).
	MaxArm int
}

// DefaultIfConvertOptions mirror common if-conversion practice.
func DefaultIfConvertOptions() IfConvertOptions {
	return IfConvertOptions{MaxPredictability: 0.80, MinExecs: 64, MaxArm: 10}
}

// IfConvertReport summarizes the pass.
type IfConvertReport struct {
	Converted []int          // branch IDs predicated
	Skipped   map[int]string // branch ID -> reason
}

// IfConvertBranches predicates every profitable unpredictable hammock.
func IfConvertBranches(p *ir.Program, prof *profile.Profile, opt IfConvertOptions) (*IfConvertReport, error) {
	rep := &IfConvertReport{Skipped: make(map[int]string)}
	var ids []int
	for id, b := range prof.ByID {
		if !b.Forward || b.Execs < opt.MinExecs {
			continue
		}
		if b.Predictability() > opt.MaxPredictability {
			rep.Skipped[id] = "predictable enough for the branch predictor"
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fi, bi := findBranch(p, id)
		if fi < 0 {
			rep.Skipped[id] = "branch not found in IR"
			continue
		}
		if reason := ifConvertOne(p.Funcs[fi], bi, opt); reason != "" {
			rep.Skipped[id] = reason
			continue
		}
		rep.Converted = append(rep.Converted, id)
	}
	if err := p.Verify(); err != nil {
		return rep, err
	}
	return rep, nil
}

// ifConvertOne flattens the hammock at block a. The required shape is the
// layout the generators (and most compilers) produce:
//
//	a:   [body] br cond -> c
//	b:   [arm] jmp j        (b = a+1)
//	c:   [arm]              (c = b+1, falls through to j = c+1)
//
// Returns "" on success or a skip reason.
func ifConvertOne(f *ir.Func, a int, opt IfConvertOptions) string {
	blk := f.Blocks[a]
	term, ok := blk.Terminator()
	if !ok || term.Op != isa.BR {
		return "terminator is not a conditional branch"
	}
	b, c := a+1, term.Target
	if c != b+1 {
		return "taken successor does not immediately follow the fall-through arm"
	}
	if c+1 >= len(f.Blocks) {
		return "no join block"
	}
	preds := f.Preds()
	if len(preds[b]) != 1 || len(preds[c]) != 1 {
		return "arm has multiple predecessors"
	}
	bTerm, ok := f.Blocks[b].Terminator()
	if !ok || bTerm.Op != isa.JMP || bTerm.Target != c+1 {
		return "fall-through arm does not jump to the join"
	}
	if t, ok := f.Blocks[c].Terminator(); ok {
		_ = t
		return "taken arm must fall through to the join"
	}
	armB := f.Blocks[b].Instrs[:len(f.Blocks[b].Instrs)-1]
	armC := f.Blocks[c].Instrs
	if len(armB) > opt.MaxArm || len(armC) > opt.MaxArm {
		return "arm too large to predicate profitably"
	}
	for _, arm := range [][]isa.Instr{armB, armC} {
		for _, ins := range arm {
			if ins.IsStore() || ins.IsControl() || ins.Op == isa.CMOV {
				return "arm contains a store, control flow, or cmov"
			}
		}
	}
	cond := term.Src1

	lv := ir.ComputeLiveness(f)
	liveJoin := lv.In[c+1]
	temps := newTempPool(f, a, b, c, lv)

	// Rename every arm definition to a fresh temporary; loads become
	// non-faulting since both arms now execute unconditionally.
	flatten := func(arm []isa.Instr) (code []isa.Instr, renames map[isa.Reg]isa.Reg, order []isa.Reg, fail string) {
		renames = map[isa.Reg]isa.Reg{}
		look := func(r isa.Reg) isa.Reg {
			if t, ok := renames[r]; ok {
				return t
			}
			return r
		}
		for _, ins := range arm {
			h := ins
			h.Src1, h.Src2 = look(h.Src1), look(h.Src2)
			if h.Op == isa.LD {
				h.Op = isa.LDS
			}
			d := ins.Def()
			if d == isa.NoReg {
				code = append(code, h)
				continue
			}
			if _, seen := renames[d]; !seen {
				t := temps.take(d)
				if t == isa.NoReg {
					return nil, nil, nil, "out of shadow temporaries"
				}
				renames[d] = t
				order = append(order, d)
			}
			h.Dst = renames[d]
			code = append(code, h)
		}
		return code, renames, order, ""
	}
	codeB, renB, orderB, fail := flatten(armB)
	if fail != "" {
		return fail
	}
	codeC, renC, orderC, fail := flatten(armC)
	if fail != "" {
		return fail
	}

	// Selects: for each register defined by either arm and live into the
	// join, merge with conditional moves (cond true selects the taken
	// arm C, matching branch semantics).
	var selects []isa.Instr
	mov := func(d, s isa.Reg) isa.Instr {
		op := isa.MOV
		if d.IsFP() {
			op = isa.FMOV
		}
		return isa.Instr{Op: op, Dst: d, Src1: s, Target: -1}
	}
	handled := map[isa.Reg]bool{}
	for _, d := range append(append([]isa.Reg{}, orderB...), orderC...) {
		if handled[d] || !liveJoin.Has(d) {
			handled[d] = true
			continue
		}
		handled[d] = true
		tb, inB := renB[d]
		tc, inC := renC[d]
		switch {
		case inB && inC:
			selects = append(selects,
				mov(d, tb),
				isa.Instr{Op: isa.CMOV, Dst: d, Src1: cond, Src2: tc, Target: -1})
		case inC:
			// d keeps its old value on the B path.
			selects = append(selects,
				isa.Instr{Op: isa.CMOV, Dst: d, Src1: cond, Src2: tc, Target: -1})
		default: // inB only: select tb when cond is FALSE -> invert.
			ncond := temps.take(cond)
			if ncond == isa.NoReg {
				return "out of shadow temporaries"
			}
			zero := temps.take(cond)
			if zero == isa.NoReg {
				return "out of shadow temporaries"
			}
			selects = append(selects,
				isa.Instr{Op: isa.LI, Dst: zero, Imm: 0, Target: -1},
				isa.Instr{Op: isa.CMPEQ, Dst: ncond, Src1: cond, Src2: zero, Target: -1},
				isa.Instr{Op: isa.CMOV, Dst: d, Src1: ncond, Src2: tb, Target: -1})
		}
	}

	// Rebuild: a = [body, codeB, codeC, selects], arms removed, every
	// target above them shifted down by two.
	body := blk.Instrs[:len(blk.Instrs)-1]
	merged := &ir.Block{Label: blk.Label + ".pred",
		Instrs: concat(body, append(append([]isa.Instr{}, codeB...), codeC...), selects)}

	mapIdx := func(i int) int {
		if i > c {
			return i - 2
		}
		return i
	}
	var out []*ir.Block
	for i, ob := range f.Blocks {
		switch i {
		case a:
			out = append(out, merged)
		case b, c:
			// removed
		default:
			nb := &ir.Block{Label: ob.Label, Instrs: append([]isa.Instr{}, ob.Instrs...)}
			for k := range nb.Instrs {
				switch nb.Instrs[k].Op {
				case isa.BR, isa.JMP, isa.PREDICT, isa.RESOLVE:
					nb.Instrs[k].Target = mapIdx(nb.Instrs[k].Target)
				}
			}
			out = append(out, nb)
		}
	}
	f.Blocks = out
	return ""
}
