package core

import (
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/profile"
)

// decompose rewrites the branch terminating f.Blocks[a]. It returns nil and
// a reason when the branch is structurally ineligible.
func decompose(f *ir.Func, a int, cand *profile.Branch, opt Options) (*Converted, string) {
	blk := f.Blocks[a]
	term, ok := blk.Terminator()
	if !ok || term.Op != isa.BR {
		return nil, "terminator is not a conditional branch"
	}
	b, c := a+1, term.Target
	if c <= b {
		return nil, "not a forward branch in layout order"
	}
	if b >= len(f.Blocks) || c >= len(f.Blocks) {
		return nil, "successor out of range"
	}
	preds := f.Preds()
	if len(preds[b]) != 1 || preds[b][0] != a {
		return nil, "fall-through successor has multiple predecessors"
	}
	if len(preds[c]) != 1 || preds[c][0] != a {
		return nil, "taken successor has multiple predecessors"
	}
	condReg := term.Src1
	for _, bi := range []int{a, b, c} {
		for _, ins := range f.Blocks[bi].Instrs {
			if ins.Op == isa.CALL {
				// Calls clobber state our block-level liveness cannot see;
				// the paper's compiler would consult interprocedural
				// summaries here.
				return nil, "region contains a call"
			}
		}
	}

	lv := ir.ComputeLiveness(f)
	liveB, liveC := lv.In[b], lv.In[c]

	// Condition slice push-down (optional; correctness never depends on it).
	body := blk.Instrs[:len(blk.Instrs)-1]
	var slice, rest []isa.Instr
	if opt.NoSlicePushdown {
		rest = append([]isa.Instr{}, body...)
	} else {
		slice, rest = condSlice(body, condReg)
	}

	// Shadow temporaries: registers free across the whole A/B/C region.
	temps := newTempPool(f, a, b, c, lv)

	hb := selectHoist(f.Blocks[b], liveC, condReg, temps, opt.MaxHoist)
	hc := selectHoist(f.Blocks[c], liveB, condReg, temps, opt.MaxHoist)

	// ---- build the new blocks (targets in new-index space) ----
	// New layout: [0..a-1] A BA' B' [b+1..c-1] CA' C' [c+1..] Correct-C Correct-B
	mapIdx := func(i int) int {
		n := i
		if i > a {
			n++
		}
		if i >= c {
			n++
		}
		return n
	}
	caIdx := mapIdx(c) - 1
	bPrimeIdx, cPrimeIdx := mapIdx(b), mapIdx(c)
	corrCIdx, corrBIdx := len(f.Blocks)+2, len(f.Blocks)+3

	newA := &ir.Block{Label: blk.Label, Instrs: append(append([]isa.Instr{}, rest...),
		ir.Predict(caIdx, term.BranchID))}

	ba := &ir.Block{Label: blk.Label + ".ba", Instrs: concat(slice, hb.hoisted,
		[]isa.Instr{ir.Resolve(condReg, false, corrCIdx, term.BranchID)})}
	ca := &ir.Block{Label: blk.Label + ".ca", Instrs: concat(slice, hc.hoisted,
		[]isa.Instr{ir.Resolve(condReg, true, corrBIdx, term.BranchID)})}

	oldB, oldC := f.Blocks[b], f.Blocks[c]
	bPrime := &ir.Block{Label: oldB.Label + "'", Instrs: concat(hb.movs, hb.rest, nil)}
	cPrime := &ir.Block{Label: oldC.Label + "'", Instrs: concat(hc.movs, hc.rest, nil)}

	corrC := &ir.Block{Label: blk.Label + ".correct-c",
		Instrs: append(unspeculate(hc.hoisted), ir.Jmp(cPrimeIdx))}
	corrB := &ir.Block{Label: blk.Label + ".correct-b",
		Instrs: append(unspeculate(hb.hoisted), ir.Jmp(bPrimeIdx))}

	// ---- remap the rest of the function and assemble ----
	remap := func(blkp *ir.Block) *ir.Block {
		nb := &ir.Block{Label: blkp.Label, Instrs: append([]isa.Instr{}, blkp.Instrs...)}
		for i := range nb.Instrs {
			switch nb.Instrs[i].Op {
			case isa.BR, isa.JMP, isa.PREDICT, isa.RESOLVE:
				nb.Instrs[i].Target = mapIdx(nb.Instrs[i].Target)
			}
		}
		return nb
	}
	// B'/C' terminators may target remapped blocks too.
	bPrime = remap(bPrime)
	cPrime = remap(cPrime)

	var out []*ir.Block
	for i, ob := range f.Blocks {
		switch i {
		case a:
			out = append(out, newA, ba, bPrime)
		case b:
			// replaced by bPrime above
		case c:
			out = append(out, ca, cPrime)
		default:
			out = append(out, remap(ob))
		}
	}
	out = append(out, corrC, corrB)
	if len(out) != len(f.Blocks)+4 {
		return nil, "internal: surgery produced wrong block count"
	}
	f.Blocks = out

	return &Converted{
		ID:             term.BranchID,
		Bias:           cand.Bias(),
		Predictability: cand.Predictability(),
		Execs:          cand.Execs,
		SlicePushed:    len(slice),
		HoistedB:       len(hb.hoisted),
		HoistedC:       len(hc.hoisted),
		BlockBSize:     len(oldB.Instrs),
		BlockCSize:     len(oldC.Instrs),
		Temps:          hb.temps + hc.temps,
	}, ""
}

// condSlice splits the block body into the backward slice of cond (to be
// pushed into both resolution blocks) and the remaining instructions, in
// their original relative orders. When the push-down is not provably legal
// the slice is left in place (empty slice returned) — the transformation
// still applies, only the overlap opportunity shrinks.
func condSlice(body []isa.Instr, cond isa.Reg) (slice, rest []isa.Instr) {
	inSlice := make([]bool, len(body))
	var needed ir.RegSet
	needed.Add(cond)
	for i := len(body) - 1; i >= 0; i-- {
		d := body[i].Def()
		if d != isa.NoReg && needed.Has(d) {
			inSlice[i] = true
			needed.Remove(d)
			u1, u2, u3 := body[i].Uses()
			needed.Add(u1)
			needed.Add(u2)
			needed.Add(u3)
		}
	}
	// Legality: every slice instruction moves below every later non-slice
	// instruction; check RAW/WAW/WAR pairs. Loads moving past stores are
	// permitted (the DBT substrate's data-speculation support); the slice
	// never contains stores.
	for i := range body {
		if !inSlice[i] {
			continue
		}
		sd := body[i].Def()
		su1, su2, su3 := body[i].Uses()
		for j := i + 1; j < len(body); j++ {
			if inSlice[j] {
				continue
			}
			ru1, ru2, ru3 := body[j].Uses()
			rd := body[j].Def()
			if sd != isa.NoReg && (ru1 == sd || ru2 == sd || ru3 == sd || rd == sd) {
				return nil, append([]isa.Instr{}, body...) // RAW or WAW
			}
			if rd != isa.NoReg && (rd == su1 || rd == su2 || rd == su3) {
				return nil, append([]isa.Instr{}, body...) // WAR
			}
			if body[i].IsLoad() && body[j].IsStore() {
				// Without alias analysis a slice load may not sink past a
				// later store.
				return nil, append([]isa.Instr{}, body...)
			}
		}
	}
	for i, ins := range body {
		if inSlice[i] {
			slice = append(slice, ins)
		} else {
			rest = append(rest, ins)
		}
	}
	return slice, rest
}

// tempPool hands out architectural registers that are provably dead across
// the A/B/C region, for shadow renaming.
type tempPool struct {
	free []isa.Reg
}

func newTempPool(f *ir.Func, a, b, c int, lv *ir.Liveness) *tempPool {
	var busy ir.RegSet
	for _, bi := range []int{a, b, c} {
		busy = busy.Union(lv.In[bi]).Union(lv.Out[bi])
		for _, ins := range f.Blocks[bi].Instrs {
			busy.Add(ins.Def())
			u1, u2, u3 := ins.Uses()
			busy.Add(u1)
			busy.Add(u2)
			busy.Add(u3)
		}
	}
	busy.Add(isa.R(isa.NumIntRegs - 1)) // link register
	p := &tempPool{}
	for r := isa.NumIntRegs - 2; r >= 0; r-- {
		if !busy.Has(isa.R(r)) {
			p.free = append(p.free, isa.R(r))
		}
	}
	for r := isa.NumFPRegs - 1; r >= 0; r-- {
		if !busy.Has(isa.F(r)) {
			p.free = append(p.free, isa.F(r))
		}
	}
	return p
}

// take returns a free temp of the right class (int/fp), or NoReg.
func (p *tempPool) take(like isa.Reg) isa.Reg {
	for i, r := range p.free {
		if r.IsFP() == like.IsFP() {
			p.free = append(p.free[:i], p.free[i+1:]...)
			return r
		}
	}
	return isa.NoReg
}

// hoistSel is the outcome of hoist selection on one successor block.
type hoistSel struct {
	hoisted []isa.Instr // renamed, loads speculated; executed in the A' block
	movs    []isa.Instr // temp -> architected commits at the top of X'
	rest    []isa.Instr // what remains in X' (terminator included)
	temps   int
}

// selectHoist picks a dependence-closed prefix of blk to run above the
// resolution point. otherLive is the live-in set of the alternate path: a
// hoisted definition clobbering it must be renamed to a shadow temporary
// (or abandoned when none is free).
func selectHoist(blk *ir.Block, otherLive ir.RegSet, condReg isa.Reg, temps *tempPool, maxHoist int) hoistSel {
	var sel hoistSel
	var skippedDefs, skippedUses ir.RegSet
	renames := map[isa.Reg]isa.Reg{}
	storeSeen := false

	skip := func(ins isa.Instr) {
		skippedDefs.Add(ins.Def())
		u1, u2, u3 := ins.Uses()
		skippedUses.Add(u1)
		skippedUses.Add(u2)
		skippedUses.Add(u3)
		sel.rest = append(sel.rest, ins)
	}
	renamed := func(r isa.Reg) isa.Reg {
		if t, ok := renames[r]; ok {
			return t
		}
		return r
	}

	for idx, ins := range blk.Instrs {
		if ins.IsTerminator() || idx == len(blk.Instrs)-1 && ins.IsControl() {
			sel.rest = append(sel.rest, ins)
			continue
		}
		if ins.IsStore() || ins.IsControl() {
			storeSeen = storeSeen || ins.IsStore()
			skip(ins)
			continue
		}
		if len(sel.hoisted) >= maxHoist {
			skip(ins)
			continue
		}
		u1, u2, u3 := ins.Uses()
		d := ins.Def()
		if skippedDefs.Has(u1) || skippedDefs.Has(u2) || skippedDefs.Has(u3) { // RAW on a skipped def
			skip(ins)
			continue
		}
		if d == isa.NoReg || d == condReg || skippedDefs.Has(d) || skippedUses.Has(d) {
			skip(ins)
			continue
		}
		if ins.IsLoad() && storeSeen { // no load/store reordering without analysis
			skip(ins)
			continue
		}
		h := ins
		h.Src1, h.Src2 = renamed(h.Src1), renamed(h.Src2)
		if h.Op == isa.LD {
			h.Op = isa.LDS // control speculation: suppress faults
		}
		if otherLive.Has(d) {
			// Renaming costs a commit mov below the resolve; only loads
			// (whose latency the hoist hides) are worth it.
			if !ins.IsLoad() {
				skip(ins)
				continue
			}
			t := temps.take(d)
			if t == isa.NoReg {
				skip(ins)
				continue
			}
			renames[d] = t
			h.Dst = t
			mv := isa.MOV
			if d.IsFP() {
				mv = isa.FMOV
			}
			sel.movs = append(sel.movs, isa.Instr{Op: mv, Dst: d, Src1: t, Target: -1})
			sel.temps++
		} else if t, ok := renames[d]; ok {
			// The register was renamed earlier; keep writing the temp so
			// the pending mov commits the latest value.
			h.Dst = t
		}
		sel.hoisted = append(sel.hoisted, h)
	}
	return sel
}

// unspeculate converts a hoisted group back to its non-speculative form
// for a correction block (the correction path is architecturally correct,
// so its loads must fault like the original program's).
func unspeculate(hoisted []isa.Instr) []isa.Instr {
	out := make([]isa.Instr, len(hoisted))
	for i, ins := range hoisted {
		if ins.Op == isa.LDS {
			ins.Op = isa.LD
		}
		out[i] = ins
	}
	return out
}

func concat(a, b, c []isa.Instr) []isa.Instr {
	out := make([]isa.Instr, 0, len(a)+len(b)+len(c))
	out = append(out, a...)
	out = append(out, b...)
	out = append(out, c...)
	return out
}
