package core

import (
	"math/rand"
	"strings"
	"testing"

	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
	"vanguard/internal/pipeline"
	"vanguard/internal/profile"
)

const dataBase = int64(mem.FaultBoundary)

// hammock builds the canonical candidate:
//
//	init: r1=base, r2..r5 seeded
//	A:    r6 = ld [r1+0]; r7 = cmplt(r6, r2); br r7 -> C
//	B:    r8 = ld [r1+8]; r9 = r8+r3; st [r1+64] = r9; jmp D
//	C:    r8 = ld [r1+16]; r9 = r8*r4; st [r1+72] = r9   (fall to D)
//	D:    st [r1+80] = r9; halt
func hammock() *ir.Program {
	f := &ir.Func{Name: "main"}
	init := f.AddBlock("init")
	a := f.AddBlock("A")
	b := f.AddBlock("B")
	c := f.AddBlock("C")
	d := f.AddBlock("D")
	f.Emit(init,
		ir.Li(isa.R(1), dataBase),
		ir.Li(isa.R(2), 50),
		ir.Li(isa.R(3), 7),
		ir.Li(isa.R(4), 3),
	)
	f.Emit(a,
		ir.Ld(isa.R(6), isa.R(1), 0),
		ir.Cmp(isa.CMPLT, isa.R(7), isa.R(6), isa.R(2)),
		ir.BrID(isa.R(7), c, 1),
	)
	f.Emit(b,
		ir.Ld(isa.R(8), isa.R(1), 8),
		ir.Add(isa.R(9), isa.R(8), isa.R(3)),
		ir.St(isa.R(1), 64, isa.R(9)),
		ir.Jmp(d),
	)
	f.Emit(c,
		ir.Ld(isa.R(8), isa.R(1), 16),
		ir.Mul(isa.R(9), isa.R(8), isa.R(4)),
		ir.St(isa.R(1), 72, isa.R(9)),
	)
	f.Emit(d, ir.St(isa.R(1), 80, isa.R(9)), ir.Halt())
	return &ir.Program{Funcs: []*ir.Func{f}}
}

// fakeProfile marks branch `id` as hot, unbiased, and predictable.
func fakeProfile(id int) *profile.Profile {
	return &profile.Profile{ByID: map[int]*profile.Branch{
		id: {ID: id, Forward: true, Execs: 10000, Taken: 6000, Correct: 9200},
	}}
}

func TestTransformStructure(t *testing.T) {
	p := hammock()
	before := len(p.Funcs[0].Blocks)
	rep, err := Transform(p, fakeProfile(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Converted) != 1 {
		t.Fatalf("converted %d branches, want 1 (skipped: %v)", len(rep.Converted), rep.Skipped)
	}
	if got := len(p.Funcs[0].Blocks); got != before+4 {
		t.Errorf("block count %d, want %d", got, before+4)
	}
	var predicts, resolves int
	for _, blk := range p.Funcs[0].Blocks {
		for _, ins := range blk.Instrs {
			switch ins.Op {
			case isa.PREDICT:
				predicts++
			case isa.RESOLVE:
				resolves++
			case isa.BR:
				if ins.BranchID == 1 {
					t.Error("original branch survived the transformation")
				}
			}
		}
	}
	if predicts != 1 || resolves != 2 {
		t.Errorf("predicts=%d resolves=%d, want 1 and 2 (one per predicted path)", predicts, resolves)
	}
	conv := rep.Converted[0]
	if conv.SlicePushed == 0 {
		t.Error("the load+cmp condition slice should have been pushed down")
	}
	if conv.HoistedB == 0 || conv.HoistedC == 0 {
		t.Errorf("expected hoisting from both successors: B=%d C=%d", conv.HoistedB, conv.HoistedC)
	}
	if rep.StaticAfter <= rep.StaticBefore {
		t.Error("transformation must grow static code size")
	}
	if rep.PISCS() <= 0 || rep.PBC() != 100 {
		t.Errorf("PISCS=%.1f PBC=%.1f", rep.PISCS(), rep.PBC())
	}
	// Hoisted loads must be speculative in the A' blocks.
	foundLDS := false
	for _, blk := range p.Funcs[0].Blocks {
		if strings.HasSuffix(blk.Label, ".ba") || strings.HasSuffix(blk.Label, ".ca") {
			for _, ins := range blk.Instrs {
				if ins.Op == isa.LDS {
					foundLDS = true
				}
				if ins.Op == isa.LD && blk.Instrs[len(blk.Instrs)-1].Op == isa.RESOLVE {
					// Slice loads stay non-speculative: they executed
					// unconditionally in the original program. Only check
					// that hoisted successor loads got converted; the
					// slice load here targets [r1+0].
					if ins.Imm != 0 {
						t.Errorf("hoisted load %v not converted to LDS", ins)
					}
				}
			}
		}
	}
	if !foundLDS {
		t.Error("no speculative loads found in resolution blocks")
	}
}

// equivalence checks original vs transformed program results for a set of
// predict oracles and both branch directions.
func checkEquivalence(t *testing.T, orig *ir.Program, init func(*mem.Memory)) {
	t.Helper()
	trans := orig.Clone()
	rep, err := Transform(trans, fakeProfile(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Converted) != 1 {
		t.Fatalf("not converted: %v", rep.Skipped)
	}
	oim := ir.MustLinearize(orig)
	tim := ir.MustLinearize(trans)

	oracles := map[string]func(pc, id int) bool{
		"not-taken": func(pc, id int) bool { return false },
		"taken":     func(pc, id int) bool { return true },
		"alternate": func() func(pc, id int) bool {
			k := 0
			return func(pc, id int) bool { k++; return k%2 == 0 }
		}(),
	}

	gm := mem.New()
	init(gm)
	if _, _, err := interp.Run(oim, gm, interp.Options{}); err != nil {
		t.Fatalf("original program: %v", err)
	}

	for name, oracle := range oracles {
		tm := mem.New()
		init(tm)
		if _, _, err := interp.Run(tim, tm, interp.Options{PredictOracle: oracle}); err != nil {
			t.Fatalf("transformed under %s oracle: %v\n%s", name, err, trans)
		}
		if !tm.Equal(gm) {
			t.Errorf("memory mismatch under %s oracle\ntransformed:\n%s", name, trans)
		}
	}

	// And through the timing simulator (real predictor, flushes, DBB).
	pm := mem.New()
	init(pm)
	mach := pipeline.New(tim, pm, pipeline.DefaultConfig(4))
	if _, err := mach.Run(); err != nil {
		t.Fatalf("pipeline on transformed program: %v", err)
	}
	if !pm.Equal(gm) {
		t.Error("pipeline-executed transformed program diverged from golden model")
	}
}

func TestTransformPreservesSemantics(t *testing.T) {
	for _, cond := range []int64{10, 90} { // taken and not-taken directions
		cond := cond
		checkEquivalence(t, hammock(), func(m *mem.Memory) {
			m.MustStore(uint64(dataBase), cond)
			m.MustStore(uint64(dataBase)+8, 111)
			m.MustStore(uint64(dataBase)+16, 222)
		})
	}
}

// TestRenamedHoistPreservesSemantics forces the shadow-temporary path: B's
// first instruction defines a register that is live into C.
func TestRenamedHoistPreservesSemantics(t *testing.T) {
	f := &ir.Func{Name: "main"}
	init := f.AddBlock("init")
	a := f.AddBlock("A")
	b := f.AddBlock("B")
	c := f.AddBlock("C")
	d := f.AddBlock("D")
	f.Emit(init,
		ir.Li(isa.R(1), dataBase),
		ir.Li(isa.R(2), 50),
		ir.Li(isa.R(10), 1000), // live into C, clobbered early in B
	)
	f.Emit(a,
		ir.Ld(isa.R(6), isa.R(1), 0),
		ir.Cmp(isa.CMPLT, isa.R(7), isa.R(6), isa.R(2)),
		ir.BrID(isa.R(7), c, 1),
	)
	f.Emit(b,
		ir.Ld(isa.R(10), isa.R(1), 8), // defines r10, which C reads
		ir.Addi(isa.R(11), isa.R(10), 5),
		ir.St(isa.R(1), 64, isa.R(11)),
		ir.Jmp(d),
	)
	f.Emit(c,
		ir.Addi(isa.R(11), isa.R(10), 7), // reads the pre-branch r10
		ir.St(isa.R(1), 72, isa.R(11)),
	)
	f.Emit(d, ir.St(isa.R(1), 80, isa.R(11)), ir.Halt())
	p := &ir.Program{Funcs: []*ir.Func{f}}

	// Verify the transform actually used a temp.
	tr := p.Clone()
	rep, err := Transform(tr, fakeProfile(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Converted) != 1 || rep.Converted[0].Temps == 0 {
		t.Fatalf("expected shadow temporaries: %+v (skipped %v)", rep.Converted, rep.Skipped)
	}

	for _, cond := range []int64{10, 90} {
		cond := cond
		checkEquivalence(t, p.Clone(), func(m *mem.Memory) {
			m.MustStore(uint64(dataBase), cond)
			m.MustStore(uint64(dataBase)+8, 333)
		})
	}
}

func TestSelectionHeuristics(t *testing.T) {
	cases := []struct {
		name string
		b    *profile.Branch
		want string // skip reason substring, "" = converted
	}{
		{"good", &profile.Branch{ID: 1, Forward: true, Execs: 10000, Taken: 6000, Correct: 9200}, ""},
		{"cold", &profile.Branch{ID: 1, Forward: true, Execs: 10, Taken: 6, Correct: 9}, "cold"},
		{"biased-predictable", &profile.Branch{ID: 1, Forward: true, Execs: 10000, Taken: 9700, Correct: 9800}, "gap"},
		{"unpredictable", &profile.Branch{ID: 1, Forward: true, Execs: 10000, Taken: 5000, Correct: 5300}, "gap"},
	}
	for _, c := range cases {
		p := hammock()
		prof := &profile.Profile{ByID: map[int]*profile.Branch{1: c.b}}
		rep, err := Transform(p, prof, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if c.want == "" {
			if len(rep.Converted) != 1 {
				t.Errorf("%s: not converted: %v", c.name, rep.Skipped)
			}
			continue
		}
		if len(rep.Converted) != 0 || !strings.Contains(rep.Skipped[1], c.want) {
			t.Errorf("%s: skipped=%v, want reason containing %q", c.name, rep.Skipped, c.want)
		}
	}
}

func TestBackwardBranchRejected(t *testing.T) {
	prof := fakeProfile(1)
	prof.ByID[1].Forward = false
	p := hammock()
	rep, err := Transform(p, prof, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Converted) != 0 {
		t.Error("backward branches must never be converted")
	}
}

func TestMultiPredSuccessorRejected(t *testing.T) {
	// Add a second predecessor of C.
	p := hammock()
	f := p.Funcs[0]
	extra := f.AddBlock("extra")
	f.Blocks[len(f.Blocks)-1], f.Blocks[len(f.Blocks)-2] = f.Blocks[len(f.Blocks)-2], f.Blocks[len(f.Blocks)-1]
	_ = extra
	// Rebuild simpler: emit a jmp to C from a new unreachable block placed
	// at the end (after D).
	f.Blocks[len(f.Blocks)-1].Instrs = []isa.Instr{ir.Jmp(3)}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	rep, err := Transform(p, fakeProfile(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Converted) != 0 || !strings.Contains(rep.Skipped[1], "predecessors") {
		t.Errorf("multi-pred successor must be rejected: %v", rep.Skipped)
	}
}

func TestCallInRegionRejected(t *testing.T) {
	p := hammock()
	callee := &ir.Func{Name: "callee"}
	cb := callee.AddBlock("entry")
	callee.Emit(cb, ir.Ret())
	p.AddFunc(callee)
	// Insert a call into block B (index 2 of main).
	blk := p.Funcs[0].Blocks[2]
	blk.Instrs = append([]isa.Instr{ir.Call(1)}, blk.Instrs...)
	rep, err := Transform(p, fakeProfile(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Converted) != 0 || !strings.Contains(rep.Skipped[1], "call") {
		t.Errorf("call in region must be rejected: %v", rep.Skipped)
	}
}

func TestMaxConvertCap(t *testing.T) {
	// Two candidate hammocks in sequence.
	f := &ir.Func{Name: "main"}
	init := f.AddBlock("init")
	a1 := f.AddBlock("A1")
	b1 := f.AddBlock("B1")
	c1 := f.AddBlock("C1")
	a2 := f.AddBlock("A2")
	b2 := f.AddBlock("B2")
	c2 := f.AddBlock("C2")
	d := f.AddBlock("D")
	f.Emit(init, ir.Li(isa.R(1), dataBase), ir.Li(isa.R(2), 50))
	f.Emit(a1, ir.Ld(isa.R(6), isa.R(1), 0), ir.Cmp(isa.CMPLT, isa.R(7), isa.R(6), isa.R(2)), ir.BrID(isa.R(7), c1, 1))
	f.Emit(b1, ir.Addi(isa.R(8), isa.R(8), 1), ir.Jmp(a2))
	f.Emit(c1, ir.Addi(isa.R(8), isa.R(8), 2))
	f.Emit(a2, ir.Ld(isa.R(6), isa.R(1), 8), ir.Cmp(isa.CMPLT, isa.R(7), isa.R(6), isa.R(2)), ir.BrID(isa.R(7), c2, 2))
	f.Emit(b2, ir.Addi(isa.R(9), isa.R(9), 1), ir.Jmp(d))
	f.Emit(c2, ir.Addi(isa.R(9), isa.R(9), 2))
	f.Emit(d, ir.St(isa.R(1), 64, isa.R(8)), ir.St(isa.R(1), 72, isa.R(9)), ir.Halt())
	p := &ir.Program{Funcs: []*ir.Func{f}}

	prof := &profile.Profile{ByID: map[int]*profile.Branch{
		1: {ID: 1, Forward: true, Execs: 10000, Taken: 6000, Correct: 9200},
		2: {ID: 2, Forward: true, Execs: 5000, Taken: 2000, Correct: 4600},
	}}
	opt := DefaultOptions()
	opt.MaxConvert = 1
	rep, err := Transform(p, prof, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Converted) != 1 || rep.Converted[0].ID != 1 {
		t.Errorf("cap must keep only the hottest branch: %+v", rep.Converted)
	}
	if !strings.Contains(rep.Skipped[2], "cap") {
		t.Errorf("skip reason: %v", rep.Skipped)
	}
}

func TestBothBranchesConvertedAndEquivalent(t *testing.T) {
	// Same double hammock, no cap: both convert, semantics preserved.
	build := func() *ir.Program {
		f := &ir.Func{Name: "main"}
		init := f.AddBlock("init")
		a1 := f.AddBlock("A1")
		b1 := f.AddBlock("B1")
		c1 := f.AddBlock("C1")
		a2 := f.AddBlock("A2")
		b2 := f.AddBlock("B2")
		c2 := f.AddBlock("C2")
		d := f.AddBlock("D")
		f.Emit(init, ir.Li(isa.R(1), dataBase), ir.Li(isa.R(2), 50))
		f.Emit(a1, ir.Ld(isa.R(6), isa.R(1), 0), ir.Cmp(isa.CMPLT, isa.R(7), isa.R(6), isa.R(2)), ir.BrID(isa.R(7), c1, 1))
		f.Emit(b1, ir.Addi(isa.R(8), isa.R(8), 1), ir.Jmp(a2))
		f.Emit(c1, ir.Addi(isa.R(8), isa.R(8), 2))
		f.Emit(a2, ir.Ld(isa.R(6), isa.R(1), 8), ir.Cmp(isa.CMPLT, isa.R(7), isa.R(6), isa.R(2)), ir.BrID(isa.R(7), c2, 2))
		f.Emit(b2, ir.Addi(isa.R(9), isa.R(9), 1), ir.Jmp(d))
		f.Emit(c2, ir.Addi(isa.R(9), isa.R(9), 2))
		f.Emit(d, ir.St(isa.R(1), 64, isa.R(8)), ir.St(isa.R(1), 72, isa.R(9)), ir.Halt())
		return &ir.Program{Funcs: []*ir.Func{f}}
	}
	prof := &profile.Profile{ByID: map[int]*profile.Branch{
		1: {ID: 1, Forward: true, Execs: 10000, Taken: 6000, Correct: 9200},
		2: {ID: 2, Forward: true, Execs: 5000, Taken: 2000, Correct: 4600},
	}}
	trans := build()
	rep, err := Transform(trans, prof, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Converted) != 2 {
		t.Fatalf("converted %d, want 2: %v", len(rep.Converted), rep.Skipped)
	}

	for _, vals := range [][2]int64{{10, 10}, {10, 90}, {90, 10}, {90, 90}} {
		gm := mem.New()
		gm.MustStore(uint64(dataBase), vals[0])
		gm.MustStore(uint64(dataBase)+8, vals[1])
		if _, _, err := interp.Run(ir.MustLinearize(build()), gm, interp.Options{}); err != nil {
			t.Fatal(err)
		}
		for _, oracleTaken := range []bool{false, true} {
			tm := mem.New()
			tm.MustStore(uint64(dataBase), vals[0])
			tm.MustStore(uint64(dataBase)+8, vals[1])
			ot := oracleTaken
			_, _, err := interp.Run(ir.MustLinearize(trans), tm, interp.Options{
				PredictOracle: func(pc, id int) bool { return ot },
			})
			if err != nil {
				t.Fatal(err)
			}
			if !tm.Equal(gm) {
				t.Errorf("vals=%v oracle=%v: mismatch", vals, oracleTaken)
			}
		}
	}
}

// TestRandomHammockEquivalence is the heavyweight property test: randomly
// generated hammocks must survive transformation with identical semantics
// under adversarial predict oracles, in both the functional interpreter
// and the timing pipeline.
func TestRandomHammockEquivalence(t *testing.T) {
	dsts := []isa.Reg{isa.R(5), isa.R(6), isa.R(8), isa.R(9), isa.R(10), isa.R(11)}
	srcs := []isa.Reg{isa.R(2), isa.R(3), isa.R(4), isa.R(5), isa.R(6), isa.R(8), isa.R(9), isa.R(10), isa.R(11)}
	randALU := func(r *rand.Rand) isa.Instr {
		ops := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.XOR, isa.AND, isa.OR, isa.CMPLT, isa.CMPGE}
		return ir.Op3(ops[r.Intn(len(ops))], dsts[r.Intn(len(dsts))], srcs[r.Intn(len(srcs))], srcs[r.Intn(len(srcs))])
	}
	randInstr := func(r *rand.Rand) isa.Instr {
		switch r.Intn(6) {
		case 0:
			return ir.Ld(dsts[r.Intn(len(dsts))], isa.R(1), int64(r.Intn(16))*8)
		case 1:
			return ir.St(isa.R(1), 128+int64(r.Intn(16))*8, srcs[r.Intn(len(srcs))])
		default:
			return randALU(r)
		}
	}

	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		f := &ir.Func{Name: "main"}
		init := f.AddBlock("init")
		a := f.AddBlock("A")
		b := f.AddBlock("B")
		c := f.AddBlock("C")
		d := f.AddBlock("D")
		f.Emit(init, ir.Li(isa.R(1), dataBase), ir.Li(isa.R(2), int64(r.Intn(100))),
			ir.Li(isa.R(3), int64(r.Intn(100))), ir.Li(isa.R(4), int64(r.Intn(100))))
		for i := 0; i < r.Intn(5); i++ {
			f.Emit(a, randInstr(r))
		}
		f.Emit(a,
			ir.Ld(isa.R(12), isa.R(1), 0),
			ir.Cmp(isa.CMPLT, isa.R(13), isa.R(12), isa.R(2)),
			ir.BrID(isa.R(13), c, 1),
		)
		for i := 0; i < 1+r.Intn(6); i++ {
			f.Emit(b, randInstr(r))
		}
		f.Emit(b, ir.Jmp(d))
		for i := 0; i < 1+r.Intn(6); i++ {
			f.Emit(c, randInstr(r))
		}
		for i, reg := range srcs {
			f.Emit(d, ir.St(isa.R(1), 256+int64(i)*8, reg))
		}
		f.Emit(d, ir.Halt())
		orig := &ir.Program{Funcs: []*ir.Func{f}}

		trans := orig.Clone()
		rep, err := Transform(trans, fakeProfile(1), DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Converted) != 1 {
			t.Fatalf("seed %d: skipped: %v", seed, rep.Skipped)
		}

		initMem := func(m *mem.Memory) {
			rr := rand.New(rand.NewSource(seed + 1000))
			for off := uint64(0); off < 1024; off += 8 {
				m.MustStore(uint64(dataBase)+off, int64(rr.Intn(200)))
			}
		}
		gm := mem.New()
		initMem(gm)
		if _, _, err := interp.Run(ir.MustLinearize(orig), gm, interp.Options{}); err != nil {
			t.Fatalf("seed %d original: %v", seed, err)
		}
		or := rand.New(rand.NewSource(seed + 7))
		tm := mem.New()
		initMem(tm)
		if _, _, err := interp.Run(ir.MustLinearize(trans), tm, interp.Options{
			PredictOracle: func(pc, id int) bool { return or.Intn(2) == 0 },
		}); err != nil {
			t.Fatalf("seed %d transformed: %v\n%s", seed, err, trans)
		}
		if !tm.Equal(gm) {
			t.Fatalf("seed %d: interpreter mismatch\noriginal:\n%s\ntransformed:\n%s", seed, orig, trans)
		}
		pm := mem.New()
		initMem(pm)
		if _, err := pipeline.New(ir.MustLinearize(trans), pm, pipeline.DefaultConfig(4)).Run(); err != nil {
			t.Fatalf("seed %d pipeline: %v", seed, err)
		}
		if !pm.Equal(gm) {
			t.Fatalf("seed %d: pipeline mismatch\ntransformed:\n%s", seed, trans)
		}
	}
}
