// Package core implements the paper's contribution: the Decomposed Branch
// Transformation. A profiled, predictable-but-unbiased forward branch
//
//	A:  [pre] [cond slice] br cond -> C    (fall through to B)
//
// is rewritten into the Figure 5(d) shape
//
//	A:   [pre] predict -> CA'
//	BA': [cond slice] [hoisted from B] resolve(expect NT) -> Correct-C
//	B':  [temp moves] [rest of B]
//	CA': [cond slice] [hoisted from C] resolve(expect T)  -> Correct-B
//	C':  [temp moves] [rest of C]
//	Correct-C: [C's hoisted work, non-speculative] jmp C'
//	Correct-B: [B's hoisted work, non-speculative] jmp B'
//
// The control-flow divergence moves up to the predict instruction — before
// the condition is computed — so the compiler can overlap the condition
// slice with independent work (especially loads) hoisted from the likely
// successors, while the resolve instructions become highly biased
// (taken only on a misprediction).
//
// Safety discipline (Section 3 of the paper): hoisted loads become
// non-faulting LDS; stores are never hoisted; a hoisted instruction may
// only define a register that is dead on the alternate path, otherwise it
// is renamed to a free temporary that is committed by a mov below the
// resolution point ("shadow register" commit); correction blocks
// re-execute the alternate path's hoisted work non-speculatively.
package core

import (
	"fmt"
	"sort"

	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/profile"
)

// Options tune branch selection and hoisting.
type Options struct {
	// MinGap is the paper's selection heuristic: transform forward
	// branches whose predictability exceeds bias by at least this much
	// (the paper found 5% best).
	MinGap float64
	// MinExecs filters cold branches out of consideration.
	MinExecs int64
	// MaxHoist caps the instructions hoisted from each successor.
	MaxHoist int
	// MaxConvert caps the number of converted branches (0 = no cap).
	MaxConvert int
	// NoSlicePushdown disables moving the condition slice into the
	// resolution blocks (ablation: how much of the win comes from
	// overlapping the slice with hoisted work).
	NoSlicePushdown bool
}

// DefaultOptions returns the paper's settings.
func DefaultOptions() Options {
	return Options{MinGap: 0.05, MinExecs: 64, MaxHoist: 12}
}

// Converted records one transformed branch.
type Converted struct {
	ID             int
	Bias           float64
	Predictability float64
	Execs          int64
	SlicePushed    int // condition-slice instructions pushed into the A' blocks
	HoistedB       int // instructions hoisted from the fall-through successor
	HoistedC       int // instructions hoisted from the taken successor
	BlockBSize     int // original successor sizes (PHI denominator)
	BlockCSize     int
	Temps          int // shadow temporaries allocated
}

// Report summarizes a whole-program transformation.
type Report struct {
	Converted    []Converted
	Skipped      map[int]string // branch ID -> reason
	StaticBefore int
	StaticAfter  int
	// ForwardStatic counts profiled forward branches considered (PBC
	// denominator).
	ForwardStatic int
}

// PISCS returns the % increase in static code size.
func (r *Report) PISCS() float64 {
	if r.StaticBefore == 0 {
		return 0
	}
	return 100 * float64(r.StaticAfter-r.StaticBefore) / float64(r.StaticBefore)
}

// PBC returns the % of profiled static forward branches converted.
func (r *Report) PBC() float64 {
	if r.ForwardStatic == 0 {
		return 0
	}
	return 100 * float64(len(r.Converted)) / float64(r.ForwardStatic)
}

// Transform applies the decomposed branch transformation in place to every
// profitable branch in p, most-executed first.
func Transform(p *ir.Program, prof *profile.Profile, opt Options) (*Report, error) {
	rep := &Report{Skipped: make(map[int]string), StaticBefore: p.NumInstrs()}

	// Rank candidates by the selection heuristic.
	var cands []*profile.Branch
	for _, b := range prof.ByID {
		if !b.Forward {
			continue
		}
		rep.ForwardStatic++
		switch {
		case b.Execs < opt.MinExecs:
			rep.Skipped[b.ID] = "cold"
		case b.Predictability()-b.Bias() < opt.MinGap:
			rep.Skipped[b.ID] = "predictability-bias gap below threshold"
		default:
			cands = append(cands, b)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Execs != cands[j].Execs {
			return cands[i].Execs > cands[j].Execs
		}
		return cands[i].ID < cands[j].ID
	})

	for _, cand := range cands {
		if opt.MaxConvert > 0 && len(rep.Converted) >= opt.MaxConvert {
			rep.Skipped[cand.ID] = "conversion cap reached"
			continue
		}
		fi, bi := findBranch(p, cand.ID)
		if fi < 0 {
			rep.Skipped[cand.ID] = "branch not found in IR"
			continue
		}
		conv, reason := decompose(p.Funcs[fi], bi, cand, opt)
		if conv == nil {
			rep.Skipped[cand.ID] = reason
			continue
		}
		rep.Converted = append(rep.Converted, *conv)
	}

	rep.StaticAfter = p.NumInstrs()
	if err := p.Verify(); err != nil {
		return rep, fmt.Errorf("core: transformed program invalid: %w", err)
	}
	return rep, nil
}

// findBranch locates the block ending in the BR with the given ID.
func findBranch(p *ir.Program, id int) (fi, bi int) {
	for f, fn := range p.Funcs {
		for b, blk := range fn.Blocks {
			if t, ok := blk.Terminator(); ok && t.Op == isa.BR && t.BranchID == id {
				return f, b
			}
		}
	}
	return -1, -1
}
