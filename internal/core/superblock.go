package core

import (
	"sort"

	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/profile"
)

// SpeculateBiased is the Figure 1 complement to the decomposed branch
// transformation: classic superblock-style control speculation for
// HIGHLY-BIASED branches. Work from the dominant successor is hoisted
// above the branch itself (loads become non-faulting, live-range conflicts
// are renamed through shadow temporaries), so the likely path issues
// without waiting for the branch. It is applied to both the baseline and
// the experimental binaries — it is prior art, not the contribution.
type SpeculateOptions struct {
	// BiasThreshold is the minimum dominant-direction frequency.
	BiasThreshold float64
	MinExecs      int64
	MaxHoist      int
}

// DefaultSpeculateOptions matches common superblock practice.
func DefaultSpeculateOptions() SpeculateOptions {
	return SpeculateOptions{BiasThreshold: 0.95, MinExecs: 64, MaxHoist: 8}
}

// SpeculateReport summarizes the biased-speculation pass.
type SpeculateReport struct {
	Speculated []int // branch IDs
	Hoisted    int   // total instructions hoisted above branches
}

// SpeculateBiasedBranches applies the pass in place.
func SpeculateBiasedBranches(p *ir.Program, prof *profile.Profile, opt SpeculateOptions) (*SpeculateReport, error) {
	rep := &SpeculateReport{}
	var ids []int
	for id, b := range prof.ByID {
		if b.Execs >= opt.MinExecs && b.Bias() >= opt.BiasThreshold {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		fi, bi := findBranch(p, id)
		if fi < 0 {
			continue
		}
		if n := speculateOne(p.Funcs[fi], bi, prof.ByID[id], opt); n > 0 {
			rep.Speculated = append(rep.Speculated, id)
			rep.Hoisted += n
		}
	}
	if err := p.Verify(); err != nil {
		return rep, err
	}
	return rep, nil
}

// speculateOne hoists from the dominant successor of the branch ending
// f.Blocks[a] into A, above the branch. Returns instructions hoisted.
func speculateOne(f *ir.Func, a int, prof *profile.Branch, opt SpeculateOptions) int {
	blk := f.Blocks[a]
	term, ok := blk.Terminator()
	if !ok || term.Op != isa.BR {
		return 0
	}
	c := term.Target
	b := a + 1
	if b >= len(f.Blocks) || c >= len(f.Blocks) || c == b {
		return 0
	}
	// Dominant successor: fall-through when mostly not-taken, else target.
	var hot, cold int
	if prof.TakenRate() <= 0.5 {
		hot, cold = b, c
	} else {
		hot, cold = c, b
	}
	preds := f.Preds()
	if len(preds[hot]) != 1 || preds[hot][0] != a {
		return 0
	}
	for _, bi := range []int{a, hot} {
		for _, ins := range f.Blocks[bi].Instrs {
			if ins.Op == isa.CALL {
				return 0
			}
		}
	}
	lv := ir.ComputeLiveness(f)
	temps := newTempPool(f, a, hot, cold, lv)
	sel := selectHoist(f.Blocks[hot], lv.In[cold], term.Src1, temps, opt.MaxHoist)
	if len(sel.hoisted) == 0 {
		return 0
	}
	// A := [body, hoisted, br]; hot := [movs, rest].
	body := blk.Instrs[:len(blk.Instrs)-1]
	blk.Instrs = concat(body, sel.hoisted, []isa.Instr{term})
	f.Blocks[hot].Instrs = concat(sel.movs, sel.rest, nil)
	return len(sel.hoisted)
}
