package core

import (
	"strings"
	"testing"

	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
	"vanguard/internal/pipeline"
	"vanguard/internal/profile"
)

// predHammock builds the canonical if-convertible shape: pure-ALU/load
// arms, B jumping to the join, C falling through.
func predHammock() *ir.Program {
	f := &ir.Func{Name: "main"}
	init := f.AddBlock("init")
	a := f.AddBlock("A")
	b := f.AddBlock("B")
	c := f.AddBlock("C")
	j := f.AddBlock("J")
	f.Emit(init,
		ir.Li(isa.R(1), dataBase),
		ir.Li(isa.R(2), 50),
		ir.Li(isa.R(10), 777), // live through both arms unless redefined
	)
	f.Emit(a,
		ir.Ld(isa.R(6), isa.R(1), 0),
		ir.Cmp(isa.CMPLT, isa.R(7), isa.R(6), isa.R(2)),
		ir.BrID(isa.R(7), c, 1),
	)
	f.Emit(b,
		ir.Ld(isa.R(8), isa.R(1), 8),
		ir.Addi(isa.R(9), isa.R(8), 5), // r9 defined only on B path
		ir.Jmp(j),
	)
	f.Emit(c,
		ir.Ld(isa.R(8), isa.R(1), 16),
		ir.Muli(isa.R(10), isa.R(8), 3), // r10 redefined only on C path
	)
	f.Emit(j,
		ir.St(isa.R(1), 64, isa.R(8)),
		ir.St(isa.R(1), 72, isa.R(9)),
		ir.St(isa.R(1), 80, isa.R(10)),
		ir.Halt(),
	)
	return &ir.Program{Funcs: []*ir.Func{f}}
}

func hardProfile(id int) *profile.Profile {
	return &profile.Profile{ByID: map[int]*profile.Branch{
		id: {ID: id, Forward: true, Execs: 10000, Taken: 5000, Correct: 5500},
	}}
}

func TestIfConvertStructure(t *testing.T) {
	p := predHammock()
	before := len(p.Funcs[0].Blocks)
	rep, err := IfConvertBranches(p, hardProfile(1), DefaultIfConvertOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Converted) != 1 {
		t.Fatalf("not converted: %v", rep.Skipped)
	}
	if got := len(p.Funcs[0].Blocks); got != before-2 {
		t.Errorf("blocks = %d, want %d (arms folded away)", got, before-2)
	}
	var cmovs, branches, lds int
	for _, blk := range p.Funcs[0].Blocks {
		for _, ins := range blk.Instrs {
			switch ins.Op {
			case isa.CMOV:
				cmovs++
			case isa.BR:
				branches++
			case isa.LDS:
				lds++
			}
		}
	}
	if branches != 0 {
		t.Error("the hammock branch must be gone")
	}
	if cmovs < 2 {
		t.Errorf("expected selects for r8/r9/r10, found %d cmovs", cmovs)
	}
	if lds != 2 {
		t.Errorf("both arm loads must become non-faulting, found %d", lds)
	}
}

func TestIfConvertPreservesSemantics(t *testing.T) {
	for _, cond := range []int64{10, 90} { // taken and not-taken
		gm := mem.New()
		gm.MustStore(uint64(dataBase), cond)
		gm.MustStore(uint64(dataBase)+8, 111)
		gm.MustStore(uint64(dataBase)+16, 222)
		if _, _, err := interp.Run(ir.MustLinearize(predHammock()), gm, interp.Options{}); err != nil {
			t.Fatal(err)
		}
		p := predHammock()
		rep, err := IfConvertBranches(p, hardProfile(1), DefaultIfConvertOptions())
		if err != nil || len(rep.Converted) != 1 {
			t.Fatalf("convert: %v / %v", err, rep)
		}
		for _, sim := range []string{"interp", "pipeline"} {
			m := mem.New()
			m.MustStore(uint64(dataBase), cond)
			m.MustStore(uint64(dataBase)+8, 111)
			m.MustStore(uint64(dataBase)+16, 222)
			if sim == "interp" {
				if _, _, err := interp.Run(ir.MustLinearize(p), m, interp.Options{}); err != nil {
					t.Fatalf("cond=%d: %v\n%s", cond, err, p)
				}
			} else {
				if _, err := pipeline.New(ir.MustLinearize(p), m, pipeline.DefaultConfig(4)).Run(); err != nil {
					t.Fatalf("cond=%d pipeline: %v", cond, err)
				}
			}
			if !m.Equal(gm) {
				t.Errorf("cond=%d %s: if-conversion changed semantics\n%s", cond, sim, p)
			}
		}
	}
}

func TestIfConvertEliminatesMispredicts(t *testing.T) {
	// A coin-flip hammock inside a loop: predicated code must have (near)
	// zero branch mispredicts while the branchy version suffers ~25% of
	// iterations.
	build := func() *ir.Program {
		f := &ir.Func{Name: "main"}
		init := f.AddBlock("init")
		head := f.AddBlock("head")
		b := f.AddBlock("B")
		c := f.AddBlock("C")
		j := f.AddBlock("J")
		latch := f.AddBlock("latch")
		done := f.AddBlock("done")
		f.Emit(init, ir.Li(isa.R(0), 0), ir.Li(isa.R(1), 0), ir.Li(isa.R(2), 2000),
			ir.Li(isa.R(3), dataBase), ir.Li(isa.R(10), 0))
		f.Emit(head,
			ir.Muli(isa.R(4), isa.R(1), 8),
			ir.Add(isa.R(4), isa.R(4), isa.R(3)),
			ir.Ld(isa.R(5), isa.R(4), 0),
			ir.Cmp(isa.CMPNE, isa.R(6), isa.R(5), isa.R(0)),
			ir.BrID(isa.R(6), c, 1),
		)
		f.Emit(b, ir.Addi(isa.R(7), isa.R(10), 1), ir.Jmp(j))
		f.Emit(c, ir.Addi(isa.R(7), isa.R(10), 100))
		f.Emit(j, ir.Mov(isa.R(10), isa.R(7)))
		f.Emit(latch,
			ir.Addi(isa.R(1), isa.R(1), 1),
			ir.Cmp(isa.CMPLT, isa.R(6), isa.R(1), isa.R(2)),
			ir.BrID(isa.R(6), head, 2),
		)
		f.Emit(done, ir.St(isa.R(3), 1<<16, isa.R(10)), ir.Halt())
		return &ir.Program{Funcs: []*ir.Func{f}}
	}
	m := mem.New()
	state := uint64(42)
	for i := 0; i < 2000; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		m.MustStore(uint64(dataBase)+uint64(i)*8, int64(state%2))
	}

	run := func(p *ir.Program) *pipeline.Stats {
		st, err := pipeline.New(ir.MustLinearize(p), m.Clone(), pipeline.DefaultConfig(4)).Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	branchy := run(build())

	pred := build()
	rep, err := IfConvertBranches(pred, hardProfile(1), DefaultIfConvertOptions())
	if err != nil || len(rep.Converted) != 1 {
		t.Fatalf("convert: %v %v", err, rep)
	}
	predicated := run(pred)

	if branchy.BrMispredicts < 500 {
		t.Fatalf("coin-flip branch only mispredicted %d of 2000", branchy.BrMispredicts)
	}
	// Only the loop latch remains; its mispredicts are negligible.
	if predicated.BrMispredicts > 50 {
		t.Errorf("predicated code still mispredicts %d times", predicated.BrMispredicts)
	}
	if predicated.Cycles >= branchy.Cycles {
		t.Errorf("predication should win on an unpredictable hammock: %d vs %d cycles",
			predicated.Cycles, branchy.Cycles)
	}
}

func TestIfConvertSkipsPredictableAndStores(t *testing.T) {
	// Predictable branch: left alone.
	p := predHammock()
	prof := &profile.Profile{ByID: map[int]*profile.Branch{
		1: {ID: 1, Forward: true, Execs: 10000, Taken: 5000, Correct: 9300},
	}}
	rep, err := IfConvertBranches(p, prof, DefaultIfConvertOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Converted) != 0 || !strings.Contains(rep.Skipped[1], "predictable") {
		t.Errorf("predictable branch must be skipped: %v", rep.Skipped)
	}
	// Arm with a store: left alone.
	p2 := predHammock()
	blkB := p2.Funcs[0].Blocks[2]
	blkB.Instrs = append([]isa.Instr{ir.St(isa.R(1), 96, isa.R(2))}, blkB.Instrs...)
	rep2, err := IfConvertBranches(p2, hardProfile(1), DefaultIfConvertOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Converted) != 0 || !strings.Contains(rep2.Skipped[1], "store") {
		t.Errorf("store-bearing arm must be skipped: %v", rep2.Skipped)
	}
}

func TestIfConvertSkipsBigArms(t *testing.T) {
	p := predHammock()
	blkB := p.Funcs[0].Blocks[2]
	var pad []isa.Instr
	for i := 0; i < 20; i++ {
		pad = append(pad, ir.Addi(isa.R(9), isa.R(9), 1))
	}
	blkB.Instrs = append(pad, blkB.Instrs...)
	rep, err := IfConvertBranches(p, hardProfile(1), DefaultIfConvertOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Converted) != 0 || !strings.Contains(rep.Skipped[1], "too large") {
		t.Errorf("oversized arm must be skipped: %v", rep.Skipped)
	}
}
