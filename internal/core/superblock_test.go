package core

import (
	"testing"

	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
	"vanguard/internal/profile"
)

func biasedProfile(id int, takenRate float64) *profile.Profile {
	execs := int64(10000)
	taken := int64(takenRate * 10000)
	return &profile.Profile{ByID: map[int]*profile.Branch{
		id: {ID: id, Forward: true, Execs: execs, Taken: taken, Correct: int64(0.99 * 10000)},
	}}
}

func TestSpeculateBiasedHoistsAboveBranch(t *testing.T) {
	p := hammock()
	rep, err := SpeculateBiasedBranches(p, biasedProfile(1, 0.02), DefaultSpeculateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Speculated) != 1 || rep.Hoisted == 0 {
		t.Fatalf("nothing speculated: %+v", rep)
	}
	// The A block must now contain a speculative load before its branch.
	ablk := p.Funcs[0].Blocks[1]
	sawLDS := false
	for _, ins := range ablk.Instrs {
		if ins.Op == isa.LDS {
			sawLDS = true
		}
	}
	if !sawLDS {
		t.Errorf("no speculative load hoisted into A:\n%s", p)
	}
	if term, _ := ablk.Terminator(); term.Op != isa.BR {
		t.Error("branch must remain the terminator")
	}
}

func TestSpeculateBiasedPreservesSemantics(t *testing.T) {
	for _, cond := range []int64{10, 90} { // taken (rare) and not-taken (hot)
		gm := mem.New()
		gm.MustStore(uint64(dataBase), cond)
		gm.MustStore(uint64(dataBase)+8, 111)
		gm.MustStore(uint64(dataBase)+16, 222)
		if _, _, err := interp.Run(ir.MustLinearize(hammock()), gm, interp.Options{}); err != nil {
			t.Fatal(err)
		}
		p := hammock()
		if _, err := SpeculateBiasedBranches(p, biasedProfile(1, 0.02), DefaultSpeculateOptions()); err != nil {
			t.Fatal(err)
		}
		sm := mem.New()
		sm.MustStore(uint64(dataBase), cond)
		sm.MustStore(uint64(dataBase)+8, 111)
		sm.MustStore(uint64(dataBase)+16, 222)
		if _, _, err := interp.Run(ir.MustLinearize(p), sm, interp.Options{}); err != nil {
			t.Fatalf("cond=%d: %v\n%s", cond, err, p)
		}
		if !sm.Equal(gm) {
			t.Errorf("cond=%d: speculation changed semantics:\n%s", cond, p)
		}
	}
}

func TestSpeculateTakenDominant(t *testing.T) {
	// Bias toward the taken target: hoist from C above the branch.
	p := hammock()
	rep, err := SpeculateBiasedBranches(p, biasedProfile(1, 0.98), DefaultSpeculateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Speculated) != 1 {
		t.Fatalf("taken-dominant branch not speculated: %+v", rep)
	}
	for _, cond := range []int64{10, 90} {
		gm := mem.New()
		gm.MustStore(uint64(dataBase), cond)
		if _, _, err := interp.Run(ir.MustLinearize(hammock()), gm, interp.Options{}); err != nil {
			t.Fatal(err)
		}
		sm := mem.New()
		sm.MustStore(uint64(dataBase), cond)
		p2 := hammock()
		if _, err := SpeculateBiasedBranches(p2, biasedProfile(1, 0.98), DefaultSpeculateOptions()); err != nil {
			t.Fatal(err)
		}
		if _, _, err := interp.Run(ir.MustLinearize(p2), sm, interp.Options{}); err != nil {
			t.Fatalf("cond=%d: %v", cond, err)
		}
		if !sm.Equal(gm) {
			t.Errorf("cond=%d: taken-dominant speculation changed semantics", cond)
		}
	}
}

func TestSpeculateSkipsUnbiased(t *testing.T) {
	p := hammock()
	rep, err := SpeculateBiasedBranches(p, biasedProfile(1, 0.60), DefaultSpeculateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Speculated) != 0 {
		t.Error("60/40 branch must not be superblock-speculated")
	}
}

func TestSpeculateThenDecompose(t *testing.T) {
	// The two passes must compose: speculate the biased branch, decompose
	// the unbiased-but-predictable one, and semantics survive.
	f := &ir.Func{Name: "main"}
	init := f.AddBlock("init")
	a1 := f.AddBlock("A1") // biased branch
	b1 := f.AddBlock("B1")
	c1 := f.AddBlock("C1")
	a2 := f.AddBlock("A2") // unbiased predictable branch
	b2 := f.AddBlock("B2")
	c2 := f.AddBlock("C2")
	d := f.AddBlock("D")
	f.Emit(init, ir.Li(isa.R(1), dataBase), ir.Li(isa.R(2), 50))
	f.Emit(a1, ir.Ld(isa.R(6), isa.R(1), 0), ir.Cmp(isa.CMPLT, isa.R(7), isa.R(6), isa.R(2)), ir.BrID(isa.R(7), c1, 1))
	f.Emit(b1, ir.Ld(isa.R(8), isa.R(1), 8), ir.Addi(isa.R(8), isa.R(8), 1), ir.Jmp(a2))
	f.Emit(c1, ir.Li(isa.R(8), 7))
	f.Emit(a2, ir.Ld(isa.R(6), isa.R(1), 16), ir.Cmp(isa.CMPLT, isa.R(7), isa.R(6), isa.R(2)), ir.BrID(isa.R(7), c2, 2))
	f.Emit(b2, ir.Addi(isa.R(9), isa.R(8), 100), ir.Jmp(d))
	f.Emit(c2, ir.Addi(isa.R(9), isa.R(8), 200))
	f.Emit(d, ir.St(isa.R(1), 64, isa.R(9)), ir.Halt())
	build := func() *ir.Program { return (&ir.Program{Funcs: []*ir.Func{f}}).Clone() }

	prof := &profile.Profile{ByID: map[int]*profile.Branch{
		1: {ID: 1, Forward: true, Execs: 10000, Taken: 200, Correct: 9900},  // biased
		2: {ID: 2, Forward: true, Execs: 10000, Taken: 6000, Correct: 9300}, // unbiased, predictable
	}}

	p := build()
	srep, err := SpeculateBiasedBranches(p, prof, DefaultSpeculateOptions())
	if err != nil {
		t.Fatal(err)
	}
	drep, err := Transform(p, prof, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(srep.Speculated) != 1 || len(drep.Converted) != 1 {
		t.Fatalf("composition failed: spec=%v conv=%v skipped=%v", srep.Speculated, drep.Converted, drep.Skipped)
	}

	for _, v := range [][2]int64{{10, 10}, {10, 90}, {90, 10}, {90, 90}} {
		initm := func(m *mem.Memory) {
			m.MustStore(uint64(dataBase), v[0])
			m.MustStore(uint64(dataBase)+8, 5)
			m.MustStore(uint64(dataBase)+16, v[1])
		}
		gm := mem.New()
		initm(gm)
		if _, _, err := interp.Run(ir.MustLinearize(build()), gm, interp.Options{}); err != nil {
			t.Fatal(err)
		}
		sm := mem.New()
		initm(sm)
		if _, _, err := interp.Run(ir.MustLinearize(p), sm, interp.Options{}); err != nil {
			t.Fatalf("%v: %v\n%s", v, err, p)
		}
		if !sm.Equal(gm) {
			t.Errorf("%v: composed passes changed semantics", v)
		}
	}
}
