package core

import "vanguard/internal/trace"

// Telemetry converts the transformation report into the shared
// machine-readable schema used by every CLI's -json output.
func (r *Report) Telemetry() *trace.TransformReport {
	out := &trace.TransformReport{
		Converted:     len(r.Converted),
		ForwardStatic: r.ForwardStatic,
		PBCPct:        r.PBC(),
		PISCSPct:      r.PISCS(),
		StaticBefore:  r.StaticBefore,
		StaticAfter:   r.StaticAfter,
	}
	for _, c := range r.Converted {
		out.Branches = append(out.Branches, trace.BranchReport{
			ID:             c.ID,
			Bias:           c.Bias,
			Predictability: c.Predictability,
			Execs:          c.Execs,
			SlicePushed:    c.SlicePushed,
			Hoisted:        c.HoistedB + c.HoistedC,
			Temps:          c.Temps,
		})
	}
	return out
}
