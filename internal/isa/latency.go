package isa

// FU identifies a functional-unit class. The Table 1 machine provides up to
// 2 LD/ST units, 2 INT units (which also execute branches), and 4 FP units.
type FU uint8

// Functional unit classes.
const (
	FUInt FU = iota
	FUMem
	FUFP
	NumFUClasses
)

// String names the FU class.
func (f FU) String() string {
	switch f {
	case FUInt:
		return "INT"
	case FUMem:
		return "LD/ST"
	case FUFP:
		return "FP"
	}
	return "FU?"
}

// Unit returns the functional-unit class the opcode executes on.
func (o Op) Unit() FU {
	switch o {
	case LD, LDS, ST:
		return FUMem
	case FADD, FSUB, FMUL, FDIV, FMOV, FCMPLT, FCMPGE, CVTIF, CVTFI:
		return FUFP
	default:
		return FUInt
	}
}

// Latency returns the execution latency in cycles, excluding memory
// hierarchy time: loads add the cache access latency on top of this
// address-generation cycle. The values mirror a modest in-order core with
// a 1-cycle bypass network (Table 1).
func (o Op) Latency() int {
	switch o {
	case MUL, MULI:
		return 3
	case DIV, REM:
		return 12
	case FADD, FSUB, FMUL, FCMPLT, FCMPGE, CVTIF, CVTFI:
		return 4
	case FDIV:
		return 16
	case LD, LDS, ST:
		return 1 // address generation; memory time added by the cache model
	default:
		return 1
	}
}
