package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegConstructors(t *testing.T) {
	if R(0) != 0 || R(63) != 63 {
		t.Fatalf("integer register numbering wrong: R(0)=%d R(63)=%d", R(0), R(63))
	}
	if F(0) != Reg(NumIntRegs) || F(31) != Reg(NumIntRegs+31) {
		t.Fatalf("fp register numbering wrong: F(0)=%d", F(0))
	}
	if R(5).IsFP() {
		t.Error("r5 reported as FP")
	}
	if !F(5).IsFP() {
		t.Error("f5 not reported as FP")
	}
	if NoReg.IsFP() {
		t.Error("NoReg reported as FP")
	}
}

func TestRegConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { R(-1) }, func() { R(NumIntRegs) },
		func() { F(-1) }, func() { F(NumFPRegs) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register")
				}
			}()
			fn()
		}()
	}
}

func TestRegString(t *testing.T) {
	cases := map[Reg]string{R(0): "r0", R(63): "r63", F(0): "f0", F(31): "f31", NoReg: "-"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := NOP; op <= RESOLVE; op++ {
		_ = op
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("mnemonic %q used by both %d and %d", s, prev, op)
		}
		seen[s] = op
	}
}

func TestDefUses(t *testing.T) {
	cases := []struct {
		in      Instr
		def     Reg
		a, b, c Reg
		control bool
	}{
		{Instr{Op: ADD, Dst: R(1), Src1: R(2), Src2: R(3)}, R(1), R(2), R(3), NoReg, false},
		{Instr{Op: LI, Dst: R(1), Imm: 7}, R(1), NoReg, NoReg, NoReg, false},
		{Instr{Op: LD, Dst: R(1), Src1: R(2), Imm: 8}, R(1), R(2), NoReg, NoReg, false},
		{Instr{Op: ST, Src1: R(2), Src2: R(3), Imm: 8}, NoReg, R(2), R(3), NoReg, false},
		{Instr{Op: CMOV, Dst: R(1), Src1: R(4), Src2: R(5)}, R(1), R(4), R(5), R(1), false},
		{Instr{Op: BR, Src1: R(4), Target: 2}, NoReg, R(4), NoReg, NoReg, true},
		{Instr{Op: JMP, Target: 2}, NoReg, NoReg, NoReg, NoReg, true},
		{Instr{Op: CALL, Target: 2}, R(63), NoReg, NoReg, NoReg, true},
		{Instr{Op: RET, Src1: R(63)}, NoReg, R(63), NoReg, NoReg, true},
		{Instr{Op: PREDICT, Target: 3}, NoReg, NoReg, NoReg, NoReg, true},
		{Instr{Op: RESOLVE, Src1: R(4), Target: 3}, NoReg, R(4), NoReg, NoReg, true},
		{Instr{Op: HALT}, NoReg, NoReg, NoReg, NoReg, true},
	}
	for _, tc := range cases {
		if got := tc.in.Def(); got != tc.def {
			t.Errorf("%v: Def() = %v, want %v", tc.in, got, tc.def)
		}
		a, b, c := tc.in.Uses()
		if a != tc.a || b != tc.b || c != tc.c {
			t.Errorf("%v: Uses() = %v,%v,%v want %v,%v,%v", tc.in, a, b, c, tc.a, tc.b, tc.c)
		}
		if got := tc.in.IsControl(); got != tc.control {
			t.Errorf("%v: IsControl() = %v, want %v", tc.in, got, tc.control)
		}
	}
}

func TestClassifiers(t *testing.T) {
	ld := Instr{Op: LD, Dst: R(1), Src1: R(2)}
	lds := Instr{Op: LDS, Dst: R(1), Src1: R(2)}
	st := Instr{Op: ST, Src1: R(1), Src2: R(2)}
	br := Instr{Op: BR, Src1: R(1), Target: 0}
	res := Instr{Op: RESOLVE, Src1: R(1), Target: 0}
	pre := Instr{Op: PREDICT, Target: 0}
	add := Instr{Op: ADD, Dst: R(1), Src1: R(2), Src2: R(3)}

	if !ld.IsMem() || !ld.IsLoad() || ld.IsStore() {
		t.Error("LD classification wrong")
	}
	if !lds.IsLoad() || lds.HasSideEffects() {
		t.Error("LDS classification wrong: speculative loads are side-effect free")
	}
	if !st.IsStore() || !st.HasSideEffects() {
		t.Error("ST classification wrong")
	}
	if !br.IsCondBranch() || !res.IsCondBranch() || pre.IsCondBranch() {
		t.Error("conditional-branch classification wrong")
	}
	for _, i := range []Instr{br, res, pre} {
		if !i.IsTerminator() {
			t.Errorf("%v must be a terminator", i)
		}
	}
	if add.IsTerminator() || add.IsMem() || add.HasSideEffects() {
		t.Error("ADD misclassified")
	}
	if !ld.HasSideEffects() {
		t.Error("plain LD can fault; must count as side-effecting for hoisting")
	}
}

func TestUnitAssignment(t *testing.T) {
	if LD.Unit() != FUMem || ST.Unit() != FUMem || LDS.Unit() != FUMem {
		t.Error("memory ops must use the LD/ST unit")
	}
	if FADD.Unit() != FUFP || FDIV.Unit() != FUFP || CVTIF.Unit() != FUFP {
		t.Error("FP ops must use the FP unit")
	}
	for _, op := range []Op{ADD, CMPLT, BR, JMP, PREDICT, RESOLVE, MUL} {
		if op.Unit() != FUInt {
			t.Errorf("%v should execute on INT unit", op)
		}
	}
	if FUInt.String() != "INT" || FUMem.String() != "LD/ST" || FUFP.String() != "FP" {
		t.Error("FU names wrong")
	}
}

func TestLatencies(t *testing.T) {
	if ADD.Latency() != 1 || BR.Latency() != 1 {
		t.Error("simple ops must be single cycle")
	}
	if MUL.Latency() <= ADD.Latency() {
		t.Error("MUL must be slower than ADD")
	}
	if DIV.Latency() <= MUL.Latency() {
		t.Error("DIV must be slower than MUL")
	}
	if FDIV.Latency() <= FADD.Latency() {
		t.Error("FDIV must be slower than FADD")
	}
	if LD.Latency() != 1 {
		t.Error("load latency here is address generation only; memory time comes from the cache")
	}
}

// Property: Def/Uses never return an out-of-range register for any opcode
// with in-range operand fields, so downstream scoreboards can index arrays
// with them safely.
func TestDefUsesInRange(t *testing.T) {
	f := func(op uint8, d, s1, s2 uint8) bool {
		in := Instr{
			Op:   Op(op % uint8(RESOLVE+1)),
			Dst:  Reg(d % NumRegs),
			Src1: Reg(s1 % NumRegs),
			Src2: Reg(s2 % NumRegs),
		}
		def := in.Def()
		a, b, c := in.Uses()
		ok := func(r Reg) bool { return r == NoReg || int(r) < NumRegs }
		return ok(def) && ok(a) && ok(b) && ok(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: LI, Dst: R(1), Imm: 42}, "li r1, 42"},
		{Instr{Op: ADD, Dst: R(1), Src1: R(2), Src2: R(3)}, "add r1, r2, r3"},
		{Instr{Op: LD, Dst: R(1), Src1: R(2), Imm: 16}, "ld r1, 16(r2)"},
		{Instr{Op: LDS, Dst: R(1), Src1: R(2), Imm: 0}, "ld.s r1, 0(r2)"},
		{Instr{Op: ST, Src1: R(2), Src2: R(1), Imm: 8}, "st 8(r2), r1"},
		{Instr{Op: BR, Src1: R(4), Target: 7}, "br r4, @7"},
		{Instr{Op: PREDICT, Target: 9}, "predict @9"},
		{Instr{Op: RESOLVE, Src1: R(4), Expect: true, Target: 9}, "resolve r4, expect=true, @9"},
		{Instr{Op: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
