// Package isa defines the instruction set of the vanguard machine: a
// RISC-like, word-oriented ISA extended with the paper's decomposed branch
// instructions (PREDICT and RESOLVE).
//
// The ISA is deliberately small but complete enough to express the code the
// Decomposed Branch Transformation manipulates: integer and floating-point
// arithmetic, comparisons into boolean registers, loads and stores (plus a
// non-faulting speculative load for control speculation), conditional and
// unconditional control flow, and calls/returns that exercise a return
// address stack.
package isa

import "fmt"

// Reg names a register in the unified architectural register file.
// Registers [0, NumIntRegs) are integer registers r0..r63; registers
// [NumIntRegs, NumRegs) are floating-point registers f0..f31. Both are
// 64 bits wide; FP registers hold IEEE-754 bit patterns.
type Reg uint8

// Register file dimensions.
const (
	NumIntRegs = 64
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs

	// NoReg marks an unused register operand.
	NoReg Reg = 255
)

// R returns the n-th integer register.
func R(n int) Reg {
	if n < 0 || n >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register r%d out of range", n))
	}
	return Reg(n)
}

// F returns the n-th floating-point register.
func F(n int) Reg {
	if n < 0 || n >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register f%d out of range", n))
	}
	return Reg(NumIntRegs + n)
}

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r != NoReg && r >= NumIntRegs }

// String renders the register in assembly syntax.
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	default:
		return fmt.Sprintf("r%d", int(r))
	}
}

// Op is an opcode.
type Op uint8

// Opcodes. Three-operand ops read Src1/Src2 and write Dst; immediates use
// the Imm field. Control-flow targets are symbolic block references in the
// IR and resolved to instruction PCs by the linearizer.
const (
	NOP Op = iota

	// Integer ALU.
	ADD  // Dst = Src1 + Src2
	SUB  // Dst = Src1 - Src2
	MUL  // Dst = Src1 * Src2
	DIV  // Dst = Src1 / Src2 (0 divisor -> 0, poison-free)
	REM  // Dst = Src1 % Src2 (0 divisor -> 0)
	AND  // Dst = Src1 & Src2
	OR   // Dst = Src1 | Src2
	XOR  // Dst = Src1 ^ Src2
	SHL  // Dst = Src1 << (Src2 & 63)
	SHR  // Dst = Src1 >> (Src2 & 63), arithmetic
	ADDI // Dst = Src1 + Imm
	MULI // Dst = Src1 * Imm
	ANDI // Dst = Src1 & Imm
	LI   // Dst = Imm
	MOV  // Dst = Src1

	// Comparisons (Dst = 1 if true else 0). Signed 64-bit.
	CMPEQ
	CMPNE
	CMPLT
	CMPLE
	CMPGT
	CMPGE

	// Floating point (operands interpreted as float64 bit patterns).
	FADD
	FSUB
	FMUL
	FDIV
	FMOV   // Dst = Src1 (bit copy)
	FCMPLT // Dst(int reg) = 1 if f(Src1) < f(Src2)
	FCMPGE // Dst(int reg) = 1 if f(Src1) >= f(Src2)
	CVTIF  // Dst(fp) = float64(int64(Src1))
	CVTFI  // Dst(int) = int64(f(Src1))

	// Memory. Addresses are byte addresses of aligned 64-bit words,
	// computed as Src1 + Imm.
	LD  // Dst = mem[Src1+Imm]
	LDS // speculative (non-faulting) load: fault -> Dst = 0, poisoned
	ST  // mem[Src1+Imm] = Src2

	// Conditional move (predication support): Dst = Src2 when Src1 != 0,
	// else Dst keeps its value — so Dst is also a source.
	CMOV

	// Control flow.
	BR      // if Src1 != 0 jump to Target, else fall through
	JMP     // unconditional jump to Target
	CALL    // r63 = return PC; jump to Target (pushes RAS)
	RET     // jump to Src1 (pops RAS for prediction)
	HALT    // stop the machine
	PREDICT // decomposed-branch prediction point: predictor-steered jump to Target
	RESOLVE // decomposed-branch resolution: if (Src1 != 0) != Expect, jump to Target
)

var opNames = [...]string{
	NOP: "nop",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
	ADDI: "addi", MULI: "muli", ANDI: "andi", LI: "li", MOV: "mov",
	CMPEQ: "cmpeq", CMPNE: "cmpne", CMPLT: "cmplt", CMPLE: "cmple",
	CMPGT: "cmpgt", CMPGE: "cmpge",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FMOV: "fmov",
	FCMPLT: "fcmplt", FCMPGE: "fcmpge", CVTIF: "cvtif", CVTFI: "cvtfi",
	LD: "ld", LDS: "ld.s", ST: "st", CMOV: "cmov",
	BR: "br", JMP: "jmp", CALL: "call", RET: "ret", HALT: "halt",
	PREDICT: "predict", RESOLVE: "resolve",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// InstrBytes is the encoded size of every instruction; the ISA uses a
// fixed-width 4-byte encoding, which is what the I-cache model and the
// static-code-size metric (PISCS) account in.
const InstrBytes = 4

// Instr is one machine instruction. The same struct is used at the IR level
// (Target holds a block index within the function) and in the linearized
// image (Target holds an absolute instruction PC).
type Instr struct {
	Op   Op
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Imm  int64

	// Target is the control-flow destination: a block index in IR form,
	// an instruction PC (not byte address) in image form. -1 when unused.
	Target int

	// Expect is the outcome the enclosing predicted path assumed, used by
	// RESOLVE: the resolve fires (jumps to Target) iff the actual condition
	// (Src1 != 0) differs from Expect.
	Expect bool

	// BranchID identifies the static source-level branch a PREDICT/RESOLVE
	// pair (or an original BR) came from; the profiler and the DBB stats
	// key on it. Zero means unassigned.
	BranchID int
}

// Uses returns the registers the instruction reads (up to three; NoReg
// slots are unused). CMOV reads its destination as well, since a false
// condition preserves it.
func (i Instr) Uses() (a, b, c Reg) {
	switch i.Op {
	case NOP, LI, JMP, CALL, HALT, PREDICT:
		return NoReg, NoReg, NoReg
	case ADDI, MULI, ANDI, MOV, FMOV, CVTIF, CVTFI, LD, LDS, BR, RET, RESOLVE:
		return i.Src1, NoReg, NoReg
	case CMOV:
		return i.Src1, i.Src2, i.Dst
	default:
		return i.Src1, i.Src2, NoReg
	}
}

// Def returns the register the instruction writes, or NoReg.
func (i Instr) Def() Reg {
	switch i.Op {
	case NOP, ST, BR, JMP, RET, HALT, PREDICT, RESOLVE:
		return NoReg
	case CALL:
		return R(NumIntRegs - 1) // link register r63
	default:
		return i.Dst
	}
}

// IsControl reports whether the instruction can change the PC.
func (i Instr) IsControl() bool {
	switch i.Op {
	case BR, JMP, CALL, RET, HALT, PREDICT, RESOLVE:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is conditionally taken
// (BR or RESOLVE); PREDICT is handled separately because its direction is
// chosen by the predictor, not by a register.
func (i Instr) IsCondBranch() bool { return i.Op == BR || i.Op == RESOLVE }

// IsTerminator reports whether the instruction must end a basic block.
func (i Instr) IsTerminator() bool {
	switch i.Op {
	case BR, JMP, RET, HALT, RESOLVE, PREDICT:
		return true
	}
	return false
}

// IsMem reports whether the instruction accesses data memory.
func (i Instr) IsMem() bool { return i.Op == LD || i.Op == LDS || i.Op == ST }

// IsLoad reports whether the instruction is a (possibly speculative) load.
func (i Instr) IsLoad() bool { return i.Op == LD || i.Op == LDS }

// IsStore reports whether the instruction writes data memory.
func (i Instr) IsStore() bool { return i.Op == ST }

// HasSideEffects reports whether the instruction may not be executed
// speculatively as-is (stores, faulting loads, control transfers). A plain
// LD is side-effect free architecturally but can fault, so hoisting one
// above a resolution point requires converting it to LDS first.
func (i Instr) HasSideEffects() bool {
	return i.IsStore() || i.IsControl() || i.Op == LD
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case NOP, HALT:
		return i.Op.String()
	case LI:
		return fmt.Sprintf("li %s, %d", i.Dst, i.Imm)
	case ADDI, MULI, ANDI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Dst, i.Src1, i.Imm)
	case MOV, FMOV, CVTIF, CVTFI:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Dst, i.Src1)
	case LD, LDS:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Dst, i.Imm, i.Src1)
	case CMOV:
		return fmt.Sprintf("cmov %s, %s, %s", i.Dst, i.Src1, i.Src2)
	case ST:
		return fmt.Sprintf("st %d(%s), %s", i.Imm, i.Src1, i.Src2)
	case BR:
		return fmt.Sprintf("br %s, @%d", i.Src1, i.Target)
	case JMP, CALL:
		return fmt.Sprintf("%s @%d", i.Op, i.Target)
	case RET:
		return fmt.Sprintf("ret %s", i.Src1)
	case PREDICT:
		return fmt.Sprintf("predict @%d", i.Target)
	case RESOLVE:
		return fmt.Sprintf("resolve %s, expect=%v, @%d", i.Src1, i.Expect, i.Target)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Dst, i.Src1, i.Src2)
	}
}
