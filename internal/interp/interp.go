// Package interp is the functional (instruction-accurate) simulator: the
// golden model used for program equivalence checks, for profiling runs
// (branch bias and predictability collection), and as the reference the
// timing simulator's architectural results are validated against.
package interp

import (
	"fmt"

	"vanguard/internal/exec"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

// Options configure a functional run.
type Options struct {
	// MaxInstrs caps the dynamic instruction count; 0 means DefaultMaxInstrs.
	MaxInstrs int64
	// PredictOracle chooses the direction of PREDICT instructions. nil
	// predicts not-taken (fall through to the first resolution block).
	// Program results are independent of this choice by construction of
	// the decomposed branch transformation; tests exercise adversarial
	// oracles to prove it.
	PredictOracle func(pc, branchID int) bool
	// OnBranch, if non-nil, observes every executed BR/PREDICT/RESOLVE
	// with its architectural outcome.
	OnBranch func(pc int, ins isa.Instr, res exec.Result)
}

// DefaultMaxInstrs bounds runaway programs.
const DefaultMaxInstrs = 500_000_000

// Stats summarize a functional run.
type Stats struct {
	Instrs     int64
	Branches   int64 // executed BR instructions
	Taken      int64 // taken BR instructions
	Predicts   int64
	Resolves   int64
	ResolveHit int64 // resolves that fired (mispredictions repaired)
	Loads      int64
	Stores     int64
	Suppressed int64 // LDS faults suppressed
}

// Run executes the image to HALT (or the instruction cap) over memory m,
// which is mutated in place. It returns the final architectural state.
func Run(im *ir.Image, m *mem.Memory, opt Options) (*exec.State, *Stats, error) {
	st := exec.NewState(m, im.Entry)
	stats := &Stats{}
	limit := opt.MaxInstrs
	if limit <= 0 {
		limit = DefaultMaxInstrs
	}
	for !st.Halted {
		if stats.Instrs >= limit {
			return st, stats, fmt.Errorf("interp: instruction limit %d exceeded at pc %d", limit, st.PC)
		}
		if st.PC < 0 || st.PC >= len(im.Instrs) {
			return st, stats, fmt.Errorf("interp: pc %d outside image [0,%d)", st.PC, len(im.Instrs))
		}
		ins := &im.Instrs[st.PC]
		predictTaken := false
		if ins.Op == isa.PREDICT && opt.PredictOracle != nil {
			predictTaken = opt.PredictOracle(st.PC, ins.BranchID)
		}
		pc := st.PC
		res, err := exec.Step(st, ins, predictTaken)
		if err != nil {
			return st, stats, fmt.Errorf("interp: pc %d (%v): %w", pc, *ins, err)
		}
		stats.Instrs++
		switch ins.Op {
		case isa.BR:
			stats.Branches++
			if res.Taken {
				stats.Taken++
			}
		case isa.PREDICT:
			stats.Predicts++
		case isa.RESOLVE:
			stats.Resolves++
			if res.Taken {
				stats.ResolveHit++
			}
		case isa.LD, isa.LDS:
			stats.Loads++
			if res.SuppressedFault {
				stats.Suppressed++
			}
		case isa.ST:
			stats.Stores++
		}
		if opt.OnBranch != nil && (ins.Op == isa.BR || ins.Op == isa.PREDICT || ins.Op == isa.RESOLVE) {
			opt.OnBranch(pc, *ins, res)
		}
	}
	return st, stats, nil
}
