// Package interp is the functional (instruction-accurate) simulator: the
// golden model used for program equivalence checks, for profiling runs
// (branch bias and predictability collection), and as the reference the
// timing simulator's architectural results are validated against.
package interp

import (
	"fmt"

	"vanguard/internal/exec"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

// Options configure a functional run.
type Options struct {
	// MaxInstrs caps the dynamic instruction count; 0 means DefaultMaxInstrs.
	MaxInstrs int64
	// PredictOracle chooses the direction of PREDICT instructions. nil
	// predicts not-taken (fall through to the first resolution block).
	// Program results are independent of this choice by construction of
	// the decomposed branch transformation; tests exercise adversarial
	// oracles to prove it.
	PredictOracle func(pc, branchID int) bool
	// OnBranch, if non-nil, observes every executed BR/PREDICT/RESOLVE
	// with its architectural outcome.
	OnBranch func(pc int, ins isa.Instr, res exec.Result)
	// Dispatch selects the execution engine: exec.DispatchKernels (the
	// zero value and the default) compiles the image once and runs per-PC
	// kernels plus fused straight-line runs; exec.DispatchSwitch steps
	// through the reference exec.Step switch. Results, stats and errors
	// are identical (the equivalence is property-tested); the knob exists
	// for A/B measurement and differential gates.
	Dispatch exec.Dispatch
}

// DefaultMaxInstrs bounds runaway programs.
const DefaultMaxInstrs = 500_000_000

// Stats summarize a functional run.
type Stats struct {
	Instrs     int64
	Branches   int64 // executed BR instructions
	Taken      int64 // taken BR instructions
	Predicts   int64
	Resolves   int64
	ResolveHit int64 // resolves that fired (mispredictions repaired)
	Loads      int64
	Stores     int64
	Suppressed int64 // LDS faults suppressed
}

// Run executes the image to HALT (or the instruction cap) over memory m,
// which is mutated in place. It returns the final architectural state.
//
// Under kernel dispatch (the default) the image is compiled once up
// front: every PC gets its operand-resolved kernel, and maximal
// straight-line runs of pure register instructions execute as one fused
// unit — no per-instruction Result, error check or stats dispatch, since
// a fused run by construction contains no branch, memory op or faultable
// instruction and so can only advance Instrs. Switch dispatch steps the
// reference exec.Step; both paths produce identical state, stats and
// errors.
func Run(im *ir.Image, m *mem.Memory, opt Options) (*exec.State, *Stats, error) {
	st := exec.NewState(m, im.Entry)
	stats := &Stats{}
	limit := opt.MaxInstrs
	if limit <= 0 {
		limit = DefaultMaxInstrs
	}
	var prog *exec.Program
	if opt.Dispatch == exec.DispatchKernels {
		var err error
		prog, err = exec.CompileProgram(im.Instrs)
		if err != nil {
			return st, stats, fmt.Errorf("interp: %w", err)
		}
	}
	for !st.Halted {
		if stats.Instrs >= limit {
			return st, stats, fmt.Errorf("interp: instruction limit %d exceeded at pc %d", limit, st.PC)
		}
		if st.PC < 0 || st.PC >= len(im.Instrs) {
			return st, stats, fmt.Errorf("interp: pc %d outside image [0,%d)", st.PC, len(im.Instrs))
		}
		pc := st.PC
		if prog != nil {
			// Fused fast path: execute the whole straight-line run from
			// here, provided it fits under the instruction cap (a run that
			// would cross the cap falls through to per-instruction stepping
			// so the limit error reports the exact PC it tripped at).
			if n := prog.FusedLen(pc); n > 0 && stats.Instrs+int64(n) <= limit {
				prog.RunFused(pc, st)
				stats.Instrs += int64(n)
				continue
			}
		}
		ins := &im.Instrs[st.PC]
		var res exec.Result
		var err error
		if prog != nil && !(ins.Op == isa.PREDICT && opt.PredictOracle != nil) {
			// Kernels compile PREDICT as the not-taken choice; an oracle-
			// steered PREDICT routes through Step, everything else through
			// its kernel.
			res, err = prog.Kernels[pc](st)
		} else {
			predictTaken := false
			if ins.Op == isa.PREDICT && opt.PredictOracle != nil {
				predictTaken = opt.PredictOracle(st.PC, ins.BranchID)
			}
			res, err = exec.Step(st, ins, predictTaken)
		}
		if err != nil {
			return st, stats, fmt.Errorf("interp: pc %d (%v): %w", pc, *ins, err)
		}
		stats.Instrs++
		switch ins.Op {
		case isa.BR:
			stats.Branches++
			if res.Taken {
				stats.Taken++
			}
		case isa.PREDICT:
			stats.Predicts++
		case isa.RESOLVE:
			stats.Resolves++
			if res.Taken {
				stats.ResolveHit++
			}
		case isa.LD, isa.LDS:
			stats.Loads++
			if res.SuppressedFault {
				stats.Suppressed++
			}
		case isa.ST:
			stats.Stores++
		}
		if opt.OnBranch != nil && (ins.Op == isa.BR || ins.Op == isa.PREDICT || ins.Op == isa.RESOLVE) {
			opt.OnBranch(pc, *ins, res)
		}
	}
	return st, stats, nil
}
