package interp

import (
	"reflect"
	"testing"

	"vanguard/internal/exec"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

// interpPrograms collects the shapes the functional simulator's dispatch
// engines must agree on: tight loops (fused straight-line bodies), calls
// and returns, decomposed branches, and LDS fault suppression.
func interpPrograms() map[string]*ir.Program {
	lds := &ir.Func{Name: "main"}
	b := lds.AddBlock("entry")
	lds.Emit(b,
		ir.Li(isa.R(1), mem.FaultBoundary),
		ir.Li(isa.R(2), 8), // below the boundary: LDS suppresses the fault
		isa.Instr{Op: isa.LDS, Dst: isa.R(3), Src1: isa.R(2)},
		isa.Instr{Op: isa.CMOV, Dst: isa.R(4), Src1: isa.R(2), Src2: isa.R(1)},
		ir.St(isa.R(1), 0, isa.R(4)),
		ir.Halt(),
	)
	return map[string]*ir.Program{
		"sumLoop":      sumLoop(200, mem.FaultBoundary),
		"decomposed-t": decomposedHammock(1),
		"decomposed-n": decomposedHammock(0),
		"lds":          &ir.Program{Funcs: []*ir.Func{lds}},
	}
}

// TestInterpDispatchDifferential: the functional simulator must produce
// identical final state, stats, memory and branch-event streams under
// kernel and switch dispatch — including with an adversarial PREDICT
// oracle, which forces the oracle-steered Step path to interleave with
// compiled kernels.
func TestInterpDispatchDifferential(t *testing.T) {
	oracles := map[string]func(pc, branchID int) bool{
		"nil":       nil,
		"all-taken": func(pc, branchID int) bool { return true },
		"alternate": func(pc, branchID int) bool { return pc%2 == 0 },
	}
	type event struct {
		pc  int
		op  isa.Op
		res exec.Result
	}
	for pname, prog := range interpPrograms() {
		for oname, oracle := range oracles {
			run := func(d exec.Dispatch) (*exec.State, *Stats, *mem.Memory, []event) {
				t.Helper()
				m := mem.New()
				var evs []event
				opt := Options{
					Dispatch:      d,
					PredictOracle: oracle,
					OnBranch: func(pc int, ins isa.Instr, res exec.Result) {
						evs = append(evs, event{pc, ins.Op, res})
					},
				}
				st, stats, err := Run(ir.MustLinearize(prog), m, opt)
				if err != nil {
					t.Fatalf("%s/%s %v: %v", pname, oname, d, err)
				}
				return st, stats, m, evs
			}
			sst, sstats, sm, sev := run(exec.DispatchSwitch)
			kst, kstats, km, kev := run(exec.DispatchKernels)
			if *sstats != *kstats {
				t.Fatalf("%s/%s: stats diverged:\nswitch:  %+v\nkernels: %+v", pname, oname, sstats, kstats)
			}
			if sst.Regs != kst.Regs || sst.Poison != kst.Poison || sst.PC != kst.PC || sst.Halted != kst.Halted {
				t.Fatalf("%s/%s: final state diverged", pname, oname)
			}
			if !sm.Equal(km) {
				t.Fatalf("%s/%s: memory diverged", pname, oname)
			}
			if !reflect.DeepEqual(sev, kev) {
				t.Fatalf("%s/%s: branch event streams diverged:\nswitch:  %v\nkernels: %v", pname, oname, sev, kev)
			}
		}
	}
}

// TestInterpDispatchLimit: the instruction cap must trip at the same
// count and PC under both engines, even when a fused run would cross it.
func TestInterpDispatchLimit(t *testing.T) {
	f := &ir.Func{Name: "main"}
	l := f.AddBlock("loop")
	// Three fusable instructions then a jump: fused runs of length 3.
	f.Emit(l,
		ir.Addi(isa.R(1), isa.R(1), 1),
		ir.Addi(isa.R(2), isa.R(2), 1),
		ir.Addi(isa.R(3), isa.R(3), 1),
		ir.Jmp(l),
	)
	im := ir.MustLinearize(&ir.Program{Funcs: []*ir.Func{f}})

	for _, limit := range []int64{5, 6, 7, 8} { // straddle run boundaries
		var msgs [2]string
		var insc [2]int64
		for i, d := range []exec.Dispatch{exec.DispatchSwitch, exec.DispatchKernels} {
			_, stats, err := Run(im, mem.New(), Options{MaxInstrs: limit, Dispatch: d})
			if err == nil {
				t.Fatalf("limit %d %v: must trip the instruction cap", limit, d)
			}
			msgs[i] = err.Error()
			insc[i] = stats.Instrs
		}
		if msgs[0] != msgs[1] || insc[0] != insc[1] {
			t.Fatalf("limit %d: cap behavior diverged: %q (%d instrs) vs %q (%d instrs)",
				limit, msgs[0], insc[0], msgs[1], insc[1])
		}
	}
}
