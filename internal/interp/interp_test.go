package interp

import (
	"strings"
	"testing"

	"vanguard/internal/exec"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

// sumLoop builds: for i in [0,n): sum += i; store sum to out.
func sumLoop(n int64, out uint64) *ir.Program {
	f := &ir.Func{Name: "main"}
	init := f.AddBlock("init")
	loop := f.AddBlock("loop")
	done := f.AddBlock("done")
	f.Emit(init,
		ir.Li(isa.R(1), 0), // i
		ir.Li(isa.R(2), 0), // sum
		ir.Li(isa.R(3), n),
		ir.Li(isa.R(4), int64(out)),
	)
	f.Emit(loop,
		ir.Add(isa.R(2), isa.R(2), isa.R(1)),
		ir.Addi(isa.R(1), isa.R(1), 1),
		ir.Cmp(isa.CMPLT, isa.R(5), isa.R(1), isa.R(3)),
		ir.Br(isa.R(5), loop),
	)
	f.Emit(done, ir.St(isa.R(4), 0, isa.R(2)), ir.Halt())
	return &ir.Program{Funcs: []*ir.Func{f}}
}

func TestRunSumLoop(t *testing.T) {
	out := uint64(mem.FaultBoundary)
	im := ir.MustLinearize(sumLoop(10, out))
	m := mem.New()
	st, stats, err := Run(im, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Halted {
		t.Error("program must halt")
	}
	v, _ := m.Load(out)
	if v != 45 {
		t.Errorf("sum = %d, want 45", v)
	}
	if stats.Branches != 10 || stats.Taken != 9 {
		t.Errorf("branch stats: %d exec, %d taken; want 10, 9", stats.Branches, stats.Taken)
	}
	if stats.Stores != 1 {
		t.Errorf("stores = %d, want 1", stats.Stores)
	}
}

func TestInstructionLimit(t *testing.T) {
	// Infinite loop.
	f := &ir.Func{Name: "main"}
	l := f.AddBlock("l")
	e := f.AddBlock("e")
	f.Emit(l, ir.Jmp(l))
	f.Emit(e, ir.Halt())
	im := ir.MustLinearize(&ir.Program{Funcs: []*ir.Func{f}})
	_, stats, err := Run(im, mem.New(), Options{MaxInstrs: 1000})
	if err == nil || !strings.Contains(err.Error(), "instruction limit") {
		t.Fatalf("want instruction-limit error, got %v", err)
	}
	if stats.Instrs != 1000 {
		t.Errorf("ran %d instrs, want exactly 1000", stats.Instrs)
	}
}

func TestCallRet(t *testing.T) {
	// callee: r1 = r1*2; ret.  main: r1 = 21; call; store r1; halt.
	callee := &ir.Func{Name: "double"}
	cb := callee.AddBlock("entry")
	callee.Emit(cb, ir.Muli(isa.R(1), isa.R(1), 2), ir.Ret())

	main := &ir.Func{Name: "main"}
	m0 := main.AddBlock("m0")
	m1 := main.AddBlock("m1")
	main.Emit(m0, ir.Li(isa.R(1), 21), ir.Li(isa.R(2), mem.FaultBoundary), ir.Call(1))
	main.Emit(m1, ir.St(isa.R(2), 0, isa.R(1)), ir.Halt())

	im := ir.MustLinearize(&ir.Program{Funcs: []*ir.Func{main, callee}})
	mm := mem.New()
	if _, _, err := Run(im, mm, Options{}); err != nil {
		t.Fatal(err)
	}
	v, _ := mm.Load(mem.FaultBoundary)
	if v != 42 {
		t.Errorf("call/ret result = %d, want 42", v)
	}
}

// decomposedHammock builds a hand-decomposed branch in the Fig. 5(d) shape:
//
//	A:   predict -> CA'
//	BA': cmp; resolve(expect=false) -> CorrC;  B': r10 = 111; jmp D
//	CA': cmp; resolve(expect=true)  -> CorrB;  C': r10 = 222; jmp D
//	CorrC: jmp C'   CorrB: jmp B'
//	D:   store r10; halt
func decomposedHammock(condVal int64) *ir.Program {
	f := &ir.Func{Name: "main"}
	a := f.AddBlock("A")
	ba := f.AddBlock("BA'")
	bp := f.AddBlock("B'")
	ca := f.AddBlock("CA'")
	cp := f.AddBlock("C'")
	corrC := f.AddBlock("Correct-C")
	corrB := f.AddBlock("Correct-B")
	d := f.AddBlock("D")

	f.Emit(a,
		ir.Li(isa.R(1), condVal),
		ir.Li(isa.R(4), mem.FaultBoundary),
		ir.Predict(ca, 7),
	)
	f.Emit(ba,
		ir.Cmp(isa.CMPNE, isa.R(2), isa.R(1), isa.R(0)),
		ir.Resolve(isa.R(2), false, corrC, 7),
	)
	f.Emit(bp, ir.Li(isa.R(10), 111), ir.Jmp(d))
	f.Emit(ca,
		ir.Cmp(isa.CMPNE, isa.R(2), isa.R(1), isa.R(0)),
		ir.Resolve(isa.R(2), true, corrB, 7),
	)
	f.Emit(cp, ir.Li(isa.R(10), 222), ir.Jmp(d))
	f.Emit(corrC, ir.Jmp(cp))
	f.Emit(corrB, ir.Jmp(bp))
	f.Emit(d, ir.St(isa.R(4), 0, isa.R(10)), ir.Halt())
	return &ir.Program{Funcs: []*ir.Func{f}}
}

// TestPredictDirectionIsSemanticallyIrrelevant is the heart of the
// decomposed-branch contract: whatever the front end predicts, the
// resolve/correction machinery produces the same architectural result.
func TestPredictDirectionIsSemanticallyIrrelevant(t *testing.T) {
	for _, cond := range []int64{0, 1} {
		want := int64(111) // cond==0 -> B path
		if cond != 0 {
			want = 222
		}
		for _, predictTaken := range []bool{false, true} {
			im := ir.MustLinearize(decomposedHammock(cond))
			m := mem.New()
			_, stats, err := Run(im, m, Options{
				PredictOracle: func(pc, id int) bool { return predictTaken },
			})
			if err != nil {
				t.Fatalf("cond=%d predict=%v: %v", cond, predictTaken, err)
			}
			got, _ := m.Load(mem.FaultBoundary)
			if got != want {
				t.Errorf("cond=%d predict=%v: result %d, want %d", cond, predictTaken, got, want)
			}
			// The prediction was wrong iff predictTaken != (cond != 0);
			// exactly then the resolve must have fired.
			wantFire := int64(0)
			if predictTaken != (cond != 0) {
				wantFire = 1
			}
			if stats.ResolveHit != wantFire {
				t.Errorf("cond=%d predict=%v: resolve fired %d times, want %d",
					cond, predictTaken, stats.ResolveHit, wantFire)
			}
			if stats.Predicts != 1 || stats.Resolves != 1 {
				t.Errorf("predict/resolve counts: %d/%d", stats.Predicts, stats.Resolves)
			}
		}
	}
}

func TestOnBranchHook(t *testing.T) {
	im := ir.MustLinearize(sumLoop(5, mem.FaultBoundary))
	var seen, taken int
	_, _, err := Run(im, mem.New(), Options{
		OnBranch: func(pc int, ins isa.Instr, res exec.Result) {
			if ins.Op != isa.BR {
				t.Errorf("unexpected hook op %v", ins.Op)
			}
			seen++
			if res.Taken {
				taken++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 5 || taken != 4 {
		t.Errorf("hook saw %d branches (%d taken), want 5 (4)", seen, taken)
	}
}

func TestRunawayPCDetected(t *testing.T) {
	// RET to a garbage address jumps outside the image.
	f := &ir.Func{Name: "main"}
	b := f.AddBlock("b")
	e := f.AddBlock("e")
	f.Emit(b, ir.Li(isa.R(63), 99999), ir.Ret())
	f.Emit(e, ir.Halt())
	im := ir.MustLinearize(&ir.Program{Funcs: []*ir.Func{f}})
	_, _, err := Run(im, mem.New(), Options{})
	if err == nil || !strings.Contains(err.Error(), "outside image") {
		t.Fatalf("want out-of-image error, got %v", err)
	}
}

func TestSuppressedFaultCounting(t *testing.T) {
	f := &ir.Func{Name: "main"}
	b := f.AddBlock("b")
	e := f.AddBlock("e")
	f.Emit(b,
		ir.LdSpec(isa.R(1), isa.R(0), 0),                        // address 0 faults, suppressed
		ir.LdSpec(isa.R(2), isa.R(0), int64(mem.FaultBoundary)), // fine
		ir.Li(isa.R(1), 0),                                      // clear the poison before halt
	)
	f.Emit(e, ir.Halt())
	im := ir.MustLinearize(&ir.Program{Funcs: []*ir.Func{f}})
	_, stats, err := Run(im, mem.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Suppressed != 1 || stats.Loads != 2 {
		t.Errorf("suppressed=%d loads=%d, want 1 and 2", stats.Suppressed, stats.Loads)
	}
}

func TestPoisonConsumptionAbortsRun(t *testing.T) {
	f := &ir.Func{Name: "main"}
	b := f.AddBlock("b")
	e := f.AddBlock("e")
	f.Emit(b,
		ir.Li(isa.R(2), mem.FaultBoundary),
		ir.LdSpec(isa.R(1), isa.R(0), 0),
		ir.St(isa.R(2), 0, isa.R(1)), // consumes poison
	)
	f.Emit(e, ir.Halt())
	im := ir.MustLinearize(&ir.Program{Funcs: []*ir.Func{f}})
	_, _, err := Run(im, mem.New(), Options{})
	if err == nil || !strings.Contains(err.Error(), "poison") {
		t.Fatalf("want poison fault, got %v", err)
	}
}

func TestStatsCountPredictsAndStores(t *testing.T) {
	im := ir.MustLinearize(decomposedHammock(1))
	_, stats, err := Run(im, mem.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Predicts != 1 || stats.Resolves != 1 || stats.Stores != 1 {
		t.Errorf("stats: %+v", stats)
	}
}
