// Package profile implements the profile-guided branch selection data the
// paper's compiler relies on: per-branch execution counts, bias (dominant
// direction frequency), and predictability (accuracy achieved by a
// training run of the machine's branch predictor), collected from a
// functional TRAIN-input run — the analogue of the paper running the
// TRAIN sets to completion in PTLSim.
package profile

import (
	"sort"

	"vanguard/internal/bpred"
	"vanguard/internal/exec"
	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

// Branch aggregates one static conditional branch, keyed by its BranchID.
type Branch struct {
	ID      int
	PC      int // image PC of (one site of) the branch
	Forward bool
	Execs   int64
	Taken   int64
	Correct int64 // training-predictor hits
}

// Bias returns the frequency of the dominant direction in [0.5, 1].
func (b *Branch) Bias() float64 {
	if b.Execs == 0 {
		return 0
	}
	t := float64(b.Taken) / float64(b.Execs)
	if t < 0.5 {
		return 1 - t
	}
	return t
}

// TakenRate returns the taken frequency.
func (b *Branch) TakenRate() float64 {
	if b.Execs == 0 {
		return 0
	}
	return float64(b.Taken) / float64(b.Execs)
}

// Predictability returns the training predictor's accuracy on the branch.
func (b *Branch) Predictability() float64 {
	if b.Execs == 0 {
		return 0
	}
	return float64(b.Correct) / float64(b.Execs)
}

// Profile is the result of a profiling run.
type Profile struct {
	ByID map[int]*Branch
	// DynInstrs is the dynamic instruction count of the profiled run.
	DynInstrs int64
}

// Collect runs the image functionally over m (mutated), feeding every
// conditional branch through pred to measure predictability. Branches
// without a BranchID (ID 0) are ignored — the generators assign unique IDs
// to every interesting branch.
func Collect(im *ir.Image, m *mem.Memory, pred bpred.DirPredictor, maxInstrs int64) (*Profile, error) {
	p := &Profile{ByID: make(map[int]*Branch)}
	opt := interp.Options{
		MaxInstrs: maxInstrs,
		OnBranch: func(pc int, ins isa.Instr, res exec.Result) {
			if ins.Op != isa.BR || ins.BranchID == 0 {
				return
			}
			b := p.ByID[ins.BranchID]
			if b == nil {
				b = &Branch{ID: ins.BranchID, PC: pc, Forward: ins.Target > pc}
				p.ByID[ins.BranchID] = b
			}
			b.Execs++
			if res.Taken {
				b.Taken++
			}
			predTaken, meta := pred.Predict(im.PCAddr(pc))
			if predTaken == res.Taken {
				b.Correct++
			}
			pred.PushHistory(res.Taken)
			pred.Update(im.PCAddr(pc), res.Taken, meta)
		},
	}
	_, stats, err := interp.Run(im, m, opt)
	if err != nil {
		return nil, err
	}
	p.DynInstrs = stats.Instrs
	return p, nil
}

// CollectDefault profiles with a fresh Table 1 predictor.
func CollectDefault(im *ir.Image, m *mem.Memory, maxInstrs int64) (*Profile, error) {
	return Collect(im, m, bpred.NewDefault(), maxInstrs)
}

// TopForward returns the n most-executed forward branches, descending by
// execution count.
func (p *Profile) TopForward(n int) []*Branch {
	var out []*Branch
	for _, b := range p.ByID {
		if b.Forward {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Execs != out[j].Execs {
			return out[i].Execs > out[j].Execs
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// BiasPredictabilityCurve returns the Figure 2/3 series: the top-n
// most-executed forward branches sorted by descending bias, as parallel
// (bias, predictability) slices. Shorter-than-n profiles return what they
// have; the harness averages rank-wise across benchmarks.
func (p *Profile) BiasPredictabilityCurve(n int) (bias, pred []float64) {
	top := p.TopForward(n)
	sort.Slice(top, func(i, j int) bool {
		bi, bj := top[i].Bias(), top[j].Bias()
		if bi != bj {
			return bi > bj
		}
		return top[i].ID < top[j].ID
	})
	for _, b := range top {
		bias = append(bias, b.Bias())
		pred = append(pred, b.Predictability())
	}
	return bias, pred
}
