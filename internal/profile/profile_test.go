package profile

import (
	"testing"

	"vanguard/internal/bpred"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

// twoBranchLoop builds a loop with one forward branch driven by a scripted
// memory pattern and the backward latch.
func twoBranchLoop(n int64) (*ir.Program, *mem.Memory) {
	const scriptBase = uint64(1 << 20)
	f := &ir.Func{Name: "main"}
	init := f.AddBlock("init")
	head := f.AddBlock("head")
	b := f.AddBlock("b")
	c := f.AddBlock("c")
	latch := f.AddBlock("latch")
	done := f.AddBlock("done")
	f.Emit(init, ir.Li(isa.R(1), 0), ir.Li(isa.R(2), n), ir.Li(isa.R(3), int64(scriptBase)))
	f.Emit(head,
		ir.Muli(isa.R(4), isa.R(1), 8),
		ir.Add(isa.R(4), isa.R(4), isa.R(3)),
		ir.Ld(isa.R(5), isa.R(4), 0),
		ir.BrID(isa.R(5), c, 10),
	)
	f.Emit(b, ir.Addi(isa.R(6), isa.R(6), 1), ir.Jmp(latch))
	f.Emit(c, ir.Addi(isa.R(7), isa.R(7), 1))
	f.Emit(latch,
		ir.Addi(isa.R(1), isa.R(1), 1),
		ir.Cmp(isa.CMPLT, isa.R(8), isa.R(1), isa.R(2)),
		ir.BrID(isa.R(8), head, 11),
	)
	f.Emit(done, ir.Halt())

	m := mem.New()
	// Period-4 pattern TTTN: 75% taken, highly predictable.
	for i := int64(0); i < n; i++ {
		v := int64(1)
		if i%4 == 3 {
			v = 0
		}
		m.MustStore(scriptBase+uint64(i)*8, v)
	}
	return &ir.Program{Funcs: []*ir.Func{f}}, m
}

func TestCollectCountsAndDirections(t *testing.T) {
	p, m := twoBranchLoop(400)
	prof, err := CollectDefault(ir.MustLinearize(p), m, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	fwd := prof.ByID[10]
	if fwd == nil {
		t.Fatal("forward branch not profiled")
	}
	if fwd.Execs != 400 || fwd.Taken != 300 {
		t.Errorf("forward branch: execs=%d taken=%d, want 400/300", fwd.Execs, fwd.Taken)
	}
	if !fwd.Forward {
		t.Error("branch 10 must classify as forward")
	}
	if got := fwd.TakenRate(); got != 0.75 {
		t.Errorf("taken rate %f, want 0.75", got)
	}
	if got := fwd.Bias(); got != 0.75 {
		t.Errorf("bias %f, want 0.75", got)
	}
	if p := fwd.Predictability(); p < 0.9 {
		t.Errorf("TTTN pattern should be highly predictable, got %f", p)
	}
	latch := prof.ByID[11]
	if latch == nil || latch.Forward {
		t.Error("latch must be profiled and classified backward")
	}
	if latch.Bias() < 0.95 {
		t.Errorf("latch bias %f, want ~1", latch.Bias())
	}
	if prof.DynInstrs == 0 {
		t.Error("dynamic instruction count missing")
	}
}

func TestBiasDominantDirection(t *testing.T) {
	b := &Branch{Execs: 100, Taken: 20}
	if got := b.Bias(); got != 0.8 {
		t.Errorf("bias of 20%%-taken branch = %f, want 0.8 (dominant direction)", got)
	}
	var empty Branch
	if empty.Bias() != 0 || empty.Predictability() != 0 || empty.TakenRate() != 0 {
		t.Error("zero-exec branch metrics must be 0")
	}
}

func TestTopForwardOrdering(t *testing.T) {
	p := &Profile{ByID: map[int]*Branch{
		1: {ID: 1, Forward: true, Execs: 10},
		2: {ID: 2, Forward: true, Execs: 30},
		3: {ID: 3, Forward: false, Execs: 99},
		4: {ID: 4, Forward: true, Execs: 20},
	}}
	top := p.TopForward(2)
	if len(top) != 2 || top[0].ID != 2 || top[1].ID != 4 {
		t.Errorf("TopForward wrong: %+v", top)
	}
	all := p.TopForward(10)
	if len(all) != 3 {
		t.Errorf("backward branches must be excluded: %d", len(all))
	}
}

func TestBiasPredictabilityCurveSorted(t *testing.T) {
	p := &Profile{ByID: map[int]*Branch{
		1: {ID: 1, Forward: true, Execs: 100, Taken: 50, Correct: 90},
		2: {ID: 2, Forward: true, Execs: 100, Taken: 95, Correct: 97},
		3: {ID: 3, Forward: true, Execs: 100, Taken: 70, Correct: 85},
	}}
	bias, pred := p.BiasPredictabilityCurve(75)
	if len(bias) != 3 || len(pred) != 3 {
		t.Fatalf("curve lengths %d/%d", len(bias), len(pred))
	}
	for i := 1; i < len(bias); i++ {
		if bias[i] > bias[i-1] {
			t.Errorf("bias not descending: %v", bias)
		}
	}
	if bias[0] != 0.95 || pred[0] != 0.97 {
		t.Errorf("head of curve wrong: %v %v", bias, pred)
	}
}

func TestCollectWithCustomPredictor(t *testing.T) {
	p, m := twoBranchLoop(200)
	prof, err := Collect(ir.MustLinearize(p), m, &bpred.Static{}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Static not-taken gets exactly the not-taken fraction right.
	fwd := prof.ByID[10]
	if fwd.Predictability() != 0.25 {
		t.Errorf("static-NT predictability %f, want 0.25", fwd.Predictability())
	}
}
