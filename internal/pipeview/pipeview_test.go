package pipeview

import (
	"strings"
	"testing"

	"vanguard/internal/attr"
	"vanguard/internal/isa"
	"vanguard/internal/trace"
)

// feed is a synthetic event-stream builder for recorder unit tests.
type feed struct{ r *Recorder }

func (f feed) fetch(cycle, seq int64, pc int, ins isa.Instr) {
	f.r.Emit(trace.Event{Kind: trace.KindFetch, Cycle: cycle, Seq: seq, PC: pc, Ins: ins})
}
func (f feed) issue(cycle, seq int64) {
	f.r.Emit(trace.Event{Kind: trace.KindIssue, Cycle: cycle, Seq: seq})
}
func (f feed) complete(cycle, seq, at int64) {
	f.r.Emit(trace.Event{Kind: trace.KindComplete, Cycle: cycle, Seq: seq, Val: at})
}
func (f feed) commit(cycle, seq int64) {
	f.r.Emit(trace.Event{Kind: trace.KindCommit, Cycle: cycle, Seq: seq})
}

// TestRecorderLifetimes covers the basic assembly: fetch/issue/writeback
// stages land on the right records, a clean resolution commits everything
// at or below it, and a flush squashes everything above the speculation
// point while joining the provoking mispredict onto the genealogy row.
func TestRecorderLifetimes(t *testing.T) {
	r := NewRecorder(Config{})
	f := feed{r}
	br := isa.Instr{Op: isa.BR, Target: 9, BranchID: 7}

	f.fetch(10, 0, 100, isa.Instr{Op: isa.ADDI})
	f.fetch(10, 1, 101, br)
	f.fetch(11, 2, 102, isa.Instr{Op: isa.MUL}) // wrong path
	f.issue(14, 0)
	f.complete(14, 0, 15)
	f.issue(15, 1)
	f.complete(15, 1, 16)
	// Seq 1 mispredicts: seq 2 dies, seqs 0 and 1 commit.
	r.Emit(trace.Event{Kind: trace.KindMispredict, Cause: trace.CauseBranch, Cycle: 16, Seq: 1, PC: 101, Ins: br})
	r.Emit(trace.Event{Kind: trace.KindSquash, Cause: trace.CauseBranch, Cycle: 16, Seq: 1, PC: 101, Val: 1})

	rep := r.Report()
	if len(rep.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(rep.Records))
	}
	r0, r1, r2 := rep.Record(0), rep.Record(1), rep.Record(2)
	if r0 == nil || r0.Fetch != 10 || r0.Issue != 14 || r0.Complete != 15 || r0.Commit != 16 {
		t.Errorf("seq 0 lifetime wrong: %+v", r0)
	}
	if r1 == nil || !r1.Mispredict || r1.Cause != "branch" || r1.Commit != 16 {
		t.Errorf("seq 1 should commit as a mispredicting branch: %+v", r1)
	}
	if r2 == nil || r2.Squash != 16 || r2.Cause != "branch" || r2.Issue >= 0 {
		t.Errorf("seq 2 should die unissued at the flush: %+v", r2)
	}
	if len(rep.Flushes) != 1 {
		t.Fatalf("got %d flushes, want 1", len(rep.Flushes))
	}
	fl := rep.Flushes[0]
	if fl.Branch != 7 || fl.ResolveFire || fl.Killed != 1 || fl.Cause != "branch" || fl.Seq != 1 {
		t.Errorf("genealogy row wrong: %+v", fl)
	}
	if rep.From != 10 || rep.To != 16 {
		t.Errorf("observed bounds [%d, %d], want [10, 16]", rep.From, rep.To)
	}
}

// TestRecorderPredictDrop pins the PREDICT terminal: the front end
// consumes it at its DBB push, so the push cycle doubles as a Drop
// terminal and the record never looks truncated.
func TestRecorderPredictDrop(t *testing.T) {
	r := NewRecorder(Config{})
	f := feed{r}
	f.fetch(5, 0, 50, isa.Instr{Op: isa.PREDICT, BranchID: 3})
	r.Emit(trace.Event{Kind: trace.KindDBBPush, Cycle: 5, Seq: 0, PC: 50, Val: 2})
	// Handler pushes carry Seq -1 and must not crash or create records.
	r.Emit(trace.Event{Kind: trace.KindDBBPush, Cycle: 6, Seq: -1, Val: 3})

	rep := r.Report()
	if len(rep.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(rep.Records))
	}
	p := rep.Record(0)
	if p.Drop != 5 || !p.DBBPush || p.DBBOcc != 2 || p.Terminal() != 5 {
		t.Errorf("PREDICT record wrong: %+v", p)
	}
}

// TestRecorderResolveFireJoin pins the vanguard repair genealogy: a
// RESOLVE firing is joined onto its flush row with ResolveFire set, which
// is what lets the genealogy report contrast repair styles.
func TestRecorderResolveFireJoin(t *testing.T) {
	r := NewRecorder(Config{})
	f := feed{r}
	res := isa.Instr{Op: isa.RESOLVE, Target: 4, BranchID: 9}
	f.fetch(1, 0, 10, res)
	f.fetch(1, 1, 11, isa.Instr{Op: isa.ADD})
	f.issue(6, 0)
	f.complete(6, 0, 7)
	r.Emit(trace.Event{Kind: trace.KindResolveFire, Cycle: 7, Seq: 0, PC: 10})
	r.Emit(trace.Event{Kind: trace.KindMispredict, Cause: trace.CauseResolve, Cycle: 7, Seq: 0, PC: 10, Ins: res})
	r.Emit(trace.Event{Kind: trace.KindSquash, Cause: trace.CauseResolve, Cycle: 7, Seq: 0, PC: 10, Val: 1})

	rep := r.Report()
	if fl := rep.Flushes[0]; !fl.ResolveFire || fl.Branch != 9 || fl.Cause != "resolve" {
		t.Errorf("resolve-fire flush row wrong: %+v", fl)
	}
	if rec := rep.Record(0); !rec.ResolveFire || !rec.Mispredict {
		t.Errorf("resolve record wrong: %+v", rec)
	}
}

// TestRecorderCaptureRange pins the From/To windowing: only instructions
// fetched inside [From, To) open records, but stage updates still land on
// records opened inside the window.
func TestRecorderCaptureRange(t *testing.T) {
	r := NewRecorder(Config{From: 100, To: 200})
	f := feed{r}
	f.fetch(50, 0, 1, isa.Instr{Op: isa.ADD})  // before the window
	f.fetch(150, 1, 2, isa.Instr{Op: isa.ADD}) // inside
	f.fetch(250, 2, 3, isa.Instr{Op: isa.ADD}) // after
	f.issue(260, 1)                            // update applies even past To
	f.complete(260, 1, 261)
	f.commit(262, 2)

	rep := r.Report()
	if rep.Trigger != "range" {
		t.Errorf("trigger %q, want range", rep.Trigger)
	}
	if len(rep.Records) != 1 || rep.Records[0].Seq != 1 {
		t.Fatalf("want only seq 1 captured, got %+v", rep.Records)
	}
	if got := rep.Records[0]; got.Issue != 260 || got.Commit != 262 {
		t.Errorf("late-window updates lost: %+v", got)
	}
}

// TestRecorderCaptureAroundSquash pins the trigger mode: recording runs
// until radius cycles past the Nth squash, and the report trims to the
// radius window about the trigger.
func TestRecorderCaptureAroundSquash(t *testing.T) {
	r := NewRecorder(Config{AroundSquash: 2, AroundRadius: 10})
	f := feed{r}
	ins := isa.Instr{Op: isa.ADD}
	f.fetch(1, 0, 1, ins) // far before the trigger: trimmed from the report
	r.Emit(trace.Event{Kind: trace.KindSquash, Cause: trace.CauseBranch, Cycle: 40, Seq: 0, Val: 0})
	f.fetch(95, 1, 2, ins) // within radius of the second squash
	r.Emit(trace.Event{Kind: trace.KindSquash, Cause: trace.CauseBranch, Cycle: 100, Seq: 1, Val: 0})
	f.fetch(105, 2, 3, ins) // inside the post-trigger half
	f.fetch(120, 3, 4, ins) // past stopAt: not captured

	rep := r.Report()
	if rep.Trigger != "around-squash" || rep.TriggerCycle != 100 {
		t.Fatalf("trigger %q at %d, want around-squash at 100", rep.Trigger, rep.TriggerCycle)
	}
	var seqs []int64
	for _, rec := range rep.Records {
		seqs = append(seqs, rec.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Errorf("captured seqs %v, want [1 2]", seqs)
	}
}

// TestRecorderCaptureWindow pins the recurring-burst mode: a record opens
// only in the first Burst cycles of each EveryWindow-cycle window.
func TestRecorderCaptureWindow(t *testing.T) {
	r := NewRecorder(Config{EveryWindow: 100, Burst: 10})
	f := feed{r}
	ins := isa.Instr{Op: isa.ADD}
	f.fetch(5, 0, 1, ins)   // in burst
	f.fetch(50, 1, 2, ins)  // out
	f.fetch(105, 2, 3, ins) // in the next window's burst
	f.fetch(199, 3, 4, ins) // out

	rep := r.Report()
	if rep.Trigger != "window" {
		t.Errorf("trigger %q, want window", rep.Trigger)
	}
	if len(rep.Records) != 2 || rep.Records[0].Seq != 0 || rep.Records[1].Seq != 2 {
		t.Errorf("captured %+v, want seqs 0 and 2", rep.Records)
	}
}

// TestRecorderBounds pins the overwrite and flush-cap accounting: an open
// record overwritten by a ring wrap counts as dropped, and flushes beyond
// the cap count as FlushesDropped instead of growing the list.
func TestRecorderBounds(t *testing.T) {
	r := NewRecorder(Config{MaxRecords: 2, MaxFlushes: 1})
	f := feed{r}
	ins := isa.Instr{Op: isa.ADD}
	f.fetch(1, 0, 1, ins)
	f.fetch(1, 1, 2, ins)
	f.fetch(2, 2, 3, ins) // wraps onto seq 0, still open
	r.Emit(trace.Event{Kind: trace.KindSquash, Cause: trace.CauseBranch, Cycle: 3, Seq: 0, Val: 0})
	r.Emit(trace.Event{Kind: trace.KindSquash, Cause: trace.CauseBranch, Cycle: 4, Seq: 0, Val: 0})

	rep := r.Report()
	if rep.RecordsDropped != 1 {
		t.Errorf("RecordsDropped = %d, want 1", rep.RecordsDropped)
	}
	if len(rep.Flushes) != 1 || rep.FlushesDropped != 1 {
		t.Errorf("flushes %d dropped %d, want 1 and 1", len(rep.Flushes), rep.FlushesDropped)
	}
}

// TestRecorderExceptionSquash pins the exception path: the issued prefix
// below the squash seq commits, the unissued fetch-buffer tail dies with
// cause exception.
func TestRecorderExceptionSquash(t *testing.T) {
	r := NewRecorder(Config{})
	f := feed{r}
	ins := isa.Instr{Op: isa.ADD}
	f.fetch(1, 0, 1, ins)
	f.fetch(1, 1, 2, ins)
	f.issue(5, 0)
	f.complete(5, 0, 6)
	r.Emit(trace.Event{Kind: trace.KindSquash, Cause: trace.CauseException, Cycle: 7, Seq: 1, Val: 1})

	rep := r.Report()
	if r0 := rep.Record(0); r0.Commit != 7 || r0.Squash >= 0 {
		t.Errorf("issued prefix should commit at the exception: %+v", r0)
	}
	if r1 := rep.Record(1); r1.Squash != 7 || r1.Cause != "exception" {
		t.Errorf("unissued tail should die with cause exception: %+v", r1)
	}
	if fl := rep.Flushes[0]; fl.Cause != "exception" || fl.Branch != 0 {
		t.Errorf("exception genealogy row wrong: %+v", fl)
	}
}

// TestRecorderFinalize pins end-of-run settlement: with all speculation
// resolved, open issued records commit at the final cycle; without, they
// stay honestly truncated.
func TestRecorderFinalize(t *testing.T) {
	r := NewRecorder(Config{})
	f := feed{r}
	f.fetch(1, 0, 1, isa.Instr{Op: isa.ADD})
	f.issue(5, 0)
	f.complete(5, 0, 6)
	r.Finalize(9, true)
	if got := r.Report().Record(0); got.Commit != 9 {
		t.Errorf("finalize should commit the issued record at cycle 9: %+v", got)
	}

	r2 := NewRecorder(Config{})
	f2 := feed{r2}
	f2.fetch(1, 0, 1, isa.Instr{Op: isa.BR})
	f2.issue(5, 0)
	r2.Finalize(9, false)
	if got := r2.Report().Record(0); got.Terminal() >= 0 {
		t.Errorf("unresolved record should stay open: %+v", got)
	}
}

// TestWriteGenealogyReport pins the rendered genealogy: grouping, the
// kill-per-flush column, the attribution join, and the repair-locality
// punchline when both repair styles appear.
func TestWriteGenealogyReport(t *testing.T) {
	rep := &trace.PipeviewReport{
		Flushes: []trace.PipeviewFlush{
			{Cycle: 10, Seq: 1, Cause: "branch", Branch: 1, Killed: 12},
			{Cycle: 20, Seq: 5, Cause: "branch", Branch: 1, Killed: 8},
			{Cycle: 30, Seq: 9, Cause: "resolve", Branch: 2, Killed: 2, ResolveFire: true},
		},
	}
	at := attr.NewRecorder(16, 4, 4).Report()
	var sb strings.Builder
	WriteGenealogy(&sb, rep, at)
	out := sb.String()
	for _, want := range []string{
		"3 flush(es)",
		"branch", "resolve",
		"10.0", // 20 killed / 2 flushes
		"resolve-fire repair kills 2.0 instr/flush vs 10.0 for full branch flushes",
		"attr-slots",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("genealogy missing %q:\n%s", want, out)
		}
	}
	// Without attribution the join column disappears.
	sb.Reset()
	WriteGenealogy(&sb, rep, nil)
	if strings.Contains(sb.String(), "attr-slots") {
		t.Error("attr-slots column rendered without an attribution report")
	}
}
