package pipeview

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vanguard/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenReport is a small fixed capture exercising every Konata feature:
// a committed ALU op, a long load whose writeback lands after its commit
// point (the Wb clamp), a mispredicting branch, a squashed wrong-path
// instruction, a dropped PREDICT, and a truncated (still-open) record.
func goldenReport() *trace.PipeviewReport {
	return &trace.PipeviewReport{
		Trigger: "all", TriggerCycle: -1, From: 100, To: 130,
		Records: []trace.PipeviewRecord{
			{Seq: 40, PC: 6, Asm: "addi r1, r1, 1", Fetch: 100, Issue: 104, Complete: 105, Commit: 110, Squash: -1, Drop: -1},
			{Seq: 41, PC: 7, Asm: "ld r7, 0(r6)", Fetch: 100, Issue: 105, Complete: 125, Commit: 110, Squash: -1, Drop: -1},
			{Seq: 42, PC: 8, Asm: "predict @6", Branch: 2, Fetch: 101, Issue: -1, Complete: -1, Commit: -1, Squash: -1, Drop: 101, DBBPush: true, DBBOcc: 1},
			{Seq: 43, PC: 9, Asm: "br r8, @12", Branch: 1, Fetch: 101, Issue: 106, Complete: 107, Commit: 110, Squash: -1, Drop: -1, Cause: "branch", Mispredict: true},
			{Seq: 44, PC: 10, Asm: "mul r5, r1, r2", Fetch: 102, Issue: 108, Complete: 109, Commit: -1, Squash: 110, Drop: -1, Cause: "branch"},
			{Seq: 45, PC: 12, Asm: "st r5, 0(r6)", Fetch: 111, Issue: 115, Complete: -1, Commit: -1, Squash: -1, Drop: -1},
		},
		Flushes: []trace.PipeviewFlush{
			{Cycle: 110, Seq: 43, PC: 9, Branch: 1, Cause: "branch", Killed: 1},
		},
	}
}

// TestKonataGolden pins the export byte-for-byte against the committed
// golden file, so any format drift is an explicit diff. Regenerate with
//
//	go test ./internal/pipeview/ -run TestKonataGolden -update
func TestKonataGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteKonata(&buf, goldenReport()); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	if !bytes.HasPrefix(got, []byte("Kanata\t0004\n")) {
		t.Fatalf("export does not start with the Konata header:\n%s", got[:40])
	}

	golden := filepath.Join("testdata", "golden.kanata")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Konata export drifted from %s (regenerate with -update):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}

	// Byte stability: a second render is identical.
	var buf2 bytes.Buffer
	if err := WriteKonata(&buf2, goldenReport()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf2.Bytes()) {
		t.Error("two renders of the same report differ")
	}
}

// TestKonataRoundTrip parses the export back and checks every stage and
// retire cycle against the source records — the parser is the independent
// witness that stage cycles are consistent with the lifetimes.
func TestKonataRoundTrip(t *testing.T) {
	rep := goldenReport()
	var buf bytes.Buffer
	if err := WriteKonata(&buf, rep); err != nil {
		t.Fatal(err)
	}
	ins, err := ParseKonata(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != len(rep.Records) {
		t.Fatalf("parsed %d instructions, want %d", len(ins), len(rep.Records))
	}
	for _, in := range ins {
		r := rep.Record(in.Seq)
		if r == nil {
			t.Fatalf("parsed unknown seq %d", in.Seq)
		}
		if got := in.Stages["F"]; got != r.Fetch {
			t.Errorf("seq %d: F at %d, want fetch %d", in.Seq, got, r.Fetch)
		}
		if r.Issue >= 0 {
			if got, ok := in.Stages["Is"]; !ok || got != r.Issue {
				t.Errorf("seq %d: Is at %d (ok=%v), want issue %d", in.Seq, got, ok, r.Issue)
			}
		} else if _, ok := in.Stages["Is"]; ok {
			t.Errorf("seq %d: spurious Is stage", in.Seq)
		}
		term := r.Terminal()
		if wb, ok := in.Stages["Wb"]; ok {
			want := r.Complete
			if term >= 0 && want > term {
				want = term // the documented clamp
			}
			if wb != want {
				t.Errorf("seq %d: Wb at %d, want %d", in.Seq, wb, want)
			}
			if wb < in.Stages["Is"] {
				t.Errorf("seq %d: Wb %d before Is %d", in.Seq, wb, in.Stages["Is"])
			}
		}
		if term >= 0 {
			if in.Retire != term {
				t.Errorf("seq %d: retired at %d, want terminal %d", in.Seq, in.Retire, term)
			}
			if in.Flush != (r.Squash >= 0) {
				t.Errorf("seq %d: flush=%v, squash cycle %d", in.Seq, in.Flush, r.Squash)
			}
		} else if in.Retire >= 0 {
			t.Errorf("seq %d: open record retired at %d", in.Seq, in.Retire)
		}
		if !strings.Contains(in.Label, r.Asm) {
			t.Errorf("seq %d: label %q lost disassembly %q", in.Seq, in.Label, r.Asm)
		}
	}
	// Spot-check annotations survived.
	if in := ins[3]; !strings.Contains(in.Note, "MISPREDICT cause=branch") || !strings.Contains(in.Note, "branch=1") {
		t.Errorf("mispredict note lost: %q", in.Note)
	}
	if in := ins[2]; !strings.Contains(in.Note, "dbb-push occ=1") {
		t.Errorf("predict note lost: %q", in.Note)
	}
}

// TestParseKonataRejectsJunk pins the parser's strictness: wrong magic
// and unknown record types are errors, not silent skips.
func TestParseKonataRejectsJunk(t *testing.T) {
	if _, err := ParseKonata(strings.NewReader("Kanata\t9999\nI\t0\t0\t0\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ParseKonata(strings.NewReader("Kanata\t0004\nZ\t0\n")); err == nil {
		t.Error("unknown record type accepted")
	}
	if _, err := ParseKonata(strings.NewReader("Kanata\t0004\nS\t0\t0\tF\nS\t0\t0\tF\n")); err == nil {
		t.Error("duplicate stage accepted")
	}
}
