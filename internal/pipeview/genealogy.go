package pipeview

import (
	"fmt"
	"io"
	"sort"

	"vanguard/internal/attr"
	"vanguard/internal/trace"
)

// Squash genealogy: group every flush with its provoking event and count
// what it killed. The cause split is the paper's repair-locality argument
// in one table — a baseline BR misprediction flushes the whole wrong path
// fetched since the branch, while a vanguard RESOLVE firing repairs from
// the resolution point with the PREDICT's work already retired — and the
// optional attribution join prices each branch's flushes in issue slots.

// genealogyGroup aggregates the flushes of one (cause, branch) pair.
type genealogyGroup struct {
	cause   string
	branch  int
	flushes int64
	killed  int64
	resFire bool
}

// WriteGenealogy renders the squash-genealogy table. at may be nil; when
// it carries the run's attribution report, each branch row is joined with
// the issue slots attribution charged to that branch's mispredictions.
func WriteGenealogy(w io.Writer, rep *trace.PipeviewReport, at *attr.Report) {
	fmt.Fprintf(w, "squash genealogy: %d flush(es)", len(rep.Flushes))
	if rep.FlushesDropped > 0 {
		fmt.Fprintf(w, " (+%d beyond capture bound)", rep.FlushesDropped)
	}
	fmt.Fprintln(w)
	if len(rep.Flushes) == 0 {
		fmt.Fprintln(w, "  (no flushes captured)")
		return
	}

	groups := map[[2]int]*genealogyGroup{}
	causeIdx := map[string]int{}
	var totalKilled int64
	for i := range rep.Flushes {
		f := &rep.Flushes[i]
		ci, ok := causeIdx[f.Cause]
		if !ok {
			ci = len(causeIdx)
			causeIdx[f.Cause] = ci
		}
		key := [2]int{ci, f.Branch}
		g := groups[key]
		if g == nil {
			g = &genealogyGroup{cause: f.Cause, branch: f.Branch, resFire: f.ResolveFire}
			groups[key] = g
		}
		g.flushes++
		g.killed += f.Killed
		totalKilled += f.Killed
	}
	rows := make([]*genealogyGroup, 0, len(groups))
	for _, g := range groups {
		rows = append(rows, g)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].killed != rows[j].killed {
			return rows[i].killed > rows[j].killed
		}
		if rows[i].cause != rows[j].cause {
			return rows[i].cause < rows[j].cause
		}
		return rows[i].branch < rows[j].branch
	})

	withAttr := at != nil
	fmt.Fprintf(w, "  %-10s %7s %8s %8s %10s", "cause", "branch", "flushes", "killed", "kill/flush")
	if withAttr {
		fmt.Fprintf(w, " %11s", "attr-slots")
	}
	fmt.Fprintln(w)
	for _, g := range rows {
		branch := "-"
		if g.branch > 0 {
			branch = fmt.Sprintf("%d", g.branch)
		}
		fmt.Fprintf(w, "  %-10s %7s %8d %8d %10.1f", g.cause, branch, g.flushes, g.killed,
			float64(g.killed)/float64(g.flushes))
		if withAttr {
			if g.branch > 0 {
				row := at.Branch(g.branch)
				fmt.Fprintf(w, " %11d", row.MispredictSlots())
			} else {
				fmt.Fprintf(w, " %11s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  total: %d instruction(s) killed across %d flush(es)\n",
		totalKilled, len(rep.Flushes))

	// The repair-locality punchline, when both repair styles appear.
	var brFlushes, brKilled, resFlushes, resKilled int64
	for _, g := range rows {
		switch g.cause {
		case "branch":
			brFlushes += g.flushes
			brKilled += g.killed
		case "resolve":
			resFlushes += g.flushes
			resKilled += g.killed
		}
	}
	if brFlushes > 0 && resFlushes > 0 {
		fmt.Fprintf(w, "  resolve-fire repair kills %.1f instr/flush vs %.1f for full branch flushes\n",
			float64(resKilled)/float64(resFlushes), float64(brKilled)/float64(brFlushes))
	}
}
