package pipeview

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"vanguard/internal/trace"
)

// Konata/O3PipeView export: the tab-separated text format the gem5
// ecosystem's Konata viewer opens directly. One `I` line declares each
// instruction, `L` lines label it (disassembly plus annotations), `S`
// lines start pipeline stages, and `R` retires it (type 0) or flushes it
// (type 1). `C=` sets the base cycle and `C` advances the clock; Konata
// ends a stage when the next one starts, so stage boundaries are just the
// record's lifetime cycles.
//
// Stage names: F (fetch/front end), Is (issue/execute), Wb (writeback to
// retire). A record whose writeback lands after its commit point (the
// in-order model lets a long load's result arrive under the shadow of an
// already-resolved speculation point) clamps Wb to the terminal so the
// lane reads left to right.

// konataHeader is the format magic Konata checks.
const konataHeader = "Kanata\t0004"

// konataEvent is one pending output line at a cycle.
type konataEvent struct {
	cycle int64
	order int // tiebreak: declaration lines before stage lines before retires
	uid   int
	text  string
}

// WriteKonata renders the capture in Konata text format. Records without
// a fetch cycle cannot be rendered and do not occur (every record opens
// at fetch).
func WriteKonata(w io.Writer, rep *trace.PipeviewReport) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, konataHeader)
	if len(rep.Records) == 0 {
		return bw.Flush()
	}

	evs := make([]konataEvent, 0, 6*len(rep.Records))
	add := func(cycle int64, order, uid int, format string, args ...any) {
		evs = append(evs, konataEvent{cycle, order, uid, fmt.Sprintf(format, args...)})
	}
	for uid := range rep.Records {
		r := &rep.Records[uid]
		term := r.Terminal()
		add(r.Fetch, 0, uid, "I\t%d\t%d\t0", uid, r.Seq)
		add(r.Fetch, 1, uid, "L\t%d\t0\t%d: %s", uid, r.PC, r.Asm)
		if note := konataNote(r); note != "" {
			add(r.Fetch, 2, uid, "L\t%d\t1\t%s", uid, note)
		}
		add(r.Fetch, 3, uid, "S\t%d\t0\tF", uid)
		if r.Issue >= 0 {
			add(r.Issue, 3, uid, "S\t%d\t0\tIs", uid)
			if wb := r.Complete; wb > r.Issue && term >= 0 {
				if wb > term {
					wb = term
				}
				if wb > r.Issue {
					add(wb, 3, uid, "S\t%d\t0\tWb", uid)
				}
			}
		}
		if term >= 0 {
			retire := 0
			if r.Squash >= 0 {
				retire = 1
			}
			add(term, 4, uid, "R\t%d\t%d\t%d", uid, r.Seq, retire)
		}
	}
	// Stable order: by cycle, then declaration/stage/retire rank, then uid.
	sort.Sort(byCycle(evs))

	now := evs[0].cycle
	fmt.Fprintf(bw, "C=\t%d\n", now)
	for _, ev := range evs {
		if ev.cycle > now {
			fmt.Fprintf(bw, "C\t%d\n", ev.cycle-now)
			now = ev.cycle
		}
		fmt.Fprintln(bw, ev.text)
	}
	return bw.Flush()
}

// konataNote renders the record's annotation line: misprediction cause,
// RESOLVE firing, DBB linkage.
func konataNote(r *trace.PipeviewRecord) string {
	var parts []string
	if r.Mispredict {
		parts = append(parts, "MISPREDICT cause="+r.Cause)
	} else if r.Squash >= 0 && r.Cause != "" {
		parts = append(parts, "squashed by "+r.Cause)
	}
	if r.ResolveFire {
		parts = append(parts, "RESOLVE fired")
	}
	if r.DBBPush {
		parts = append(parts, fmt.Sprintf("dbb-push occ=%d", r.DBBOcc))
	}
	if r.DBBPop {
		parts = append(parts, fmt.Sprintf("dbb-pop occ=%d", r.DBBOcc))
	}
	if r.Branch > 0 {
		parts = append(parts, fmt.Sprintf("branch=%d", r.Branch))
	}
	return strings.Join(parts, ", ")
}

// byCycle orders output lines by cycle, then by declaration/stage/retire
// rank, then by uid — a total order, so the export is byte-stable.
type byCycle []konataEvent

func (s byCycle) Len() int      { return len(s) }
func (s byCycle) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s byCycle) Less(i, j int) bool {
	if s[i].cycle != s[j].cycle {
		return s[i].cycle < s[j].cycle
	}
	if s[i].order != s[j].order {
		return s[i].order < s[j].order
	}
	if s[i].uid != s[j].uid {
		return s[i].uid < s[j].uid
	}
	return false
}

// WriteKonataFile writes the capture to path in Konata format.
func WriteKonataFile(path string, rep *trace.PipeviewReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteKonata(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// KonataInstr is one instruction parsed back out of a Konata file — the
// round-trip structure the golden-export test validates against the
// original records.
type KonataInstr struct {
	UID    int
	Seq    int64
	Label  string
	Note   string
	Stages map[string]int64 // stage name -> start cycle
	Retire int64            // -1 if never retired
	Flush  bool             // retire type 1
}

// ParseKonata reads a Konata file back into per-instruction stage/retire
// cycles. It understands the subset WriteKonata emits (which is also the
// subset gem5's O3PipeView conversion uses); unknown line types are an
// error so format drift cannot pass silently.
func ParseKonata(rd io.Reader) ([]KonataInstr, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("konata: empty input")
	}
	if sc.Text() != konataHeader {
		return nil, fmt.Errorf("konata: bad header %q (want %q)", sc.Text(), konataHeader)
	}

	byUID := map[int]*KonataInstr{}
	var order []int
	now := int64(0)
	atoi := func(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }
	line := 1
	for sc.Scan() {
		line++
		f := strings.Split(sc.Text(), "\t")
		if len(f) == 0 || f[0] == "" {
			continue
		}
		get := func(uid int64) *KonataInstr {
			in := byUID[int(uid)]
			if in == nil {
				in = &KonataInstr{UID: int(uid), Stages: map[string]int64{}, Retire: -1}
				byUID[int(uid)] = in
				order = append(order, int(uid))
			}
			return in
		}
		switch f[0] {
		case "C=":
			if len(f) != 2 {
				return nil, fmt.Errorf("konata line %d: malformed C=", line)
			}
			v, err := atoi(f[1])
			if err != nil {
				return nil, err
			}
			now = v
		case "C":
			if len(f) != 2 {
				return nil, fmt.Errorf("konata line %d: malformed C", line)
			}
			v, err := atoi(f[1])
			if err != nil {
				return nil, err
			}
			now += v
		case "I":
			if len(f) != 4 {
				return nil, fmt.Errorf("konata line %d: malformed I", line)
			}
			uid, err := atoi(f[1])
			if err != nil {
				return nil, err
			}
			seq, err := atoi(f[2])
			if err != nil {
				return nil, err
			}
			get(uid).Seq = seq
		case "L":
			if len(f) < 4 {
				return nil, fmt.Errorf("konata line %d: malformed L", line)
			}
			uid, err := atoi(f[1])
			if err != nil {
				return nil, err
			}
			text := strings.Join(f[3:], "\t")
			if f[2] == "0" {
				get(uid).Label = text
			} else {
				get(uid).Note = text
			}
		case "S":
			if len(f) != 4 {
				return nil, fmt.Errorf("konata line %d: malformed S", line)
			}
			uid, err := atoi(f[1])
			if err != nil {
				return nil, err
			}
			in := get(uid)
			if _, dup := in.Stages[f[3]]; dup {
				return nil, fmt.Errorf("konata line %d: stage %s started twice for uid %d", line, f[3], in.UID)
			}
			in.Stages[f[3]] = now
		case "E":
			// Stage ends are implicit in WriteKonata's output; accept and
			// ignore explicit ones for compatibility.
			if len(f) != 4 {
				return nil, fmt.Errorf("konata line %d: malformed E", line)
			}
		case "R":
			if len(f) != 4 {
				return nil, fmt.Errorf("konata line %d: malformed R", line)
			}
			uid, err := atoi(f[1])
			if err != nil {
				return nil, err
			}
			in := get(uid)
			if in.Retire >= 0 {
				return nil, fmt.Errorf("konata line %d: uid %d retired twice", line, in.UID)
			}
			in.Retire = now
			in.Flush = f[3] == "1"
		default:
			return nil, fmt.Errorf("konata line %d: unknown record type %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]KonataInstr, 0, len(order))
	for _, uid := range order {
		out = append(out, *byUID[uid])
	}
	return out, nil
}
