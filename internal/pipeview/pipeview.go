// Package pipeview assembles the pipeline's per-event telemetry stream
// into per-instruction lifetime records — the pipeline waterfall viewer.
// A Recorder is a trace.Sink: attach it (pipeline.Config.Pipeview does
// this) and every dynamic instruction fetched inside the capture window
// accumulates its fetch, issue, writeback and commit/squash/drop cycles,
// annotated with misprediction causes, BranchIDs and PREDICT/RESOLVE/DBB
// linkage. Alongside the records it keeps a squash genealogy: one row per
// flush with its provoking speculation point and kill count.
//
// All hot-path storage is preallocated (a Seq-indexed record ring and a
// bounded flush list), so an attached recorder keeps the simulator's
// steady-state zero-alloc property; captures are windowed (explicit cycle
// range, around the Nth squash, or one burst per recurring window) so the
// viewer stays usable on 100M-cycle runs. Export goes three ways: Konata
// text for the gem5-ecosystem viewer (konata.go), an ASCII waterfall
// (textplot.Waterfall), and the genealogy report (genealogy.go).
package pipeview

import (
	"sort"

	"vanguard/internal/isa"
	"vanguard/internal/trace"
)

// Capture-mode defaults.
const (
	// DefaultRecords sizes the record ring: at the fast suite's flush
	// rates this holds several complete squash shadows.
	DefaultRecords = 4096
	// DefaultFlushes bounds the squash-genealogy list.
	DefaultFlushes = 1024
	// DefaultRadius is the half-width, in cycles, of an around-the-Nth-
	// squash capture.
	DefaultRadius = 200
	// DefaultBurst is the length, in cycles, of each recurring-window
	// capture burst.
	DefaultBurst = 256
)

// Config selects what the recorder captures. The zero value captures the
// whole run into the default-sized ring (oldest terminated records are
// overwritten — the post-mortem mode). Exactly one windowing mode
// applies, in precedence order: AroundSquash, then From/To, then
// EveryWindow.
type Config struct {
	// From/To capture instructions fetched in cycles [From, To) (To <= 0
	// means unbounded).
	From int64 `json:"from,omitempty"`
	To   int64 `json:"to,omitempty"`
	// AroundSquash captures a window of AroundRadius cycles on each side
	// of the Nth squash event (1-based; 0 disables the mode). Recording
	// runs continuously until the trigger, so the "before" half is
	// already in the ring when it fires.
	AroundSquash int   `json:"around_squash,omitempty"`
	AroundRadius int64 `json:"around_radius,omitempty"`
	// EveryWindow captures one Burst-cycle burst at the start of every
	// EveryWindow cycles — the sampling-style mode that pairs with
	// internal/sample windows (set EveryWindow to the sample window).
	EveryWindow int64 `json:"every_window,omitempty"`
	Burst       int64 `json:"burst,omitempty"`
	// MaxRecords/MaxFlushes bound the preallocated storage
	// (DefaultRecords/DefaultFlushes when <= 0).
	MaxRecords int `json:"max_records,omitempty"`
	MaxFlushes int `json:"max_flushes,omitempty"`
}

// DefaultConfig returns a whole-run capture with default bounds.
func DefaultConfig() Config { return Config{} }

// rec is the hot-path form of one lifetime record; Report() renders it
// into the serializable trace.PipeviewRecord (disassembly included) once,
// after the run.
type rec struct {
	seq      int64 // -1 = empty slot
	fetch    int64
	issue    int64
	complete int64
	commit   int64
	squash   int64
	drop     int64
	ins      isa.Instr
	pc       int
	dbbOcc   int32
	cause    trace.Cause
	misp     bool
	resFire  bool
	dbbPush  bool
	dbbPop   bool
}

// open reports whether the record has no terminal stage yet.
func (r *rec) open() bool { return r.commit < 0 && r.squash < 0 && r.drop < 0 }

// Recorder assembles lifetime records from the event stream. It
// implements trace.Sink; Emit never allocates. One recorder belongs to
// one machine (not safe for concurrent use).
type Recorder struct {
	cfg    Config
	radius int64
	burst  int64

	// ring is indexed by seq % len(ring); a slot is valid for seq s only
	// while slot.seq == s. minOpen is the resolution frontier: every seq
	// below it is terminal (or was never recorded), so the commit/squash
	// sweeps walk [minOpen, S] and each seq is visited O(1) times over
	// the whole run.
	ring    []rec
	minOpen int64
	maxSeq  int64
	nOpen   int64 // live open records (skip sweeps when zero)
	dropped int64 // open records overwritten before terminating

	flushes     []trace.PipeviewFlush
	flushDrops  int64
	lastMispSeq int64 // join KindMispredict metadata onto the next squash
	lastMispIns isa.Instr

	// Around-squash trigger state.
	squashes  int
	trigCycle int64
	stopAt    int64

	lastCycle int64
}

// NewRecorder builds a recorder with all capture storage preallocated.
func NewRecorder(cfg Config) *Recorder {
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = DefaultRecords
	}
	if cfg.MaxFlushes <= 0 {
		cfg.MaxFlushes = DefaultFlushes
	}
	r := &Recorder{
		cfg:         cfg,
		radius:      cfg.AroundRadius,
		burst:       cfg.Burst,
		ring:        make([]rec, cfg.MaxRecords),
		flushes:     make([]trace.PipeviewFlush, 0, cfg.MaxFlushes),
		minOpen:     0,
		maxSeq:      -1,
		trigCycle:   -1,
		stopAt:      -1,
		lastMispSeq: -1,
	}
	if r.radius <= 0 {
		r.radius = DefaultRadius
	}
	if r.burst <= 0 {
		r.burst = DefaultBurst
	}
	for i := range r.ring {
		r.ring[i].seq = -1
	}
	return r
}

// active reports whether instructions fetched at cycle c should open a
// capture record. Stage updates and terminals always apply to records
// that already exist, so a record opened late in a window still gets its
// full lifetime.
func (r *Recorder) active(c int64) bool {
	switch {
	case r.cfg.AroundSquash > 0:
		return r.stopAt < 0 || c <= r.stopAt
	case r.cfg.From > 0 || r.cfg.To > 0:
		return c >= r.cfg.From && (r.cfg.To <= 0 || c < r.cfg.To)
	case r.cfg.EveryWindow > 0:
		return c%r.cfg.EveryWindow < r.burst
	}
	return true
}

// lookup returns the live record for seq, or nil.
func (r *Recorder) lookup(seq int64) *rec {
	if seq < 0 {
		return nil
	}
	s := &r.ring[int(seq%int64(len(r.ring)))]
	if s.seq != seq {
		return nil
	}
	return s
}

// Emit implements trace.Sink. Allocation-free by construction: every
// path indexes preallocated storage or bumps counters.
func (r *Recorder) Emit(ev trace.Event) {
	r.lastCycle = ev.Cycle
	switch ev.Kind {
	case trace.KindFetch:
		if !r.active(ev.Cycle) {
			return
		}
		s := &r.ring[int(ev.Seq%int64(len(r.ring)))]
		if s.seq >= 0 && s.open() {
			r.dropped++
			r.nOpen--
		}
		*s = rec{
			seq: ev.Seq, pc: ev.PC, ins: ev.Ins, fetch: ev.Cycle,
			issue: -1, complete: -1, commit: -1, squash: -1, drop: -1,
		}
		r.nOpen++
		if ev.Seq > r.maxSeq {
			r.maxSeq = ev.Seq
		}
	case trace.KindIssue:
		if s := r.lookup(ev.Seq); s != nil {
			s.issue = ev.Cycle
		}
	case trace.KindComplete:
		if s := r.lookup(ev.Seq); s != nil {
			s.complete = ev.Val
		}
	case trace.KindDBBPush:
		// A PREDICT consumed by the front end: steering fetch is its whole
		// execution, so the push doubles as its terminal (Drop). Handler
		// pushes during exception injection carry Seq -1 and are skipped.
		if s := r.lookup(ev.Seq); s != nil {
			s.dbbPush = true
			s.dbbOcc = int32(ev.Val)
			if s.open() {
				s.drop = ev.Cycle
				r.nOpen--
			}
		}
	case trace.KindDBBPop:
		if s := r.lookup(ev.Seq); s != nil {
			s.dbbPop = true
			s.dbbOcc = int32(ev.Val)
		}
	case trace.KindMispredict:
		r.lastMispSeq, r.lastMispIns = ev.Seq, ev.Ins
		if s := r.lookup(ev.Seq); s != nil {
			s.misp = true
			s.cause = ev.Cause
		}
	case trace.KindResolveFire:
		if s := r.lookup(ev.Seq); s != nil {
			s.resFire = true
		}
	case trace.KindCommit:
		r.commitThrough(ev.Seq, ev.Cycle)
	case trace.KindSquash:
		r.onSquash(ev)
	}
}

// commitThrough marks every open record with seq <= S as committed at
// cycle c. Issue is in order and S resolved cleanly, so everything at or
// below S is no longer covered by speculation — that is this machine's
// commit point. minOpen makes the sweep amortized O(1) per instruction.
func (r *Recorder) commitThrough(S, c int64) {
	if S < r.minOpen {
		return
	}
	if r.nOpen > 0 {
		for q := r.minOpen; q <= S; q++ {
			if s := r.lookup(q); s != nil && s.open() {
				s.commit = c
				r.nOpen--
			}
		}
	}
	r.minOpen = S + 1
}

// onSquash handles both flush squashes (everything younger than the
// mispredicting speculation point S dies, S itself and everything older
// commits) and exception squashes (CauseException: a quiet-point fetch-
// buffer clear, so every fetched-but-unissued record from S up dies).
func (r *Recorder) onSquash(ev trace.Event) {
	r.squashes++
	if n := r.cfg.AroundSquash; n > 0 && r.trigCycle < 0 && r.squashes >= n {
		r.trigCycle = ev.Cycle
		r.stopAt = ev.Cycle + r.radius
	}

	cause := ev.Cause
	if cause == trace.CauseNone {
		cause = trace.CauseBranch
	}
	flush := trace.PipeviewFlush{
		Cycle:  ev.Cycle,
		Seq:    ev.Seq,
		PC:     ev.PC,
		Cause:  cause.String(),
		Killed: ev.Val,
	}

	if ev.Cause == trace.CauseException {
		// No provoking branch; the issued prefix is already safe (the
		// machine only injects at infLen() == 0), so commit it and squash
		// the unissued fetch-buffer tail, which starts at ev.Seq.
		if r.nOpen > 0 {
			for q := r.minOpen; q <= r.maxSeq; q++ {
				s := r.lookup(q)
				if s == nil || !s.open() {
					continue
				}
				if s.issue >= 0 && q < ev.Seq {
					s.commit = ev.Cycle
				} else {
					s.squash = ev.Cycle
					s.cause = trace.CauseException
				}
				r.nOpen--
			}
		}
		r.minOpen = r.maxSeq + 1
	} else {
		// Flush: the mispredicting speculation point (seq S) itself
		// commits, so the KindMispredict that preceded this event carries
		// its identity; join it onto the genealogy row.
		if r.lastMispSeq == ev.Seq {
			flush.Branch = r.lastMispIns.BranchID
			flush.ResolveFire = r.lastMispIns.Op == isa.RESOLVE
		}
		r.commitThrough(ev.Seq, ev.Cycle)
		if r.nOpen > 0 {
			for q := r.minOpen; q <= r.maxSeq; q++ {
				if s := r.lookup(q); s != nil && s.open() {
					s.squash = ev.Cycle
					s.cause = cause
					r.nOpen--
				}
			}
		}
		r.minOpen = r.maxSeq + 1
	}

	if len(r.flushes) < cap(r.flushes) {
		r.flushes = append(r.flushes, flush)
	} else {
		r.flushDrops++
	}
}

// Close implements trace.Sink.
func (r *Recorder) Close() error { return nil }

// Finalize settles records still open when the run ended. With
// allResolved (no unresolved speculation — the clean-halt and
// instruction-cap cases) every open issued record is committed as of the
// final cycle; otherwise they stay open, honestly truncated.
func (r *Recorder) Finalize(now int64, allResolved bool) {
	if !allResolved || r.nOpen == 0 {
		return
	}
	for q := r.minOpen; q <= r.maxSeq; q++ {
		if s := r.lookup(q); s != nil && s.open() && s.issue >= 0 {
			s.commit = now
			r.nOpen--
		}
	}
	r.minOpen = r.maxSeq + 1
}

// Report freezes the capture into its serializable form: records sorted
// by Seq (disassembly rendered here, off the hot path), the genealogy,
// and the observed capture bounds. Around-squash captures are trimmed to
// the configured radius about the trigger.
func (r *Recorder) Report() *trace.PipeviewReport {
	rep := &trace.PipeviewReport{
		Trigger:        "all",
		TriggerCycle:   r.trigCycle,
		From:           -1,
		To:             -1,
		Flushes:        append([]trace.PipeviewFlush(nil), r.flushes...),
		RecordsDropped: r.dropped,
		FlushesDropped: r.flushDrops,
	}
	switch {
	case r.cfg.AroundSquash > 0:
		rep.Trigger = "around-squash"
	case r.cfg.From > 0 || r.cfg.To > 0:
		rep.Trigger = "range"
	case r.cfg.EveryWindow > 0:
		rep.Trigger = "window"
	}
	lo := int64(-1)
	if rep.Trigger == "around-squash" && r.trigCycle >= 0 {
		lo = r.trigCycle - r.radius
	}
	for i := range r.ring {
		s := &r.ring[i]
		if s.seq < 0 || s.fetch < lo {
			continue
		}
		pr := trace.PipeviewRecord{
			Seq: s.seq, PC: s.pc, Asm: s.ins.String(), Branch: s.ins.BranchID,
			Fetch: s.fetch, Issue: s.issue, Complete: s.complete,
			Commit: s.commit, Squash: s.squash, Drop: s.drop,
			Cause:       s.cause.String(),
			Mispredict:  s.misp,
			ResolveFire: s.resFire,
			DBBPush:     s.dbbPush,
			DBBPop:      s.dbbPop,
			DBBOcc:      int(s.dbbOcc),
		}
		if rep.From < 0 || s.fetch < rep.From {
			rep.From = s.fetch
		}
		for _, c := range [4]int64{s.fetch, s.issue, s.complete, pr.Terminal()} {
			if c > rep.To {
				rep.To = c
			}
		}
		rep.Records = append(rep.Records, pr)
	}
	sort.Slice(rep.Records, func(i, j int) bool { return rep.Records[i].Seq < rep.Records[j].Seq })
	return rep
}
