package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"vanguard/internal/bpred"
	"vanguard/internal/workload"
)

// BpredDiff is the predictor observatory of one benchmark joined with its
// differential attribution: the same workload simulated as the baseline
// and vanguard binaries with both the probe and cycle attribution on, so
// every converted branch's recovered slots line up with its measured
// predictability class — which conversions rescued genuinely
// unpredictable branches versus merely mispredicted ones.
type BpredDiff struct {
	Benchmark string
	Width     int
	Input     workload.Input
	// Base and Exp are the two binaries' predictor studies.
	Base, Exp *bpred.StudyReport
	// Attr is the matching differential attribution (same runs — the
	// probe and the recorder observe the identical simulations).
	Attr *AttrDiff
}

// RunBpredDiff measures one benchmark's baseline-vs-vanguard predictor
// study at one width on the first REF input, through the ordinary
// experiment engine (so the run cache and monitor apply). The probe and
// attribution are forced on regardless of o.Probe / o.Attr.
func RunBpredDiff(c workload.Config, o Options, width int) (*BpredDiff, error) {
	o.Attr = true
	o.Probe = true
	o.Widths = []int{width}
	if len(o.RefInputs) == 0 {
		return nil, fmt.Errorf("bpred-diff %s: no REF inputs", c.Name)
	}
	o.RefInputs = o.RefInputs[:1]
	res, err := RunBenchmark(c, o)
	if err != nil {
		return nil, err
	}
	wr := res.Inputs[0].Runs[0]
	if wr.Base.Bpred == nil || wr.Exp.Bpred == nil {
		return nil, fmt.Errorf("bpred-diff %s: simulation returned no predictor study", c.Name)
	}
	if wr.Base.Attr == nil || wr.Exp.Attr == nil {
		return nil, fmt.Errorf("bpred-diff %s: simulation returned no attribution", c.Name)
	}
	return &BpredDiff{
		Benchmark: c.Name,
		Width:     width,
		Input:     o.RefInputs[0],
		Base:      wr.Base.Bpred,
		Exp:       wr.Exp.Bpred,
		Attr: &AttrDiff{
			Benchmark: c.Name,
			Width:     width,
			Input:     o.RefInputs[0],
			Base:      wr.Base.Attr,
			Exp:       wr.Exp.Attr,
			Profile:   res.Profile,
			Transform: res.Report,
		},
	}, nil
}

// BpredJoinRow is one static branch of the classification × conversion
// join: its attribution delta (recovered issue slots, conversion flag,
// TRAIN-profile character) annotated with the baseline study's measured
// predictability. Class is "unseen" when the baseline probe never
// observed the branch resolve.
type BpredJoinRow struct {
	BranchDelta
	// Class is the baseline-run predictability class (biased /
	// regime-switching / random) — the binary before conversion, so the
	// join answers whether the transform targeted branches no predictor
	// was going to save.
	Class          string
	MeasuredBias   float64
	TransitionRate float64
	Entropy        float64
	Execs          int64
	MispredictRate float64
}

// JoinRows joins the attribution deltas with the baseline study's
// per-branch digests, preserving the deltas' most-recovered-first order.
func (d *BpredDiff) JoinRows() []BpredJoinRow {
	var out []BpredJoinRow
	for _, bd := range d.Attr.BranchDeltas() {
		row := BpredJoinRow{BranchDelta: bd, Class: "unseen"}
		if dg := d.Base.Class(bd.ID); dg != nil {
			row.Class = dg.Class
			row.MeasuredBias = dg.Bias
			row.TransitionRate = dg.TransitionRate
			row.Entropy = dg.Entropy
			row.Execs = dg.Execs
			row.MispredictRate = dg.MispredictRate()
		}
		out = append(out, row)
	}
	return out
}

// WriteBpredStudy renders one run's study as terminal text: the headline
// rates, the provider mix, confidence, table occupancy and aliasing, the
// class totals, and the top mispredicting branches with their measured
// character.
func WriteBpredStudy(w io.Writer, label string, st *bpred.StudyReport, topN int) {
	if topN <= 0 {
		topN = 10
	}
	fmt.Fprintf(w, "%s: %s", label, st.Predictor)
	if st.SizeBits > 0 {
		fmt.Fprintf(w, " (%d bits)", st.SizeBits)
	}
	mispPct := 0.0
	if st.Resolves > 0 {
		mispPct = 100 * float64(st.Mispredicts) / float64(st.Resolves)
	}
	fmt.Fprintf(w, ": %d resolves, %d updates, %d mispredicts (%.2f%%)\n",
		st.Resolves, st.Updates, st.Mispredicts, mispPct)
	if st.AllocTried > 0 {
		fmt.Fprintf(w, "  allocations: %d placed / %d tried (%.1f%% hit)\n",
			st.AllocPlaced, st.AllocTried, 100*float64(st.AllocPlaced)/float64(st.AllocTried))
	}

	if len(st.Providers) > 0 {
		fmt.Fprintf(w, "  provider mix:\n")
		fmt.Fprintf(w, "    %-10s %12s %8s %8s %10s\n", "table", "use", "use%", "acc%", "weak")
		for _, p := range st.Providers {
			usePct, accPct := 0.0, 0.0
			if st.Updates > 0 {
				usePct = 100 * float64(p.Use) / float64(st.Updates)
			}
			if p.Use > 0 {
				accPct = 100 * float64(p.Correct) / float64(p.Use)
			}
			fmt.Fprintf(w, "    %-10s %12d %7.1f%% %7.1f%% %10d\n", p.Table, p.Use, usePct, accPct, p.Weak)
		}
	}

	c := st.Confidence
	if total := c.ConfidentCorrect + c.ConfidentWrong + c.WeakCorrect + c.WeakWrong; total > 0 {
		fmt.Fprintf(w, "  confidence: confident %d right / %d wrong, weak %d right / %d wrong\n",
			c.ConfidentCorrect, c.ConfidentWrong, c.WeakCorrect, c.WeakWrong)
	}

	if len(st.Survey) > 0 {
		alias := map[string]bpred.AliasReport{}
		for _, a := range st.Aliasing {
			alias[a.Name] = a
		}
		fmt.Fprintf(w, "  tables:\n")
		fmt.Fprintf(w, "    %-10s %8s %9s %8s %12s %12s\n", "table", "entries", "occupied", "weak", "updates", "conflicts")
		for _, s := range st.Survey {
			a := alias[s.Name]
			fmt.Fprintf(w, "    %-10s %8d %9d %8d %12d %12d\n",
				s.Name, s.Entries, s.Occupied, s.Weak, a.Updates, a.Conflicts)
		}
	}

	if len(st.Classes) > 0 {
		names := make([]string, 0, len(st.Classes))
		for name := range st.Classes {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "  predictability classes:\n")
		fmt.Fprintf(w, "    %-10s %9s %12s %12s %8s\n", "class", "branches", "execs", "mispredicts", "misp%")
		for _, name := range names {
			ct := st.Classes[name]
			pct := 0.0
			if ct.Execs > 0 {
				pct = 100 * float64(ct.Mispredicts) / float64(ct.Execs)
			}
			fmt.Fprintf(w, "    %-10s %9d %12d %12d %7.2f%%\n", name, ct.Branches, ct.Execs, ct.Mispredicts, pct)
		}
	}

	top := make([]bpred.BranchDigest, len(st.Branches))
	copy(top, st.Branches)
	sort.Slice(top, func(i, j int) bool {
		if top[i].Mispredicts != top[j].Mispredicts {
			return top[i].Mispredicts > top[j].Mispredicts
		}
		return top[i].ID < top[j].ID
	})
	if len(top) > topN {
		top = top[:topN]
	}
	if len(top) > 0 {
		fmt.Fprintf(w, "  top %d mispredicting branches:\n", len(top))
		fmt.Fprintf(w, "    %-6s %-8s %12s %8s %6s %6s %8s\n",
			"branch", "class", "execs", "misp%", "bias", "trans", "entropy")
		for _, d := range top {
			fmt.Fprintf(w, "    %-6d %-8s %12d %7.2f%% %6.2f %6.2f %8.2f\n",
				d.ID, d.Class, d.Execs, 100*d.MispredictRate(), d.Bias, d.TransitionRate, d.Entropy)
		}
	}
}

// WriteBpredReport renders the differential as terminal text: both
// binaries' studies plus the classification × conversion join — for each
// branch, what the baseline predictor measured about it and what the
// conversion recovered.
func WriteBpredReport(w io.Writer, d *BpredDiff, topN int) {
	if topN <= 0 {
		topN = 10
	}
	in := ""
	if d.Input.Iters > 0 {
		in = fmt.Sprintf(" seed=%d iters=%d", d.Input.Seed, d.Input.Iters)
	}
	fmt.Fprintf(w, "%s w%d%s: %d -> %d cycles (%+.2f%% speedup)\n",
		d.Benchmark, d.Width, in, d.Attr.Base.Cycles, d.Attr.Exp.Cycles, d.Attr.SpeedupPct())
	WriteBpredStudy(w, "baseline", d.Base, topN)
	WriteBpredStudy(w, "vanguard", d.Exp, topN)

	rows := d.JoinRows()
	if len(rows) > topN {
		rows = rows[:topN]
	}
	fmt.Fprintf(w, "classification x conversion (top %d by recovered slots):\n", len(rows))
	fmt.Fprintf(w, "  %-6s %-8s %-4s %6s %6s %8s %8s %12s %12s %12s\n",
		"branch", "class", "conv", "bias", "trans", "entropy", "misp%", "baseline", "vanguard", "delta")
	for _, r := range rows {
		conv := "-"
		if r.Converted {
			conv = "yes"
		}
		fmt.Fprintf(w, "  %-6d %-8s %-4s %6.2f %6.2f %8.2f %7.2f%% %12d %12d %+12d\n",
			r.ID, r.Class, conv, r.MeasuredBias, r.TransitionRate, r.Entropy,
			100*r.MispredictRate, r.BaseSlots, r.ExpSlots, r.Delta)
	}
}

// bpredJoinCSVHeader is the stable column order of WriteBpredJoinCSV.
var bpredJoinCSVHeader = []string{
	"benchmark", "width", "branch", "class", "converted",
	"bias", "transition_rate", "entropy", "execs", "mispredict_rate",
	"base_slots", "exp_slots", "delta",
}

// WriteBpredJoinCSV exports the classification × conversion join as CSV,
// one row per static branch, most-recovered first. Returns the data-row
// count.
func WriteBpredJoinCSV(w io.Writer, d *BpredDiff) (int, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(bpredJoinCSVHeader); err != nil {
		return 0, err
	}
	rows := 0
	for _, r := range d.JoinRows() {
		conv := "0"
		if r.Converted {
			conv = "1"
		}
		rec := []string{
			d.Benchmark, strconv.Itoa(d.Width), strconv.Itoa(r.ID), r.Class, conv,
			strconv.FormatFloat(r.MeasuredBias, 'f', 4, 64),
			strconv.FormatFloat(r.TransitionRate, 'f', 4, 64),
			strconv.FormatFloat(r.Entropy, 'f', 4, 64),
			strconv.FormatInt(r.Execs, 10),
			strconv.FormatFloat(r.MispredictRate, 'f', 4, 64),
			strconv.FormatInt(r.BaseSlots, 10),
			strconv.FormatInt(r.ExpSlots, 10),
			strconv.FormatInt(r.Delta, 10),
		}
		if err := cw.Write(rec); err != nil {
			return rows, err
		}
		rows++
	}
	cw.Flush()
	return rows, cw.Error()
}

// bpredCSVHeader is the stable column order of WriteBpredCSV and
// WriteBpredStudyCSV: one row per (benchmark, input, width, binary,
// branch) digest.
var bpredCSVHeader = []string{
	"benchmark", "seed", "iters", "width", "binary", "predictor",
	"branch", "class", "execs", "taken", "mispredicts",
	"bias", "transition_rate", "entropy", "mispredict_rate",
}

// bpredStudyRows appends one study's digests as CSV records.
func bpredStudyRows(cw *csv.Writer, bench string, in workload.Input, width int, binary string, st *bpred.StudyReport) (int, error) {
	rows := 0
	for i := range st.Branches {
		d := &st.Branches[i]
		rec := []string{
			bench, strconv.FormatInt(in.Seed, 10), strconv.FormatInt(in.Iters, 10),
			strconv.Itoa(width), binary, st.Predictor,
			strconv.Itoa(d.ID), d.Class,
			strconv.FormatInt(d.Execs, 10),
			strconv.FormatInt(d.Taken, 10),
			strconv.FormatInt(d.Mispredicts, 10),
			strconv.FormatFloat(d.Bias, 'f', 4, 64),
			strconv.FormatFloat(d.TransitionRate, 'f', 4, 64),
			strconv.FormatFloat(d.Entropy, 'f', 4, 64),
			strconv.FormatFloat(d.MispredictRate(), 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return rows, err
		}
		rows++
	}
	return rows, nil
}

// WriteBpredCSV exports every probed run of a result set as long-form CSV
// (one row per benchmark × input × width × binary × classified branch) —
// the spec/ablate/figures bulk surface. Runs without a study (probe off)
// are skipped. Returns the data-row count.
func WriteBpredCSV(w io.Writer, results []*BenchResult) (int, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(bpredCSVHeader); err != nil {
		return 0, err
	}
	rows := 0
	for _, res := range results {
		for _, ir := range res.Inputs {
			for _, wr := range ir.Runs {
				for _, bin := range []struct {
					name string
					st   *bpred.StudyReport
				}{{"base", wr.Base.Bpred}, {"exp", wr.Exp.Bpred}} {
					if bin.st == nil {
						continue
					}
					n, err := bpredStudyRows(cw, res.Config.Name, ir.Input, wr.Width, bin.name, bin.st)
					rows += n
					if err != nil {
						return rows, err
					}
				}
			}
		}
	}
	cw.Flush()
	return rows, cw.Error()
}

// WriteBpredStudyCSV exports one run's study in the same long form — the
// vgrun single-binary surface. Returns the data-row count.
func WriteBpredStudyCSV(w io.Writer, bench string, in workload.Input, width int, binary string, st *bpred.StudyReport) (int, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(bpredCSVHeader); err != nil {
		return 0, err
	}
	rows, err := bpredStudyRows(cw, bench, in, width, binary, st)
	if err != nil {
		return rows, err
	}
	cw.Flush()
	return rows, cw.Error()
}
