package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vanguard/internal/core"
	"vanguard/internal/engine"
	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/mem"
	"vanguard/internal/pipeline"
	"vanguard/internal/pipeview"
	"vanguard/internal/profile"
	"vanguard/internal/trace"
	"vanguard/internal/workload"
)

// harnessVersion tags run-cache keys with the harness-level simulation
// recipe (BuildBinaries pipeline, scheduling model, verification
// discipline). Bump it when a change alters simulated results without
// touching the engine package. v2: simKey gained the Attr field, so
// attributed runs (whose Stats carry an attribution report) never alias
// v1 entries cached without one. v3: simKey gained the Pipeview field,
// so pipeviewed runs (whose Stats carry a lifetime-capture report) never
// alias v2 entries cached without one. v4: the simulator core grew the
// lane-parallel stepping path — laned and scalar runs are proven
// byte-identical (the lanes differential), but entries cached before the
// lane core existed must never alias entries computed through it, so the
// whole namespace moves. v5: simulations dispatch through predecoded
// kernels by default and simKey gained the Dispatch field — kernels and
// switch are proven byte-identical (the kernel-gate differential), but
// pre-kernel entries must never alias post-kernel ones and the two modes
// must never alias each other. v6: simKeyMaterial gained the Probe field,
// so probed runs (whose Stats carry a predictor-observatory study) never
// alias v5 entries cached without one.
const harnessVersion = "harness/v6"

// benchJob is one (benchmark, options) experiment. The engine expands it
// into a build unit (profile, transform, schedule — shared products) plus
// one simulation unit per (input, width, binary).
type benchJob struct {
	c    workload.Config
	o    Options
	arts *jobArts
}

// jobArts holds the per-job shared build products. They are constructed
// at most once (sync.Once) by whichever unit needs them first; every
// product is read-only after construction, so simulation units on other
// workers may consume them concurrently. Each simulation still gets its
// own pipeline.Machine, memory clone, and patched image copy — the "one
// machine per goroutine" contract DESIGN.md documents.
type jobArts struct {
	once sync.Once
	err  error

	baseIm, expIm         *ir.Image
	prof                  *profile.Profile
	rep                   *core.Report
	staticBase, staticExp int

	inputs []*inputArts // parallel to o.RefInputs
}

// inputArts holds the per-(job, input) shared products: the initialized
// REF memory image (cloned per simulation) and, under Verify, the golden
// architectural memory every timing run is checked against.
type inputArts struct {
	once   sync.Once
	err    error
	refMem *mem.Memory
	gold   *mem.Memory
}

func newBenchJob(c workload.Config, o Options) *benchJob {
	return &benchJob{c: c, o: o, arts: &jobArts{inputs: func() []*inputArts {
		ia := make([]*inputArts, len(o.RefInputs))
		for i := range ia {
			ia[i] = &inputArts{}
		}
		return ia
	}()}}
}

// artifacts builds (once) and returns the job's shared binaries.
func (j *benchJob) artifacts() (*jobArts, error) {
	a := j.arts
	a.once.Do(func() {
		base, exp, prof, rep, err := BuildBinaries(j.c, j.o)
		if err != nil {
			a.err = err
			return
		}
		a.baseIm, a.expIm = ir.MustLinearize(base), ir.MustLinearize(exp)
		a.prof, a.rep = prof, rep
		a.staticBase, a.staticExp = base.NumInstrs(), exp.NumInstrs()
	})
	return a, a.err
}

// input builds (once) and returns the shared per-input products.
func (j *benchJob) input(i int) (*inputArts, error) {
	ia := j.arts.inputs[i]
	ia.once.Do(func() {
		in := j.o.RefInputs[i]
		_, refMem := j.c.Generate(in)
		ia.refMem = refMem
		if j.o.Verify {
			goldProg, goldMem := j.c.Generate(in)
			if _, _, err := interp.Run(ir.MustLinearize(goldProg), goldMem, interp.Options{Dispatch: j.o.Dispatch}); err != nil {
				ia.err = fmt.Errorf("%s: golden run: %w", j.c.Name, err)
				return
			}
			ia.gold = goldMem
		}
	})
	return ia, ia.err
}

// simKeyMaterial is everything that determines one simulation unit's
// Stats — the workload, the TRAIN input the binaries were built from, the
// transform recipe, the machine overrides, and every result-bearing
// observability switch. The run-cache key audit test
// (TestRunCacheKeyCoversOptions) reconciles this struct against
// harness.Options and pipeline.Config field by field, so a new
// result-affecting option that is not threaded through here fails a test
// instead of silently aliasing cache entries.
type simKeyMaterial struct {
	Config       workload.Config
	Train        workload.Input
	Input        workload.Input
	Width        int
	Binary       string
	Predictor    string
	Core         core.Options
	Spec         core.SpeculateOptions
	DBBEntries   int
	ICacheBytes  int
	SampleWindow int64
	Attr         bool
	Probe        bool
	Pipeview     bool
	Dispatch     string
}

// simKey derives the content key of one simulation unit. An anonymous
// predictor (NewPredictor set without PredictorName) makes the unit
// uncacheable.
func (j *benchJob) simKey(in workload.Input, width int, binary string) string {
	if j.o.NewPredictor != nil && j.o.PredictorName == "" {
		return ""
	}
	pred := j.o.PredictorName
	if pred == "" {
		pred = "default"
	}
	return engine.Key(harnessVersion, simKeyMaterial{
		Config: j.c, Train: j.o.TrainInput, Input: in,
		Width: width, Binary: binary, Predictor: pred,
		Core: j.o.Core, Spec: j.o.Spec,
		DBBEntries: j.o.DBBEntries, ICacheBytes: j.o.ICacheBytes,
		SampleWindow: j.o.SampleWindow, Attr: j.o.Attr, Probe: j.o.Probe,
		Pipeview: j.o.PipeviewBench == j.c.Name, Dispatch: j.o.Dispatch.String(),
	})
}

// simImage resolves the patched program image and machine config of one
// (input, width, binary) simulation from the shared artifacts — the
// read-only half of a run, shared verbatim by every lane of a batch.
func (j *benchJob) simImage(a *jobArts, inputIdx, width int, binary string) (*ir.Image, pipeline.Config) {
	im := a.baseIm
	if binary == "exp" {
		im = a.expIm
	}
	cfg := j.o.machineConfig(width)
	if j.o.PipeviewBench == j.c.Name {
		pv := pipeview.DefaultConfig()
		cfg.Pipeview = &pv
	}
	return j.c.PatchIters(im, j.o.RefInputs[inputIdx].Iters), cfg
}

// checkRun applies simulate's post-run contract to one machine: wrap the
// timing error with the unit's identity, then verify architectural memory
// against the golden model.
func (j *benchJob) checkRun(mach *pipeline.Machine, gold *mem.Memory, width int, binary string, err error) error {
	if err != nil {
		return fmt.Errorf("%s/%s w%d: %w", j.c.Name, binary, width, err)
	}
	if gold != nil && !mach.Memory().Equal(gold) {
		return fmt.Errorf("%s/%s w%d: architectural state diverged from golden model", j.c.Name, binary, width)
	}
	return nil
}

// simulate executes one (input, width, binary) timing run against the
// shared artifacts and verifies it against the golden model.
func (j *benchJob) simulate(inputIdx, width int, binary string) (*pipeline.Stats, error) {
	a, err := j.artifacts()
	if err != nil {
		return nil, err
	}
	ia, err := j.input(inputIdx)
	if err != nil {
		return nil, err
	}
	im, cfg := j.simImage(a, inputIdx, width, binary)
	mach := pipeline.New(im, ia.refMem.Clone(), cfg)
	st, err := mach.Run()
	if err := j.checkRun(mach, ia.gold, width, binary, err); err != nil {
		return nil, err
	}
	return st, nil
}

// simRef locates one simulation unit for the batch scheduler: the job it
// belongs to plus the (input, width, binary) coordinates its scalar
// closure would use. runBenchJobs builds one per simulation unit, in the
// same order the units are enumerated.
type simRef struct {
	j        *benchJob
	inputIdx int
	width    int
	binary   string
}

// simulateBatch runs a group of same-BatchKey simulations as one
// pipeline.LaneGroup. All refs share (job, width, binary, iters) — the
// batch key pins them — so the patched image and machine config are
// resolved once; each lane gets its own REF memory clone and its own
// golden check. Per-lane results and errors land in the slot of the ref
// that produced them, so a failing lane does not poison its siblings.
func simulateBatch(refs []simRef) ([]*pipeline.Stats, []error) {
	j := refs[0].j
	stats := make([]*pipeline.Stats, len(refs))
	errs := make([]error, len(refs))
	fill := func(err error) ([]*pipeline.Stats, []error) {
		for i := range errs {
			errs[i] = err
		}
		return stats, errs
	}
	a, err := j.artifacts()
	if err != nil {
		return fill(err)
	}
	im, cfg := j.simImage(a, refs[0].inputIdx, refs[0].width, refs[0].binary)

	// Resolve each lane's input artifacts; a lane whose input fails drops
	// out of the group before the machines are built.
	ok := make([]int, 0, len(refs))
	mems := make([]*mem.Memory, 0, len(refs))
	golds := make([]*mem.Memory, 0, len(refs))
	for i, r := range refs {
		ia, err := j.input(r.inputIdx)
		if err != nil {
			errs[i] = err
			continue
		}
		ok = append(ok, i)
		mems = append(mems, ia.refMem.Clone())
		golds = append(golds, ia.gold)
	}
	if len(ok) == 0 {
		return stats, errs
	}

	g := pipeline.NewLaneGroup(im, mems, cfg)
	laneStats, laneErrs := g.Run()
	for li, i := range ok {
		r := refs[i]
		if err := j.checkRun(g.Lane(li), golds[li], r.width, r.binary, laneErrs[li]); err != nil {
			errs[i] = err
			continue
		}
		stats[i] = laneStats[li]
	}
	return stats, errs
}

// units enumerates the job's engine units in deterministic order: the
// build unit first, then (input x width x {base, exp}) simulations. The
// build unit is uncacheable on purpose — the aggregated BenchResult needs
// the profile and transform report even when every simulation below is a
// cache hit. Each simulation also gets a simRef (parallel slice, same
// order) and a BatchKey pinning everything the lanes of one group must
// share — job, width, binary, and iteration count (PatchIters bakes
// Iters into the image) — so only simulations over the exact same
// patched image and config ever coalesce; seeds may differ per lane
// because they live in the per-lane memory image.
func (j *benchJob) units(jobIdx int) ([]engine.Unit[*pipeline.Stats], []simRef) {
	us := []engine.Unit[*pipeline.Stats]{{
		Label: fmt.Sprintf("%d/%s/build", jobIdx, j.c.Name),
		Run: func(context.Context) (*pipeline.Stats, error) {
			_, err := j.artifacts()
			return nil, err
		},
	}}
	refs := []simRef{{}} // build unit placeholder; never batched
	for ii, in := range j.o.RefInputs {
		for _, w := range j.o.Widths {
			for _, binary := range []string{"base", "exp"} {
				us = append(us, engine.Unit[*pipeline.Stats]{
					Label: fmt.Sprintf("%d/%s/seed=%d,iters=%d/w%d/%s",
						jobIdx, j.c.Name, in.Seed, in.Iters, w, binary),
					Key:      j.simKey(in, w, binary),
					BatchKey: fmt.Sprintf("%d/w%d/%s/iters=%d", jobIdx, w, binary, in.Iters),
					Run: func(context.Context) (*pipeline.Stats, error) {
						return j.simulate(ii, w, binary)
					},
				})
				refs = append(refs, simRef{j: j, inputIdx: ii, width: w, binary: binary})
			}
		}
	}
	return us, refs
}

// runBenchJobs executes a (possibly heterogeneous) set of benchmark jobs
// as one engine job set and aggregates per-job BenchResults in
// enumeration order. The execution policy (Jobs, Cache, EngineStats)
// comes from o; each job's own Options govern what it simulates.
func runBenchJobs(jobs []*benchJob, o Options) ([]*BenchResult, error) {
	var units []engine.Unit[*pipeline.Stats]
	var refs []simRef
	first := make([]int, len(jobs)) // index of each job's first simulation unit
	for ji, j := range jobs {
		us, rs := j.units(ji)
		first[ji] = len(units) + 1 // skip the build unit
		units = append(units, us...)
		refs = append(refs, rs...)
	}
	batchRun := func(_ context.Context, idxs []int) ([]*pipeline.Stats, []error) {
		group := make([]simRef, len(idxs))
		for k, i := range idxs {
			group[k] = refs[i]
		}
		return simulateBatch(group)
	}
	results, est, err := engine.RunBatched(context.Background(),
		engine.Config{Jobs: o.Jobs, Cache: o.Cache, Monitor: o.Monitor, Lanes: o.laneCount(),
			Recorder: o.Recorder,
			Labels:   []string{"dispatch", o.Dispatch.String(), "lanes", fmt.Sprint(o.laneCount())}},
		units, batchRun)
	if o.EngineStats != nil {
		o.EngineStats.add(est)
	}
	if err != nil {
		return nil, err
	}
	if o.Monitor != nil {
		// Feed per-cause slot totals to /metrics here, after the engine
		// returns, so cache hits count the same as fresh simulations.
		for _, st := range results {
			if st != nil && st.Attr != nil {
				o.Monitor.ObserveAttr(st.Attr.Slots)
			}
			if st != nil && st.Bpred != nil {
				o.Monitor.ObserveBpred(st.Bpred)
			}
		}
	}

	out := make([]*BenchResult, len(jobs))
	for ji, j := range jobs {
		a, err := j.artifacts()
		if err != nil {
			return nil, err
		}
		res := &BenchResult{
			Config: j.c, Profile: a.prof, Report: a.rep,
			StaticBase: a.staticBase, StaticExp: a.staticExp,
		}
		k := first[ji]
		for _, in := range j.o.RefInputs {
			ir2 := InputResult{Input: in}
			for _, w := range j.o.Widths {
				ir2.Runs = append(ir2.Runs, WidthRun{Width: w, Base: results[k], Exp: results[k+1]})
				k += 2
			}
			res.Inputs = append(res.Inputs, ir2)
		}
		out[ji] = res
	}
	return out, nil
}

// laneCount resolves Options.Lanes to an effective group width: 0 means
// automatic (pipeline.DefaultLanes); anything else passes through, with
// 1 (or a negative value) selecting the scalar path.
func (o *Options) laneCount() int {
	if o.Lanes == 0 {
		return pipeline.DefaultLanes
	}
	return o.Lanes
}

// EngineStats accumulates experiment-engine telemetry across every
// harness call that shares it (via Options.EngineStats). Safe for
// concurrent use; the zero value is ready.
type EngineStats struct {
	mu    sync.Mutex
	jobs  int
	wall  time.Duration
	units []trace.EngineUnit
	hits  int
	miss  int
}

func (s *EngineStats) add(est engine.Stats) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if est.Jobs > s.jobs {
		s.jobs = est.Jobs
	}
	s.wall += est.Wall
	s.hits += est.CacheHits
	s.miss += est.CacheMisses
	for _, u := range est.Units {
		s.units = append(s.units, trace.EngineUnit{
			Label:    u.Label,
			WallMS:   float64(u.Wall) / float64(time.Millisecond),
			CacheHit: u.CacheHit,
		})
	}
}

// Report renders the accumulated telemetry in the shared schema.
func (s *EngineStats) Report() *trace.EngineReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &trace.EngineReport{
		Jobs:        s.jobs,
		Units:       len(s.units),
		CacheHits:   s.hits,
		CacheMisses: s.miss,
		WallMS:      float64(s.wall) / float64(time.Millisecond),
		UnitWall:    append([]trace.EngineUnit(nil), s.units...),
	}
}

// Summary returns a one-line human summary for CLI logs.
func (s *EngineStats) Summary() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("%d units on %d workers in %.1fs (run cache: %d hits, %d misses)",
		len(s.units), s.jobs, s.wall.Seconds(), s.hits, s.miss)
}

// SuiteCache memoizes RunSuite results per suite name for one Options
// value — the in-process reuse layer the CLIs share (one `spec -all`
// renders several tables and figures from the same suites), while the
// on-disk run cache handles reuse across invocations.
type SuiteCache struct {
	o      Options
	mu     sync.Mutex
	suites map[string][]*BenchResult
}

// NewSuiteCache returns a suite memo over the given options.
func NewSuiteCache(o Options) *SuiteCache {
	return &SuiteCache{o: o, suites: map[string][]*BenchResult{}}
}

// Options returns the options the cache runs suites under.
func (sc *SuiteCache) Options() Options { return sc.o }

// Suite runs (or recalls) a whole suite.
func (sc *SuiteCache) Suite(name string) ([]*BenchResult, error) {
	sc.mu.Lock()
	rs, ok := sc.suites[name]
	sc.mu.Unlock()
	if ok {
		return rs, nil
	}
	rs, err := RunSuite(name, sc.o)
	if err != nil {
		return nil, err
	}
	sc.mu.Lock()
	sc.suites[name] = rs
	sc.mu.Unlock()
	return rs, nil
}
