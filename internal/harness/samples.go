package harness

import (
	"encoding/csv"
	"io"
	"strconv"

	"vanguard/internal/trace"
)

// sampleCSVHeader is the stable column order of WriteSamplesCSV. The
// per-window columns mirror the telemetry schema's samples section keys.
var sampleCSVHeader = []string{
	"benchmark", "label", "input", "width",
	"start", "end", "committed", "issued",
	"br_mispredicts", "res_mispredicts", "ret_mispredicts",
	"resolves", "predicts", "flushes",
	"stall_empty", "stall_operand", "stall_branch", "stall_resolve", "stall_fu",
	"l1i_misses", "l1d_misses", "l2_misses", "dbb_high_water", "ipc",
}

// WriteSamplesCSV flattens every sampled run of a telemetry report into
// CSV, one row per window — the export path spreadsheet/pandas analysis
// of phase behaviour consumes. Runs without samples contribute nothing;
// it returns the number of data rows written.
func WriteSamplesCSV(w io.Writer, rep *trace.Report) (int, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(sampleCSVHeader); err != nil {
		return 0, err
	}
	rows := 0
	d := strconv.FormatInt // shorthand: every numeric column is base-10
	for _, b := range rep.Benchmarks {
		for _, run := range b.Runs {
			if run.Samples == nil {
				continue
			}
			for i := range run.Samples.Windows {
				win := &run.Samples.Windows[i]
				rec := []string{
					b.Name, run.Label, run.Input, strconv.Itoa(run.Width),
					d(win.Start, 10), d(win.End, 10), d(win.Committed, 10), d(win.Issued, 10),
					d(win.BrMispredicts, 10), d(win.ResMispredicts, 10), d(win.RetMispredicts, 10),
					d(win.Resolves, 10), d(win.Predicts, 10), d(win.Flushes, 10),
					d(win.StallEmpty, 10), d(win.StallOperand, 10), d(win.StallBranch, 10),
					d(win.StallResolve, 10), d(win.StallFU, 10),
					d(win.L1IMisses, 10), d(win.L1DMisses, 10), d(win.L2Misses, 10),
					strconv.Itoa(win.DBBHighWater),
					strconv.FormatFloat(win.IPC(), 'f', 6, 64),
				}
				if err := cw.Write(rec); err != nil {
					return rows, err
				}
				rows++
			}
		}
	}
	cw.Flush()
	return rows, cw.Error()
}
