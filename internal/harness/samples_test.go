package harness

import (
	"encoding/csv"
	"strings"
	"testing"

	"vanguard/internal/sample"
	"vanguard/internal/trace"
)

func TestWriteSamplesCSV(t *testing.T) {
	rep := &trace.Report{
		Schema: trace.Schema,
		Benchmarks: []*trace.BenchReport{
			{
				Name: "dot",
				Runs: []*trace.RunReport{
					{Label: "base", Input: "seed=1,iters=10", Width: 4,
						Samples: &sample.Series{
							WindowCycles: 100,
							Windows: []sample.Window{
								{Start: 0, End: 100, Committed: 250, Issued: 260, L1DMisses: 3, DBBHighWater: 5},
								{Start: 100, End: 180, Committed: 80, Issued: 84},
							},
						}},
					{Label: "exp", Input: "seed=1,iters=10", Width: 4}, // no samples: skipped
				},
			},
		},
	}
	var sb strings.Builder
	rows, err := WriteSamplesCSV(&sb, rep)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 2 {
		t.Fatalf("rows = %d, want 2", rows)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(recs) != 3 { // header + 2 windows
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if len(rec) != len(sampleCSVHeader) {
			t.Errorf("record %d has %d fields, want %d", i, len(rec), len(sampleCSVHeader))
		}
	}
	// The comma inside the input label must survive quoting.
	if got := recs[1][2]; got != "seed=1,iters=10" {
		t.Errorf("input column = %q, want the comma-bearing label intact", got)
	}
	if got := recs[1][len(recs[1])-1]; got != "2.500000" {
		t.Errorf("ipc column = %q, want 2.500000", got)
	}

	// A report with no sampled runs writes only the header.
	sb.Reset()
	rows, err = WriteSamplesCSV(&sb, &trace.Report{Schema: trace.Schema})
	if err != nil || rows != 0 {
		t.Fatalf("empty report: rows=%d err=%v, want 0 rows", rows, err)
	}
}
