package harness

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"vanguard/internal/sample"
	"vanguard/internal/trace"
	"vanguard/internal/workload"
)

func TestWriteSamplesCSV(t *testing.T) {
	rep := &trace.Report{
		Schema: trace.Schema,
		Benchmarks: []*trace.BenchReport{
			{
				Name: "dot",
				Runs: []*trace.RunReport{
					{Label: "base", Input: "seed=1,iters=10", Width: 4,
						Samples: &sample.Series{
							WindowCycles: 100,
							Windows: []sample.Window{
								{Start: 0, End: 100, Committed: 250, Issued: 260, L1DMisses: 3, DBBHighWater: 5},
								{Start: 100, End: 180, Committed: 80, Issued: 84},
							},
						}},
					{Label: "exp", Input: "seed=1,iters=10", Width: 4}, // no samples: skipped
				},
			},
		},
	}
	var sb strings.Builder
	rows, err := WriteSamplesCSV(&sb, rep)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 2 {
		t.Fatalf("rows = %d, want 2", rows)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(recs) != 3 { // header + 2 windows
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if len(rec) != len(sampleCSVHeader) {
			t.Errorf("record %d has %d fields, want %d", i, len(rec), len(sampleCSVHeader))
		}
	}
	// The comma inside the input label must survive quoting.
	if got := recs[1][2]; got != "seed=1,iters=10" {
		t.Errorf("input column = %q, want the comma-bearing label intact", got)
	}
	if got := recs[1][len(recs[1])-1]; got != "2.500000" {
		t.Errorf("ipc column = %q, want 2.500000", got)
	}

	// A report with no sampled runs writes only the header.
	sb.Reset()
	rows, err = WriteSamplesCSV(&sb, &trace.Report{Schema: trace.Schema})
	if err != nil || rows != 0 {
		t.Fatalf("empty report: rows=%d err=%v, want 0 rows", rows, err)
	}
}

// TestSamplesCSVRoundTrip is the golden round trip behind `figures
// -samples`: simulate a real benchmark with sampling on, serialize the
// telemetry report, read it back, export the samples CSV, parse that, and
// check the window columns sum to each run's aggregate counters. Sampling
// that dropped or double-counted a window would break the sums.
func TestSamplesCSVRoundTrip(t *testing.T) {
	c, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("missing benchmark")
	}
	o := fastOptions()
	o.RefInputs = o.RefInputs[:1]
	o.SampleWindow = 500
	r, err := RunBenchmark(c, o)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := JSONReport("test", []*BenchResult{r}).Write(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := trace.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	rows, err := WriteSamplesCSV(&sb, rep)
	if err != nil {
		t.Fatal(err)
	}
	if rows == 0 {
		t.Fatal("sampled report exported no window rows")
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("export is not valid CSV: %v", err)
	}
	if len(recs) != rows+1 {
		t.Fatalf("got %d records, want header + %d rows", len(recs), rows)
	}
	col := map[string]int{}
	for i, name := range recs[0] {
		col[name] = i
	}
	for _, name := range sampleCSVHeader {
		if _, ok := col[name]; !ok {
			t.Fatalf("exported header lacks %q", name)
		}
	}

	// Re-aggregate the parsed rows per run and compare against the run's
	// own counters: the windows must tile the whole simulation.
	type runKey struct {
		bench, label, input string
		width               int
	}
	sums := map[runKey]map[string]int64{}
	for _, rec := range recs[1:] {
		w, err := strconv.Atoi(rec[col["width"]])
		if err != nil {
			t.Fatal(err)
		}
		k := runKey{rec[col["benchmark"]], rec[col["label"]], rec[col["input"]], w}
		if sums[k] == nil {
			sums[k] = map[string]int64{}
		}
		for _, name := range []string{"committed", "issued", "br_mispredicts"} {
			v, err := strconv.ParseInt(rec[col[name]], 10, 64)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			sums[k][name] += v
		}
	}
	checked := 0
	for _, b := range rep.Benchmarks {
		for _, run := range b.Runs {
			if run.Samples == nil {
				continue
			}
			k := runKey{b.Name, run.Label, run.Input, run.Width}
			s := sums[k]
			if s == nil {
				t.Fatalf("no CSV rows for sampled run %+v", k)
			}
			for _, name := range []string{"committed", "issued", "br_mispredicts"} {
				if s[name] != run.Counters[name] {
					t.Errorf("%+v: window %s sum = %d, aggregate = %d", k, name, s[name], run.Counters[name])
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("report carried no sampled runs")
	}
}
