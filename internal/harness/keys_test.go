package harness

import (
	"reflect"
	"testing"

	"vanguard/internal/pipeline"
	"vanguard/internal/workload"
)

// mustBench resolves a benchmark by name or fails the test.
func mustBench(t *testing.T, name string) workload.Config {
	t.Helper()
	c, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("missing benchmark %s", name)
	}
	return c
}

// TestRunCacheKeyCoversOptions is the run-cache key audit: every field of
// harness.Options and pipeline.Config must be classified — either pure
// execution/observability policy that provably cannot change simulated
// Stats, or result-bearing material threaded into simKeyMaterial. A new
// field in either struct fails here until it is added to exactly one of
// the maps below, so a result-affecting option can never silently alias
// cache entries produced under a different value.
func TestRunCacheKeyCoversOptions(t *testing.T) {
	keyType := reflect.TypeOf(simKeyMaterial{})
	keyFields := map[string]bool{}
	for i := 0; i < keyType.NumField(); i++ {
		keyFields[keyType.Field(i).Name] = true
	}

	// optionsKey maps each result-bearing Options field to the
	// simKeyMaterial field that carries it. Widths/RefInputs fan out to
	// per-unit Width/Input values; NewPredictor is keyed through
	// PredictorName (anonymous predictors bypass the cache entirely —
	// TestAnonymousPredictorBypassesCache pins that).
	optionsKey := map[string]string{
		"Widths":        "Width",
		"TrainInput":    "Train",
		"RefInputs":     "Input",
		"NewPredictor":  "Predictor",
		"PredictorName": "Predictor",
		"ICacheBytes":   "ICacheBytes",
		"DBBEntries":    "DBBEntries",
		"Core":          "Core",
		"Spec":          "Spec",
		"SampleWindow":  "SampleWindow",
		"Attr":          "Attr",
		"Probe":         "Probe",
		"Dispatch":      "Dispatch",
		"PipeviewBench": "Pipeview",
	}
	// optionsPolicy lists the fields that steer execution or observation
	// but cannot change any simulated result: Verify only cross-checks,
	// Jobs/Cache/EngineStats/Lanes are scheduling policy (the jobs and
	// lanes differentials prove byte-identity), Monitor and Recorder only
	// watch.
	optionsPolicy := map[string]bool{
		"Verify": true, "Jobs": true, "Cache": true, "EngineStats": true,
		"Lanes": true, "Monitor": true, "Recorder": true,
	}
	ot := reflect.TypeOf(Options{})
	for i := 0; i < ot.NumField(); i++ {
		name := ot.Field(i).Name
		keyed, isKeyed := optionsKey[name]
		switch {
		case optionsPolicy[name] && isKeyed:
			t.Errorf("Options.%s is classified as both policy and key material", name)
		case optionsPolicy[name]:
		case !isKeyed:
			t.Errorf("Options.%s is unclassified: thread it into simKeyMaterial (and this test's optionsKey map) if it can change simulated results, or add it to optionsPolicy if it provably cannot", name)
		case !keyFields[keyed]:
			t.Errorf("Options.%s claims key field simKeyMaterial.%s, which does not exist", name, keyed)
		}
	}

	// configKey maps each pipeline.Config field the harness sets to its
	// key material; configFixed lists the fields machineConfig leaves at
	// DefaultConfig (no Options field can reach them, so they are covered
	// by harnessVersion — changing a default is a recipe change and must
	// bump it).
	configKey := map[string]string{
		"Width":        "Width",
		"Hier":         "ICacheBytes",
		"NewPredictor": "Predictor",
		"DBBEntries":   "DBBEntries",
		"SampleWindow": "SampleWindow",
		"Attr":         "Attr",
		"Probe":        "Probe",
		"Dispatch":     "Dispatch",
		"Pipeview":     "Pipeview",
	}
	configFixed := map[string]bool{
		"FrontEndDepth": true, "FetchBufEntries": true,
		"IntUnits": true, "MemUnits": true, "FPUnits": true,
		"BTBLogEntries": true, "RASEntries": true,
		"ExceptionEveryN": true, "DBBInvalidateOnException": true,
		"MaxInstrs": true, "MaxCycles": true,
	}
	ct := reflect.TypeOf(pipeline.Config{})
	for i := 0; i < ct.NumField(); i++ {
		f := ct.Field(i)
		if f.PkgPath != "" {
			continue // unexported: the harness cannot set it
		}
		keyed, isKeyed := configKey[f.Name]
		switch {
		case configFixed[f.Name] && isKeyed:
			t.Errorf("pipeline.Config.%s is classified as both fixed and key material", f.Name)
		case configFixed[f.Name]:
		case !isKeyed:
			t.Errorf("pipeline.Config.%s is unclassified: map it to simKeyMaterial (and this test's configKey map) if machineConfig sets it, or add it to configFixed if the harness always leaves the default", f.Name)
		case !keyFields[keyed]:
			t.Errorf("pipeline.Config.%s claims key field simKeyMaterial.%s, which does not exist", f.Name, keyed)
		}
	}
}

// TestSimKeySeparatesProbe pins the aliasing contract the v6 bump exists
// for: identical simulations with and without the probe must produce
// different run-cache keys, and the key must change across every other
// key-material axis simKeyMaterial names.
func TestSimKeySeparatesProbe(t *testing.T) {
	o := fastOptions()
	j := newBenchJob(mustBench(t, "mcf"), o)
	base := j.simKey(o.RefInputs[0], 4, "base")
	if base == "" {
		t.Fatal("cacheable unit produced no key")
	}

	probed := o
	probed.Probe = true
	jp := newBenchJob(mustBench(t, "mcf"), probed)
	if k := jp.simKey(o.RefInputs[0], 4, "base"); k == base {
		t.Error("probed and plain simulations share a run-cache key")
	}
	if k := j.simKey(o.RefInputs[0], 2, "base"); k == base {
		t.Error("widths share a run-cache key")
	}
	if k := j.simKey(o.RefInputs[0], 4, "exp"); k == base {
		t.Error("binaries share a run-cache key")
	}
}
