// Package harness drives the paper's experiments end to end: generate a
// benchmark, profile it on TRAIN, build the baseline binary (biased-branch
// speculation + block scheduling) and the experimental binary (the same
// plus the Decomposed Branch Transformation), simulate both on the REF
// inputs across machine widths, verify architectural equivalence, and
// aggregate the metrics each table and figure reports.
//
// Execution goes through the experiment engine (internal/engine): each
// driver enumerates its work as independent simulation units, runs them
// on a bounded worker pool, and aggregates deterministically — see
// engine.go in this package.
package harness

import (
	"fmt"

	"vanguard/internal/bpred"
	"vanguard/internal/core"
	"vanguard/internal/engine"
	"vanguard/internal/exec"
	"vanguard/internal/ir"
	"vanguard/internal/metrics"
	"vanguard/internal/pipeline"
	"vanguard/internal/profile"
	"vanguard/internal/sched"
	"vanguard/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	Widths       []int // machine widths to simulate (paper: 2, 4, 8)
	TrainInput   workload.Input
	RefInputs    []workload.Input
	NewPredictor func() bpred.DirPredictor // nil = Table 1 default
	// PredictorName names NewPredictor for the run-cache key. Simulations
	// with an anonymous predictor (NewPredictor set, no name) bypass the
	// cache rather than risk aliasing distinct predictors.
	PredictorName string
	// ICacheBytes overrides the L1-I capacity (Section 6.1's 24KB run).
	ICacheBytes int
	// DBBEntries overrides the Decomposed Branch Buffer depth (ablation;
	// 0 keeps the paper's 16).
	DBBEntries int
	// Verify cross-checks every timing run's memory against the golden
	// functional model (slower; on by default via DefaultOptions).
	Verify bool
	// Transform options.
	Core core.Options
	Spec core.SpeculateOptions

	// Execution policy (see the experiment engine in internal/engine):
	// Jobs bounds the worker pool (<= 0 selects GOMAXPROCS), Cache is the
	// content-keyed on-disk run cache (nil disables cross-invocation
	// reuse), and EngineStats, when non-nil, accumulates scheduling and
	// cache telemetry across every harness call sharing it. None of the
	// three changes simulated results: aggregation is deterministic in
	// enumeration order regardless of scheduling.
	Jobs        int
	Cache       *engine.Cache
	EngineStats *EngineStats
	// Lanes bounds how many same-image simulations coalesce into one
	// lane group (pipeline.LaneGroup): 0 selects pipeline.DefaultLanes,
	// 1 forces the scalar path, N caps groups at N lanes. Like Jobs it is
	// pure execution policy — laned and scalar runs are byte-identical
	// (the lanes differential gate) — so it is not part of the run-cache
	// key.
	Lanes int
	// Monitor, when non-nil, receives live per-unit progress from every
	// engine run this options value drives (the -progress / -listen
	// observability surface).
	Monitor *engine.Monitor
	// Recorder, when non-nil, captures the sweep flight recording — one
	// span per unit lifecycle phase — across every engine run this
	// options value drives (the -sweep-trace observability surface). Like
	// Monitor it is pure observability: it never changes scheduling,
	// results, or run-cache keys.
	Recorder *engine.SweepRecorder

	// SampleWindow enables the pipeline's cycle-window time-series
	// sampler on every simulation (pipeline.Config.SampleWindow). It is
	// part of the run-cache key: sampled and unsampled results never
	// alias.
	SampleWindow int64

	// Attr enables per-cause cycle attribution on every simulation
	// (pipeline.Config.Attr): each run's Stats carries an attr.Report
	// charging every issue slot to one cause. Part of the run-cache key;
	// attributed and plain results never alias.
	Attr bool

	// Dispatch selects the execution engine for every simulation and
	// golden run (pipeline.Config.Dispatch / interp.Options.Dispatch):
	// compiled per-PC kernels (the zero value and the default) or the
	// reference exec.Step switch. The two are byte-identical on stats and
	// reports (make kernel-gate), but Dispatch is still part of the
	// run-cache key so an A/B sweep never serves one mode's entries to
	// the other.
	Dispatch exec.Dispatch

	// PipeviewBench names one benchmark whose simulations run with the
	// pipeline waterfall recorder enabled (pipeview.DefaultConfig): their
	// Stats carry a trace.PipeviewReport of per-instruction lifetimes.
	// Empty disables pipeview everywhere. Part of the run-cache key:
	// pipeviewed and plain results never alias, and capture stays cheap by
	// being scoped to the one benchmark under study.
	PipeviewBench string

	// Probe enables the predictor observatory on every simulation
	// (pipeline.Config.Probe): each run's Stats carries a
	// bpred.StudyReport of table-level predictor usage and the per-branch
	// predictability classification. Part of the run-cache key: probed and
	// plain results never alias.
	Probe bool
}

// DefaultOptions returns the paper's evaluation setup.
func DefaultOptions() Options {
	return Options{
		Widths:     []int{2, 4, 8},
		TrainInput: workload.TrainInput(),
		RefInputs:  workload.RefInputs(),
		Verify:     true,
		Core:       core.DefaultOptions(),
		Spec:       core.DefaultSpeculateOptions(),
	}
}

// FastOptions returns the reduced-input smoke configuration every CLI's
// -fast flag starts from, so the quick-run settings cannot drift between
// tools. Callers narrow further (fewer REF inputs, one width) as their
// experiment requires.
func FastOptions() Options {
	o := DefaultOptions()
	o.TrainInput = workload.Input{Seed: 101, Iters: 800}
	o.RefInputs = []workload.Input{{Seed: 202, Iters: 1000}, {Seed: 303, Iters: 1000}}
	return o
}

// WidthRun is one (input, width) measurement pair.
type WidthRun struct {
	Width     int
	Base, Exp *pipeline.Stats
}

// InputResult aggregates one REF input.
type InputResult struct {
	Input workload.Input
	Runs  []WidthRun
}

// SpeedupPct returns the % speedup at the given width.
func (r *InputResult) SpeedupPct(width int) float64 {
	for _, wr := range r.Runs {
		if wr.Width == width {
			return metrics.SpeedupPct(wr.Base.Cycles, wr.Exp.Cycles)
		}
	}
	return 0
}

// BenchResult is one benchmark's full measurement.
type BenchResult struct {
	Config  workload.Config
	Profile *profile.Profile
	Report  *core.Report
	Inputs  []InputResult
	// Static code sizes in instructions.
	StaticBase, StaticExp int
}

// SpeedupAllRefsPct is the Figures 8/10/12/13 number: geomean across REF
// inputs at one width.
func (b *BenchResult) SpeedupAllRefsPct(width int) float64 {
	var ss []float64
	for i := range b.Inputs {
		ss = append(ss, b.Inputs[i].SpeedupPct(width))
	}
	return metrics.GeomeanSpeedupPct(ss)
}

// SpeedupBestRefPct is the Figures 9/11 number.
func (b *BenchResult) SpeedupBestRefPct(width int) float64 {
	best := 0.0
	for i := range b.Inputs {
		if s := b.Inputs[i].SpeedupPct(width); i == 0 || s > best {
			best = s
		}
	}
	return best
}

// run4 returns the width-4 runs of the first input (Table 2 details).
func (b *BenchResult) run4() *WidthRun {
	for i := range b.Inputs {
		for j := range b.Inputs[i].Runs {
			if b.Inputs[i].Runs[j].Width == 4 {
				return &b.Inputs[i].Runs[j]
			}
		}
	}
	return nil
}

// IssuedIncreasePct is the Figure 14 number at width 4: % increase in
// issued instructions, experimental over baseline, geomean over inputs.
func (b *BenchResult) IssuedIncreasePct() float64 {
	var ss []float64
	for i := range b.Inputs {
		for _, wr := range b.Inputs[i].Runs {
			if wr.Width == 4 && wr.Base.Issued > 0 {
				ss = append(ss, 100*float64(wr.Exp.Issued-wr.Base.Issued)/float64(wr.Base.Issued))
			}
		}
	}
	if len(ss) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range ss {
		sum += s
	}
	return sum / float64(len(ss))
}

// Table2 builds the benchmark's Table 2 row.
func (b *BenchResult) Table2() metrics.Table2Row {
	row := metrics.Table2Row{
		Name:  b.Config.Name,
		SPD:   b.SpeedupAllRefsPct(4),
		PBC:   b.Report.PBC(),
		PHI:   metrics.PHI(b.Report),
		PISCS: 100 * float64(b.StaticExp-b.StaticBase) / float64(b.StaticBase),
	}
	if wr := b.run4(); wr != nil {
		row.MPPKI = wr.Base.MPKI()
		row.ASPCB = metrics.ASPCB(b.Report, wr.Exp)
		row.PDIH = metrics.PDIH(b.Report, b.Profile, wr.Exp.Committed)
	}
	return row
}

// predictor returns a fresh direction predictor per the options.
func (o *Options) predictor() bpred.DirPredictor {
	if o.NewPredictor != nil {
		return o.NewPredictor()
	}
	return bpred.NewDefault()
}

// machineConfig builds the pipeline configuration for a width.
func (o *Options) machineConfig(width int) pipeline.Config {
	cfg := pipeline.DefaultConfig(width)
	cfg.NewPredictor = o.predictor
	cfg.SampleWindow = o.SampleWindow
	cfg.Attr = o.Attr
	cfg.Probe = o.Probe
	cfg.Dispatch = o.Dispatch
	if o.DBBEntries > 0 {
		cfg.DBBEntries = o.DBBEntries
	}
	if o.ICacheBytes > 0 {
		// Shrink capacity at constant set count by dropping ways (the
		// natural way to cut 32KB 4-way to 24KB: 3 ways x 128 sets).
		def := cfg.Hier.L1I
		sets := def.SizeBytes / def.LineBytes / def.Ways
		cfg.Hier.L1I.SizeBytes = o.ICacheBytes
		cfg.Hier.L1I.Ways = o.ICacheBytes / def.LineBytes / sets
	}
	return cfg
}

// BuildBinaries produces the scheduled baseline and experimental programs
// for a benchmark, plus the TRAIN profile and transform report.
func BuildBinaries(c workload.Config, o Options) (base, exp *ir.Program, prof *profile.Profile, rep *core.Report, err error) {
	trainProg, trainMem := c.Generate(o.TrainInput)
	im := ir.MustLinearize(trainProg)
	prof, err = profile.Collect(im, trainMem, o.predictor(), 200_000_000)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("%s: profile: %w", c.Name, err)
	}

	base = trainProg.Clone()
	if _, err = core.SpeculateBiasedBranches(base, prof, o.Spec); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("%s: baseline speculation: %w", c.Name, err)
	}
	exp = base.Clone()
	rep, err = core.Transform(exp, prof, o.Core)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("%s: transform: %w", c.Name, err)
	}
	model := sched.DefaultModel(4)
	sched.Program(base, model)
	sched.Program(exp, model)
	return base, exp, prof, rep, nil
}

// RunBenchmark measures one benchmark under the options.
func RunBenchmark(c workload.Config, o Options) (*BenchResult, error) {
	rs, err := RunBenchmarks([]workload.Config{c}, o)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// RunBenchmarks measures a set of benchmarks as one experiment-engine job
// set: every (benchmark, input, width, binary) simulation becomes an
// independent unit on the worker pool, and results aggregate in
// enumeration order, so the output is identical for any worker count.
func RunBenchmarks(cs []workload.Config, o Options) ([]*BenchResult, error) {
	jobs := make([]*benchJob, len(cs))
	for i, c := range cs {
		jobs[i] = newBenchJob(c, o)
	}
	return runBenchJobs(jobs, o)
}

// RunSuite measures every benchmark of a suite.
func RunSuite(suite string, o Options) ([]*BenchResult, error) {
	return RunBenchmarks(workload.Suite(suite), o)
}
