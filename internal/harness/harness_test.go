package harness

import (
	"strings"
	"testing"

	"vanguard/internal/bpred"
	"vanguard/internal/workload"
)

// fastOptions shrinks the inputs so harness tests stay quick while still
// exercising the full pipeline (profile -> transform -> simulate -> verify).
func fastOptions() Options {
	o := FastOptions()
	o.Widths = []int{4}
	return o
}

func TestRunBenchmarkEndToEnd(t *testing.T) {
	c, ok := workload.ByName("h264ref")
	if !ok {
		t.Fatal("missing benchmark")
	}
	r, err := RunBenchmark(c, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Inputs) != 2 || len(r.Inputs[0].Runs) != 1 {
		t.Fatalf("unexpected result shape: %d inputs", len(r.Inputs))
	}
	if len(r.Report.Converted) == 0 {
		t.Fatalf("h264ref must convert branches: %v", r.Report.Skipped)
	}
	if s := r.SpeedupAllRefsPct(4); s <= 0 {
		t.Errorf("h264ref speedup %.2f%%, want > 0", s)
	}
	if r.StaticExp <= r.StaticBase {
		t.Error("experimental binary must be larger")
	}
	row := r.Table2()
	if row.PBC <= 0 || row.PISCS <= 0 || row.MPPKI <= 0 {
		t.Errorf("degenerate Table 2 row: %+v", row)
	}
	if row.PDIH <= 0 || row.PHI <= 0 {
		t.Errorf("hoisting metrics empty: %+v", row)
	}
}

func TestVerificationCatchesNothingOnHealthyRun(t *testing.T) {
	// Verify=true is exercised above; this confirms Verify=false also runs.
	o := fastOptions()
	o.Verify = false
	c, _ := workload.ByName("libquantum")
	if _, err := RunBenchmark(c, o); err != nil {
		t.Fatal(err)
	}
}

func TestWidthsAndBestRef(t *testing.T) {
	o := fastOptions()
	o.Widths = []int{2, 4}
	c, _ := workload.ByName("perlbench")
	r, err := RunBenchmark(c, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Inputs[0].Runs) != 2 {
		t.Fatalf("want runs at two widths")
	}
	best := r.SpeedupBestRefPct(4)
	all := r.SpeedupAllRefsPct(4)
	if best < all {
		t.Errorf("best-ref speedup %.2f must be >= all-refs %.2f", best, all)
	}
}

func TestReportWriters(t *testing.T) {
	o := fastOptions()
	c, _ := workload.ByName("sjeng")
	r, err := RunBenchmark(c, o)
	if err != nil {
		t.Fatal(err)
	}
	results := []*BenchResult{r}

	var sb strings.Builder
	WriteTable2(&sb, results)
	if !strings.Contains(sb.String(), "sjeng") || !strings.Contains(sb.String(), "MPPKI") {
		t.Errorf("table 2 output malformed:\n%s", sb.String())
	}
	sb.Reset()
	WriteSpeedupFigure(&sb, "Figure 8", results, []int{4}, false)
	if !strings.Contains(sb.String(), "GEOMEAN") {
		t.Errorf("figure output missing geomean:\n%s", sb.String())
	}
	sb.Reset()
	WriteIssuedFigure(&sb, results)
	if !strings.Contains(sb.String(), "%") {
		t.Error("issued figure empty")
	}
	sb.Reset()
	WriteCSV(&sb, results, []int{4})
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "name,suite") {
		t.Errorf("CSV malformed:\n%s", sb.String())
	}
}

func TestBiasPredictabilityCurve(t *testing.T) {
	cur, err := BiasPredictabilityCurve("int2006", workload.Input{Seed: 11, Iters: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.Bias) != CurvePoints || len(cur.Predictability) != CurvePoints {
		t.Fatalf("curve must have %d points", CurvePoints)
	}
	// Bias is sorted descending per benchmark, so the averaged curve must
	// trend downward.
	if cur.Bias[0] < cur.Bias[CurvePoints-1] {
		t.Errorf("bias curve not descending: %.3f -> %.3f", cur.Bias[0], cur.Bias[CurvePoints-1])
	}
	// The paper's core observation: predictability stays above bias at the
	// low-bias end of the curve.
	tail := CurvePoints - 1
	if cur.Predictability[tail] <= cur.Bias[tail] {
		t.Errorf("predictability (%.3f) must exceed bias (%.3f) for unbiased branches",
			cur.Predictability[tail], cur.Bias[tail])
	}
	var sb strings.Builder
	cur.Write(&sb, "Figure 2")
	if !strings.Contains(sb.String(), "rank") {
		t.Error("curve rendering malformed")
	}
}

func TestResample(t *testing.T) {
	xs := []float64{1, 0}
	out := resample(xs, 5)
	want := []float64{1, 0.75, 0.5, 0.25, 0}
	for i := range want {
		if diff := out[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("resample = %v, want %v", out, want)
		}
	}
	if one := resample([]float64{7}, 3); one[0] != 7 || one[2] != 7 {
		t.Error("singleton resample wrong")
	}
}

func TestSensitivitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity study is slow")
	}
	o := fastOptions()
	rows, err := Sensitivity([]string{"astar"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(bpred.LadderSpecs()) {
		t.Fatalf("got %d rows", len(rows))
	}
	// The ladder must reduce baseline MPKI from bottom to top.
	if rows[len(rows)-1].MPKI >= rows[0].MPKI {
		t.Errorf("ISL-TAGE MPKI %.2f not below bimodal %.2f",
			rows[len(rows)-1].MPKI, rows[0].MPKI)
	}
	var sb strings.Builder
	WriteSensitivity(&sb, rows)
	if !strings.Contains(sb.String(), "per 1%") {
		t.Error("sensitivity slope missing")
	}
}

func TestICacheStudySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("icache study is slow")
	}
	o := fastOptions()
	// Single-benchmark suite slice via a custom run: reuse int2006's first.
	rows, err := RunICacheStudy("int2000", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workload.Suite("int2000")) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// A 25% smaller I$ must not catastrophically slow these loopy
		// workloads (the paper reports <0.5% geomean; allow slack).
		if r.SlowdownPct > 5 {
			t.Errorf("%s: %0.2f%% slowdown from 24KB I$ is implausible", r.Benchmark, r.SlowdownPct)
		}
	}
	var sb strings.Builder
	WriteICacheStudy(&sb, rows)
	if !strings.Contains(sb.String(), "GEOMEAN") {
		t.Error("icache report malformed")
	}
}

func TestAblationsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	o := fastOptions()
	names := []string{"h264ref"}

	hoist, err := SweepMaxHoist(names, o, []int{0, 12})
	if err != nil {
		t.Fatal(err)
	}
	if hoist[1].SpeedupPct <= hoist[0].SpeedupPct {
		t.Errorf("hoisting must help: depth-0 %.2f%% vs depth-12 %.2f%%",
			hoist[0].SpeedupPct, hoist[1].SpeedupPct)
	}
	slice, err := SlicePushdownAblation(names, o)
	if err != nil {
		t.Fatal(err)
	}
	if slice[0].SpeedupPct <= slice[1].SpeedupPct {
		t.Errorf("slice push-down must help: on %.2f%% vs off %.2f%%",
			slice[0].SpeedupPct, slice[1].SpeedupPct)
	}
	dbb, err := SweepDBBSize(names, o, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteAblation(&sb, "dbb", dbb)
	if !strings.Contains(sb.String(), "dbb=16") {
		t.Error("ablation rendering malformed")
	}
}

func TestMarkdownReport(t *testing.T) {
	o := fastOptions()
	c, _ := workload.ByName("milc")
	r, err := RunBenchmark(c, o)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteMarkdownReport(&sb, map[string][]*BenchResult{"fp2006": {r}}, o.Widths)
	out := sb.String()
	for _, want := range []string{"# Branch Vanguard", "SPEC 2006 Floating Point", "| milc |", "**geomean**"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
