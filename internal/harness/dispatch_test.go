package harness

import (
	"bytes"
	"testing"

	"vanguard/internal/exec"
	"vanguard/internal/workload"
)

// TestKernelDispatchDifferential is the in-process face of `make
// kernel-gate`: the full harness pipeline — build, profile, transform,
// golden check, timing simulation, report — must produce byte-identical
// reports (modulo the engine section) under kernel and switch dispatch,
// both scalar (Lanes=1) and lane-grouped (Lanes=0, auto). Runs under
// -race in `make check`, so it also audits the compiled kernel table for
// cross-lane sharing hazards.
func TestKernelDispatchDifferential(t *testing.T) {
	cs := []workload.Config{}
	for _, name := range []string{"h264ref", "milc"} {
		c, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %q", name)
		}
		cs = append(cs, c)
	}

	run := func(d exec.Dispatch, lanes int) []byte {
		o := fastOptions()
		o.Dispatch = d
		o.Lanes = lanes
		rs, err := RunBenchmarks(cs, o)
		if err != nil {
			t.Fatal(err)
		}
		return reportBytes(t, rs)
	}

	ref := run(exec.DispatchSwitch, 1)
	for _, lanes := range []int{1, 0} {
		if got := run(exec.DispatchKernels, lanes); !bytes.Equal(ref, got) {
			t.Fatalf("kernel dispatch (lanes=%d) diverged from switch reference:\n--- switch ---\n%s\n--- kernels ---\n%s",
				lanes, ref, got)
		}
	}
}
