package harness

import (
	"encoding/csv"
	"strings"
	"testing"

	"vanguard/internal/workload"
)

// TestRunAttrDiff drives the differential attribution end to end on a
// real benchmark: both binaries must conserve their slot accounting, the
// branch deltas must join the transform report and TRAIN profile, and the
// CSV exports must parse back with the advertised shapes. `make attr-gate`
// leans on this test plus the pipeline invariant tests.
func TestRunAttrDiff(t *testing.T) {
	c, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("missing benchmark")
	}
	d, err := RunAttrDiff(c, fastOptions(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Base == nil || d.Exp == nil {
		t.Fatal("diff lacks attribution reports")
	}
	for _, r := range []struct {
		name string
		rep  interface{ Check() error }
	}{{"base", d.Base}, {"exp", d.Exp}} {
		if err := r.rep.Check(); err != nil {
			t.Errorf("%s: conservation violated: %v", r.name, err)
		}
	}
	if d.Width != 4 || d.Benchmark != c.Name {
		t.Fatalf("diff identity = %s w%d", d.Benchmark, d.Width)
	}

	deltas := d.BranchDeltas()
	if len(deltas) == 0 {
		t.Fatal("no branch deltas")
	}
	sawConverted, sawProfiled := false, false
	for i, bd := range deltas {
		if bd.ID == 0 {
			t.Fatal("branch 0 must be skipped")
		}
		if bd.Delta != bd.BaseSlots-bd.ExpSlots {
			t.Fatalf("branch %d: delta %d != %d-%d", bd.ID, bd.Delta, bd.BaseSlots, bd.ExpSlots)
		}
		if i > 0 && deltas[i-1].Delta < bd.Delta {
			t.Fatal("deltas must sort most-recovered first")
		}
		sawConverted = sawConverted || bd.Converted
		sawProfiled = sawProfiled || bd.Bias > 0 || bd.Predictability > 0
	}
	if len(d.Transform.Converted) > 0 && !sawConverted {
		t.Error("transform converted branches but no delta row is marked converted")
	}
	if !sawProfiled {
		t.Error("no delta row joined the TRAIN profile (bias/predictability all zero)")
	}

	names, bars := d.CPIStackBars()
	if len(bars) != 2 {
		t.Fatalf("want baseline+vanguard bars, got %d", len(bars))
	}
	for _, b := range bars {
		if len(b.Segments) != len(names) {
			t.Fatalf("%s bar has %d segments for %d causes", b.Label, len(b.Segments), len(names))
		}
	}

	var sb strings.Builder
	WriteAttrDiff(&sb, d, 5)
	for _, want := range []string{"cycle stack", "per-cause slots", "baseline", "vanguard"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("text rendering lacks %q", want)
		}
	}

	sb.Reset()
	rows, err := WriteCPIStackCSV(&sb, d)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("cpistack CSV does not parse: %v", err)
	}
	if len(recs) != rows+1 || rows != 2*len(names) {
		t.Fatalf("cpistack CSV: %d records, %d rows, want binary x cause = %d", len(recs), rows, 2*len(names))
	}

	sb.Reset()
	rows, err = WriteBranchDeltaCSV(&sb, d)
	if err != nil {
		t.Fatal(err)
	}
	recs, err = csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("branches CSV does not parse: %v", err)
	}
	if rows != len(deltas) || len(recs) != rows+1 {
		t.Fatalf("branches CSV: %d rows for %d deltas", rows, len(deltas))
	}
}
