package harness

import (
	"context"
	"fmt"
	"io"

	"vanguard/internal/bpred"
	"vanguard/internal/engine"
	"vanguard/internal/ir"
	"vanguard/internal/metrics"
	"vanguard/internal/profile"
	"vanguard/internal/workload"
)

// Curve is the Figures 2/3 data: the top forward branches of a suite,
// sorted by descending bias, averaged rank-wise across benchmarks after
// resampling each benchmark's curve to Points entries.
type Curve struct {
	Bias           []float64
	Predictability []float64
}

// CurvePoints matches the paper's top-75 figure width.
const CurvePoints = 75

// BiasPredictabilityCurve computes the Figure 2 (integer) or Figure 3
// (floating point) series for a suite. Equivalent to
// BiasPredictabilityCurveOpts with a zero Options (sequential, uncached).
func BiasPredictabilityCurve(suite string, in workload.Input) (*Curve, error) {
	return BiasPredictabilityCurveOpts(suite, in, Options{Jobs: 1})
}

// benchCurve is one benchmark's resampled curve — the cacheable unit
// result of the figure-2/3 profiling runs. Empty slices mean the
// benchmark had too few eligible branches to contribute.
type benchCurve struct {
	Bias, Pred []float64
}

// BiasPredictabilityCurveOpts computes the curve with per-benchmark
// profiling runs spread over the experiment engine; o contributes only
// the execution policy (Jobs, Cache, EngineStats).
func BiasPredictabilityCurveOpts(suite string, in workload.Input, o Options) (*Curve, error) {
	var units []engine.Unit[benchCurve]
	for _, c := range workload.Suite(suite) {
		units = append(units, engine.Unit[benchCurve]{
			Label: fmt.Sprintf("curve/%s/seed=%d,iters=%d", c.Name, in.Seed, in.Iters),
			Key:   engine.Key(harnessVersion, "curve", c, in, CurvePoints),
			Run: func(context.Context) (benchCurve, error) {
				p, m := c.Generate(in)
				prof, err := profile.CollectDefault(ir.MustLinearize(p), m, 200_000_000)
				if err != nil {
					return benchCurve{}, err
				}
				bias, pred := prof.BiasPredictabilityCurve(CurvePoints)
				if len(bias) < 2 {
					return benchCurve{}, nil
				}
				return benchCurve{Bias: resample(bias, CurvePoints), Pred: resample(pred, CurvePoints)}, nil
			},
		})
	}
	curves, est, err := engine.Run(context.Background(),
		engine.Config{Jobs: o.Jobs, Cache: o.Cache, Monitor: o.Monitor, Recorder: o.Recorder}, units)
	if o.EngineStats != nil {
		o.EngineStats.add(est)
	}
	if err != nil {
		return nil, err
	}

	agg := &Curve{
		Bias:           make([]float64, CurvePoints),
		Predictability: make([]float64, CurvePoints),
	}
	n := 0
	for _, bc := range curves {
		if len(bc.Bias) == 0 {
			continue
		}
		for i := 0; i < CurvePoints; i++ {
			agg.Bias[i] += bc.Bias[i]
			agg.Predictability[i] += bc.Pred[i]
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("suite %q produced no curves", suite)
	}
	for i := range agg.Bias {
		agg.Bias[i] /= float64(n)
		agg.Predictability[i] /= float64(n)
	}
	return agg, nil
}

// resample linearly interpolates xs onto n points.
func resample(xs []float64, n int) []float64 {
	out := make([]float64, n)
	if len(xs) == 1 {
		for i := range out {
			out[i] = xs[0]
		}
		return out
	}
	for i := 0; i < n; i++ {
		pos := float64(i) * float64(len(xs)-1) / float64(n-1)
		lo := int(pos)
		frac := pos - float64(lo)
		hi := lo
		if lo+1 < len(xs) {
			hi = lo + 1
		}
		out[i] = xs[lo]*(1-frac) + xs[hi]*frac
	}
	return out
}

// WriteCurve renders the curve as an aligned table.
func (c *Curve) Write(w io.Writer, title string) {
	fmt.Fprintf(w, "%s\n%-6s %8s %14s\n", title, "rank", "bias", "predictability")
	for i := range c.Bias {
		fmt.Fprintf(w, "%-6d %8.4f %14.4f\n", i+1, c.Bias[i], c.Predictability[i])
	}
}

// SensitivityRow is one (benchmark, predictor) measurement of Section 5.3.
type SensitivityRow struct {
	Benchmark  string
	Predictor  string
	MPKI       float64 // baseline mispredictions per 1000 instructions
	SpeedupPct float64 // decomposed-branch speedup at width 4
}

// SensitivityBenchmarks are the four hard-to-predict integer benchmarks
// the paper singles out.
func SensitivityBenchmarks() []string { return []string{"astar", "sjeng", "gobmk", "mcf"} }

// Sensitivity runs the Section 5.3 study: each benchmark across the
// predictor ladder, re-profiling and re-transforming with each predictor
// (the DBT system would re-optimize for the deployed front end). The full
// (benchmark x predictor) matrix runs as one engine job set.
func Sensitivity(benchmarks []string, base Options) ([]SensitivityRow, error) {
	specs := bpred.LadderSpecs()
	var jobs []*benchJob
	for _, name := range benchmarks {
		c, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		for _, spec := range specs {
			o := base
			o.Widths = []int{4}
			o.NewPredictor = spec.New
			o.PredictorName = spec.Name
			jobs = append(jobs, newBenchJob(c, o))
		}
	}
	rs, err := runBenchJobs(jobs, base)
	if err != nil {
		return nil, err
	}
	var rows []SensitivityRow
	for bi, name := range benchmarks {
		for si, spec := range specs {
			r := rs[bi*len(specs)+si]
			wr := r.run4()
			rows = append(rows, SensitivityRow{
				Benchmark:  name,
				Predictor:  spec.Name,
				MPKI:       wr.Base.MPKI(),
				SpeedupPct: r.SpeedupAllRefsPct(4),
			})
		}
	}
	return rows, nil
}

// WriteSensitivity renders the study with the per-benchmark
// speedup-per-misprediction slope the paper quotes (~0.3%/1%).
func WriteSensitivity(w io.Writer, rows []SensitivityRow) {
	fmt.Fprintln(w, "Section 5.3: branch predictor sensitivity (4-wide)")
	fmt.Fprintf(w, "%-8s %-20s %8s %10s\n", "bench", "predictor", "MPKI", "speedup%")
	byBench := map[string][]SensitivityRow{}
	var order []string
	for _, r := range rows {
		if _, seen := byBench[r.Benchmark]; !seen {
			order = append(order, r.Benchmark)
		}
		byBench[r.Benchmark] = append(byBench[r.Benchmark], r)
		fmt.Fprintf(w, "%-8s %-20s %8.2f %10.2f\n", r.Benchmark, r.Predictor, r.MPKI, r.SpeedupPct)
	}
	for _, b := range order {
		rs := byBench[b]
		first, last := rs[0], rs[len(rs)-1]
		// Misprediction-rate change in percentage points ~ MPKI/10 given
		// the roughly 10% branch density of these workloads.
		dmr := (first.MPKI - last.MPKI) / 10
		if dmr != 0 {
			fmt.Fprintf(w, "%s: %+.2f%% speedup per 1%% misprediction-rate reduction\n",
				b, (last.SpeedupPct-first.SpeedupPct)/dmr)
		}
	}
}

// ICacheStudy is the Section 6.1 experiment: shrink the 32KB L1-I by 25%
// and measure the baseline-configuration slowdown (the paper reports
// < 0.5% geomean on the 4-wide in-order) along with the fraction of I$
// misses occurring under a branch misprediction.
type ICacheStudy struct {
	Benchmark        string
	SlowdownPct      float64 // baseline at 24KB vs 32KB
	MissUnderMispred float64 // fraction of I$ misses in a mispredict shadow (32KB)
}

// RunICacheStudy executes the study over a suite: both configurations of
// every benchmark run as one engine job set.
func RunICacheStudy(suite string, base Options) ([]ICacheStudy, error) {
	small := base
	small.ICacheBytes = 24 << 10
	small.Widths = []int{4}
	big := base
	big.Widths = []int{4}

	cs := workload.Suite(suite)
	var jobs []*benchJob
	for _, c := range cs {
		jobs = append(jobs, newBenchJob(c, big), newBenchJob(c, small))
	}
	rs, err := runBenchJobs(jobs, base)
	if err != nil {
		return nil, err
	}

	var out []ICacheStudy
	for ci, c := range cs {
		rBig, rSmall := rs[2*ci], rs[2*ci+1]
		wb, ws := rBig.run4(), rSmall.run4()
		slow := (float64(ws.Base.Cycles)/float64(wb.Base.Cycles) - 1) * 100
		frac := 0.0
		if wb.Base.ICacheMisses > 0 {
			frac = float64(wb.Base.ICacheMissUnderMispred) / float64(wb.Base.ICacheMisses)
		}
		out = append(out, ICacheStudy{Benchmark: c.Name, SlowdownPct: slow, MissUnderMispred: frac})
	}
	return out, nil
}

// WriteICacheStudy renders the Section 6.1 results.
func WriteICacheStudy(w io.Writer, rows []ICacheStudy) {
	fmt.Fprintln(w, "Section 6.1: 24KB vs 32KB L1-I (4-wide baseline)")
	fmt.Fprintf(w, "%-11s %12s %22s\n", "bench", "slowdown%", "I$ miss under mispred")
	var ratios []float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %12.3f %21.1f%%\n", r.Benchmark, r.SlowdownPct, 100*r.MissUnderMispred)
		ratios = append(ratios, 1+r.SlowdownPct/100)
	}
	fmt.Fprintf(w, "GEOMEAN slowdown: %.3f%%\n", (metrics.Geomean(ratios)-1)*100)
}
