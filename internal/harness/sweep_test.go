package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vanguard/internal/engine"
	"vanguard/internal/trace"
	"vanguard/internal/workload"
)

// TestWriteSweepArtifacts drives the artifact fan-out: the JSON
// recording, the Chrome timeline, and the run-cache copy are all
// written, parse back, and satisfy the conservation invariant; a nil
// recorder writes nothing.
func TestWriteSweepArtifacts(t *testing.T) {
	dir := t.TempDir()
	cache, err := engine.Open(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	rec := engine.NewSweepRecorder()
	units := make([]engine.Unit[int], 4)
	for i := range units {
		i := i
		units[i] = engine.Unit[int]{
			Label: fmt.Sprintf("u%d", i),
			Key:   engine.Key(fmt.Sprintf("sweep-artifact-test-%d", i)),
			Run:   func(ctx context.Context) (int, error) { return i, nil },
		}
	}
	cfg := engine.Config{Jobs: 2, Cache: cache, Recorder: rec}
	if _, _, err := engine.Run(context.Background(), cfg, units); err != nil {
		t.Fatal(err)
	}

	tracePath := filepath.Join(dir, "sweep.json")
	chromePath := filepath.Join(dir, "sweep.trace")
	s, err := WriteSweepArtifacts(rec, tracePath, chromePath, cache)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || s.Units != 4 {
		t.Fatalf("returned report = %+v, want 4 units", s)
	}
	if err := s.Check(); err != nil {
		t.Fatalf("report violates conservation: %v", err)
	}

	// Both JSON copies parse back and still satisfy Check.
	for _, p := range []string{tracePath, filepath.Join(cache.Dir(), SweepArtifactName)} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatalf("artifact missing: %v", err)
		}
		back, err := trace.ReadSweep(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := back.Check(); err != nil {
			t.Errorf("%s fails Check after round trip: %v", p, err)
		}
		if back.Units != 4 || back.CacheMisses != 4 {
			t.Errorf("%s round-tripped as %d units / %d misses, want 4 / 4", p, back.Units, back.CacheMisses)
		}
	}
	// The Chrome timeline parses as trace_event JSON.
	f, err := os.Open(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ParseChromeEvents(f)
	f.Close()
	if err != nil {
		t.Fatalf("chrome artifact does not parse: %v", err)
	}
	if len(evs) == 0 {
		t.Error("chrome artifact has no events")
	}

	// Nil recorder: no-op, no files.
	noneTrace := filepath.Join(dir, "none.json")
	if s, err := WriteSweepArtifacts(nil, noneTrace, "", nil); err != nil || s != nil {
		t.Fatalf("nil recorder returned %+v, %v", s, err)
	}
	if _, err := os.Stat(noneTrace); !os.IsNotExist(err) {
		t.Error("nil recorder wrote an artifact")
	}
}

// TestSweepGateConservation is the make sweep-gate acceptance: an
// uncached end-to-end benchmark run with the flight recorder attached
// produces a recording that satisfies Check and reconciles span-for-span
// with what the engine says it executed.
func TestSweepGateConservation(t *testing.T) {
	c, ok := workload.ByName("h264ref")
	if !ok {
		t.Fatal("missing benchmark")
	}
	o := fastOptions()
	o.Jobs = 4
	rec := engine.NewSweepRecorder()
	o.Recorder = rec
	es := &EngineStats{}
	o.EngineStats = es
	if _, err := RunBenchmark(c, o); err != nil {
		t.Fatal(err)
	}

	s := rec.Report()
	if err := s.Check(); err != nil {
		t.Fatalf("flight recording violates conservation: %v", err)
	}
	er := es.Report()
	if s.Units != er.Units {
		t.Fatalf("recorder saw %d units, engine executed %d", s.Units, er.Units)
	}
	var unitSpans int
	for _, sp := range s.Spans {
		if sp.Phase == trace.SweepPhaseUnit {
			unitSpans++
			if sp.Outcome != trace.SweepRetire {
				t.Errorf("unit %d (%s) ended %q, want retire on a clean run", sp.Unit, sp.Label, sp.Outcome)
			}
		}
	}
	if unitSpans != er.Units {
		t.Fatalf("%d unit spans for %d executed units", unitSpans, er.Units)
	}
	// Uncached run: no probes recorded, everything computed.
	if s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Errorf("uncached run recorded %d hits / %d misses", s.CacheHits, s.CacheMisses)
	}
	if s.UnitLatency == nil || s.UnitLatency.Count != int64(er.Units) {
		t.Errorf("latency histogram = %+v, want %d observations", s.UnitLatency, er.Units)
	}
	if s.WallUS <= 0 || s.Workers <= 0 {
		t.Errorf("degenerate recording: wall %d us, %d workers", s.WallUS, s.Workers)
	}
}
