package harness

import (
	"encoding/csv"
	"strings"
	"testing"
)

// TestRunBpredDiff drives the predictor observatory end to end on a real
// benchmark: both binaries' studies must satisfy their conservation
// invariant, the classification × conversion join must annotate the
// attribution deltas with measured predictability, and the text and CSV
// surfaces must render with the advertised shapes. `make bpred-gate`
// leans on this test plus the pipeline invariant tests.
func TestRunBpredDiff(t *testing.T) {
	d, err := RunBpredDiff(mustBench(t, "mcf"), fastOptions(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Base == nil || d.Exp == nil || d.Attr == nil {
		t.Fatal("diff lacks studies or attribution")
	}
	for _, r := range []struct {
		name string
		err  error
	}{{"base", d.Base.Check()}, {"exp", d.Exp.Check()}} {
		if r.err != nil {
			t.Errorf("%s study: conservation violated: %v", r.name, r.err)
		}
	}
	if len(d.Base.Branches) == 0 || len(d.Base.Classes) == 0 {
		t.Fatal("baseline study classified no branches")
	}

	rows := d.JoinRows()
	if len(rows) == 0 {
		t.Fatal("empty join")
	}
	sawConverted, sawClassified := false, false
	for _, r := range rows {
		if r.Class == "" {
			t.Fatalf("branch %d has an empty class", r.ID)
		}
		if r.Converted {
			sawConverted = true
		}
		if r.Class != "unseen" {
			sawClassified = true
			if r.Execs == 0 {
				t.Errorf("branch %d classified %s with zero observed execs", r.ID, r.Class)
			}
		}
	}
	if len(d.Attr.Transform.Converted) > 0 && !sawConverted {
		t.Error("transform converted branches but no join row is marked converted")
	}
	if !sawClassified {
		t.Error("no join row carries a measured classification")
	}

	var sb strings.Builder
	WriteBpredReport(&sb, d, 5)
	for _, want := range []string{"baseline", "vanguard", "predictability classes", "classification x conversion", "provider mix"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("text rendering lacks %q", want)
		}
	}

	sb.Reset()
	n, err := WriteBpredJoinCSV(&sb, d)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("join CSV does not parse: %v", err)
	}
	if n != len(rows) || len(recs) != n+1 {
		t.Fatalf("join CSV: %d rows for %d join rows (%d records)", n, len(rows), len(recs))
	}

	sb.Reset()
	n, err = WriteBpredStudyCSV(&sb, d.Benchmark, d.Input, d.Width, "base", d.Base)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(d.Base.Branches) {
		t.Fatalf("study CSV: %d rows for %d digests", n, len(d.Base.Branches))
	}
}

// TestWriteBpredCSVBulk pins the spec/ablate bulk surface: a probed
// benchmark result exports one CSV row per (input, width, binary,
// classified branch), and a probe-off result exports only the header.
func TestWriteBpredCSVBulk(t *testing.T) {
	o := fastOptions()
	o.Probe = true
	res, err := RunBenchmark(mustBench(t, "mcf"), o)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, ir := range res.Inputs {
		for _, wr := range ir.Runs {
			if wr.Base.Bpred == nil || wr.Exp.Bpred == nil {
				t.Fatal("probed run missing its study")
			}
			want += len(wr.Base.Bpred.Branches) + len(wr.Exp.Bpred.Branches)
		}
	}
	var sb strings.Builder
	n, err := WriteBpredCSV(&sb, []*BenchResult{res})
	if err != nil {
		t.Fatal(err)
	}
	if n != want || n == 0 {
		t.Fatalf("bulk CSV: %d rows, want %d", n, want)
	}
	if _, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll(); err != nil {
		t.Fatalf("bulk CSV does not parse: %v", err)
	}

	o.Probe = false
	plain, err := RunBenchmark(mustBench(t, "mcf"), o)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	n, err = WriteBpredCSV(&sb, []*BenchResult{plain})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("probe-off result exported %d rows", n)
	}
}
