package harness

import (
	"fmt"
	"io"

	"vanguard/internal/metrics"
	"vanguard/internal/workload"
)

// Ablations validate the design choices the paper calls out:
//
//   - the 5% predictability-bias selection threshold ("this heuristic
//     provided the best overall performance", Section 5);
//   - the 16-entry DBB sizing ("16 entries were more than sufficient",
//     Section 4);
//   - the value of hoisting depth and of the condition-slice push-down
//     (Section 3's mini-transformations).

// AblationPoint is one configuration of a sweep with its geomean speedup.
type AblationPoint struct {
	Label      string
	SpeedupPct float64
}

// AblationBenchmarks is a representative cross-section used by the sweeps
// (hot, MLP-rich, memory-bound, and FP representatives).
func AblationBenchmarks() []string {
	return []string{"h264ref", "omnetpp", "mcf", "povray"}
}

// sweep runs |points| x |names| benchmark measurements as ONE engine job
// set — every simulation of the whole sweep shares the worker pool — and
// returns the geomean width-4 speedup per point, labelled.
func sweep(names []string, points []Options, labels []string) ([]AblationPoint, error) {
	var jobs []*benchJob
	for _, o := range points {
		for _, n := range names {
			c, ok := workload.ByName(n)
			if !ok {
				return nil, fmt.Errorf("unknown benchmark %q", n)
			}
			jobs = append(jobs, newBenchJob(c, o))
		}
	}
	rs, err := runBenchJobs(jobs, points[0])
	if err != nil {
		return nil, err
	}
	out := make([]AblationPoint, len(points))
	for pi := range points {
		var ss []float64
		for ni := range names {
			ss = append(ss, rs[pi*len(names)+ni].SpeedupAllRefsPct(4))
		}
		out[pi] = AblationPoint{Label: labels[pi], SpeedupPct: metrics.GeomeanSpeedupPct(ss)}
	}
	return out, nil
}

// SweepMinGap sweeps the selection threshold (paper: 5% is best).
func SweepMinGap(names []string, base Options, gaps []float64) ([]AblationPoint, error) {
	var points []Options
	var labels []string
	for _, g := range gaps {
		o := base
		o.Widths = []int{4}
		o.Core.MinGap = g
		points = append(points, o)
		labels = append(labels, fmt.Sprintf("gap>=%.0f%%", g*100))
	}
	return sweep(names, points, labels)
}

// SweepMaxHoist sweeps the hoisting depth; MaxHoist=0 isolates the benefit
// of the decomposition itself (earlier prediction point) from scheduling.
func SweepMaxHoist(names []string, base Options, depths []int) ([]AblationPoint, error) {
	var points []Options
	var labels []string
	for _, d := range depths {
		o := base
		o.Widths = []int{4}
		o.Core.MaxHoist = d
		points = append(points, o)
		labels = append(labels, fmt.Sprintf("hoist<=%d", d))
	}
	return sweep(names, points, labels)
}

// SweepDBBSize sweeps the Decomposed Branch Buffer depth. Undersized DBBs
// wrap before resolution, so resolve instructions train the wrong predictor
// entries — accuracy (and speedup) degrade, exactly why the paper sized it
// by measuring occupancy.
func SweepDBBSize(names []string, base Options, sizes []int) ([]AblationPoint, error) {
	var points []Options
	var labels []string
	for _, n := range sizes {
		o := base
		o.Widths = []int{4}
		o.DBBEntries = n
		points = append(points, o)
		labels = append(labels, fmt.Sprintf("dbb=%d", n))
	}
	return sweep(names, points, labels)
}

// SlicePushdownAblation compares the full transformation against one with
// the condition-slice push-down disabled.
func SlicePushdownAblation(names []string, base Options) ([]AblationPoint, error) {
	var points []Options
	var labels []string
	for _, off := range []bool{false, true} {
		o := base
		o.Widths = []int{4}
		o.Core.NoSlicePushdown = off
		points = append(points, o)
		label := "slice push-down ON"
		if off {
			label = "slice push-down OFF"
		}
		labels = append(labels, label)
	}
	return sweep(names, points, labels)
}

// WriteAblation renders a sweep.
func WriteAblation(w io.Writer, title string, pts []AblationPoint) {
	fmt.Fprintln(w, title)
	for _, p := range pts {
		fmt.Fprintf(w, "  %-22s %6.2f%%\n", p.Label, p.SpeedupPct)
	}
}
