package harness

import (
	"fmt"
	"io"

	"vanguard/internal/metrics"
	"vanguard/internal/workload"
)

// Ablations validate the design choices the paper calls out:
//
//   - the 5% predictability-bias selection threshold ("this heuristic
//     provided the best overall performance", Section 5);
//   - the 16-entry DBB sizing ("16 entries were more than sufficient",
//     Section 4);
//   - the value of hoisting depth and of the condition-slice push-down
//     (Section 3's mini-transformations).

// AblationPoint is one configuration of a sweep with its geomean speedup.
type AblationPoint struct {
	Label      string
	SpeedupPct float64
}

// AblationBenchmarks is a representative cross-section used by the sweeps
// (hot, MLP-rich, memory-bound, and FP representatives).
func AblationBenchmarks() []string {
	return []string{"h264ref", "omnetpp", "mcf", "povray"}
}

// geomeanOver runs the given benchmarks under o and returns the geomean
// width-4 speedup.
func geomeanOver(names []string, o Options) (float64, error) {
	var ss []float64
	for _, n := range names {
		c, ok := workload.ByName(n)
		if !ok {
			return 0, fmt.Errorf("unknown benchmark %q", n)
		}
		r, err := RunBenchmark(c, o)
		if err != nil {
			return 0, err
		}
		ss = append(ss, r.SpeedupAllRefsPct(4))
	}
	return metrics.GeomeanSpeedupPct(ss), nil
}

// SweepMinGap sweeps the selection threshold (paper: 5% is best).
func SweepMinGap(names []string, base Options, gaps []float64) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, g := range gaps {
		o := base
		o.Widths = []int{4}
		o.Core.MinGap = g
		s, err := geomeanOver(names, o)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Label: fmt.Sprintf("gap>=%.0f%%", g*100), SpeedupPct: s})
	}
	return out, nil
}

// SweepMaxHoist sweeps the hoisting depth; MaxHoist=0 isolates the benefit
// of the decomposition itself (earlier prediction point) from scheduling.
func SweepMaxHoist(names []string, base Options, depths []int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, d := range depths {
		o := base
		o.Widths = []int{4}
		o.Core.MaxHoist = d
		s, err := geomeanOver(names, o)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Label: fmt.Sprintf("hoist<=%d", d), SpeedupPct: s})
	}
	return out, nil
}

// SweepDBBSize sweeps the Decomposed Branch Buffer depth. Undersized DBBs
// wrap before resolution, so resolve instructions train the wrong predictor
// entries — accuracy (and speedup) degrade, exactly why the paper sized it
// by measuring occupancy.
func SweepDBBSize(names []string, base Options, sizes []int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, n := range sizes {
		o := base
		o.Widths = []int{4}
		o.DBBEntries = n
		s, err := geomeanOver(names, o)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Label: fmt.Sprintf("dbb=%d", n), SpeedupPct: s})
	}
	return out, nil
}

// SlicePushdownAblation compares the full transformation against one with
// the condition-slice push-down disabled.
func SlicePushdownAblation(names []string, base Options) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, off := range []bool{false, true} {
		o := base
		o.Widths = []int{4}
		o.Core.NoSlicePushdown = off
		s, err := geomeanOver(names, o)
		if err != nil {
			return nil, err
		}
		label := "slice push-down ON"
		if off {
			label = "slice push-down OFF"
		}
		out = append(out, AblationPoint{Label: label, SpeedupPct: s})
	}
	return out, nil
}

// WriteAblation renders a sweep.
func WriteAblation(w io.Writer, title string, pts []AblationPoint) {
	fmt.Fprintln(w, title)
	for _, p := range pts {
		fmt.Fprintf(w, "  %-22s %6.2f%%\n", p.Label, p.SpeedupPct)
	}
}
