package harness

import (
	"bytes"
	"testing"

	"vanguard/internal/bpred"
	"vanguard/internal/engine"
	"vanguard/internal/trace"
	"vanguard/internal/workload"
)

// reportBytes renders a JSON report with the engine section stripped —
// everything that is allowed to vary between runs lives there.
func reportBytes(t *testing.T, rs []*BenchResult) []byte {
	t.Helper()
	rep := JSONReport("test", rs)
	rep.Engine = nil
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJobsDifferential: the same suite run serially and on eight workers
// must produce byte-identical reports (modulo the engine section). This is
// the determinism guarantee the engine's ordered aggregation provides; it
// runs under -race in `make check`, doubling as the concurrency audit of
// the shared build artifacts.
func TestJobsDifferential(t *testing.T) {
	cs := []workload.Config{}
	for _, name := range []string{"h264ref", "milc", "gobmk"} {
		c, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %q", name)
		}
		cs = append(cs, c)
	}

	o1 := fastOptions()
	o1.Jobs = 1
	es1 := &EngineStats{}
	o1.EngineStats = es1
	r1, err := RunBenchmarks(cs, o1)
	if err != nil {
		t.Fatal(err)
	}

	o8 := fastOptions()
	o8.Jobs = 8
	es8 := &EngineStats{}
	o8.EngineStats = es8
	r8, err := RunBenchmarks(cs, o8)
	if err != nil {
		t.Fatal(err)
	}

	b1, b8 := reportBytes(t, r1), reportBytes(t, r8)
	if !bytes.Equal(b1, b8) {
		t.Fatalf("-jobs=1 and -jobs=8 reports differ:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", b1, b8)
	}

	// The engine section still records what actually happened.
	rep1, rep8 := es1.Report(), es8.Report()
	if rep1.Jobs != 1 {
		t.Errorf("jobs=1 run reported %d workers", rep1.Jobs)
	}
	if rep8.Jobs < 2 {
		t.Errorf("jobs=8 run reported %d workers, want >= 2", rep8.Jobs)
	}
	if rep1.Units != rep8.Units {
		t.Errorf("unit counts differ: %d vs %d", rep1.Units, rep8.Units)
	}
	if len(rep1.UnitWall) != rep1.Units {
		t.Errorf("unit wall list has %d entries, want %d", len(rep1.UnitWall), rep1.Units)
	}
	for i := range rep1.UnitWall {
		if rep1.UnitWall[i].Label != rep8.UnitWall[i].Label {
			t.Fatalf("unit %d labels differ across jobs counts: %q vs %q",
				i, rep1.UnitWall[i].Label, rep8.UnitWall[i].Label)
		}
	}
}

// TestWarmCache: a second run over a shared cache directory reports hits
// for every timing simulation and produces identical results.
func TestWarmCache(t *testing.T) {
	cache, err := engine.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := workload.ByName("libquantum")

	run := func() ([]*BenchResult, *trace.EngineReport) {
		o := fastOptions()
		o.Cache = cache
		es := &EngineStats{}
		o.EngineStats = es
		rs, err := RunBenchmarks([]workload.Config{c}, o)
		if err != nil {
			t.Fatal(err)
		}
		return rs, es.Report()
	}

	cold, coldRep := run()
	if coldRep.CacheHits != 0 {
		t.Fatalf("cold run reported %d hits", coldRep.CacheHits)
	}
	if coldRep.CacheMisses == 0 {
		t.Fatal("cold run stored nothing in the cache")
	}

	warm, warmRep := run()
	if warmRep.CacheHits == 0 {
		t.Fatal("warm run reported no cache hits")
	}
	if warmRep.CacheHits != coldRep.CacheMisses {
		t.Errorf("warm hits %d != cold misses %d", warmRep.CacheHits, coldRep.CacheMisses)
	}
	if warmRep.CacheMisses != 0 {
		t.Errorf("warm run still missed %d units", warmRep.CacheMisses)
	}
	if !bytes.Equal(reportBytes(t, cold), reportBytes(t, warm)) {
		t.Error("cached results differ from computed results")
	}
}

// TestAnonymousPredictorBypassesCache: a NewPredictor closure without a
// PredictorName cannot be hashed into a key, so those runs must never be
// served from (or stored in) the cache.
func TestAnonymousPredictorBypassesCache(t *testing.T) {
	c, _ := workload.ByName("libquantum")
	o := fastOptions()
	o.NewPredictor = func() bpred.DirPredictor { return bpred.NewDefault() }
	o.PredictorName = ""
	in := o.RefInputs[0]
	if key := newBenchJob(c, o).simKey(in, 4, "base"); key != "" {
		t.Errorf("anonymous predictor produced cache key %q", key)
	}
	o.PredictorName = "default"
	if key := newBenchJob(c, o).simKey(in, 4, "base"); key == "" {
		t.Error("named predictor must produce a cache key")
	}
	// Distinct predictors must never alias.
	o.PredictorName = "gshare-64k"
	if newBenchJob(c, o).simKey(in, 4, "base") ==
		func() string { o.PredictorName = "default"; return newBenchJob(c, o).simKey(in, 4, "base") }() {
		t.Error("different predictor names produced the same key")
	}
}

// TestSuiteCache: repeated Suite calls reuse the first result set.
func TestSuiteCache(t *testing.T) {
	sc := NewSuiteCache(fastOptions())
	a, err := sc.Suite("fp2000")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.Suite("fp2000")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("suite sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("suite cache returned fresh results on the second call")
		}
	}
}

// TestFastOptions: the shared -fast block matches what the CLIs relied on
// before it was deduplicated.
func TestFastOptions(t *testing.T) {
	o := FastOptions()
	if o.TrainInput.Iters >= DefaultOptions().TrainInput.Iters {
		t.Error("FastOptions must shrink the train input")
	}
	if len(o.RefInputs) != 2 {
		t.Errorf("FastOptions has %d ref inputs, want 2", len(o.RefInputs))
	}
	if len(o.Widths) == 0 {
		t.Error("FastOptions must keep the width sweep")
	}
}
