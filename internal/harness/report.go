package harness

import (
	"fmt"
	"io"
	"strings"

	"vanguard/internal/metrics"
)

// WriteTable2 renders the Table 2 analogue for a set of benchmark results.
func WriteTable2(w io.Writer, results []*BenchResult) {
	fmt.Fprintf(w, "%-11s %6s %6s %6s %7s %6s %6s %7s\n",
		"Name", "SPD", "PBC", "PDIH", "ASPCB", "PHI", "MPPKI", "PISCS")
	for _, r := range results {
		row := r.Table2()
		fmt.Fprintf(w, "%-11s %6.1f %6.1f %6.1f %7.1f %6.1f %6.1f %7.1f\n",
			row.Name, row.SPD, row.PBC, row.PDIH, row.ASPCB, row.PHI, row.MPPKI, row.PISCS)
	}
}

// WriteSpeedupFigure renders a Figures 8/10/12/13-style series: per
// benchmark, % speedup at each width (averaged over all REF inputs), plus
// the geomean row.
func WriteSpeedupFigure(w io.Writer, title string, results []*BenchResult, widths []int, bestRef bool) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-11s", "Name")
	for _, wd := range widths {
		fmt.Fprintf(w, " %7s", fmt.Sprintf("%d-wide", wd))
	}
	fmt.Fprintln(w)
	geo := make(map[int][]float64)
	for _, r := range results {
		fmt.Fprintf(w, "%-11s", r.Config.Name)
		for _, wd := range widths {
			var s float64
			if bestRef {
				s = r.SpeedupBestRefPct(wd)
			} else {
				s = r.SpeedupAllRefsPct(wd)
			}
			geo[wd] = append(geo[wd], s)
			fmt.Fprintf(w, " %7.2f", s)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-11s", "GEOMEAN")
	for _, wd := range widths {
		fmt.Fprintf(w, " %7.2f", metrics.GeomeanSpeedupPct(geo[wd]))
	}
	fmt.Fprintln(w)
}

// WriteIssuedFigure renders Figure 14: % increase in instructions issued
// at width 4 for the experimental configuration.
func WriteIssuedFigure(w io.Writer, results []*BenchResult) {
	fmt.Fprintln(w, "Figure 14: % increase in instructions issued (4-wide, experimental vs baseline)")
	sum := 0.0
	for _, r := range results {
		v := r.IssuedIncreasePct()
		sum += v
		fmt.Fprintf(w, "%-11s %+6.2f%%\n", r.Config.Name, v)
	}
	if len(results) > 0 {
		fmt.Fprintf(w, "%-11s %+6.2f%%\n", "MEAN", sum/float64(len(results)))
	}
}

// WriteCSV emits a machine-readable dump of the per-benchmark speedups and
// Table 2 metrics.
func WriteCSV(w io.Writer, results []*BenchResult, widths []int) {
	cols := []string{"name", "suite"}
	for _, wd := range widths {
		cols = append(cols, fmt.Sprintf("spd_w%d_all", wd), fmt.Sprintf("spd_w%d_best", wd))
	}
	cols = append(cols, "pbc", "pdih", "aspcb", "phi", "mppki", "piscs", "fig14_issued_pct")
	fmt.Fprintln(w, strings.Join(cols, ","))
	for _, r := range results {
		row := r.Table2()
		fields := []string{r.Config.Name, r.Config.Suite}
		for _, wd := range widths {
			fields = append(fields,
				fmt.Sprintf("%.3f", r.SpeedupAllRefsPct(wd)),
				fmt.Sprintf("%.3f", r.SpeedupBestRefPct(wd)))
		}
		fields = append(fields,
			fmt.Sprintf("%.3f", row.PBC), fmt.Sprintf("%.3f", row.PDIH),
			fmt.Sprintf("%.3f", row.ASPCB), fmt.Sprintf("%.3f", row.PHI),
			fmt.Sprintf("%.3f", row.MPPKI), fmt.Sprintf("%.3f", row.PISCS),
			fmt.Sprintf("%.3f", r.IssuedIncreasePct()))
		fmt.Fprintln(w, strings.Join(fields, ","))
	}
}
