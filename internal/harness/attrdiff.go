package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"vanguard/internal/attr"
	"vanguard/internal/core"
	"vanguard/internal/metrics"
	"vanguard/internal/profile"
	"vanguard/internal/textplot"
	"vanguard/internal/workload"
)

// AttrDiff is the differential attribution of one benchmark: the same
// workload simulated as the baseline binary and the vanguard
// (decomposed-branch) binary with cycle attribution on, so the speedup
// decomposes into which causes shrank — and, per static BranchID, which
// converted branches paid off.
type AttrDiff struct {
	Benchmark string
	Width     int
	Input     workload.Input
	Base, Exp *attr.Report
	Profile   *profile.Profile
	Transform *core.Report
}

// RunAttrDiff measures one benchmark's baseline-vs-vanguard attribution
// at one width on the first REF input, through the ordinary experiment
// engine (so the run cache and monitor apply). Attribution is forced on
// regardless of o.Attr.
func RunAttrDiff(c workload.Config, o Options, width int) (*AttrDiff, error) {
	o.Attr = true
	o.Widths = []int{width}
	if len(o.RefInputs) == 0 {
		return nil, fmt.Errorf("attr-diff %s: no REF inputs", c.Name)
	}
	o.RefInputs = o.RefInputs[:1]
	res, err := RunBenchmark(c, o)
	if err != nil {
		return nil, err
	}
	wr := res.Inputs[0].Runs[0]
	if wr.Base.Attr == nil || wr.Exp.Attr == nil {
		return nil, fmt.Errorf("attr-diff %s: simulation returned no attribution", c.Name)
	}
	return &AttrDiff{
		Benchmark: c.Name,
		Width:     width,
		Input:     o.RefInputs[0],
		Base:      wr.Base.Attr,
		Exp:       wr.Exp.Attr,
		Profile:   res.Profile,
		Transform: res.Report,
	}, nil
}

// SpeedupPct returns the baseline→vanguard speedup of the diffed run.
func (d *AttrDiff) SpeedupPct() float64 {
	return metrics.SpeedupPct(d.Base.Cycles, d.Exp.Cycles)
}

// BranchDelta is one static branch's before/after attribution, joined
// with its TRAIN-profile character and whether the transform converted
// it. Slots count everything attributed to the branch (mispredict +
// condition-wait, both plain and decomposed forms); Delta is
// BaseSlots-ExpSlots, positive when vanguard recovered slots.
type BranchDelta struct {
	ID             int
	Bias           float64
	Predictability float64
	Converted      bool
	BaseSlots      int64
	ExpSlots       int64
	Delta          int64
}

// BranchDeltas joins the two reports over the union of their BranchIDs,
// sorted most-recovered first (ties by ID). Branch 0 (unassigned) is
// skipped: it aggregates unnumbered control flow, not a static branch.
func (d *AttrDiff) BranchDeltas() []BranchDelta {
	ids := map[int]bool{}
	for i := range d.Base.Branches {
		ids[d.Base.Branches[i].ID] = true
	}
	for i := range d.Exp.Branches {
		ids[d.Exp.Branches[i].ID] = true
	}
	converted := map[int]bool{}
	if d.Transform != nil {
		for i := range d.Transform.Converted {
			converted[d.Transform.Converted[i].ID] = true
		}
	}
	var out []BranchDelta
	for id := range ids {
		if id == 0 {
			continue
		}
		baseRow, expRow := d.Base.Branch(id), d.Exp.Branch(id)
		bd := BranchDelta{
			ID:        id,
			Converted: converted[id],
			BaseSlots: baseRow.TotalSlots(),
			ExpSlots:  expRow.TotalSlots(),
		}
		bd.Delta = bd.BaseSlots - bd.ExpSlots
		if d.Profile != nil {
			if b := d.Profile.ByID[id]; b != nil {
				bd.Bias, bd.Predictability = b.Bias(), b.Predictability()
			}
		}
		out = append(out, bd)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Delta != out[j].Delta {
			return out[i].Delta > out[j].Delta
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CPIStackBars returns the two runs as stacked bars in cycles (slots ÷
// width), segment order attr.Causes().
func (d *AttrDiff) CPIStackBars() (names []string, bars []textplot.StackedBar) {
	for _, c := range attr.Causes() {
		names = append(names, c.Key())
	}
	toCycles := func(r *attr.Report) []float64 {
		st := r.Stack()
		for i := range st {
			st[i] /= float64(r.Width)
		}
		return st
	}
	bars = []textplot.StackedBar{
		{Label: "baseline", Segments: toCycles(d.Base)},
		{Label: "vanguard", Segments: toCycles(d.Exp)},
	}
	return names, bars
}

// WriteAttrDiff renders the differential as terminal text: the stacked
// CPI bars, the per-cause delta table, the per-branch delta table (top
// n), and the offender tables (top mispredicting branches and top
// miss-cost loads of each binary).
func WriteAttrDiff(w io.Writer, d *AttrDiff, topN int) {
	if topN <= 0 {
		topN = 10
	}
	in := ""
	if d.Input.Iters > 0 {
		in = fmt.Sprintf(" seed=%d iters=%d", d.Input.Seed, d.Input.Iters)
	}
	fmt.Fprintf(w, "%s w%d%s: %d -> %d cycles (%+.2f%% speedup)\n",
		d.Benchmark, d.Width, in, d.Base.Cycles, d.Exp.Cycles, d.SpeedupPct())

	names, bars := d.CPIStackBars()
	textplot.StackedBars(w, "cycle stack (cycles by cause)", names, bars, 60)

	fmt.Fprintf(w, "\nper-cause slots (Δ = baseline - vanguard, positive = recovered):\n")
	fmt.Fprintf(w, "  %-14s %12s %12s %12s\n", "cause", "baseline", "vanguard", "delta")
	for _, c := range attr.Causes() {
		b, e := d.Base.Slots[c.Key()], d.Exp.Slots[c.Key()]
		if b == 0 && e == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-14s %12d %12d %+12d\n", c.Key(), b, e, b-e)
	}

	deltas := d.BranchDeltas()
	if len(deltas) > topN {
		deltas = deltas[:topN]
	}
	fmt.Fprintf(w, "\ntop %d branches by recovered slots:\n", len(deltas))
	fmt.Fprintf(w, "  %-6s %-5s %-5s %-4s %12s %12s %12s\n",
		"branch", "bias", "pred", "conv", "baseline", "vanguard", "delta")
	for _, bd := range deltas {
		conv := "-"
		if bd.Converted {
			conv = "yes"
		}
		fmt.Fprintf(w, "  %-6d %5.2f %5.2f %-4s %12d %12d %+12d\n",
			bd.ID, bd.Bias, bd.Predictability, conv, bd.BaseSlots, bd.ExpSlots, bd.Delta)
	}

	WriteAttrTables(w, "baseline", d.Base, topN)
	WriteAttrTables(w, "vanguard", d.Exp, topN)
}

// WriteAttrReport renders one run's attribution standalone (the vgrun
// -attr text surface): its CPI stack as a single stacked bar plus the
// offender tables.
func WriteAttrReport(w io.Writer, title string, r *attr.Report, topN int) {
	var names []string
	for _, c := range attr.Causes() {
		names = append(names, c.Key())
	}
	st := r.Stack()
	for i := range st {
		st[i] /= float64(r.Width)
	}
	textplot.StackedBars(w, title, names, []textplot.StackedBar{{Label: "cycles", Segments: st}}, 60)
	WriteAttrTables(w, "timing", r, topN)
}

// WriteAttrTables renders one binary's offender tables: the top
// mispredicting/stalling branches and the top miss-cost loads.
func WriteAttrTables(w io.Writer, label string, r *attr.Report, topN int) {
	if brs := r.TopBranches(topN); len(brs) > 0 {
		fmt.Fprintf(w, "\n%s: top mispredicting/stalling branches:\n", label)
		fmt.Fprintf(w, "  %-6s %12s %12s %12s %12s\n",
			"branch", "br_misp", "res_misp", "cond_wait", "res_window")
		for _, b := range brs {
			fmt.Fprintf(w, "  %-6d %12d %12d %12d %12d\n",
				b.ID, b.BrMispredict, b.ResMispredict, b.CondWait, b.ResolveWindow)
		}
	}
	if lds := r.TopLoads(topN); len(lds) > 0 {
		fmt.Fprintf(w, "%s: top miss-cost loads:\n", label)
		fmt.Fprintf(w, "  %-8s %12s\n", "pc", "slots")
		for _, l := range lds {
			fmt.Fprintf(w, "  %-8d %12d\n", l.PC, l.Slots)
		}
	}
}

// attrStackCSVHeader is the stable column order of WriteCPIStackCSV.
var attrStackCSVHeader = []string{"benchmark", "width", "binary", "cause", "slots", "cycles"}

// WriteCPIStackCSV exports the two runs' per-cause slot counts as long-form
// CSV (one row per binary × cause), the plotting-friendly companion of
// the stacked text bars. Returns the number of data rows written.
func WriteCPIStackCSV(w io.Writer, d *AttrDiff) (int, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(attrStackCSVHeader); err != nil {
		return 0, err
	}
	rows := 0
	for _, bin := range []struct {
		name string
		rep  *attr.Report
	}{{"base", d.Base}, {"exp", d.Exp}} {
		for _, c := range attr.Causes() {
			slots := bin.rep.Slots[c.Key()]
			rec := []string{
				d.Benchmark, strconv.Itoa(d.Width), bin.name, c.Key(),
				strconv.FormatInt(slots, 10),
				strconv.FormatFloat(float64(slots)/float64(d.Width), 'f', 2, 64),
			}
			if err := cw.Write(rec); err != nil {
				return rows, err
			}
			rows++
		}
	}
	cw.Flush()
	return rows, cw.Error()
}

// attrDeltaCSVHeader is the stable column order of WriteBranchDeltaCSV.
var attrDeltaCSVHeader = []string{
	"benchmark", "width", "branch", "bias", "predictability", "converted",
	"base_slots", "exp_slots", "delta",
}

// WriteBranchDeltaCSV exports the per-branch delta table as CSV, one row
// per static branch, most-recovered first. Returns the data-row count.
func WriteBranchDeltaCSV(w io.Writer, d *AttrDiff) (int, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(attrDeltaCSVHeader); err != nil {
		return 0, err
	}
	rows := 0
	for _, bd := range d.BranchDeltas() {
		conv := "0"
		if bd.Converted {
			conv = "1"
		}
		rec := []string{
			d.Benchmark, strconv.Itoa(d.Width), strconv.Itoa(bd.ID),
			strconv.FormatFloat(bd.Bias, 'f', 4, 64),
			strconv.FormatFloat(bd.Predictability, 'f', 4, 64),
			conv,
			strconv.FormatInt(bd.BaseSlots, 10),
			strconv.FormatInt(bd.ExpSlots, 10),
			strconv.FormatInt(bd.Delta, 10),
		}
		if err := cw.Write(rec); err != nil {
			return rows, err
		}
		rows++
	}
	cw.Flush()
	return rows, cw.Error()
}
