package harness

import (
	"fmt"
	"io"

	"vanguard/internal/trace"
)

// JSONReport converts a set of benchmark results into the shared
// telemetry schema: one BenchReport per benchmark, with the transform
// summary and one RunReport per (input, width, binary).
func JSONReport(tool string, results []*BenchResult) *trace.Report {
	rep := trace.NewReport(tool)
	for _, r := range results {
		br := &trace.BenchReport{
			Name:  r.Config.Name,
			Suite: r.Config.Suite,
		}
		if r.Report != nil {
			br.Transform = r.Report.Telemetry()
		}
		for i := range r.Inputs {
			in := &r.Inputs[i]
			label := fmt.Sprintf("seed=%d,iters=%d", in.Input.Seed, in.Input.Iters)
			for _, wr := range in.Runs {
				base := wr.Base.RunReport("base", wr.Width)
				base.Input = label
				exp := wr.Exp.RunReport("exp", wr.Width)
				exp.Input = label
				br.Runs = append(br.Runs, base, exp)
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, br)
	}
	return rep
}

// WriteJSON renders results as an indented telemetry report.
func WriteJSON(w io.Writer, tool string, results []*BenchResult) error {
	return JSONReport(tool, results).Write(w)
}

// AblationJSON converts ablation sweeps into the telemetry schema.
func AblationJSON(tool string, sweeps map[string][]AblationPoint, order []string) *trace.Report {
	rep := trace.NewReport(tool)
	for _, title := range order {
		ar := &trace.AblationReport{Title: title}
		for _, p := range sweeps[title] {
			ar.Points = append(ar.Points, trace.AblationPoint{Label: p.Label, SpeedupPct: p.SpeedupPct})
		}
		rep.Ablations = append(rep.Ablations, ar)
	}
	return rep
}
