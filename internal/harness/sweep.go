package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"vanguard/internal/engine"
	"vanguard/internal/trace"
)

// SweepArtifactName is the recording persisted next to the run cache, so
// the flight recording of the sweep that populated a cache directory
// lives beside the entries it explains.
const SweepArtifactName = "sweep_trace.json"

// WriteSweepArtifacts renders rec's flight recording and writes every
// requested artifact: the versioned JSON recording to tracePath, the
// Chrome trace_event timeline to chromePath (either may be empty), and —
// when cache is non-nil — a copy of the JSON recording next to the run
// cache. It returns the report so callers can also embed it as the
// `sweep` section of a -json telemetry report. A nil rec is a no-op, so
// CLIs call this unconditionally.
func WriteSweepArtifacts(rec *engine.SweepRecorder, tracePath, chromePath string, cache *engine.Cache) (*trace.SweepReport, error) {
	if rec == nil {
		return nil, nil
	}
	s := rec.Report()
	if tracePath != "" {
		if err := s.WriteFile(tracePath); err != nil {
			return nil, fmt.Errorf("sweep trace: %w", err)
		}
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return nil, fmt.Errorf("sweep chrome trace: %w", err)
		}
		if err := s.WriteChrome(f); err != nil { // WriteChrome closes f
			return nil, fmt.Errorf("sweep chrome trace: %w", err)
		}
	}
	if cache != nil {
		if err := s.WriteFile(filepath.Join(cache.Dir(), SweepArtifactName)); err != nil {
			return nil, fmt.Errorf("sweep trace (cache dir): %w", err)
		}
	}
	return s, nil
}
