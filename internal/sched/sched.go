// Package sched implements the block-local, latency-weighted list
// scheduler applied to BOTH the baseline and the transformed programs, so
// that speedups measured for the decomposed branch transformation come
// from the transformation itself and not from scheduling disparity.
//
// For an in-order machine the instruction order within a block IS the
// issue order, so the scheduler's job is to order independent work (long
// latency loads first) ahead of its consumers while respecting data and
// memory dependences. Memory disambiguation is offset-based: accesses
// through the same base register with different offsets are independent;
// anything else is conservatively ordered (the paper's DBT substrate has
// data-speculation hardware; we only rely on it where provably safe).
package sched

import (
	"sort"

	"vanguard/internal/ir"
	"vanguard/internal/isa"
)

// Model describes the machine the scheduler targets.
type Model struct {
	Width       int
	IntUnits    int
	MemUnits    int
	FPUnits     int
	LoadLatency int // expected load-to-use latency (L1 hit)
}

// DefaultModel returns the Table 1 machine model at the given width.
func DefaultModel(width int) Model {
	return Model{Width: width, IntUnits: 2, MemUnits: 2, FPUnits: 4, LoadLatency: 4}
}

// Program schedules every block of every function in place.
func Program(p *ir.Program, m Model) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			Block(b, m)
		}
	}
}

// latency returns the scheduling latency of an instruction.
func (m Model) latency(ins isa.Instr) int {
	if ins.IsLoad() {
		return m.LoadLatency
	}
	return ins.Op.Latency()
}

// mustOrder reports whether j (later) must stay after i (earlier).
func mustOrder(i, j isa.Instr) bool {
	di, dj := i.Def(), j.Def()
	iu1, iu2, iu3 := i.Uses()
	ju1, ju2, ju3 := j.Uses()
	if di != isa.NoReg && (ju1 == di || ju2 == di || ju3 == di || dj == di) {
		return true // RAW or WAW
	}
	if dj != isa.NoReg && (dj == iu1 || dj == iu2 || dj == iu3) {
		return true // WAR
	}
	// Memory ordering.
	if i.IsMem() && j.IsMem() && (i.IsStore() || j.IsStore()) {
		if i.Src1 == j.Src1 && i.Imm != j.Imm {
			return false // same base, provably disjoint words
		}
		return true
	}
	return false
}

// Block reorders one block in place. Terminators and any control
// instruction (e.g. a mid-block CALL) act as scheduling barriers.
func Block(b *ir.Block, m Model) {
	// Split into barrier-delimited regions; schedule each independently.
	out := make([]isa.Instr, 0, len(b.Instrs))
	start := 0
	for i, ins := range b.Instrs {
		if ins.IsControl() {
			out = append(out, region(b.Instrs[start:i], m)...)
			out = append(out, ins)
			start = i + 1
		}
	}
	out = append(out, region(b.Instrs[start:], m)...)
	b.Instrs = out
}

// region list-schedules a straight-line run of instructions.
func region(ins []isa.Instr, m Model) []isa.Instr {
	n := len(ins)
	if n <= 1 {
		return append([]isa.Instr(nil), ins...)
	}
	// Dependence edges and critical-path priorities.
	succs := make([][]int, n)
	npreds := make([]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if mustOrder(ins[i], ins[j]) {
				succs[i] = append(succs[i], j)
				npreds[j]++
			}
		}
	}
	prio := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		p := 0
		for _, s := range succs[i] {
			if prio[s] > p {
				p = prio[s]
			}
		}
		prio[i] = p + m.latency(ins[i])
	}

	// Greedy machine-model walk.
	readyAt := make([]int, n) // earliest cycle each instruction may start
	done := make([]bool, n)
	var order []int
	cycle := 0
	for len(order) < n {
		var ready []int
		for i := 0; i < n; i++ {
			if !done[i] && npreds[i] == 0 && readyAt[i] <= cycle {
				ready = append(ready, i)
			}
		}
		sort.Slice(ready, func(x, y int) bool {
			if prio[ready[x]] != prio[ready[y]] {
				return prio[ready[x]] > prio[ready[y]]
			}
			return ready[x] < ready[y] // stable: original order
		})
		var used [isa.NumFUClasses]int
		issued := 0
		for _, i := range ready {
			if issued >= m.Width {
				break
			}
			fu := ins[i].Op.Unit()
			limit := m.IntUnits
			switch fu {
			case isa.FUMem:
				limit = m.MemUnits
			case isa.FUFP:
				limit = m.FPUnits
			}
			if used[fu] >= limit {
				continue
			}
			used[fu]++
			issued++
			done[i] = true
			order = append(order, i)
			for _, s := range succs[i] {
				npreds[s]--
				if t := cycle + m.latency(ins[i]); t > readyAt[s] {
					readyAt[s] = t
				}
			}
		}
		cycle++
	}
	out := make([]isa.Instr, n)
	for k, i := range order {
		out[k] = ins[i]
	}
	return out
}
