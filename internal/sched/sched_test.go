package sched

import (
	"testing"

	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

func TestLoadsScheduledEarly(t *testing.T) {
	// add; add; ld; use(ld) — the load should float to the front so its
	// latency overlaps the adds.
	b := &ir.Block{Instrs: []isa.Instr{
		ir.Addi(isa.R(2), isa.R(2), 1),
		ir.Addi(isa.R(3), isa.R(3), 1),
		ir.Ld(isa.R(4), isa.R(1), 0),
		ir.Add(isa.R(5), isa.R(4), isa.R(2)),
	}}
	Block(b, DefaultModel(4))
	if b.Instrs[0].Op != isa.LD {
		t.Errorf("load not hoisted to front:\n%v", b.Instrs)
	}
	if b.Instrs[len(b.Instrs)-1].Op != isa.ADD {
		t.Errorf("dependent use must stay last:\n%v", b.Instrs)
	}
}

func TestTerminatorStaysLast(t *testing.T) {
	b := &ir.Block{Instrs: []isa.Instr{
		ir.Br(isa.R(9), 0),
	}}
	b.Instrs = append([]isa.Instr{
		ir.Ld(isa.R(4), isa.R(1), 0),
		ir.Addi(isa.R(2), isa.R(2), 1),
	}, b.Instrs...)
	Block(b, DefaultModel(4))
	if last := b.Instrs[len(b.Instrs)-1]; last.Op != isa.BR {
		t.Errorf("terminator moved: %v", b.Instrs)
	}
}

func TestMemoryDisambiguation(t *testing.T) {
	// st [r1+0]; ld [r1+8] — provably disjoint: load may pass the store.
	b := &ir.Block{Instrs: []isa.Instr{
		ir.St(isa.R(1), 0, isa.R(2)),
		ir.Ld(isa.R(3), isa.R(1), 8),
		ir.Add(isa.R(4), isa.R(3), isa.R(3)),
	}}
	Block(b, DefaultModel(4))
	if b.Instrs[0].Op != isa.LD {
		t.Errorf("disjoint load did not pass the store: %v", b.Instrs)
	}
	// Same offset: must stay ordered.
	b2 := &ir.Block{Instrs: []isa.Instr{
		ir.St(isa.R(1), 0, isa.R(2)),
		ir.Ld(isa.R(3), isa.R(1), 0),
	}}
	Block(b2, DefaultModel(4))
	if b2.Instrs[0].Op != isa.ST {
		t.Errorf("aliasing load passed the store: %v", b2.Instrs)
	}
	// Different bases: conservatively ordered.
	b3 := &ir.Block{Instrs: []isa.Instr{
		ir.St(isa.R(1), 0, isa.R(2)),
		ir.Ld(isa.R(3), isa.R(5), 0),
	}}
	Block(b3, DefaultModel(4))
	if b3.Instrs[0].Op != isa.ST {
		t.Errorf("may-alias load passed the store: %v", b3.Instrs)
	}
}

func TestCallIsBarrier(t *testing.T) {
	b := &ir.Block{Instrs: []isa.Instr{
		ir.Addi(isa.R(2), isa.R(2), 1),
		ir.Call(0),
		ir.Ld(isa.R(4), isa.R(1), 0),
	}}
	Block(b, DefaultModel(4))
	if b.Instrs[1].Op != isa.CALL {
		t.Errorf("call moved: %v", b.Instrs)
	}
}

// TestSchedulingPreservesSemantics runs a program before/after scheduling
// and compares results.
func TestSchedulingPreservesSemantics(t *testing.T) {
	build := func() *ir.Program {
		f := &ir.Func{Name: "main"}
		init := f.AddBlock("init")
		body := f.AddBlock("body")
		end := f.AddBlock("end")
		f.Emit(init, ir.Li(isa.R(1), mem.FaultBoundary), ir.Li(isa.R(2), 3))
		f.Emit(body,
			ir.Addi(isa.R(3), isa.R(2), 10),
			ir.Ld(isa.R(4), isa.R(1), 0),
			ir.Mul(isa.R(5), isa.R(3), isa.R(2)),
			ir.Add(isa.R(6), isa.R(4), isa.R(5)),
			ir.St(isa.R(1), 8, isa.R(6)),
			ir.Ld(isa.R(7), isa.R(1), 8), // must see the store above
			ir.Addi(isa.R(7), isa.R(7), 1),
			ir.St(isa.R(1), 16, isa.R(7)),
		)
		f.Emit(end, ir.Halt())
		return &ir.Program{Funcs: []*ir.Func{f}}
	}
	gm := mem.New()
	gm.MustStore(mem.FaultBoundary, 100)
	if _, _, err := interp.Run(ir.MustLinearize(build()), gm, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	p := build()
	Program(p, DefaultModel(4))
	sm := mem.New()
	sm.MustStore(mem.FaultBoundary, 100)
	if _, _, err := interp.Run(ir.MustLinearize(p), sm, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	if !sm.Equal(gm) {
		t.Errorf("scheduling changed semantics:\n%s", p)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	b := &ir.Block{}
	Block(b, DefaultModel(2))
	if len(b.Instrs) != 0 {
		t.Error("empty block changed")
	}
	b2 := &ir.Block{Instrs: []isa.Instr{ir.Nop()}}
	Block(b2, DefaultModel(2))
	if len(b2.Instrs) != 1 {
		t.Error("singleton block changed")
	}
}

func TestCMOVDependences(t *testing.T) {
	// cmov reads its destination: a prior write to the dest register must
	// stay ordered before it, and a later read after it.
	b := &ir.Block{Instrs: []isa.Instr{
		ir.Li(isa.R(3), 7),
		{Op: isa.CMOV, Dst: isa.R(3), Src1: isa.R(1), Src2: isa.R(2), Target: -1},
		ir.Add(isa.R(4), isa.R(3), isa.R(3)),
	}}
	Block(b, DefaultModel(4))
	if b.Instrs[0].Op != isa.LI || b.Instrs[1].Op != isa.CMOV || b.Instrs[2].Op != isa.ADD {
		t.Errorf("cmov dependences violated: %v", b.Instrs)
	}
}
