package pipeline

import (
	"encoding/json"
	"testing"

	"vanguard/internal/ir"
	"vanguard/internal/sample"
)

// TestSamplerWindows is the tentpole acceptance gate: with sampling
// enabled, summing every counter over all recorded windows must equal
// the whole-run aggregate — the sampler's telescoping-delta contract,
// checked against a real simulation with branches, mispredictions,
// stalls and cache misses.
func TestSamplerWindows(t *testing.T) {
	for _, window := range []int64{64, 1000, 10_000} {
		prog, m := allocProbeProgram(20_000)
		cfg := DefaultConfig(4)
		cfg.SampleWindow = window
		mach := New(ir.MustLinearize(prog), m, cfg)
		stats, err := mach.Run()
		if err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		if stats.Samples == nil {
			t.Fatalf("window %d: Stats.Samples is nil with sampling enabled", window)
		}
		sr := stats.Samples
		if sr.WindowCycles != window {
			t.Errorf("window %d: WindowCycles = %d", window, sr.WindowCycles)
		}
		if sr.Dropped != 0 {
			t.Errorf("window %d: dropped %d windows on a short run", window, sr.Dropped)
		}
		if len(sr.Windows) == 0 {
			t.Fatalf("window %d: no windows recorded", window)
		}

		var sum sample.Counters
		var prevEnd int64
		maxDBB := 0
		for i := range sr.Windows {
			w := &sr.Windows[i]
			if w.Start != prevEnd {
				t.Fatalf("window %d: window %d not contiguous (start %d, want %d)",
					window, i, w.Start, prevEnd)
			}
			prevEnd = w.End
			sum.Committed += w.Committed
			sum.Issued += w.Issued
			sum.BrMispredicts += w.BrMispredicts
			sum.ResMispredicts += w.ResMispredicts
			sum.RetMispredicts += w.RetMispredicts
			sum.Resolves += w.Resolves
			sum.Predicts += w.Predicts
			sum.Flushes += w.Flushes
			sum.StallEmpty += w.StallEmpty
			sum.StallOperand += w.StallOperand
			sum.StallBranch += w.StallBranch
			sum.StallResolve += w.StallResolve
			sum.StallFU += w.StallFU
			sum.L1IMisses += w.L1IMisses
			sum.L1DMisses += w.L1DMisses
			sum.L2Misses += w.L2Misses
			if w.DBBHighWater > maxDBB {
				maxDBB = w.DBBHighWater
			}
		}
		if prevEnd != stats.Cycles {
			t.Errorf("window %d: last window ends at %d, run has %d cycles",
				window, prevEnd, stats.Cycles)
		}
		want := sample.Counters{
			Committed:      stats.Committed,
			Issued:         stats.Issued,
			BrMispredicts:  stats.BrMispredicts,
			ResMispredicts: stats.ResMispredicts,
			RetMispredicts: stats.RetMispredicts,
			Resolves:       stats.Resolves,
			Predicts:       stats.Predicts,
			Flushes:        stats.Flushes,
			StallEmpty:     stats.EmptyFetchCycles,
			StallOperand:   stats.OperandStallCycles,
			StallBranch:    stats.BranchStallCycles,
			StallResolve:   stats.ResolveStallCycles,
			StallFU:        stats.FUStallCycles,
			L1IMisses:      int64(mach.Hier.L1I.Misses),
			L1DMisses:      int64(mach.Hier.L1D.Misses),
			L2Misses:       int64(mach.Hier.L2.Misses),
		}
		if sum != want {
			t.Errorf("window %d: window sums\n%+v\ndo not equal whole-run aggregates\n%+v",
				window, sum, want)
		}
		if maxDBB != stats.MaxDBBOccupancy {
			t.Errorf("window %d: max per-window DBB high-water %d != MaxDBBOccupancy %d",
				window, maxDBB, stats.MaxDBBOccupancy)
		}
		if sum.BrMispredicts == 0 || sum.StallOperand == 0 {
			t.Errorf("window %d: probe program exercised no mispredicts/stalls (sums %+v)",
				window, sum)
		}
	}
}

// TestSamplingDoesNotPerturbRun pins two invariants at once: a sampled
// run's timing is bit-identical to an unsampled run of the same program
// (the sampler observes, never steers), and with sampling off
// Stats.Samples stays nil so the JSON report is byte-identical to the
// pre-sampler schema.
func TestSamplingDoesNotPerturbRun(t *testing.T) {
	prog, m := allocProbeProgram(20_000)
	plain := New(ir.MustLinearize(prog), m.Clone(), DefaultConfig(4))
	plainStats, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	if plainStats.Samples != nil {
		t.Fatal("Samples non-nil with sampling disabled")
	}

	cfg := DefaultConfig(4)
	cfg.SampleWindow = 512
	sampled := New(ir.MustLinearize(prog), m.Clone(), cfg)
	sampledStats, err := sampled.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := *sampledStats
	got.Samples = nil
	a, _ := json.Marshal(plainStats)
	b, _ := json.Marshal(&got)
	if string(a) != string(b) {
		t.Errorf("sampling changed the run statistics:\nplain   %s\nsampled %s", a, b)
	}
}

// TestSteadyStateZeroAllocsWithSampling extends the zero-alloc gate to a
// sampling machine: closing windows every 1k cycles in the measurement
// loop must still not allocate (the ring is preallocated; Record is
// allocation-free).
func TestSteadyStateZeroAllocsWithSampling(t *testing.T) {
	prog, m := allocProbeProgram(50_000_000)
	cfg := DefaultConfig(4)
	cfg.SampleWindow = 1000
	mach := New(ir.MustLinearize(prog), m, cfg)

	step := func(cycles int) {
		for i := 0; i < cycles; i++ {
			done, err := mach.stepCycle()
			if err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
			if done {
				t.Fatalf("program finished during measurement (cycle %d); enlarge iters", i)
			}
		}
	}
	step(50_000) // warm up

	if allocs := testing.AllocsPerRun(10, func() { step(10_000) }); allocs != 0 {
		t.Fatalf("sampling cycle loop allocates: %v allocs per 10k cycles", allocs)
	}
	if mach.sampler.Len() == 0 {
		t.Fatal("no windows recorded during the measurement loop")
	}
}
