package pipeline

import (
	"errors"
	"fmt"
	"math"

	"vanguard/internal/bpred"
	"vanguard/internal/cache"
	"vanguard/internal/exec"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
	"vanguard/internal/trace"
)

// fetchEntry is one slot of the fetch buffer.
type fetchEntry struct {
	seq       int64
	pc        int
	ins       isa.Instr
	readyAt   int64 // earliest issue cycle (front-end traversal)
	fetchedAt int64 // cycle the entry was fetched (fetch-to-issue telemetry)

	// Speculation metadata captured in the front end.
	predTaken   bool       // BR: predicted direction
	predTarget  int        // RET: RAS-predicted target
	meta        bpred.Meta // BR: predictor metadata
	histCkpt    bpred.Hist // history checkpoint (pre-push)
	rasCkpt     bpred.RASCkpt
	dbbIdx      int // RESOLVE: DBB entry to read at resolution
	dbbTailCkpt int // DBB tail for misprediction repair
	dbbOccCkpt  int // outstanding-decomposed-branch count at fetch
}

// specPoint is an issued-but-unresolved speculation point (BR, RESOLVE or
// RET) with the checkpoints needed to repair a misprediction.
type specPoint struct {
	fe          fetchEntry
	resolveAt   int64
	mispredict  bool
	redirectPC  int
	actualTaken bool // BR: direction; RESOLVE: original branch outcome

	regs     [isa.NumRegs]int64
	poison   [isa.NumRegs]bool
	regReady [isa.NumRegs]int64
	halted   bool

	issuedSnapshot int64
}

type sbEntry struct {
	seq  int64
	addr uint64
	val  int64
}

// sbView gives exec.Step a memory with store-buffer semantics: stores are
// buffered (squashable), loads forward from the youngest matching store.
type sbView struct{ m *Machine }

// Load implements exec.Memory.
func (v sbView) Load(addr uint64) (int64, error) {
	for i := len(v.m.sb) - 1; i >= 0; i-- {
		if v.m.sb[i].addr == addr {
			return v.m.sb[i].val, nil
		}
	}
	return v.m.mem.Load(addr)
}

// Store implements exec.Memory. Fault detection happens eagerly (via a
// probing load) so wrong-path stores to garbage addresses surface as
// deferred faults rather than corrupting the buffer silently.
func (v sbView) Store(addr uint64, val int64) error {
	if _, err := v.m.mem.Load(addr); err != nil {
		return &mem.Fault{Addr: addr, Write: true}
	}
	v.m.sb = append(v.m.sb, sbEntry{seq: v.m.curSeq, addr: addr, val: val})
	return nil
}

// Machine is one configured in-order superscalar with a loaded program.
type Machine struct {
	cfg  Config
	im   *ir.Image
	mem  *mem.Memory
	Hier *cache.Hierarchy
	pred bpred.DirPredictor
	btb  *bpred.BTB
	ras  *bpred.RAS
	DBB  *DBB

	st       *exec.State
	regReady [isa.NumRegs]int64

	fetchPC       int
	fetchStall    int64
	lastFetchLine uint64
	fetchHalted   bool
	// The fetch buffer is a head-indexed queue over a slice whose
	// capacity is pinned at FetchBufEntries: issue pops by advancing
	// fbHead and fbPush compacts the live tail down only when the
	// storage is exhausted, so steady-state fetch never reallocates.
	fb     []fetchEntry
	fbHead int
	seq    int64
	curSeq int64

	inflight []*specPoint
	sb       []sbEntry

	// Sink, when non-nil, receives one typed trace.Event per lifecycle
	// event (fetch, issue, commit, squash, mispredict, resolve firing,
	// DBB push/pop, cache miss, deferred fault). Attach a trace.Ring for
	// post-mortems, a trace.Text for human-readable logs, a trace.Chrome
	// for Perfetto timelines, or trace.Tee for several at once. Set it
	// before Run; a nil sink costs one branch per event site.
	Sink trace.Sink

	dbbOcc int // currently outstanding decomposed branches

	// Issue-head stall run tracking (feeds the StallRun* histograms).
	stallCause uint8
	stallRun   int64
	// repairStart is the cycle of the flush currently being repaired, or
	// -1 when issue has caught up again (feeds RepairPenalty).
	repairStart int64

	nextException int64

	now          int64
	haltSeq      int64
	pendFaultSeq int64
	pendFaultErr error
	underMispred bool

	stats Stats
}

// New builds a machine over the image and memory (mutated during the run).
func New(im *ir.Image, m *mem.Memory, cfg Config) *Machine {
	mach := &Machine{
		cfg:           cfg,
		im:            im,
		mem:           m,
		Hier:          cache.NewHierarchy(cfg.Hier),
		pred:          cfg.NewPredictor(),
		btb:           bpred.NewBTB(cfg.BTBLogEntries),
		ras:           bpred.NewRAS(cfg.RASEntries),
		DBB:           NewDBB(cfg.DBBEntries),
		fetchPC:       im.Entry,
		lastFetchLine: math.MaxUint64,
		fb:            make([]fetchEntry, 0, cfg.FetchBufEntries),
		haltSeq:       -1,
		pendFaultSeq:  -1,
		repairStart:   -1,
	}
	mach.st = exec.NewState(sbView{mach}, im.Entry)
	mach.nextException = cfg.ExceptionEveryN
	return mach
}

// exceptionPenaltyCycles models the cost of entering and leaving the
// handler (pipeline drain + flush + kernel work stand-in).
const exceptionPenaltyCycles = 30

// takeException injects an exceptional control-flow event at a quiet
// point (no unresolved speculation): the fetch buffer is squashed and
// refetched, a handler penalty is charged, and the handler's own
// decomposed branches move the DBB tail. Under the paper's second
// strategy the surviving entries are invalidated first, so resolves from
// before the event suppress their updates instead of training garbage.
func (m *Machine) takeException() {
	m.stats.Exceptions++
	if m.fbLen() > 0 {
		head := &m.fb[m.fbHead]
		m.fetchPC = head.pc
		m.stats.SquashedFetched += int64(m.fbLen())
		if m.Sink != nil {
			m.Sink.Emit(trace.Event{Kind: trace.KindSquash, Cause: trace.CauseException,
				Cycle: m.now, Seq: head.seq, PC: head.pc, Val: int64(m.fbLen())})
		}
		m.fbClear()
	}
	m.fetchHalted = false
	m.lastFetchLine = math.MaxUint64
	m.fetchStall += exceptionPenaltyCycles
	// Handler activity moves the DBB tail with its own decomposed
	// branches...
	handlerPC := uint64(0xffff0000)
	for i := 0; i < 2; i++ {
		taken, meta := m.pred.Predict(handlerPC + uint64(i*4))
		m.DBB.Insert(handlerPC+uint64(i*4), taken, meta, m.pred.Checkpoint())
		if m.Sink != nil {
			m.Sink.Emit(trace.Event{Kind: trace.KindDBBPush, Cause: trace.CauseException,
				Cycle: m.now, Seq: -1, Val: int64(m.dbbOcc)})
		}
	}
	// ...and under the second strategy, the return to user code marks
	// everything invalid, so stale pairings suppress their updates until
	// the next predict refills the buffer.
	if m.cfg.DBBInvalidateOnException {
		m.DBB.InvalidateAll()
	}
}

// Stats returns the run statistics (valid after Run).
func (m *Machine) Stats() *Stats { return &m.stats }

// Memory returns the machine's architectural memory (for post-run
// verification against a golden model).
func (m *Machine) Memory() *mem.Memory { return m.mem }

// Run simulates to HALT (or an instruction/cycle cap) and returns stats.
func (m *Machine) Run() (*Stats, error) {
	maxCycles := m.cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 2_000_000_000
	}
	if m.Sink != nil && m.Hier.OnMiss == nil {
		m.Hier.OnMiss = func(ms cache.Miss) {
			cause := trace.CauseDCache
			if ms.Inst {
				cause = trace.CauseICache
			}
			m.Sink.Emit(trace.Event{Kind: trace.KindCacheMiss, Cause: cause,
				Cycle: m.now, Seq: -1, Addr: ms.Addr, Val: ms.Latency})
		}
	}
	for {
		if m.now >= maxCycles {
			m.finishStats()
			return &m.stats, fmt.Errorf("pipeline: cycle limit %d reached at pc %d", maxCycles, m.fetchPC)
		}
		m.resolve()
		if err := m.commitFaultCheck(); err != nil {
			m.finishStats()
			return &m.stats, err
		}
		m.drainStores()
		if m.cfg.ExceptionEveryN > 0 && len(m.inflight) == 0 &&
			m.stats.Issued-m.stats.WrongPathIssued >= m.nextException {
			m.takeException()
			m.nextException += m.cfg.ExceptionEveryN
		}
		if m.done() {
			break
		}
		m.issue()
		m.fetch()
		m.now++
	}
	m.finishStats()
	return &m.stats, nil
}

// finishStats fills the derived/mirrored Stats fields and flushes any
// open stall run.
func (m *Machine) finishStats() {
	m.endStallRun()
	m.stats.Cycles = m.now
	m.stats.Committed = m.stats.Issued - m.stats.WrongPathIssued
	m.stats.L1DMissRate = m.Hier.L1D.MissRate()
	m.stats.L1IMissRate = m.Hier.L1I.MissRate()
	hits, misses := m.btb.Lookups()
	m.stats.BTBHits, m.stats.BTBMisses = int64(hits), int64(misses)
	m.stats.RASUnderflows = int64(m.ras.Underflows())
}

// done reports whether the committed HALT has drained the machine, or the
// committed-instruction cap is reached.
func (m *Machine) done() bool {
	if m.cfg.MaxInstrs > 0 && m.stats.Issued-m.stats.WrongPathIssued >= m.cfg.MaxInstrs {
		return true
	}
	if m.haltSeq >= 0 && len(m.inflight) == 0 {
		m.stats.Halted = true
		// All speculation resolved: every buffered store is committed.
		m.drainAll()
		return true
	}
	return false
}

// ---- resolution ----

func (m *Machine) resolve() {
	for len(m.inflight) > 0 && m.inflight[0].resolveAt <= m.now {
		sp := m.inflight[0]
		m.inflight = m.inflight[1:]
		fe := &sp.fe
		addr := m.im.PCAddr(fe.pc)

		switch fe.ins.Op {
		case isa.BR:
			m.stats.CondBranches++
			bs := m.stats.branch(fe.ins.BranchID)
			bs.Execs++
			if sp.mispredict {
				m.stats.BrMispredicts++
				bs.Mispredicts++
				m.pred.Restore(fe.histCkpt)
				m.pred.PushHistory(sp.actualTaken)
			}
			m.pred.Update(addr, sp.actualTaken, fe.meta)
			if sp.actualTaken {
				m.btb.Insert(addr, fe.ins.Target)
			}
		case isa.RESOLVE:
			m.stats.Resolves++
			bs := m.stats.branch(fe.ins.BranchID)
			bs.Execs++
			if e, ok := m.DBB.Read(fe.dbbIdx); ok {
				if sp.mispredict {
					// Repair history: rewind to the predict's checkpoint
					// and push the actual outcome of the original branch.
					m.pred.Restore(e.histCkpt)
					m.pred.PushHistory(sp.actualTaken)
				}
				m.pred.Update(e.pc, sp.actualTaken, e.meta)
			}
			if sp.mispredict {
				m.stats.ResMispredicts++
				bs.Mispredicts++
			}
		case isa.RET:
			if sp.mispredict {
				m.stats.RetMispredicts++
			}
		}

		if sp.mispredict {
			if m.Sink != nil {
				cause := trace.CauseBranch
				switch fe.ins.Op {
				case isa.RESOLVE:
					cause = trace.CauseResolve
					m.Sink.Emit(trace.Event{Kind: trace.KindResolveFire, Cause: cause, Cycle: m.now,
						Seq: fe.seq, PC: fe.pc, Ins: fe.ins, Val: int64(sp.redirectPC)})
				case isa.RET:
					cause = trace.CauseReturn
				}
				m.Sink.Emit(trace.Event{Kind: trace.KindMispredict, Cause: cause, Cycle: m.now,
					Seq: fe.seq, PC: fe.pc, Ins: fe.ins, Val: int64(sp.redirectPC)})
			}
			m.flush(sp)
			return
		}
		if m.Sink != nil {
			m.Sink.Emit(trace.Event{Kind: trace.KindCommit, Cycle: m.now,
				Seq: fe.seq, PC: fe.pc, Ins: fe.ins})
		}
	}
}

// flush squashes everything younger than sp and redirects fetch.
func (m *Machine) flush(sp *specPoint) {
	wrongPath := m.stats.Issued - sp.issuedSnapshot
	if m.Sink != nil {
		m.Sink.Emit(trace.Event{Kind: trace.KindSquash, Cycle: m.now,
			Seq: sp.fe.seq, PC: sp.fe.pc, Val: wrongPath + int64(m.fbLen())})
	}
	if m.repairStart < 0 {
		m.repairStart = m.now
	}
	m.stats.WrongPathIssued += wrongPath
	m.stats.SquashedFetched += int64(m.fbLen())
	m.fbClear()
	m.inflight = m.inflight[:0] // all remaining are younger

	// Squash buffered stores younger than the speculation point.
	keep := m.sb[:0]
	for _, e := range m.sb {
		if e.seq < sp.fe.seq {
			keep = append(keep, e)
		}
	}
	m.sb = keep

	m.st.Regs = sp.regs
	m.st.Poison = sp.poison
	m.st.Halted = sp.halted
	m.regReady = sp.regReady

	if m.haltSeq > sp.fe.seq {
		m.haltSeq = -1
	}
	if m.pendFaultSeq > sp.fe.seq {
		m.pendFaultSeq, m.pendFaultErr = -1, nil
	}

	m.ras.Restore(sp.fe.rasCkpt)
	m.DBB.RestoreTail(sp.fe.dbbTailCkpt)
	m.dbbOcc = sp.fe.dbbOccCkpt

	m.fetchPC = sp.redirectPC
	m.fetchHalted = false
	m.fetchStall = 0
	m.lastFetchLine = math.MaxUint64
	m.underMispred = true
	m.stats.Flushes++
}

// commitFaultCheck surfaces a deferred fault once its instruction is no
// longer covered by any older speculation point (i.e. it committed).
func (m *Machine) commitFaultCheck() error {
	if m.pendFaultSeq < 0 {
		return nil
	}
	if len(m.inflight) == 0 || m.inflight[0].fe.seq > m.pendFaultSeq {
		if m.Sink != nil {
			var addr uint64
			var f *mem.Fault
			if errors.As(m.pendFaultErr, &f) {
				addr = f.Addr
			}
			m.Sink.Emit(trace.Event{Kind: trace.KindFault, Cycle: m.now,
				Seq: m.pendFaultSeq, Addr: addr})
		}
		return fmt.Errorf("pipeline: architectural fault at seq %d: %w", m.pendFaultSeq, m.pendFaultErr)
	}
	return nil
}

// ---- store buffer ----

func (m *Machine) frontier() int64 {
	if len(m.inflight) > 0 {
		return m.inflight[0].fe.seq
	}
	return math.MaxInt64
}

func (m *Machine) drainStores() {
	f := m.frontier()
	i := 0
	for i < len(m.sb) && m.sb[i].seq < f {
		m.mem.MustStore(m.sb[i].addr, m.sb[i].val)
		i++
	}
	m.sb = m.sb[i:]
}

func (m *Machine) drainAll() {
	for _, e := range m.sb {
		m.mem.MustStore(e.addr, e.val)
	}
	m.sb = m.sb[:0]
}

// ---- issue ----

// Issue-head stall causes for run-length telemetry. The taxonomy mirrors
// the scalar *StallCycles counters: a "run" is a maximal streak of
// zero-issue cycles blamed on the same cause, ended by an issue or a
// cause change.
const (
	stallNone = iota
	stallEmpty
	stallOperand
	stallBranch
	stallResolve
	stallFU
)

// noteStall accounts one zero-issue cycle to cause, extending or starting
// a run.
func (m *Machine) noteStall(cause uint8) {
	if cause != m.stallCause {
		m.endStallRun()
		m.stallCause = cause
	}
	m.stallRun++
}

// endStallRun closes the open stall run, recording its length in the
// matching histogram.
func (m *Machine) endStallRun() {
	if m.stallRun == 0 {
		return
	}
	switch m.stallCause {
	case stallEmpty:
		m.stats.StallRunEmpty.Observe(m.stallRun)
	case stallOperand:
		m.stats.StallRunOperand.Observe(m.stallRun)
	case stallBranch:
		m.stats.StallRunBranch.Observe(m.stallRun)
	case stallResolve:
		m.stats.StallRunResolve.Observe(m.stallRun)
	case stallFU:
		m.stats.StallRunFU.Observe(m.stallRun)
	}
	m.stallRun, m.stallCause = 0, stallNone
}

func (m *Machine) opReady(r isa.Reg) bool {
	return r == isa.NoReg || m.regReady[r] <= m.now
}

func (m *Machine) fuLimit(fu isa.FU) int {
	switch fu {
	case isa.FUInt:
		return m.cfg.IntUnits
	case isa.FUMem:
		return m.cfg.MemUnits
	default:
		return m.cfg.FPUnits
	}
}

func (m *Machine) issue() {
	issued := 0
	var fuUsed [isa.NumFUClasses]int
	for m.fbLen() > 0 && issued < m.cfg.Width {
		fe := &m.fb[m.fbHead]
		if fe.readyAt > m.now {
			if issued == 0 {
				m.stats.EmptyFetchCycles++
				m.noteStall(stallEmpty)
			}
			return
		}
		a, b, c := fe.ins.Uses()
		if !m.opReady(a) || !m.opReady(b) || !m.opReady(c) {
			if issued == 0 {
				m.stats.OperandStallCycles++
				// Attribute the head-of-line stall to the conditional
				// control point it is delaying: the first BR/RESOLVE in
				// the blocked window (the stalled instruction is usually
				// its condition slice).
				cause := uint8(stallOperand)
				for k := 0; k < m.fbLen() && k < 6; k++ {
					ins := &m.fb[m.fbHead+k].ins
					if ins.Op == isa.RESOLVE {
						m.stats.ResolveStallCycles++
						m.stats.branch(ins.BranchID).StallCycles++
						cause = stallResolve
						break
					}
					if ins.Op == isa.BR {
						m.stats.BranchStallCycles++
						m.stats.branch(ins.BranchID).StallCycles++
						cause = stallBranch
						break
					}
				}
				m.noteStall(cause)
			}
			return
		}
		fu := fe.ins.Op.Unit()
		if fuUsed[fu] >= m.fuLimit(fu) {
			if issued == 0 {
				m.stats.FUStallCycles++
				m.noteStall(stallFU)
			}
			return
		}
		entry := *fe
		m.fbPop()
		fuUsed[fu]++
		issued++
		m.issueOne(entry)
		if entry.ins.Op == isa.HALT {
			return
		}
	}
	if issued == 0 && m.fbLen() == 0 {
		m.stats.EmptyFetchCycles++
		m.noteStall(stallEmpty)
	}
}

func (m *Machine) issueOne(fe fetchEntry) {
	m.stats.Issued++
	m.stats.FetchToIssue.Observe(m.now - fe.fetchedAt)
	if m.stallRun > 0 {
		m.endStallRun()
	}
	if m.repairStart >= 0 {
		m.stats.RepairPenalty.Observe(m.now - m.repairStart)
		m.repairStart = -1
	}
	if m.Sink != nil {
		m.Sink.Emit(trace.Event{Kind: trace.KindIssue, Cycle: m.now,
			Seq: fe.seq, PC: fe.pc, Ins: fe.ins})
	}

	var sp *specPoint
	if op := fe.ins.Op; op == isa.BR || op == isa.RESOLVE || op == isa.RET {
		sp = &specPoint{
			fe:       fe,
			regs:     m.st.Regs,
			poison:   m.st.Poison,
			regReady: m.regReady,
			halted:   m.st.Halted,
		}
	}

	m.st.PC = fe.pc
	m.curSeq = fe.seq
	res, err := exec.Step(m.st, fe.ins, false)
	if err != nil && m.pendFaultSeq < 0 {
		// Defer: real only if this instruction commits.
		m.pendFaultSeq, m.pendFaultErr = fe.seq, err
	}

	completion := m.now + int64(fe.ins.Op.Latency())
	if res.IsMem && err == nil {
		switch {
		case fe.ins.IsLoad():
			if m.sbForwarded(res.MemAddr) {
				completion = m.now + int64(m.cfg.Hier.L1D.Latency)
			} else {
				completion = m.Hier.Data(m.now, res.MemAddr)
			}
		case fe.ins.IsStore():
			m.Hier.Data(m.now, res.MemAddr) // address/tag access; nothing waits
		}
	}
	if d := fe.ins.Def(); d != isa.NoReg {
		m.regReady[d] = completion
	}

	if sp != nil {
		sp.resolveAt = m.now + 1
		switch fe.ins.Op {
		case isa.BR:
			sp.actualTaken = res.CondVal
			sp.mispredict = err == nil && res.CondVal != fe.predTaken
			sp.redirectPC = res.NextPC
		case isa.RESOLVE:
			sp.actualTaken = res.CondVal
			sp.mispredict = err == nil && res.Taken
			sp.redirectPC = res.NextPC
		case isa.RET:
			sp.mispredict = err == nil && res.NextPC != fe.predTarget
			sp.redirectPC = res.NextPC
		}
		sp.issuedSnapshot = m.stats.Issued
		m.inflight = append(m.inflight, sp)
	}

	if fe.ins.Op == isa.HALT {
		m.haltSeq = fe.seq
	}
}

// sbForwarded reports whether a load to addr would have been satisfied by
// the store buffer (used for timing only; the value came via sbView).
func (m *Machine) sbForwarded(addr uint64) bool {
	for i := len(m.sb) - 1; i >= 0; i-- {
		if m.sb[i].addr == addr {
			return true
		}
	}
	return false
}

// ---- fetch buffer queue ----

func (m *Machine) fbLen() int { return len(m.fb) - m.fbHead }

// fbPush appends at the tail, compacting consumed head space only when
// the backing storage is full — occupancy is bounded by FetchBufEntries,
// so the copy moves at most that many entries and amortizes to O(1).
func (m *Machine) fbPush(fe fetchEntry) {
	if len(m.fb) == cap(m.fb) && m.fbHead > 0 {
		n := copy(m.fb, m.fb[m.fbHead:])
		m.fb = m.fb[:n]
		m.fbHead = 0
	}
	m.fb = append(m.fb, fe)
}

func (m *Machine) fbPop() {
	m.fbHead++
	if m.fbHead == len(m.fb) {
		m.fb, m.fbHead = m.fb[:0], 0
	}
}

func (m *Machine) fbClear() {
	m.fb, m.fbHead = m.fb[:0], 0
}

// ---- fetch ----

func (m *Machine) fetch() {
	if m.fetchHalted {
		return
	}
	if m.fetchStall > 0 {
		m.fetchStall--
		return
	}
	fetched := 0
	for fetched < m.cfg.Width && m.fbLen() < m.cfg.FetchBufEntries {
		if m.fetchPC < 0 || m.fetchPC >= len(m.im.Instrs) {
			// Wrong-path fetch ran off the image; wait for the flush.
			m.fetchHalted = true
			return
		}
		addr := m.im.PCAddr(m.fetchPC)
		if line := addr &^ 63; line != m.lastFetchLine {
			extra := m.Hier.Inst(addr)
			m.lastFetchLine = line
			if extra > 0 {
				m.stats.ICacheMisses++
				if m.underMispred {
					m.stats.ICacheMissUnderMispred++
				}
				m.underMispred = false
				m.fetchStall = extra
				return
			}
			m.underMispred = false
		}

		ins := m.im.Instrs[m.fetchPC]
		fe := fetchEntry{
			seq:       m.seq,
			pc:        m.fetchPC,
			ins:       ins,
			readyAt:   m.now + int64(m.cfg.FrontEndDepth) - 1,
			fetchedAt: m.now,
		}
		m.seq++
		fetched++
		m.stats.Fetched++
		if m.Sink != nil {
			m.Sink.Emit(trace.Event{Kind: trace.KindFetch, Cycle: m.now,
				Seq: fe.seq, PC: fe.pc, Ins: ins})
		}

		switch ins.Op {
		case isa.JMP:
			m.fbPush(fe)
			m.fetchPC = ins.Target
			return // taken redirect ends the fetch group
		case isa.CALL:
			m.ras.Push(m.fetchPC + 1)
			m.fbPush(fe)
			m.fetchPC = ins.Target
			return
		case isa.RET:
			fe.rasCkpt = m.ras.Checkpoint()
			tgt, ok := m.ras.Pop()
			if !ok {
				tgt = m.fetchPC + 1 // underflow: sequential guess
			}
			fe.predTarget = tgt
			fe.histCkpt = m.pred.Checkpoint()
			fe.dbbTailCkpt = m.DBB.Tail()
			m.fbPush(fe)
			m.fetchPC = tgt
			return
		case isa.BR:
			fe.histCkpt = m.pred.Checkpoint()
			fe.rasCkpt = m.ras.Checkpoint()
			fe.dbbTailCkpt = m.DBB.Tail()
			fe.dbbOccCkpt = m.dbbOcc
			taken, meta := m.pred.Predict(addr)
			m.pred.PushHistory(taken)
			m.btb.Lookup(addr)
			fe.predTaken, fe.meta = taken, meta
			m.fbPush(fe)
			if taken {
				m.fetchPC = ins.Target
				return
			}
			m.fetchPC++
		case isa.PREDICT:
			// Consumed by the front end: steer fetch, fill the DBB, drop.
			ckpt := m.pred.Checkpoint()
			taken, meta := m.pred.Predict(addr)
			m.pred.PushHistory(taken)
			m.DBB.Insert(addr, taken, meta, ckpt)
			m.stats.Predicts++
			m.dbbOcc++
			if m.dbbOcc > m.stats.MaxDBBOccupancy {
				m.stats.MaxDBBOccupancy = m.dbbOcc
			}
			m.stats.DBBOccupancy.Observe(int64(m.dbbOcc))
			if m.Sink != nil {
				m.Sink.Emit(trace.Event{Kind: trace.KindDBBPush, Cycle: m.now,
					Seq: fe.seq, PC: fe.pc, Ins: ins, Val: int64(m.dbbOcc)})
			}
			if taken {
				m.fetchPC = ins.Target
				return
			}
			m.fetchPC++
		case isa.RESOLVE:
			// Statically predicted not-taken; carries the DBB tail index.
			fe.dbbIdx = m.DBB.Tail()
			fe.dbbTailCkpt = m.DBB.Tail()
			fe.dbbOccCkpt = m.dbbOcc
			fe.histCkpt = m.pred.Checkpoint()
			fe.rasCkpt = m.ras.Checkpoint()
			if m.dbbOcc > 0 {
				m.dbbOcc--
			}
			m.stats.DBBOccupancy.Observe(int64(m.dbbOcc))
			if m.Sink != nil {
				m.Sink.Emit(trace.Event{Kind: trace.KindDBBPop, Cycle: m.now,
					Seq: fe.seq, PC: fe.pc, Ins: ins, Val: int64(m.dbbOcc)})
			}
			m.fbPush(fe)
			m.fetchPC++
		case isa.HALT:
			m.fbPush(fe)
			m.fetchHalted = true
			return
		default:
			m.fbPush(fe)
			m.fetchPC++
		}
	}
}
