package pipeline

import (
	"errors"
	"fmt"
	"math"

	"vanguard/internal/attr"
	"vanguard/internal/bpred"
	"vanguard/internal/cache"
	"vanguard/internal/exec"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
	"vanguard/internal/pipeview"
	"vanguard/internal/sample"
	"vanguard/internal/trace"
)

// fetchEntry is the hot slot of the fetch buffer: only what every
// instruction needs on the fetch→issue path. It deliberately carries no
// isa.Instr and no derivable timing: the instruction word is re-read from
// the immutable image by pc and the earliest issue cycle is
// fetchedAt + FrontEndDepth - 1. Speculation metadata lives in the
// parallel cold array (fetchSpec), so the per-instruction queue copies
// move 24 bytes instead of ~112.
type fetchEntry struct {
	seq       int64
	pc        int
	fetchedAt int64 // cycle the entry was fetched (fetch-to-issue telemetry)
}

// fetchSpec is the cold slot paired with each fetchEntry: speculation
// metadata captured in the front end. Slots are only written (and only
// valid) for ops that issue a speculation point or repair state — BR,
// RESOLVE, RET; for everything else the slot holds stale garbage that is
// never read. Writers must assign the whole struct so unset fields are
// zero, exactly as when this data lived inline in fetchEntry.
type fetchSpec struct {
	predTaken   bool       // BR: predicted direction
	predTarget  int        // RET: RAS-predicted target
	meta        bpred.Meta // BR: predictor metadata
	histCkpt    bpred.Hist // history checkpoint (pre-push)
	rasCkpt     bpred.RASCkpt
	dbbIdx      int // RESOLVE: DBB entry to read at resolution
	dbbTailCkpt int // DBB tail for misprediction repair
	dbbOccCkpt  int // outstanding-decomposed-branch count at fetch
}

// ---- predecode ----

// predecoded caches the per-PC instruction metadata the issue stage needs
// every cycle (register uses/def, functional unit, latency, kind flags),
// so the hot loop indexes one flat array instead of re-deriving it through
// isa switches per issued instruction. Built once per machine at load; the
// image is immutable for the life of the run.
type predecoded struct {
	// kernel is the instruction's compiled semantics (exec.Compile): one
	// direct-through-pointer call replaces exec.Step's megamorphic opcode
	// switch in the issue stage. nil only for an opcode the compiler
	// rejected; predecode surfaces that as its error and Run refuses to
	// start under kernel dispatch (switch dispatch keeps the reference
	// step-time fault behavior).
	kernel exec.Kernel
	// pure is the no-Result/no-error form of a pure register op
	// (exec.CompilePure; nil otherwise): such an op cannot fault, touch
	// memory, or issue a speculation point, so the issue stage skips the
	// kernel's Result construction and error check entirely.
	pure    func(*exec.State)
	uses    [3]isa.Reg
	def     isa.Reg
	op      isa.Op
	fu      isa.FU
	flags   uint8
	latency int32
	branch  int32 // static BranchID (0 = unassigned)
}

// predecoded.flags bits.
const (
	pdLoad  uint8 = 1 << iota // LD or LDS
	pdStore                   // ST
	pdSpec                    // BR, RESOLVE or RET: issues a speculation point
)

// predecode builds the per-PC table, compiling each instruction's kernel
// along the way. The returned error is the first kernel-compile failure
// (an unknown opcode); the table itself is still fully built — under
// switch dispatch the machine runs it exactly as before (the bad opcode
// faults at step time, the reference behavior), while kernel dispatch
// refuses to start.
func predecode(instrs []isa.Instr) ([]predecoded, error) {
	pre := make([]predecoded, len(instrs))
	var firstErr error
	for pc := range instrs {
		ins := &instrs[pc]
		p := &pre[pc]
		p.uses[0], p.uses[1], p.uses[2] = ins.Uses()
		p.def = ins.Def()
		p.op = ins.Op
		p.fu = ins.Op.Unit()
		p.latency = int32(ins.Op.Latency())
		p.branch = int32(ins.BranchID)
		if ins.IsLoad() {
			p.flags |= pdLoad
		}
		if ins.IsStore() {
			p.flags |= pdStore
		}
		if op := ins.Op; op == isa.BR || op == isa.RESOLVE || op == isa.RET {
			p.flags |= pdSpec
		}
		k, err := exec.Compile(ins, pc)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		p.kernel = k
		p.pure = exec.CompilePure(ins)
	}
	return pre, firstErr
}

// ---- speculation checkpoints ----

// specPoint is an issued-but-unresolved speculation point (BR, RESOLVE or
// RET) with the checkpoints needed to repair a misprediction. Register
// state is not copied here: jMark bounds the machine's undo journal, and a
// squash rewinds the journal back to it.
type specPoint struct {
	fe          fetchEntry
	spec        fetchSpec
	resolveAt   int64
	mispredict  bool
	redirectPC  int
	actualTaken bool // BR: direction; RESOLVE: original branch outcome
	halted      bool // architectural Halted at issue

	jMark          int64 // journal high-water mark at issue
	issuedSnapshot int64
}

// regUndo journals one architectural register write: the value, poison bit
// and scoreboard ready-time the write replaced. Rewinding a suffix of the
// journal (newest first) restores the register file exactly to the state
// at any earlier mark — the bounded undo-log replacement for copying the
// full [NumRegs] arrays into every speculation point.
type regUndo struct {
	val    int64
	ready  int64
	writer int32 // last-writer PC the write replaced (operand attribution)
	reg    isa.Reg
	poison bool
}

// debugSnap is the full-copy checkpoint kept per speculation point when
// Config.debugCheckpoints is set; flush cross-checks the journal-rewound
// state against it (differential test support, never on in production).
type debugSnap struct {
	regs     [isa.NumRegs]int64
	poison   [isa.NumRegs]bool
	regReady [isa.NumRegs]int64
	halted   bool
}

// ---- store buffer ----

type sbEntry struct {
	seq  int64
	addr uint64
	val  int64
}

// sbSlots sizes the store buffer's direct-mapped last-writer index.
const sbSlots = 16

// sbSlot caches the youngest buffered store to one address so load
// forwarding stops scanning the whole buffer on deep wrong paths. A slot
// hit requires: same generation (no squash since insert), exact address
// match, and the entry's seq still inside the buffer's live window (not
// yet drained). Anything else falls back to the scan, so collisions are
// only a missed optimization, never a wrong value.
type sbSlot struct {
	addr uint64
	val  int64
	seq  int64
	gen  uint32
}

func sbSlotIdx(addr uint64) int { return int((addr >> 3) & (sbSlots - 1)) }

// sbLookup returns the youngest buffered store to addr, if any.
func (m *Machine) sbLookup(addr uint64) (int64, bool) {
	if s := &m.sbLast[sbSlotIdx(addr)]; s.gen == m.sbGen && s.addr == addr &&
		len(m.sb) > 0 && s.seq >= m.sb[0].seq {
		return s.val, true
	}
	for i := len(m.sb) - 1; i >= 0; i-- {
		if m.sb[i].addr == addr {
			return m.sb[i].val, true
		}
	}
	return 0, false
}

// sbView gives exec.Step a memory with store-buffer semantics: stores are
// buffered (squashable), loads forward from the youngest matching store.
type sbView struct{ m *Machine }

// Load implements exec.Memory. Both legs are allocation-free: forwarding
// hits come from the last-writer index and misses take the paged memory's
// TLB fast path; a faulting (wrong-path) address returns the machine's
// preallocated Fault sentinel.
func (v sbView) Load(addr uint64) (int64, error) {
	m := v.m
	if val, ok := m.sbLookup(addr); ok {
		return val, nil
	}
	if val, ok := m.mem.LoadFast(addr); ok {
		return val, nil
	}
	m.loadFault = mem.Fault{Addr: addr}
	return 0, &m.loadFault
}

// Store implements exec.Memory. Fault detection happens eagerly (pure
// address arithmetic via mem.Valid) so wrong-path stores to garbage
// addresses surface as deferred faults rather than corrupting the buffer
// silently — without the old probing load's page-table lookup or the two
// Fault allocations per speculative store.
func (v sbView) Store(addr uint64, val int64) error {
	m := v.m
	if !mem.Valid(addr) {
		m.storeFault = mem.Fault{Addr: addr, Write: true}
		return &m.storeFault
	}
	m.sb = append(m.sb, sbEntry{seq: m.curSeq, addr: addr, val: val})
	m.sbLast[sbSlotIdx(addr)] = sbSlot{addr: addr, val: val, seq: m.curSeq, gen: m.sbGen}
	return nil
}

// Machine is one configured in-order superscalar with a loaded program.
type Machine struct {
	cfg  Config
	im   *ir.Image
	mem  *mem.Memory
	Hier *cache.Hierarchy
	pred bpred.DirPredictor
	btb  *bpred.BTB
	ras  *bpred.RAS
	DBB  *DBB

	st       *exec.State
	regReady [isa.NumRegs]int64
	pre      []predecoded
	feDelay  int64 // FrontEndDepth-1: fetched at c, issues no earlier than c+feDelay

	// useKernels mirrors cfg.Dispatch == exec.DispatchKernels for the
	// issue hot path; preErr is predecode's kernel-compile error (nil for
	// any program made of known opcodes) and blocks Run only under kernel
	// dispatch.
	useKernels bool
	preErr     error

	fetchPC       int
	fetchStall    int64
	lastFetchLine uint64
	fetchHalted   bool
	// The fetch buffer is a power-of-two ring: fbHead indexes the oldest
	// entry, fbCnt is the occupancy (bounded by FetchBufEntries), and
	// fbMask wraps indexes. A ring never compacts — the buffer runs full
	// in steady state (fetch refills what issue drains every cycle), so a
	// compacting queue would memmove nearly the whole buffer per cycle —
	// and entries keep stable addresses between push and pop.
	// fbSpec is the index-aligned cold array (see fetchSpec).
	fb     []fetchEntry
	fbSpec []fetchSpec
	fbHead int
	fbCnt  int
	fbMask int
	seq    int64
	curSeq int64

	// In-flight speculation points, a head-indexed FIFO of values (same
	// compaction discipline as the fetch buffer; no per-branch heap
	// allocation). Register state for squash repair lives in the journal.
	inflight []specPoint
	infHead  int

	// The register undo journal. journal[i] describes the (jBase+i)-th
	// architectural register write since the last release; specPoint
	// marks are absolute, so releasing a committed prefix is a cheap
	// copy-down that never touches the marks.
	journal []regUndo
	jBase   int64

	sb     []sbEntry
	sbLast [sbSlots]sbSlot
	sbGen  uint32

	// brStats memoizes stats.branch by BranchID: the per-branch books are
	// charged on every branch issue and stall scan, and a slice index
	// beats the map probe on that path. The map in Stats stays the
	// exported (and serialized) form.
	brStats []*BranchStats

	// Preallocated fault sentinels: wrong-path probes hit these instead
	// of allocating, and a fault that is actually deferred is copied into
	// pendFault so later probes cannot clobber it.
	loadFault  mem.Fault
	storeFault mem.Fault
	pendFault  mem.Fault

	// debugSnaps holds the full-copy checkpoints cross-checked against
	// journal rewinds under Config.debugCheckpoints (tests only).
	debugSnaps map[int64]*debugSnap

	// Sink, when non-nil, receives one typed trace.Event per lifecycle
	// event (fetch, issue, commit, squash, mispredict, resolve firing,
	// DBB push/pop, cache miss, deferred fault). Attach a trace.Ring for
	// post-mortems, a trace.Text for human-readable logs, a trace.Chrome
	// for Perfetto timelines, or trace.Tee for several at once. Set it
	// before Run; a nil sink costs one branch per event site.
	Sink trace.Sink

	dbbOcc int // currently outstanding decomposed branches

	// Pipeline waterfall recorder (nil unless Config.Pipeview). It is a
	// trace sink teed into Sink at Run, so it sees the same event stream
	// as any user-attached sink; Emit is allocation-free and the recorder
	// only observes, so simulated timing is unchanged.
	pview         *pipeview.Recorder
	pviewAttached bool

	// Cycle-window sampler (nil unless Config.SampleWindow > 0). The
	// per-cycle cost of a nil sampler is one nil check in stepCycle;
	// winDBBHigh tracks the occupancy high-water inside the open window
	// with one compare at each DBB push.
	sampler    *sample.Sampler
	winDBBHigh int

	// Cycle attribution (nil unless Config.Attr). attrCause/attrIdx note,
	// per cycle, which cause the issue stage would blame its empty slots
	// on; the repair pair remembers the flushing speculation point so
	// post-flush bubbles charge to the mispredicted branch. regWriter maps
	// each architectural register to the PC of its last writer (journaled
	// like the register file), so an operand stall can name the load that
	// produced the missing value.
	attr               *attr.Recorder
	attrCause          attr.Cause
	attrIdx            int
	attrRepairCause    attr.Cause
	attrRepairIdx      int
	fetchStallIsICache bool
	regWriter          [isa.NumRegs]int32

	// Predictor observatory (nil unless Config.Probe). The probe is
	// attached to the direction predictor at construction (table-level
	// event hooks) and fed the committed resolution stream here at
	// resolve time; it observes and never steers, so simulated timing
	// and all other stats are unchanged.
	probe *bpred.Probe

	// Issue-head stall run tracking (feeds the StallRun* histograms).
	stallCause uint8
	stallRun   int64
	// repairStart is the cycle of the flush currently being repaired, or
	// -1 when issue has caught up again (feeds RepairPenalty).
	repairStart int64

	nextException int64

	now          int64
	haltSeq      int64
	pendFaultSeq int64
	pendFaultErr error
	underMispred bool

	stats Stats
}

// New builds a machine over the image and memory (mutated during the run).
func New(im *ir.Image, m *mem.Memory, cfg Config) *Machine {
	pre, preErr := predecode(im.Instrs)
	mach := newShared(im, m, cfg, pre, cfg.Hier.Geom())
	mach.preErr = preErr
	return mach
}

// newShared builds a machine over caller-supplied predecode and cache
// geometry. Both are derived deterministically from (im, cfg), so a
// machine built here is indistinguishable from New's — this is the
// constructor LaneGroup uses to amortize the per-lane setup across a
// group of same-image machines.
func newShared(im *ir.Image, m *mem.Memory, cfg Config, pre []predecoded, geom cache.HierGeom) *Machine {
	mach := &Machine{
		cfg:           cfg,
		im:            im,
		mem:           m,
		Hier:          cache.NewHierarchyWithGeom(cfg.Hier, geom),
		pred:          cfg.NewPredictor(),
		btb:           bpred.NewBTB(cfg.BTBLogEntries),
		ras:           bpred.NewRAS(cfg.RASEntries),
		DBB:           NewDBB(cfg.DBBEntries),
		pre:           pre,
		feDelay:       int64(cfg.FrontEndDepth) - 1,
		fetchPC:       im.Entry,
		lastFetchLine: math.MaxUint64,
		fb:            make([]fetchEntry, ringSize(cfg.FetchBufEntries)),
		fbSpec:        make([]fetchSpec, ringSize(cfg.FetchBufEntries)),
		fbMask:        ringSize(cfg.FetchBufEntries) - 1,
		inflight:      make([]specPoint, 0, 2*cfg.Width+4),
		journal:       make([]regUndo, 0, 64),
		sb:            make([]sbEntry, 0, 64),
		haltSeq:       -1,
		pendFaultSeq:  -1,
		repairStart:   -1,
		useKernels:    cfg.Dispatch == exec.DispatchKernels,
	}
	mach.st = exec.NewState(sbView{mach}, im.Entry)
	mach.nextException = cfg.ExceptionEveryN
	if cfg.Attr || cfg.Probe {
		maxID := 0
		for i := range im.Instrs {
			if id := im.Instrs[i].BranchID; id > maxID {
				maxID = id
			}
		}
		if cfg.Attr {
			mach.attr = attr.NewRecorder(len(im.Instrs), maxID, cfg.Width)
		}
		if cfg.Probe {
			mach.probe = bpred.NewProbe(maxID)
			mach.probe.Attach(mach.pred)
		}
	}
	for r := range mach.regWriter {
		mach.regWriter[r] = -1
	}
	if cfg.SampleWindow > 0 {
		mach.sampler = sample.New(cfg.SampleWindow, 0)
		if cfg.Attr {
			mach.sampler.EnableAttr()
		}
	}
	if cfg.Pipeview != nil {
		mach.pview = pipeview.NewRecorder(*cfg.Pipeview)
	}
	return mach
}

// attachPipeview tees the waterfall recorder into the event sink (idempotent;
// called at Run so a caller-assigned Sink is already in place).
func (m *Machine) attachPipeview() {
	if m.pview != nil && !m.pviewAttached {
		m.Sink = trace.Tee(m.Sink, m.pview)
		m.pviewAttached = true
	}
}

// exceptionPenaltyCycles models the cost of entering and leaving the
// handler (pipeline drain + flush + kernel work stand-in).
const exceptionPenaltyCycles = 30

// takeException injects an exceptional control-flow event at a quiet
// point (no unresolved speculation): the fetch buffer is squashed and
// refetched, a handler penalty is charged, and the handler's own
// decomposed branches move the DBB tail. Under the paper's second
// strategy the surviving entries are invalidated first, so resolves from
// before the event suppress their updates instead of training garbage.
func (m *Machine) takeException() {
	m.stats.Exceptions++
	if m.fbLen() > 0 {
		head := m.fbAt(0)
		m.fetchPC = head.pc
		m.stats.SquashedFetched += int64(m.fbLen())
		if m.Sink != nil {
			m.Sink.Emit(trace.Event{Kind: trace.KindSquash, Cause: trace.CauseException,
				Cycle: m.now, Seq: head.seq, PC: head.pc, Val: int64(m.fbLen())})
		}
		m.fbClear()
	}
	m.fetchHalted = false
	m.lastFetchLine = math.MaxUint64
	m.fetchStall += exceptionPenaltyCycles
	m.fetchStallIsICache = false
	// Handler activity moves the DBB tail with its own decomposed
	// branches...
	handlerPC := uint64(0xffff0000)
	for i := 0; i < 2; i++ {
		taken, meta := m.pred.Predict(handlerPC + uint64(i*4))
		m.DBB.Insert(handlerPC+uint64(i*4), taken, meta, m.pred.Checkpoint())
		if m.Sink != nil {
			m.Sink.Emit(trace.Event{Kind: trace.KindDBBPush, Cause: trace.CauseException,
				Cycle: m.now, Seq: -1, Val: int64(m.dbbOcc)})
		}
	}
	// ...and under the second strategy, the return to user code marks
	// everything invalid, so stale pairings suppress their updates until
	// the next predict refills the buffer.
	if m.cfg.DBBInvalidateOnException {
		m.DBB.InvalidateAll()
	}
}

// Stats returns the run statistics (valid after Run).
func (m *Machine) Stats() *Stats { return &m.stats }

// Memory returns the machine's architectural memory (for post-run
// verification against a golden model).
func (m *Machine) Memory() *mem.Memory { return m.mem }

// stepCycle advances the machine by one cycle: resolve speculation, surface
// committed faults, drain committed stores, inject exceptions, then issue
// and fetch. It returns done=true when the run is over (HALT drained or an
// instruction cap hit) and a non-nil error on an architectural fault.
//
// The cycle is split into three phases so LaneGroup can interleave them
// across lanes (all resolves, then all issues, then all fetches, which
// keeps the shared image/predecode tables hot across the group) while a
// scalar machine runs them back to back. The phases touch only per-machine
// state, so the interleaving cannot change any lane's results.
func (m *Machine) stepCycle() (done bool, err error) {
	if done, err := m.resolvePhase(); done || err != nil {
		return done, err
	}
	m.issuePhase()
	m.fetchPhase()
	return false, nil
}

// resolvePhase is the back half of a cycle: resolve speculation, surface
// committed faults, drain committed stores, inject exceptions, and report
// completion. done/err have stepCycle's meaning; when either is set the
// remaining phases must not run.
func (m *Machine) resolvePhase() (done bool, err error) {
	m.resolve()
	if err := m.commitFaultCheck(); err != nil {
		return true, err
	}
	m.drainStores()
	if m.cfg.ExceptionEveryN > 0 && m.infLen() == 0 &&
		m.stats.Issued-m.stats.WrongPathIssued >= m.nextException {
		m.takeException()
		m.nextException += m.cfg.ExceptionEveryN
	}
	return m.done(), nil
}

// issuePhase runs the issue stage, attribution-wrapped when enabled.
func (m *Machine) issuePhase() {
	if m.attr == nil {
		m.issue()
		return
	}
	issuedBefore := m.stats.Issued
	m.attrCause, m.attrIdx = attr.Fetch, 0
	m.issue()
	m.chargeAttr(int(m.stats.Issued - issuedBefore))
}

// fetchPhase runs fetch, advances the clock, and closes a sample window
// that ended on this cycle.
func (m *Machine) fetchPhase() {
	m.fetch()
	m.now++
	if m.sampler != nil && m.now >= m.sampler.NextAt() {
		m.closeSampleWindow()
	}
}

// closeSampleWindow records the just-finished cycle window and re-arms
// the in-window DBB high-water tracker. Allocation-free (the sampler's
// ring is preallocated).
func (m *Machine) closeSampleWindow() {
	m.sampler.Record(m.now, m.sampleCounters(), m.winDBBHigh)
	m.winDBBHigh = m.dbbOcc
}

// sampleCounters snapshots the cumulative counters the sampler
// differences. Committed is derived as Issued-WrongPathIssued because
// Stats.Committed is only materialized in finishStats; the difference
// telescopes identically.
func (m *Machine) sampleCounters() sample.Counters {
	c := sample.Counters{
		Committed:      m.stats.Issued - m.stats.WrongPathIssued,
		Issued:         m.stats.Issued,
		BrMispredicts:  m.stats.BrMispredicts,
		ResMispredicts: m.stats.ResMispredicts,
		RetMispredicts: m.stats.RetMispredicts,
		Resolves:       m.stats.Resolves,
		Predicts:       m.stats.Predicts,
		Flushes:        m.stats.Flushes,

		StallEmpty:   m.stats.EmptyFetchCycles,
		StallOperand: m.stats.OperandStallCycles,
		StallBranch:  m.stats.BranchStallCycles,
		StallResolve: m.stats.ResolveStallCycles,
		StallFU:      m.stats.FUStallCycles,

		L1IMisses: int64(m.Hier.L1I.Misses),
		L1DMisses: int64(m.Hier.L1D.Misses),
		L2Misses:  int64(m.Hier.L2.Misses),
	}
	if m.attr != nil {
		c.Attr = m.attr.Totals()
	}
	return c
}

// ---- cycle attribution ----

// chargeAttr charges the cycle's slots after the issue stage ran: issued
// slots to base work, the rest to the cause the issue stage noted. Until
// the first post-flush issue, empty slots belong to the mispredicted
// branch being repaired, whatever the front end is doing meanwhile.
func (m *Machine) chargeAttr(issued int) {
	cause, idx := m.attrCause, m.attrIdx
	if issued == 0 && m.repairStart >= 0 {
		cause, idx = m.attrRepairCause, m.attrRepairIdx
	}
	m.attr.ChargeCycle(issued, cause, idx)
}

// attrNoteFrontEnd blames a cycle with nothing issuable: an outstanding
// fetch stall (I-cache miss or exception penalty), an over-subscribed
// DBB, or a plain front-end bubble.
func (m *Machine) attrNoteFrontEnd() {
	switch {
	case m.fetchStall > 0 && m.fetchStallIsICache:
		m.attrCause, m.attrIdx = attr.ICache, 0
	case m.fetchStall > 0:
		m.attrCause, m.attrIdx = attr.Exception, 0
	case m.dbbOcc > m.cfg.DBBEntries:
		m.attrCause, m.attrIdx = attr.DBBFull, 0
	default:
		m.attrCause, m.attrIdx = attr.Fetch, 0
	}
}

// attrNoteOperand blames an operand stall: a BR/RESOLVE in the blocked
// issue window (charged to that branch's condition, mirroring the
// stall-counter taxonomy), else the producer of the first missing operand
// — split out per load PC when the producer is an in-flight load.
func (m *Machine) attrNoteOperand(pd *predecoded) {
	for k := 0; k < m.fbLen() && k < 6; k++ {
		kpd := &m.pre[m.fbAt(k).pc]
		if kpd.op == isa.RESOLVE {
			m.attrCause, m.attrIdx = attr.ResolveWindow, int(kpd.branch)
			return
		}
		if kpd.op == isa.BR {
			m.attrCause, m.attrIdx = attr.CondWait, int(kpd.branch)
			return
		}
	}
	for _, r := range pd.uses {
		if !m.opReady(r) {
			if wpc := m.regWriter[r]; wpc >= 0 && m.pre[wpc].flags&pdLoad != 0 {
				m.attrCause, m.attrIdx = attr.LoadWait, int(wpc)
				return
			}
			break
		}
	}
	m.attrCause, m.attrIdx = attr.OperandWait, 0
}

// prepareRun attaches the waterfall recorder and the cache-miss event
// bridge and returns the effective cycle cap — the setup common to
// Machine.Run and LaneGroup.Run.
func (m *Machine) prepareRun() int64 {
	maxCycles := m.cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 2_000_000_000
	}
	m.attachPipeview()
	if m.Sink != nil && m.Hier.OnMiss == nil {
		m.Hier.OnMiss = func(ms cache.Miss) {
			cause := trace.CauseDCache
			if ms.Inst {
				cause = trace.CauseICache
			}
			m.Sink.Emit(trace.Event{Kind: trace.KindCacheMiss, Cause: cause,
				Cycle: m.now, Seq: -1, Addr: ms.Addr, Val: ms.Latency})
		}
	}
	return maxCycles
}

// cycleLimitErr is the error a run reports when it hits the cycle cap.
func (m *Machine) cycleLimitErr(maxCycles int64) error {
	return fmt.Errorf("pipeline: cycle limit %d reached at pc %d", maxCycles, m.fetchPC)
}

// compileErr reports the kernel-compile error that blocks this machine
// from running, or nil. Only kernel dispatch refuses to start: switch
// dispatch is the reference semantics and keeps the step-time fault.
func (m *Machine) compileErr() error {
	if m.useKernels {
		return m.preErr
	}
	return nil
}

// Run simulates to HALT (or an instruction/cycle cap) and returns stats.
func (m *Machine) Run() (*Stats, error) {
	if err := m.compileErr(); err != nil {
		m.finishStats()
		return &m.stats, err
	}
	maxCycles := m.prepareRun()
	for {
		if m.now >= maxCycles {
			m.finishStats()
			return &m.stats, m.cycleLimitErr(maxCycles)
		}
		done, err := m.stepCycle()
		if err != nil {
			m.finishStats()
			return &m.stats, err
		}
		if done {
			break
		}
	}
	m.finishStats()
	return &m.stats, nil
}

// finishStats fills the derived/mirrored Stats fields and flushes any
// open stall run.
func (m *Machine) finishStats() {
	m.endStallRun()
	m.stats.Cycles = m.now
	m.stats.Committed = m.stats.Issued - m.stats.WrongPathIssued
	m.stats.L1DMissRate = m.Hier.L1D.MissRate()
	m.stats.L1IMissRate = m.Hier.L1I.MissRate()
	hits, misses := m.btb.Lookups()
	m.stats.BTBHits, m.stats.BTBMisses = int64(hits), int64(misses)
	m.stats.RASUnderflows = int64(m.ras.Underflows())
	if m.sampler != nil {
		m.sampler.Flush(m.now, m.sampleCounters(), m.winDBBHigh)
		m.stats.Samples = m.sampler.Series()
	}
	if m.attr != nil {
		m.stats.Attr = m.attr.Report()
	}
	if m.probe != nil {
		m.stats.Bpred = m.probe.Report(m.pred)
	}
	if m.pview != nil {
		m.pview.Finalize(m.now, m.infLen() == 0)
		m.stats.Pipeview = m.pview.Report()
	}
}

// done reports whether the committed HALT has drained the machine, or the
// committed-instruction cap is reached.
func (m *Machine) done() bool {
	if m.cfg.MaxInstrs > 0 && m.stats.Issued-m.stats.WrongPathIssued >= m.cfg.MaxInstrs {
		return true
	}
	if m.haltSeq >= 0 && m.infLen() == 0 {
		m.stats.Halted = true
		// All speculation resolved: every buffered store is committed.
		m.drainAll()
		return true
	}
	return false
}

// ---- in-flight speculation queue ----

func (m *Machine) infLen() int { return len(m.inflight) - m.infHead }

func (m *Machine) infFront() *specPoint { return &m.inflight[m.infHead] }

// infPush appends at the tail, compacting consumed head space only when
// the backing storage is full (occupancy is bounded by the issue width,
// since every speculation point resolves the cycle after it issues).
func (m *Machine) infPush(sp specPoint) {
	if len(m.inflight) == cap(m.inflight) && m.infHead > 0 {
		n := copy(m.inflight, m.inflight[m.infHead:])
		m.inflight = m.inflight[:n]
		m.infHead = 0
	}
	m.inflight = append(m.inflight, sp)
}

func (m *Machine) infPop() {
	m.infHead++
	if m.infHead == len(m.inflight) {
		m.inflight, m.infHead = m.inflight[:0], 0
	}
}

func (m *Machine) infClear() {
	m.inflight, m.infHead = m.inflight[:0], 0
}

// ---- register undo journal ----

// jMark returns the absolute journal position; writes recorded at or after
// a speculation point's mark are younger than it.
func (m *Machine) jMark() int64 { return m.jBase + int64(len(m.journal)) }

// journalWrite records the pre-write state of register d.
func (m *Machine) journalWrite(d isa.Reg) {
	m.journal = append(m.journal, regUndo{
		val:    m.st.Regs[d],
		ready:  m.regReady[d],
		writer: m.regWriter[d],
		reg:    d,
		poison: m.st.Poison[d],
	})
}

// rewindJournal undoes register writes newest-first back to mark and
// truncates the journal there, restoring the register file, poison bits
// and scoreboard exactly as they were when the mark was taken.
func (m *Machine) rewindJournal(mark int64) {
	tgt := int(mark - m.jBase)
	for i := len(m.journal) - 1; i >= tgt; i-- {
		u := &m.journal[i]
		m.st.Regs[u.reg] = u.val
		m.st.Poison[u.reg] = u.poison
		m.regReady[u.reg] = u.ready
		m.regWriter[u.reg] = u.writer
	}
	m.journal = m.journal[:tgt]
}

// releaseJournal discards undo records older than the oldest in-flight
// speculation point — no surviving mark can reach them. The copy-down
// moves at most the live window (bounded by the issue width), so it
// amortizes to O(1) per committed speculation point.
func (m *Machine) releaseJournal() {
	keep := m.jBase + int64(len(m.journal))
	if m.infLen() > 0 {
		keep = m.infFront().jMark
	}
	cut := int(keep - m.jBase)
	if cut <= 0 {
		return
	}
	n := copy(m.journal, m.journal[cut:])
	m.journal = m.journal[:n]
	m.jBase = keep
}

// ---- resolution ----

func (m *Machine) resolve() {
	for m.infLen() > 0 && m.infFront().resolveAt <= m.now {
		// sp stays a pointer into the queue's backing array: infPop only
		// advances the head, and nothing pushes before this iteration is
		// done with it.
		sp := m.infFront()
		m.infPop()
		fe := &sp.fe
		ins := &m.im.Instrs[fe.pc]
		addr := m.im.PCAddr(fe.pc)

		switch ins.Op {
		case isa.BR:
			m.stats.CondBranches++
			bs := m.branchStats(ins.BranchID)
			bs.Execs++
			if sp.mispredict {
				m.stats.BrMispredicts++
				bs.Mispredicts++
				m.pred.Restore(sp.spec.histCkpt)
				m.pred.PushHistory(sp.actualTaken)
			}
			m.pred.Update(addr, sp.actualTaken, sp.spec.meta)
			if m.probe != nil {
				m.probe.ObserveResolve(ins.BranchID, sp.actualTaken, sp.mispredict, &sp.spec.meta)
			}
			if sp.actualTaken {
				m.btb.Insert(addr, ins.Target)
			}
		case isa.RESOLVE:
			m.stats.Resolves++
			bs := m.branchStats(ins.BranchID)
			bs.Execs++
			if e, ok := m.DBB.Read(sp.spec.dbbIdx); ok {
				if sp.mispredict {
					// Repair history: rewind to the predict's checkpoint
					// and push the actual outcome of the original branch.
					m.pred.Restore(e.histCkpt)
					m.pred.PushHistory(sp.actualTaken)
				}
				m.pred.Update(e.pc, sp.actualTaken, e.meta)
				if m.probe != nil {
					m.probe.ObserveResolve(ins.BranchID, sp.actualTaken, sp.mispredict, &e.meta)
				}
			} else if m.probe != nil {
				// The DBB entry was recycled or invalidated: the update is
				// suppressed, but the resolution still counts toward the
				// outcome stream and the conservation books.
				m.probe.ObserveResolve(ins.BranchID, sp.actualTaken, sp.mispredict, nil)
			}
			if sp.mispredict {
				m.stats.ResMispredicts++
				bs.Mispredicts++
			}
		case isa.RET:
			if sp.mispredict {
				m.stats.RetMispredicts++
			}
		}

		if sp.mispredict {
			if m.Sink != nil {
				cause := trace.CauseBranch
				switch ins.Op {
				case isa.RESOLVE:
					cause = trace.CauseResolve
					m.Sink.Emit(trace.Event{Kind: trace.KindResolveFire, Cause: cause, Cycle: m.now,
						Seq: fe.seq, PC: fe.pc, Ins: *ins, Val: int64(sp.redirectPC)})
				case isa.RET:
					cause = trace.CauseReturn
				}
				m.Sink.Emit(trace.Event{Kind: trace.KindMispredict, Cause: cause, Cycle: m.now,
					Seq: fe.seq, PC: fe.pc, Ins: *ins, Val: int64(sp.redirectPC)})
			}
			m.flush(sp)
			return
		}
		m.releaseJournal()
		if m.cfg.debugCheckpoints {
			delete(m.debugSnaps, fe.seq)
		}
		if m.Sink != nil {
			m.Sink.Emit(trace.Event{Kind: trace.KindCommit, Cycle: m.now,
				Seq: fe.seq, PC: fe.pc, Ins: *ins})
		}
	}
}

// flush squashes everything younger than sp and redirects fetch.
func (m *Machine) flush(sp *specPoint) {
	wrongPath := m.stats.Issued - sp.issuedSnapshot
	if m.Sink != nil {
		cause := trace.CauseReturn
		switch m.im.Instrs[sp.fe.pc].Op {
		case isa.BR:
			cause = trace.CauseBranch
		case isa.RESOLVE:
			cause = trace.CauseResolve
		}
		m.Sink.Emit(trace.Event{Kind: trace.KindSquash, Cause: cause, Cycle: m.now,
			Seq: sp.fe.seq, PC: sp.fe.pc, Val: wrongPath + int64(m.fbLen())})
	}
	if m.repairStart < 0 {
		m.repairStart = m.now
	}
	if m.attr != nil {
		// Blame the refill bubbles ahead on this flush, and re-charge the
		// wrong-path slots it already wasted from base work to the
		// mispredicted branch.
		cause, id := attr.RetMispredict, 0
		switch m.im.Instrs[sp.fe.pc].Op {
		case isa.BR:
			cause, id = attr.BrMispredict, m.im.Instrs[sp.fe.pc].BranchID
		case isa.RESOLVE:
			cause, id = attr.ResMispredict, m.im.Instrs[sp.fe.pc].BranchID
		}
		m.attrRepairCause, m.attrRepairIdx = cause, id
		m.attr.MoveWrongPath(cause, id, wrongPath)
	}
	m.stats.WrongPathIssued += wrongPath
	m.stats.SquashedFetched += int64(m.fbLen())
	m.fbClear()
	m.infClear() // all remaining are younger

	// Squash buffered stores younger than the speculation point, and
	// invalidate the last-writer index wholesale (generation bump).
	keep := m.sb[:0]
	for _, e := range m.sb {
		if e.seq < sp.fe.seq {
			keep = append(keep, e)
		}
	}
	m.sb = keep
	m.sbGen++

	// Rewind wrong-path register writes, then discard the now-dead
	// journal (nothing is in flight anymore).
	m.rewindJournal(sp.jMark)
	m.releaseJournal()
	m.st.Halted = sp.halted
	m.verifyCheckpoint(sp)

	if m.haltSeq > sp.fe.seq {
		m.haltSeq = -1
	}
	if m.pendFaultSeq > sp.fe.seq {
		m.pendFaultSeq, m.pendFaultErr = -1, nil
	}

	m.ras.Restore(sp.spec.rasCkpt)
	m.DBB.RestoreTail(sp.spec.dbbTailCkpt)
	m.dbbOcc = sp.spec.dbbOccCkpt

	m.fetchPC = sp.redirectPC
	m.fetchHalted = false
	m.fetchStall = 0
	m.lastFetchLine = math.MaxUint64
	m.underMispred = true
	m.stats.Flushes++
}

// verifyCheckpoint cross-checks the journal-rewound state against the full
// snapshot taken at issue (Config.debugCheckpoints only; no-op otherwise).
func (m *Machine) verifyCheckpoint(sp *specPoint) {
	if !m.cfg.debugCheckpoints {
		return
	}
	snap := m.debugSnaps[sp.fe.seq]
	if snap == nil {
		panic(fmt.Sprintf("pipeline: no debug snapshot for speculation point seq %d", sp.fe.seq))
	}
	if m.st.Regs != snap.regs || m.st.Poison != snap.poison ||
		m.regReady != snap.regReady || m.st.Halted != snap.halted {
		panic(fmt.Sprintf("pipeline: undo-log restore diverged from full snapshot at seq %d (pc %d)",
			sp.fe.seq, sp.fe.pc))
	}
	clear(m.debugSnaps) // every other pending snapshot was squashed
}

// commitFaultCheck surfaces a deferred fault once its instruction is no
// longer covered by any older speculation point (i.e. it committed).
func (m *Machine) commitFaultCheck() error {
	if m.pendFaultSeq < 0 {
		return nil
	}
	if m.infLen() == 0 || m.infFront().fe.seq > m.pendFaultSeq {
		if m.Sink != nil {
			var addr uint64
			var f *mem.Fault
			if errors.As(m.pendFaultErr, &f) {
				addr = f.Addr
			}
			m.Sink.Emit(trace.Event{Kind: trace.KindFault, Cycle: m.now,
				Seq: m.pendFaultSeq, Addr: addr})
		}
		return fmt.Errorf("pipeline: architectural fault at seq %d: %w", m.pendFaultSeq, m.pendFaultErr)
	}
	return nil
}

// ---- store buffer drain ----

func (m *Machine) frontier() int64 {
	if m.infLen() > 0 {
		return m.infFront().fe.seq
	}
	return math.MaxInt64
}

func (m *Machine) drainStores() {
	f := m.frontier()
	i := 0
	for i < len(m.sb) && m.sb[i].seq < f {
		m.mem.MustStore(m.sb[i].addr, m.sb[i].val)
		i++
	}
	if i > 0 {
		n := copy(m.sb, m.sb[i:])
		m.sb = m.sb[:n]
	}
}

func (m *Machine) drainAll() {
	for _, e := range m.sb {
		m.mem.MustStore(e.addr, e.val)
	}
	m.sb = m.sb[:0]
}

// ---- issue ----

// Issue-head stall causes for run-length telemetry. The taxonomy mirrors
// the scalar *StallCycles counters: a "run" is a maximal streak of
// zero-issue cycles blamed on the same cause, ended by an issue or a
// cause change.
const (
	stallNone = iota
	stallEmpty
	stallOperand
	stallBranch
	stallResolve
	stallFU
)

// noteStall accounts one zero-issue cycle to cause, extending or starting
// a run.
func (m *Machine) noteStall(cause uint8) {
	if cause != m.stallCause {
		m.endStallRun()
		m.stallCause = cause
	}
	m.stallRun++
}

// endStallRun closes the open stall run, recording its length in the
// matching histogram.
func (m *Machine) endStallRun() {
	if m.stallRun == 0 {
		return
	}
	switch m.stallCause {
	case stallEmpty:
		m.stats.StallRunEmpty.Observe(m.stallRun)
	case stallOperand:
		m.stats.StallRunOperand.Observe(m.stallRun)
	case stallBranch:
		m.stats.StallRunBranch.Observe(m.stallRun)
	case stallResolve:
		m.stats.StallRunResolve.Observe(m.stallRun)
	case stallFU:
		m.stats.StallRunFU.Observe(m.stallRun)
	}
	m.stallRun, m.stallCause = 0, stallNone
}

func (m *Machine) opReady(r isa.Reg) bool {
	return r == isa.NoReg || m.regReady[r] <= m.now
}

func (m *Machine) fuLimit(fu isa.FU) int {
	switch fu {
	case isa.FUInt:
		return m.cfg.IntUnits
	case isa.FUMem:
		return m.cfg.MemUnits
	default:
		return m.cfg.FPUnits
	}
}

func (m *Machine) issue() {
	issued := 0
	var fuUsed [isa.NumFUClasses]int
	for m.fbLen() > 0 && issued < m.cfg.Width {
		fe := m.fbAt(0)
		if fe.fetchedAt+m.feDelay > m.now {
			if issued == 0 {
				m.stats.EmptyFetchCycles++
				m.noteStall(stallEmpty)
			}
			if m.attr != nil {
				m.attrNoteFrontEnd()
			}
			return
		}
		pd := &m.pre[fe.pc]
		if !m.opReady(pd.uses[0]) || !m.opReady(pd.uses[1]) || !m.opReady(pd.uses[2]) {
			if issued == 0 {
				m.stats.OperandStallCycles++
				// Attribute the head-of-line stall to the conditional
				// control point it is delaying: the first BR/RESOLVE in
				// the blocked window (the stalled instruction is usually
				// its condition slice).
				cause := uint8(stallOperand)
				for k := 0; k < m.fbLen() && k < 6; k++ {
					kpc := m.fbAt(k).pc
					kpd := &m.pre[kpc]
					if kpd.op == isa.RESOLVE {
						m.stats.ResolveStallCycles++
						m.branchStats(m.im.Instrs[kpc].BranchID).StallCycles++
						cause = stallResolve
						break
					}
					if kpd.op == isa.BR {
						m.stats.BranchStallCycles++
						m.branchStats(m.im.Instrs[kpc].BranchID).StallCycles++
						cause = stallBranch
						break
					}
				}
				m.noteStall(cause)
			}
			if m.attr != nil {
				m.attrNoteOperand(pd)
			}
			return
		}
		fu := pd.fu
		if fuUsed[fu] >= m.fuLimit(fu) {
			if issued == 0 {
				m.stats.FUStallCycles++
				m.noteStall(stallFU)
			}
			if m.attr != nil {
				m.attrCause, m.attrIdx = attr.FUContention, 0
			}
			return
		}
		fuUsed[fu]++
		issued++
		// fe/fs stay valid across the pop: fbPop only advances the head,
		// and nothing pushes until the next fetch stage.
		fs := &m.fbSpec[m.fbHead]
		m.fbPop()
		m.issueOne(fe, fs, pd)
		if pd.op == isa.HALT {
			// Post-HALT drain: remaining slots are front-end bubbles.
			if m.attr != nil {
				m.attrCause, m.attrIdx = attr.Fetch, 0
			}
			return
		}
	}
	if issued == 0 && m.fbLen() == 0 {
		m.stats.EmptyFetchCycles++
		m.noteStall(stallEmpty)
	}
	if m.attr != nil && m.fbLen() == 0 {
		m.attrNoteFrontEnd()
	}
}

func (m *Machine) issueOne(fe *fetchEntry, fs *fetchSpec, pd *predecoded) {
	m.stats.Issued++
	m.stats.FetchToIssue.Observe(m.now - fe.fetchedAt)
	if m.stallRun > 0 {
		m.endStallRun()
	}
	if m.repairStart >= 0 {
		m.stats.RepairPenalty.Observe(m.now - m.repairStart)
		m.repairStart = -1
	}
	if m.Sink != nil {
		m.Sink.Emit(trace.Event{Kind: trace.KindIssue, Cycle: m.now,
			Seq: fe.seq, PC: fe.pc, Ins: m.im.Instrs[fe.pc]})
	}

	isSpec := pd.flags&pdSpec != 0
	var jmark int64
	var wasHalted bool
	if isSpec {
		jmark, wasHalted = m.jMark(), m.st.Halted
		if m.cfg.debugCheckpoints {
			if m.debugSnaps == nil {
				m.debugSnaps = map[int64]*debugSnap{}
			}
			m.debugSnaps[fe.seq] = &debugSnap{
				regs: m.st.Regs, poison: m.st.Poison,
				regReady: m.regReady, halted: m.st.Halted,
			}
		}
	}
	// Journal the pre-write state only when a mark could reach it: a
	// write with nothing in flight and no spec point issuing here can
	// never be rewound (every future mark is taken after it), so the
	// busiest path skips the journal entirely. A spec instruction takes
	// its own mark above, before its def write, so it always journals.
	if d := pd.def; d != isa.NoReg && (isSpec || m.infLen() > 0) {
		m.journalWrite(d)
	}

	m.st.PC = fe.pc
	m.curSeq = fe.seq
	var res exec.Result
	var err error
	if m.useKernels {
		if pd.pure != nil {
			// Pure register op: no fault, no memory access, no
			// speculation point — nothing downstream reads res or err,
			// so skip the kernel's Result/error return entirely.
			pd.pure(m.st)
			m.st.PC = fe.pc + 1
		} else {
			res, err = pd.kernel(m.st)
		}
	} else {
		res, err = exec.Step(m.st, &m.im.Instrs[fe.pc], false)
	}
	if err != nil && m.pendFaultSeq < 0 {
		// Defer: real only if this instruction commits. Copy a sentinel
		// Fault into stable storage so later wrong-path probes (which
		// reuse the sentinel) cannot clobber the deferred one.
		perr := err
		if f, ok := perr.(*mem.Fault); ok {
			m.pendFault = *f
			perr = &m.pendFault
		}
		m.pendFaultSeq, m.pendFaultErr = fe.seq, perr
	}

	completion := m.now + int64(pd.latency)
	if res.IsMem && err == nil {
		switch {
		case pd.flags&pdLoad != 0:
			if _, fwd := m.sbLookup(res.MemAddr); fwd {
				completion = m.now + int64(m.cfg.Hier.L1D.Latency)
			} else {
				completion = m.Hier.Data(m.now, res.MemAddr)
			}
		case pd.flags&pdStore != 0:
			m.Hier.Data(m.now, res.MemAddr) // address/tag access; nothing waits
		}
	}
	if d := pd.def; d != isa.NoReg {
		m.regReady[d] = completion
		m.regWriter[d] = int32(fe.pc)
	}
	if m.Sink != nil {
		// Writeback telemetry: emitted now (the scoreboard ready time is
		// known at issue), with the writeback cycle in Val.
		m.Sink.Emit(trace.Event{Kind: trace.KindComplete, Cycle: m.now,
			Seq: fe.seq, PC: fe.pc, Val: completion})
	}

	if isSpec {
		sp := specPoint{
			fe:        *fe,
			spec:      *fs,
			resolveAt: m.now + 1,
			halted:    wasHalted,
			jMark:     jmark,
		}
		switch pd.op {
		case isa.BR:
			sp.actualTaken = res.CondVal
			sp.mispredict = err == nil && res.CondVal != fs.predTaken
			sp.redirectPC = res.NextPC
		case isa.RESOLVE:
			sp.actualTaken = res.CondVal
			sp.mispredict = err == nil && res.Taken
			sp.redirectPC = res.NextPC
		case isa.RET:
			sp.mispredict = err == nil && res.NextPC != fs.predTarget
			sp.redirectPC = res.NextPC
		}
		sp.issuedSnapshot = m.stats.Issued
		m.infPush(sp)
	}

	if pd.op == isa.HALT {
		m.haltSeq = fe.seq
	}
}

// branchStats is the hot-path face of stats.branch: same map entries,
// BranchID-indexed memo.
func (m *Machine) branchStats(id int) *BranchStats {
	if id < len(m.brStats) {
		if b := m.brStats[id]; b != nil {
			return b
		}
	} else {
		nb := make([]*BranchStats, id+1)
		copy(nb, m.brStats)
		m.brStats = nb
	}
	b := m.stats.branch(id)
	m.brStats[id] = b
	return b
}

// ---- fetch buffer queue ----

// ringSize rounds n up to a power of two so ring indexes wrap with a
// mask instead of a modulo.
func ringSize(n int) int {
	s := 1
	for s < n {
		s <<= 1
	}
	return s
}

func (m *Machine) fbLen() int { return m.fbCnt }

// fbAt returns the k-th entry from the head (k < fbLen()).
func (m *Machine) fbAt(k int) *fetchEntry { return &m.fb[(m.fbHead+k)&m.fbMask] }

// fbPush appends at the tail of the ring; occupancy is bounded by
// FetchBufEntries (<= len(m.fb)), so the slot is always free. It returns
// the entry's cold slot, which holds stale garbage: callers pushing a
// speculation op must assign the whole fetchSpec; everyone else leaves
// it untouched (and it is never read).
func (m *Machine) fbPush(fe fetchEntry) *fetchSpec {
	slot := (m.fbHead + m.fbCnt) & m.fbMask
	m.fb[slot] = fe
	m.fbCnt++
	return &m.fbSpec[slot]
}

func (m *Machine) fbPop() {
	m.fbHead = (m.fbHead + 1) & m.fbMask
	m.fbCnt--
}

func (m *Machine) fbClear() {
	m.fbHead, m.fbCnt = 0, 0
}

// ---- fetch ----

func (m *Machine) fetch() {
	if m.fetchHalted {
		return
	}
	if m.fetchStall > 0 {
		m.fetchStall--
		return
	}
	fetched := 0
	for fetched < m.cfg.Width && m.fbLen() < m.cfg.FetchBufEntries {
		if m.fetchPC < 0 || m.fetchPC >= len(m.im.Instrs) {
			// Wrong-path fetch ran off the image; wait for the flush.
			m.fetchHalted = true
			return
		}
		addr := m.im.PCAddr(m.fetchPC)
		if line := addr &^ 63; line != m.lastFetchLine {
			extra := m.Hier.Inst(addr)
			m.lastFetchLine = line
			if extra > 0 {
				m.stats.ICacheMisses++
				if m.underMispred {
					m.stats.ICacheMissUnderMispred++
				}
				m.underMispred = false
				m.fetchStall = extra
				m.fetchStallIsICache = true
				return
			}
			m.underMispred = false
		}

		ins := &m.im.Instrs[m.fetchPC]
		fe := fetchEntry{
			seq:       m.seq,
			pc:        m.fetchPC,
			fetchedAt: m.now,
		}
		m.seq++
		fetched++
		m.stats.Fetched++
		if m.Sink != nil {
			m.Sink.Emit(trace.Event{Kind: trace.KindFetch, Cycle: m.now,
				Seq: fe.seq, PC: fe.pc, Ins: *ins})
		}

		switch m.pre[m.fetchPC].op {
		case isa.JMP:
			m.fbPush(fe)
			m.fetchPC = ins.Target
			return // taken redirect ends the fetch group
		case isa.CALL:
			m.ras.Push(m.fetchPC + 1)
			m.fbPush(fe)
			m.fetchPC = ins.Target
			return
		case isa.RET:
			rasCkpt := m.ras.Checkpoint()
			tgt, ok := m.ras.Pop()
			if !ok {
				tgt = m.fetchPC + 1 // underflow: sequential guess
			}
			*m.fbPush(fe) = fetchSpec{
				predTarget:  tgt,
				histCkpt:    m.pred.Checkpoint(),
				rasCkpt:     rasCkpt,
				dbbTailCkpt: m.DBB.Tail(),
			}
			m.fetchPC = tgt
			return
		case isa.BR:
			fs := fetchSpec{
				histCkpt:    m.pred.Checkpoint(),
				rasCkpt:     m.ras.Checkpoint(),
				dbbTailCkpt: m.DBB.Tail(),
				dbbOccCkpt:  m.dbbOcc,
			}
			taken, meta := m.pred.Predict(addr)
			m.pred.PushHistory(taken)
			m.btb.Lookup(addr)
			fs.predTaken, fs.meta = taken, meta
			*m.fbPush(fe) = fs
			if taken {
				m.fetchPC = ins.Target
				return
			}
			m.fetchPC++
		case isa.PREDICT:
			// Consumed by the front end: steer fetch, fill the DBB, drop.
			ckpt := m.pred.Checkpoint()
			taken, meta := m.pred.Predict(addr)
			m.pred.PushHistory(taken)
			m.DBB.Insert(addr, taken, meta, ckpt)
			m.stats.Predicts++
			if m.attr != nil && m.dbbOcc >= m.cfg.DBBEntries {
				m.attr.NoteDBBOverflow()
			}
			m.dbbOcc++
			if m.dbbOcc > m.stats.MaxDBBOccupancy {
				m.stats.MaxDBBOccupancy = m.dbbOcc
			}
			if m.dbbOcc > m.winDBBHigh {
				m.winDBBHigh = m.dbbOcc
			}
			m.stats.DBBOccupancy.Observe(int64(m.dbbOcc))
			if m.Sink != nil {
				m.Sink.Emit(trace.Event{Kind: trace.KindDBBPush, Cycle: m.now,
					Seq: fe.seq, PC: fe.pc, Ins: *ins, Val: int64(m.dbbOcc)})
			}
			if taken {
				m.fetchPC = ins.Target
				return
			}
			m.fetchPC++
		case isa.RESOLVE:
			// Statically predicted not-taken; carries the DBB tail index.
			*m.fbPush(fe) = fetchSpec{
				histCkpt:    m.pred.Checkpoint(),
				rasCkpt:     m.ras.Checkpoint(),
				dbbIdx:      m.DBB.Tail(),
				dbbTailCkpt: m.DBB.Tail(),
				dbbOccCkpt:  m.dbbOcc,
			}
			if m.dbbOcc > 0 {
				m.dbbOcc--
			}
			m.stats.DBBOccupancy.Observe(int64(m.dbbOcc))
			if m.Sink != nil {
				m.Sink.Emit(trace.Event{Kind: trace.KindDBBPop, Cycle: m.now,
					Seq: fe.seq, PC: fe.pc, Ins: *ins, Val: int64(m.dbbOcc)})
			}
			m.fetchPC++
		case isa.HALT:
			m.fbPush(fe)
			m.fetchHalted = true
			return
		default:
			m.fbPush(fe)
			m.fetchPC++
		}
	}
}
