package pipeline

import (
	"math/rand"
	"reflect"
	"testing"

	"vanguard/internal/bpred"
	"vanguard/internal/core"
	"vanguard/internal/ir"
	"vanguard/internal/profile"
)

// probeVariants builds the raw and decomposed (PREDICT/RESOLVE) forms of
// a random structured program, so probe tests cover both the BR and the
// DBB-mediated RESOLVE observation paths.
func probeVariants(t *testing.T, seed int64) map[string]*ir.Program {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	prog, _ := randomLoopProgram(r)
	variants := map[string]*ir.Program{"raw": prog.Clone()}
	trans := prog.Clone()
	prof := &profile.Profile{ByID: map[int]*profile.Branch{
		1: {ID: 1, Forward: true, Execs: 10000, Taken: 6000, Correct: 9200},
	}}
	if rep, err := core.Transform(trans, prof, core.DefaultOptions()); err != nil {
		t.Fatalf("seed %d transform: %v", seed, err)
	} else if len(rep.Converted) == 1 {
		variants["decomposed"] = trans
	}
	return variants
}

// TestBpredProbeOffByteIdentical pins the off-path contract from the
// other side: a probed run's stats, with the Bpred section nulled out,
// must be byte-identical to an unprobed run of the same program — the
// observatory observes and never steers.
func TestBpredProbeOffByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		prog, m := randomLoopProgram(r)
		for _, w := range []int{2, 4} {
			plain := New(ir.MustLinearize(prog.Clone()), m.Clone(), DefaultConfig(w))
			plainStats, err := plain.Run()
			if err != nil {
				t.Fatalf("seed %d w%d plain: %v", seed, w, err)
			}
			if plainStats.Bpred != nil {
				t.Fatal("probe-off run carries a Bpred section")
			}

			cfg := DefaultConfig(w)
			cfg.Probe = true
			probed := New(ir.MustLinearize(prog.Clone()), m.Clone(), cfg)
			probedStats, err := probed.Run()
			if err != nil {
				t.Fatalf("seed %d w%d probed: %v", seed, w, err)
			}
			if probedStats.Bpred == nil {
				t.Fatal("probed run missing its Bpred section")
			}
			probedStats.Bpred = nil
			if !reflect.DeepEqual(plainStats, probedStats) {
				t.Fatalf("seed %d w%d: the probe changed the stats", seed, w)
			}
			if !plain.Memory().Equal(probed.Memory()) {
				t.Fatalf("seed %d w%d: the probe changed architectural memory", seed, w)
			}
		}
	}
}

// TestBpredProbeConservation is the pipeline-level conservation pin: on
// raw and decomposed random programs — including runs with exception
// injection invalidating DBB entries, which suppresses updates but not
// resolutions — the study's classified branches must sum exactly to the
// pipeline's own resolution and misprediction totals, and every
// per-branch digest must agree with Stats.PerBranch.
func TestBpredProbeConservation(t *testing.T) {
	resolvesSeen, suppressedSeen := int64(0), false
	for seed := int64(0); seed < 10; seed++ {
		for name, p := range probeVariants(t, seed) {
			r := rand.New(rand.NewSource(seed))
			_, m := randomLoopProgram(r) // same seed: the memory image matches the program
			for _, exn := range []int64{0, 256} {
				cfg := DefaultConfig(4)
				cfg.Probe = true
				cfg.ExceptionEveryN = exn
				cfg.DBBInvalidateOnException = exn > 0
				mach := New(ir.MustLinearize(p.Clone()), m.Clone(), cfg)
				st, err := mach.Run()
				if err != nil {
					t.Fatalf("seed %d %s exn%d: %v", seed, name, exn, err)
				}
				rep := st.Bpred
				if rep == nil {
					t.Fatal("no study report")
				}
				if err := rep.CheckAgainst(st.CondBranches+st.Resolves, st.BrMispredicts+st.ResMispredicts); err != nil {
					t.Fatalf("seed %d %s exn%d: %v", seed, name, exn, err)
				}
				for i := range rep.Branches {
					d := &rep.Branches[i]
					bs := st.PerBranch[d.ID]
					if bs == nil {
						t.Fatalf("seed %d %s: digest for branch %d has no PerBranch entry", seed, name, d.ID)
					}
					if bs.Execs != d.Execs || bs.Mispredicts != d.Mispredicts {
						t.Fatalf("seed %d %s: branch %d digest (%d execs, %d misp) != PerBranch (%d, %d)",
							seed, name, d.ID, d.Execs, d.Mispredicts, bs.Execs, bs.Mispredicts)
					}
				}
				resolvesSeen += rep.Resolves
				if rep.Updates < rep.Resolves {
					suppressedSeen = true
				}
			}
		}
	}
	if resolvesSeen == 0 {
		t.Fatal("no resolutions exercised")
	}
	if !suppressedSeen {
		t.Error("no suppressed updates exercised; the meta-less RESOLVE path never ran")
	}
}

// TestBpredProbeSteadyStateZeroAllocs extends the zero-alloc pin to a
// probed machine with the deepest predictor (ISL-TAGE, every hook
// active): once warmed up, the cycle loop with full observation must not
// allocate.
func TestBpredProbeSteadyStateZeroAllocs(t *testing.T) {
	prog, m := allocProbeProgram(50_000_000)
	cfg := DefaultConfig(4)
	cfg.Probe = true
	cfg.NewPredictor = func() bpred.DirPredictor { return bpred.ByName("isl-tage") }
	mach := New(ir.MustLinearize(prog), m, cfg)

	step := func(cycles int) {
		for i := 0; i < cycles; i++ {
			done, err := mach.stepCycle()
			if err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
			if done {
				t.Fatalf("program finished during measurement (cycle %d); enlarge iters", i)
			}
		}
	}
	step(50_000) // warm up

	if allocs := testing.AllocsPerRun(10, func() { step(10_000) }); allocs != 0 {
		t.Fatalf("probed steady-state cycle loop allocates: %v allocs per 10k cycles", allocs)
	}
}
