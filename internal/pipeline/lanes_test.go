package pipeline

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"vanguard/internal/ir"
	"vanguard/internal/mem"
	"vanguard/internal/pipeview"
	"vanguard/internal/trace"
)

// laneVariants clones base W times and overwrites the branch-outcome
// script with lane-specific random content, so the lanes share an image
// but diverge in control flow, flush behavior, and run length — the
// shape of a sweep over seeds.
func laneVariants(r *rand.Rand, base *mem.Memory, w int) []*mem.Memory {
	const dataBase = int64(1 << 20)
	mems := make([]*mem.Memory, w)
	for i := range mems {
		mems[i] = base.Clone()
		for off := int64(0); off < 256*8; off += 8 {
			mems[i].MustStore(uint64(dataBase+2048+off), int64(r.Intn(2)))
		}
	}
	return mems
}

// statsJSON marshals one lane's full Stats (counters, histograms, and
// any attached telemetry reports) for byte-level comparison.
func statsJSON(t *testing.T, st *Stats) []byte {
	t.Helper()
	buf, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	return buf
}

// TestLaneGroupMatchesScalar is the lane-core correctness oracle: every
// lane of a W-wide group must produce byte-identical Stats JSON and
// identical architectural memory to the same unit run through a scalar
// Machine, across random programs and machine widths.
func TestLaneGroupMatchesScalar(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		prog, base := randomLoopProgram(r)
		im := ir.MustLinearize(prog)
		mems := laneVariants(r, base, 6)

		for _, w := range []int{2, 4} {
			cfg := DefaultConfig(w)

			scalarStats := make([][]byte, len(mems))
			scalarMems := make([]*mem.Memory, len(mems))
			for i := range mems {
				sm := mems[i].Clone()
				st, err := New(im, sm, cfg).Run()
				if err != nil {
					t.Fatalf("seed %d w%d lane %d scalar: %v", seed, w, i, err)
				}
				scalarStats[i] = statsJSON(t, st)
				scalarMems[i] = sm
			}

			laneMems := make([]*mem.Memory, len(mems))
			for i := range mems {
				laneMems[i] = mems[i].Clone()
			}
			g := NewLaneGroup(im, laneMems, cfg)
			stats, errs := g.Run()
			for i := range mems {
				if errs[i] != nil {
					t.Fatalf("seed %d w%d lane %d: %v", seed, w, i, errs[i])
				}
				if got := statsJSON(t, stats[i]); !bytes.Equal(got, scalarStats[i]) {
					t.Fatalf("seed %d w%d lane %d: stats diverged from scalar\nscalar: %s\nlaned:  %s",
						seed, w, i, scalarStats[i], got)
				}
				if !laneMems[i].Equal(scalarMems[i]) {
					t.Fatalf("seed %d w%d lane %d: architectural memory diverged", seed, w, i)
				}
			}
		}
	}
}

// TestLaneGroupSingleLaneMatchesScalar pins the degenerate group: a
// one-lane group is exactly a scalar run.
func TestLaneGroupSingleLaneMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	prog, base := randomLoopProgram(r)
	im := ir.MustLinearize(prog)
	cfg := DefaultConfig(4)

	sm := base.Clone()
	want, err := New(im, sm, cfg).Run()
	if err != nil {
		t.Fatalf("scalar: %v", err)
	}

	lm := base.Clone()
	g := NewLaneGroup(im, []*mem.Memory{lm}, cfg)
	stats, errs := g.Run()
	if errs[0] != nil {
		t.Fatalf("lane: %v", errs[0])
	}
	if !bytes.Equal(statsJSON(t, want), statsJSON(t, stats[0])) {
		t.Fatal("single-lane group diverged from scalar run")
	}
	if !lm.Equal(sm) {
		t.Fatal("single-lane group memory diverged from scalar run")
	}
}

// TestLaneGroupIndependentRetirement pins the masking contract: lanes
// that finish early are masked out while the rest keep stepping, and a
// lane that hits its cycle cap reports the same error a scalar run does
// without disturbing its neighbours.
func TestLaneGroupIndependentRetirement(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	prog, base := randomLoopProgram(r)
	im := ir.MustLinearize(prog)
	mems := laneVariants(r, base, 4)

	// Cap cycles low enough that some lanes die early; the surviving
	// lanes must still match their scalar runs exactly.
	cfg := DefaultConfig(4)
	cfg.MaxCycles = 300

	type ref struct {
		stats []byte
		err   string
	}
	refs := make([]ref, len(mems))
	for i := range mems {
		st, err := New(im, mems[i].Clone(), cfg).Run()
		refs[i].stats = statsJSON(t, st)
		if err != nil {
			refs[i].err = err.Error()
		}
	}

	laneMems := make([]*mem.Memory, len(mems))
	for i := range mems {
		laneMems[i] = mems[i].Clone()
	}
	stats, errs := NewLaneGroup(im, laneMems, cfg).Run()
	for i := range mems {
		gotErr := ""
		if errs[i] != nil {
			gotErr = errs[i].Error()
		}
		if gotErr != refs[i].err {
			t.Fatalf("lane %d: error %q, scalar %q", i, gotErr, refs[i].err)
		}
		if got := statsJSON(t, stats[i]); !bytes.Equal(got, refs[i].stats) {
			t.Fatalf("lane %d: stats diverged from scalar under cycle cap", i)
		}
	}
}

// TestLaneGroupObserverHooks pins the observer contract under lanes:
// attribution, the cycle-window sampler, and the pipeview recorder are
// all strictly per-lane state, so a laned run with every hook enabled
// must reproduce each lane's scalar telemetry reports byte for byte —
// hooks work per lane rather than being rejected.
func TestLaneGroupObserverHooks(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	prog, base := randomLoopProgram(r)
	im := ir.MustLinearize(prog)
	mems := laneVariants(r, base, 4)

	cfg := DefaultConfig(4)
	cfg.Attr = true
	cfg.SampleWindow = 64
	cfg.Pipeview = &pipeview.Config{MaxRecords: 1 << 14, MaxFlushes: 1 << 12}

	scalar := make([][]byte, len(mems))
	for i := range mems {
		st, err := New(im, mems[i].Clone(), cfg).Run()
		if err != nil {
			t.Fatalf("lane %d scalar: %v", i, err)
		}
		if st.Attr == nil || st.Samples == nil || st.Pipeview == nil {
			t.Fatalf("lane %d scalar: missing telemetry report (attr=%v samples=%v pipeview=%v)",
				i, st.Attr != nil, st.Samples != nil, st.Pipeview != nil)
		}
		scalar[i] = statsJSON(t, st)
	}

	laneMems := make([]*mem.Memory, len(mems))
	for i := range mems {
		laneMems[i] = mems[i].Clone()
	}
	stats, errs := NewLaneGroup(im, laneMems, cfg).Run()
	for i := range mems {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if st := stats[i]; st.Attr == nil || st.Samples == nil || st.Pipeview == nil {
			t.Fatalf("lane %d: missing telemetry report under lanes", i)
		}
		if got := statsJSON(t, stats[i]); !bytes.Equal(got, scalar[i]) {
			t.Fatalf("lane %d: telemetry diverged from scalar under observers", i)
		}
	}
}

// TestLaneGroupPerLaneSinks pins that a trace sink attached to one lane
// observes only that lane's event stream: the per-lane ring matches the
// ring of the equivalent scalar run.
func TestLaneGroupPerLaneSinks(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	prog, base := randomLoopProgram(r)
	im := ir.MustLinearize(prog)
	mems := laneVariants(r, base, 3)
	cfg := DefaultConfig(4)

	want := make([][]trace.Event, len(mems))
	for i := range mems {
		ring := trace.NewRing(1 << 12)
		mach := New(im, mems[i].Clone(), cfg)
		mach.Sink = ring
		if _, err := mach.Run(); err != nil {
			t.Fatalf("lane %d scalar: %v", i, err)
		}
		want[i] = append([]trace.Event(nil), ring.Events()...)
	}

	laneMems := make([]*mem.Memory, len(mems))
	for i := range mems {
		laneMems[i] = mems[i].Clone()
	}
	g := NewLaneGroup(im, laneMems, cfg)
	rings := make([]*trace.Ring, len(mems))
	for i := range rings {
		rings[i] = trace.NewRing(1 << 12)
		g.Lane(i).Sink = rings[i]
	}
	_, errs := g.Run()
	for i := range mems {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		got := rings[i].Events()
		if len(got) != len(want[i]) {
			t.Fatalf("lane %d: %d events, scalar %d", i, len(got), len(want[i]))
		}
		for k := range got {
			if got[k] != want[i][k] {
				t.Fatalf("lane %d event %d: %+v != scalar %+v", i, k, got[k], want[i][k])
			}
		}
	}
}
