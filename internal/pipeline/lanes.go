package pipeline

import (
	"vanguard/internal/ir"
	"vanguard/internal/mem"
)

// DefaultLanes is the lane-group width used when a caller asks for
// automatic laning (harness.Options.Lanes == 0, the CLIs' `-lanes 0`).
// Under quantum rotation only one lane's mutable state is hot at a time,
// so width costs little; eight lanes amortizes the shared
// predecode/image setup over enough machines to matter while keeping
// per-group skew (lanes finish within laneQuantum of each other) small.
const DefaultLanes = 8

// LaneGroup steps W independent machines as one scheduling unit. The
// lanes share everything immutable — the program image, the predecode
// table, the derived cache-tag geometry, the Config — and own everything
// mutable: fetch queue, scoreboard, store buffer, predictor state,
// caches, stats. Because no mutable state crosses lanes, each lane's
// architectural and telemetry results are byte-identical to the same
// unit run through a scalar Machine; grouping only changes host-side
// scheduling (lanes rotate in bounded quanta over the shared tables).
//
// Lanes retire independently: a lane that halts, faults, or hits its
// cycle cap is masked out of the live set and the rest keep stepping —
// a short program never barriers on a long one.
type LaneGroup struct {
	lanes []*Machine
	stats []*Stats
	errs  []error
}

// NewLaneGroup builds one machine per memory, all over the same image and
// config. The predecode table and cache-tag geometry are derived once and
// shared by every lane (they are read-only for the life of the run);
// mems[i] becomes lane i's architectural memory. Lane i's results are
// identical to New(im, mems[i], cfg).Run()'s.
func NewLaneGroup(im *ir.Image, mems []*mem.Memory, cfg Config) *LaneGroup {
	pre, preErr := predecode(im.Instrs)
	geom := cfg.Hier.Geom()
	g := &LaneGroup{
		lanes: make([]*Machine, len(mems)),
		stats: make([]*Stats, len(mems)),
		errs:  make([]error, len(mems)),
	}
	for i, m := range mems {
		g.lanes[i] = newShared(im, m, cfg, pre, geom)
		g.lanes[i].preErr = preErr
	}
	return g
}

// Lanes returns the group width.
func (g *LaneGroup) Lanes() int { return len(g.lanes) }

// Lane returns lane i's machine, e.g. to attach a trace sink before Run
// or to read its memory for post-run verification. Observer state is
// strictly per lane: a sink attached to lane i sees only lane i's events.
func (g *LaneGroup) Lane(i int) *Machine { return g.lanes[i] }

// laneQuantum is how many simulated cycles one lane steps per rotation
// turn. Lanes are independent, so any interleaving yields identical
// results; the quantum exists purely for host locality. Per-cycle
// rotation measured as a monotonic loss — W lanes' mutable state (fetch
// ring, scoreboard, store buffer, caches, predictor tables) evicts each
// other from the host cache every simulated cycle — and small quanta
// still pay a working-set refill on every switch, so the quantum is
// sized to make the refill negligible against the turn (a 64k-cycle
// turn is milliseconds of host time) while still bounding the skew
// between lanes, so a group's lanes finish near each other rather than
// strictly serially.
const laneQuantum = 1 << 16

// Run steps every lane to completion and returns per-lane stats and
// errors (indexes match the mems passed to NewLaneGroup). stats[i] is
// always non-nil and errs[i] follows Machine.Run's contract: nil on a
// clean halt, the architectural fault or cycle-cap error otherwise.
//
// Scheduling is quantum rotation: each live lane steps laneQuantum
// cycles (or to completion) per turn, then the next lane runs. The
// per-cycle phase order inside a lane — cap check, resolve, issue,
// fetch — is exactly Machine.Run's, and no mutable state crosses lanes,
// so the rotation is unobservable in results or telemetry. A lane that
// halts, faults, or hits its cycle cap is masked out of the live set
// and the rest keep rotating — a short program never barriers on a
// long one.
func (g *LaneGroup) Run() ([]*Stats, []error) {
	caps := make([]int64, len(g.lanes))
	live := make([]int, 0, len(g.lanes))
	for i, m := range g.lanes {
		if err := m.compileErr(); err != nil {
			g.errs[i] = err
			m.finishStats()
			continue
		}
		caps[i] = m.prepareRun()
		live = append(live, i)
	}
	for len(live) > 0 {
		w := live[:0]
		for _, i := range live {
			m := g.lanes[i]
			target := m.now + laneQuantum
			finished := false
			for {
				if m.now >= caps[i] {
					g.errs[i] = m.cycleLimitErr(caps[i])
					finished = true
					break
				}
				done, err := m.resolvePhase()
				if err != nil || done {
					g.errs[i] = err
					finished = true
					break
				}
				m.issuePhase()
				m.fetchPhase()
				if m.now >= target {
					break
				}
			}
			if finished {
				m.finishStats()
				continue
			}
			w = append(w, i)
		}
		live = w
	}
	for i, m := range g.lanes {
		g.stats[i] = &m.stats
	}
	return g.stats, g.errs
}
