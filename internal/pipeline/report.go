package pipeline

import "vanguard/internal/trace"

// RunReport converts the run statistics into the shared telemetry
// schema (trace.RunReport): stable snake_case counter and rate keys plus
// the latency/occupancy histograms. The returned report aliases the
// Stats histograms; marshal it before mutating s further.
func (s *Stats) RunReport(label string, width int) *trace.RunReport {
	counters := map[string]int64{
		"cycles":                      s.Cycles,
		"fetched":                     s.Fetched,
		"issued":                      s.Issued,
		"committed":                   s.Committed,
		"wrong_path_issued":           s.WrongPathIssued,
		"squashed_fetched":            s.SquashedFetched,
		"cond_branches":               s.CondBranches,
		"predicts":                    s.Predicts,
		"resolves":                    s.Resolves,
		"br_mispredicts":              s.BrMispredicts,
		"res_mispredicts":             s.ResMispredicts,
		"ret_mispredicts":             s.RetMispredicts,
		"flushes":                     s.Flushes,
		"resolve_stall_cycles":        s.ResolveStallCycles,
		"branch_stall_cycles":         s.BranchStallCycles,
		"operand_stall_cycles":        s.OperandStallCycles,
		"fu_stall_cycles":             s.FUStallCycles,
		"empty_fetch_cycles":          s.EmptyFetchCycles,
		"exceptions":                  s.Exceptions,
		"max_dbb_occupancy":           int64(s.MaxDBBOccupancy),
		"icache_misses":               s.ICacheMisses,
		"icache_misses_under_mispred": s.ICacheMissUnderMispred,
		"btb_hits":                    s.BTBHits,
		"btb_misses":                  s.BTBMisses,
		"ras_underflows":              s.RASUnderflows,
	}
	if s.Halted {
		counters["halted"] = 1
	} else {
		counters["halted"] = 0
	}
	rates := map[string]float64{
		"ipc":           s.IPC(),
		"mpki":          s.MPKI(),
		"l1d_miss_rate": s.L1DMissRate,
		"l1i_miss_rate": s.L1IMissRate,
	}
	hists := map[string]*trace.Hist{
		"fetch_to_issue":    &s.FetchToIssue,
		"repair_penalty":    &s.RepairPenalty,
		"dbb_occupancy":     &s.DBBOccupancy,
		"stall_run_empty":   &s.StallRunEmpty,
		"stall_run_operand": &s.StallRunOperand,
		"stall_run_branch":  &s.StallRunBranch,
		"stall_run_resolve": &s.StallRunResolve,
		"stall_run_fu":      &s.StallRunFU,
	}
	return &trace.RunReport{
		Label:       label,
		Width:       width,
		Counters:    counters,
		Rates:       rates,
		Hists:       hists,
		Samples:     s.Samples,
		Attribution: s.Attr,
		Pipeview:    s.Pipeview,
		Bpredstudy:  s.Bpred,
	}
}
