package pipeline

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"vanguard/internal/exec"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

// TestDispatchDifferential is the timing half of the kernel-gate claim:
// the predecoded-kernel dispatch engine must produce byte-identical
// statistics — every cycle count, stall histogram, and branch counter —
// and identical architectural memory to the reference switch dispatch,
// on random structured programs across machine widths, both scalar and
// lane-grouped.
func TestDispatchDifferential(t *testing.T) {
	run := func(p *ir.Program, m *mem.Memory, w int, d exec.Dispatch) (*Stats, *mem.Memory) {
		t.Helper()
		cfg := DefaultConfig(w)
		cfg.Dispatch = d
		pm := m.Clone()
		mach := New(ir.MustLinearize(p), pm, cfg)
		st, err := mach.Run()
		if err != nil {
			t.Fatalf("w%d %v: %v", w, d, err)
		}
		return st, pm
	}
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		prog, m := randomLoopProgram(r)
		for _, w := range []int{1, 4, 8} {
			ss, sm := run(prog, m, w, exec.DispatchSwitch)
			ks, km := run(prog, m, w, exec.DispatchKernels)
			if !reflect.DeepEqual(ss, ks) {
				t.Fatalf("seed %d w%d: stats diverged between dispatch engines:\nswitch:  %+v\nkernels: %+v", seed, w, ss, ks)
			}
			if !sm.Equal(km) {
				t.Fatalf("seed %d w%d: architectural memory diverged between dispatch engines", seed, w)
			}
		}
	}
}

// TestDispatchDifferentialLanes repeats the A/B across the lane-parallel
// core: a kernel-dispatch lane group must match scalar switch-dispatch
// machines stat-for-stat.
func TestDispatchDifferentialLanes(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	prog, m := randomLoopProgram(r)
	im := ir.MustLinearize(prog)
	const lanes = 3

	scalar := make([]*Stats, lanes)
	for i := range scalar {
		cfg := DefaultConfig(4)
		cfg.Dispatch = exec.DispatchSwitch
		st, err := New(im, m.Clone(), cfg).Run()
		if err != nil {
			t.Fatal(err)
		}
		scalar[i] = st
	}

	cfg := DefaultConfig(4)
	cfg.Dispatch = exec.DispatchKernels
	mems := make([]*mem.Memory, lanes)
	for i := range mems {
		mems[i] = m.Clone()
	}
	g := NewLaneGroup(im, mems, cfg)
	stats, errs := g.Run()
	for i := 0; i < lanes; i++ {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(scalar[i], stats[i]) {
			t.Fatalf("lane %d: kernel lane group diverged from scalar switch machine", i)
		}
	}
}

// TestDispatchCompileErrorSurfacing pins where an uncompilable image
// fails per engine: kernel dispatch rejects it when Run starts (the
// whole image compiles at load), while switch dispatch preserves the
// reference behavior of faulting only if the bad instruction is reached.
func TestDispatchCompileErrorSurfacing(t *testing.T) {
	im := &ir.Image{Instrs: []isa.Instr{
		{Op: isa.HALT},
		{Op: isa.Op(200)}, // past the HALT: never reached dynamically
	}}

	cfg := DefaultConfig(2)
	cfg.Dispatch = exec.DispatchKernels
	if _, err := New(im, mem.New(), cfg).Run(); err == nil {
		t.Fatal("kernel dispatch must reject an uncompilable image at Run start")
	} else if !strings.Contains(err.Error(), "op(200)") {
		t.Fatalf("compile rejection must name the opcode: %v", err)
	}

	cfg.Dispatch = exec.DispatchSwitch
	st, err := New(im, mem.New(), cfg).Run()
	if err != nil {
		t.Fatalf("switch dispatch must not reject an unreached bad opcode: %v", err)
	}
	if !st.Halted {
		t.Fatal("switch run must halt normally")
	}

	cfg.Dispatch = exec.DispatchKernels
	g := NewLaneGroup(im, []*mem.Memory{mem.New(), mem.New()}, cfg)
	_, errs := g.Run()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("lane %d: lane group must surface the compile rejection", i)
		}
	}
}
