package pipeline

import (
	"io"
	"os"
	"reflect"
	"testing"

	"vanguard/internal/asm"
	"vanguard/internal/core"
	"vanguard/internal/ir"
	"vanguard/internal/mem"
	"vanguard/internal/profile"
	"vanguard/internal/sched"
	"vanguard/internal/trace"
)

// dotproduct loads and (optionally) transforms examples/asm/dotproduct.s,
// returning a fresh linearized image for each run.
func dotproduct(t *testing.T, transform bool, width int) *ir.Image {
	t.Helper()
	src, err := os.ReadFile("../../examples/asm/dotproduct.s")
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if transform {
		prof, err := profile.CollectDefault(ir.MustLinearize(p), mem.New(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.Transform(p, prof, core.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		sched.Program(p, sched.DefaultModel(width))
	}
	return ir.MustLinearize(p)
}

// TestSinkDoesNotChangeStats is the observability differential check: the
// timing model must be byte-for-byte deterministic whether or not a trace
// sink is attached. Every Stats field — counters and histograms alike —
// must be identical with no sink, with a ring buffer, and with text and
// Chrome sinks writing to io.Discard.
func TestSinkDoesNotChangeStats(t *testing.T) {
	for _, transform := range []bool{false, true} {
		run := func(sink trace.Sink) *Stats {
			m := New(dotproduct(t, transform, 4), mem.New(), DefaultConfig(4))
			m.Sink = sink
			st, err := m.Run()
			if err != nil {
				t.Fatalf("transform=%v: %v", transform, err)
			}
			return st
		}
		base := run(nil)
		ring := trace.NewRing(128)
		withSinks := run(trace.Tee(
			ring,
			&trace.Text{W: io.Discard, All: true},
			trace.NewChrome(nopWriteCloser{io.Discard}),
		))
		if !reflect.DeepEqual(base, withSinks) {
			t.Errorf("transform=%v: attaching sinks changed Stats:\n  no sink: %+v\n  sinks:   %+v",
				transform, base, withSinks)
		}
		if ring.Len() == 0 {
			t.Errorf("transform=%v: ring sink saw no events", transform)
		}
		if base.Cycles == 0 || base.Committed == 0 {
			t.Errorf("transform=%v: suspicious empty run: %+v", transform, base)
		}
		if base.FetchToIssue.Count != base.Issued {
			t.Errorf("transform=%v: fetch-to-issue samples %d != issued %d",
				transform, base.FetchToIssue.Count, base.Issued)
		}
	}
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }
