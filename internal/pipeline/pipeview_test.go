package pipeline

import (
	"bytes"
	"encoding/json"
	"testing"

	"vanguard/internal/ir"
	"vanguard/internal/mem"
	"vanguard/internal/pipeview"
	"vanguard/internal/trace"
)

// pipeviewAll returns a capture config big enough to hold every record of
// the fast-suite runs, so lifecycle invariants can be checked over the
// complete population rather than a ring-sized suffix.
func pipeviewAll() *pipeview.Config {
	return &pipeview.Config{MaxRecords: 1 << 16, MaxFlushes: 1 << 14}
}

// checkLifecycles asserts the lifecycle-completeness invariant over a
// finished run: every fetched instruction's record carries exactly one
// terminal (commit, squash, or front-end drop), and its stage cycles are
// monotonically non-decreasing (fetch <= issue <= writeback, terminal
// never before issue).
func checkLifecycles(t *testing.T, label string, st *Stats) {
	t.Helper()
	rep := st.Pipeview
	if rep == nil {
		t.Fatalf("%s: Stats.Pipeview nil with pipeview enabled", label)
	}
	if rep.RecordsDropped != 0 {
		t.Fatalf("%s: %d records overwritten; enlarge MaxRecords so the invariant covers the whole run",
			label, rep.RecordsDropped)
	}
	if int64(len(rep.Records)) != st.Fetched {
		t.Errorf("%s: %d records != %d fetched", label, len(rep.Records), st.Fetched)
	}
	var nCommit, nSquash, nDrop int64
	prevFetch := int64(-1)
	prevSeq := int64(-1)
	for i := range rep.Records {
		r := &rep.Records[i]
		terminals := 0
		if r.Commit >= 0 {
			terminals++
			nCommit++
		}
		if r.Squash >= 0 {
			terminals++
			nSquash++
		}
		if r.Drop >= 0 {
			terminals++
			nDrop++
		}
		if terminals != 1 {
			t.Fatalf("%s: seq %d has %d terminals: %+v", label, r.Seq, terminals, r)
		}
		if r.Seq <= prevSeq {
			t.Fatalf("%s: records not strictly Seq-ordered at %d", label, r.Seq)
		}
		if r.Fetch < prevFetch {
			t.Fatalf("%s: seq %d fetched at %d, before predecessor's %d", label, r.Seq, r.Fetch, prevFetch)
		}
		prevSeq, prevFetch = r.Seq, r.Fetch
		term := r.Terminal()
		if r.Issue >= 0 {
			if r.Issue < r.Fetch {
				t.Fatalf("%s: seq %d issued at %d before fetch %d", label, r.Seq, r.Issue, r.Fetch)
			}
			if r.Complete >= 0 && r.Complete < r.Issue {
				t.Fatalf("%s: seq %d wrote back at %d before issue %d", label, r.Seq, r.Complete, r.Issue)
			}
			if term < r.Issue {
				t.Fatalf("%s: seq %d terminal %d before issue %d", label, r.Seq, term, r.Issue)
			}
		} else if term < r.Fetch {
			t.Fatalf("%s: seq %d terminal %d before fetch %d", label, r.Seq, term, r.Fetch)
		}
	}
	// Population identities: commits, squashes and drops partition the
	// fetch stream exactly as the aggregate counters do.
	if nDrop != st.Predicts {
		t.Errorf("%s: %d dropped records != %d predicts", label, nDrop, st.Predicts)
	}
	if nCommit != st.Committed {
		t.Errorf("%s: %d committed records != %d committed", label, nCommit, st.Committed)
	}
	if want := st.SquashedFetched + st.WrongPathIssued; nSquash != want {
		t.Errorf("%s: %d squashed records != %d squashed+wrong-path", label, nSquash, want)
	}
}

// TestLifecycleCompleteness is the satellite invariant gate: on real
// runs — baseline and vanguard dotproduct, plus an exception-injecting
// probe — every fetched Seq terminates in exactly one commit, squash or
// drop, with monotonic stage cycles.
func TestLifecycleCompleteness(t *testing.T) {
	// Baseline: the plain dotproduct benchmark.
	cfg := DefaultConfig(4)
	cfg.Pipeview = pipeviewAll()
	m := New(dotproduct(t, false, 4), mem.New(), cfg)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkLifecycles(t, "base", st)
	if st.Flushes > 0 && len(st.Pipeview.Flushes) == 0 {
		t.Errorf("base: %d flushes but empty genealogy", st.Flushes)
	}

	// Vanguard: the canonical decomposed hammock with a scripted,
	// partially mispredictable condition stream — PREDICT drops, RESOLVE
	// firings and DBB traffic all appear in the records.
	const n = 3000
	p, scriptBase := decomposed(n)
	mm := mem.New()
	pat := []int64{1, 1, 0, 0, 1}
	for i := int64(0); i < n; i++ {
		mm.MustStore(scriptBase+uint64(i)*8, pat[i%int64(len(pat))])
	}
	cfg = DefaultConfig(4)
	cfg.Pipeview = pipeviewAll()
	mach := New(ir.MustLinearize(p), mm, cfg)
	st, err = mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkLifecycles(t, "vanguard", st)
	if st.Predicts == 0 {
		t.Error("vanguard run exercised no PREDICT drops")
	}
	if st.Flushes > 0 && len(st.Pipeview.Flushes) == 0 {
		t.Errorf("vanguard: %d flushes but empty genealogy", st.Flushes)
	}

	// Exception injection exercises the quiet-point squash path.
	prog, pm := allocProbeProgram(5_000)
	cfg = DefaultConfig(4)
	cfg.Pipeview = pipeviewAll()
	cfg.ExceptionEveryN = 997
	mach = New(ir.MustLinearize(prog), pm, cfg)
	st, err = mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Exceptions == 0 {
		t.Fatal("probe run injected no exceptions")
	}
	checkLifecycles(t, "exceptions", st)
	var excFlushes int
	for _, f := range st.Pipeview.Flushes {
		if f.Cause == "exception" {
			excFlushes++
		}
	}
	if excFlushes == 0 {
		t.Error("no exception rows in the genealogy")
	}
}

// TestPipeviewDoesNotPerturbRun pins the off-path and on-path contracts
// at once: with pipeview disabled Stats.Pipeview stays nil (so reports
// are byte-identical to a pipeview-less build), and an enabled recorder
// observes without steering — every other stat is bit-identical.
func TestPipeviewDoesNotPerturbRun(t *testing.T) {
	prog, m := allocProbeProgram(20_000)
	plain := New(ir.MustLinearize(prog), m.Clone(), DefaultConfig(4))
	plainStats, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	if plainStats.Pipeview != nil {
		t.Fatal("Pipeview non-nil with pipeview disabled")
	}

	cfg := DefaultConfig(4)
	cfg.Pipeview = &pipeview.Config{AroundSquash: 3}
	viewed := New(ir.MustLinearize(prog), m.Clone(), cfg)
	viewedStats, err := viewed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if viewedStats.Pipeview == nil || len(viewedStats.Pipeview.Records) == 0 {
		t.Fatal("pipeview run captured nothing")
	}
	got := *viewedStats
	got.Pipeview = nil
	a, _ := json.Marshal(plainStats)
	b, _ := json.Marshal(&got)
	if string(a) != string(b) {
		t.Errorf("pipeview changed the run statistics:\nplain  %s\nviewed %s", a, b)
	}
}

// TestPipeviewReportSections pins the telemetry plumbing: a pipeviewed
// run's RunReport carries the section, the report write stamps schema
// v4, and the round trip preserves the records.
func TestPipeviewReportSections(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Pipeview = &pipeview.Config{}
	m := New(dotproduct(t, true, 4), mem.New(), cfg)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	run := st.RunReport("timing", 4)
	if run.Pipeview == nil {
		t.Fatal("RunReport dropped the pipeview section")
	}
	rep := trace.NewReport("test")
	rep.Benchmarks = append(rep.Benchmarks, &trace.BenchReport{
		Name: "dotproduct", Runs: []*trace.RunReport{run},
	})
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != trace.SchemaV4 {
		t.Errorf("schema %q, want %q", back.Schema, trace.SchemaV4)
	}
	got := back.Benchmarks[0].Runs[0].Pipeview
	if got == nil || len(got.Records) != len(st.Pipeview.Records) {
		t.Fatalf("pipeview section lost in round trip")
	}
	if got.Records[0] != st.Pipeview.Records[0] {
		t.Errorf("record drifted in round trip:\n%+v\n%+v", got.Records[0], st.Pipeview.Records[0])
	}
}

// TestSteadyStateZeroAllocsWithPipeview extends the zero-alloc gate to a
// recording machine: assembling lifetime records on every event in the
// measurement loop must not allocate (the ring and genealogy storage are
// preallocated; Emit is allocation-free).
func TestSteadyStateZeroAllocsWithPipeview(t *testing.T) {
	prog, m := allocProbeProgram(50_000_000)
	cfg := DefaultConfig(4)
	cfg.Pipeview = &pipeview.Config{}
	mach := New(ir.MustLinearize(prog), m, cfg)
	mach.attachPipeview()

	step := func(cycles int) {
		for i := 0; i < cycles; i++ {
			done, err := mach.stepCycle()
			if err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
			if done {
				t.Fatalf("program finished during measurement (cycle %d); enlarge iters", i)
			}
		}
	}
	step(50_000) // warm up

	if allocs := testing.AllocsPerRun(10, func() { step(10_000) }); allocs != 0 {
		t.Fatalf("pipeview cycle loop allocates: %v allocs per 10k cycles", allocs)
	}
}
