package pipeline

import "vanguard/internal/bpred"

// DBBEntryBits is the architected size of one DBB entry: 16 bits of
// predictor table indices plus 8 bits of prediction metadata (Section 4).
const DBBEntryBits = 24

// dbbEntry is one Decomposed Branch Buffer slot. The simulator-level meta
// stands in for the architected 24 bits.
type dbbEntry struct {
	pc       uint64     // PC of the PREDICT instruction
	pred     bool       // direction the front end chose
	meta     bpred.Meta // predictor metadata for the out-of-place update
	histCkpt bpred.Hist // history checkpoint for misprediction repair
	valid    bool
}

// DBB is the Decomposed Branch Buffer: a small circular buffer written at
// each PREDICT and read by the matching RESOLVE, which by construction
// (the compiler neither reorders nor interleaves predict/resolve pairs)
// is always the most recent insertion.
type DBB struct {
	entries []dbbEntry
	tail    int // index of the most recent insertion

	Inserts       uint64
	Updates       uint64
	SpuriousSkips uint64 // resolve met an invalidated entry; update suppressed
}

// NewDBB builds a DBB with n entries (the paper sizes it at 16).
func NewDBB(n int) *DBB {
	return &DBB{entries: make([]dbbEntry, n)}
}

// Insert records a prediction and returns the entry index, which the front
// end attaches to the in-flight resolve instruction.
func (d *DBB) Insert(pc uint64, pred bool, meta bpred.Meta, hist bpred.Hist) int {
	d.tail = (d.tail + 1) % len(d.entries)
	d.entries[d.tail] = dbbEntry{pc: pc, pred: pred, meta: meta, histCkpt: hist, valid: true}
	d.Inserts++
	return d.tail
}

// Tail returns the current tail index (captured by resolve instructions in
// decode).
func (d *DBB) Tail() int { return d.tail }

// RestoreTail rewinds the tail pointer, used when a non-decomposed branch
// misprediction squashes predict instructions that were fetched down the
// wrong path (Section 4: "the same mechanism used to recover branch
// history can be used for this purpose").
func (d *DBB) RestoreTail(tail int) { d.tail = tail }

// InvalidateAll marks every entry invalid; models the second Section 4
// strategy for exceptional control flow (interrupts/context switches),
// suppressing spurious updates afterwards.
func (d *DBB) InvalidateAll() {
	for i := range d.entries {
		d.entries[i].valid = false
	}
}

// Read fetches the entry at index for a resolving instruction. ok is false
// when the entry was invalidated, in which case the predictor update is
// suppressed.
func (d *DBB) Read(index int) (dbbEntry, bool) {
	e := d.entries[index]
	if !e.valid {
		d.SpuriousSkips++
		return e, false
	}
	d.Updates++
	return e, true
}
