package pipeline

import (
	"strings"
	"testing"

	"vanguard/internal/bpred"
	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

func cfg4() Config { return DefaultConfig(4) }

func run(t *testing.T, p *ir.Program, cfg Config) (*Machine, *Stats, *mem.Memory) {
	t.Helper()
	im := ir.MustLinearize(p)
	m := mem.New()
	mach := New(im, m, cfg)
	st, err := mach.Run()
	if err != nil {
		t.Fatalf("pipeline run: %v", err)
	}
	return mach, st, m
}

// straightLine builds n independent ALU ops then a store + halt.
func straightLine(n int) *ir.Program {
	f := &ir.Func{Name: "main"}
	b := f.AddBlock("b")
	e := f.AddBlock("e")
	for i := 0; i < n; i++ {
		f.Emit(b, ir.Addi(isa.R(1+i%8), isa.R(1+i%8), 1))
	}
	f.Emit(b, ir.Li(isa.R(20), mem.FaultBoundary))
	f.Emit(e, ir.St(isa.R(20), 0, isa.R(1)), ir.Halt())
	return &ir.Program{Funcs: []*ir.Func{f}}
}

// loopedBody builds `iters` iterations over a body emitted by emit(f, blk),
// so the I-cache is warm in steady state.
func loopedBody(iters int64, emit func(f *ir.Func, blk int)) *ir.Program {
	f := &ir.Func{Name: "main"}
	init := f.AddBlock("init")
	loop := f.AddBlock("loop")
	done := f.AddBlock("done")
	f.Emit(init, ir.Li(isa.R(30), 0), ir.Li(isa.R(31), iters))
	emit(f, loop)
	f.Emit(loop,
		ir.Addi(isa.R(30), isa.R(30), 1),
		ir.Cmp(isa.CMPLT, isa.R(29), isa.R(30), isa.R(31)),
		ir.BrID(isa.R(29), loop, 1),
	)
	f.Emit(done, ir.Halt())
	return &ir.Program{Funcs: []*ir.Func{f}}
}

func TestStraightLineHalts(t *testing.T) {
	_, st, m := run(t, straightLine(64), cfg4())
	if !st.Halted {
		t.Fatal("machine did not halt")
	}
	if st.Committed != 64+3 {
		t.Errorf("committed %d, want 67", st.Committed)
	}
	if v, _ := m.Load(mem.FaultBoundary); v != 8 {
		t.Errorf("result %d, want 8", v)
	}
	if st.WrongPathIssued != 0 {
		t.Errorf("straight-line code issued %d wrong-path instructions", st.WrongPathIssued)
	}
}

func TestFrontEndDepthDelaysFirstIssue(t *testing.T) {
	// A single instruction fetched at cycle 0 must not issue before
	// cycle FrontEndDepth-1; total cycles reflect the pipeline fill.
	_, st, _ := run(t, straightLine(1), cfg4())
	if st.Cycles < int64(cfg4().FrontEndDepth) {
		t.Errorf("cycles %d too small for a %d-deep front end", st.Cycles, cfg4().FrontEndDepth)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// r1 += r1 chain: one instruction per cycle regardless of width.
	f := &ir.Func{Name: "main"}
	b := f.AddBlock("b")
	e := f.AddBlock("e")
	const n = 100
	for i := 0; i < n; i++ {
		f.Emit(b, ir.Addi(isa.R(1), isa.R(1), 1))
	}
	f.Emit(e, ir.Halt())
	_, st, _ := run(t, &ir.Program{Funcs: []*ir.Func{f}}, cfg4())
	if st.Cycles < n {
		t.Errorf("dependent chain of %d finished in %d cycles", n, st.Cycles)
	}
}

func TestIntUnitsBoundIssueWidth(t *testing.T) {
	// Independent integer ops on a 4-wide machine with 2 INT units:
	// steady-state throughput must be ~2/cycle, not 4 (loop for warm I$).
	p := loopedBody(300, func(f *ir.Func, blk int) {
		for i := 0; i < 32; i++ {
			f.Emit(blk, ir.Addi(isa.R(1+i%8), isa.R(1+i%8), 1))
		}
	})
	_, st, _ := run(t, p, cfg4())
	ipc := st.IPC()
	if ipc > 2.2 {
		t.Errorf("IPC %.2f exceeds the 2-INT-unit bound", ipc)
	}
	if ipc < 1.5 {
		t.Errorf("IPC %.2f too low for independent ops", ipc)
	}
}

func TestMixedFUWidth(t *testing.T) {
	// Mixing INT and FP lets a 4-wide machine beat the 2-INT bound.
	p := loopedBody(300, func(f *ir.Func, blk int) {
		for i := 0; i < 16; i++ {
			f.Emit(blk,
				ir.Addi(isa.R(1+i%4), isa.R(1+i%4), 1),
				ir.Fop(isa.FADD, isa.F(i%4), isa.F(4+i%4), isa.F(8+i%4)),
			)
		}
	})
	_, st, _ := run(t, p, cfg4())
	if ipc := st.IPC(); ipc < 2.5 {
		t.Errorf("mixed INT/FP IPC %.2f, want > 2.5", ipc)
	}
}

func TestLoadLatencyL1Hit(t *testing.T) {
	// A chain of dependent loads (pointer chasing within one line):
	// each pays the 4-cycle L1 latency.
	f := &ir.Func{Name: "main"}
	b := f.AddBlock("b")
	e := f.AddBlock("e")
	f.Emit(b, ir.Li(isa.R(1), mem.FaultBoundary))
	const n = 50
	for i := 0; i < n; i++ {
		f.Emit(b, ir.Ld(isa.R(1), isa.R(1), 0))
	}
	f.Emit(e, ir.Halt())
	p := &ir.Program{Funcs: []*ir.Func{f}}
	im := ir.MustLinearize(p)
	m := mem.New()
	m.MustStore(mem.FaultBoundary, mem.FaultBoundary) // self-pointer
	mach := New(im, m, cfg4())
	st, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	// After the first miss fill, each load is a dependent L1 hit: >= 4n cycles.
	if st.Cycles < 4*n {
		t.Errorf("dependent load chain: %d cycles for %d loads, want >= %d", st.Cycles, n, 4*n)
	}
	_ = mach
}

// loopProgram: a counted loop of n iterations whose body stores i.
func loopProgram(n int64) *ir.Program {
	f := &ir.Func{Name: "main"}
	init := f.AddBlock("init")
	loop := f.AddBlock("loop")
	done := f.AddBlock("done")
	f.Emit(init, ir.Li(isa.R(1), 0), ir.Li(isa.R(2), n), ir.Li(isa.R(3), mem.FaultBoundary))
	f.Emit(loop,
		ir.St(isa.R(3), 0, isa.R(1)),
		ir.Addi(isa.R(1), isa.R(1), 1),
		ir.Cmp(isa.CMPLT, isa.R(4), isa.R(1), isa.R(2)),
		ir.BrID(isa.R(4), loop, 1),
	)
	f.Emit(done, ir.Halt())
	return &ir.Program{Funcs: []*ir.Func{f}}
}

func TestLoopMatchesInterpreter(t *testing.T) {
	p := loopProgram(200)
	// Functional golden run.
	im := ir.MustLinearize(p)
	gm := mem.New()
	gst, _, err := interp.Run(im, gm, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Timing run.
	_, st, m := run(t, p, cfg4())
	if v, _ := m.Load(mem.FaultBoundary); v != 199 {
		t.Errorf("final store %d, want 199", v)
	}
	if !m.Equal(gm) {
		t.Error("timing and functional memories differ")
	}
	gv, _ := gm.Load(mem.FaultBoundary)
	mv, _ := m.Load(mem.FaultBoundary)
	if gv != mv {
		t.Errorf("functional %d vs timing %d", gv, mv)
	}
	if st.CondBranches != 200 {
		t.Errorf("committed branches %d, want 200", st.CondBranches)
	}
	_ = gst
}

func TestPredictableLoopFewMispredicts(t *testing.T) {
	_, st, _ := run(t, loopProgram(2000), cfg4())
	// A backward loop branch is nearly perfectly predictable; allow
	// warmup plus the final exit.
	if st.BrMispredicts > 20 {
		t.Errorf("loop mispredicted %d times in 2000 iterations", st.BrMispredicts)
	}
}

// mispredictedStore: a branch the static-NT predictor always gets wrong,
// whose wrong (fall-through) path begins with a store to a sentinel. The
// branch condition comes from a dependent load chain, so by the time the
// branch finally issues the wrong-path store's operands have long been
// ready and it issues in the branch's shadow (and must be squashed).
func mispredictedStore() *ir.Program {
	f := &ir.Func{Name: "main"}
	a := f.AddBlock("a")
	wrong := f.AddBlock("wrong")
	right := f.AddBlock("right")
	f.Emit(a,
		ir.Li(isa.R(2), mem.FaultBoundary),
		ir.Li(isa.R(3), 666),
		ir.Li(isa.R(9), mem.FaultBoundary+64),
		ir.Ld(isa.R(1), isa.R(9), 0), // slow condition (cold miss)
		ir.BrID(isa.R(1), right, 1),  // taken when script value != 0
	)
	f.Emit(wrong, ir.St(isa.R(2), 8, isa.R(3)), ir.Jmp(right))
	f.Emit(right, ir.St(isa.R(2), 0, isa.R(3)), ir.Halt())
	return &ir.Program{Funcs: []*ir.Func{f}}
}

func TestWrongPathStoreNeverCommits(t *testing.T) {
	cfg := cfg4()
	cfg.NewPredictor = func() bpred.DirPredictor { return &bpred.Static{} } // always NT
	im := ir.MustLinearize(mispredictedStore())
	mm := mem.New()
	mm.MustStore(mem.FaultBoundary+64, 1) // condition value: branch taken
	mach := New(im, mm, cfg)
	st, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := mm
	if st.BrMispredicts != 1 {
		t.Fatalf("mispredicts = %d, want 1", st.BrMispredicts)
	}
	if v, _ := m.Load(mem.FaultBoundary + 8); v != 0 {
		t.Errorf("wrong-path store leaked to memory: %d", v)
	}
	if v, _ := m.Load(mem.FaultBoundary); v != 666 {
		t.Errorf("correct-path store missing: %d", v)
	}
	if st.WrongPathIssued == 0 {
		t.Error("expected wrong-path instructions to issue in the branch shadow")
	}
}

func TestWrongPathRegisterWritesRollBack(t *testing.T) {
	// Wrong path clobbers r3 before the flush; the correct path stores
	// r3 — it must see the pre-branch value.
	f := &ir.Func{Name: "main"}
	a := f.AddBlock("a")
	wrong := f.AddBlock("wrong")
	right := f.AddBlock("right")
	f.Emit(a,
		ir.Li(isa.R(1), 1),
		ir.Li(isa.R(2), mem.FaultBoundary),
		ir.Li(isa.R(3), 42),
		ir.BrID(isa.R(1), right, 1),
	)
	f.Emit(wrong, ir.Li(isa.R(3), 13), ir.Jmp(right))
	f.Emit(right, ir.St(isa.R(2), 0, isa.R(3)), ir.Halt())
	cfg := cfg4()
	cfg.NewPredictor = func() bpred.DirPredictor { return &bpred.Static{} }
	_, _, m := run(t, &ir.Program{Funcs: []*ir.Func{f}}, cfg)
	if v, _ := m.Load(mem.FaultBoundary); v != 42 {
		t.Errorf("r3 = %d after flush, want 42 (wrong-path write must be undone)", v)
	}
}

func TestCallRetThroughRAS(t *testing.T) {
	callee := &ir.Func{Name: "inc"}
	cb := callee.AddBlock("entry")
	callee.Emit(cb, ir.Addi(isa.R(1), isa.R(1), 1), ir.Ret())

	main := &ir.Func{Name: "main"}
	m0 := main.AddBlock("m0")
	m1 := main.AddBlock("m1")
	m2 := main.AddBlock("m2")
	m3 := main.AddBlock("m3")
	main.Emit(m0, ir.Li(isa.R(1), 0), ir.Li(isa.R(2), mem.FaultBoundary), ir.Call(1))
	main.Emit(m1, ir.Call(1))
	main.Emit(m2, ir.Call(1))
	main.Emit(m3, ir.St(isa.R(2), 0, isa.R(1)), ir.Halt())

	_, st, m := run(t, &ir.Program{Funcs: []*ir.Func{main, callee}}, cfg4())
	if v, _ := m.Load(mem.FaultBoundary); v != 3 {
		t.Errorf("call chain result %d, want 3", v)
	}
	if st.RetMispredicts != 0 {
		t.Errorf("RAS mispredicted %d well-nested returns", st.RetMispredicts)
	}
}

// decomposed builds the canonical transformed hammock with a scripted
// condition stream read from memory: cond = script[i].
func decomposed(n int64) (*ir.Program, uint64) {
	const scriptBase = uint64(1 << 20)
	out := uint64(mem.FaultBoundary)
	f := &ir.Func{Name: "main"}
	init := f.AddBlock("init")
	head := f.AddBlock("head") // loop head: load cond, predict
	ba := f.AddBlock("BA'")
	bp := f.AddBlock("B'")
	ca := f.AddBlock("CA'")
	cp := f.AddBlock("C'")
	corrC := f.AddBlock("Correct-C")
	corrB := f.AddBlock("Correct-B")
	latch := f.AddBlock("latch")
	done := f.AddBlock("done")

	f.Emit(init,
		ir.Li(isa.R(1), 0), // i
		ir.Li(isa.R(2), n), // limit
		ir.Li(isa.R(3), int64(scriptBase)),
		ir.Li(isa.R(4), int64(out)),
		ir.Li(isa.R(10), 0), // accumulator
	)
	f.Emit(head,
		ir.Muli(isa.R(5), isa.R(1), 8),
		ir.Add(isa.R(5), isa.R(5), isa.R(3)),
		ir.Predict(ca, 7),
	)
	// Predicted not-taken path (B): condition slice pushed down.
	f.Emit(ba,
		ir.Ld(isa.R(6), isa.R(5), 0), // cond value
		ir.Resolve(isa.R(6), false, corrC, 7),
	)
	f.Emit(bp, ir.Addi(isa.R(10), isa.R(10), 1), ir.Jmp(latch))
	// Predicted taken path (C).
	f.Emit(ca,
		ir.Ld(isa.R(6), isa.R(5), 0),
		ir.Resolve(isa.R(6), true, corrB, 7),
	)
	f.Emit(cp, ir.Addi(isa.R(10), isa.R(10), 100), ir.Jmp(latch))
	f.Emit(corrC, ir.Jmp(cp))
	f.Emit(corrB, ir.Jmp(bp))
	f.Emit(latch,
		ir.Addi(isa.R(1), isa.R(1), 1),
		ir.Cmp(isa.CMPLT, isa.R(7), isa.R(1), isa.R(2)),
		ir.BrID(isa.R(7), head, 1),
	)
	f.Emit(done, ir.St(isa.R(4), 0, isa.R(10)), ir.Halt())
	return &ir.Program{Funcs: []*ir.Func{f}}, scriptBase
}

func TestDecomposedBranchEndToEnd(t *testing.T) {
	const n = 3000
	p, scriptBase := decomposed(n)
	im := ir.MustLinearize(p)

	// Scripted outcomes: period-5 pattern TTFFT — predictable by the
	// tournament predictor, bias 60%.
	pat := []int64{1, 1, 0, 0, 1}
	taken := int64(0)
	m := mem.New()
	for i := int64(0); i < n; i++ {
		v := pat[i%int64(len(pat))]
		m.MustStore(scriptBase+uint64(i)*8, v)
		taken += v
	}
	want := taken*100 + (n - taken)

	// Golden functional run on a clone.
	gm := m.Clone()
	if _, _, err := interp.Run(im, gm, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	gv, _ := gm.Load(mem.FaultBoundary)
	if gv != want {
		t.Fatalf("golden model wrong: %d, want %d", gv, want)
	}

	mach := New(im, m, cfg4())
	st, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := m.Load(mem.FaultBoundary)
	if v != want {
		t.Errorf("decomposed result %d, want %d", v, want)
	}
	// Wrong-path fetches may consume extra predict instructions (the DBB
	// tail restore repairs them), so Predicts is a lower-bounded count.
	if st.Predicts < n || st.Predicts > n+n/10 {
		t.Errorf("predicts %d, want ~%d", st.Predicts, n)
	}
	if st.Resolves != n {
		t.Errorf("resolves %d, want %d", st.Resolves, n)
	}
	// The pattern is learnable: resolve misprediction rate must be low
	// after warmup (well under the 40% a static choice would give).
	if st.ResMispredicts > n/5 {
		t.Errorf("resolve mispredicts %d of %d; predictor not being trained through the DBB",
			st.ResMispredicts, n)
	}
	if mach.DBB.Inserts < n || mach.DBB.Updates < n {
		t.Errorf("DBB traffic: %d inserts, %d updates, want >= %d each",
			mach.DBB.Inserts, mach.DBB.Updates, n)
	}
}

func TestResolveStallAttribution(t *testing.T) {
	// The resolve's condition comes from a load; with a cold cache the
	// resolve must accumulate head-of-line stall cycles.
	p, scriptBase := decomposed(50)
	im := ir.MustLinearize(p)
	m := mem.New()
	for i := 0; i < 50; i++ {
		m.MustStore(scriptBase+uint64(i)*8, int64(i%2))
	}
	mach := New(im, m, cfg4())
	st, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.ResolveStallCycles == 0 {
		t.Error("resolve stall cycles not attributed")
	}
	bs := st.PerBranch[7]
	if bs == nil || bs.StallCycles == 0 {
		t.Error("per-branch stall attribution missing")
	}
}

func TestMaxInstrsCap(t *testing.T) {
	cfg := cfg4()
	cfg.MaxInstrs = 500
	_, st, _ := run(t, loopProgram(1_000_000), cfg)
	if st.Committed < 500 || st.Committed > 600 {
		t.Errorf("committed %d with a 500-instruction cap", st.Committed)
	}
	if st.Halted {
		t.Error("capped run must not report a clean halt")
	}
}

func TestCycleCapErrors(t *testing.T) {
	f := &ir.Func{Name: "main"}
	l := f.AddBlock("l")
	e := f.AddBlock("e")
	f.Emit(l, ir.Jmp(l))
	f.Emit(e, ir.Halt())
	cfg := cfg4()
	cfg.MaxCycles = 1000
	im := ir.MustLinearize(&ir.Program{Funcs: []*ir.Func{f}})
	_, err := New(im, mem.New(), cfg).Run()
	if err == nil || !strings.Contains(err.Error(), "cycle limit") {
		t.Fatalf("want cycle-limit error, got %v", err)
	}
}

func TestWidthScaling(t *testing.T) {
	// Wider machines must not be slower on parallel code.
	p := straightLine(600)
	var cycles [3]int64
	for i, w := range []int{2, 4, 8} {
		_, st, _ := run(t, p, DefaultConfig(w))
		cycles[i] = st.Cycles
	}
	if cycles[1] > cycles[0] || cycles[2] > cycles[1] {
		t.Errorf("cycles not monotone with width: %v", cycles)
	}
}

func TestTable1Defaults(t *testing.T) {
	c := DefaultConfig(4)
	if c.FrontEndDepth != 5 || c.FetchBufEntries != 32 {
		t.Error("front end must be 5 stages with a 32-entry fetch buffer")
	}
	if c.IntUnits != 2 || c.MemUnits != 2 || c.FPUnits != 4 {
		t.Error("FU mix must be 2 INT / 2 LD-ST / 4 FP")
	}
	if c.RASEntries != 64 || c.BTBLogEntries != 12 || c.DBBEntries != 16 {
		t.Error("BTB/RAS/DBB sizing wrong")
	}
}

func TestDBBOccupancyStaysSmall(t *testing.T) {
	// The paper sizes the DBB at 16 after observing that in-order
	// back-pressure keeps outstanding decomposed branches few; our
	// decomposed hammock should confirm single-digit occupancy.
	p, scriptBase := decomposed(500)
	im := ir.MustLinearize(p)
	m := mem.New()
	for i := 0; i < 500; i++ {
		m.MustStore(scriptBase+uint64(i)*8, int64(i%3%2))
	}
	mach := New(im, m, cfg4())
	st, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxDBBOccupancy == 0 {
		t.Fatal("occupancy never measured")
	}
	if st.MaxDBBOccupancy > 16 {
		t.Errorf("DBB occupancy %d exceeds the paper's 16-entry sizing", st.MaxDBBOccupancy)
	}
}

// TestPoisonFaultSurfacesOnCommittedPath injects an illegal hoist: a
// speculative load of a garbage address whose poisoned result is consumed
// by a store on the committed path. The deferred-fault machinery must
// abort the simulation rather than silently storing junk.
func TestPoisonFaultSurfacesOnCommittedPath(t *testing.T) {
	f := &ir.Func{Name: "main"}
	a := f.AddBlock("A")
	ba := f.AddBlock("BA'")
	bp := f.AddBlock("B'")
	ca := f.AddBlock("CA'")
	cp := f.AddBlock("C'")
	corrC := f.AddBlock("Correct-C")
	corrB := f.AddBlock("Correct-B")
	d := f.AddBlock("D")
	f.Emit(a,
		ir.Li(isa.R(1), 0), // condition false -> fall-through path
		ir.Li(isa.R(2), mem.FaultBoundary),
		ir.Predict(ca, 5),
	)
	f.Emit(ba,
		ir.LdSpec(isa.R(3), isa.R(9), 0), // r9 = 0: faulting address, suppressed
		ir.Resolve(isa.R(1), false, corrC, 5),
	)
	f.Emit(bp, ir.St(isa.R(2), 0, isa.R(3)), ir.Jmp(d)) // consumes poison: must fault
	f.Emit(ca, ir.Resolve(isa.R(1), true, corrB, 5))
	f.Emit(cp, ir.Jmp(d))
	f.Emit(corrC, ir.Jmp(cp))
	f.Emit(corrB, ir.Jmp(bp))
	f.Emit(d, ir.Halt())

	im := ir.MustLinearize(&ir.Program{Funcs: []*ir.Func{f}})
	_, err := New(im, mem.New(), cfg4()).Run()
	if err == nil || !strings.Contains(err.Error(), "poison") {
		t.Fatalf("consuming a poisoned value on the committed path must fault, got %v", err)
	}
}

// TestPoisonOnWrongPathIsHarmless is the complementary case: the poisoned
// consumer sits on the path the resolve squashes, so no fault may surface.
func TestPoisonOnWrongPathIsHarmless(t *testing.T) {
	f := &ir.Func{Name: "main"}
	a := f.AddBlock("A")
	wrong := f.AddBlock("wrong")
	right := f.AddBlock("right")
	f.Emit(a,
		ir.Li(isa.R(1), 1), // taken: the fall-through block is wrong-path
		ir.Li(isa.R(2), mem.FaultBoundary),
		ir.Li(isa.R(9), mem.FaultBoundary+64),
		ir.Ld(isa.R(4), isa.R(9), 0), // slow condition
		ir.Cmp(isa.CMPNE, isa.R(4), isa.R(4), isa.R(0)),
		ir.BrID(isa.R(4), right, 1),
	)
	f.Emit(wrong,
		ir.LdSpec(isa.R(3), isa.R(0), 0), // poisons r3 (wrong path only)
		ir.St(isa.R(2), 8, isa.R(3)),     // would fault if committed
		ir.Jmp(right),
	)
	f.Emit(right, ir.St(isa.R(2), 0, isa.R(2)), ir.Halt())

	im := ir.MustLinearize(&ir.Program{Funcs: []*ir.Func{f}})
	cfg := cfg4()
	cfg.NewPredictor = func() bpred.DirPredictor { return &bpred.Static{} } // mispredict
	m := mem.New()
	m.MustStore(mem.FaultBoundary+64, 1)
	st, err := New(im, m, cfg).Run()
	if err != nil {
		t.Fatalf("wrong-path poison must be squashed silently: %v", err)
	}
	if !st.Halted {
		t.Error("machine did not halt")
	}
	if v, _ := m.Load(mem.FaultBoundary + 8); v != 0 {
		t.Error("wrong-path store leaked")
	}
}

// TestExceptionalControlFlow exercises Section 4's two strategies for
// interrupts splitting predict/resolve pairs: both must preserve
// architectural correctness; the invalidate strategy must suppress the
// resulting stale updates (visible as DBB spurious skips).
func TestExceptionalControlFlow(t *testing.T) {
	const n = 2000
	build := func() (*ir.Image, *mem.Memory) {
		p, scriptBase := decomposed(n)
		im := ir.MustLinearize(p)
		m := mem.New()
		pat := []int64{1, 1, 0, 1, 0}
		for i := int64(0); i < n; i++ {
			m.MustStore(scriptBase+uint64(i)*8, pat[i%5])
		}
		return im, m
	}

	im, gm := build()
	if _, _, err := interp.Run(im, gm, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	want, _ := gm.Load(mem.FaultBoundary)

	type outcome struct {
		res    int64
		skips  uint64
		excs   int64
		cycles int64
	}
	runMode := func(every int64, invalidate bool) outcome {
		im2, m := build()
		cfg := cfg4()
		cfg.ExceptionEveryN = every
		cfg.DBBInvalidateOnException = invalidate
		mach := New(im2, m, cfg)
		st, err := mach.Run()
		if err != nil {
			t.Fatalf("every=%d invalidate=%v: %v", every, invalidate, err)
		}
		v, _ := m.Load(mem.FaultBoundary)
		return outcome{res: v, skips: mach.DBB.SpuriousSkips, excs: st.Exceptions, cycles: st.Cycles}
	}

	clean := runMode(0, false)
	ignore := runMode(400, false)
	invalidate := runMode(400, true)

	for name, o := range map[string]outcome{"clean": clean, "ignore": ignore, "invalidate": invalidate} {
		if o.res != want {
			t.Errorf("%s: result %d, want %d", name, o.res, want)
		}
	}
	if ignore.excs == 0 || invalidate.excs == 0 {
		t.Fatal("no exceptions injected")
	}
	if invalidate.skips == 0 {
		t.Error("invalidate mode must suppress stale updates (spurious skips)")
	}
	if ignore.skips != 0 {
		t.Error("ignore mode must not suppress updates")
	}
	// The paper's argument: these events are rare enough that either
	// strategy barely moves performance.
	for name, o := range map[string]outcome{"ignore": ignore, "invalidate": invalidate} {
		if ratio := float64(o.cycles) / float64(clean.cycles); ratio > 1.15 {
			t.Errorf("%s mode cost %.1f%% — exceptional control flow should be cheap",
				name, (ratio-1)*100)
		}
	}
}
