// Package pipeline implements the cycle-level in-order superscalar
// simulator of Table 1, extended with the paper's decomposed-branch
// support: PREDICT instructions that steer fetch and are dropped in the
// front end, RESOLVE instructions statically predicted not-taken, and the
// Decomposed Branch Buffer (DBB) that re-associates each resolution with
// the predictor metadata captured at its prediction.
//
// The model is execution-driven: fetch follows the predicted path
// (including wrong paths), instructions execute architecturally at issue
// against a speculative state, and mispredictions restore register-file /
// history / RAS / DBB checkpoints taken when the speculation point issued.
// Stores drain from a store buffer only once every older speculation point
// has resolved, so wrong-path stores never reach memory.
package pipeline

import (
	"vanguard/internal/attr"
	"vanguard/internal/bpred"
	"vanguard/internal/cache"
	"vanguard/internal/exec"
	"vanguard/internal/pipeview"
	"vanguard/internal/sample"
	"vanguard/internal/trace"
)

// Config describes one machine configuration.
type Config struct {
	// Width is the fetch/decode/dispatch/issue width (Table 1 varies it
	// over 2/4/8).
	Width int
	// FrontEndDepth is the number of front-end stages (Table 1: 5); an
	// instruction fetched at cycle c can issue no earlier than
	// c + FrontEndDepth - 1.
	FrontEndDepth int
	// FetchBufEntries bounds the fetch buffer (Table 1: 32).
	FetchBufEntries int
	// Functional unit counts (Table 1: up to 2 LD/ST, 2 INT, 4 FP).
	IntUnits, MemUnits, FPUnits int
	// Hier is the cache hierarchy configuration.
	Hier cache.HierConfig
	// NewPredictor constructs the direction predictor (fresh per run).
	NewPredictor func() bpred.DirPredictor
	// BTBLogEntries is log2 of BTB entries (Table 1: 4K -> 12).
	BTBLogEntries int
	// RASEntries is the return address stack depth (Table 1: 64).
	RASEntries int
	// DBBEntries is the decomposed branch buffer depth (paper: 16).
	DBBEntries int

	// ExceptionEveryN injects an exceptional control-flow event
	// (interrupt/context-switch stand-in) every N committed instructions:
	// the fetch buffer is squashed, a handler penalty is charged, and the
	// DBB tail is moved by handler activity — the hazard Section 4
	// discusses. 0 disables injection.
	ExceptionEveryN int64
	// DBBInvalidateOnException selects the paper's second strategy: mark
	// all DBB entries invalid at the event so resolves whose predicts
	// predate it suppress their (now meaningless) predictor updates.
	// False selects the first strategy: ignore the event and tolerate
	// spurious updates.
	DBBInvalidateOnException bool

	// MaxInstrs stops the simulation after this many committed
	// instructions (0 = unlimited); MaxCycles likewise.
	MaxInstrs int64
	MaxCycles int64

	// Dispatch selects how the issue stage executes instruction
	// semantics: exec.DispatchKernels (the zero value and the default)
	// calls the per-PC kernel compiled at predecode, operands already
	// resolved; exec.DispatchSwitch calls the reference exec.Step switch.
	// The two are byte-identical on stats, telemetry and architectural
	// results (make kernel-gate proves it); the knob exists for A/B
	// measurement and as an escape hatch back to the reference semantics.
	Dispatch exec.Dispatch

	// Attr enables cycle attribution: every issue slot of every cycle is
	// charged to exactly one cause (internal/attr) in preallocated flat
	// arrays, exported as Stats.Attr. Off (the default) constructs no
	// recorder: the per-cycle cost is nil checks and the run's stats and
	// reports are byte-identical to an attribution-less build.
	Attr bool

	// SampleWindow enables the cycle-window time-series sampler: every
	// SampleWindow cycles the machine records counter deltas into a
	// preallocated ring and exports them as Stats.Samples. 0 (the
	// default) disables sampling entirely — no sampler is constructed
	// and the per-cycle cost is a single nil check.
	SampleWindow int64

	// Pipeview enables the pipeline waterfall recorder: a trace sink that
	// assembles per-instruction lifetime records (fetch, issue, writeback,
	// commit/squash/drop cycles with cause and DBB linkage) into
	// preallocated ring storage, exported as Stats.Pipeview. Nil (the
	// default) constructs no recorder: the off-path cost is the same nil
	// checks as an unset Sink and the run's stats and reports are
	// byte-identical to a pipeview-less build. The recorder observes and
	// never steers — enabling it leaves simulated timing unchanged.
	Pipeview *pipeview.Config

	// Probe enables the predictor observatory: a bpred.Probe attached to
	// the direction predictor records, in preallocated storage, per-table
	// provider usage, allocation and aliasing counters, confidence
	// accounting, and the per-static-branch outcome digest that
	// classifies every branch as biased / regime-switching /
	// effectively-random, exported as Stats.Bpred. Off (the default)
	// constructs no probe: the per-resolution cost is nil checks and the
	// run's stats and reports are byte-identical to a probe-less build.
	// The probe observes and never steers — enabling it leaves simulated
	// timing unchanged.
	Probe bool

	// debugCheckpoints additionally takes a full register-file snapshot at
	// every speculation point and cross-checks the undo-journal rewind
	// against it on squash, panicking on divergence. Test-only (unexported
	// on purpose): it reintroduces exactly the per-branch copying the
	// journal exists to avoid.
	debugCheckpoints bool
}

// DefaultConfig returns the Table 1 machine at the given width.
func DefaultConfig(width int) Config {
	return Config{
		Width:           width,
		FrontEndDepth:   5,
		FetchBufEntries: 32,
		IntUnits:        2,
		MemUnits:        2,
		FPUnits:         4,
		Hier:            cache.DefaultHierConfig(),
		NewPredictor:    func() bpred.DirPredictor { return bpred.NewDefault() },
		BTBLogEntries:   12,
		RASEntries:      64,
		DBBEntries:      16,
	}
}

// Stats aggregates one simulation run.
type Stats struct {
	Cycles    int64
	Fetched   int64
	Issued    int64
	Committed int64
	// WrongPathIssued counts instructions that issued and were later
	// squashed (Figure 14's numerator).
	WrongPathIssued int64
	// SquashedFetched counts instructions fetched but never issued.
	SquashedFetched int64
	Halted          bool

	// Branch behaviour.
	CondBranches   int64 // committed BR instructions
	Predicts       int64 // PREDICT instructions consumed by the front end
	Resolves       int64 // committed RESOLVE instructions
	BrMispredicts  int64 // BR direction mispredictions
	ResMispredicts int64 // RESOLVE firings (decomposed-branch repairs)
	RetMispredicts int64 // RAS target mispredictions
	Flushes        int64 // pipeline flushes (one per misprediction recovery)

	// Stall attribution at the issue head: scalar totals, plus run-length
	// distributions below that say whether the cycles come as many short
	// hiccups or few long outages.
	ResolveStallCycles int64 // head is a RESOLVE waiting on its condition
	BranchStallCycles  int64 // head is a BR waiting on its condition
	OperandStallCycles int64 // head waits on operands (all kinds)
	FUStallCycles      int64 // head ready but no port/unit free
	EmptyFetchCycles   int64 // nothing issuable in the buffer

	// Distribution telemetry (power-of-two histograms; always recorded —
	// the cost is a few integer ops per sample).
	FetchToIssue    trace.Hist // cycles from fetch to issue, per issued instruction
	RepairPenalty   trace.Hist // cycles from a flush until the next instruction issues
	DBBOccupancy    trace.Hist // outstanding decomposed branches, sampled at every push/pop
	StallRunEmpty   trace.Hist // run lengths (cycles) of empty-fetch issue-head stalls
	StallRunOperand trace.Hist // ... of operand stalls not attributed to a control point
	StallRunBranch  trace.Hist // ... of operand stalls attributed to a BR condition
	StallRunResolve trace.Hist // ... of operand stalls attributed to a RESOLVE condition
	StallRunFU      trace.Hist // ... of structural (no free unit) stalls

	// Exceptions counts injected exceptional control-flow events.
	Exceptions int64

	// MaxDBBOccupancy is the high-water mark of simultaneously
	// outstanding decomposed branches (predicts fetched whose resolves
	// have not yet been fetched). The paper sizes the DBB at 16 after
	// observing this stays small under in-order back-pressure.
	MaxDBBOccupancy int

	// Memory system (mirrors of hierarchy counters for convenience).
	L1DMissRate            float64
	L1IMissRate            float64
	ICacheMisses           int64
	ICacheMissUnderMispred int64

	// Front-end structures (mirrors of bpred counters).
	BTBHits       int64
	BTBMisses     int64
	RASUnderflows int64

	// Per static branch (by BranchID): execution/misprediction/stall.
	PerBranch map[int]*BranchStats

	// Samples is the cycle-window time series, nil unless
	// Config.SampleWindow was set.
	Samples *sample.Series

	// Attr is the per-cause issue-slot attribution, nil unless Config.Attr
	// was set.
	Attr *attr.Report

	// Pipeview is the per-instruction lifetime capture, nil unless
	// Config.Pipeview was set.
	Pipeview *trace.PipeviewReport

	// Bpred is the predictor-observatory study (per-table usage, table
	// occupancy/aliasing, and the per-branch predictability
	// classification), nil unless Config.Probe was set.
	Bpred *bpred.StudyReport
}

// BranchStats tracks one static (decomposed or plain) branch.
type BranchStats struct {
	Execs       int64
	Mispredicts int64
	StallCycles int64 // issue-head stall cycles attributed to this branch
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MPKI returns branch mispredictions (all kinds) per thousand committed
// instructions — the paper's MPPKI metric.
func (s *Stats) MPKI() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.BrMispredicts+s.ResMispredicts+s.RetMispredicts) * 1000 / float64(s.Committed)
}

func (s *Stats) branch(id int) *BranchStats {
	if s.PerBranch == nil {
		s.PerBranch = make(map[int]*BranchStats)
	}
	b := s.PerBranch[id]
	if b == nil {
		b = &BranchStats{}
		s.PerBranch[id] = b
	}
	return b
}
