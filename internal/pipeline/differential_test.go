package pipeline

import (
	"math/rand"
	"testing"

	"vanguard/internal/core"
	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
	"vanguard/internal/profile"
	"vanguard/internal/sched"
)

// randomLoopProgram builds a structured random program: an init block, a
// counted loop whose body contains a random hammock and a helper call, and
// an epilogue dumping live registers to memory. Every memory access stays
// in a safe region, so both simulators must complete fault-free.
func randomLoopProgram(r *rand.Rand) (*ir.Program, *mem.Memory) {
	const dataBase = int64(1 << 20)
	dsts := []isa.Reg{isa.R(8), isa.R(9), isa.R(10), isa.R(11), isa.R(12)}
	srcs := []isa.Reg{isa.R(2), isa.R(3), isa.R(8), isa.R(9), isa.R(10), isa.R(11), isa.R(12)}
	randInstr := func() isa.Instr {
		switch r.Intn(7) {
		case 0:
			return ir.Ld(dsts[r.Intn(len(dsts))], isa.R(1), int64(r.Intn(12))*8)
		case 1:
			return ir.St(isa.R(1), 256+int64(r.Intn(12))*8, srcs[r.Intn(len(srcs))])
		case 2:
			return ir.Addi(dsts[r.Intn(len(dsts))], srcs[r.Intn(len(srcs))], int64(r.Intn(50)))
		default:
			ops := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.XOR, isa.AND, isa.OR, isa.CMPLT}
			return ir.Op3(ops[r.Intn(len(ops))], dsts[r.Intn(len(dsts))],
				srcs[r.Intn(len(srcs))], srcs[r.Intn(len(srcs))])
		}
	}

	helper := &ir.Func{Name: "helper"}
	hb := helper.AddBlock("entry")
	for i := 0; i < 1+r.Intn(4); i++ {
		helper.Emit(hb, randInstr())
	}
	helper.Emit(hb, ir.Ret())

	f := &ir.Func{Name: "main"}
	init := f.AddBlock("init")
	head := f.AddBlock("head")
	armB := f.AddBlock("B")
	armC := f.AddBlock("C")
	join := f.AddBlock("join")
	latch := f.AddBlock("latch")
	done := f.AddBlock("done")

	iters := int64(50 + r.Intn(200))
	f.Emit(init,
		ir.Li(isa.R(0), 0),
		ir.Li(isa.R(1), dataBase),
		ir.Li(isa.R(2), int64(r.Intn(100))),
		ir.Li(isa.R(3), int64(r.Intn(100))),
		ir.Li(isa.R(5), 0), // loop counter
		ir.Li(isa.R(6), iters),
	)
	// Hammock condition from the iteration-indexed script.
	f.Emit(head,
		ir.Muli(isa.R(7), isa.R(5), 8),
		ir.Add(isa.R(7), isa.R(7), isa.R(1)),
		ir.Ld(isa.R(7), isa.R(7), 2048),
		ir.BrID(isa.R(7), armC, 1),
	)
	for i := 0; i < 1+r.Intn(5); i++ {
		f.Emit(armB, randInstr())
	}
	f.Emit(armB, ir.Jmp(join))
	for i := 0; i < 1+r.Intn(5); i++ {
		f.Emit(armC, randInstr())
	}
	f.Emit(join, ir.Call(1))
	f.Emit(latch,
		ir.Addi(isa.R(5), isa.R(5), 1),
		ir.Cmp(isa.CMPLT, isa.R(4), isa.R(5), isa.R(6)),
		ir.BrID(isa.R(4), head, 2),
	)
	for i, reg := range srcs {
		f.Emit(done, ir.St(isa.R(1), 512+int64(i)*8, reg))
	}
	f.Emit(done, ir.Halt())

	m := mem.New()
	for i := int64(0); i < 512; i += 8 {
		m.MustStore(uint64(dataBase+i), int64(r.Intn(1000)))
	}
	for i := int64(0); i < iters; i++ {
		m.MustStore(uint64(dataBase+2048+i*8), int64(r.Intn(2)))
	}
	return &ir.Program{Funcs: []*ir.Func{f, helper}}, m
}

// TestDifferentialRandomPrograms is the heavyweight cross-simulator
// property: random structured programs — raw, scheduled, and decomposed —
// must produce identical architectural memory on the cycle-level machine
// and the golden-model interpreter, across machine widths.
func TestDifferentialRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		prog, m := randomLoopProgram(r)

		gm := m.Clone()
		if _, _, err := interp.Run(ir.MustLinearize(prog), gm, interp.Options{}); err != nil {
			t.Fatalf("seed %d golden: %v", seed, err)
		}

		variants := map[string]*ir.Program{"raw": prog.Clone()}

		schedP := prog.Clone()
		sched.Program(schedP, sched.DefaultModel(4))
		variants["scheduled"] = schedP

		trans := prog.Clone()
		prof := &profile.Profile{ByID: map[int]*profile.Branch{
			1: {ID: 1, Forward: true, Execs: 10000, Taken: 6000, Correct: 9200},
		}}
		if rep, err := core.Transform(trans, prof, core.DefaultOptions()); err != nil {
			t.Fatalf("seed %d transform: %v", seed, err)
		} else if len(rep.Converted) == 1 {
			sched.Program(trans, sched.DefaultModel(4))
			variants["decomposed+scheduled"] = trans
		}

		for name, p := range variants {
			for _, w := range []int{2, 8} {
				pm := m.Clone()
				mach := New(ir.MustLinearize(p), pm, DefaultConfig(w))
				if _, err := mach.Run(); err != nil {
					t.Fatalf("seed %d %s w%d: %v\n%s", seed, name, w, err, p)
				}
				if !pm.Equal(gm) {
					t.Fatalf("seed %d %s w%d: architectural divergence\n%s", seed, name, w, p)
				}
			}
		}
	}
}
