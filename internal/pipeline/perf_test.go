package pipeline

import (
	"math/rand"
	"reflect"
	"testing"

	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

// allocProbeProgram is a long-running loop with data-dependent branches,
// loads and stores — enough activity to exercise the journal, the store
// buffer, the speculation queue and the cache hierarchy every cycle
// without ever finishing during an allocation measurement window.
func allocProbeProgram(iters int64) (*ir.Program, *mem.Memory) {
	const dataBase = int64(1 << 20)
	f := &ir.Func{Name: "main"}
	init := f.AddBlock("init")
	head := f.AddBlock("head")
	odd := f.AddBlock("odd")
	latch := f.AddBlock("latch")
	done := f.AddBlock("done")

	f.Emit(init,
		ir.Li(isa.R(1), dataBase),
		ir.Li(isa.R(5), 0),
		ir.Li(isa.R(6), iters),
		ir.Li(isa.R(8), 0),
	)
	f.Emit(head,
		ir.Op3(isa.AND, isa.R(7), isa.R(5), isa.R(5)),
		ir.Addi(isa.R(7), isa.R(7), 1),
		ir.Ld(isa.R(9), isa.R(1), 0),
		ir.Op3(isa.ADD, isa.R(8), isa.R(8), isa.R(9)),
		ir.Op3(isa.AND, isa.R(10), isa.R(5), isa.R(7)),
		ir.BrID(isa.R(10), latch, 1),
	)
	f.Emit(odd,
		ir.St(isa.R(1), 64, isa.R(8)),
	)
	f.Emit(latch,
		ir.Addi(isa.R(5), isa.R(5), 1),
		ir.Cmp(isa.CMPLT, isa.R(4), isa.R(5), isa.R(6)),
		ir.BrID(isa.R(4), head, 2),
	)
	f.Emit(done, ir.Halt())

	m := mem.New()
	m.MustStore(uint64(dataBase), 3)
	return &ir.Program{Funcs: []*ir.Func{f}}, m
}

// TestSteadyStateZeroAllocs is the tentpole's acceptance gate: once a
// machine is warmed up (branch-stat entries created, queue/journal/buffer
// storage grown to steady state), running the cycle loop must not
// allocate at all.
func TestSteadyStateZeroAllocs(t *testing.T) {
	prog, m := allocProbeProgram(50_000_000)
	mach := New(ir.MustLinearize(prog), m, DefaultConfig(4))

	step := func(cycles int) {
		for i := 0; i < cycles; i++ {
			done, err := mach.stepCycle()
			if err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
			if done {
				t.Fatalf("program finished during measurement (cycle %d); enlarge iters", i)
			}
		}
	}
	step(50_000) // warm up

	if allocs := testing.AllocsPerRun(10, func() { step(10_000) }); allocs != 0 {
		t.Fatalf("steady-state cycle loop allocates: %v allocs per 10k cycles", allocs)
	}
}

// TestSBViewStoreZeroAllocs pins down the satellite fix: the store
// buffer's eager fault probe must not consult the page table or allocate
// a Fault — neither on the valid-address path nor on wrong-path garbage
// addresses, and wrong-path loads of unmapped addresses are equally free.
func TestSBViewStoreZeroAllocs(t *testing.T) {
	prog, m := allocProbeProgram(10)
	mach := New(ir.MustLinearize(prog), m, DefaultConfig(4))
	v := sbView{mach}
	mach.sb = mach.sb[:0]

	if allocs := testing.AllocsPerRun(100, func() {
		if err := v.Store(1<<20, 42); err != nil {
			t.Fatalf("valid store faulted: %v", err)
		}
		mach.sb = mach.sb[:0] // keep the buffer from growing
		if err := v.Store(3, 42); err == nil {
			t.Fatal("misaligned store did not fault")
		}
		if _, err := v.Load(3); err == nil {
			t.Fatal("misaligned load did not fault")
		}
		if _, err := v.Load(1 << 21); err != nil {
			t.Fatalf("valid load faulted: %v", err)
		}
	}); allocs != 0 {
		t.Fatalf("sbView probes allocate: %v allocs/op", allocs)
	}
}

// TestUndoLogMatchesFullSnapshots runs the random differential programs in
// paranoid-checkpoint mode: every speculation point also takes a full
// register-file snapshot, and every squash cross-checks the undo-journal
// rewind against it (divergence panics inside the machine). The resulting
// stats must be bit-identical to a plain run — the debug machinery itself
// must be invisible to the timing model.
func TestUndoLogMatchesFullSnapshots(t *testing.T) {
	flushesSeen := int64(0)
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		prog, m := randomLoopProgram(r)
		for _, w := range []int{2, 8} {
			plain := New(ir.MustLinearize(prog.Clone()), m.Clone(), DefaultConfig(w))
			plainStats, err := plain.Run()
			if err != nil {
				t.Fatalf("seed %d w%d plain: %v", seed, w, err)
			}

			cfg := DefaultConfig(w)
			cfg.debugCheckpoints = true
			checked := New(ir.MustLinearize(prog.Clone()), m.Clone(), cfg)
			checkedStats, err := checked.Run()
			if err != nil {
				t.Fatalf("seed %d w%d checked: %v", seed, w, err)
			}

			if !reflect.DeepEqual(plainStats, checkedStats) {
				t.Fatalf("seed %d w%d: debug checkpoints changed the stats", seed, w)
			}
			flushesSeen += checkedStats.Flushes

			gm := m.Clone()
			if _, _, err := interp.Run(ir.MustLinearize(prog), gm, interp.Options{}); err != nil {
				t.Fatalf("seed %d golden: %v", seed, err)
			}
			if !checked.Memory().Equal(gm) {
				t.Fatalf("seed %d w%d: architectural divergence under debug checkpoints", seed, w)
			}
		}
	}
	if flushesSeen == 0 {
		t.Fatal("no squashes exercised; the snapshot cross-check never ran")
	}
}

// BenchmarkStepCycle measures the raw per-cycle cost of the simulator core
// (no report/JSON overhead), with allocation accounting — the number that
// the allocation-free rewrite optimizes.
func BenchmarkStepCycle(b *testing.B) {
	prog, m := allocProbeProgram(2_000_000_000)
	mach := New(ir.MustLinearize(prog), m, DefaultConfig(4))
	for i := 0; i < 50_000; i++ {
		if _, err := mach.stepCycle(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mach.stepCycle(); err != nil {
			b.Fatal(err)
		}
	}
}
