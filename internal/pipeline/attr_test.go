package pipeline

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"vanguard/internal/attr"
	"vanguard/internal/ir"
)

// TestAttrInvariant is the tentpole acceptance gate: with attribution on,
// every issue slot of every cycle is charged to exactly one cause —
// summed over causes the slots equal cycles × width, the per-BranchID
// mispredict splits sum back to the aggregate mispredict-penalty
// counters, and base work equals committed instructions.
func TestAttrInvariant(t *testing.T) {
	var mispredicts, loadWaits int64
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		prog, m := randomLoopProgram(r)
		for _, w := range []int{2, 4, 8} {
			cfg := DefaultConfig(w)
			cfg.Attr = true
			if seed%2 == 1 {
				cfg.ExceptionEveryN = 512 // exercise the exception cause
			}
			mach := New(ir.MustLinearize(prog.Clone()), m.Clone(), cfg)
			stats, err := mach.Run()
			if err != nil {
				t.Fatalf("seed %d w%d: %v", seed, w, err)
			}
			rep := stats.Attr
			if rep == nil {
				t.Fatalf("seed %d w%d: Stats.Attr nil with attribution on", seed, w)
			}
			if err := rep.Check(); err != nil {
				t.Fatalf("seed %d w%d: %v", seed, w, err)
			}
			if rep.Cycles != stats.Cycles || rep.Width != w {
				t.Fatalf("seed %d w%d: attr covers %d cycles at width %d, stats say %d at %d",
					seed, w, rep.Cycles, rep.Width, stats.Cycles, w)
			}
			if got := rep.Slots[attr.Base.Key()]; got != stats.Committed {
				t.Fatalf("seed %d w%d: base slots %d != committed %d", seed, w, got, stats.Committed)
			}
			if stats.BrMispredicts > 0 && rep.Slots[attr.BrMispredict.Key()] == 0 {
				t.Fatalf("seed %d w%d: %d BR mispredicts but no slots charged to them",
					seed, w, stats.BrMispredicts)
			}
			mispredicts += rep.Slots[attr.BrMispredict.Key()]
			loadWaits += rep.Slots[attr.LoadWait.Key()]
		}
	}
	// The random programs must actually exercise the splits we claim to test.
	if mispredicts == 0 {
		t.Fatal("no slots ever charged to branch mispredicts")
	}
	if loadWaits == 0 {
		t.Fatal("no slots ever charged to load waits")
	}
}

// TestAttrOffUnchanged pins byte-identity: attribution is observation
// only. A run with Attr on produces exactly the same stats (modulo the
// Attr report itself) as one with it off, and the attribution-off
// telemetry report carries no attribution section.
func TestAttrOffUnchanged(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		prog, m := randomLoopProgram(r)
		for _, w := range []int{2, 4} {
			off := New(ir.MustLinearize(prog.Clone()), m.Clone(), DefaultConfig(w))
			offStats, err := off.Run()
			if err != nil {
				t.Fatalf("seed %d w%d off: %v", seed, w, err)
			}

			cfg := DefaultConfig(w)
			cfg.Attr = true
			on := New(ir.MustLinearize(prog.Clone()), m.Clone(), cfg)
			onStats, err := on.Run()
			if err != nil {
				t.Fatalf("seed %d w%d on: %v", seed, w, err)
			}

			if offStats.Attr != nil {
				t.Fatalf("seed %d w%d: attribution-off run exported an Attr report", seed, w)
			}
			scrubbed := *onStats
			scrubbed.Attr = nil
			if !reflect.DeepEqual(offStats, &scrubbed) {
				t.Fatalf("seed %d w%d: attribution changed the simulated stats", seed, w)
			}

			var offJSON, onJSON bytes.Buffer
			if err := json.NewEncoder(&offJSON).Encode(offStats.RunReport("timing", w)); err != nil {
				t.Fatal(err)
			}
			if err := json.NewEncoder(&onJSON).Encode(scrubbed.RunReport("timing", w)); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(offJSON.Bytes(), onJSON.Bytes()) {
				t.Fatalf("seed %d w%d: run reports differ beyond the attribution section", seed, w)
			}
			if bytes.Contains(offJSON.Bytes(), []byte("attribution")) {
				t.Fatalf("seed %d w%d: attribution-off report mentions attribution", seed, w)
			}
		}
	}
}

// TestAttrWindows checks the optional per-window CPI stack: with sampling
// and attribution both on, per-cause deltas summed over all windows equal
// the whole-run attribution, and each window's slots sum to its cycle
// count times the width.
func TestAttrWindows(t *testing.T) {
	prog, m := allocProbeProgram(20_000)
	cfg := DefaultConfig(4)
	cfg.Attr = true
	cfg.SampleWindow = 1000
	mach := New(ir.MustLinearize(prog), m, cfg)
	stats, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples == nil || stats.Attr == nil {
		t.Fatal("sampling + attribution run missing a section")
	}
	sums := make([]int64, attr.NumCauses)
	for i := range stats.Samples.Windows {
		w := &stats.Samples.Windows[i]
		if len(w.Attr) != int(attr.NumCauses) {
			t.Fatalf("window %d: attr stack has %d causes, want %d", i, len(w.Attr), attr.NumCauses)
		}
		var winSlots int64
		for c, n := range w.Attr {
			sums[c] += n
			winSlots += n
		}
		if want := w.Cycles() * int64(cfg.Width); winSlots != want {
			t.Fatalf("window %d: %d slots over %d cycles at width %d", i, winSlots, w.Cycles(), cfg.Width)
		}
	}
	for _, c := range attr.Causes() {
		if sums[c] != stats.Attr.Slots[c.Key()] {
			t.Fatalf("cause %s: windows sum to %d, aggregate is %d", c.Key(), sums[c], stats.Attr.Slots[c.Key()])
		}
	}
}

// TestSteadyStateZeroAllocsWithAttr re-runs the PR-3 allocation gate with
// attribution (and the sampler, whose ring also carries per-window attr
// stacks) enabled: charging must be free of allocation in steady state.
func TestSteadyStateZeroAllocsWithAttr(t *testing.T) {
	prog, m := allocProbeProgram(50_000_000)
	cfg := DefaultConfig(4)
	cfg.Attr = true
	cfg.SampleWindow = 1000
	mach := New(ir.MustLinearize(prog), m, cfg)

	step := func(cycles int) {
		for i := 0; i < cycles; i++ {
			done, err := mach.stepCycle()
			if err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
			if done {
				t.Fatalf("program finished during measurement (cycle %d); enlarge iters", i)
			}
		}
	}
	step(50_000) // warm up

	if allocs := testing.AllocsPerRun(10, func() { step(10_000) }); allocs != 0 {
		t.Fatalf("attributed cycle loop allocates: %v allocs per 10k cycles", allocs)
	}
}
