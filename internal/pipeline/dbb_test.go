package pipeline

import (
	"testing"

	"vanguard/internal/bpred"
)

func TestDBBInsertReadFIFO(t *testing.T) {
	d := NewDBB(4)
	var hist bpred.Hist
	hist.Push(true)
	idx := d.Insert(0x40, true, bpred.Meta{Pred: true}, hist)
	if idx != d.Tail() {
		t.Fatalf("insert index %d != tail %d", idx, d.Tail())
	}
	e, ok := d.Read(idx)
	if !ok || e.pc != 0x40 || !e.pred || e.histCkpt != hist {
		t.Errorf("read back wrong entry: %+v ok=%v", e, ok)
	}
	if d.Inserts != 1 || d.Updates != 1 {
		t.Errorf("counters: %d inserts %d updates", d.Inserts, d.Updates)
	}
}

func TestDBBWraparound(t *testing.T) {
	d := NewDBB(4)
	var last int
	for i := 0; i < 10; i++ {
		last = d.Insert(uint64(i), i%2 == 0, bpred.Meta{}, bpred.Hist{})
	}
	if last != d.Tail() {
		t.Fatal("tail mismatch")
	}
	e, ok := d.Read(d.Tail())
	if !ok || e.pc != 9 {
		t.Errorf("most recent insert must survive wraparound: %+v", e)
	}
	// The entry 4 inserts ago was overwritten by wraparound.
	old := (d.Tail() + 1) % 4
	if e, _ := d.Read(old); e.pc == 2 {
		t.Error("wrapped entry should have been overwritten")
	}
}

func TestDBBTailRestore(t *testing.T) {
	d := NewDBB(8)
	d.Insert(1, true, bpred.Meta{}, bpred.Hist{})
	ckpt := d.Tail()
	d.Insert(2, false, bpred.Meta{}, bpred.Hist{}) // wrong-path predict
	d.Insert(3, false, bpred.Meta{}, bpred.Hist{})
	d.RestoreTail(ckpt)
	if d.Tail() != ckpt {
		t.Fatal("tail not restored")
	}
	// The resolve matching insert 1 still finds its entry.
	if e, ok := d.Read(d.Tail()); !ok || e.pc != 1 {
		t.Errorf("entry after restore: %+v ok=%v", e, ok)
	}
}

func TestDBBInvalidateSuppressesUpdates(t *testing.T) {
	d := NewDBB(4)
	idx := d.Insert(7, true, bpred.Meta{}, bpred.Hist{})
	d.InvalidateAll() // exceptional control flow (Section 4, option 2)
	if _, ok := d.Read(idx); ok {
		t.Error("invalidated entry must suppress the update")
	}
	if d.SpuriousSkips != 1 {
		t.Errorf("spurious skips = %d, want 1", d.SpuriousSkips)
	}
}

func TestDBBEntryBitsMatchPaper(t *testing.T) {
	if DBBEntryBits != 24 {
		t.Errorf("the paper sizes DBB entries at 24 bits, got %d", DBBEntryBits)
	}
}
