package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets x 2 ways x 64B lines = 512B
	return New(Config{SizeBytes: 512, Ways: 2, LineBytes: 64, Latency: 4})
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x1000) {
		t.Error("cold access must miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access must hit")
	}
	if !c.Access(0x1038) {
		t.Error("same-line access must hit")
	}
	if c.Accesses != 3 || c.Misses != 1 {
		t.Errorf("stats %d/%d, want 3/1", c.Accesses, c.Misses)
	}
	if got := c.MissRate(); got != 1.0/3.0 {
		t.Errorf("miss rate %f", got)
	}
}

func TestSetMapping(t *testing.T) {
	c := small()
	// Lines 0x0000, 0x0040, 0x0080, 0x00C0 map to sets 0,1,2,3.
	for i := 0; i < 4; i++ {
		c.Access(uint64(i * 64))
	}
	for i := 0; i < 4; i++ {
		if !c.Access(uint64(i * 64)) {
			t.Errorf("line %d evicted despite distinct sets", i)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 2 ways
	// Three lines in the same set (stride = 4 sets * 64B = 256B).
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	c.Access(d) // must evict b (LRU)
	if !c.Access(a) {
		t.Error("a should have survived")
	}
	if c.Access(b) {
		t.Error("b should have been evicted")
	}
}

func TestLookupDoesNotDisturb(t *testing.T) {
	c := small()
	c.Access(0)
	acc, miss := c.Accesses, c.Misses
	if !c.Lookup(0) || c.Lookup(1<<20) {
		t.Error("lookup results wrong")
	}
	if c.Accesses != acc || c.Misses != miss {
		t.Error("Lookup must not touch stats")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Access(0)
	c.Invalidate(0)
	if c.Lookup(0) {
		t.Error("invalidated line still present")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two set count must panic")
		}
	}()
	New(Config{SizeBytes: 192, Ways: 1, LineBytes: 64})
}

// Property: a W-way single-set cache behaves as an LRU stack — after
// touching W distinct lines, re-touching them in the same order hits all.
func TestLRUStackProperty(t *testing.T) {
	f := func(seed int64) bool {
		const ways = 4
		c := New(Config{SizeBytes: 64 * ways, Ways: ways, LineBytes: 64, Latency: 1})
		r := rand.New(rand.NewSource(seed))
		lines := make([]uint64, ways)
		for i := range lines {
			lines[i] = uint64(i) * 64
		}
		r.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
		for _, a := range lines {
			c.Access(a)
		}
		for _, a := range lines {
			if !c.Access(a) {
				return false
			}
		}
		// A fifth distinct line evicts exactly the LRU: lines[0] of the
		// second pass (re-touched first, hence oldest).
		c.Access(uint64(ways) * 64)
		return !c.Lookup(lines[0]) || ways != 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewDefault()
	addr := uint64(1 << 20)

	// Cold: L1 miss, L2 miss, L3 miss -> memory.
	ready := h.Data(0, addr)
	if ready != 140 {
		t.Errorf("cold access ready at %d, want 140 (memory)", ready)
	}
	// Now resident everywhere: L1 hit.
	if ready := h.Data(200, addr); ready != 204 {
		t.Errorf("L1 hit ready at %d, want 204", ready)
	}
	// Evict from L1 only: next access is an L2 hit.
	h.L1D.Invalidate(addr)
	if ready := h.Data(300, addr); ready != 312 {
		t.Errorf("L2 hit ready at %d, want 312", ready)
	}
	// Evict L1+L2: L3 hit.
	h.L1D.Invalidate(addr)
	h.L2.Invalidate(addr)
	if ready := h.Data(400, addr); ready != 425 {
		t.Errorf("L3 hit ready at %d, want 425", ready)
	}
}

func TestMissMerging(t *testing.T) {
	h := NewDefault()
	a, b := uint64(1<<20), uint64(1<<20)+8 // same line
	r1 := h.Data(0, a)
	r2 := h.Data(1, b)
	if r2 > r1 {
		t.Errorf("merged access ready at %d, must not exceed the original fill %d", r2, r1)
	}
	if h.MergedMisses != 1 || h.DemandMisses != 1 {
		t.Errorf("merge stats: demand=%d merged=%d", h.DemandMisses, h.MergedMisses)
	}
	// A different line at the same time is an independent miss.
	r3 := h.Data(2, uint64(2<<20))
	if r3 != 2+140 {
		t.Errorf("independent miss ready at %d, want 142", r3)
	}
}

func TestMissBufferBackPressure(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.MissBufEntries = 2
	h := NewHierarchy(cfg)
	// Three distinct-line misses at cycle 0: the third must wait for a
	// buffer slot (earliest completion is cycle 140).
	h.Data(0, 1<<20)
	h.Data(0, 2<<20)
	r3 := h.Data(0, 3<<20)
	if r3 != 140+140 {
		t.Errorf("blocked miss ready at %d, want 280", r3)
	}
	if h.MissBufStall == 0 {
		t.Error("miss-buffer stall cycles not accounted")
	}
}

func TestInstFetch(t *testing.T) {
	h := NewDefault()
	addr := uint64(1 << 30)
	if extra := h.Inst(addr); extra != 140-4 {
		t.Errorf("cold I-fetch extra stall %d, want 136", extra)
	}
	if extra := h.Inst(addr); extra != 0 {
		t.Errorf("warm I-fetch extra stall %d, want 0", extra)
	}
	if h.L1I.Misses != 1 || h.L1I.Accesses != 2 {
		t.Errorf("L1I stats %d/%d", h.L1I.Misses, h.L1I.Accesses)
	}
}

func TestTable1Geometry(t *testing.T) {
	cfg := DefaultHierConfig()
	checks := []struct {
		name      string
		got, want int
	}{
		{"L1D size", cfg.L1D.SizeBytes, 32 << 10},
		{"L1D ways", cfg.L1D.Ways, 8},
		{"L1I size", cfg.L1I.SizeBytes, 32 << 10},
		{"L1I ways", cfg.L1I.Ways, 4},
		{"L2 size", cfg.L2.SizeBytes, 256 << 10},
		{"L2 ways", cfg.L2.Ways, 16},
		{"L3 size", cfg.L3.SizeBytes, 4 << 20},
		{"L3 ways", cfg.L3.Ways, 32},
		{"line", cfg.L1D.LineBytes, 64},
		{"L1 latency", cfg.L1D.Latency, 4},
		{"L2 latency", cfg.L2.Latency, 12},
		{"L3 latency", cfg.L3.Latency, 25},
		{"memory latency", cfg.MemLatency, 140},
		{"miss buffer", cfg.MissBufEntries, 64},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (Table 1)", c.name, c.got, c.want)
		}
	}
}

func TestResetStats(t *testing.T) {
	h := NewDefault()
	h.Data(0, 1<<20)
	h.Inst(1 << 30)
	h.ResetStats()
	if h.L1D.Accesses != 0 || h.L1I.Accesses != 0 || h.DemandMisses != 0 {
		t.Error("ResetStats left counters behind")
	}
	// Contents must be preserved.
	if r := h.Data(1000, 1<<20); r != 1004 {
		t.Errorf("contents lost on ResetStats: ready %d, want 1004", r)
	}
}

func TestWorkingSetMissRates(t *testing.T) {
	// Streaming over a working set larger than L1D (32KB) but inside L2
	// (256KB) must show a high L1D miss rate but a low L2 miss rate after
	// warmup.
	h := NewDefault()
	const ws = 128 << 10
	touch := func() {
		for a := uint64(0); a < ws; a += 64 {
			h.Data(0, 1<<20+a)
		}
	}
	touch() // warm
	h.ResetStats()
	touch()
	if mr := h.L1D.MissRate(); mr < 0.9 {
		t.Errorf("L1D miss rate %f on 4x-oversized streaming set, want ~1", mr)
	}
	if mr := h.L2.MissRate(); mr > 0.1 {
		t.Errorf("L2 miss rate %f on L2-resident set, want ~0", mr)
	}
}
