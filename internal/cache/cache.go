// Package cache models the memory hierarchy of Table 1: split 32KB L1
// instruction/data caches, a 256KB unified L2, a 4MB L3, and 140-cycle
// main memory, with a miss buffer (MSHR) that merges requests to in-flight
// lines and bounds outstanding misses.
package cache

// Config describes one set-associative cache level.
type Config struct {
	SizeBytes int
	Ways      int
	LineBytes int
	Latency   int // total load-to-use latency for a hit at this level
}

type line struct {
	tag     uint64
	valid   bool
	lastUse uint64
}

// noMRU is the empty-slot sentinel for the per-set MRU tag cache. It can
// never collide with a real tag: tags are addr >> log2(LineBytes), so a
// tag of all-ones would require an address above 2^64.
const noMRU = ^uint64(0)

// Cache is one set-associative level with LRU replacement.
//
// Way storage is a single flat slice (set-major) rather than a slice of
// per-set slices, and each set caches the tag of its most-recently-used
// line. The simulator's access stream is dominated by repeated hits on
// the same line, and an MRU hit can skip the way scan and the LRU
// bookkeeping entirely: refreshing the line that already holds the
// unique per-set maximum lastUse cannot change any future victim choice
// (victims are picked by comparing lastUse within one set only), so the
// fast path leaves hit/miss outcomes and both counters byte-identical.
type Cache struct {
	cfg    Config
	lines  []line   // ways*setCnt entries, set-major
	mru    []uint64 // per-set MRU tag, noMRU when unknown
	clock  uint64
	shift  uint // log2(LineBytes)
	setCnt uint64
	ways   int

	Accesses uint64
	Misses   uint64
}

// Geom is one level's derived tag geometry: the line shift and set count
// every tag computation indexes through. Deriving it is where the
// power-of-two validation lives, so a lane group can compute and check
// the geometry once and stamp it into every lane's caches.
type Geom struct {
	Shift  uint   // log2(LineBytes)
	SetCnt uint64 // number of sets (power of two)
}

// Geom derives (and validates) the level's tag geometry.
func (cfg Config) Geom() Geom {
	nsets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	var shift uint
	for s := cfg.LineBytes; s > 1; s >>= 1 {
		shift++
	}
	return Geom{Shift: shift, SetCnt: uint64(nsets)}
}

// New builds a cache from its configuration.
func New(cfg Config) *Cache { return NewWithGeom(cfg, cfg.Geom()) }

// NewWithGeom builds a cache over precomputed geometry; g must be
// cfg.Geom() (lane groups derive it once and share it across lanes).
func NewWithGeom(cfg Config, g Geom) *Cache {
	c := &Cache{
		cfg:    cfg,
		setCnt: g.SetCnt,
		ways:   cfg.Ways,
		shift:  g.Shift,
		lines:  make([]line, int(g.SetCnt)*cfg.Ways),
		mru:    make([]uint64, g.SetCnt),
	}
	for i := range c.mru {
		c.mru[i] = noMRU
	}
	return c
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.shift << c.shift }

// set returns the ways of the set holding tag.
func (c *Cache) set(tag uint64) []line {
	base := int(tag&(c.setCnt-1)) * c.ways
	return c.lines[base : base+c.ways]
}

// Lookup probes for the line containing addr without changing state.
func (c *Cache) Lookup(addr uint64) bool {
	tag := addr >> c.shift
	set := c.set(tag)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Access touches the line containing addr: on a hit it refreshes LRU and
// returns true; on a miss it allocates the line (evicting the LRU way) and
// returns false.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	tag := addr >> c.shift
	si := tag & (c.setCnt - 1)
	if c.mru[si] == tag {
		// The line is already its set's newest; refreshing it would not
		// change relative LRU order, so skip the scan and the clock tick.
		return true
	}
	c.clock++
	base := int(si) * c.ways
	set := c.lines[base : base+c.ways]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.clock
			c.mru[si] = tag
			return true
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	c.Misses++
	set[victim] = line{tag: tag, valid: true, lastUse: c.clock}
	c.mru[si] = tag
	return false
}

// Invalidate drops the line containing addr if present.
func (c *Cache) Invalidate(addr uint64) {
	tag := addr >> c.shift
	set := c.set(tag)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
		}
	}
	if si := tag & (c.setCnt - 1); c.mru[si] == tag {
		c.mru[si] = noMRU
	}
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// ResetStats clears counters without touching contents, so warmup can be
// excluded from measurement.
func (c *Cache) ResetStats() { c.Accesses, c.Misses = 0, 0 }
