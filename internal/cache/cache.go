// Package cache models the memory hierarchy of Table 1: split 32KB L1
// instruction/data caches, a 256KB unified L2, a 4MB L3, and 140-cycle
// main memory, with a miss buffer (MSHR) that merges requests to in-flight
// lines and bounds outstanding misses.
package cache

// Config describes one set-associative cache level.
type Config struct {
	SizeBytes int
	Ways      int
	LineBytes int
	Latency   int // total load-to-use latency for a hit at this level
}

type line struct {
	tag     uint64
	valid   bool
	lastUse uint64
}

// Cache is one set-associative level with LRU replacement.
type Cache struct {
	cfg    Config
	sets   [][]line
	clock  uint64
	shift  uint // log2(LineBytes)
	setCnt uint64

	Accesses uint64
	Misses   uint64
}

// New builds a cache from its configuration.
func New(cfg Config) *Cache {
	nsets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	c := &Cache{cfg: cfg, setCnt: uint64(nsets)}
	c.sets = make([][]line, nsets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for s := cfg.LineBytes; s > 1; s >>= 1 {
		c.shift++
	}
	return c
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.shift << c.shift }

// Lookup probes for the line containing addr without changing state.
func (c *Cache) Lookup(addr uint64) bool {
	tag := addr >> c.shift
	set := c.sets[tag%c.setCnt]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Access touches the line containing addr: on a hit it refreshes LRU and
// returns true; on a miss it allocates the line (evicting the LRU way) and
// returns false.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.Accesses++
	tag := addr >> c.shift
	set := c.sets[tag%c.setCnt]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.clock
			return true
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	c.Misses++
	set[victim] = line{tag: tag, valid: true, lastUse: c.clock}
	return false
}

// Invalidate drops the line containing addr if present.
func (c *Cache) Invalidate(addr uint64) {
	tag := addr >> c.shift
	set := c.sets[tag%c.setCnt]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
		}
	}
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// ResetStats clears counters without touching contents, so warmup can be
// excluded from measurement.
func (c *Cache) ResetStats() { c.Accesses, c.Misses = 0, 0 }
