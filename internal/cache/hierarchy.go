package cache

// HierConfig describes the full Table 1 memory hierarchy.
type HierConfig struct {
	L1I, L1D, L2, L3 Config
	MemLatency       int
	MissBufEntries   int // outstanding-miss limit (Table 1: 64)
}

// DefaultHierConfig returns the Table 1 configuration: 8-way 32KB L1-D,
// 4-way 32KB L1-I, 64B lines, 4-cycle L1; 16-way 256KB L2 at 12 cycles;
// 32-way 4MB L3 at 25 cycles; 140-cycle main memory; 64-entry miss buffer.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:            Config{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, Latency: 4},
		L1D:            Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, Latency: 4},
		L2:             Config{SizeBytes: 256 << 10, Ways: 16, LineBytes: 64, Latency: 12},
		L3:             Config{SizeBytes: 4 << 20, Ways: 32, LineBytes: 64, Latency: 25},
		MemLatency:     140,
		MissBufEntries: 64,
	}
}

// Hierarchy simulates the cache/memory system. Latency modelling is
// ready-time based: an access at cycle `now` returns the cycle at which
// its data is available, merging requests to lines already in flight
// (so two loads to one missing line overlap rather than serialize) and
// stalling when the miss buffer is full.
type Hierarchy struct {
	cfg HierConfig
	L1I *Cache
	L1D *Cache
	L2  *Cache
	L3  *Cache

	inflight map[uint64]int64 // line address -> fill-complete cycle

	DemandMisses uint64 // L1D misses that allocated a miss-buffer entry
	MergedMisses uint64 // accesses that piggybacked on an in-flight line
	MissBufStall uint64 // cycles lost to a full miss buffer

	// OnMiss, when non-nil, observes every L1 miss that goes to the outer
	// hierarchy (merged accesses do not re-fire). The pipeline wires this
	// to its telemetry sink to emit cache-miss events.
	OnMiss func(Miss)
}

// Miss describes one L1 miss for the OnMiss observer.
type Miss struct {
	Addr    uint64
	Inst    bool   // instruction-side (L1I) rather than data-side (L1D)
	Level   string // "l2", "l3" or "mem": where the line was found
	Latency int64  // total load-to-use latency charged
}

// HierGeom bundles the derived tag geometry of all four levels (see
// Geom): a lane group derives it from one HierConfig and shares it when
// building every lane's hierarchy.
type HierGeom struct {
	L1I, L1D, L2, L3 Geom
}

// Geom derives (and validates) the geometry of every level.
func (cfg HierConfig) Geom() HierGeom {
	return HierGeom{
		L1I: cfg.L1I.Geom(), L1D: cfg.L1D.Geom(),
		L2: cfg.L2.Geom(), L3: cfg.L3.Geom(),
	}
}

// NewHierarchyWithGeom builds a hierarchy over precomputed per-level
// geometry; g must be cfg.Geom().
func NewHierarchyWithGeom(cfg HierConfig, g HierGeom) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		L1I: NewWithGeom(cfg.L1I, g.L1I), L1D: NewWithGeom(cfg.L1D, g.L1D),
		L2: NewWithGeom(cfg.L2, g.L2), L3: NewWithGeom(cfg.L3, g.L3),
		inflight: make(map[uint64]int64),
	}
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	return NewHierarchyWithGeom(cfg, cfg.Geom())
}

// NewDefault builds the Table 1 hierarchy.
func NewDefault() *Hierarchy { return NewHierarchy(DefaultHierConfig()) }

func (h *Hierarchy) reap(now int64) {
	for a, done := range h.inflight {
		if done <= now {
			delete(h.inflight, a)
		}
	}
}

// missLatency walks L2/L3/memory for a line that missed in an L1 and
// returns the total load-to-use latency and the level that supplied it.
func (h *Hierarchy) missLatency(addr uint64) (int, string) {
	if h.L2.Access(addr) {
		return h.cfg.L2.Latency, "l2"
	}
	if h.L3.Access(addr) {
		return h.cfg.L3.Latency, "l3"
	}
	return h.cfg.MemLatency, "mem"
}

// Data performs a data access at cycle now and returns the cycle the value
// is available (for loads) or accepted (for stores).
func (h *Hierarchy) Data(now int64, addr uint64) int64 {
	h.reap(now)
	la := h.L1D.LineAddr(addr)
	if done, busy := h.inflight[la]; busy {
		// The line is already being fetched: merge with it.
		h.MergedMisses++
		h.L1D.Access(addr) // counts the access; line will be present by `done`
		if t := now + int64(h.cfg.L1D.Latency); t > done {
			return t
		}
		return done
	}
	if h.L1D.Access(addr) {
		return now + int64(h.cfg.L1D.Latency)
	}
	// Miss: allocate a miss-buffer entry, stalling if full.
	start := now
	if len(h.inflight) >= h.cfg.MissBufEntries {
		earliest := int64(1<<62 - 1)
		var victim uint64
		for a, done := range h.inflight {
			if done < earliest {
				earliest, victim = done, a
			}
		}
		delete(h.inflight, victim)
		if earliest > start {
			h.MissBufStall += uint64(earliest - start)
			start = earliest
		}
	}
	h.DemandMisses++
	lat, level := h.missLatency(addr)
	done := start + int64(lat)
	h.inflight[la] = done
	if h.OnMiss != nil {
		h.OnMiss(Miss{Addr: addr, Level: level, Latency: done - now})
	}
	return done
}

// Inst performs an instruction fetch access for the line containing addr
// and returns the extra stall cycles beyond a first-level hit (0 for an
// L1-I hit: the pipeline's front-end depth already covers hit latency).
func (h *Hierarchy) Inst(addr uint64) int64 {
	if h.L1I.Access(addr) {
		return 0
	}
	lat, level := h.missLatency(addr)
	stall := int64(lat) - int64(h.cfg.L1I.Latency)
	if h.OnMiss != nil {
		h.OnMiss(Miss{Addr: addr, Inst: true, Level: level, Latency: stall})
	}
	return stall
}

// ResetStats clears all counters (contents preserved) for warmup exclusion.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.L3.ResetStats()
	h.DemandMisses, h.MergedMisses, h.MissBufStall = 0, 0, 0
}
