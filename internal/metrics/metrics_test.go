package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"vanguard/internal/core"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/pipeline"
	"vanguard/internal/profile"
)

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); got != 4 {
		t.Errorf("Geomean(2,8) = %f, want 4", got)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
	if Geomean([]float64{1, -1}) != 0 {
		t.Error("non-positive values must yield 0")
	}
}

func TestGeomeanSpeedupPct(t *testing.T) {
	// Two runs at +10% and +21% -> ratios 1.1, 1.21 -> geomean 1.1537...
	got := GeomeanSpeedupPct([]float64{10, 21})
	want := (math.Sqrt(1.1*1.21) - 1) * 100
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("got %f, want %f", got, want)
	}
}

func TestSpeedupPct(t *testing.T) {
	if got := SpeedupPct(110, 100); math.Abs(got-10) > 1e-9 {
		t.Errorf("110/100 cycles = %f%%, want 10", got)
	}
	if SpeedupPct(100, 0) != 0 {
		t.Error("zero experimental cycles must not divide")
	}
}

// Property: geomean lies between min and max of positive inputs.
func TestGeomeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, r := range raw {
			v := math.Abs(r)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestALPBB(t *testing.T) {
	fn := &ir.Func{Name: "f"}
	a := fn.AddBlock("a")
	b := fn.AddBlock("b")
	fn.Emit(a, ir.Ld(isa.R(1), isa.R(2), 0), ir.LdSpec(isa.R(3), isa.R(2), 8), ir.Jmp(b))
	fn.Emit(b, ir.St(isa.R(2), 0, isa.R(1)), ir.Halt())
	p := &ir.Program{Funcs: []*ir.Func{fn}}
	if got := ALPBB(p); got != 1.0 {
		t.Errorf("ALPBB = %f, want 1.0 (2 loads / 2 blocks; stores excluded)", got)
	}
	if ALPBB(&ir.Program{}) != 0 {
		t.Error("empty program ALPBB must be 0")
	}
}

func TestPDIHAndPHI(t *testing.T) {
	rep := &core.Report{Converted: []core.Converted{
		{ID: 1, HoistedB: 4, HoistedC: 2, BlockBSize: 8, BlockCSize: 4},
	}}
	prof := &profile.Profile{ByID: map[int]*profile.Branch{
		1: {ID: 1, Execs: 100, Taken: 50},
	}}
	// hoisted dynamic = 100 * (4*0.5 + 2*0.5) = 300; over 10_000 instrs = 3%.
	if got := PDIH(rep, prof, 10000); math.Abs(got-3) > 1e-9 {
		t.Errorf("PDIH = %f, want 3", got)
	}
	if got := PHI(rep); math.Abs(got-50) > 1e-9 {
		t.Errorf("PHI = %f, want 50 (6 of 12)", got)
	}
	if PDIH(rep, prof, 0) != 0 || PHI(&core.Report{}) != 0 {
		t.Error("degenerate inputs must be 0")
	}
}

func TestASPCB(t *testing.T) {
	rep := &core.Report{Converted: []core.Converted{{ID: 1}, {ID: 2}}}
	st := &pipeline.Stats{PerBranch: map[int]*pipeline.BranchStats{
		1: {Execs: 10, StallCycles: 100},
		2: {Execs: 10, StallCycles: 20},
	}}
	if got := ASPCB(rep, st); math.Abs(got-6) > 1e-9 {
		t.Errorf("ASPCB = %f, want 6 (120 stalls / 20 execs)", got)
	}
	if ASPCB(&core.Report{}, &pipeline.Stats{}) != 0 {
		t.Error("no converted branches must yield 0")
	}
}
