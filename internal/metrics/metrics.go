// Package metrics computes the evaluation metrics of Table 2 and the
// aggregate statistics (geometric means of speedups) the paper reports.
package metrics

import (
	"math"

	"vanguard/internal/core"
	"vanguard/internal/ir"
	"vanguard/internal/pipeline"
	"vanguard/internal/profile"
)

// Geomean returns the geometric mean of positive values; zero-length input
// returns 0.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// GeomeanSpeedupPct aggregates per-benchmark percentage speedups the way
// the paper does: geomean of the ratios, expressed as a percentage gain.
func GeomeanSpeedupPct(pcts []float64) float64 {
	ratios := make([]float64, len(pcts))
	for i, p := range pcts {
		ratios[i] = 1 + p/100
	}
	return (Geomean(ratios) - 1) * 100
}

// SpeedupPct converts baseline/experimental cycle counts to a % speedup.
func SpeedupPct(baseCycles, expCycles int64) float64 {
	if expCycles == 0 {
		return 0
	}
	return (float64(baseCycles)/float64(expCycles) - 1) * 100
}

// ALPBB returns the static average number of loads per basic block.
func ALPBB(p *ir.Program) float64 {
	loads, blocks := 0, 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				continue
			}
			blocks++
			for _, ins := range b.Instrs {
				if ins.IsLoad() {
					loads++
				}
			}
		}
	}
	if blocks == 0 {
		return 0
	}
	return float64(loads) / float64(blocks)
}

// Table2Row is one line of the paper's Table 2.
type Table2Row struct {
	Name  string
	SPD   float64 // % speedup (geomean over REF inputs, 4-wide)
	PBC   float64 // % of static forward branches converted
	PDIH  float64 // avg % of dynamic instructions hoisted above converted branches
	ALPBB float64 // avg loads per basic block
	ASPCB float64 // avg stall cycles per converted branch execution
	PHI   float64 // avg % of instructions hoistable from succeeding block
	MPPKI float64 // branch mispredictions per thousand instructions (baseline)
	PISCS float64 // % increase in static code size
}

// PDIH computes the dynamic-hoisted percentage from the transform report,
// the profile (for per-branch taken rates and execution counts), and the
// dynamic instruction count of the run.
func PDIH(rep *core.Report, prof *profile.Profile, dynInstrs int64) float64 {
	if dynInstrs == 0 {
		return 0
	}
	var hoisted float64
	for _, c := range rep.Converted {
		b := prof.ByID[c.ID]
		if b == nil {
			continue
		}
		t := b.TakenRate()
		hoisted += float64(b.Execs) * (float64(c.HoistedB)*(1-t) + float64(c.HoistedC)*t)
	}
	return 100 * hoisted / float64(dynInstrs)
}

// PHI computes the static hoistable fraction over converted branches.
func PHI(rep *core.Report) float64 {
	var hoisted, total int
	for _, c := range rep.Converted {
		hoisted += c.HoistedB + c.HoistedC
		total += c.BlockBSize + c.BlockCSize
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(hoisted) / float64(total)
}

// ASPCB computes average issue-head stall cycles per converted-branch
// execution from the experimental run's per-branch stats.
func ASPCB(rep *core.Report, st *pipeline.Stats) float64 {
	var stall, execs int64
	for _, c := range rep.Converted {
		if bs := st.PerBranch[c.ID]; bs != nil {
			stall += bs.StallCycles
			execs += bs.Execs
		}
	}
	if execs == 0 {
		return 0
	}
	return float64(stall) / float64(execs)
}
