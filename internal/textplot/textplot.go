// Package textplot renders small ASCII charts for the CLI tools: labelled
// horizontal bar charts for the speedup figures and two-series line plots
// for the predictability-vs-bias curves. Pure text, no dependencies — the
// evaluation figures stay readable in a terminal or a commit message.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"vanguard/internal/trace"
)

// Bar is one labelled value in a bar chart.
type Bar struct {
	Label string
	Value float64
}

// Bars renders a horizontal bar chart scaled to width columns. Negative
// values render to the left of the axis.
func Bars(w io.Writer, title string, bars []Bar, width int) {
	if width <= 0 {
		width = 50
	}
	fmt.Fprintln(w, title)
	if len(bars) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	maxAbs := 0.0
	labelW := 0
	for _, b := range bars {
		if a := math.Abs(b.Value); a > maxAbs {
			maxAbs = a
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	for _, b := range bars {
		n := int(math.Abs(b.Value)/maxAbs*float64(width) + 0.5)
		bar := strings.Repeat("#", n)
		if b.Value < 0 {
			fmt.Fprintf(w, "  %-*s %8.2f -|%s\n", labelW, b.Label, b.Value, bar)
		} else {
			fmt.Fprintf(w, "  %-*s %8.2f  |%s\n", labelW, b.Label, b.Value, bar)
		}
	}
}

// stackRunes are the fill characters stacked-bar segments cycle through,
// in segment order. Distinct fills keep adjacent segments tellable apart
// in plain terminals; the legend maps each rune back to its name.
var stackRunes = []byte("#=+:%o*.x~^&@$w")

// StackedBar is one bar of a stacked chart: a label and the per-segment
// values, parallel to the segment-name slice given to StackedBars.
type StackedBar struct {
	Label    string
	Segments []float64
}

// StackedBars renders horizontal stacked bars (the CPI-stack figure):
// each bar is split into contiguous runs of segment fill characters,
// proportional to that segment's share, with all bars on one absolute
// scale so their total lengths compare. Zero-width segments that are
// nonzero render nothing rather than stealing a cell; a trailing legend
// maps fills to segment names. Negative segment values are clamped to
// zero (a stack has no negative area).
func StackedBars(w io.Writer, title string, names []string, bars []StackedBar, width int) {
	if width <= 0 {
		width = 60
	}
	fmt.Fprintln(w, title)
	if len(bars) == 0 || len(names) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	maxTotal, labelW := 0.0, 0
	totals := make([]float64, len(bars))
	for i, b := range bars {
		for _, v := range b.Segments {
			if v > 0 {
				totals[i] += v
			}
		}
		if totals[i] > maxTotal {
			maxTotal = totals[i]
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if maxTotal == 0 {
		maxTotal = 1
	}
	for i, b := range bars {
		var sb strings.Builder
		// Cumulative rounding: segment k ends at round(prefix_k/max*width),
		// so cell counts always sum to the bar's rounded total length.
		prefix, prev := 0.0, 0
		for s, v := range b.Segments {
			if s >= len(names) {
				break
			}
			if v > 0 {
				prefix += v
			}
			end := int(prefix/maxTotal*float64(width) + 0.5)
			for j := prev; j < end; j++ {
				sb.WriteByte(stackRunes[s%len(stackRunes)])
			}
			prev = end
		}
		fmt.Fprintf(w, "  %-*s %10.2f |%s\n", labelW, b.Label, totals[i], sb.String())
	}
	var leg strings.Builder
	for s, name := range names {
		if s > 0 {
			leg.WriteString("  ")
		}
		fmt.Fprintf(&leg, "%c=%s", stackRunes[s%len(stackRunes)], name)
	}
	fmt.Fprintf(w, "  legend: %s\n", leg.String())
}

// Hist renders a trace.Hist as a labelled horizontal bar chart, one row
// per non-empty power-of-two bucket, with a summary line of count, mean
// and tail quantiles. Empty histograms render a single placeholder row.
func Hist(w io.Writer, title string, h *trace.Hist, width int) {
	if width <= 0 {
		width = 40
	}
	if h.Count == 0 {
		fmt.Fprintf(w, "%s: (no samples)\n", title)
		return
	}
	fmt.Fprintf(w, "%s: count=%d mean=%.1f p50<=%d p99<=%d max=%d\n",
		title, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.MaxV)
	var maxN int64
	for _, n := range h.Buckets {
		if n > maxN {
			maxN = n
		}
	}
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		lo, hi := trace.BucketBounds(i)
		label := fmt.Sprintf("[%d,%d)", lo, hi)
		if i == 0 {
			label = fmt.Sprintf("<=%d", 0)
		} else if hi == math.MaxInt64 {
			label = fmt.Sprintf(">=%d", lo)
		}
		bar := strings.Repeat("#", int(float64(n)/float64(maxN)*float64(width)+0.5))
		if bar == "" {
			bar = "."
		}
		fmt.Fprintf(w, "  %-22s %10d |%s\n", label, n, bar)
	}
}

// sparkRunes are the eight block-element levels of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders xs as a one-line unicode sparkline at most width cells
// wide, preceded by the title and followed by a min/max/last summary —
// the shape cycle-window time series (IPC per window, mispredicts per
// window) take in terminal output. Longer series are downsampled by
// averaging equal spans of consecutive points into each cell.
func Spark(w io.Writer, title string, xs []float64, width int) {
	if width <= 0 {
		width = 60
	}
	if len(xs) == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	cells := xs
	if len(xs) > width {
		cells = make([]float64, width)
		for i := range cells {
			// Average the half-open span [a, b) of source points; spans
			// tile the input exactly, so every point lands in one cell.
			a := i * len(xs) / width
			b := (i + 1) * len(xs) / width
			sum := 0.0
			for _, v := range xs[a:b] {
				sum += v
			}
			cells[i] = sum / float64(b-a)
		}
	}
	// Glyph levels scale to the rendered cells (post-averaging), so the
	// line always spans the full rune range; the summary reports the raw
	// extremes.
	clo, chi := cells[0], cells[0]
	for _, v := range cells {
		clo = math.Min(clo, v)
		chi = math.Max(chi, v)
	}
	var sb strings.Builder
	for _, v := range cells {
		level := 0
		if chi > clo {
			level = int((v - clo) / (chi - clo) * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[level])
	}
	fmt.Fprintf(w, "%s: %s  min=%.3g max=%.3g last=%.3g n=%d\n",
		title, sb.String(), lo, hi, xs[len(xs)-1], len(xs))
}

// Series renders one or two y-series over a shared x axis as a height×width
// character grid — enough to see the Figure 2/3 shape (predictability
// staying high while bias falls). The first series plots as '*', the
// second as 'o'; collisions show '@'.
func Series(w io.Writer, title string, names [2]string, ys [2][]float64, width, height int) {
	if width <= 0 {
		width = 75
	}
	if height <= 0 {
		height = 16
	}
	fmt.Fprintln(w, title)
	n := len(ys[0])
	if len(ys[1]) > n {
		n = len(ys[1])
	}
	if n == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range ys {
		for _, v := range s {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(s []float64, mark byte) {
		for i, v := range s {
			x := 0
			if len(s) > 1 {
				x = i * (width - 1) / (len(s) - 1)
			}
			y := int((hi - v) / (hi - lo) * float64(height-1))
			if grid[y][x] != ' ' && grid[y][x] != mark {
				grid[y][x] = '@'
			} else {
				grid[y][x] = mark
			}
		}
	}
	plot(ys[0], '*')
	plot(ys[1], 'o')
	for r, row := range grid {
		yval := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(w, "  %6.2f |%s\n", yval, string(row))
	}
	fmt.Fprintf(w, "         %s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "  *=%s  o=%s  (x: rank 1..%d)\n", names[0], names[1], n)
}
