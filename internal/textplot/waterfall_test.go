package textplot

import (
	"strings"
	"testing"

	"vanguard/internal/trace"
)

func waterfallReport() *trace.PipeviewReport {
	return &trace.PipeviewReport{
		Trigger: "all", TriggerCycle: -1, From: 100, To: 130,
		Records: []trace.PipeviewRecord{
			{Seq: 40, PC: 6, Asm: "addi r1, r1, 1", Fetch: 100, Issue: 104, Complete: 105, Commit: 110, Squash: -1, Drop: -1},
			{Seq: 41, PC: 7, Asm: "ld r7, 0(r6)", Fetch: 100, Issue: 105, Complete: 125, Commit: 110, Squash: -1, Drop: -1},
			{Seq: 42, PC: 8, Asm: "predict @6", Branch: 2, Fetch: 101, Issue: -1, Complete: -1, Commit: -1, Squash: -1, Drop: 101, DBBPush: true, DBBOcc: 1},
			{Seq: 43, PC: 9, Asm: "br r8, @12", Branch: 1, Fetch: 101, Issue: 106, Complete: 107, Commit: 110, Squash: -1, Drop: -1, Cause: "branch", Mispredict: true},
			{Seq: 44, PC: 10, Asm: "a-very-long-disassembly-label", Fetch: 102, Issue: 108, Complete: 109, Commit: -1, Squash: 110, Drop: -1, Cause: "branch"},
			{Seq: 45, PC: 12, Asm: "st r5, 0(r6)", Fetch: 111, Issue: 115, Complete: -1, Commit: -1, Squash: -1, Drop: -1},
		},
	}
}

// wantWaterfall is the pinned rendering at width 31 (one column per
// cycle for the 31-cycle span): every phase glyph, terminal, the
// mispredict marker, label truncation and the right-margin annotations.
const wantWaterfall = `pipeline waterfall
  cycles 100..130 (1 per column), 6 record(s)
       40 addi r1, r1, 1         |ffff=-----C|
       41 ld r7, 0(r6)           |fffff=====C|
       42 predict @6             | D| dbb+1 b2
       43 br r8, @12             | fffff=---!| MISP:branch b1
       44 a-very-long-disassem.. |  ffffff=-X| killed:branch
       45 st r5, 0(r6)           |           ffff===============>|
  legend: f=front-end ==executing -=done C=commit X=squash D=predict-drop !=mispredict >=truncated
`

// TestWaterfallGolden pins the ASCII rendering byte-for-byte: the
// waterfall is a debugging surface, so its output must be deterministic
// and stable for a given report and width.
func TestWaterfallGolden(t *testing.T) {
	var sb strings.Builder
	Waterfall(&sb, "pipeline waterfall", waterfallReport(), 31)
	if got := sb.String(); got != wantWaterfall {
		t.Errorf("waterfall drifted:\ngot:\n%swant:\n%s", got, wantWaterfall)
	}
	// Byte stability across renders.
	var sb2 strings.Builder
	Waterfall(&sb2, "pipeline waterfall", waterfallReport(), 31)
	if sb.String() != sb2.String() {
		t.Error("two renders of the same report differ")
	}
}

// TestWaterfallDownsamples pins the wide-span path: spans beyond the
// width collapse multiple cycles per column with terminals winning the
// glyph contest, and the header reports the scale.
func TestWaterfallDownsamples(t *testing.T) {
	rep := waterfallReport()
	var sb strings.Builder
	Waterfall(&sb, "w", rep, 8)
	out := sb.String()
	if !strings.Contains(out, "(4 per column)") {
		t.Errorf("downsampled header missing scale:\n%s", out)
	}
	for _, g := range []string{"C", "X", "D", "!"} {
		if !strings.Contains(out, g) {
			t.Errorf("downsampling lost terminal glyph %q:\n%s", g, out)
		}
	}
}

// TestWaterfallEmpty pins the no-capture placeholder.
func TestWaterfallEmpty(t *testing.T) {
	var sb strings.Builder
	Waterfall(&sb, "empty", nil, 40)
	if !strings.Contains(sb.String(), "(no records captured)") {
		t.Errorf("missing placeholder:\n%s", sb.String())
	}
}
