package textplot

import (
	"strings"
	"testing"

	"vanguard/internal/trace"
)

func TestBarsScalesToWidth(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "speedups", []Bar{
		{"h264ref", 20},
		{"mcf", 10},
		{"dealII", -1},
	}, 40)
	out := sb.String()
	if !strings.Contains(out, "speedups") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	count := func(s string) int { return strings.Count(s, "#") }
	if count(lines[1]) != 40 {
		t.Errorf("max bar must fill the width: %q", lines[1])
	}
	if c := count(lines[2]); c != 20 {
		t.Errorf("half value must render half the width, got %d", c)
	}
	if !strings.Contains(lines[3], "-|") {
		t.Errorf("negative bar must mark the axis: %q", lines[3])
	}
}

func TestBarsDegenerate(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "empty", nil, 0)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty chart must say so")
	}
	sb.Reset()
	Bars(&sb, "zeros", []Bar{{"a", 0}}, 10)
	if strings.Contains(sb.String(), "#") {
		t.Error("zero bar must be empty")
	}
}

func TestSeriesShape(t *testing.T) {
	bias := []float64{0.95, 0.9, 0.8, 0.7, 0.6, 0.55}
	pred := []float64{0.96, 0.95, 0.93, 0.92, 0.9, 0.9}
	var sb strings.Builder
	Series(&sb, "fig2", [2]string{"bias", "pred"}, [2][]float64{bias, pred}, 30, 8)
	out := sb.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("both series must be plotted:\n%s", out)
	}
	if !strings.Contains(out, "*=bias") || !strings.Contains(out, "o=pred") {
		t.Error("legend missing")
	}
	// The top-left corner region should hold the high starting values and
	// the bottom rows the low bias tail.
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Fatalf("grid too small:\n%s", out)
	}
}

func TestSeriesDegenerate(t *testing.T) {
	var sb strings.Builder
	Series(&sb, "flat", [2]string{"a", "b"}, [2][]float64{{}, {}}, 10, 4)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty series must say so")
	}
	sb.Reset()
	// Constant series must not divide by zero.
	Series(&sb, "const", [2]string{"a", "b"}, [2][]float64{{1, 1, 1}, {1, 1}}, 10, 4)
	if !strings.Contains(sb.String(), "*") {
		t.Error("constant series must still plot")
	}
}

func TestHistRendersBucketsAndSummary(t *testing.T) {
	var h trace.Hist
	for i := 0; i < 10; i++ {
		h.Observe(5) // bucket [4,8)
	}
	h.Observe(100) // bucket [64,128)
	var sb strings.Builder
	Hist(&sb, "latency", &h, 20)
	out := sb.String()
	if !strings.Contains(out, "latency: count=11") {
		t.Errorf("missing summary line: %q", out)
	}
	if !strings.Contains(out, "[4,8)") || !strings.Contains(out, "[64,128)") {
		t.Errorf("missing bucket labels: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want summary + 2 bucket rows, got %d:\n%s", len(lines), out)
	}
	if c := strings.Count(lines[1], "#"); c != 20 {
		t.Errorf("modal bucket must fill the width, got %d hashes: %q", c, lines[1])
	}
	// A tiny-but-nonzero bucket must still render a visible mark.
	if !strings.Contains(lines[2], "|") || len(strings.TrimSpace(strings.SplitN(lines[2], "|", 2)[1])) == 0 {
		t.Errorf("nonzero bucket rendered empty: %q", lines[2])
	}
}

func TestHistEmpty(t *testing.T) {
	var h trace.Hist
	var sb strings.Builder
	Hist(&sb, "empty", &h, 20)
	if !strings.Contains(sb.String(), "(no samples)") {
		t.Errorf("empty histogram must render a placeholder: %q", sb.String())
	}
}
