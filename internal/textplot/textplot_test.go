package textplot

import (
	"strings"
	"testing"

	"vanguard/internal/trace"
)

func TestBarsScalesToWidth(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "speedups", []Bar{
		{"h264ref", 20},
		{"mcf", 10},
		{"dealII", -1},
	}, 40)
	out := sb.String()
	if !strings.Contains(out, "speedups") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	count := func(s string) int { return strings.Count(s, "#") }
	if count(lines[1]) != 40 {
		t.Errorf("max bar must fill the width: %q", lines[1])
	}
	if c := count(lines[2]); c != 20 {
		t.Errorf("half value must render half the width, got %d", c)
	}
	if !strings.Contains(lines[3], "-|") {
		t.Errorf("negative bar must mark the axis: %q", lines[3])
	}
}

func TestBarsDegenerate(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "empty", nil, 0)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty chart must say so")
	}
	sb.Reset()
	Bars(&sb, "zeros", []Bar{{"a", 0}}, 10)
	if strings.Contains(sb.String(), "#") {
		t.Error("zero bar must be empty")
	}
}

func TestSeriesShape(t *testing.T) {
	bias := []float64{0.95, 0.9, 0.8, 0.7, 0.6, 0.55}
	pred := []float64{0.96, 0.95, 0.93, 0.92, 0.9, 0.9}
	var sb strings.Builder
	Series(&sb, "fig2", [2]string{"bias", "pred"}, [2][]float64{bias, pred}, 30, 8)
	out := sb.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("both series must be plotted:\n%s", out)
	}
	if !strings.Contains(out, "*=bias") || !strings.Contains(out, "o=pred") {
		t.Error("legend missing")
	}
	// The top-left corner region should hold the high starting values and
	// the bottom rows the low bias tail.
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Fatalf("grid too small:\n%s", out)
	}
}

func TestSeriesDegenerate(t *testing.T) {
	var sb strings.Builder
	Series(&sb, "flat", [2]string{"a", "b"}, [2][]float64{{}, {}}, 10, 4)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty series must say so")
	}
	sb.Reset()
	// Constant series must not divide by zero.
	Series(&sb, "const", [2]string{"a", "b"}, [2][]float64{{1, 1, 1}, {1, 1}}, 10, 4)
	if !strings.Contains(sb.String(), "*") {
		t.Error("constant series must still plot")
	}
}

func TestHistRendersBucketsAndSummary(t *testing.T) {
	var h trace.Hist
	for i := 0; i < 10; i++ {
		h.Observe(5) // bucket [4,8)
	}
	h.Observe(100) // bucket [64,128)
	var sb strings.Builder
	Hist(&sb, "latency", &h, 20)
	out := sb.String()
	if !strings.Contains(out, "latency: count=11") {
		t.Errorf("missing summary line: %q", out)
	}
	if !strings.Contains(out, "[4,8)") || !strings.Contains(out, "[64,128)") {
		t.Errorf("missing bucket labels: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want summary + 2 bucket rows, got %d:\n%s", len(lines), out)
	}
	if c := strings.Count(lines[1], "#"); c != 20 {
		t.Errorf("modal bucket must fill the width, got %d hashes: %q", c, lines[1])
	}
	// A tiny-but-nonzero bucket must still render a visible mark.
	if !strings.Contains(lines[2], "|") || len(strings.TrimSpace(strings.SplitN(lines[2], "|", 2)[1])) == 0 {
		t.Errorf("nonzero bucket rendered empty: %q", lines[2])
	}
}

func TestHistEmpty(t *testing.T) {
	var h trace.Hist
	var sb strings.Builder
	Hist(&sb, "empty", &h, 20)
	if !strings.Contains(sb.String(), "(no samples)") {
		t.Errorf("empty histogram must render a placeholder: %q", sb.String())
	}
}

func TestHistSingleBucket(t *testing.T) {
	var h trace.Hist
	h.Observe(6) // the only occupied bucket, [4,8)
	var sb strings.Builder
	Hist(&sb, "one", &h, 20)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want summary + 1 bucket row, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "count=1") || !strings.Contains(lines[0], "max=6") {
		t.Errorf("summary wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "[4,8)") {
		t.Errorf("bucket label wrong: %q", lines[1])
	}
	if c := strings.Count(lines[1], "#"); c != 20 {
		t.Errorf("sole bucket must fill the width, got %d hashes: %q", c, lines[1])
	}
}

func TestHistAllEqualValues(t *testing.T) {
	var h trace.Hist
	for i := 0; i < 1000; i++ {
		h.Observe(17) // all in [16,32)
	}
	var sb strings.Builder
	Hist(&sb, "const", &h, 20)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("all-equal values must occupy exactly one bucket row, got %d:\n%s",
			len(lines), out)
	}
	if !strings.Contains(lines[0], "count=1000") || !strings.Contains(lines[0], "mean=17.0") {
		t.Errorf("summary wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "[16,32)") {
		t.Errorf("bucket label wrong: %q", lines[1])
	}
}

func TestSparkRendersLevels(t *testing.T) {
	var sb strings.Builder
	Spark(&sb, "ipc", []float64{0, 1, 2, 3}, 10)
	out := sb.String()
	if !strings.HasPrefix(out, "ipc: ") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "▁") || !strings.Contains(out, "█") {
		t.Errorf("min/max runes missing: %q", out)
	}
	if !strings.Contains(out, "min=0") || !strings.Contains(out, "max=3") ||
		!strings.Contains(out, "last=3") || !strings.Contains(out, "n=4") {
		t.Errorf("summary wrong: %q", out)
	}
	// Short series are not padded: 4 points -> 4 cells.
	cells := strings.SplitN(out, ": ", 2)[1]
	cells = strings.SplitN(cells, "  ", 2)[0]
	if n := len([]rune(cells)); n != 4 {
		t.Errorf("want 4 cells, got %d: %q", n, out)
	}
}

func TestSparkDownsamples(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	var sb strings.Builder
	Spark(&sb, "long", xs, 20)
	out := sb.String()
	cells := strings.SplitN(out, ": ", 2)[1]
	cells = strings.SplitN(cells, "  ", 2)[0]
	if n := len([]rune(cells)); n != 20 {
		t.Errorf("want exactly 20 cells, got %d: %q", n, out)
	}
	runes := []rune(cells)
	if runes[0] != '▁' || runes[len(runes)-1] != '█' {
		t.Errorf("monotone ramp must start low and end high: %q", cells)
	}
	for i := 1; i < len(runes); i++ {
		prev := strings.IndexRune(string(sparkRunes), runes[i-1])
		cur := strings.IndexRune(string(sparkRunes), runes[i])
		if cur < prev {
			t.Errorf("monotone input rendered non-monotone at cell %d: %q", i, cells)
		}
	}
}

func TestSparkDegenerate(t *testing.T) {
	var sb strings.Builder
	Spark(&sb, "empty", nil, 10)
	if !strings.Contains(sb.String(), "(no data)") {
		t.Errorf("empty sparkline must say so: %q", sb.String())
	}
	sb.Reset()
	// All-equal values must not divide by zero and render the low rune.
	Spark(&sb, "flat", []float64{2, 2, 2}, 10)
	out := sb.String()
	if !strings.Contains(out, "▁▁▁") {
		t.Errorf("flat series must render uniform low cells: %q", out)
	}
	if !strings.Contains(out, "min=2 max=2 last=2 n=3") {
		t.Errorf("flat summary wrong: %q", out)
	}
	sb.Reset()
	Spark(&sb, "one", []float64{5}, 10)
	if !strings.Contains(sb.String(), "n=1") {
		t.Errorf("single point must render: %q", sb.String())
	}
}

func TestStackedBarsProportions(t *testing.T) {
	var sb strings.Builder
	StackedBars(&sb, "cpi", []string{"base", "mispredict", "load"}, []StackedBar{
		{"baseline", []float64{10, 20, 10}},
		{"vanguard", []float64{10, 5, 5}},
	}, 40)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want title + 2 bars + legend, got %d:\n%s", len(lines), out)
	}
	// The tallest bar spans the full width with cumulative-rounded
	// segments: 10/40, 20/40, 10/40 of 40 cells = 10, 20, 10.
	base := strings.SplitN(lines[1], "|", 2)[1]
	if base != strings.Repeat("#", 10)+strings.Repeat("=", 20)+strings.Repeat("+", 10) {
		t.Errorf("baseline segments wrong: %q", base)
	}
	// The second bar shares the absolute scale: total 20 of 40 cells.
	vang := strings.SplitN(lines[2], "|", 2)[1]
	if len(vang) != 20 {
		t.Errorf("second bar must be half the first: %q", vang)
	}
	if !strings.Contains(lines[3], "#=base") || !strings.Contains(lines[3], "==mispredict") ||
		!strings.Contains(lines[3], "+=load") {
		t.Errorf("legend wrong: %q", lines[3])
	}
}

func TestStackedBarsConservesCells(t *testing.T) {
	// Awkward fractions: cumulative rounding must make the cell count per
	// bar equal the rounded total, never off-by-one from per-segment
	// rounding drift.
	bars := []StackedBar{
		{"a", []float64{1, 1, 1, 1, 1, 1, 1}},
		{"b", []float64{3.3, 3.3, 0.4}},
	}
	var sb strings.Builder
	StackedBars(&sb, "t", []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6"}, bars, 33)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	for i, b := range bars {
		total := 0.0
		for _, v := range b.Segments {
			total += v
		}
		cells := strings.SplitN(lines[1+i], "|", 2)[1]
		want := int(total/7*33 + 0.5)
		if len(cells) != want {
			t.Errorf("bar %s: %d cells, want %d: %q", b.Label, len(cells), want, cells)
		}
	}
}

func TestStackedBarsDegenerate(t *testing.T) {
	var sb strings.Builder
	StackedBars(&sb, "empty", []string{"x"}, nil, 10)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty chart must say so")
	}
	sb.Reset()
	// All-zero and negative segments must not crash or render junk.
	StackedBars(&sb, "zeros", []string{"a", "b"}, []StackedBar{{"z", []float64{0, -5}}}, 10)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if cells := strings.SplitN(lines[1], "|", 2)[1]; cells != "" {
		t.Errorf("zero/negative bar must render empty: %q", cells)
	}
}
