package textplot

import (
	"fmt"
	"io"
	"strings"

	"vanguard/internal/trace"
)

// Waterfall glyphs, one per lifetime phase; when several phases share a
// downsampled column the highest-priority one wins (terminal events over
// in-flight phases over front-end residence).
const (
	wfFront    = 'f' // fetched, waiting in the front end
	wfExec     = '=' // issued, executing
	wfWait     = '-' // result written back, waiting to commit
	wfCommit   = 'C'
	wfSquash   = 'X'
	wfDrop     = 'D' // PREDICT consumed by the front end
	wfMispred  = '!' // mispredicting speculation point's resolution cycle
	wfTruncate = '>' // lifetime still open when the capture ended
)

// wfPriority ranks glyphs for downsampled columns (higher wins).
func wfPriority(g byte) int {
	switch g {
	case wfSquash, wfMispred:
		return 5
	case wfCommit, wfDrop:
		return 4
	case wfTruncate:
		return 3
	case wfExec:
		return 2
	case wfFront:
		return 1
	case wfWait:
		return 1
	}
	return 0
}

// Waterfall renders per-instruction lifetime records as an ASCII pipeline
// diagram: one row per record, one column per cycle (downsampled when the
// span exceeds width columns), glyphs f/=/- for front-end, execute and
// completed phases, C/X/D terminals (commit, squash, front-end drop) and
// ! on a mispredicting resolution. Output is deterministic and
// byte-stable for a given report and width.
func Waterfall(w io.Writer, title string, rep *trace.PipeviewReport, width int) {
	if width <= 0 {
		width = 64
	}
	fmt.Fprintln(w, title)
	if rep == nil || len(rep.Records) == 0 {
		fmt.Fprintln(w, "  (no records captured)")
		return
	}
	span := rep.To - rep.From + 1
	perCol := (span + int64(width) - 1) / int64(width)
	if perCol < 1 {
		perCol = 1
	}
	cols := int((span + perCol - 1) / perCol)
	fmt.Fprintf(w, "  cycles %d..%d (%d per column), %d record(s)\n",
		rep.From, rep.To, perCol, len(rep.Records))

	col := func(c int64) int {
		n := int((c - rep.From) / perCol)
		if n < 0 {
			n = 0
		}
		if n >= cols {
			n = cols - 1
		}
		return n
	}
	line := make([]byte, cols)
	for i := range rep.Records {
		r := &rep.Records[i]
		for j := range line {
			line[j] = ' '
		}
		put := func(c int64, g byte) {
			if c < rep.From || c > rep.To {
				return
			}
			if at := col(c); wfPriority(g) > wfPriority(line[at]) {
				line[at] = g
			}
		}
		phase := func(from, to int64, g byte) {
			if from < 0 || to < from {
				return
			}
			for c := from; c <= to; c += perCol {
				put(c, g)
			}
			put(to, g)
		}
		term := r.Terminal()
		endOf := func(next int64) int64 {
			if next >= 0 {
				return next - 1
			}
			if term >= 0 {
				return term
			}
			return rep.To
		}
		phase(r.Fetch, endOf(r.Issue), wfFront)
		if r.Issue >= 0 {
			end := endOf(r.Complete)
			if term >= 0 && end > term {
				end = term
			}
			phase(r.Issue, end, wfExec)
			if r.Complete >= 0 && term > r.Complete {
				phase(r.Complete, term, wfWait)
			}
		}
		switch {
		case r.Squash >= 0:
			put(r.Squash, wfSquash)
		case r.Commit >= 0:
			if r.Mispredict {
				put(r.Commit, wfMispred)
			} else {
				put(r.Commit, wfCommit)
			}
		case r.Drop >= 0:
			put(r.Drop, wfDrop)
		default:
			put(rep.To, wfTruncate)
		}

		row := fmt.Sprintf("  %7d %-22s |%s|", r.Seq, wfTrim(r.Asm, 22),
			strings.TrimRight(string(line), " "))
		if note := wfNote(r); note != "" {
			row += " " + note
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintln(w, "  legend: f=front-end ==executing -=done C=commit X=squash D=predict-drop !=mispredict >=truncated")
}

// wfNote renders a record's right-margin annotation.
func wfNote(r *trace.PipeviewRecord) string {
	var parts []string
	if r.Mispredict {
		parts = append(parts, "MISP:"+r.Cause)
	} else if r.Squash >= 0 && r.Cause != "" {
		parts = append(parts, "killed:"+r.Cause)
	}
	if r.ResolveFire {
		parts = append(parts, "fire")
	}
	if r.DBBPush {
		parts = append(parts, fmt.Sprintf("dbb+%d", r.DBBOcc))
	}
	if r.DBBPop {
		parts = append(parts, fmt.Sprintf("dbb-%d", r.DBBOcc))
	}
	if r.Branch > 0 {
		parts = append(parts, fmt.Sprintf("b%d", r.Branch))
	}
	return strings.Join(parts, " ")
}

// wfTrim truncates a label to n bytes with an ellipsis marker.
func wfTrim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-2] + ".."
}
