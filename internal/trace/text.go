package trace

import (
	"fmt"
	"io"
)

// Text renders events as human-readable lines. With All unset it prints
// only issue and mispredict lines, byte-identical to the historical
// vgrun -trace output; with All set every event kind is rendered.
type Text struct {
	W   io.Writer
	All bool
}

// NewText returns a text sink over w in compatibility (issue+mispredict
// only) mode.
func NewText(w io.Writer) *Text { return &Text{W: w} }

// Emit implements Sink.
func (t *Text) Emit(ev Event) {
	switch ev.Kind {
	case KindIssue:
		fmt.Fprintf(t.W, "[%d] issue seq=%d pc=%d %v\n", ev.Cycle, ev.Seq, ev.PC, ev.Ins)
	case KindMispredict:
		fmt.Fprintf(t.W, "[%d] MISPREDICT %v at pc %d -> redirect %d\n", ev.Cycle, ev.Ins, ev.PC, ev.Val)
	default:
		if !t.All {
			return
		}
		t.emitVerbose(ev)
	}
}

func (t *Text) emitVerbose(ev Event) {
	switch ev.Kind {
	case KindFetch:
		fmt.Fprintf(t.W, "[%d] fetch seq=%d pc=%d %v\n", ev.Cycle, ev.Seq, ev.PC, ev.Ins)
	case KindCommit:
		fmt.Fprintf(t.W, "[%d] commit seq=%d pc=%d %v\n", ev.Cycle, ev.Seq, ev.PC, ev.Ins)
	case KindSquash:
		fmt.Fprintf(t.W, "[%d] squash %d instruction(s) younger than seq=%d\n", ev.Cycle, ev.Val, ev.Seq)
	case KindResolveFire:
		fmt.Fprintf(t.W, "[%d] resolve-fire seq=%d pc=%d -> correction %d\n", ev.Cycle, ev.Seq, ev.PC, ev.Val)
	case KindDBBPush:
		fmt.Fprintf(t.W, "[%d] dbb-push pc=%d occ=%d%s\n", ev.Cycle, ev.PC, ev.Val, causeSuffix(ev.Cause))
	case KindDBBPop:
		fmt.Fprintf(t.W, "[%d] dbb-pop pc=%d occ=%d\n", ev.Cycle, ev.PC, ev.Val)
	case KindCacheMiss:
		fmt.Fprintf(t.W, "[%d] cache-miss %s addr=%#x stall=%d\n", ev.Cycle, ev.Cause, ev.Addr, ev.Val)
	case KindFault:
		fmt.Fprintf(t.W, "[%d] FAULT seq=%d pc=%d %v addr=%#x\n", ev.Cycle, ev.Seq, ev.PC, ev.Ins, ev.Addr)
	case KindComplete:
		fmt.Fprintf(t.W, "[%d] complete seq=%d pc=%d at=%d\n", ev.Cycle, ev.Seq, ev.PC, ev.Val)
	default:
		fmt.Fprintf(t.W, "[%d] %s seq=%d pc=%d cause=%s val=%d\n", ev.Cycle, ev.Kind, ev.Seq, ev.PC, ev.Cause, ev.Val)
	}
}

func causeSuffix(c Cause) string {
	if c == CauseNone {
		return ""
	}
	return " cause=" + c.String()
}

// Close implements Sink.
func (t *Text) Close() error { return nil }

// WriteEvents renders a batch of events (e.g. a Ring dump) in verbose
// text form.
func WriteEvents(w io.Writer, evs []Event) {
	t := &Text{W: w, All: true}
	for _, ev := range evs {
		t.Emit(ev)
	}
}
