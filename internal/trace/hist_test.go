package trace

import (
	"encoding/json"
	"math"
	"testing"
)

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0},
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		lo, hi := BucketBounds(c.bucket)
		if c.v < lo || c.v >= hi {
			// Bucket 63's hi is clamped to MaxInt64, which the max sample
			// equals rather than undershoots.
			if !(c.bucket == 63 && c.v == math.MaxInt64) {
				t.Errorf("value %d outside its bucket %d bounds [%d, %d)", c.v, c.bucket, lo, hi)
			}
		}
	}
	// Bounds tile the positive axis with no gaps.
	for i := 1; i < 63; i++ {
		_, hi := BucketBounds(i)
		lo, _ := BucketBounds(i + 1)
		if hi != lo {
			t.Errorf("bucket %d hi %d != bucket %d lo %d", i, hi, i+1, lo)
		}
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Count != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("empty hist not neutral: %+v mean=%v p50=%v", h, h.Mean(), h.Quantile(0.5))
	}
	b, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hist
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Errorf("empty hist round-trip mismatch: %+v", back)
	}
}

func TestHistOneSample(t *testing.T) {
	var h Hist
	h.Observe(42)
	if h.Count != 1 || h.Sum != 42 || h.MinV != 42 || h.MaxV != 42 {
		t.Fatalf("one-sample summary wrong: %+v", h)
	}
	if h.Mean() != 42 {
		t.Errorf("mean = %v, want 42", h.Mean())
	}
	// 42 lives in [32, 64); the quantile upper bound is clamped to max.
	if q := h.Quantile(0.5); q != 42 {
		t.Errorf("p50 = %d, want 42 (clamped to max)", q)
	}
	if h.Buckets[6] != 1 {
		t.Errorf("sample not in bucket 6: %v", h.Buckets)
	}
}

func TestHistObserveAndQuantile(t *testing.T) {
	var h Hist
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count != 1000 || h.Sum != 500500 {
		t.Fatalf("summary wrong: count=%d sum=%d", h.Count, h.Sum)
	}
	// p50 of 1..1000 is 500, whose bucket is [512, 1024) upper-bounded at
	// 512; the estimate must bracket the true value within one bucket.
	if q := h.Quantile(0.5); q < 500 || q > 1024 {
		t.Errorf("p50 = %d, want within (500, 1024]", q)
	}
	if q := h.Quantile(1); q != 1000 {
		t.Errorf("p100 = %d, want 1000 (observed max)", q)
	}
	if q := h.Quantile(0); q < 1 || q > 2 {
		t.Errorf("p0 = %d, want first bucket bound", q)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for v := int64(0); v < 100; v++ {
		a.Observe(v)
	}
	for v := int64(100); v < 200; v++ {
		b.Observe(v)
	}
	merged := a
	merged.Merge(&b)
	var want Hist
	for v := int64(0); v < 200; v++ {
		want.Observe(v)
	}
	if merged != want {
		t.Errorf("merge mismatch:\n got %+v\nwant %+v", merged, want)
	}
	// Merging into an empty hist copies it.
	var empty Hist
	empty.Merge(&a)
	if empty != a {
		t.Errorf("merge into empty mismatch")
	}
	// Merging an empty hist is a no-op.
	before := a
	var e2 Hist
	a.Merge(&e2)
	if a != before {
		t.Errorf("merge of empty not a no-op")
	}
}

func TestHistJSONRoundTrip(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 1, 5, 300, 70000, -3} {
		h.Observe(v)
	}
	b, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hist
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, h)
	}
}
