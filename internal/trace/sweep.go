package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// SweepSchema identifies the sweep flight-recording wire format
// (sweep_trace.json artifacts and the `sweep` section of telemetry
// reports). Bump on any incompatible change, like the telemetry tags.
const SweepSchema = "vanguard-sweep-trace/v1"

// Sweep span phases. Every unit gets exactly one "unit" span covering
// its whole lifecycle; "queue", "probe" and "compute" spans nest inside
// it (the conservation invariant Check enforces).
const (
	SweepPhaseUnit    = "unit"
	SweepPhaseQueue   = "queue"
	SweepPhaseProbe   = "probe"
	SweepPhaseCompute = "compute"
)

// Terminal outcomes of a unit span, and probe-span outcomes.
const (
	SweepRetire = "retire" // computed (or served from cache) successfully
	SweepFail   = "fail"   // the unit's Run returned an error
	SweepCancel = "cancel" // never computed: a sibling failure drained the run
	SweepHit    = "hit"    // cache probe found a stored result
	SweepMiss   = "miss"   // cache probe found nothing (or a corrupt entry)
)

// SweepSpan is one span of the sweep flight recording. Times are
// microseconds since the recorder was created, so spans from several
// engine runs sharing one recorder stay on one clock.
type SweepSpan struct {
	// Unit is the enumeration index of the unit this span charges —
	// global across every engine run the recorder observed.
	Unit  int    `json:"unit"`
	Label string `json:"label"`
	Phase string `json:"phase"`
	// Worker is the worker-goroutine index the span executed on; -1 for
	// spans that happen off-worker (queue residency, cancelled units).
	Worker  int   `json:"worker"`
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
	// Outcome is the terminal state (unit spans: retire/fail/cancel) or
	// the probe result (probe spans: hit/miss).
	Outcome string `json:"outcome,omitempty"`
	// Key is the unit's run-cache content key (unit spans only), so the
	// recording joins against the sha256-keyed artifact store.
	Key string `json:"key,omitempty"`
	// Batch and Width describe lane-group execution: the BatchKey the
	// unit coalesced under and how many units its group computed together
	// (compute spans; 1 = scalar).
	Batch string `json:"batch,omitempty"`
	Width int    `json:"width,omitempty"`
}

// SweepGroup records one scheduling task the engine formed: either a
// lane group (Width > 1) or a scalar task with the reason batching did
// not apply.
type SweepGroup struct {
	BatchKey string `json:"batch_key,omitempty"`
	Width    int    `json:"width"`
	Units    []int  `json:"units"`
	// ScalarReason explains a width-1 task: "no-batch-key" (the unit is
	// not groupable), "lanes-off" (batching disabled for the run), or
	// "singleton" (a group that never filled past one unit).
	ScalarReason string `json:"scalar_reason,omitempty"`
}

// SweepReport is the full flight recording of one sweep: per-phase spans
// in deterministic enumeration order, lane-group formation records, and
// the queue-delay / latency / wasted-work accounting derived from the
// span timestamps. Wall times vary run to run; span ordering does not.
type SweepReport struct {
	Schema      string `json:"schema"`
	Workers     int    `json:"workers"`
	Units       int    `json:"units"`
	CacheHits   int    `json:"cache_hits"`
	CacheMisses int    `json:"cache_misses"`
	Failed      int    `json:"failed"`
	Cancelled   int    `json:"cancelled"`
	// WallUS spans recorder creation to the last recorded event.
	WallUS int64 `json:"wall_us"`
	// QueueWaitUS totals every unit's enqueue-to-dequeue residency.
	QueueWaitUS int64 `json:"queue_wait_us"`
	// WastedUS totals work that produced nothing: compute time of failed
	// units plus queue residency of cancelled units.
	WastedUS    int64        `json:"wasted_us"`
	QueueDelay  *Hist        `json:"queue_delay_us,omitempty"`
	UnitLatency *Hist        `json:"unit_latency_us,omitempty"`
	Spans       []SweepSpan  `json:"spans"`
	Groups      []SweepGroup `json:"groups,omitempty"`
}

// WriteJSON renders the recording as indented JSON (the sweep_trace.json
// artifact format).
func (s *SweepReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the recording to path.
func (s *SweepReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSweep parses a sweep recording and verifies its schema tag.
func ReadSweep(r io.Reader) (*SweepReport, error) {
	var s SweepReport
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	if s.Schema != SweepSchema {
		return nil, fmt.Errorf("trace: sweep schema %q (want %s)", s.Schema, SweepSchema)
	}
	return &s, nil
}

// Check enforces the span conservation invariant: every unit 0..Units-1
// carries exactly one unit span with a terminal outcome, every phase
// span nests inside its unit span, probe outcomes reconcile with the
// hit/miss counters, and terminal outcomes reconcile with the
// failed/cancelled counters.
func (s *SweepReport) Check() error {
	unitSpan := make(map[int]SweepSpan, s.Units)
	var hits, misses, failed, cancelled int
	for _, sp := range s.Spans {
		if sp.Phase != SweepPhaseUnit {
			continue
		}
		if sp.Unit < 0 || sp.Unit >= s.Units {
			return fmt.Errorf("sweep: unit span index %d outside [0,%d)", sp.Unit, s.Units)
		}
		if _, dup := unitSpan[sp.Unit]; dup {
			return fmt.Errorf("sweep: unit %d has two unit spans", sp.Unit)
		}
		switch sp.Outcome {
		case SweepRetire:
		case SweepFail:
			failed++
		case SweepCancel:
			cancelled++
		default:
			return fmt.Errorf("sweep: unit %d has non-terminal outcome %q", sp.Unit, sp.Outcome)
		}
		unitSpan[sp.Unit] = sp
	}
	if len(unitSpan) != s.Units {
		return fmt.Errorf("sweep: %d unit spans for %d units", len(unitSpan), s.Units)
	}
	for _, sp := range s.Spans {
		if sp.Phase == SweepPhaseUnit {
			continue
		}
		switch sp.Phase {
		case SweepPhaseQueue, SweepPhaseProbe, SweepPhaseCompute:
		default:
			return fmt.Errorf("sweep: unit %d has unknown phase %q", sp.Unit, sp.Phase)
		}
		u, ok := unitSpan[sp.Unit]
		if !ok {
			return fmt.Errorf("sweep: %s span for unit %d, which has no unit span", sp.Phase, sp.Unit)
		}
		if sp.StartUS < u.StartUS || sp.StartUS+sp.DurUS > u.StartUS+u.DurUS {
			return fmt.Errorf("sweep: unit %d %s span [%d,%d) escapes its unit span [%d,%d)",
				sp.Unit, sp.Phase, sp.StartUS, sp.StartUS+sp.DurUS, u.StartUS, u.StartUS+u.DurUS)
		}
		if sp.Phase == SweepPhaseProbe {
			switch sp.Outcome {
			case SweepHit:
				hits++
			case SweepMiss:
				misses++
			default:
				return fmt.Errorf("sweep: unit %d probe span outcome %q", sp.Unit, sp.Outcome)
			}
		}
	}
	if hits != s.CacheHits || misses != s.CacheMisses {
		return fmt.Errorf("sweep: probe spans count %d hits / %d misses, counters say %d / %d",
			hits, misses, s.CacheHits, s.CacheMisses)
	}
	if failed != s.Failed || cancelled != s.Cancelled {
		return fmt.Errorf("sweep: terminal spans count %d failed / %d cancelled, counters say %d / %d",
			failed, cancelled, s.Failed, s.Cancelled)
	}
	return nil
}

// Chrome track layout of a sweep timeline: worker W renders on tid W+1,
// queue residency on the track after the last worker.
const sweepChromePid = 1

// WriteChrome renders the recording as a Chrome trace_event timeline —
// one track per worker plus a queue track and a queue-depth counter — so
// cache stampedes, pool starvation, and straggler units are visible in
// chrome://tracing or ui.perfetto.dev.
func (s *SweepReport) WriteChrome(w io.Writer) error {
	c := NewChromeSpans(w, "vanguard sweep", sweepChromePid)
	workers := s.Workers
	for _, sp := range s.Spans {
		if sp.Worker >= workers { // recordings from older configs stay renderable
			workers = sp.Worker + 1
		}
	}
	for wk := 0; wk < workers; wk++ {
		c.Thread(sweepChromePid, wk+1, fmt.Sprintf("worker %d", wk))
	}
	queueTid := workers + 1
	c.Thread(sweepChromePid, queueTid, "queue")

	type drain struct{ at int64 }
	var drains []drain
	for _, sp := range s.Spans {
		args := fmt.Sprintf(`"unit":%d,"label":"%s"`, sp.Unit, jsonEscape(sp.Label))
		if sp.Outcome != "" {
			args += fmt.Sprintf(`,"outcome":"%s"`, jsonEscape(sp.Outcome))
		}
		if sp.Key != "" {
			args += fmt.Sprintf(`,"key":"%s"`, jsonEscape(sp.Key))
		}
		if sp.Batch != "" {
			args += fmt.Sprintf(`,"batch":"%s","width":%d`, jsonEscape(sp.Batch), sp.Width)
		}
		switch sp.Phase {
		case SweepPhaseUnit:
			// The unit span is bookkeeping (it contains the phases below);
			// rendering it too would double every bar, so it stays JSON-only.
		case SweepPhaseQueue:
			c.Span(sweepChromePid, queueTid, "queue:"+sp.Label, "sweep", sp.StartUS, sp.DurUS, args)
			drains = append(drains, drain{at: sp.StartUS + sp.DurUS})
		case SweepPhaseProbe:
			c.Span(sweepChromePid, sp.Worker+1, "probe:"+sp.Outcome, "sweep", sp.StartUS, sp.DurUS, args)
		case SweepPhaseCompute:
			name := sp.Label
			if sp.Width > 1 {
				name = fmt.Sprintf("%s [x%d]", sp.Label, sp.Width)
			}
			c.Span(sweepChromePid, sp.Worker+1, name, "sweep", sp.StartUS, sp.DurUS, args)
		}
	}
	// Queue depth over time: all units enqueue at their queue span start;
	// each queue span end drains one.
	sort.Slice(drains, func(i, j int) bool { return drains[i].at < drains[j].at })
	depth := int64(len(drains))
	c.Counter(sweepChromePid, "queue depth", 0, "queued", depth)
	for _, d := range drains {
		depth--
		c.Counter(sweepChromePid, "queue depth", d.at, "queued", depth)
	}
	return c.Close()
}
