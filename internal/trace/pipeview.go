package trace

// This file holds the serializable half of the pipeline waterfall viewer:
// the `pipeview` section of the telemetry schema (SchemaV4). The recorder
// that assembles these records from the event stream lives in
// internal/pipeview; the types live here so pipeline.Stats and the report
// schema can carry them without importing the recorder (which itself
// imports trace).

// PipeviewRecord is one dynamic instruction's lifetime. Cycle fields are
// -1 when the stage never happened (or fell outside the capture window).
// Exactly one of Commit, Squash and Drop is set for a completed lifetime:
// Commit when the instruction architecturally retired, Squash when a
// flush killed it, Drop when the front end consumed it without issuing it
// (PREDICT instructions — steering fetch IS their execution).
type PipeviewRecord struct {
	Seq int64  `json:"seq"`
	PC  int    `json:"pc"`
	Asm string `json:"asm"`
	// Branch is the static BranchID (0 = not a tracked branch); it links
	// PREDICT/RESOLVE pairs and joins against attribution BranchRows.
	Branch   int   `json:"branch,omitempty"`
	Fetch    int64 `json:"fetch"`
	Issue    int64 `json:"issue"`
	Complete int64 `json:"complete"`
	Commit   int64 `json:"commit"`
	Squash   int64 `json:"squash"`
	Drop     int64 `json:"drop"`
	// Cause is set on mispredicting speculation points (what they resolved
	// wrong as) and on squashed instructions (what flushed them).
	Cause       string `json:"cause,omitempty"`
	Mispredict  bool   `json:"mispredict,omitempty"`
	ResolveFire bool   `json:"resolve_fire,omitempty"`
	DBBPush     bool   `json:"dbb_push,omitempty"`
	DBBPop      bool   `json:"dbb_pop,omitempty"`
	// DBBOcc is the DBB occupancy after this instruction's push/pop.
	DBBOcc int `json:"dbb_occ,omitempty"`
}

// Terminal returns the record's terminal cycle (-1 while still open):
// commit, squash, or front-end drop.
func (r *PipeviewRecord) Terminal() int64 {
	switch {
	case r.Commit >= 0:
		return r.Commit
	case r.Squash >= 0:
		return r.Squash
	default:
		return r.Drop
	}
}

// PipeviewFlush is one squash-genealogy row: a flush, the speculation
// point that provoked it, and how many instructions it killed. Baseline
// full-flush repair shows up with Cause "branch" (or "return"), vanguard
// repair with Cause "resolve" and ResolveFire set — the squash-shadow
// comparison the paper's decomposition argument rests on. Exception
// squashes carry Cause "exception" with no provoking branch.
type PipeviewFlush struct {
	Cycle int64 `json:"cycle"`
	// Seq/PC identify the provoking instruction (the mispredicting
	// speculation point; for exceptions, the oldest squashed entry).
	Seq         int64  `json:"seq"`
	PC          int    `json:"pc"`
	Branch      int    `json:"branch,omitempty"`
	Cause       string `json:"cause"`
	Killed      int64  `json:"killed"`
	ResolveFire bool   `json:"resolve_fire,omitempty"`
}

// PipeviewReport is the telemetry schema's `pipeview` section: the
// captured per-instruction lifetime records (sorted by Seq) plus the
// squash genealogy observed over the whole run. Its presence bumps a
// report to SchemaV4.
type PipeviewReport struct {
	// Trigger names the capture mode: "all", "range", "around-squash" or
	// "window". TriggerCycle is the cycle of the triggering squash in
	// around-squash mode (-1 if it never fired).
	Trigger      string `json:"trigger"`
	TriggerCycle int64  `json:"trigger_cycle,omitempty"`
	// From/To bound the captured records' lifetimes (observed, not
	// configured: min fetch and max stage cycle over the records).
	From    int64            `json:"from"`
	To      int64            `json:"to"`
	Records []PipeviewRecord `json:"records"`
	Flushes []PipeviewFlush  `json:"flushes,omitempty"`
	// RecordsDropped counts still-open records that were overwritten
	// before terminating (ring too small for the capture window);
	// FlushesDropped counts genealogy rows beyond the preallocated cap.
	RecordsDropped int64 `json:"records_dropped,omitempty"`
	FlushesDropped int64 `json:"flushes_dropped,omitempty"`
}

// Record returns the record with the given Seq (nil if not captured).
// Records are sorted by Seq, so this is a binary search.
func (p *PipeviewReport) Record(seq int64) *PipeviewRecord {
	lo, hi := 0, len(p.Records)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.Records[mid].Seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.Records) && p.Records[lo].Seq == seq {
		return &p.Records[lo]
	}
	return nil
}
