package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenSweep is a small fixed recording exercising every span shape: a
// batched miss+compute retire, a cache hit served without compute, a
// failed batch sibling, and a cancelled unit that never left the queue.
func goldenSweep() *SweepReport {
	qd, lat := &Hist{}, &Hist{}
	for _, v := range []int64{10, 5, 10, 80} {
		qd.Observe(v)
	}
	lat.Observe(36)
	return &SweepReport{
		Schema:  SweepSchema,
		Workers: 2, Units: 4,
		CacheHits: 1, CacheMisses: 2,
		Failed: 1, Cancelled: 1,
		WallUS: 80, QueueWaitUS: 105, WastedUS: 116,
		QueueDelay: qd, UnitLatency: lat,
		Spans: []SweepSpan{
			{Unit: 0, Label: "alpha", Phase: SweepPhaseUnit, Worker: 0, StartUS: 0, DurUS: 50, Outcome: SweepRetire, Key: "k0"},
			{Unit: 0, Label: "alpha", Phase: SweepPhaseQueue, Worker: -1, StartUS: 0, DurUS: 10},
			{Unit: 0, Label: "alpha", Phase: SweepPhaseProbe, Worker: 0, StartUS: 10, DurUS: 2, Outcome: SweepMiss},
			{Unit: 0, Label: "alpha", Phase: SweepPhaseCompute, Worker: 0, StartUS: 14, DurUS: 36, Batch: "grp", Width: 2},
			{Unit: 1, Label: "beta", Phase: SweepPhaseUnit, Worker: 1, StartUS: 0, DurUS: 8, Outcome: SweepRetire, Key: "k1"},
			{Unit: 1, Label: "beta", Phase: SweepPhaseQueue, Worker: -1, StartUS: 0, DurUS: 5},
			{Unit: 1, Label: "beta", Phase: SweepPhaseProbe, Worker: 1, StartUS: 5, DurUS: 3, Outcome: SweepHit},
			{Unit: 2, Label: "gamma", Phase: SweepPhaseUnit, Worker: 0, StartUS: 0, DurUS: 50, Outcome: SweepFail, Key: "k2"},
			{Unit: 2, Label: "gamma", Phase: SweepPhaseQueue, Worker: -1, StartUS: 0, DurUS: 10},
			{Unit: 2, Label: "gamma", Phase: SweepPhaseProbe, Worker: 0, StartUS: 12, DurUS: 2, Outcome: SweepMiss},
			{Unit: 2, Label: "gamma", Phase: SweepPhaseCompute, Worker: 0, StartUS: 14, DurUS: 36, Batch: "grp", Width: 2},
			{Unit: 3, Label: "delta", Phase: SweepPhaseUnit, Worker: -1, StartUS: 0, DurUS: 80, Outcome: SweepCancel},
			{Unit: 3, Label: "delta", Phase: SweepPhaseQueue, Worker: -1, StartUS: 0, DurUS: 80},
		},
		Groups: []SweepGroup{
			{BatchKey: "grp", Width: 2, Units: []int{0, 2}},
			{Width: 1, Units: []int{1}, ScalarReason: "no-batch-key"},
			{Width: 1, Units: []int{3}, ScalarReason: "singleton"},
		},
	}
}

func TestSweepCheckGolden(t *testing.T) {
	if err := goldenSweep().Check(); err != nil {
		t.Fatalf("golden recording violates conservation: %v", err)
	}
}

// TestSweepCheckViolations pins every clause of the conservation
// invariant: each mutation of the golden recording must be rejected.
func TestSweepCheckViolations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(s *SweepReport)
	}{
		{"missing unit span", func(s *SweepReport) { s.Spans = s.Spans[1:] }},
		{"duplicate unit span", func(s *SweepReport) { s.Spans = append(s.Spans, s.Spans[0]) }},
		{"unit index out of range", func(s *SweepReport) { s.Spans[0].Unit = 99 }},
		{"non-terminal unit outcome", func(s *SweepReport) { s.Spans[0].Outcome = SweepHit }},
		{"unknown phase", func(s *SweepReport) { s.Spans[1].Phase = "warp" }},
		{"phase span escapes unit span", func(s *SweepReport) { s.Spans[3].DurUS = 1000 }},
		{"phase span before unit span", func(s *SweepReport) { s.Spans[2].StartUS = -1 }},
		{"probe outcome junk", func(s *SweepReport) { s.Spans[2].Outcome = "maybe" }},
		{"hit counter drift", func(s *SweepReport) { s.CacheHits = 2 }},
		{"miss counter drift", func(s *SweepReport) { s.CacheMisses = 0 }},
		{"failed counter drift", func(s *SweepReport) { s.Failed = 0 }},
		{"cancelled counter drift", func(s *SweepReport) { s.Cancelled = 2 }},
	}
	for _, tc := range cases {
		s := goldenSweep()
		tc.mut(s)
		if err := s.Check(); err == nil {
			t.Errorf("%s: Check accepted the corrupted recording", tc.name)
		}
	}
}

func TestSweepJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep_trace.json")
	s := goldenSweep()
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := ReadSweep(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip changed the recording:\nwrote %+v\nread  %+v", s, back)
	}
	if err := back.Check(); err != nil {
		t.Errorf("round-tripped recording fails Check: %v", err)
	}

	if _, err := ReadSweep(strings.NewReader(`{"schema":"vanguard-sweep-trace/v9"}`)); err == nil {
		t.Error("future sweep schema accepted")
	}
}

// TestReportSchemaV5 pins the telemetry versioning: a report carrying a
// sweep section is stamped v5 (winning over the pipeview section's v4),
// round-trips it, and v5 is accepted by ReadReport.
func TestReportSchemaV5(t *testing.T) {
	rep := NewReport("vgrun")
	rep.Sweep = goldenSweep()
	rep.Benchmarks = append(rep.Benchmarks, &BenchReport{
		Name: "h264ref",
		Runs: []*RunReport{{Label: "base", Width: 4, Pipeview: &PipeviewReport{Trigger: "all"}}},
	})
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": "`+SchemaV5+`"`) {
		t.Errorf("sweep-carrying report not stamped v5:\n%.200s", buf.String())
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v5 report rejected: %v", err)
	}
	if back.Sweep == nil || back.Sweep.Units != 4 || len(back.Sweep.Spans) != 13 {
		t.Errorf("sweep section lost in round trip: %+v", back.Sweep)
	}
	if err := back.Sweep.Check(); err != nil {
		t.Errorf("round-tripped sweep section fails Check: %v", err)
	}
}

// TestSweepChromeGolden pins the Chrome timeline export byte-for-byte.
// Regenerate with
//
//	go test ./internal/trace/ -run TestSweepChromeGolden -update
func TestSweepChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSweep().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "sweep_golden.trace")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Chrome export drifted from %s (regenerate with -update):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}

	// Byte stability: a second render is identical.
	var buf2 bytes.Buffer
	if err := goldenSweep().WriteChrome(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf2.Bytes()) {
		t.Error("two renders of the same recording differ")
	}
}

// TestSweepChromeRoundTrip parses the export back and reconciles it with
// the source spans — the independent witness that the timeline renders
// what the recording says.
func TestSweepChromeRoundTrip(t *testing.T) {
	s := goldenSweep()
	var buf bytes.Buffer
	if err := s.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseChromeEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}

	var spans, meta, counters int
	names := map[string]bool{}
	for _, e := range evs {
		switch e.Ph {
		case "X":
			spans++
			names[e.Name] = true
		case "M":
			meta++
			if e.Name == "thread_name" {
				names["tid:"+e.Args["name"].(string)] = true
			}
		case "C":
			counters++
		}
	}
	// Unit spans are JSON-only bookkeeping; the timeline renders the 4
	// queue, 3 probe, and 2 compute spans.
	if spans != 9 {
		t.Errorf("rendered %d spans, want 9 (unit spans must stay JSON-only)", spans)
	}
	// process_name + 2 worker threads + queue thread.
	if meta != 4 {
		t.Errorf("%d metadata events, want 4", meta)
	}
	// Initial depth plus one decrement per queue-span drain.
	if counters != 5 {
		t.Errorf("%d queue-depth counter events, want 5", counters)
	}
	for _, want := range []string{
		"alpha [x2]", // batched compute renders its width
		"probe:hit", "probe:miss",
		"queue:delta",
		"tid:worker 0", "tid:worker 1", "tid:queue",
	} {
		if !names[want] {
			t.Errorf("timeline missing %q; have %v", want, names)
		}
	}
	// Worker tracks are offset by one (tid 0 is unused), queue after the
	// last worker, and span args carry the unit index for joining back.
	for _, e := range evs {
		if e.Ph != "X" {
			continue
		}
		if strings.HasPrefix(e.Name, "queue:") {
			if e.Tid != s.Workers+1 {
				t.Errorf("queue span %q on tid %d, want %d", e.Name, e.Tid, s.Workers+1)
			}
		} else if e.Tid < 1 || e.Tid > s.Workers {
			t.Errorf("worker span %q on tid %d, want 1..%d", e.Name, e.Tid, s.Workers)
		}
		if _, ok := e.Args["unit"]; !ok {
			t.Errorf("span %q has no unit arg: %v", e.Name, e.Args)
		}
	}
}
