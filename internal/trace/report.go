package trace

import (
	"encoding/json"
	"io"
	"os"
	"strconv"

	"vanguard/internal/attr"
	"vanguard/internal/bpred"
	"vanguard/internal/sample"
)

// SchemaV1/V2/V3 identify the run-report wire format — the single home of
// the version strings every producer and consumer keys on. Bump the
// suffix on any incompatible change; additive changes (new counters, new
// hists) keep the version.
//
// SchemaV2 adds the optional per-run `samples` section (cycle-window
// time series). SchemaV3 adds the optional per-run `attribution` section
// (per-cause issue-slot accounting). SchemaV4 adds the optional per-run
// `pipeview` section (per-instruction lifetime records and squash
// genealogy). SchemaV5 adds the optional per-report `sweep` section (the
// engine flight recording). SchemaV6 adds the optional per-run
// `bpredstudy` section (the predictor observatory: table-level usage and
// the per-branch predictability classification). A report is stamped
// with the highest version whose section it actually carries, so
// sampling-off / attribution-off / pipeview-off / recorder-off /
// probe-off output is bit-identical to v1 and older consumers are
// unaffected unless they opt in.
const (
	SchemaV1 = "vanguard-telemetry/v1"
	SchemaV2 = "vanguard-telemetry/v2"
	SchemaV3 = "vanguard-telemetry/v3"
	SchemaV4 = "vanguard-telemetry/v4"
	SchemaV5 = "vanguard-telemetry/v5"
	SchemaV6 = "vanguard-telemetry/v6"
)

// maxSchemaVersion is the single source of truth for the newest schema
// revision: the accepted-version set in ReadReport and the range printed
// by SchemaError are both derived from it through schemaVersion, so
// adding a SchemaVN constant without bumping this is caught by
// TestSchemaConstantsAccepted rather than silently rejecting new
// reports.
const maxSchemaVersion = 6

// schemaVersion renders revision n as its wire tag ("vanguard-telemetry/vN").
func schemaVersion(n int) string { return "vanguard-telemetry/v" + strconv.Itoa(n) }

// schemaAccepted reports whether tag is a known schema revision.
func schemaAccepted(tag string) bool {
	for n := 1; n <= maxSchemaVersion; n++ {
		if tag == schemaVersion(n) {
			return true
		}
	}
	return false
}

// Schema is the base (v1) schema tag new reports start from.
const Schema = SchemaV1

// Report is the single machine-readable schema shared by every CLI's
// -json flag: vgrun emits one benchmark with one timing run, spec emits
// every benchmark of every suite, ablate emits sweeps. Consumers key on
// Schema before trusting the rest.
type Report struct {
	Schema     string            `json:"schema"`
	Tool       string            `json:"tool"`
	Benchmarks []*BenchReport    `json:"benchmarks,omitempty"`
	Ablations  []*AblationReport `json:"ablations,omitempty"`
	// Engine records how the experiment engine executed the tool's runs.
	// It is the only non-deterministic part of a report (wall times), so
	// differential consumers compare reports with Engine stripped.
	Engine *EngineReport `json:"engine,omitempty"`
	// Sweep is the engine flight recording (per-unit lifecycle spans),
	// present only when the tool ran with the sweep recorder on
	// (-sweep-trace); its presence bumps the report to v5. Like Engine it
	// carries wall times, so differential consumers strip it too.
	Sweep *SweepReport `json:"sweep,omitempty"`
}

// EngineReport is the experiment-engine telemetry of one tool invocation:
// worker-pool size, run-cache effectiveness, and per-unit wall times in
// enumeration order.
type EngineReport struct {
	Jobs        int          `json:"jobs"`
	Units       int          `json:"units"`
	CacheHits   int          `json:"cache_hits"`
	CacheMisses int          `json:"cache_misses"`
	WallMS      float64      `json:"wall_ms"`
	UnitWall    []EngineUnit `json:"unit_wall,omitempty"`
}

// EngineUnit is one executed experiment unit.
type EngineUnit struct {
	Label    string  `json:"label"`
	WallMS   float64 `json:"wall_ms"`
	CacheHit bool    `json:"cache_hit,omitempty"`
}

// NewReport builds an empty report for the named tool.
func NewReport(tool string) *Report {
	return &Report{Schema: Schema, Tool: tool}
}

// BenchReport is one benchmark's measurements: the transform summary (if
// the decomposed branch transformation ran) and one RunReport per
// (label, input, width) timing run.
type BenchReport struct {
	Name      string           `json:"name"`
	Suite     string           `json:"suite,omitempty"`
	Transform *TransformReport `json:"transform,omitempty"`
	Runs      []*RunReport     `json:"runs"`
}

// TransformReport summarizes one program's decomposed branch
// transformation (the core.Report fields downstream tooling needs).
type TransformReport struct {
	Converted     int            `json:"converted"`
	ForwardStatic int            `json:"forward_static"`
	PBCPct        float64        `json:"pbc_pct"`
	PISCSPct      float64        `json:"piscs_pct"`
	StaticBefore  int            `json:"static_before"`
	StaticAfter   int            `json:"static_after"`
	Branches      []BranchReport `json:"branches,omitempty"`
}

// BranchReport is one converted branch.
type BranchReport struct {
	ID             int     `json:"id"`
	Bias           float64 `json:"bias"`
	Predictability float64 `json:"predictability"`
	Execs          int64   `json:"execs"`
	SlicePushed    int     `json:"slice_pushed"`
	Hoisted        int     `json:"hoisted"`
	Temps          int     `json:"temps"`
}

// RunReport is one timing run: scalar counters, derived rates, and the
// latency/occupancy histograms. Counter and histogram names are stable
// snake_case keys (see DESIGN.md's Observability section).
type RunReport struct {
	Label    string             `json:"label,omitempty"` // "base" | "exp" | "timing"
	Input    string             `json:"input,omitempty"`
	Width    int                `json:"width"`
	Counters map[string]int64   `json:"counters"`
	Rates    map[string]float64 `json:"rates,omitempty"`
	Hists    map[string]*Hist   `json:"hists,omitempty"`
	// Samples is the cycle-window time series, present only when the run
	// was sampled (-sample-window); its presence bumps the report to v2.
	Samples *sample.Series `json:"samples,omitempty"`
	// Attribution is the per-cause issue-slot accounting, present only
	// when the run attributed cycles (-attr); its presence bumps the
	// report to v3.
	Attribution *attr.Report `json:"attribution,omitempty"`
	// Pipeview is the per-instruction lifetime capture, present only when
	// the run recorded a pipeline waterfall (-pipeview); its presence
	// bumps the report to v4.
	Pipeview *PipeviewReport `json:"pipeview,omitempty"`
	// Bpredstudy is the predictor observatory (per-table provider usage,
	// occupancy/aliasing, and the per-branch predictability
	// classification), present only when the run probed its predictor
	// (-bpred-report/-bpred-csv); its presence bumps the report to v6.
	Bpredstudy *bpred.StudyReport `json:"bpredstudy,omitempty"`
}

// AblationReport is one sweep of a design parameter.
type AblationReport struct {
	Title  string          `json:"title"`
	Points []AblationPoint `json:"points"`
}

// AblationPoint is one configuration of a sweep.
type AblationPoint struct {
	Label      string  `json:"label"`
	SpeedupPct float64 `json:"speedup_pct"`
}

// sampled reports whether any run carries a samples section.
func (r *Report) sampled() bool {
	for _, b := range r.Benchmarks {
		for _, run := range b.Runs {
			if run.Samples != nil {
				return true
			}
		}
	}
	return false
}

// attributed reports whether any run carries an attribution section.
func (r *Report) attributed() bool {
	for _, b := range r.Benchmarks {
		for _, run := range b.Runs {
			if run.Attribution != nil {
				return true
			}
		}
	}
	return false
}

// pipeviewed reports whether any run carries a pipeview section.
func (r *Report) pipeviewed() bool {
	for _, b := range r.Benchmarks {
		for _, run := range b.Runs {
			if run.Pipeview != nil {
				return true
			}
		}
	}
	return false
}

// bpredstudied reports whether any run carries a bpredstudy section.
func (r *Report) bpredstudied() bool {
	for _, b := range r.Benchmarks {
		for _, run := range b.Runs {
			if run.Bpredstudy != nil {
				return true
			}
		}
	}
	return false
}

// Write renders the report as indented JSON, stamping the highest schema
// tag whose optional section is present (v6 bpredstudy over v5 sweep
// over v4 pipeview over v3 attribution over v2 samples; a plain report
// stays v1).
func (r *Report) Write(w io.Writer) error {
	if r.Schema == SchemaV1 {
		switch {
		case r.bpredstudied():
			r.Schema = SchemaV6
		case r.Sweep != nil:
			r.Schema = SchemaV5
		case r.pipeviewed():
			r.Schema = SchemaV4
		case r.attributed():
			r.Schema = SchemaV3
		case r.sampled():
			r.Schema = SchemaV2
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport parses a report and verifies its schema tag.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	if !schemaAccepted(r.Schema) {
		return nil, &SchemaError{Got: r.Schema}
	}
	return &r, nil
}

// SchemaError reports a schema-tag mismatch.
type SchemaError struct{ Got string }

func (e *SchemaError) Error() string {
	return "trace: report schema " + e.Got + " (want " + schemaVersion(1) + ".." + schemaVersion(maxSchemaVersion) + ")"
}
