package trace

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"vanguard/internal/bpred"
)

// TestReportSchemaV6BpredRoundTrip pins the bpredstudy versioning: a
// report with any probed run is stamped v6 (winning over every older
// section), the study — including the per-branch classification — is
// preserved exactly through a write/read cycle, and the round-tripped
// study still satisfies its conservation invariant.
func TestReportSchemaV6BpredRoundTrip(t *testing.T) {
	study := &bpred.StudyReport{
		Predictor:   "tage",
		SizeBits:    1234,
		Resolves:    10,
		Updates:     10,
		Mispredicts: 3,
		Providers: []bpred.ProviderReport{
			{Table: "base", Use: 6, Correct: 4, Weak: 1},
			{Table: "tage1", Use: 4, Correct: 3},
		},
		Confidence: bpred.ConfidenceReport{ConfidentCorrect: 6, ConfidentWrong: 3, WeakCorrect: 1},
		Aliasing:   []bpred.AliasReport{{Name: "base", Entries: 64, Touched: 3, Conflicts: 1, Updates: 10}},
		Survey:     []bpred.TableSurvey{{Name: "base", Entries: 64, Occupied: 3, Weak: 1}},
		Branches: []bpred.BranchDigest{
			{ID: 1, Execs: 7, Taken: 7, Mispredicts: 1, Bias: 1, Entropy: 0, Class: bpred.ClassBiased},
			{ID: 2, Execs: 3, Taken: 1, Mispredicts: 2, Bias: 2.0 / 3, TransitionRate: 1, Entropy: 0, Class: bpred.ClassRegime},
		},
		Classes: map[string]bpred.ClassTotals{
			bpred.ClassBiased: {Branches: 1, Execs: 7, Mispredicts: 1},
			bpred.ClassRegime: {Branches: 1, Execs: 3, Mispredicts: 2},
		},
	}
	if err := study.Check(); err != nil {
		t.Fatalf("fixture fails Check: %v", err)
	}

	rep := NewReport("vgrun")
	rep.Benchmarks = append(rep.Benchmarks, &BenchReport{
		Name: "x",
		Runs: []*RunReport{{
			Label: "timing", Width: 4, Counters: map[string]int64{"cycles": 1},
			Bpredstudy: study,
		}},
	})
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": "`+SchemaV6+`"`) {
		t.Errorf("probed report not stamped v6:\n%s", buf.String())
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v6 report rejected: %v", err)
	}
	got := back.Benchmarks[0].Runs[0].Bpredstudy
	if got == nil {
		t.Fatal("bpredstudy lost in round trip")
	}
	if !reflect.DeepEqual(got, study) {
		t.Errorf("bpredstudy changed in round trip:\ngot  %+v\nwant %+v", got, study)
	}
	if err := got.Check(); err != nil {
		t.Errorf("round-tripped study fails its invariant: %v", err)
	}

	// A probe-off report must not mention the section at all.
	plain := NewReport("vgrun")
	plain.Benchmarks = append(plain.Benchmarks, &BenchReport{
		Name: "x",
		Runs: []*RunReport{{Label: "timing", Width: 4, Counters: map[string]int64{"cycles": 1}}},
	})
	buf.Reset()
	if err := plain.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "bpredstudy") {
		t.Errorf("probe-off report mentions bpredstudy:\n%s", buf.String())
	}
}

// TestSchemaConstantsAccepted is the rot guard for the schema version
// set: it parses report.go, enumerates every SchemaVN constant, and
// requires (a) each declared value to match schemaVersion(N), (b) each
// to be accepted by ReadReport's derived check, and (c) maxSchemaVersion
// to equal the highest declared N. Adding a SchemaV7 constant without
// bumping maxSchemaVersion — the rot this replaces was two hardcoded
// "v1..v5" sites — fails here instead of silently rejecting new reports.
func TestSchemaConstantsAccepted(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "report.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`^SchemaV(\d+)$`)
	found := map[int]string{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				m := re.FindStringSubmatch(name.Name)
				if m == nil || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					t.Errorf("%s is not a string literal", name.Name)
					continue
				}
				val, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("%s: %v", name.Name, err)
				}
				n, _ := strconv.Atoi(m[1])
				found[n] = val
			}
		}
	}
	if len(found) == 0 {
		t.Fatal("no SchemaVN constants found in report.go")
	}
	max := 0
	for n, val := range found {
		if want := schemaVersion(n); val != want {
			t.Errorf("SchemaV%d = %q, want %q", n, val, want)
		}
		if !schemaAccepted(val) {
			t.Errorf("SchemaV%d (%q) declared but not accepted by ReadReport — bump maxSchemaVersion", n, val)
		}
		if _, err := ReadReport(strings.NewReader(`{"schema":"` + val + `"}`)); err != nil {
			t.Errorf("ReadReport rejects declared schema %q: %v", val, err)
		}
		if n > max {
			max = n
		}
	}
	if max != maxSchemaVersion {
		t.Errorf("maxSchemaVersion = %d but the highest declared constant is SchemaV%d", maxSchemaVersion, max)
	}
	// The error message must advertise the derived range, not a stale one.
	e := &SchemaError{Got: "bogus"}
	if want := schemaVersion(maxSchemaVersion); !strings.Contains(e.Error(), want) {
		t.Errorf("SchemaError %q does not mention the newest accepted version %q", e.Error(), want)
	}
}
