package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vanguard/internal/isa"
)

func testEvents() []Event {
	ins := isa.Instr{Op: isa.ADD, Dst: isa.R(1), Src1: isa.R(2), Src2: isa.R(3), Target: -1}
	br := isa.Instr{Op: isa.BR, Src1: isa.R(4), Target: 7, BranchID: 1}
	return []Event{
		{Kind: KindFetch, Cycle: 1, Seq: 0, PC: 0, Ins: ins},
		{Kind: KindIssue, Cycle: 5, Seq: 0, PC: 0, Ins: ins},
		{Kind: KindDBBPush, Cycle: 6, PC: 2, Val: 1},
		{Kind: KindIssue, Cycle: 7, Seq: 1, PC: 1, Ins: br},
		{Kind: KindMispredict, Cycle: 8, Seq: 1, PC: 1, Ins: br, Cause: CauseBranch, Val: 7},
		{Kind: KindSquash, Cycle: 8, Seq: 1, Val: 3},
		{Kind: KindCacheMiss, Cycle: 9, Cause: CauseDCache, Addr: 0x1000, Val: 140},
	}
}

func TestRingSink(t *testing.T) {
	r := NewRing(4)
	evs := testEvents()
	for _, ev := range evs {
		r.Emit(ev)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != int64(len(evs)-4) {
		t.Errorf("Dropped = %d, want %d", r.Dropped(), len(evs)-4)
	}
	got := r.Events()
	want := evs[len(evs)-4:]
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Under capacity: ordered, nothing dropped.
	r2 := NewRing(16)
	r2.Emit(evs[0])
	r2.Emit(evs[1])
	if r2.Len() != 2 || r2.Dropped() != 0 || r2.Events()[0] != evs[0] {
		t.Errorf("under-capacity ring wrong: len=%d dropped=%d", r2.Len(), r2.Dropped())
	}
}

// TestTextSinkCompatFormat pins the byte-exact historical vgrun -trace
// format for issue and mispredict lines.
func TestTextSinkCompatFormat(t *testing.T) {
	var buf bytes.Buffer
	s := NewText(&buf)
	for _, ev := range testEvents() {
		s.Emit(ev)
	}
	want := "[5] issue seq=0 pc=0 add r1, r2, r3\n" +
		"[7] issue seq=1 pc=1 br r4, @7\n" +
		"[8] MISPREDICT br r4, @7 at pc 1 -> redirect 7\n"
	if buf.String() != want {
		t.Errorf("compat text output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestTextSinkVerbose(t *testing.T) {
	var buf bytes.Buffer
	s := &Text{W: &buf, All: true}
	for _, ev := range testEvents() {
		s.Emit(ev)
	}
	out := buf.String()
	for _, want := range []string{"fetch seq=0", "dbb-push pc=2 occ=1", "squash 3 instruction(s)", "cache-miss dcache addr=0x1000 stall=140"} {
		if !strings.Contains(out, want) {
			t.Errorf("verbose output missing %q:\n%s", want, out)
		}
	}
}

// TestChromeSinkValidJSON checks the trace_event output is well-formed
// JSON with the shape Perfetto's JSON importer requires: a traceEvents
// array whose entries carry name/ph/ts/pid fields.
func TestChromeSinkValidJSON(t *testing.T) {
	var buf bytes.Buffer
	c := NewChrome(&buf)
	for _, ev := range testEvents() {
		c.Emit(ev)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	lanes := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "pid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
		switch ev["ph"] {
		case "M", "C":
		default:
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("timed event missing ts: %v", ev)
			}
			lanes[ev["tid"].(float64)] = true
		}
	}
	// The sample stream spans fetch, issue, resolve, dbb and cache lanes.
	if len(lanes) < 5 {
		t.Errorf("expected >= 5 distinct lanes, got %v", lanes)
	}
	// Lane names are declared via thread_name metadata.
	if !strings.Contains(buf.String(), `"thread_name"`) {
		t.Error("missing thread_name metadata")
	}
}

func TestTeeFanOut(t *testing.T) {
	a, b := NewRing(8), NewRing(8)
	s := Tee(nil, a, nil, b)
	s.Emit(testEvents()[0])
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("tee did not fan out: %d %d", a.Len(), b.Len())
	}
	if Tee(nil, nil) != nil {
		t.Error("Tee of nils should be nil")
	}
	if Tee(a) != Sink(a) {
		t.Error("Tee of one sink should be that sink")
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := NewReport("vgrun")
	var h Hist
	h.Observe(4)
	h.Observe(9)
	r.Benchmarks = append(r.Benchmarks, &BenchReport{
		Name: "dotproduct",
		Transform: &TransformReport{
			Converted: 1, ForwardStatic: 2, PBCPct: 50,
			Branches: []BranchReport{{ID: 1, Bias: 0.6, Predictability: 0.9, Execs: 100, Hoisted: 3}},
		},
		Runs: []*RunReport{{
			Label: "timing", Width: 4,
			Counters: map[string]int64{"cycles": 123, "issued": 456},
			Rates:    map[string]float64{"ipc": 3.7},
			Hists:    map[string]*Hist{"fetch_to_issue": &h},
		}},
	})
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "vgrun" || len(back.Benchmarks) != 1 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	rr := back.Benchmarks[0].Runs[0]
	if rr.Counters["cycles"] != 123 || rr.Rates["ipc"] != 3.7 {
		t.Errorf("counters/rates lost: %+v", rr)
	}
	if got := rr.Hists["fetch_to_issue"]; got == nil || *got != h {
		t.Errorf("hist lost: %+v", got)
	}
	// Wrong schema tag is rejected.
	if _, err := ReadReport(strings.NewReader(`{"schema":"bogus/v9","tool":"x"}`)); err == nil {
		t.Error("bogus schema accepted")
	}
}
