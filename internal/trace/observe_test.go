package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vanguard/internal/attr"
	"vanguard/internal/sample"
)

// TestRingMultiWrapOrdering drives the ring through several complete
// wrap-arounds — including stopping at an exact capacity boundary and
// mid-buffer — and requires Events() to always be the most recent cap
// events, oldest first, with every older event counted as dropped.
func TestRingMultiWrapOrdering(t *testing.T) {
	const capacity = 4
	for _, total := range []int64{4, 8, 11, 12, 13} {
		r := NewRing(capacity)
		for i := int64(0); i < total; i++ {
			r.Emit(Event{Kind: KindIssue, Cycle: i, Seq: i})
		}
		if r.Len() != capacity {
			t.Fatalf("total %d: Len = %d, want %d", total, r.Len(), capacity)
		}
		if want := total - capacity; r.Dropped() != want {
			t.Errorf("total %d: Dropped = %d, want %d", total, r.Dropped(), want)
		}
		evs := r.Events()
		for i, ev := range evs {
			if want := total - capacity + int64(i); ev.Cycle != want {
				t.Errorf("total %d: event %d has cycle %d, want %d (oldest-first)",
					total, i, ev.Cycle, want)
			}
		}
	}
}

func TestJSONEscape(t *testing.T) {
	cases := []string{
		"add r1, r2, r3", // common path: returned unmodified
		`quote " inside`,
		`back \ slash`,
		`both \" mixed \\ "`,
		"newline\nand\ttab",
		"ctrl\x00\x1f",
		"",
	}
	for _, in := range cases {
		esc := jsonEscape(in)
		var back string
		if err := json.Unmarshal([]byte(`"`+esc+`"`), &back); err != nil {
			t.Errorf("jsonEscape(%q) = %q: not valid inside a JSON string: %v", in, esc, err)
			continue
		}
		if back != in {
			t.Errorf("jsonEscape(%q) round-trips to %q", in, back)
		}
	}
	if got := jsonEscape("plain"); got != "plain" {
		t.Errorf("plain string modified: %q", got)
	}
}

// TestChromeEscapedNamesStayValidJSON emits events whose rendered names
// and args would break the JSON document if unescaped.
func TestChromeEscapedNamesStayValidJSON(t *testing.T) {
	var buf bytes.Buffer
	c := NewChrome(&buf)
	// KindCacheMiss formats its name from Kind:Cause — both clean — but
	// the ins arg goes through jsonEscape; drive the escaper via record
	// paths by emitting normal events, then check the whole document
	// still parses after the escaping change.
	for _, ev := range testEvents() {
		c.Emit(ev)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events")
	}
}

// TestReportSchemaV2 pins the versioning contract: a report without
// samples writes (and reads back) as v1 byte-compatible output; a report
// with any sampled run is stamped v2; both tags are accepted by
// ReadReport and anything else is rejected.
func TestReportSchemaV2(t *testing.T) {
	plain := NewReport("vgrun")
	plain.Benchmarks = append(plain.Benchmarks, &BenchReport{
		Name: "x",
		Runs: []*RunReport{{Label: "timing", Width: 4, Counters: map[string]int64{"cycles": 1}}},
	})
	var buf bytes.Buffer
	if err := plain.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": "`+SchemaV1+`"`) {
		t.Errorf("unsampled report not stamped v1:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "samples") {
		t.Errorf("unsampled report mentions samples:\n%s", buf.String())
	}
	if _, err := ReadReport(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("v1 report rejected: %v", err)
	}

	sampled := NewReport("vgrun")
	sampled.Benchmarks = append(sampled.Benchmarks, &BenchReport{
		Name: "x",
		Runs: []*RunReport{{
			Label: "timing", Width: 4, Counters: map[string]int64{"cycles": 1},
			Samples: &sample.Series{
				WindowCycles: 100,
				Windows:      []sample.Window{{Start: 0, End: 100, Committed: 42}},
			},
		}},
	})
	buf.Reset()
	if err := sampled.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": "`+SchemaV2+`"`) {
		t.Errorf("sampled report not stamped v2:\n%s", buf.String())
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v2 report rejected: %v", err)
	}
	sr := back.Benchmarks[0].Runs[0].Samples
	if sr == nil || len(sr.Windows) != 1 || sr.Windows[0].Committed != 42 {
		t.Errorf("samples lost in round trip: %+v", sr)
	}
	if _, err := ReadReport(strings.NewReader(`{"schema":"vanguard-telemetry/v999"}`)); err == nil {
		t.Error("future schema accepted")
	}
}

// TestReportSchemaV3 pins the attribution versioning: a report with any
// attributed run is stamped v3 (winning over v2 when both sections are
// present), round-trips its attribution section, and v3 is accepted by
// ReadReport.
func TestReportSchemaV3(t *testing.T) {
	rec := attr.NewRecorder(4, 1, 2)
	rec.ChargeCycle(1, attr.CondWait, 1)
	attributed := NewReport("vgrun")
	attributed.Benchmarks = append(attributed.Benchmarks, &BenchReport{
		Name: "x",
		Runs: []*RunReport{{
			Label: "timing", Width: 2, Counters: map[string]int64{"cycles": 1},
			Samples: &sample.Series{
				WindowCycles: 100,
				Windows:      []sample.Window{{Start: 0, End: 100, Committed: 1}},
			},
			Attribution: rec.Report(),
		}},
	})
	var buf bytes.Buffer
	if err := attributed.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": "`+SchemaV3+`"`) {
		t.Errorf("attributed report not stamped v3:\n%s", buf.String())
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v3 report rejected: %v", err)
	}
	ar := back.Benchmarks[0].Runs[0].Attribution
	if ar == nil || ar.Slots[attr.Base.Key()] != 1 || ar.Slots[attr.CondWait.Key()] != 1 {
		t.Errorf("attribution lost in round trip: %+v", ar)
	}
	if err := ar.Check(); err != nil {
		t.Errorf("round-tripped attribution fails its invariant: %v", err)
	}
}
