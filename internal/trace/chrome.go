package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Chrome streams the event stream in Chrome trace_event JSON ("JSON
// object format"), so a run opens directly in chrome://tracing or
// https://ui.perfetto.dev. One simulated cycle maps to one microsecond
// of trace time; each pipeline stage gets its own lane (thread), plus a
// counter track for DBB occupancy.
type Chrome struct {
	w     *bufio.Writer
	c     io.Closer // underlying file, when the caller hands one over
	first bool
	err   error
}

// Chrome lane (thread) ids, one per pipeline stage.
const (
	chromePid   = 1
	laneFetch   = 1
	laneIssue   = 2
	laneResolve = 3 // commit / mispredict / resolve-fire / squash
	laneDBB     = 4
	laneCache   = 5
	laneFault   = 6
)

var chromeLaneNames = map[int]string{
	laneFetch:   "fetch",
	laneIssue:   "issue",
	laneResolve: "resolve",
	laneDBB:     "dbb",
	laneCache:   "cache",
	laneFault:   "fault",
}

// newChromeWriter opens the JSON envelope over w without emitting any
// metadata — the shared base of the pipeline sink (NewChrome) and the
// free-form span writer (NewChromeSpans).
func newChromeWriter(w io.Writer) *Chrome {
	c := &Chrome{w: bufio.NewWriterSize(w, 1<<16), first: true}
	if cl, ok := w.(io.Closer); ok {
		c.c = cl
	}
	c.raw(`{"traceEvents":[`)
	return c
}

// NewChrome builds a Chrome trace sink over w, writing the header and
// lane-name metadata immediately. If w is also an io.Closer (a file),
// Close closes it after the footer.
func NewChrome(w io.Writer) *Chrome {
	c := newChromeWriter(w)
	c.meta("process_name", chromePid, 0, "vanguard")
	for tid := laneFetch; tid <= laneFault; tid++ {
		c.meta("thread_name", chromePid, tid, chromeLaneNames[tid])
	}
	return c
}

// NewChromeSpans builds a Chrome sink with no pipeline lane metadata — a
// raw span writer for non-pipeline timelines (the engine sweep recorder).
// Name tracks with Thread, then emit events with Span and Counter.
func NewChromeSpans(w io.Writer, process string, pid int) *Chrome {
	c := newChromeWriter(w)
	c.meta("process_name", pid, 0, process)
	return c
}

// Thread names a track (thread) of the trace.
func (c *Chrome) Thread(pid, tid int, name string) {
	c.meta("thread_name", pid, tid, name)
}

// Span emits one complete ("X") event. args, when non-empty, is the raw
// JSON body of the event's args object (caller escapes its strings).
func (c *Chrome) Span(pid, tid int, name, cat string, ts, dur int64, args string) {
	if args != "" {
		args = `,"args":{` + args + `}`
	}
	c.record(fmt.Sprintf(`{"name":%q,"cat":%q,"ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d%s}`,
		name, cat, ts, dur, pid, tid, args))
}

// Counter emits one counter ("C") sample for the named counter track.
func (c *Chrome) Counter(pid int, name string, ts int64, field string, v int64) {
	c.record(fmt.Sprintf(`{"name":%q,"ph":"C","ts":%d,"pid":%d,"args":{%q:%d}}`,
		name, ts, pid, field, v))
}

func (c *Chrome) raw(s string) {
	if c.err == nil {
		_, c.err = c.w.WriteString(s)
	}
}

func (c *Chrome) record(s string) {
	if !c.first {
		c.raw(",\n")
	} else {
		c.raw("\n")
		c.first = false
	}
	c.raw(s)
}

func (c *Chrome) meta(name string, pid, tid int, value string) {
	if tid == 0 {
		c.record(fmt.Sprintf(`{"name":%q,"ph":"M","pid":%d,"args":{"name":%q}}`, name, pid, value))
		return
	}
	c.record(fmt.Sprintf(`{"name":%q,"ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`, name, pid, tid, value))
}

func chromeLane(k Kind) int {
	switch k {
	case KindFetch:
		return laneFetch
	case KindIssue:
		return laneIssue
	case KindCommit, KindSquash, KindMispredict, KindResolveFire:
		return laneResolve
	case KindDBBPush, KindDBBPop:
		return laneDBB
	case KindCacheMiss:
		return laneCache
	default:
		return laneFault
	}
}

// jsonEscape covers the instruction disassembly and event-name strings
// we embed. Today's disassembly emits neither quotes nor control
// characters, so the common path is a scan and no copy; anything that
// does need escaping goes through the real JSON encoder so the output
// stays valid JSON no matter what a future Instr.String produces.
func jsonEscape(s string) string {
	if strings.IndexFunc(s, func(r rune) bool { return r < 0x20 || r == '"' || r == '\\' }) < 0 {
		return s
	}
	b, err := json.Marshal(s)
	if err != nil {
		return "" // cannot happen for a string
	}
	return string(b[1 : len(b)-1])
}

// Emit implements Sink.
func (c *Chrome) Emit(ev Event) {
	name := ev.Kind.String()
	if ev.Cause != CauseNone {
		name = name + ":" + ev.Cause.String()
	}
	dur := int64(1)
	if ev.Kind == KindCacheMiss && ev.Val > 0 {
		dur = ev.Val
	}
	var args strings.Builder
	fmt.Fprintf(&args, `"seq":%d,"pc":%d`, ev.Seq, ev.PC)
	if ev.Ins.Op != 0 || ev.Kind == KindFetch || ev.Kind == KindIssue {
		fmt.Fprintf(&args, `,"ins":"%s"`, jsonEscape(ev.Ins.String()))
	}
	if ev.Val != 0 {
		fmt.Fprintf(&args, `,"val":%d`, ev.Val)
	}
	if ev.Addr != 0 {
		fmt.Fprintf(&args, `,"addr":%d`, ev.Addr)
	}
	c.record(fmt.Sprintf(`{"name":%q,"cat":"pipeline","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{%s}}`,
		name, ev.Cycle, dur, chromePid, chromeLane(ev.Kind), args.String()))
	if ev.Kind == KindDBBPush || ev.Kind == KindDBBPop {
		c.record(fmt.Sprintf(`{"name":"dbb occupancy","ph":"C","ts":%d,"pid":%d,"args":{"outstanding":%d}}`,
			ev.Cycle, chromePid, ev.Val))
	}
}

// ChromeEvent is one parsed trace_event record — the round-trip witness
// structure the Chrome-export tests (and any downstream consumer that
// wants to re-read a written timeline) validate against.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// chromeFile is the JSON-object trace container format.
type chromeFile struct {
	TraceEvents []ChromeEvent `json:"traceEvents"`
}

// ParseChromeEvents reads a Chrome trace_event JSON object (the format
// NewChrome and NewChromeSpans write) back into its event list.
func ParseChromeEvents(r io.Reader) ([]ChromeEvent, error) {
	var f chromeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: chrome parse: %w", err)
	}
	return f.TraceEvents, nil
}

// Close writes the footer, flushes, and closes the underlying file if
// the sink owns one.
func (c *Chrome) Close() error {
	c.raw("\n],\"displayTimeUnit\":\"ns\"}\n")
	if err := c.w.Flush(); c.err == nil {
		c.err = err
	}
	if c.c != nil {
		if err := c.c.Close(); c.err == nil {
			c.err = err
		}
	}
	return c.err
}
