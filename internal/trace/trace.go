// Package trace is the simulator's structured telemetry layer: typed
// per-instruction lifecycle events fanned out to pluggable sinks, small
// power-of-two histograms for latency/occupancy distributions, and the
// machine-readable run-report schema every CLI's -json flag emits.
//
// The pipeline publishes one Event per interesting micro-architectural
// occurrence (fetch, issue, commit, squash, misprediction, resolve
// firing, DBB push/pop, cache miss, deferred fault). Sinks decide what to
// do with the stream: Ring keeps a bounded post-mortem buffer, Text
// renders human-readable lines (the vgrun -trace format), and Chrome
// writes Chrome trace_event JSON that opens directly in chrome://tracing
// or Perfetto with one lane per pipeline stage. With no sink attached the
// event path is a single nil check; histograms are always recorded.
package trace

import "vanguard/internal/isa"

// Kind classifies a lifecycle event.
type Kind uint8

// Event kinds, in rough pipeline order.
const (
	KindFetch       Kind = iota // instruction entered the fetch buffer
	KindIssue                   // instruction issued to a functional unit
	KindCommit                  // speculation point resolved cleanly
	KindSquash                  // flush discarded younger work
	KindMispredict              // speculation point resolved wrong
	KindResolveFire             // RESOLVE fired (decomposed-branch repair)
	KindDBBPush                 // PREDICT inserted a DBB entry
	KindDBBPop                  // RESOLVE consumed its DBB entry
	KindCacheMiss               // L1 miss (instruction or data side)
	KindFault                   // deferred fault reached commit
	KindComplete                // instruction writeback (result becomes available)
	numKinds
)

var kindNames = [numKinds]string{
	"fetch", "issue", "commit", "squash", "mispredict",
	"resolve-fire", "dbb-push", "dbb-pop", "cache-miss", "fault",
	"complete",
}

// String returns the kind's wire name (used in text and JSON output).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Cause qualifies an event with what provoked it.
type Cause uint8

// Causes.
const (
	CauseNone      Cause = iota
	CauseBranch          // BR direction misprediction
	CauseResolve         // decomposed-branch RESOLVE firing
	CauseReturn          // RAS target misprediction
	CauseException       // injected exceptional control flow
	CauseICache          // instruction-side L1 miss
	CauseDCache          // data-side L1 miss
	numCauses
)

var causeNames = [numCauses]string{
	"", "branch", "resolve", "return", "exception", "icache", "dcache",
}

// String returns the cause's wire name ("" for CauseNone).
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "unknown"
}

// Event is one structured telemetry record. Cycle, Seq and PC identify
// when and where; Cause and the kind-specific payload fields say why.
type Event struct {
	Kind  Kind
	Cause Cause
	Cycle int64
	Seq   int64 // dynamic instruction sequence number (-1 when n/a)
	PC    int   // instruction PC (image index)
	Ins   isa.Instr

	// Val is the kind-specific payload: redirect PC for Mispredict and
	// ResolveFire, number of squashed instructions for Squash, DBB
	// occupancy after the operation for DBBPush/Pop, stall cycles for
	// CacheMiss, and the writeback cycle for Complete (the event itself is
	// emitted at issue, when the scoreboard ready time is known).
	Val int64
	// Addr is the memory address for CacheMiss and Fault events.
	Addr uint64
}

// Sink receives the event stream. Emit must be cheap: the pipeline calls
// it from the simulated hot path. Close flushes any buffered output.
type Sink interface {
	Emit(ev Event)
	Close() error
}

// tee fans one stream out to several sinks.
type tee []Sink

// Tee returns a sink that forwards every event to each of sinks (nils
// are skipped). With fewer than two live sinks it returns the obvious
// degenerate answer.
func Tee(sinks ...Sink) Sink {
	var live tee
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// Emit implements Sink.
func (t tee) Emit(ev Event) {
	for _, s := range t {
		s.Emit(ev)
	}
}

// Close implements Sink, returning the first error.
func (t tee) Close() error {
	var first error
	for _, s := range t {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
