package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
)

// NumHistBuckets is the fixed bucket count of Hist: bucket 0 holds
// non-positive samples, bucket i (i >= 1) holds samples in [2^(i-1), 2^i).
const NumHistBuckets = 64

// Hist is a fixed-footprint power-of-two histogram. The zero value is
// ready to use, so it embeds directly in stats structs with no
// constructor, and Observe costs a handful of integer ops — cheap enough
// to leave always-on in the simulated hot path.
type Hist struct {
	Count   int64
	Sum     int64
	MinV    int64
	MaxV    int64
	Buckets [NumHistBuckets]int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // v in [2^(b-1), 2^b) -> Len64 = b
}

// BucketBounds returns bucket i's half-open range [lo, hi).
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return math.MinInt64, 1
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, math.MaxInt64
	}
	return lo, int64(1) << i
}

// Observe records one sample.
func (h *Hist) Observe(v int64) {
	if h.Count == 0 || v < h.MinV {
		h.MinV = v
	}
	if h.Count == 0 || v > h.MaxV {
		h.MaxV = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bucketOf(v)]++
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.MinV < h.MinV {
		h.MinV = o.MinV
	}
	if h.Count == 0 || o.MaxV > h.MaxV {
		h.MaxV = o.MaxV
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the exact sample mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile: the exclusive upper
// edge of the bucket containing it, clamped to the observed max. q is
// clamped to [0, 1]; an empty histogram returns 0.
func (h *Hist) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if cum >= rank {
			_, hi := BucketBounds(i)
			if hi > h.MaxV {
				return h.MaxV
			}
			return hi
		}
	}
	return h.MaxV
}

// histBucketJSON is one non-empty bucket in the wire format.
type histBucketJSON struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	N  int64 `json:"n"`
}

// histJSON is the wire format of Hist: summary statistics plus only the
// non-empty buckets, so sparse histograms stay small on disk.
type histJSON struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Min     int64            `json:"min"`
	Max     int64            `json:"max"`
	Mean    float64          `json:"mean"`
	P50     int64            `json:"p50"`
	P99     int64            `json:"p99"`
	Buckets []histBucketJSON `json:"buckets,omitempty"`
}

// MarshalJSON emits the compact wire format.
func (h *Hist) MarshalJSON() ([]byte, error) {
	out := histJSON{
		Count: h.Count, Sum: h.Sum, Min: h.MinV, Max: h.MaxV,
		Mean: h.Mean(), P50: h.Quantile(0.5), P99: h.Quantile(0.99),
	}
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		if lo < h.MinV {
			lo = h.MinV // bucket 0 spans all non-positive values
		}
		out.Buckets = append(out.Buckets, histBucketJSON{Lo: lo, Hi: hi, N: n})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a histogram from the wire format (summary fields
// plus buckets; lo edges are re-quantized to power-of-two buckets).
func (h *Hist) UnmarshalJSON(data []byte) error {
	var in histJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*h = Hist{Count: in.Count, Sum: in.Sum, MinV: in.Min, MaxV: in.Max}
	for _, b := range in.Buckets {
		i := bucketOf(b.Lo)
		if i >= NumHistBuckets {
			return fmt.Errorf("trace: histogram bucket lo %d out of range", b.Lo)
		}
		h.Buckets[i] += b.N
	}
	return nil
}
