package trace

// Ring is a bounded in-memory sink keeping the most recent events for
// post-mortem inspection: attach one cheaply to every run and dump it
// only when something goes wrong (vgrun does exactly this for deferred
// faults).
type Ring struct {
	buf     []Event
	next    int
	wrapped bool
	dropped int64
}

// NewRing builds a ring holding the last n events (n <= 0 defaults to 256).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 256
	}
	return &Ring{buf: make([]Event, n)}
}

// Emit implements Sink.
func (r *Ring) Emit(ev Event) {
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next, r.wrapped = 0, true
	}
}

// Close implements Sink.
func (r *Ring) Close() error { return nil }

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// Dropped returns how many events were overwritten after the ring filled.
func (r *Ring) Dropped() int64 { return r.dropped }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
