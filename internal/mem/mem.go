// Package mem provides the sparse data memory of the vanguard machine.
//
// Memory is byte-addressed but accessed in aligned 64-bit words; the
// backing store is paged so that programs with multi-megabyte footprints
// (needed to provoke realistic L2/L3 miss rates) stay cheap to simulate.
// Addresses below FaultBoundary fault, modelling the unmapped null page
// that makes control-speculated loads dangerous in real programs.
//
// A small direct-mapped page-translation cache (a software TLB) sits in
// front of the pages map: the simulator's hot loop issues one load or
// store per memory instruction, and nearly all of them land on a handful
// of recently-touched pages, so the common case is two masks and one
// array read instead of a map lookup. LoadFast/StoreFast are the
// allocation-free forms the pipeline uses per-access; Load/Store keep the
// error-returning contract for the golden model and loaders.
package mem

import "fmt"

const (
	// PageBytes is the size of one backing page.
	PageBytes = 1 << 16
	wordsPP   = PageBytes / 8

	// FaultBoundary is the lowest valid address: accesses below it fault,
	// like dereferences of null-ish pointers.
	FaultBoundary = 4096

	// tlbEntries sizes the direct-mapped translation cache. 64 entries
	// cover 4MB of working set at zero associativity cost; conflict
	// misses just fall back to the map.
	tlbEntries = 64
)

// Fault describes a memory access fault.
type Fault struct {
	Addr  uint64
	Write bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	kind := "load"
	if f.Write {
		kind = "store"
	}
	return fmt.Sprintf("memory fault: %s at %#x", kind, f.Addr)
}

// tlbEnt is one translation-cache slot; page == nil marks it empty.
type tlbEnt struct {
	pn   uint64
	page *[wordsPP]int64
}

// Memory is a sparse, paged 64-bit word store.
type Memory struct {
	pages map[uint64]*[wordsPP]int64
	tlb   [tlbEntries]tlbEnt
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[wordsPP]int64)}
}

// Valid reports whether the address is mapped-legal and aligned. It is
// pure address arithmetic, so callers probing for wrong-path faults can
// use it without touching the page table (or allocating a Fault).
func Valid(addr uint64) bool {
	return addr >= FaultBoundary && addr%8 == 0
}

// pageFor returns the backing page for page number pn (nil if the page
// was never written), consulting the TLB before the map and filling the
// TLB on a map hit.
func (m *Memory) pageFor(pn uint64) *[wordsPP]int64 {
	e := &m.tlb[pn&(tlbEntries-1)]
	if e.page != nil && e.pn == pn {
		return e.page
	}
	page := m.pages[pn]
	if page != nil {
		e.pn, e.page = pn, page
	}
	return page
}

// Load reads the 64-bit word at addr. It returns a *Fault error for
// misaligned or out-of-bounds addresses.
func (m *Memory) Load(addr uint64) (int64, error) {
	if !Valid(addr) {
		return 0, &Fault{Addr: addr}
	}
	page := m.pageFor(addr / PageBytes)
	if page == nil {
		return 0, nil // unwritten memory reads as zero
	}
	return page[(addr%PageBytes)/8], nil
}

// LoadFast is the allocation-free hot-path load: ok is false exactly when
// Load would fault, and the value matches Load in every case.
func (m *Memory) LoadFast(addr uint64) (v int64, ok bool) {
	if !Valid(addr) {
		return 0, false
	}
	page := m.pageFor(addr / PageBytes)
	if page == nil {
		return 0, true
	}
	return page[(addr%PageBytes)/8], true
}

// Store writes the 64-bit word at addr.
func (m *Memory) Store(addr uint64, v int64) error {
	if !m.StoreFast(addr, v) {
		return &Fault{Addr: addr, Write: true}
	}
	return nil
}

// StoreFast is the allocation-free hot-path store: ok is false exactly
// when Store would fault (nothing is written in that case).
func (m *Memory) StoreFast(addr uint64, v int64) bool {
	if !Valid(addr) {
		return false
	}
	pn := addr / PageBytes
	page := m.pageFor(pn)
	if page == nil {
		page = new([wordsPP]int64)
		m.pages[pn] = page
		e := &m.tlb[pn&(tlbEntries-1)]
		e.pn, e.page = pn, page
	}
	page[(addr%PageBytes)/8] = v
	return true
}

// MustStore stores and panics on fault; used by program loaders that write
// only known-good addresses.
func (m *Memory) MustStore(addr uint64, v int64) {
	if !m.StoreFast(addr, v) {
		panic(&Fault{Addr: addr, Write: true})
	}
}

// StoreWords writes a contiguous slice of words starting at base.
func (m *Memory) StoreWords(base uint64, vs []int64) error {
	for i, v := range vs {
		if err := m.Store(base+uint64(i)*8, v); err != nil {
			return err
		}
	}
	return nil
}

// Footprint returns the number of distinct pages ever written.
func (m *Memory) Footprint() int { return len(m.pages) }

// Clone returns a deep copy, used to snapshot initial program state so the
// timing and functional simulators can run from identical memories. The
// clone starts with a cold TLB.
func (m *Memory) Clone() *Memory {
	c := New()
	for pn, page := range m.pages {
		cp := *page
		c.pages[pn] = &cp
	}
	return c
}

// Equal reports whether two memories hold identical contents. Pages of all
// zeros are treated as absent, so a written-then-zeroed page equals an
// untouched one.
func (m *Memory) Equal(o *Memory) bool {
	return m.subsetOf(o) && o.subsetOf(m)
}

func (m *Memory) subsetOf(o *Memory) bool {
	for pn, page := range m.pages {
		op, ok := o.pages[pn]
		if !ok {
			for _, v := range page {
				if v != 0 {
					return false
				}
			}
			continue
		}
		if *page != *op {
			return false
		}
	}
	return true
}
