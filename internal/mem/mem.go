// Package mem provides the sparse data memory of the vanguard machine.
//
// Memory is byte-addressed but accessed in aligned 64-bit words; the
// backing store is paged so that programs with multi-megabyte footprints
// (needed to provoke realistic L2/L3 miss rates) stay cheap to simulate.
// Addresses below FaultBoundary fault, modelling the unmapped null page
// that makes control-speculated loads dangerous in real programs.
package mem

import "fmt"

const (
	// PageBytes is the size of one backing page.
	PageBytes = 1 << 16
	wordsPP   = PageBytes / 8

	// FaultBoundary is the lowest valid address: accesses below it fault,
	// like dereferences of null-ish pointers.
	FaultBoundary = 4096
)

// Fault describes a memory access fault.
type Fault struct {
	Addr  uint64
	Write bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	kind := "load"
	if f.Write {
		kind = "store"
	}
	return fmt.Sprintf("memory fault: %s at %#x", kind, f.Addr)
}

// Memory is a sparse, paged 64-bit word store.
type Memory struct {
	pages map[uint64]*[wordsPP]int64
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[wordsPP]int64)}
}

// valid reports whether the address is mapped-legal and aligned.
func valid(addr uint64) bool {
	return addr >= FaultBoundary && addr%8 == 0
}

// Load reads the 64-bit word at addr. It returns a *Fault error for
// misaligned or out-of-bounds addresses.
func (m *Memory) Load(addr uint64) (int64, error) {
	if !valid(addr) {
		return 0, &Fault{Addr: addr}
	}
	page, ok := m.pages[addr/PageBytes]
	if !ok {
		return 0, nil // unwritten memory reads as zero
	}
	return page[(addr%PageBytes)/8], nil
}

// Store writes the 64-bit word at addr.
func (m *Memory) Store(addr uint64, v int64) error {
	if !valid(addr) {
		return &Fault{Addr: addr, Write: true}
	}
	pn := addr / PageBytes
	page, ok := m.pages[pn]
	if !ok {
		page = new([wordsPP]int64)
		m.pages[pn] = page
	}
	page[(addr%PageBytes)/8] = v
	return nil
}

// MustStore stores and panics on fault; used by program loaders that write
// only known-good addresses.
func (m *Memory) MustStore(addr uint64, v int64) {
	if err := m.Store(addr, v); err != nil {
		panic(err)
	}
}

// StoreWords writes a contiguous slice of words starting at base.
func (m *Memory) StoreWords(base uint64, vs []int64) error {
	for i, v := range vs {
		if err := m.Store(base+uint64(i)*8, v); err != nil {
			return err
		}
	}
	return nil
}

// Footprint returns the number of distinct pages ever written.
func (m *Memory) Footprint() int { return len(m.pages) }

// Clone returns a deep copy, used to snapshot initial program state so the
// timing and functional simulators can run from identical memories.
func (m *Memory) Clone() *Memory {
	c := New()
	for pn, page := range m.pages {
		cp := *page
		c.pages[pn] = &cp
	}
	return c
}

// Equal reports whether two memories hold identical contents. Pages of all
// zeros are treated as absent, so a written-then-zeroed page equals an
// untouched one.
func (m *Memory) Equal(o *Memory) bool {
	return m.subsetOf(o) && o.subsetOf(m)
}

func (m *Memory) subsetOf(o *Memory) bool {
	for pn, page := range m.pages {
		op, ok := o.pages[pn]
		if !ok {
			for _, v := range page {
				if v != 0 {
					return false
				}
			}
			continue
		}
		if *page != *op {
			return false
		}
	}
	return true
}
