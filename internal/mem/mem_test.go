package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New()
	addrs := []uint64{FaultBoundary, FaultBoundary + 8, 1 << 20, 3 << 24}
	for i, a := range addrs {
		if err := m.Store(a, int64(i)*1000-7); err != nil {
			t.Fatalf("Store(%#x): %v", a, err)
		}
	}
	for i, a := range addrs {
		v, err := m.Load(a)
		if err != nil {
			t.Fatalf("Load(%#x): %v", a, err)
		}
		if want := int64(i)*1000 - 7; v != want {
			t.Errorf("Load(%#x) = %d, want %d", a, v, want)
		}
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	m := New()
	v, err := m.Load(1 << 30)
	if err != nil || v != 0 {
		t.Fatalf("Load of untouched memory = %d, %v; want 0, nil", v, err)
	}
}

func TestFaults(t *testing.T) {
	m := New()
	cases := []struct {
		addr  uint64
		write bool
	}{
		{0, false}, {0, true},
		{8, false},                  // below FaultBoundary
		{FaultBoundary - 8, true},   // below FaultBoundary
		{FaultBoundary + 1, false},  // misaligned
		{FaultBoundary + 12, false}, // misaligned
	}
	for _, c := range cases {
		var err error
		if c.write {
			err = m.Store(c.addr, 1)
		} else {
			_, err = m.Load(c.addr)
		}
		f, ok := err.(*Fault)
		if !ok {
			t.Errorf("addr %#x write=%v: got %v, want *Fault", c.addr, c.write, err)
			continue
		}
		if f.Addr != c.addr || f.Write != c.write {
			t.Errorf("fault fields wrong: %+v", f)
		}
		if f.Error() == "" {
			t.Error("empty fault message")
		}
	}
}

func TestMustStorePanicsOnFault(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustStore(0) should panic")
		}
	}()
	New().MustStore(0, 1)
}

func TestStoreWords(t *testing.T) {
	m := New()
	vs := []int64{1, -2, 3, -4, 5}
	base := uint64(PageBytes - 16) // straddles a page boundary
	if base < FaultBoundary {
		t.Fatal("test base must be valid")
	}
	if err := m.StoreWords(base, vs); err != nil {
		t.Fatal(err)
	}
	for i, want := range vs {
		got, err := m.Load(base + uint64(i)*8)
		if err != nil || got != want {
			t.Errorf("word %d = %d, %v; want %d", i, got, err, want)
		}
	}
	if m.Footprint() != 2 {
		t.Errorf("Footprint() = %d, want 2 (write straddles pages)", m.Footprint())
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New()
	m.MustStore(FaultBoundary, 11)
	c := m.Clone()
	c.MustStore(FaultBoundary, 99)
	v, _ := m.Load(FaultBoundary)
	if v != 11 {
		t.Errorf("clone aliased original: got %d", v)
	}
	if !m.Equal(m.Clone()) {
		t.Error("memory must equal its own clone")
	}
}

func TestEqualTreatsZeroPagesAsAbsent(t *testing.T) {
	a, b := New(), New()
	a.MustStore(FaultBoundary, 5)
	a.MustStore(FaultBoundary, 0) // page exists but is all zero
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("zeroed page must compare equal to absent page")
	}
	a.MustStore(FaultBoundary+8, 3)
	if a.Equal(b) {
		t.Error("differing memories compared equal")
	}
}

// Property: for any sequence of valid stores, the last store to each
// address wins and all other addresses stay zero.
func TestLastStoreWins(t *testing.T) {
	f := func(offsets []uint16, vals []int64) bool {
		m := New()
		want := map[uint64]int64{}
		n := len(offsets)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			addr := FaultBoundary + uint64(offsets[i])*8
			if m.Store(addr, vals[i]) != nil {
				return false
			}
			want[addr] = vals[i]
		}
		for a, w := range want {
			got, err := m.Load(a)
			if err != nil || got != w {
				return false
			}
		}
		// A nearby untouched address must read zero.
		probe := FaultBoundary + uint64(1<<20)
		if _, used := want[probe]; !used {
			if got, err := m.Load(probe); err != nil || got != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
