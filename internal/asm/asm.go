// Package asm implements a textual assembler and formatter for vanguard
// programs, so kernels can be written, dumped, diffed, and re-run as
// plain text. The syntax mirrors the disassembly:
//
//	; line comment (also //)
//	func main
//	init:
//	        li      r1, 0
//	        li      r2, 4096
//	loop:
//	        ld      r3, 0(r2)
//	        ld.s    r4, 8(r2)
//	        addi    r1, r1, 1
//	        cmplt   r5, r1, r3
//	        br      r5, loop #7
//	        predict hot #9
//	cold:
//	        resolve r5, nt, fixup #9
//	        st      16(r2), r1
//	        cmov    r3, r5, r4
//	        call    helper
//	        jmp     done
//	...
//	endfunc
//
// Labels name basic blocks within the enclosing func; `br`, `jmp`,
// `predict`, and `resolve` take block labels, `call` takes a function
// name, and `#n` attaches a branch ID. `resolve` takes `t` or `nt` for the
// direction the surrounding path assumed.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"vanguard/internal/ir"
	"vanguard/internal/isa"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type pendingTarget struct {
	fn    *ir.Func
	block int
	instr int
	label string // block label, or function name for CALL
	isFn  bool
	line  int
}

// Parse assembles source text into a program.
func Parse(src string) (*ir.Program, error) {
	p := &ir.Program{}
	fnIndex := map[string]int{}
	var pendings []pendingTarget
	blockIndex := map[string]int{} // labels of the current function

	var cur *ir.Func
	curBlock := -1
	anon := 0

	fail := func(line int, format string, args ...any) error {
		return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
	}

	ensureBlock := func(label string) int {
		if label == "" {
			label = fmt.Sprintf(".anon%d", anon)
			anon++
		}
		idx := cur.AddBlock(label)
		blockIndex[label] = idx
		curBlock = idx
		return idx
	}

	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		text := raw
		if i := strings.IndexAny(text, ";"); i >= 0 {
			text = text[:i]
		}
		if i := strings.Index(text, "//"); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}

		switch {
		case strings.HasPrefix(text, "func "):
			if cur != nil {
				return nil, fail(line, "nested func (missing endfunc?)")
			}
			name := strings.TrimSpace(strings.TrimPrefix(text, "func "))
			if name == "" {
				return nil, fail(line, "func needs a name")
			}
			if _, dup := fnIndex[name]; dup {
				return nil, fail(line, "duplicate function %q", name)
			}
			cur = &ir.Func{Name: name}
			fnIndex[name] = p.AddFunc(cur)
			blockIndex = map[string]int{}
			curBlock = -1
			continue
		case text == "endfunc":
			if cur == nil {
				return nil, fail(line, "endfunc outside func")
			}
			cur, curBlock = nil, -1
			continue
		}
		if cur == nil {
			return nil, fail(line, "instruction outside func")
		}

		if strings.HasSuffix(text, ":") {
			label := strings.TrimSuffix(text, ":")
			if label == "" {
				return nil, fail(line, "empty label")
			}
			if _, dup := blockIndex[label]; dup {
				return nil, fail(line, "duplicate label %q", label)
			}
			ensureBlock(label)
			continue
		}

		// An instruction. Start a fresh block if needed (entry, or after a
		// terminator with no explicit label).
		if curBlock < 0 {
			ensureBlock("")
		} else if term, ok := cur.Blocks[curBlock].Terminator(); ok {
			_ = term
			ensureBlock("")
		}

		ins, targetLabel, isFn, err := parseInstr(text, line)
		if err != nil {
			return nil, err
		}
		cur.Emit(curBlock, ins)
		if targetLabel != "" {
			pendings = append(pendings, pendingTarget{
				fn: cur, block: curBlock, instr: len(cur.Blocks[curBlock].Instrs) - 1,
				label: targetLabel, isFn: isFn, line: line,
			})
		}
		// Block labels are function-local; fix them per pending entry below.
		if targetLabel != "" && !isFn {
			pendings[len(pendings)-1].fn = cur
		}
	}
	if cur != nil {
		return nil, fail(len(strings.Split(src, "\n")), "missing endfunc")
	}

	// Resolve symbolic targets. Block labels resolve within their function;
	// rebuild each function's label map on demand.
	labelsOf := map[*ir.Func]map[string]int{}
	for _, f := range p.Funcs {
		m := map[string]int{}
		for i, b := range f.Blocks {
			m[b.Label] = i
		}
		labelsOf[f] = m
	}
	for _, pd := range pendings {
		var idx int
		var ok bool
		if pd.isFn {
			idx, ok = fnIndex[pd.label]
		} else {
			idx, ok = labelsOf[pd.fn][pd.label]
		}
		if !ok {
			return nil, &ParseError{Line: pd.line, Msg: fmt.Sprintf("undefined target %q", pd.label)}
		}
		pd.fn.Blocks[pd.block].Instrs[pd.instr].Target = idx
	}

	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return p, nil
}

// splitOperands splits "a, b, c" respecting no nesting (the grammar has
// none).
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string, line int) (isa.Reg, error) {
	if len(s) < 2 {
		return isa.NoReg, &ParseError{Line: line, Msg: fmt.Sprintf("bad register %q", s)}
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return isa.NoReg, &ParseError{Line: line, Msg: fmt.Sprintf("bad register %q", s)}
	}
	switch s[0] {
	case 'r':
		if n < 0 || n >= isa.NumIntRegs {
			return isa.NoReg, &ParseError{Line: line, Msg: fmt.Sprintf("register %q out of range", s)}
		}
		return isa.R(n), nil
	case 'f':
		if n < 0 || n >= isa.NumFPRegs {
			return isa.NoReg, &ParseError{Line: line, Msg: fmt.Sprintf("register %q out of range", s)}
		}
		return isa.F(n), nil
	}
	return isa.NoReg, &ParseError{Line: line, Msg: fmt.Sprintf("bad register %q", s)}
}

func parseImm(s string, line int) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, &ParseError{Line: line, Msg: fmt.Sprintf("bad immediate %q", s)}
	}
	return v, nil
}

// parseMem parses "imm(rB)".
func parseMem(s string, line int) (base isa.Reg, off int64, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return isa.NoReg, 0, &ParseError{Line: line, Msg: fmt.Sprintf("bad memory operand %q", s)}
	}
	off, err = parseImm(strings.TrimSpace(s[:open]), line)
	if err != nil {
		return isa.NoReg, 0, err
	}
	base, err = parseReg(strings.TrimSpace(s[open+1:len(s)-1]), line)
	return base, off, err
}

// stripID pulls a trailing "#n" branch ID off the operand list.
func stripID(ops []string, line int) ([]string, int, error) {
	if len(ops) == 0 {
		return ops, 0, nil
	}
	last := ops[len(ops)-1]
	if i := strings.Index(last, "#"); i >= 0 {
		id, err := parseImm(strings.TrimSpace(last[i+1:]), line)
		if err != nil {
			return nil, 0, err
		}
		last = strings.TrimSpace(last[:i])
		out := append([]string{}, ops[:len(ops)-1]...)
		if last != "" {
			out = append(out, last)
		}
		return out, int(id), nil
	}
	return ops, 0, nil
}

var threeOp = map[string]isa.Op{
	"add": isa.ADD, "sub": isa.SUB, "mul": isa.MUL, "div": isa.DIV, "rem": isa.REM,
	"and": isa.AND, "or": isa.OR, "xor": isa.XOR, "shl": isa.SHL, "shr": isa.SHR,
	"cmpeq": isa.CMPEQ, "cmpne": isa.CMPNE, "cmplt": isa.CMPLT,
	"cmple": isa.CMPLE, "cmpgt": isa.CMPGT, "cmpge": isa.CMPGE,
	"fadd": isa.FADD, "fsub": isa.FSUB, "fmul": isa.FMUL, "fdiv": isa.FDIV,
	"fcmplt": isa.FCMPLT, "fcmpge": isa.FCMPGE,
}

var twoOpImm = map[string]isa.Op{"addi": isa.ADDI, "muli": isa.MULI, "andi": isa.ANDI}

var oneOp = map[string]isa.Op{"mov": isa.MOV, "fmov": isa.FMOV, "cvtif": isa.CVTIF, "cvtfi": isa.CVTFI}

// parseInstr assembles a single instruction; targetLabel is non-empty for
// symbolic control flow (isFn marks a function target).
func parseInstr(text string, line int) (ins isa.Instr, targetLabel string, isFn bool, err error) {
	ins.Target = -1
	mnemonic, rest, _ := strings.Cut(text, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	ops := splitOperands(rest)
	var id int
	ops, id, err = stripID(ops, line)
	if err != nil {
		return ins, "", false, err
	}
	ins.BranchID = id

	need := func(n int) error {
		if len(ops) != n {
			return &ParseError{Line: line, Msg: fmt.Sprintf("%s wants %d operands, got %d", mnemonic, n, len(ops))}
		}
		return nil
	}

	switch {
	case mnemonic == "nop":
		ins.Op = isa.NOP
		return ins, "", false, need(0)
	case mnemonic == "halt":
		ins.Op = isa.HALT
		return ins, "", false, need(0)
	case mnemonic == "ret":
		ins.Op = isa.RET
		ins.Src1 = isa.R(isa.NumIntRegs - 1)
		return ins, "", false, need(0)
	case mnemonic == "li":
		if err = need(2); err != nil {
			return
		}
		ins.Op = isa.LI
		if ins.Dst, err = parseReg(ops[0], line); err != nil {
			return
		}
		ins.Imm, err = parseImm(ops[1], line)
		return
	case threeOp[mnemonic] != 0:
		if err = need(3); err != nil {
			return
		}
		ins.Op = threeOp[mnemonic]
		if ins.Dst, err = parseReg(ops[0], line); err != nil {
			return
		}
		if ins.Src1, err = parseReg(ops[1], line); err != nil {
			return
		}
		ins.Src2, err = parseReg(ops[2], line)
		return
	case twoOpImm[mnemonic] != 0:
		if err = need(3); err != nil {
			return
		}
		ins.Op = twoOpImm[mnemonic]
		if ins.Dst, err = parseReg(ops[0], line); err != nil {
			return
		}
		if ins.Src1, err = parseReg(ops[1], line); err != nil {
			return
		}
		ins.Imm, err = parseImm(ops[2], line)
		return
	case oneOp[mnemonic] != 0:
		if err = need(2); err != nil {
			return
		}
		ins.Op = oneOp[mnemonic]
		if ins.Dst, err = parseReg(ops[0], line); err != nil {
			return
		}
		ins.Src1, err = parseReg(ops[1], line)
		return
	case mnemonic == "ld" || mnemonic == "ld.s":
		if err = need(2); err != nil {
			return
		}
		ins.Op = isa.LD
		if mnemonic == "ld.s" {
			ins.Op = isa.LDS
		}
		if ins.Dst, err = parseReg(ops[0], line); err != nil {
			return
		}
		ins.Src1, ins.Imm, err = parseMem(ops[1], line)
		return
	case mnemonic == "st":
		if err = need(2); err != nil {
			return
		}
		ins.Op = isa.ST
		if ins.Src1, ins.Imm, err = parseMem(ops[0], line); err != nil {
			return
		}
		ins.Src2, err = parseReg(ops[1], line)
		return
	case mnemonic == "cmov":
		if err = need(3); err != nil {
			return
		}
		ins.Op = isa.CMOV
		if ins.Dst, err = parseReg(ops[0], line); err != nil {
			return
		}
		if ins.Src1, err = parseReg(ops[1], line); err != nil {
			return
		}
		ins.Src2, err = parseReg(ops[2], line)
		return
	case mnemonic == "br":
		if err = need(2); err != nil {
			return
		}
		ins.Op = isa.BR
		if ins.Src1, err = parseReg(ops[0], line); err != nil {
			return
		}
		return ins, ops[1], false, nil
	case mnemonic == "jmp":
		if err = need(1); err != nil {
			return
		}
		ins.Op = isa.JMP
		return ins, ops[0], false, nil
	case mnemonic == "call":
		if err = need(1); err != nil {
			return
		}
		ins.Op = isa.CALL
		return ins, ops[0], true, nil
	case mnemonic == "predict":
		if err = need(1); err != nil {
			return
		}
		ins.Op = isa.PREDICT
		return ins, ops[0], false, nil
	case mnemonic == "resolve":
		if err = need(3); err != nil {
			return
		}
		ins.Op = isa.RESOLVE
		if ins.Src1, err = parseReg(ops[0], line); err != nil {
			return
		}
		switch strings.ToLower(ops[1]) {
		case "t", "taken":
			ins.Expect = true
		case "nt", "not-taken", "nottaken":
			ins.Expect = false
		default:
			return ins, "", false, &ParseError{Line: line, Msg: fmt.Sprintf("resolve expects t|nt, got %q", ops[1])}
		}
		return ins, ops[2], false, nil
	}
	return ins, "", false, &ParseError{Line: line, Msg: fmt.Sprintf("unknown mnemonic %q", mnemonic)}
}
