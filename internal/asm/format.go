package asm

import (
	"fmt"
	"strings"

	"vanguard/internal/ir"
	"vanguard/internal/isa"
)

// Format renders a program as assembly text that Parse accepts, with
// control-flow targets printed as block labels.
func Format(p *ir.Program) string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "func %s\n", f.Name)
		labels := uniqueLabels(f)
		for bi, b := range f.Blocks {
			fmt.Fprintf(&sb, "%s:\n", labels[bi])
			for _, ins := range b.Instrs {
				fmt.Fprintf(&sb, "\t%s\n", formatInstr(p, f, labels, ins))
			}
		}
		sb.WriteString("endfunc\n")
	}
	return sb.String()
}

// uniqueLabels returns parse-safe, unique labels for every block.
func uniqueLabels(f *ir.Func) []string {
	out := make([]string, len(f.Blocks))
	seen := map[string]bool{}
	for i, b := range f.Blocks {
		label := sanitize(b.Label)
		if label == "" {
			label = fmt.Sprintf("b%d", i)
		}
		for seen[label] {
			label = fmt.Sprintf("%s.%d", label, i)
		}
		seen[label] = true
		out[i] = label
	}
	return out
}

// sanitize keeps label characters the parser tolerates.
func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-', r == '\'':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func formatInstr(p *ir.Program, f *ir.Func, labels []string, ins isa.Instr) string {
	id := ""
	if ins.BranchID != 0 {
		id = fmt.Sprintf(" #%d", ins.BranchID)
	}
	switch ins.Op {
	case isa.BR:
		return fmt.Sprintf("br %s, %s%s", ins.Src1, labels[ins.Target], id)
	case isa.JMP:
		return fmt.Sprintf("jmp %s%s", labels[ins.Target], id)
	case isa.CALL:
		return fmt.Sprintf("call %s%s", p.Funcs[ins.Target].Name, id)
	case isa.PREDICT:
		return fmt.Sprintf("predict %s%s", labels[ins.Target], id)
	case isa.RESOLVE:
		dir := "nt"
		if ins.Expect {
			dir = "t"
		}
		return fmt.Sprintf("resolve %s, %s, %s%s", ins.Src1, dir, labels[ins.Target], id)
	case isa.RET:
		return "ret"
	default:
		// The ISA disassembly for non-control instructions is already in
		// the accepted grammar.
		return ins.String()
	}
}
