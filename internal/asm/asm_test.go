package asm

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

const sample = `
; sum the first n integers, with a decomposed branch for flavor
func main
init:
	li      r1, 0          ; i
	li      r2, 10         ; n
	li      r3, 4096       ; out
	li      r10, 0         ; sum
loop:
	add     r10, r10, r1
	addi    r1, r1, 1
	cmplt   r4, r1, r2
	br      r4, loop #3
done:
	st      0(r3), r10
	call    helper
	halt
endfunc

func helper
entry:
	addi    r11, r11, 1
	ret
endfunc
`

func TestParseAndRun(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != 2 || p.Funcs[0].Name != "main" || p.Funcs[1].Name != "helper" {
		t.Fatalf("functions parsed wrong: %+v", p.Funcs)
	}
	m := mem.New()
	if _, _, err := interp.Run(ir.MustLinearize(p), m, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Load(4096)
	if v != 45 {
		t.Errorf("assembled program computed %d, want 45", v)
	}
}

func TestParseBranchID(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, b := range p.Funcs[0].Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == isa.BR && ins.BranchID == 3 {
				found = true
			}
		}
	}
	if !found {
		t.Error("branch ID #3 not attached")
	}
}

func TestParseDecomposedOps(t *testing.T) {
	src := `
func main
a:
	li      r1, 1
	predict ca #9
ba:
	cmpne   r2, r1, r0
	resolve r2, nt, corr #9
bp:
	jmp end
ca:
	cmpne   r2, r1, r0
	resolve r2, t, corr2 #9
cp:
	jmp end
corr:
	jmp cp
corr2:
	jmp bp
end:
	halt
endfunc
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var predicts, resolves int
	var expects []bool
	for _, b := range p.Funcs[0].Blocks {
		for _, ins := range b.Instrs {
			switch ins.Op {
			case isa.PREDICT:
				predicts++
			case isa.RESOLVE:
				resolves++
				expects = append(expects, ins.Expect)
			}
		}
	}
	if predicts != 1 || resolves != 2 {
		t.Fatalf("predicts=%d resolves=%d", predicts, resolves)
	}
	if len(expects) != 2 || expects[0] || !expects[1] {
		t.Errorf("resolve expectations wrong: %v", expects)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"outside func", "nop\n", "outside func"},
		{"missing endfunc", "func f\na:\n\thalt\n", "missing endfunc"},
		{"bad mnemonic", "func f\na:\n\tfrob r1, r2\nendfunc\n", "unknown mnemonic"},
		{"bad register", "func f\na:\n\tli r99, 0\nendfunc\n", "out of range"},
		{"bad operand count", "func f\na:\n\tadd r1, r2\nendfunc\n", "wants 3 operands"},
		{"undefined label", "func f\na:\n\tjmp nowhere\nendfunc\n", "undefined target"},
		{"duplicate label", "func f\na:\n\tnop\na:\n\thalt\nendfunc\n", "duplicate label"},
		{"duplicate func", "func f\na:\n\thalt\nendfunc\nfunc f\nb:\n\thalt\nendfunc\n", "duplicate function"},
		{"bad resolve dir", "func f\na:\n\tresolve r1, x, a\nendfunc\n", "t|nt"},
		{"bad memory operand", "func f\na:\n\tld r1, r2\nendfunc\n", "bad memory operand"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestLineNumbersInErrors(t *testing.T) {
	_, err := Parse("func f\na:\n\tnop\n\tfrob\nendfunc\n")
	pe, ok := err.(*ParseError)
	if !ok || pe.Line != 4 {
		t.Errorf("want ParseError at line 4, got %v", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	p1, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(p1)
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted output does not re-parse: %v\n%s", err, text)
	}
	// Behavioural equivalence: run both.
	m1, m2 := mem.New(), mem.New()
	if _, _, err := interp.Run(ir.MustLinearize(p1), m1, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := interp.Run(ir.MustLinearize(p2), m2, interp.Options{}); err != nil {
		t.Fatal(err)
	}
	if !m1.Equal(m2) {
		t.Error("round-tripped program behaves differently")
	}
}

// TestRandomRoundTrip formats and re-parses randomly generated programs,
// checking structural identity (same ops, targets, operands).
func TestRandomRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		f := &ir.Func{Name: "main"}
		a := f.AddBlock("a")
		b := f.AddBlock("b")
		end := f.AddBlock("end")
		ops := []isa.Instr{
			ir.Add(isa.R(1), isa.R(2), isa.R(3)),
			ir.Addi(isa.R(4), isa.R(5), int64(r.Intn(100)-50)),
			ir.Li(isa.F(2), int64(r.Intn(1000))),
			ir.Ld(isa.R(6), isa.R(7), int64(r.Intn(10)*8)),
			ir.LdSpec(isa.R(8), isa.R(7), 16),
			ir.St(isa.R(7), 8, isa.R(6)),
			ir.Fop(isa.FADD, isa.F(1), isa.F(2), isa.F(3)),
			ir.Mov(isa.R(9), isa.R(10)),
			{Op: isa.CMOV, Dst: isa.R(1), Src1: isa.R(4), Src2: isa.R(6), Target: -1},
			ir.Cmp(isa.CMPGE, isa.R(11), isa.R(1), isa.R(2)),
		}
		for i := 0; i < 2+r.Intn(6); i++ {
			f.Emit(a, ops[r.Intn(len(ops))])
		}
		f.Emit(a, ir.BrID(isa.R(11), end, r.Intn(50)+1))
		f.Emit(b, ir.Nop(), ir.Jmp(end))
		f.Emit(end, ir.Halt())
		p1 := &ir.Program{Funcs: []*ir.Func{f}}

		p2, err := Parse(Format(p1))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, Format(p1))
		}
		if len(p2.Funcs) != 1 || len(p2.Funcs[0].Blocks) != 3 {
			t.Fatalf("seed %d: structure lost", seed)
		}
		for bi, blk := range p1.Funcs[0].Blocks {
			got := p2.Funcs[0].Blocks[bi].Instrs
			if len(got) != len(blk.Instrs) {
				t.Fatalf("seed %d block %d: %d instrs, want %d", seed, bi, len(got), len(blk.Instrs))
			}
			for ii, want := range blk.Instrs {
				g := got[ii]
				if g.Op != want.Op || g.Dst != want.Dst || g.Src1 != want.Src1 ||
					g.Src2 != want.Src2 || g.Imm != want.Imm || g.Target != want.Target ||
					g.BranchID != want.BranchID || g.Expect != want.Expect {
					t.Fatalf("seed %d block %d instr %d: %v != %v", seed, bi, ii, g, want)
				}
			}
		}
	}
}

// TestShippedSamplePrograms parses and runs every .s file shipped under
// examples/asm, guarding them against grammar drift.
func TestShippedSamplePrograms(t *testing.T) {
	files, err := filepath.Glob("../../examples/asm/*.s")
	if err != nil || len(files) == 0 {
		t.Skipf("no sample programs found: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Parse(string(src))
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if _, _, err := interp.Run(ir.MustLinearize(p), mem.New(), interp.Options{MaxInstrs: 10_000_000}); err != nil {
			t.Errorf("%s: %v", f, err)
		}
		// Round trip through the formatter too.
		if _, err := Parse(Format(p)); err != nil {
			t.Errorf("%s: formatted output does not re-parse: %v", f, err)
		}
	}
}
