// Package ir provides the compiler intermediate representation the
// Decomposed Branch Transformation operates on: functions of basic blocks
// over the vanguard ISA, with an explicit control-flow graph, liveness
// analysis, and a linearizer that lays blocks out into a flat instruction
// image for the simulators.
//
// Layout convention: the block slice order IS the code layout order. A
// block whose last instruction is not a terminator, or whose terminator is
// conditional (BR, RESOLVE, PREDICT) or a CALL, falls through to the next
// block in the slice. Instruction Target fields hold block indices within
// the same function, except CALL whose Target is a function index within
// the program.
package ir

import (
	"fmt"
	"strings"

	"vanguard/internal/isa"
)

// Block is a basic block: straight-line code where only the final
// instruction may transfer control.
type Block struct {
	Label  string
	Instrs []isa.Instr
}

// Terminator returns the block's final instruction and whether it is a
// control-flow terminator.
func (b *Block) Terminator() (isa.Instr, bool) {
	if len(b.Instrs) == 0 {
		return isa.Instr{}, false
	}
	last := b.Instrs[len(b.Instrs)-1]
	return last, last.IsTerminator()
}

// Func is a single function.
type Func struct {
	Name   string
	Blocks []*Block
}

// AddBlock appends an empty block and returns its index.
func (f *Func) AddBlock(label string) int {
	f.Blocks = append(f.Blocks, &Block{Label: label})
	return len(f.Blocks) - 1
}

// Emit appends an instruction to block b.
func (f *Func) Emit(b int, ins ...isa.Instr) {
	f.Blocks[b].Instrs = append(f.Blocks[b].Instrs, ins...)
}

// NumInstrs returns the static instruction count of the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Succs returns the successor block indices of block i, in order
// (taken target first for conditional control flow, then fall-through).
// RET and HALT have no successors; CALL's successor is its fall-through
// (the call edge is interprocedural and not part of the function CFG).
func (f *Func) Succs(i int) []int {
	b := f.Blocks[i]
	term, ok := b.Terminator()
	if !ok { // plain fall-through
		if i+1 < len(f.Blocks) {
			return []int{i + 1}
		}
		return nil
	}
	switch term.Op {
	case isa.JMP:
		return []int{term.Target}
	case isa.BR, isa.RESOLVE, isa.PREDICT:
		s := []int{term.Target}
		if i+1 < len(f.Blocks) {
			s = append(s, i+1)
		}
		return s
	case isa.CALL:
		if i+1 < len(f.Blocks) {
			return []int{i + 1}
		}
		return nil
	default: // RET, HALT
		return nil
	}
}

// Preds returns the predecessor lists of every block.
func (f *Func) Preds() [][]int {
	preds := make([][]int, len(f.Blocks))
	for i := range f.Blocks {
		for _, s := range f.Succs(i) {
			preds[s] = append(preds[s], i)
		}
	}
	return preds
}

// ReversePostorder returns block indices in reverse postorder from the
// entry (block 0). Unreachable blocks are appended afterwards in slice
// order so analyses still cover them.
func (f *Func) ReversePostorder() []int {
	seen := make([]bool, len(f.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(i int) {
		seen[i] = true
		for _, s := range f.Succs(i) {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, i)
	}
	if len(f.Blocks) > 0 {
		dfs(0)
	}
	order := make([]int, 0, len(f.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	for i := range f.Blocks {
		if !seen[i] {
			order = append(order, i)
		}
	}
	return order
}

// Clone returns a deep copy of the function.
func (f *Func) Clone() *Func {
	c := &Func{Name: f.Name, Blocks: make([]*Block, len(f.Blocks))}
	for i, b := range f.Blocks {
		nb := &Block{Label: b.Label, Instrs: make([]isa.Instr, len(b.Instrs))}
		copy(nb.Instrs, b.Instrs)
		c.Blocks[i] = nb
	}
	return c
}

// String disassembles the function.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", f.Name)
	for i, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s (block %d):\n", b.Label, i)
		for _, ins := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", ins)
		}
	}
	return sb.String()
}

// Program is a whole program: a set of functions, entered at Funcs[0].
type Program struct {
	Funcs []*Func
}

// AddFunc appends a function and returns its index.
func (p *Program) AddFunc(f *Func) int {
	p.Funcs = append(p.Funcs, f)
	return len(p.Funcs) - 1
}

// NumInstrs returns the static instruction count of the program.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	c := &Program{Funcs: make([]*Func, len(p.Funcs))}
	for i, f := range p.Funcs {
		c.Funcs[i] = f.Clone()
	}
	return c
}

// String disassembles the program.
func (p *Program) String() string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// Verify checks structural invariants: non-empty entry function, in-range
// block and function targets, terminators only in final position, and
// that the final block of each function does not fall off the end.
func (p *Program) Verify() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("ir: program has no functions")
	}
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: func %q has no blocks", f.Name)
		}
		for bi, b := range f.Blocks {
			for ii, ins := range b.Instrs {
				if ins.IsTerminator() && ii != len(b.Instrs)-1 {
					return fmt.Errorf("ir: %s/%s: terminator %v not at block end", f.Name, b.Label, ins)
				}
				switch ins.Op {
				case isa.CALL:
					if ins.Target < 0 || ins.Target >= len(p.Funcs) {
						return fmt.Errorf("ir: %s/%s: call target %d out of range", f.Name, b.Label, ins.Target)
					}
				case isa.BR, isa.JMP, isa.PREDICT, isa.RESOLVE:
					if ins.Target < 0 || ins.Target >= len(f.Blocks) {
						return fmt.Errorf("ir: %s/%s: branch target %d out of range", f.Name, b.Label, ins.Target)
					}
				}
			}
			term, isTerm := b.Terminator()
			fallsThrough := !isTerm || term.Op == isa.BR || term.Op == isa.RESOLVE ||
				term.Op == isa.PREDICT || term.Op == isa.CALL
			if fallsThrough && bi == len(f.Blocks)-1 {
				return fmt.Errorf("ir: %s/%s: final block falls off the end of the function", f.Name, b.Label)
			}
		}
	}
	return nil
}
