package ir

import (
	"strings"
	"testing"

	"vanguard/internal/isa"
)

// diamond builds the canonical hammock used throughout the paper:
//
//	A: cmp; br -> C
//	B: ... (fallthrough from A)
//	C: ...
//	D: join, halt
func diamond() *Func {
	f := &Func{Name: "diamond"}
	a := f.AddBlock("A")
	b := f.AddBlock("B")
	c := f.AddBlock("C")
	d := f.AddBlock("D")
	f.Emit(a, Li(isa.R(1), 5), Cmp(isa.CMPLT, isa.R(2), isa.R(1), isa.R(0)), BrID(isa.R(2), c, 1))
	f.Emit(b, Addi(isa.R(3), isa.R(3), 1), Jmp(d))
	f.Emit(c, Addi(isa.R(4), isa.R(4), 1)) // falls through to D
	f.Emit(d, Halt())
	return f
}

func TestSuccsPreds(t *testing.T) {
	f := diamond()
	wantSuccs := [][]int{{2, 1}, {3}, {3}, nil}
	for i, want := range wantSuccs {
		got := f.Succs(i)
		if len(got) != len(want) {
			t.Fatalf("Succs(%d) = %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Errorf("Succs(%d) = %v, want %v", i, got, want)
			}
		}
	}
	preds := f.Preds()
	if len(preds[3]) != 2 {
		t.Errorf("join block should have 2 preds, got %v", preds[3])
	}
	if len(preds[0]) != 0 {
		t.Errorf("entry should have no preds, got %v", preds[0])
	}
}

func TestSuccsOfDecomposedOps(t *testing.T) {
	f := &Func{Name: "g"}
	a := f.AddBlock("A")
	ba := f.AddBlock("BA'")
	bp := f.AddBlock("B'")
	corr := f.AddBlock("CorrC")
	f.Emit(a, Predict(corr, 1))
	f.Emit(ba, Resolve(isa.R(1), false, corr, 1))
	f.Emit(bp, Halt())
	f.Emit(corr, Halt())

	if s := f.Succs(a); len(s) != 2 || s[0] != corr || s[1] != ba {
		t.Errorf("PREDICT successors = %v, want [%d %d]", s, corr, ba)
	}
	if s := f.Succs(ba); len(s) != 2 || s[0] != corr || s[1] != bp {
		t.Errorf("RESOLVE successors = %v, want [%d %d]", s, corr, bp)
	}
}

func TestReversePostorder(t *testing.T) {
	f := diamond()
	order := f.ReversePostorder()
	if len(order) != 4 || order[0] != 0 {
		t.Fatalf("RPO = %v; must start at entry and cover all blocks", order)
	}
	pos := make([]int, 4)
	for i, b := range order {
		pos[b] = i
	}
	// Join must come after both arms; arms after entry.
	if !(pos[0] < pos[1] && pos[0] < pos[2] && pos[1] < pos[3] && pos[2] < pos[3]) {
		t.Errorf("RPO %v does not topologically order the diamond", order)
	}
}

func TestReversePostorderUnreachable(t *testing.T) {
	f := &Func{Name: "u"}
	a := f.AddBlock("A")
	f.AddBlock("dead")
	end := f.AddBlock("end")
	f.Emit(a, Jmp(end))
	f.Emit(1, Halt())
	f.Emit(end, Halt())
	order := f.ReversePostorder()
	if len(order) != 3 {
		t.Fatalf("RPO must include unreachable blocks: %v", order)
	}
}

func TestVerifyCatchesBadPrograms(t *testing.T) {
	mk := func(mut func(*Func)) *Program {
		f := diamond()
		mut(f)
		return &Program{Funcs: []*Func{f}}
	}
	cases := []struct {
		name string
		p    *Program
		want string
	}{
		{"empty program", &Program{}, "no functions"},
		{"empty func", &Program{Funcs: []*Func{{Name: "e"}}}, "no blocks"},
		{"mid-block terminator", mk(func(f *Func) {
			f.Blocks[1].Instrs = []isa.Instr{Jmp(3), Nop()}
		}), "not at block end"},
		{"branch target out of range", mk(func(f *Func) {
			f.Blocks[0].Instrs[2].Target = 99
		}), "out of range"},
		{"fall off end", mk(func(f *Func) {
			f.Blocks[3].Instrs = []isa.Instr{Nop()}
		}), "falls off the end"},
		{"call target out of range", mk(func(f *Func) {
			f.Blocks[1].Instrs = []isa.Instr{Call(7), Jmp(3)}
		}), "call target"},
	}
	for _, c := range cases {
		err := c.p.Verify()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Verify() = %v, want error containing %q", c.name, err, c.want)
		}
	}
	good := &Program{Funcs: []*Func{diamond()}}
	if err := good.Verify(); err != nil {
		t.Errorf("good program failed verification: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Program{Funcs: []*Func{diamond()}}
	c := p.Clone()
	c.Funcs[0].Blocks[0].Instrs[0].Imm = 999
	c.Funcs[0].Blocks[0].Label = "mutated"
	if p.Funcs[0].Blocks[0].Instrs[0].Imm == 999 || p.Funcs[0].Blocks[0].Label == "mutated" {
		t.Error("Clone aliases the original")
	}
	if p.NumInstrs() != c.NumInstrs() {
		t.Error("clone lost instructions")
	}
}

func TestLivenessDiamond(t *testing.T) {
	// A: r2 = cmp(r1, r0); br r2 -> C
	// B: r5 = r3 + 1
	// C: r5 = r4 + 1
	// D: st [r6] = r5; halt
	f := &Func{Name: "live"}
	a := f.AddBlock("A")
	b := f.AddBlock("B")
	c := f.AddBlock("C")
	d := f.AddBlock("D")
	f.Emit(a, Cmp(isa.CMPLT, isa.R(2), isa.R(1), isa.R(0)), Br(isa.R(2), c))
	f.Emit(b, Addi(isa.R(5), isa.R(3), 1), Jmp(d))
	f.Emit(c, Addi(isa.R(5), isa.R(4), 1))
	f.Emit(d, St(isa.R(6), 0, isa.R(5)), Halt())

	lv := ComputeLiveness(f)
	for _, r := range []isa.Reg{isa.R(0), isa.R(1), isa.R(3), isa.R(4), isa.R(6)} {
		if !lv.In[a].Has(r) {
			t.Errorf("%v must be live-in at A; got %v", r, lv.In[a])
		}
	}
	if lv.In[a].Has(isa.R(5)) {
		t.Errorf("r5 is defined on all paths before use; must not be live-in at A: %v", lv.In[a])
	}
	if !lv.In[b].Has(isa.R(3)) || lv.In[b].Has(isa.R(4)) {
		t.Errorf("B live-in wrong: %v", lv.In[b])
	}
	if !lv.In[c].Has(isa.R(4)) || lv.In[c].Has(isa.R(3)) {
		t.Errorf("C live-in wrong: %v", lv.In[c])
	}
	if !lv.Out[b].Has(isa.R(5)) || !lv.Out[c].Has(isa.R(5)) {
		t.Error("r5 must be live-out of both arms")
	}
	if !lv.In[d].Has(isa.R(5)) || !lv.In[d].Has(isa.R(6)) {
		t.Errorf("D live-in wrong: %v", lv.In[d])
	}
}

func TestLivenessLoop(t *testing.T) {
	// L: r1 = r1 + 1; r2 = cmplt(r1, r9); br r2 -> L ; E: halt
	f := &Func{Name: "loop"}
	l := f.AddBlock("L")
	e := f.AddBlock("E")
	f.Emit(l, Addi(isa.R(1), isa.R(1), 1), Cmp(isa.CMPLT, isa.R(2), isa.R(1), isa.R(9)), Br(isa.R(2), l))
	f.Emit(e, Halt())
	lv := ComputeLiveness(f)
	if !lv.In[0].Has(isa.R(1)) || !lv.In[0].Has(isa.R(9)) {
		t.Errorf("loop live-in must include r1 and r9: %v", lv.In[0])
	}
	if !lv.Out[0].Has(isa.R(1)) {
		t.Errorf("r1 must be live around the back edge: %v", lv.Out[0])
	}
}

func TestLiveBefore(t *testing.T) {
	f := &Func{Name: "lb"}
	a := f.AddBlock("A")
	e := f.AddBlock("E")
	f.Emit(a,
		Li(isa.R(1), 1),                    // 0
		Addi(isa.R(2), isa.R(1), 1),        // 1
		Add(isa.R(3), isa.R(2), isa.R(10)), // 2
		St(isa.R(11), 0, isa.R(3)),         // 3
	)
	f.Emit(e, Halt())
	lv := ComputeLiveness(f)
	at1 := lv.LiveBefore(f, a, 1)
	if !at1.Has(isa.R(1)) || at1.Has(isa.R(2)) || at1.Has(isa.R(3)) {
		t.Errorf("LiveBefore(1) = %v", at1)
	}
	at3 := lv.LiveBefore(f, a, 3)
	if !at3.Has(isa.R(3)) || !at3.Has(isa.R(11)) || at3.Has(isa.R(1)) && false {
		t.Errorf("LiveBefore(3) = %v", at3)
	}
}

func TestLinearize(t *testing.T) {
	p := &Program{Funcs: []*Func{diamond()}}
	im, err := Linearize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Instrs) != p.NumInstrs() {
		t.Fatalf("image has %d instrs, program has %d", len(im.Instrs), p.NumInstrs())
	}
	if im.Entry != 0 {
		t.Errorf("entry PC = %d, want 0", im.Entry)
	}
	// The A-block branch must now target block C's start PC.
	br := im.Instrs[2]
	if br.Op != isa.BR || br.Target != im.BlockPCs[0][2] {
		t.Errorf("branch target not resolved: %v (C at %d)", br, im.BlockPCs[0][2])
	}
	if im.CodeBytes() != len(im.Instrs)*isa.InstrBytes {
		t.Error("CodeBytes mismatch")
	}
	if im.PCAddr(1) != CodeBase+uint64(isa.InstrBytes) {
		t.Error("PCAddr wrong")
	}
}

func TestLinearizeCallTargets(t *testing.T) {
	callee := &Func{Name: "callee"}
	cb := callee.AddBlock("entry")
	callee.Emit(cb, Addi(isa.R(1), isa.R(1), 1), Ret())

	caller := &Func{Name: "main"}
	m0 := caller.AddBlock("m0")
	m1 := caller.AddBlock("m1")
	caller.Emit(m0, Call(1))
	caller.Emit(m1, Halt())

	p := &Program{Funcs: []*Func{caller, callee}}
	im := MustLinearize(p)
	if im.Instrs[0].Op != isa.CALL || im.Instrs[0].Target != im.FuncEntries[1] {
		t.Errorf("call not resolved to callee entry: %v, entries %v", im.Instrs[0], im.FuncEntries)
	}
	_ = m1
}

func TestMustLinearizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLinearize should panic on invalid program")
		}
	}()
	MustLinearize(&Program{})
}

func TestFuncString(t *testing.T) {
	s := diamond().String()
	for _, want := range []string{"func diamond", "A (block 0)", "br r2, @2", "halt"} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}
