package ir

import (
	"testing"
	"testing/quick"

	"vanguard/internal/isa"
)

func TestRegSetBasics(t *testing.T) {
	var s RegSet
	if s.Len() != 0 || s.Has(isa.R(0)) {
		t.Fatal("zero RegSet must be empty")
	}
	s.Add(isa.R(3))
	s.Add(isa.F(7)) // register 71, exercises the high word
	s.Add(isa.NoReg)
	if !s.Has(isa.R(3)) || !s.Has(isa.F(7)) || s.Len() != 2 {
		t.Errorf("set contents wrong: %v (len %d)", s, s.Len())
	}
	if s.Has(isa.NoReg) {
		t.Error("NoReg must never be a member")
	}
	s.Remove(isa.R(3))
	if s.Has(isa.R(3)) || s.Len() != 1 {
		t.Errorf("remove failed: %v", s)
	}
	s.Remove(isa.NoReg) // must be a no-op
	if s.Len() != 1 {
		t.Error("Remove(NoReg) changed the set")
	}
}

func TestRegSetUnionString(t *testing.T) {
	var a, b RegSet
	a.Add(isa.R(1))
	b.Add(isa.F(0))
	u := a.Union(b)
	if !u.Has(isa.R(1)) || !u.Has(isa.F(0)) || u.Len() != 2 {
		t.Errorf("union wrong: %v", u)
	}
	if got := u.String(); got != "{r1,f0}" {
		t.Errorf("String() = %q", got)
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("Equal wrong")
	}
}

// Property: Add then Has holds, and membership of other registers is
// unchanged, for every architectural register.
func TestRegSetAddHasProperty(t *testing.T) {
	f := func(rs []uint8, probe uint8) bool {
		var s RegSet
		in := map[isa.Reg]bool{}
		for _, r := range rs {
			reg := isa.Reg(r % isa.NumRegs)
			s.Add(reg)
			in[reg] = true
		}
		p := isa.Reg(probe % isa.NumRegs)
		if s.Has(p) != in[p] {
			return false
		}
		return s.Len() == len(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
