package ir

import (
	"fmt"

	"vanguard/internal/isa"
)

// CodeBase is the byte address where the instruction image is placed; the
// I-cache model fetches from CodeBase + pc*isa.InstrBytes. It is disjoint
// from the data region workloads use.
const CodeBase uint64 = 1 << 30

// Image is the linearized (flat) form of a program: the executable the
// simulators run. Instruction Target fields hold absolute PCs
// (instruction indices, not byte addresses).
type Image struct {
	Instrs      []isa.Instr
	Entry       int     // PC of the first instruction of Funcs[0]
	FuncEntries []int   // PC of each function's entry
	BlockPCs    [][]int // per function, the start PC of each block
}

// CodeBytes returns the static code size in bytes.
func (im *Image) CodeBytes() int { return len(im.Instrs) * isa.InstrBytes }

// PCAddr returns the byte address of the instruction at pc.
func (im *Image) PCAddr(pc int) uint64 { return CodeBase + uint64(pc)*isa.InstrBytes }

// Linearize lays the program out into an Image. The program must Verify.
func Linearize(p *Program) (*Image, error) {
	if err := p.Verify(); err != nil {
		return nil, err
	}
	im := &Image{
		FuncEntries: make([]int, len(p.Funcs)),
		BlockPCs:    make([][]int, len(p.Funcs)),
	}
	// Pass 1: assign PCs.
	pc := 0
	for fi, f := range p.Funcs {
		im.FuncEntries[fi] = pc
		im.BlockPCs[fi] = make([]int, len(f.Blocks))
		for bi, b := range f.Blocks {
			im.BlockPCs[fi][bi] = pc
			pc += len(b.Instrs)
		}
	}
	// Pass 2: emit with resolved targets.
	im.Instrs = make([]isa.Instr, 0, pc)
	for fi, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, ins := range b.Instrs {
				switch ins.Op {
				case isa.BR, isa.JMP, isa.PREDICT, isa.RESOLVE:
					ins.Target = im.BlockPCs[fi][ins.Target]
				case isa.CALL:
					ins.Target = im.FuncEntries[ins.Target]
				default:
					ins.Target = -1
				}
				im.Instrs = append(im.Instrs, ins)
			}
		}
	}
	im.Entry = im.FuncEntries[0]
	return im, nil
}

// MustLinearize linearizes and panics on verification failure; for use by
// tests and generators that construct known-good programs.
func MustLinearize(p *Program) *Image {
	im, err := Linearize(p)
	if err != nil {
		panic(fmt.Sprintf("ir: %v", err))
	}
	return im
}
