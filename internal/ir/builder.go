package ir

import "vanguard/internal/isa"

// Instruction constructors: thin, readable sugar over isa.Instr literals,
// used heavily by the workload generators, examples, and tests.

// Op3 builds a three-operand ALU instruction.
func Op3(op isa.Op, d, s1, s2 isa.Reg) isa.Instr {
	return isa.Instr{Op: op, Dst: d, Src1: s1, Src2: s2, Target: -1}
}

// Add builds d = s1 + s2.
func Add(d, s1, s2 isa.Reg) isa.Instr { return Op3(isa.ADD, d, s1, s2) }

// Sub builds d = s1 - s2.
func Sub(d, s1, s2 isa.Reg) isa.Instr { return Op3(isa.SUB, d, s1, s2) }

// Mul builds d = s1 * s2.
func Mul(d, s1, s2 isa.Reg) isa.Instr { return Op3(isa.MUL, d, s1, s2) }

// Xor builds d = s1 ^ s2.
func Xor(d, s1, s2 isa.Reg) isa.Instr { return Op3(isa.XOR, d, s1, s2) }

// And builds d = s1 & s2.
func And(d, s1, s2 isa.Reg) isa.Instr { return Op3(isa.AND, d, s1, s2) }

// Addi builds d = s1 + imm.
func Addi(d, s1 isa.Reg, imm int64) isa.Instr {
	return isa.Instr{Op: isa.ADDI, Dst: d, Src1: s1, Imm: imm, Target: -1}
}

// Muli builds d = s1 * imm.
func Muli(d, s1 isa.Reg, imm int64) isa.Instr {
	return isa.Instr{Op: isa.MULI, Dst: d, Src1: s1, Imm: imm, Target: -1}
}

// Andi builds d = s1 & imm.
func Andi(d, s1 isa.Reg, imm int64) isa.Instr {
	return isa.Instr{Op: isa.ANDI, Dst: d, Src1: s1, Imm: imm, Target: -1}
}

// Li builds d = imm.
func Li(d isa.Reg, imm int64) isa.Instr {
	return isa.Instr{Op: isa.LI, Dst: d, Imm: imm, Target: -1}
}

// Mov builds d = s.
func Mov(d, s isa.Reg) isa.Instr {
	return isa.Instr{Op: isa.MOV, Dst: d, Src1: s, Target: -1}
}

// Cmp builds d = s1 <op> s2 for a comparison opcode.
func Cmp(op isa.Op, d, s1, s2 isa.Reg) isa.Instr { return Op3(op, d, s1, s2) }

// Fop builds a three-operand FP instruction.
func Fop(op isa.Op, d, s1, s2 isa.Reg) isa.Instr { return Op3(op, d, s1, s2) }

// Ld builds d = mem[base+off].
func Ld(d, base isa.Reg, off int64) isa.Instr {
	return isa.Instr{Op: isa.LD, Dst: d, Src1: base, Imm: off, Target: -1}
}

// LdSpec builds the non-faulting d = mem[base+off].
func LdSpec(d, base isa.Reg, off int64) isa.Instr {
	return isa.Instr{Op: isa.LDS, Dst: d, Src1: base, Imm: off, Target: -1}
}

// St builds mem[base+off] = v.
func St(base isa.Reg, off int64, v isa.Reg) isa.Instr {
	return isa.Instr{Op: isa.ST, Src1: base, Src2: v, Imm: off, Target: -1}
}

// Br builds a conditional branch to block target, taken when cond != 0.
func Br(cond isa.Reg, target int) isa.Instr {
	return isa.Instr{Op: isa.BR, Src1: cond, Target: target}
}

// BrID builds a conditional branch carrying a static branch ID for the
// profiler and transformation.
func BrID(cond isa.Reg, target, id int) isa.Instr {
	return isa.Instr{Op: isa.BR, Src1: cond, Target: target, BranchID: id}
}

// Jmp builds an unconditional jump to block target.
func Jmp(target int) isa.Instr { return isa.Instr{Op: isa.JMP, Target: target} }

// Call builds a call to function index target.
func Call(target int) isa.Instr { return isa.Instr{Op: isa.CALL, Target: target} }

// Ret builds a return through the link register r63.
func Ret() isa.Instr {
	return isa.Instr{Op: isa.RET, Src1: isa.R(isa.NumIntRegs - 1), Target: -1}
}

// Halt stops the machine.
func Halt() isa.Instr { return isa.Instr{Op: isa.HALT, Target: -1} }

// Nop does nothing for a cycle slot.
func Nop() isa.Instr { return isa.Instr{Op: isa.NOP, Target: -1} }

// Predict builds the decomposed-branch prediction instruction.
func Predict(target, id int) isa.Instr {
	return isa.Instr{Op: isa.PREDICT, Target: target, BranchID: id}
}

// Resolve builds the decomposed-branch resolution instruction: control
// transfers to target iff (cond != 0) != expect, i.e. iff the prediction
// this path embodies was wrong.
func Resolve(cond isa.Reg, expect bool, target, id int) isa.Instr {
	return isa.Instr{Op: isa.RESOLVE, Src1: cond, Expect: expect, Target: target, BranchID: id}
}
