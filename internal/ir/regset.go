package ir

import (
	"strings"

	"vanguard/internal/isa"
)

// RegSet is a bitset over the architectural register file, used by the
// liveness analysis and the hoisting legality checks.
type RegSet [2]uint64

// Add inserts r into the set (NoReg is ignored).
func (s *RegSet) Add(r isa.Reg) {
	if r == isa.NoReg {
		return
	}
	s[r>>6] |= 1 << (r & 63)
}

// Remove deletes r from the set.
func (s *RegSet) Remove(r isa.Reg) {
	if r == isa.NoReg {
		return
	}
	s[r>>6] &^= 1 << (r & 63)
}

// Has reports whether r is in the set.
func (s RegSet) Has(r isa.Reg) bool {
	if r == isa.NoReg {
		return false
	}
	return s[r>>6]&(1<<(r&63)) != 0
}

// Union returns s ∪ o.
func (s RegSet) Union(o RegSet) RegSet { return RegSet{s[0] | o[0], s[1] | o[1]} }

// Equal reports set equality.
func (s RegSet) Equal(o RegSet) bool { return s == o }

// Len returns the cardinality.
func (s RegSet) Len() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// String lists members in register order.
func (s RegSet) String() string {
	var parts []string
	for r := 0; r < isa.NumRegs; r++ {
		if s.Has(isa.Reg(r)) {
			parts = append(parts, isa.Reg(r).String())
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}
