package ir

import "vanguard/internal/isa"

// Liveness holds the per-block live-in/live-out register sets of a
// function, computed by the standard backward dataflow iteration.
type Liveness struct {
	In  []RegSet
	Out []RegSet
}

// ComputeLiveness runs the backward may-liveness analysis. Because the IR
// has no explicit function-exit live set, registers read by RET (the return
// address) and anything a caller might consume must be modelled by the
// caller of this analysis; for the hoisting legality checks performed by
// the decomposed branch transformation, block-level precision within the
// function is what matters.
func ComputeLiveness(f *Func) *Liveness {
	n := len(f.Blocks)
	lv := &Liveness{In: make([]RegSet, n), Out: make([]RegSet, n)}
	use := make([]RegSet, n)
	def := make([]RegSet, n)
	for i, b := range f.Blocks {
		for _, ins := range b.Instrs {
			a, bb, cc := ins.Uses()
			for _, u := range [...]isa.Reg{a, bb, cc} {
				if u != isa.NoReg && !def[i].Has(u) {
					use[i].Add(u)
				}
			}
			def[i].Add(ins.Def())
		}
	}
	// Iterate to fixpoint; process in postorder-ish (reverse of RPO) for
	// fast convergence.
	order := f.ReversePostorder()
	changed := true
	for changed {
		changed = false
		for k := len(order) - 1; k >= 0; k-- {
			i := order[k]
			var out RegSet
			for _, s := range f.Succs(i) {
				out = out.Union(lv.In[s])
			}
			in := use[i].Union(RegSet{out[0] &^ def[i][0], out[1] &^ def[i][1]})
			if !out.Equal(lv.Out[i]) || !in.Equal(lv.In[i]) {
				lv.Out[i], lv.In[i] = out, in
				changed = true
			}
		}
	}
	return lv
}

// LiveBefore returns the set of registers live immediately before
// instruction index k of block b, by walking backward from the block's
// live-out. Useful for finding free temporaries at a program point.
func (lv *Liveness) LiveBefore(f *Func, b, k int) RegSet {
	live := lv.Out[b]
	ins := f.Blocks[b].Instrs
	for i := len(ins) - 1; i >= k; i-- {
		live.Remove(ins[i].Def())
		a, bb, cc := ins[i].Uses()
		live.Add(a)
		live.Add(bb)
		live.Add(cc)
	}
	return live
}
