package workload

// Per-benchmark configurations. The knobs are set from Table 2 of the
// paper (SPEC 2006) and the Section 5.1/5.2 descriptions (SPEC 2000):
//
//   - elig:  sites whose predictability exceeds bias by >= 5% — the
//     decomposed-branch candidates (sets PBC together with hard+biased);
//   - hard:  unbiased, unpredictable sites (predication territory; the
//     MPPKI source — never converted);
//   - biased: highly-biased, highly-predictable sites (superblock
//     territory; dilute PBC like real programs);
//   - loads/alu/fp/stores: successor-block shapes (ALPBB, PHI, PDIH);
//   - ws: data working set (L1/L2/L3 behaviour);
//   - filler: non-branch pad in the A blocks (branch density, PDIH);
//   - storeEarly: an early store blocks load hoisting (lowers PHI).

// intSite builds an integer eligible site.
func intSite(loads, alu, stores int, pred float64) Site {
	return Site{
		Taken: 0.60, Pred: pred, Regime: 80,
		LoadsB: loads, LoadsC: maxi(loads-1, 1),
		ALUB: alu, ALUC: alu,
		StoresB: stores, StoresC: stores,
		CondMem: 1,
	}
}

// condMem overrides the condition-slice memory depth of a site group.
func condMem(n int, ss []Site) []Site {
	for i := range ss {
		ss[i].CondMem = n
	}
	return ss
}

// fpSite builds a floating-point eligible site: bigger blocks, higher
// predictability, somewhat more bias — the Section 5.2 FP character.
func fpSite(loads, fp int, pred float64) Site {
	return Site{
		Taken: 0.72, Pred: pred, Regime: 150,
		LoadsB: loads, LoadsC: maxi(loads-1, 1),
		ALUB: 2, ALUC: 2,
		FPB: fp, FPC: maxi(fp-1, 1),
		StoresB: 1, StoresC: 1,
		CondMem: 1,
	}
}

// hardSite is unbiased and unpredictable (i.i.d. coin flips): predication
// territory in Figure 1 and the benchmarks' MPPKI source. Never converted.
func hardSite() Site {
	return Site{Taken: 0.50, Pred: 0.50,
		LoadsB: 1, LoadsC: 1, ALUB: 2, ALUC: 2, StoresB: 1}
}

// mediumSite carries a noisy medium-period pattern: largely beyond the
// gshare-class baseline predictor but within reach of the TAGE ladder —
// the headroom behind the Section 5.3 sensitivity on astar, sjeng, gobmk
// and mcf.
func mediumSite() Site {
	return Site{Taken: 0.52, Pred: 0.78, Period: 36,
		LoadsB: 2, LoadsC: 2, ALUB: 2, ALUC: 2, StoresB: 1}
}

func rep(n int, s Site) []Site {
	out := make([]Site, n)
	for i := range out {
		out[i] = s
	}
	return out
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sites(groups ...[]Site) []Site {
	var out []Site
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

func early(ss []Site) []Site {
	for i := range ss {
		ss[i].StoreEarly = true
	}
	return ss
}

// Int2006 returns the SPEC CPU2006 integer stand-ins, Table 2 order.
func Int2006() []Config {
	return []Config{
		{Name: "h264ref", Suite: "int2006", WSBytes: 16 << 10, FillerALU: 2, BiasedSites: 3,
			Sites: sites(rep(5, intSite(5, 3, 1, 0.93)), rep(2, hardSite()))},
		{Name: "perlbench", Suite: "int2006", WSBytes: 16 << 10, FillerALU: 2, BiasedSites: 4, Replicate: 10,
			Sites: sites(rep(5, intSite(3, 3, 1, 0.96)), rep(2, hardSite()))},
		{Name: "astar", Suite: "int2006", WSBytes: 64 << 10, FillerALU: 2, BiasedSites: 3,
			Sites: sites(rep(4, intSite(4, 3, 1, 0.87)), rep(2, hardSite()), rep(1, mediumSite()))},
		{Name: "omnetpp", Suite: "int2006", WSBytes: 256 << 10, FillerALU: 3, BiasedSites: 4,
			Sites: sites(condMem(2, rep(3, intSite(3, 2, 1, 0.92))), rep(3, hardSite()))},
		{Name: "xalancbmk", Suite: "int2006", WSBytes: 128 << 10, FillerALU: 3, BiasedSites: 4, Replicate: 16,
			Sites: sites(rep(3, intSite(4, 2, 1, 0.93)), rep(3, hardSite()))},
		{Name: "sjeng", Suite: "int2006", WSBytes: 16 << 10, FillerALU: 3, BiasedSites: 4,
			Sites: sites(rep(3, intSite(4, 3, 1, 0.90)), rep(3, hardSite()), rep(1, mediumSite()))},
		{Name: "gobmk", Suite: "int2006", WSBytes: 32 << 10, FillerALU: 2, BiasedSites: 6, Replicate: 8,
			Sites: sites(condMem(2, rep(2, intSite(5, 3, 1, 0.91))), rep(4, hardSite()), rep(1, mediumSite()))},
		{Name: "gcc", Suite: "int2006", WSBytes: 64 << 10, FillerALU: 3, BiasedSites: 4, Replicate: 20,
			Sites: sites(condMem(2, rep(3, intSite(3, 3, 2, 0.93))), rep(3, hardSite()))},
		{Name: "mcf", Suite: "int2006", WSBytes: 8 << 20, FillerALU: 2, BiasedSites: 2,
			Sites: sites(condMem(2, rep(3, intSite(3, 2, 1, 0.85))), rep(3, hardSite()), rep(1, mediumSite()))},
		{Name: "bzip2", Suite: "int2006", WSBytes: 64 << 10, FillerALU: 4, BiasedSites: 6,
			Sites: sites(rep(2, intSite(4, 3, 1, 0.91)), rep(3, hardSite()))},
		{Name: "hmmer", Suite: "int2006", WSBytes: 16 << 10, FillerALU: 6, BiasedSites: 7,
			Sites: sites(rep(1, intSite(8, 5, 1, 0.97)), rep(1, hardSite()))},
		{Name: "libquantum", Suite: "int2006", WSBytes: 128 << 10, FillerALU: 8, BiasedSites: 8,
			Sites: sites(rep(1, intSite(1, 2, 1, 0.97)))},
	}
}

// FP2006 returns the SPEC CPU2006 floating-point stand-ins.
func FP2006() []Config {
	return []Config{
		{Name: "wrf", Suite: "fp2006", WSBytes: 16 << 10, FillerALU: 3, BiasedSites: 5,
			Sites: sites(rep(3, fpSite(4, 4, 0.985)), rep(1, hardSite()))},
		{Name: "povray", Suite: "fp2006", WSBytes: 16 << 10, FillerALU: 3, BiasedSites: 5,
			Sites: sites(rep(3, fpSite(3, 4, 0.97)), rep(1, hardSite()))},
		{Name: "tonto", Suite: "fp2006", WSBytes: 16 << 10, FillerALU: 4, BiasedSites: 5,
			Sites: sites(rep(2, fpSite(3, 4, 0.97)), rep(1, hardSite()))},
		{Name: "gamess", Suite: "fp2006", WSBytes: 16 << 10, FillerALU: 4, BiasedSites: 3,
			Sites: sites(rep(3, fpSite(2, 3, 0.96)), rep(1, hardSite()))},
		{Name: "calculix", Suite: "fp2006", WSBytes: 32 << 10, FillerALU: 5, BiasedSites: 5,
			Sites: sites(rep(2, fpSite(3, 3, 0.96)), rep(1, hardSite()))},
		{Name: "milc", Suite: "fp2006", WSBytes: 256 << 10, FillerALU: 5, BiasedSites: 4,
			Sites: sites(rep(2, fpSite(4, 4, 0.98)))},
		{Name: "soplex", Suite: "fp2006", WSBytes: 128 << 10, FillerALU: 5, BiasedSites: 6,
			Sites: sites(rep(1, fpSite(4, 3, 0.95)), rep(1, hardSite()))},
		{Name: "namd", Suite: "fp2006", WSBytes: 32 << 10, FillerALU: 6, BiasedSites: 5,
			Sites: sites(rep(2, fpSite(3, 5, 0.97)))},
		{Name: "lbm", Suite: "fp2006", WSBytes: 2 << 20, FillerALU: 6, BiasedSites: 4,
			Sites: sites(rep(2, fpSite(5, 5, 0.98)))},
		{Name: "gromacs", Suite: "fp2006", WSBytes: 32 << 10, FillerALU: 7, BiasedSites: 5,
			Sites: sites(rep(1, fpSite(4, 5, 0.97)), rep(1, hardSite()))},
		{Name: "sphinx3", Suite: "fp2006", WSBytes: 128 << 10, FillerALU: 8, BiasedSites: 6,
			Sites: sites(rep(1, fpSite(3, 4, 0.97)), rep(1, hardSite()))},
		{Name: "bwaves", Suite: "fp2006", WSBytes: 2 << 20, FillerALU: 8, BiasedSites: 4,
			Sites: sites(condMem(0, early(rep(1, fpSite(6, 5, 0.99)))))},
		{Name: "GemsFDTD", Suite: "fp2006", WSBytes: 2 << 20, FillerALU: 10, BiasedSites: 8,
			Sites: sites(rep(1, fpSite(3, 4, 0.97)))},
		{Name: "zeusmp", Suite: "fp2006", WSBytes: 1 << 20, FillerALU: 12, BiasedSites: 5,
			Sites: sites(rep(1, fpSite(4, 5, 0.98)))},
		{Name: "dealII", Suite: "fp2006", WSBytes: 512 << 10, FillerALU: 12, BiasedSites: 7,
			Sites: sites(condMem(0, early(rep(1, fpSite(4, 3, 0.99)))))},
		{Name: "cactusADM", Suite: "fp2006", WSBytes: 1 << 20, FillerALU: 16, BiasedSites: 8,
			Sites: sites(rep(1, fpSite(2, 5, 0.985)))},
		{Name: "leslie3d", Suite: "fp2006", WSBytes: 2 << 20, FillerALU: 16, BiasedSites: 9,
			Sites: sites(rep(1, fpSite(2, 4, 0.985)))},
	}
}

// Int2000 returns the SPEC CPU2000 integer stand-ins. The suite is more
// predictable and better behaved in the caches than 2006 (Section 5.1).
func Int2000() []Config {
	return []Config{
		{Name: "vortex", Suite: "int2000", WSBytes: 16 << 10, FillerALU: 2, BiasedSites: 3,
			Sites: sites(rep(5, intSite(5, 3, 1, 0.97)), rep(1, hardSite()))},
		{Name: "crafty", Suite: "int2000", WSBytes: 16 << 10, FillerALU: 2, BiasedSites: 3,
			Sites: sites(rep(4, intSite(4, 3, 1, 0.95)), rep(2, hardSite()))},
		{Name: "eon", Suite: "int2000", WSBytes: 16 << 10, FillerALU: 2, BiasedSites: 3,
			Sites: sites(rep(4, intSite(4, 3, 1, 0.96)), rep(1, hardSite()))},
		{Name: "gap", Suite: "int2000", WSBytes: 16 << 10, FillerALU: 2, BiasedSites: 3,
			Sites: sites(rep(4, intSite(4, 2, 1, 0.95)), rep(2, hardSite()))},
		{Name: "parser", Suite: "int2000", WSBytes: 32 << 10, FillerALU: 3, BiasedSites: 4,
			Sites: sites(rep(4, intSite(3, 3, 1, 0.94)), rep(2, hardSite()))},
		{Name: "perlbmk", Suite: "int2000", WSBytes: 16 << 10, FillerALU: 3, BiasedSites: 4,
			Sites: sites(rep(3, intSite(3, 3, 1, 0.96)), rep(2, hardSite()))},
		{Name: "gcc", Suite: "int2000", WSBytes: 32 << 10, FillerALU: 3, BiasedSites: 4,
			Sites: sites(rep(3, intSite(3, 3, 1, 0.95)), rep(2, hardSite()))},
		{Name: "mcf", Suite: "int2000", WSBytes: 1 << 20, FillerALU: 2, BiasedSites: 2,
			Sites: sites(rep(3, intSite(3, 2, 1, 0.93)), rep(3, hardSite()))},
		{Name: "bzip2", Suite: "int2000", WSBytes: 64 << 10, FillerALU: 4, BiasedSites: 6,
			Sites: sites(rep(2, intSite(3, 3, 1, 0.93)), rep(2, hardSite()))},
		{Name: "gzip", Suite: "int2000", WSBytes: 256 << 10, FillerALU: 4, BiasedSites: 4,
			Sites: sites(rep(3, intSite(3, 3, 1, 0.93)), rep(2, hardSite()))},
		{Name: "twolf", Suite: "int2000", WSBytes: 128 << 10, FillerALU: 5, BiasedSites: 6,
			Sites: sites(rep(1, intSite(3, 3, 1, 0.90)), rep(3, hardSite()))},
		{Name: "vpr", Suite: "int2000", WSBytes: 128 << 10, FillerALU: 5, BiasedSites: 6,
			Sites: sites(rep(1, intSite(3, 3, 1, 0.90)), rep(3, hardSite()))},
	}
}

// FP2000 returns the SPEC CPU2000 floating-point stand-ins; fewer eligible
// forward branches than 2006 (Section 5.2).
func FP2000() []Config {
	return []Config{
		{Name: "art", Suite: "fp2000", WSBytes: 32 << 10, FillerALU: 4, BiasedSites: 6,
			Sites: sites(rep(2, fpSite(4, 4, 0.985)))},
		{Name: "ammp", Suite: "fp2000", WSBytes: 32 << 10, FillerALU: 4, BiasedSites: 6,
			Sites: sites(rep(2, fpSite(3, 4, 0.98)))},
		{Name: "mesa", Suite: "fp2000", WSBytes: 16 << 10, FillerALU: 4, BiasedSites: 6,
			Sites: sites(rep(2, fpSite(3, 3, 0.975)))},
		{Name: "wupwise", Suite: "fp2000", WSBytes: 32 << 10, FillerALU: 6, BiasedSites: 6,
			Sites: sites(rep(1, fpSite(3, 4, 0.98)))},
		{Name: "facerec", Suite: "fp2000", WSBytes: 64 << 10, FillerALU: 6, BiasedSites: 6,
			Sites: sites(rep(1, fpSite(3, 4, 0.975)))},
		{Name: "galgel", Suite: "fp2000", WSBytes: 64 << 10, FillerALU: 8, BiasedSites: 8,
			Sites: sites(rep(1, fpSite(2, 4, 0.975)))},
		{Name: "equake", Suite: "fp2000", WSBytes: 256 << 10, FillerALU: 8, BiasedSites: 8,
			Sites: sites(rep(1, fpSite(2, 3, 0.97)))},
		{Name: "apsi", Suite: "fp2000", WSBytes: 128 << 10, FillerALU: 10, BiasedSites: 8,
			Sites: sites(early(rep(1, fpSite(2, 4, 0.975))))},
		{Name: "mgrid", Suite: "fp2000", WSBytes: 1 << 20, FillerALU: 12, BiasedSites: 8,
			Sites: sites(early(rep(1, fpSite(2, 4, 0.98))))},
		{Name: "applu", Suite: "fp2000", WSBytes: 1 << 20, FillerALU: 12, BiasedSites: 8,
			Sites: sites(early(rep(1, fpSite(2, 4, 0.98))))},
		{Name: "swim", Suite: "fp2000", WSBytes: 2 << 20, FillerALU: 14, BiasedSites: 8,
			Sites: sites(early(rep(1, fpSite(2, 3, 0.985))))},
		{Name: "lucas", Suite: "fp2000", WSBytes: 1 << 20, FillerALU: 14, BiasedSites: 8,
			Sites: sites(early(rep(1, fpSite(2, 3, 0.98))))},
		{Name: "fma3d", Suite: "fp2000", WSBytes: 512 << 10, FillerALU: 14, BiasedSites: 9,
			Sites: sites(early(rep(1, fpSite(2, 3, 0.975))))},
		{Name: "sixtrack", Suite: "fp2000", WSBytes: 512 << 10, FillerALU: 16, BiasedSites: 9,
			Sites: sites(early(rep(1, fpSite(1, 3, 0.975))))},
	}
}

// Suite returns the configs of a named suite.
func Suite(name string) []Config {
	switch name {
	case "int2006":
		return Int2006()
	case "fp2006":
		return FP2006()
	case "int2000":
		return Int2000()
	case "fp2000":
		return FP2000()
	}
	return nil
}

// AllSuites lists the suite names in evaluation order.
func AllSuites() []string { return []string{"int2006", "fp2006", "int2000", "fp2000"} }

// ByName finds a config across all suites.
func ByName(name string) (Config, bool) {
	for _, s := range AllSuites() {
		for _, c := range Suite(s) {
			if c.Name == name {
				return c, true
			}
		}
	}
	return Config{}, false
}
