// Package workload generates the synthetic SPEC-stand-in benchmarks the
// evaluation runs on. Each benchmark configuration controls exactly the
// properties Section 5.1 of the paper identifies as the speedup drivers:
//
//   - the number of forward branches whose predictability exceeds their
//     bias (PBC), via per-site (taken-rate, predictability) targets
//     realized as scripted outcome streams: a fixed periodic pattern
//     (learnable by history predictors) XOR-ed with seed-stable noise at
//     rate 1-predictability;
//   - the independent work, especially loads, in the successor blocks
//     (ALPBB, PHI, PDIH), via per-site block shapes;
//   - the tendency to stall at branch resolution (ASPCB), via dependent
//     condition slices (the condition itself comes from a load);
//   - the D-cache behaviour, via a power-of-two working-set size the
//     strided block loads wrap around in.
//
// TRAIN and REF inputs are different seeds and iteration counts over the
// same static program, like SPEC's input sets.
package workload

import (
	"fmt"
	"math/rand"

	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
)

// Memory layout.
const (
	ScriptBase uint64 = 1 << 21
	DataBase   uint64 = 1 << 23
	OutBase    uint64 = 1 << 27

	// ScriptLen is the per-site outcome stream length (power of two). It
	// exceeds any run's iteration count so outcome streams never repeat —
	// a repeating stream would let table predictors memorize even pure
	// noise through recurring history contexts.
	ScriptLen = 8192
)

// Site describes one hot forward-branch site inside the main loop.
type Site struct {
	Taken  float64 // target taken rate (bias direction/strength)
	Pred   float64 // target predictability
	Period int     // pattern period, for pattern-mode sites
	// Regime, when positive, selects regime-switching outcome streams
	// (how real unbiased-but-predictable branches behave): the branch
	// stays in a mostly-taken or mostly-not-taken phase for ~Regime
	// executions, with 1-Pred in-regime noise. Counter predictors track
	// regimes with only a couple of mispredicts per switch, so measured
	// predictability approaches Pred while bias stays at Taken.
	Regime int

	LoadsB, LoadsC   int  // data loads in each successor block
	ALUB, ALUC       int  // integer ops in each successor block
	FPB, FPC         int  // floating-point ops in each successor block
	StoresB, StoresC int  // stores in each successor block
	StoreEarly       bool // store first: blocks load hoisting (low PHI)
	CondALU          int  // extra ALU ops lengthening the condition slice
	// CondMem folds this many data-region loads into the condition's
	// dependence slice (value-neutral, latency-real): the omnetpp pattern
	// where the branch tests a pointer-chased field. It raises the
	// resolution stall (ASPCB) the decomposition then overlaps.
	CondMem int
}

// Config is one synthetic benchmark.
type Config struct {
	Name  string
	Suite string // "int2006", "fp2006", "int2000", "fp2000"
	Sites []Site
	// BiasedSites adds highly-biased, highly-predictable forward branches
	// (superblock fodder; they dilute PBC like real programs do).
	BiasedSites int
	// WSBytes is the data working set (power of two).
	WSBytes int64
	// FillerALU pads the A blocks ahead of each site's condition.
	FillerALU int
	// ColdInstrs adds rarely-executed static code (reached through a
	// never-taken guard), which sets the PISCS denominator the way real
	// programs' cold paths do. 0 selects the default of 600.
	ColdInstrs int
	// Replicate unrolls the site group this many times inside the main
	// loop (default 1), growing the HOT instruction footprint the way
	// big-code benchmarks (gcc, xalancbmk, perlbench) behave — which is
	// what makes the Section 6.1 I-cache experiment meaningful. Dynamic
	// length is held constant by dividing the iteration count.
	Replicate int
}

func (c Config) replicate() int {
	if c.Replicate <= 0 {
		return 1
	}
	return c.Replicate
}

// iterDivisor trades dynamic length against per-branch training samples
// for replicated configs: the iteration count shrinks with (a quarter of)
// the replication factor, so each static branch still sees enough
// executions to train the predictor while total simulated instructions
// stay bounded.
func (c Config) iterDivisor() int64 {
	d := int64(c.replicate() / 4)
	if d < 1 {
		d = 1
	}
	return d
}

// Input selects a dynamic run of a benchmark.
type Input struct {
	Seed  int64
	Iters int64
}

// TrainInput mirrors SPEC TRAIN; RefInputs mirror the (often multiple)
// REF data sets.
func TrainInput() Input { return Input{Seed: 101, Iters: 3000} }

// RefInputs returns the REF runs: different seeds shift per-site noise and
// phase, which is what makes per-input bias vary like the paper observes.
func RefInputs() []Input {
	return []Input{{Seed: 202, Iters: 4000}, {Seed: 303, Iters: 4000}}
}

// Register roles (fixed by the generator; high registers stay free for the
// transformation's shadow temporaries).
var (
	rCondT = isa.R(24) // condition-slice memory-dependence temporary
	rZero  = isa.R(0)
	rIdx   = isa.R(1)
	rLim   = isa.R(2)
	rScr   = isa.R(3)
	rData  = isa.R(4)
	rOut   = isa.R(5)
	rAddr  = isa.R(6)
	rCondV = isa.R(7)
	rCondB = isa.R(8)
	rBlk   = isa.R(9)
)

func rAcc(i int) isa.Reg     { return isa.R(10 + i%6) } // r10..r15
func rScratch(i int) isa.Reg { return isa.R(16 + i%8) } // r16..r23
func fAcc(i int) isa.Reg     { return isa.F(0 + i%4) }  // f0..f3
func fScratch(i int) isa.Reg { return isa.F(4 + i%6) }  // f4..f9

// Generate builds the program and its initialized memory for one input.
func (c Config) Generate(in Input) (*ir.Program, *mem.Memory) {
	f := &ir.Func{Name: c.Name}
	m := mem.New()
	wsMask := (c.WSBytes - 1) &^ 7

	iters := in.Iters / c.iterDivisor()
	if iters < 100 {
		iters = 100
	}
	init := f.AddBlock("init")
	f.Emit(init,
		ir.Li(rZero, 0),
		ir.Li(rIdx, 0),
		ir.Li(rLim, iters),
		ir.Li(rScr, int64(ScriptBase)),
		ir.Li(rData, int64(DataBase)),
		ir.Li(rOut, int64(OutBase)),
	)
	for i := 0; i < 6; i++ {
		f.Emit(init, ir.Li(rAcc(i), int64(i+1)))
	}
	for i := 0; i < 4; i++ {
		f.Emit(init, ir.Li(rScratch(i), int64(3*i+1)))
	}

	// Cold region: guarded by a never-taken branch out of the entry. It
	// scales with replication the way real programs' cold paths scale
	// with their hot code.
	cold := c.ColdInstrs
	if cold == 0 {
		cold = 600
	}
	cold *= c.replicate()
	init2 := -1 // patched below once known
	coldGuardPC := len(f.Blocks[init].Instrs)
	f.Emit(init,
		ir.Cmp(isa.CMPNE, rCondB, rZero, rZero),
		ir.Br(rCondB, 0), // target patched to the cold block at the end
	)
	_ = coldGuardPC

	loopHead := -1
	nextID := 100
	rng := rand.New(rand.NewSource(in.Seed * 7919))

	allSites := append([]Site{}, c.Sites...)
	for i := 0; i < c.BiasedSites; i++ {
		// Alternate strongly not-taken / strongly taken biased sites.
		taken := 0.03
		if i%2 == 1 {
			taken = 0.97
		}
		allSites = append(allSites, Site{
			Taken: taken, Pred: 0.995,
			LoadsB: 2, LoadsC: 1, ALUB: 2, ALUC: 2, StoresB: 1,
		})
	}

	if len(allSites) > 63 {
		panic("workload: too many sites for the packed script stream")
	}
	// Pack every site's outcome stream into one shared script word/iter.
	streams := make([][]bool, len(allSites))
	for si, s := range allSites {
		streams[si] = makeStream(s, rng)
	}
	for i := 0; i < ScriptLen; i++ {
		var w int64
		for si := range streams {
			if streams[si][i] {
				w |= 1 << uint(si)
			}
		}
		m.MustStore(ScriptBase+uint64(i)*8, w)
	}

	for rep := 0; rep < c.replicate(); rep++ {
		for si, s := range allSites {
			head := f.AddBlock(fmt.Sprintf("r%d.s%d.head", rep, si))
			if rep == 0 && si == 0 {
				loopHead = head
			}
			b := f.AddBlock(fmt.Sprintf("r%d.s%d.B", rep, si))
			cBlk := f.AddBlock(fmt.Sprintf("r%d.s%d.C", rep, si))
			merge := f.AddBlock(fmt.Sprintf("r%d.s%d.M", rep, si))

			// Head: filler, then the condition slice. All sites share one
			// packed script stream (site si's outcome is bit si of word i),
			// so the script adds realistic but modest cache pressure.
			for k := 0; k < c.FillerALU; k++ {
				f.Emit(head, ir.Addi(rScratch(k), rScratch(k), int64(k+1)))
			}
			// Each replica reads a phase-shifted script position so
			// replicated sites stay statistically independent.
			f.Emit(head,
				ir.Addi(rAddr, rIdx, int64(rep)*1357),
				ir.Andi(rAddr, rAddr, ScriptLen-1),
				ir.Muli(rAddr, rAddr, 8),
				ir.Add(rAddr, rAddr, rScr),
				ir.Ld(rCondV, rAddr, 0),
				ir.Andi(rCondV, rCondV, 1<<uint(si)),
			)
			for k := 0; k < s.CondALU; k++ {
				f.Emit(head, ir.Addi(rCondV, rCondV, 0))
			}
			for k := 0; k < s.CondMem; k++ {
				// Chain a data load into the condition without changing its
				// value: cond |= (x ^ x).
				condStride := int64(64 * (7*si + 3*k + 5))
				f.Emit(head,
					ir.Muli(rCondT, rIdx, condStride),
					ir.Andi(rCondT, rCondT, wsMask),
					ir.Add(rCondT, rCondT, rData),
					ir.Ld(rCondT, rCondT, 0),
					ir.Xor(rCondT, rCondT, rCondT),
					ir.Op3(isa.OR, rCondV, rCondV, rCondT),
				)
			}
			f.Emit(head,
				ir.Cmp(isa.CMPNE, rCondB, rCondV, rZero),
				ir.BrID(rCondB, cBlk, nextID),
			)

			emitBlock(f, b, si, 0, s.LoadsB, s.ALUB, s.FPB, s.StoresB, s.StoreEarly, wsMask)
			f.Emit(b, ir.Jmp(merge))
			emitBlock(f, cBlk, si, 1, s.LoadsC, s.ALUC, s.FPC, s.StoresC, s.StoreEarly, wsMask)
			// cBlk falls through to merge; merge falls through to next site.
			_ = merge
			nextID++
		}
	}

	latch := f.AddBlock("latch")
	f.Emit(latch,
		ir.Addi(rIdx, rIdx, 1),
		ir.Cmp(isa.CMPLT, rCondB, rIdx, rLim),
		ir.BrID(rCondB, loopHead, 1), // backward loop branch
	)
	done := f.AddBlock("done")
	for i := 0; i < 6; i++ {
		f.Emit(done, ir.St(rOut, int64(512+8*i), rAcc(i)))
	}
	for i := 0; i < 4; i++ {
		f.Emit(done, ir.St(rOut, int64(640+8*i), fAcc(i)))
	}
	f.Emit(done, ir.Halt())

	coldBlk := f.AddBlock("cold")
	for i := 0; i < cold; i++ {
		f.Emit(coldBlk, ir.Addi(rScratch(i), rScratch(i), int64(i)))
	}
	f.Emit(coldBlk, ir.Jmp(done))
	// Patch the guard to target the cold block. The guard falls through
	// to the rest of init (init2 concept folded away: init is one block).
	f.Blocks[init].Instrs[len(f.Blocks[init].Instrs)-1].Target = coldBlk
	_ = init2

	p := &ir.Program{Funcs: []*ir.Func{f}}
	if err := p.Verify(); err != nil {
		panic(fmt.Sprintf("workload %s: %v", c.Name, err))
	}

	// Data region: deterministic contents; floats for FP suites too (any
	// int64 reinterpreted is fine for integer work, so share the region).
	drng := rand.New(rand.NewSource(in.Seed*31 + 17))
	for off := int64(0); off < c.WSBytes; off += 64 {
		m.MustStore(DataBase+uint64(off), int64(drng.Intn(1<<16)+1))
	}
	return p, m
}

// emitBlock fills one successor block with its addressed loads, ALU, FP
// work, and stores. side 0 = fall-through (B), 1 = taken (C).
func emitBlock(f *ir.Func, blk, si, side, loads, alu, fp, stores int, storeEarly bool, wsMask int64) {
	stride := int64(64 * (2*si + side + 1))
	f.Emit(blk,
		ir.Muli(rBlk, rIdx, stride),
		ir.Andi(rBlk, rBlk, wsMask),
		ir.Add(rBlk, rBlk, rData),
	)
	outOff := int64(si*16 + side*8)

	emitStore := func(k int) {
		f.Emit(blk, ir.St(rOut, outOff+int64(k)*128, rAcc(si+k)))
	}
	start := 0
	if storeEarly && stores > 0 {
		// An early store caps the hoistable prefix at the address chain
		// plus one load (low PHI, like the paper's bwaves/dealII), while
		// the bulk of the block stays below it.
		if loads > 0 {
			f.Emit(blk, ir.Ld(rScratch(si), rBlk, 0))
			start = 1
		}
		emitStore(0)
	}
	for k := start; k < loads; k++ {
		f.Emit(blk, ir.Ld(rScratch(si+k), rBlk, int64(k)*8))
	}
	// Scratch ALU first, accumulator folds (live on both paths) last, so
	// the hoistable upper portion is load/ALU-rich and consumers of the
	// loads sit close to the resolution point.
	accs := 0
	for k := 0; k < alu; k++ {
		switch k % 3 {
		case 1:
			f.Emit(blk, ir.Xor(rScratch(si+k), rScratch(si+k), rScratch(si+k+1)))
		case 2:
			f.Emit(blk, ir.Addi(rScratch(si+k), rScratch(si+k), int64(k+3)))
		default:
			accs++
		}
	}
	for k := 0; k < accs; k++ {
		f.Emit(blk, ir.Add(rAcc(si+k), rAcc(si+k), rScratch(si+3*k%max(loads, 1))))
	}
	for k := 0; k < fp; k++ {
		switch k % 3 {
		case 0:
			f.Emit(blk, ir.Fop(isa.CVTIF, fScratch(si+k), rScratch(si+k%max(loads+alu, 1)), isa.NoReg))
		case 1:
			f.Emit(blk, ir.Fop(isa.FADD, fAcc(si+k), fAcc(si+k), fScratch(si+k)))
		default:
			f.Emit(blk, ir.Fop(isa.FMUL, fScratch(si+k), fScratch(si+k), fScratch(si+k+1)))
		}
	}
	sk := 0
	if storeEarly && stores > 0 {
		sk = 1
	}
	for k := sk; k < stores; k++ {
		emitStore(k)
	}
}

// makeStream realizes a site's (taken-rate, predictability) target.
//
// Three stream shapes cover the Figure 1 quadrants:
//   - Regime > 0: regime switching — predictable by any counter
//     predictor, bias set by the regime mix (the paper's target branches);
//   - Regime == 0, Period >= 32: a long noisy pattern — beyond a
//     gshare-class history but learnable by TAGE-class predictors (these
//     drive the Section 5.3 sensitivity);
//   - otherwise: i.i.d. coin flips at the taken rate (biased branches are
//     trivially predictable; 50/50 ones are predication territory).
func makeStream(s Site, rng *rand.Rand) []bool {
	outcomes := make([]bool, ScriptLen)
	switch {
	case s.Regime > 0:
		eps := 1 - s.Pred
		if eps < 0 {
			eps = 0
		}
		// Taken-regime fraction so the stream's taken rate hits target:
		// taken = frac*(1-eps) + (1-frac)*eps.
		frac := s.Taken
		if 1-2*eps > 1e-9 {
			frac = (s.Taken - eps) / (1 - 2*eps)
		}
		frac = clamp01(frac)
		// Strictly alternating regimes whose mean durations realize the
		// mix keep the stream's taken rate close to target even over a
		// modest script length.
		inTaken := rng.Intn(2) == 0
		next := func() int {
			d := 2 * float64(s.Regime)
			if inTaken {
				d *= frac
			} else {
				d *= 1 - frac
			}
			if d < 8 {
				d = 8
			}
			return regimeLen(rng, int(d))
		}
		left := next()
		for i := range outcomes {
			if left == 0 {
				inTaken = !inTaken
				left = next()
			}
			v := inTaken
			if rng.Float64() < eps {
				v = !v
			}
			outcomes[i] = v
			left--
		}
	case s.Period >= 32:
		eps := 1 - s.Pred
		pattern := randomPattern(rng, s.Period, s.Taken)
		for i := range outcomes {
			v := pattern[i%s.Period]
			if rng.Float64() < eps {
				v = !v
			}
			outcomes[i] = v
		}
	default:
		for i := range outcomes {
			outcomes[i] = rng.Float64() < s.Taken
		}
	}
	return outcomes
}

// regimeLen draws a regime length around the mean (±50%).
func regimeLen(rng *rand.Rand, mean int) int {
	lo := mean / 2
	return lo + rng.Intn(mean) + 1
}

// randomPattern builds a fixed pattern of the given period and taken rate.
func randomPattern(rng *rand.Rand, period int, taken float64) []bool {
	pattern := make([]bool, period)
	perm := rng.Perm(period)
	for i := 0; i < int(taken*float64(period)+0.5); i++ {
		pattern[perm[i]] = true
	}
	return pattern
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PatchIters returns a copy of a linearized image of a generated program
// with the loop iteration limit rewritten, so binaries built (profiled,
// transformed, scheduled) from the TRAIN program can run REF inputs — the
// TRAIN and REF programs differ only in this immediate. The method applies
// the same Replicate scaling Generate does.
func (c Config) PatchIters(im *ir.Image, iters int64) *ir.Image {
	scaled := iters / c.iterDivisor()
	if scaled < 100 {
		scaled = 100
	}
	out := *im
	out.Instrs = append([]isa.Instr{}, im.Instrs...)
	for i := range out.Instrs {
		if out.Instrs[i].Op == isa.LI && out.Instrs[i].Dst == rLim {
			out.Instrs[i].Imm = scaled
			return &out
		}
	}
	panic("workload: iteration-limit instruction not found in image")
}
