package workload

import (
	"testing"

	"vanguard/internal/core"
	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/profile"
)

func TestAllConfigsGenerateAndRun(t *testing.T) {
	for _, suite := range AllSuites() {
		for _, c := range Suite(suite) {
			p, m := c.Generate(Input{Seed: 1, Iters: 50})
			im := ir.MustLinearize(p)
			st, stats, err := interp.Run(im, m, interp.Options{MaxInstrs: 5_000_000})
			if err != nil {
				t.Fatalf("%s/%s: %v", suite, c.Name, err)
			}
			if !st.Halted {
				t.Errorf("%s/%s did not halt", suite, c.Name)
			}
			if stats.Branches == 0 || stats.Stores == 0 {
				t.Errorf("%s/%s: degenerate program (%d branches, %d stores)",
					suite, c.Name, stats.Branches, stats.Stores)
			}
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	c := Int2006()[0]
	p1, m1 := c.Generate(Input{Seed: 5, Iters: 100})
	p2, m2 := c.Generate(Input{Seed: 5, Iters: 100})
	if p1.String() != p2.String() {
		t.Error("same seed produced different programs")
	}
	if !m1.Equal(m2) {
		t.Error("same seed produced different memories")
	}
	_, m3 := c.Generate(Input{Seed: 6, Iters: 100})
	if m1.Equal(m3) {
		t.Error("different seeds produced identical memories (scripts should differ)")
	}
}

func TestScriptTargetsRealized(t *testing.T) {
	// Profile a config and verify that measured bias and predictability
	// land near the site targets.
	c := Config{
		Name: "probe", Suite: "int2006", WSBytes: 64 << 10, FillerALU: 1,
		Sites: rep(4, intSite(3, 2, 1, 0.92)),
	}
	p, m := c.Generate(Input{Seed: 9, Iters: 3000})
	im := ir.MustLinearize(p)
	prof, err := profile.CollectDefault(im, m, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for id, b := range prof.ByID {
		if id < 100 { // skip the loop latch
			continue
		}
		bias := b.Bias()
		pred := b.Predictability()
		if bias < 0.50 || bias > 0.74 {
			t.Errorf("site %d: bias %.3f outside [0.50, 0.74] (target 0.60)", id, bias)
		}
		if pred < 0.80 {
			t.Errorf("site %d: predictability %.3f, want >= 0.80 (target 0.92)", id, pred)
		}
		if pred-bias < 0.05 {
			t.Errorf("site %d: gap %.3f below eligibility threshold (bias %.3f pred %.3f)",
				id, pred-bias, bias, pred)
		}
	}
}

func TestHardSitesStayIneligible(t *testing.T) {
	c := Config{
		Name: "hard", Suite: "int2006", WSBytes: 64 << 10, FillerALU: 1,
		Sites: rep(3, hardSite()),
	}
	p, m := c.Generate(Input{Seed: 4, Iters: 3000})
	prof, err := profile.CollectDefault(ir.MustLinearize(p), m, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for id, b := range prof.ByID {
		if id < 100 {
			continue
		}
		if gap := b.Predictability() - b.Bias(); gap >= 0.05 {
			t.Errorf("hard site %d: gap %.3f should stay below 0.05", id, gap)
		}
	}
}

func TestWorkloadsSurviveTransform(t *testing.T) {
	// Every suite config must profile, transform, and still compute the
	// same results — the full compiler pipeline equivalence check.
	for _, suite := range []string{"int2006", "fp2006"} {
		for _, c := range Suite(suite) {
			in := TrainInput()
			in.Iters = 400
			p, m := c.Generate(in)
			im := ir.MustLinearize(p)
			prof, err := profile.CollectDefault(im, m.Clone(), 50_000_000)
			if err != nil {
				t.Fatalf("%s profile: %v", c.Name, err)
			}
			trans := p.Clone()
			rep, err := core.Transform(trans, prof, core.DefaultOptions())
			if err != nil {
				t.Fatalf("%s transform: %v", c.Name, err)
			}
			if len(c.Sites) > 0 && nonHard(c) > 0 && len(rep.Converted) == 0 {
				t.Errorf("%s: no branches converted (skipped: %v)", c.Name, rep.Skipped)
			}
			gm := m.Clone()
			if _, _, err := interp.Run(im, gm, interp.Options{}); err != nil {
				t.Fatalf("%s original: %v", c.Name, err)
			}
			tm := m.Clone()
			k := 0
			if _, _, err := interp.Run(ir.MustLinearize(trans), tm, interp.Options{
				PredictOracle: func(pc, id int) bool { k++; return k%3 == 0 },
			}); err != nil {
				t.Fatalf("%s transformed: %v", c.Name, err)
			}
			if !tm.Equal(gm) {
				t.Errorf("%s: transformation changed program results", c.Name)
			}
		}
	}
}

func nonHard(c Config) int {
	n := 0
	for _, s := range c.Sites {
		if s.Pred-0.5 > 0.2 && s.Taken > 0.5 && s.Taken < 0.9 {
			n++
		}
	}
	return n
}

func TestSuiteLookups(t *testing.T) {
	if len(Int2006()) != 12 || len(FP2006()) != 17 {
		t.Errorf("SPEC2006 sizes: %d int, %d fp; want 12 and 17 (Table 2)",
			len(Int2006()), len(FP2006()))
	}
	if len(Int2000()) != 12 || len(FP2000()) != 14 {
		t.Errorf("SPEC2000 sizes: %d int, %d fp", len(Int2000()), len(FP2000()))
	}
	if _, ok := ByName("mcf"); !ok {
		t.Error("ByName failed for mcf")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName invented a benchmark")
	}
	if Suite("bogus") != nil {
		t.Error("unknown suite must return nil")
	}
	// Names must be unique within a suite.
	for _, s := range AllSuites() {
		seen := map[string]bool{}
		for _, c := range Suite(s) {
			if seen[c.Name] {
				t.Errorf("duplicate benchmark %s in %s", c.Name, s)
			}
			seen[c.Name] = true
			if c.WSBytes&(c.WSBytes-1) != 0 {
				t.Errorf("%s/%s: working set %d not a power of two", s, c.Name, c.WSBytes)
			}
		}
	}
}

func TestTrainRefInputsDiffer(t *testing.T) {
	tr := TrainInput()
	refs := RefInputs()
	if len(refs) < 2 {
		t.Fatal("need at least two REF inputs for the best-vs-all figures")
	}
	seen := map[int64]bool{tr.Seed: true}
	for _, r := range refs {
		if seen[r.Seed] {
			t.Error("REF seeds must differ from TRAIN and each other")
		}
		seen[r.Seed] = true
	}
}

func TestReplicatedFootprints(t *testing.T) {
	// The big-code benchmarks must generate hot instruction footprints in
	// the 20KB+ range (what makes the Section 6.1 I-cache study
	// meaningful), while ordinary benchmarks stay small.
	hot := func(name string) int {
		c, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		p, _ := c.Generate(TrainInput())
		// Hot footprint excludes the guarded cold block.
		n := 0
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				if b.Label == "cold" {
					continue
				}
				n += len(b.Instrs)
			}
		}
		return n * 4 // bytes
	}
	for name, min := range map[string]int{
		"gcc": 20 << 10, "xalancbmk": 16 << 10,
		"perlbench": 10 << 10, "gobmk": 10 << 10,
	} {
		if got := hot(name); got < min {
			t.Errorf("%s hot code %dB, want >= %dB", name, got, min)
		}
	}
	if got := hot("h264ref"); got > 8<<10 {
		t.Errorf("h264ref hot code %dB, want small", got)
	}
}

func TestIterScalingKeepsDynamicLengthBounded(t *testing.T) {
	// Replication must not multiply the dynamic instruction count by the
	// full replication factor (the iteration divisor compensates).
	small, _ := ByName("h264ref")
	big, _ := ByName("gcc")
	count := func(c Config) int64 {
		p, m := c.Generate(TrainInput())
		_, stats, err := interp.Run(ir.MustLinearize(p), m, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Instrs
	}
	ns, nb := count(small), count(big)
	if nb > 8*ns {
		t.Errorf("gcc dynamic length %d vs h264ref %d: replication not compensated", nb, ns)
	}
}

func TestPatchItersMatchesGenerate(t *testing.T) {
	// A TRAIN-built image patched to REF iterations must execute exactly
	// as many instructions as a REF-generated program.
	c, _ := ByName("gcc") // replicated: exercises the divisor path
	ref := RefInputs()[0]
	trainProg, _ := c.Generate(TrainInput())
	_, refMem := c.Generate(ref)
	patched := c.PatchIters(ir.MustLinearize(trainProg), ref.Iters)
	_, pStats, err := interp.Run(patched, refMem.Clone(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refProg, refMem2 := c.Generate(ref)
	_, rStats, err := interp.Run(ir.MustLinearize(refProg), refMem2, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pStats.Instrs != rStats.Instrs {
		t.Errorf("patched image ran %d instrs, REF program ran %d", pStats.Instrs, rStats.Instrs)
	}
}

func TestColdCodeNeverExecutes(t *testing.T) {
	c := Int2006()[0]
	p, m := c.Generate(Input{Seed: 3, Iters: 200})
	// Count instructions; cold block contributes len() statically.
	var coldLen int64
	for _, b := range p.Funcs[0].Blocks {
		if b.Label == "cold" {
			coldLen = int64(len(b.Instrs))
		}
	}
	if coldLen == 0 {
		t.Fatal("cold block missing")
	}
	_, stats, err := interp.Run(ir.MustLinearize(p), m, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// If cold code executed even once, dynamic length would jump by
	// coldLen; verify a second run with double cold code has the same
	// dynamic length.
	c2 := c
	c2.ColdInstrs = 1200
	p2, m2 := c2.Generate(Input{Seed: 3, Iters: 200})
	_, stats2, err := interp.Run(ir.MustLinearize(p2), m2, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Instrs != stats2.Instrs {
		t.Errorf("cold code leaked into execution: %d vs %d dynamic instrs",
			stats.Instrs, stats2.Instrs)
	}
}
