package bpred

import (
	"fmt"
	"math"
	"sort"
)

// This file is the predictor observatory: a Probe attached to a
// DirPredictor turns the per-resolution metadata the pipeline already
// carries (Meta: provider table, alternate prediction, confidence band,
// loop hits) plus table-level events streamed by the predictors
// themselves (allocations, entry touches) into a StudyReport — per-table
// provider usage, allocation and aliasing counters, confidence
// accounting, table occupancy, and a per-static-branch outcome digest
// that classifies every branch as biased / regime-switching /
// effectively-random.
//
// The probe follows the repo's nil-hook contract (attr, sampler,
// pipeview, recorder): a nil *Probe costs one nil check per resolution
// and per predictor update, observation never steers, and all
// steady-state recording lands in storage preallocated at construction.

// Provider slot 0 is reserved for Meta.Provider == -1 (the TAGE base
// table); slot i+1 holds provider i. maxProviderSlots bounds the flat
// per-slot arrays: the deepest stock predictor has 6 tagged tables, so
// 16 retires any realistic ladder extension without heap growth.
const maxProviderSlots = 16

// Classification labels for the per-branch outcome digest.
const (
	// ClassBiased: the branch overwhelmingly goes one way — any counter
	// scheme captures it; decomposing it buys little.
	ClassBiased = "biased"
	// ClassRegime: the branch alternates between stable modes — its
	// outcome stream has exploitable structure (low conditional entropy
	// or long same-direction runs) that history predictors learn.
	ClassRegime = "regime-switching"
	// ClassRandom: no bias and no short-history structure — the branches
	// the paper argues only decomposition saves.
	ClassRandom = "effectively-random"
)

// Classification thresholds (on the per-branch digest): a branch is
// biased when max(taken, not-taken)/execs >= probeBiasMin; otherwise it
// is regime-switching when the 2-bit-history conditional outcome entropy
// falls below probeEntropyMax bits or the transition rate below
// probeTransitionMax (long same-direction runs); anything left is
// effectively random. The estimates are maximum-likelihood over the
// observed stream, so very short streams classify noisily — consumers
// should weight by Execs.
const (
	probeBiasMin       = 0.95
	probeEntropyMax    = 0.70
	probeTransitionMax = 0.10
)

// branchAcc is the steady-state per-static-branch accumulator: plain
// counters plus a 2-bit outcome context for the conditional-entropy
// estimate. Everything derived (bias, rates, entropy, class) is computed
// once at Report time.
type branchAcc struct {
	execs       int64
	taken       int64
	mispredicts int64
	transitions int64
	ctx         uint8 // last two outcomes, bit 0 most recent
	seen        uint8 // outcomes observed, saturating at 2 (context warm-up)
	ctxCounts   [4][2]int64
}

// aliasAcc tracks one predictor table's entry-granularity usage: which
// entries were ever touched by a committed-stream update, and how often
// an update landed on an entry last written by a different PC.
type aliasAcc struct {
	name      string
	lastPC    []uint64 // per-entry last PC + 1; 0 = never touched
	touched   int
	conflicts int64
	updates   int64
}

// Probe accumulates the observatory for one machine's direction
// predictor. Construct with NewProbe, wire predictor-side hooks with
// Attach, feed it the resolution stream with ObserveResolve, and render
// with Report. All methods are single-goroutine, matching the machine.
type Probe struct {
	branches []branchAcc

	resolves    int64
	updates     int64
	mispredicts int64

	providerUse     [maxProviderSlots]int64
	providerCorrect [maxProviderSlots]int64
	providerWeak    [maxProviderSlots]int64

	altDiffer  int64
	altCorrect int64

	loopHits    int64
	loopCorrect int64

	conf [2][2]int64 // [weak][correct]

	allocTried  int64
	allocPlaced int64

	providerNames []string
	alias         []aliasAcc
}

// NewProbe builds a probe sized for static branch IDs 0..maxBranchID;
// per-branch storage is preallocated so steady-state observation never
// allocates.
func NewProbe(maxBranchID int) *Probe {
	if maxBranchID < 0 {
		maxBranchID = 0
	}
	return &Probe{branches: make([]branchAcc, maxBranchID+1)}
}

// Attach wires the predictor's table-level event hooks into the probe:
// predictors implementing Observable stream allocation and entry-touch
// events from their Update path, and name their provider slots. A
// predictor without the interface still gets full Meta-level and
// per-branch accounting.
func (p *Probe) Attach(d DirPredictor) {
	if o, ok := d.(Observable); ok {
		o.AttachProbe(p)
	}
}

// Observable is implemented by predictors that can stream table-level
// events (entry touches for aliasing, allocation attempts) into an
// attached probe. AttachProbe must register the predictor's tables and
// provider-slot names and retain the probe for its Update path; hooks
// must cost one nil check when no probe is attached.
type Observable interface {
	AttachProbe(*Probe)
}

// Surveyor is implemented by predictors that can report end-of-run table
// occupancy. Survey walks the tables once (report time, not hot path).
type Surveyor interface {
	Survey() []TableSurvey
}

// setProviders names the provider slots: names[0] labels
// Meta.Provider == -1, names[i+1] labels provider i.
func (p *Probe) setProviders(names ...string) {
	p.providerNames = names
}

// registerTable adds an aliasing-tracked table and returns its handle
// for noteEntry. Called from AttachProbe (construction time), so the
// per-entry array allocation is outside the steady state.
func (p *Probe) registerTable(name string, entries int) int {
	p.alias = append(p.alias, aliasAcc{name: name, lastPC: make([]uint64, entries)})
	return len(p.alias) - 1
}

// noteEntry records a committed-stream update landing on entry idx of a
// registered table. Nil-safe so predictor hot paths can call it behind a
// single probe check.
func (p *Probe) noteEntry(table int, idx, pc uint64) {
	a := &p.alias[table]
	a.updates++
	switch prev := a.lastPC[idx]; {
	case prev == 0:
		a.touched++
	case prev != pc+1:
		a.conflicts++
	}
	a.lastPC[idx] = pc + 1
}

// noteAlloc records one TAGE allocation attempt (a mispredict wanting a
// longer-history entry) and whether a free slot was found.
func (p *Probe) noteAlloc(placed bool) {
	p.allocTried++
	if placed {
		p.allocPlaced++
	}
}

// ObserveResolve feeds one committed resolution into the observatory:
// the static branch ID, the actual outcome, whether the prediction was
// wrong, and the prediction-time Meta — nil when the resolution trained
// no predictor (a RESOLVE whose DBB entry was recycled or invalidated),
// in which case only the outcome stream and totals advance.
func (p *Probe) ObserveResolve(id int, taken, mispredict bool, meta *Meta) {
	p.resolves++
	if mispredict {
		p.mispredicts++
	}

	if id < 0 {
		id = 0
	}
	if id >= len(p.branches) {
		// Defensive growth: IDs are bounded by the instruction image at
		// construction, so this path is cold by design.
		grown := make([]branchAcc, id+1)
		copy(grown, p.branches)
		p.branches = grown
	}
	b := &p.branches[id]
	b.execs++
	outcome := 0
	if taken {
		b.taken++
		outcome = 1
	}
	if mispredict {
		b.mispredicts++
	}
	if b.seen > 0 && (b.ctx&1) != uint8(outcome) {
		b.transitions++
	}
	if b.seen >= 2 {
		b.ctxCounts[b.ctx][outcome]++
	}
	b.ctx = (b.ctx<<1 | uint8(outcome)) & 3
	if b.seen < 2 {
		b.seen++
	}

	if meta == nil {
		return
	}
	p.updates++
	correct := !mispredict
	slot := int(meta.Provider) + 1
	if slot < 0 {
		slot = 0
	} else if slot >= maxProviderSlots {
		slot = maxProviderSlots - 1
	}
	p.providerUse[slot]++
	if correct {
		p.providerCorrect[slot]++
	}
	if meta.Weak {
		p.providerWeak[slot]++
		if correct {
			p.conf[1][1]++
		} else {
			p.conf[1][0]++
		}
	} else if correct {
		p.conf[0][1]++
	} else {
		p.conf[0][0]++
	}
	if meta.AltPred != meta.TagePred {
		p.altDiffer++
		if meta.AltPred == taken {
			p.altCorrect++
		}
	}
	if meta.LoopHit {
		p.loopHits++
		if correct {
			p.loopCorrect++
		}
	}
}

// StudyReport is the observatory's wire form: the `bpredstudy` section
// of telemetry schema v6 and the payload behind -bpred-report/-bpred-csv.
type StudyReport struct {
	Predictor string `json:"predictor"`
	SizeBits  int    `json:"size_bits,omitempty"`

	// Resolves counts every observed committed resolution (BR commits
	// plus RESOLVE commits); Updates counts the subset that trained the
	// predictor (prediction Meta was still available).
	Resolves    int64 `json:"resolves"`
	Updates     int64 `json:"updates"`
	Mispredicts int64 `json:"mispredicts"`

	Providers []ProviderReport `json:"providers,omitempty"`

	// Alternate-prediction accounting (TAGE family): of the updates where
	// the alternate disagreed with the tagged prediction, how often the
	// alternate was right.
	AltDiffer  int64 `json:"alt_differ,omitempty"`
	AltCorrect int64 `json:"alt_correct,omitempty"`

	// Loop-predictor accounting (ISL-TAGE).
	LoopHits    int64 `json:"loop_hits,omitempty"`
	LoopCorrect int64 `json:"loop_correct,omitempty"`

	// TAGE allocation churn: mispredictions that wanted a longer-history
	// entry, and how many found a free (u == 0) slot.
	AllocTried  int64 `json:"alloc_tried,omitempty"`
	AllocPlaced int64 `json:"alloc_placed,omitempty"`

	Confidence ConfidenceReport `json:"confidence"`

	Aliasing []AliasReport `json:"aliasing,omitempty"`
	Survey   []TableSurvey `json:"survey,omitempty"`

	Branches []BranchDigest         `json:"branches,omitempty"`
	Classes  map[string]ClassTotals `json:"classes,omitempty"`
}

// ProviderReport is one provider slot's usage: how often this table (or
// chooser arm) supplied the final prediction, how often it was right,
// and how often it was in the weak confidence band while providing.
type ProviderReport struct {
	Table   string `json:"table"`
	Use     int64  `json:"use"`
	Correct int64  `json:"correct"`
	Weak    int64  `json:"weak,omitempty"`
}

// ConfidenceReport is the 2x2 confidence matrix over predictor updates:
// the provider's confidence band at prediction time against the outcome.
type ConfidenceReport struct {
	ConfidentCorrect int64 `json:"confident_correct"`
	ConfidentWrong   int64 `json:"confident_wrong"`
	WeakCorrect      int64 `json:"weak_correct"`
	WeakWrong        int64 `json:"weak_wrong"`
}

// AliasReport is one table's entry-granularity usage from the
// committed-update stream: distinct entries touched, and updates landing
// on an entry last written by a different PC (destructive sharing).
type AliasReport struct {
	Name      string `json:"name"`
	Entries   int    `json:"entries"`
	Touched   int    `json:"touched"`
	Conflicts int64  `json:"conflicts"`
	Updates   int64  `json:"updates"`
}

// TableSurvey is one table's end-of-run occupancy: entries that moved
// off their reset state, and (where the structure has a confidence
// notion) how many of those sit in the weak band.
type TableSurvey struct {
	Name     string `json:"name"`
	Entries  int    `json:"entries"`
	Occupied int    `json:"occupied"`
	Weak     int    `json:"weak,omitempty"`
}

// BranchDigest is one static branch's outcome-stream summary and its
// predictability class.
type BranchDigest struct {
	ID          int   `json:"id"`
	Execs       int64 `json:"execs"`
	Taken       int64 `json:"taken"`
	Mispredicts int64 `json:"mispredicts"`
	// Bias is max(taken, not-taken) / execs in [0.5, 1].
	Bias float64 `json:"bias"`
	// TransitionRate is direction changes per opportunity (execs - 1).
	TransitionRate float64 `json:"transition_rate"`
	// Entropy is the conditional outcome entropy given the previous two
	// outcomes, in bits (0 = fully determined by 2-bit history, 1 = coin
	// flip even knowing it).
	Entropy float64 `json:"entropy"`
	Class   string  `json:"class"`
}

// ClassTotals aggregates one predictability class.
type ClassTotals struct {
	Branches    int   `json:"branches"`
	Execs       int64 `json:"execs"`
	Mispredicts int64 `json:"mispredicts"`
}

// MispredictRate is the branch's observed mispredict rate.
func (b *BranchDigest) MispredictRate() float64 {
	if b.Execs == 0 {
		return 0
	}
	return float64(b.Mispredicts) / float64(b.Execs)
}

// classify applies the documented thresholds to one digest.
func classify(bias, transRate, entropy float64) string {
	switch {
	case bias >= probeBiasMin:
		return ClassBiased
	case entropy <= probeEntropyMax || transRate <= probeTransitionMax:
		return ClassRegime
	default:
		return ClassRandom
	}
}

// condEntropy estimates H(outcome | previous two outcomes) in bits from
// the context-conditioned outcome counts.
func condEntropy(counts *[4][2]int64) float64 {
	var total int64
	for ctx := range counts {
		total += counts[ctx][0] + counts[ctx][1]
	}
	if total == 0 {
		return 0
	}
	var h float64
	for ctx := range counts {
		n := counts[ctx][0] + counts[ctx][1]
		if n == 0 {
			continue
		}
		for _, c := range counts[ctx] {
			if c == 0 {
				continue
			}
			p := float64(c) / float64(n)
			h -= float64(n) / float64(total) * p * math.Log2(p)
		}
	}
	return h
}

// providerName labels a provider slot, falling back to generic names
// when the predictor did not register any.
func (p *Probe) providerName(slot int) string {
	if slot < len(p.providerNames) && p.providerNames[slot] != "" {
		return p.providerNames[slot]
	}
	if slot == 0 {
		return "base"
	}
	return fmt.Sprintf("p%d", slot-1)
}

// Report renders the accumulated observatory. The predictor names the
// report and, when it implements Surveyor, contributes end-of-run table
// occupancy. Report does not reset the probe.
func (p *Probe) Report(d DirPredictor) *StudyReport {
	r := &StudyReport{
		Resolves:    p.resolves,
		Updates:     p.updates,
		Mispredicts: p.mispredicts,
		AltDiffer:   p.altDiffer,
		AltCorrect:  p.altCorrect,
		LoopHits:    p.loopHits,
		LoopCorrect: p.loopCorrect,
		AllocTried:  p.allocTried,
		AllocPlaced: p.allocPlaced,
		Confidence: ConfidenceReport{
			ConfidentCorrect: p.conf[0][1],
			ConfidentWrong:   p.conf[0][0],
			WeakCorrect:      p.conf[1][1],
			WeakWrong:        p.conf[1][0],
		},
	}
	if d != nil {
		r.Predictor = d.Name()
		r.SizeBits = d.SizeBits()
		if s, ok := d.(Surveyor); ok {
			r.Survey = s.Survey()
		}
	}
	for slot := 0; slot < maxProviderSlots; slot++ {
		if p.providerUse[slot] == 0 {
			continue
		}
		r.Providers = append(r.Providers, ProviderReport{
			Table:   p.providerName(slot),
			Use:     p.providerUse[slot],
			Correct: p.providerCorrect[slot],
			Weak:    p.providerWeak[slot],
		})
	}
	for i := range p.alias {
		a := &p.alias[i]
		if a.updates == 0 {
			continue
		}
		r.Aliasing = append(r.Aliasing, AliasReport{
			Name:      a.name,
			Entries:   len(a.lastPC),
			Touched:   a.touched,
			Conflicts: a.conflicts,
			Updates:   a.updates,
		})
	}
	r.Classes = map[string]ClassTotals{}
	for id := range p.branches {
		b := &p.branches[id]
		if b.execs == 0 {
			continue
		}
		bias := float64(b.taken) / float64(b.execs)
		if bias < 0.5 {
			bias = 1 - bias
		}
		transRate := 0.0
		if b.execs > 1 {
			transRate = float64(b.transitions) / float64(b.execs-1)
		}
		ent := condEntropy(&b.ctxCounts)
		d := BranchDigest{
			ID:             id,
			Execs:          b.execs,
			Taken:          b.taken,
			Mispredicts:    b.mispredicts,
			Bias:           bias,
			TransitionRate: transRate,
			Entropy:        ent,
			Class:          classify(bias, transRate, ent),
		}
		r.Branches = append(r.Branches, d)
		ct := r.Classes[d.Class]
		ct.Branches++
		ct.Execs += b.execs
		ct.Mispredicts += b.mispredicts
		r.Classes[d.Class] = ct
	}
	sort.Slice(r.Branches, func(i, j int) bool { return r.Branches[i].ID < r.Branches[j].ID })
	return r
}

// Check verifies the observatory's conservation invariants: per-branch
// digests and per-class totals must both sum exactly to the report's
// resolution and misprediction totals, every classified branch must
// carry a known class, and the Meta-derived books (provider usage,
// confidence matrix) must each sum to the update count.
func (r *StudyReport) Check() error {
	var execs, misp int64
	for i := range r.Branches {
		b := &r.Branches[i]
		execs += b.Execs
		misp += b.Mispredicts
		switch b.Class {
		case ClassBiased, ClassRegime, ClassRandom:
		default:
			return fmt.Errorf("bpred study: branch %d has unknown class %q", b.ID, b.Class)
		}
		if b.Taken > b.Execs || b.Mispredicts > b.Execs {
			return fmt.Errorf("bpred study: branch %d digest inconsistent: %+v", b.ID, *b)
		}
	}
	if execs != r.Resolves {
		return fmt.Errorf("bpred study: branch execs sum %d != resolves %d", execs, r.Resolves)
	}
	if misp != r.Mispredicts {
		return fmt.Errorf("bpred study: branch mispredicts sum %d != total %d", misp, r.Mispredicts)
	}
	var cb int
	var ce, cm int64
	for _, ct := range r.Classes {
		cb += ct.Branches
		ce += ct.Execs
		cm += ct.Mispredicts
	}
	if cb != len(r.Branches) || ce != r.Resolves || cm != r.Mispredicts {
		return fmt.Errorf("bpred study: class totals (%d branches, %d execs, %d mispredicts) != (%d, %d, %d)",
			cb, ce, cm, len(r.Branches), r.Resolves, r.Mispredicts)
	}
	var use int64
	for _, pr := range r.Providers {
		use += pr.Use
		if pr.Correct > pr.Use || pr.Weak > pr.Use {
			return fmt.Errorf("bpred study: provider %s books inconsistent: %+v", pr.Table, pr)
		}
	}
	if use != r.Updates {
		return fmt.Errorf("bpred study: provider use sum %d != updates %d", use, r.Updates)
	}
	c := r.Confidence
	if got := c.ConfidentCorrect + c.ConfidentWrong + c.WeakCorrect + c.WeakWrong; got != r.Updates {
		return fmt.Errorf("bpred study: confidence matrix sum %d != updates %d", got, r.Updates)
	}
	if r.Updates > r.Resolves || r.Mispredicts > r.Resolves {
		return fmt.Errorf("bpred study: totals inconsistent: %d updates, %d mispredicts, %d resolves",
			r.Updates, r.Mispredicts, r.Resolves)
	}
	if r.AllocPlaced > r.AllocTried || r.AltCorrect > r.AltDiffer || r.LoopCorrect > r.LoopHits {
		return fmt.Errorf("bpred study: event books inconsistent: alloc %d/%d, alt %d/%d, loop %d/%d",
			r.AllocPlaced, r.AllocTried, r.AltCorrect, r.AltDiffer, r.LoopCorrect, r.LoopHits)
	}
	return nil
}

// CheckAgainst extends Check with the cross-layer conservation the gate
// pins: the classified branches' resolutions and mispredictions must
// equal the pipeline's own totals (CondBranches+Resolves and
// BrMispredicts+ResMispredicts respectively — RET mispredictions are RAS
// events and never reach the direction predictor).
func (r *StudyReport) CheckAgainst(resolves, mispredicts int64) error {
	if err := r.Check(); err != nil {
		return err
	}
	if r.Resolves != resolves {
		return fmt.Errorf("bpred study: observed %d resolutions, pipeline counted %d", r.Resolves, resolves)
	}
	if r.Mispredicts != mispredicts {
		return fmt.Errorf("bpred study: observed %d mispredictions, pipeline counted %d", r.Mispredicts, mispredicts)
	}
	return nil
}

// Class returns the digest for one branch ID, or nil.
func (r *StudyReport) Class(id int) *BranchDigest {
	i := sort.Search(len(r.Branches), func(i int) bool { return r.Branches[i].ID >= id })
	if i < len(r.Branches) && r.Branches[i].ID == id {
		return &r.Branches[i]
	}
	return nil
}
