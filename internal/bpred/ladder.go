package bpred

// Ladder returns the Section 5.3 sensitivity sequence of ever-improving
// direction predictors, from a small bimodal up to the 64KB ISL-TAGE-class
// design. Each call constructs fresh (untrained) predictors.
func Ladder() []DirPredictor {
	return []DirPredictor{
		NewGShare(14, 12), // 4KB gshare
		NewGShare(15, 12), // 8KB gshare
		NewDefault(),      // 24KB 3-table (Table 1 baseline)
		NewTAGE(14, 11, 10, []int{4, 8, 16, 32, 64, 128}),           // ~27KB TAGE
		NewTAGE(14, 12, 10, []int{4, 8, 16, 32, 64, 128}),           // ~50KB TAGE
		NewISLTAGE(14, 12, 12, []int{4, 8, 16, 32, 64, 128}, 6, 12), // ~64KB ISL-TAGE
	}
}

// LadderSpec names one rung of the sensitivity ladder with a constructor,
// so harnesses can instantiate fresh predictors per run.
type LadderSpec struct {
	Name string
	New  func() DirPredictor
}

// LadderSpecs returns constructors for the Section 5.3 ladder.
func LadderSpecs() []LadderSpec {
	return []LadderSpec{
		{"gshare-4KB", func() DirPredictor { return NewGShare(14, 12) }},
		{"gshare-8KB", func() DirPredictor { return NewGShare(15, 12) }},
		{"gshare-3table-24KB", func() DirPredictor { return NewDefault() }},
		{"tage-27KB", func() DirPredictor { return NewTAGE(14, 11, 10, []int{4, 8, 16, 32, 64, 128}) }},
		{"tage-50KB", func() DirPredictor { return NewTAGE(14, 12, 10, []int{4, 8, 16, 32, 64, 128}) }},
		{"isl-tage-64KB", func() DirPredictor { return NewISLTAGE(14, 12, 12, []int{4, 8, 16, 32, 64, 128}, 6, 12) }},
	}
}

// Every ladder rung supports the full observatory: table-level event
// streaming (Observable) and end-of-run occupancy (Surveyor). Static is
// the deliberate exception — it has no tables to observe.
var (
	_ Observable = (*Bimodal)(nil)
	_ Observable = (*GShare)(nil)
	_ Observable = (*Tournament)(nil)
	_ Observable = (*TAGE)(nil)
	_ Observable = (*ISLTAGE)(nil)
	_ Observable = (*Perceptron)(nil)

	_ Surveyor = (*Bimodal)(nil)
	_ Surveyor = (*GShare)(nil)
	_ Surveyor = (*Tournament)(nil)
	_ Surveyor = (*TAGE)(nil)
	_ Surveyor = (*ISLTAGE)(nil)
	_ Surveyor = (*Perceptron)(nil)
)

// ByName constructs a predictor from a configuration name; the CLI tools
// use it. Unknown names return nil.
func ByName(name string) DirPredictor {
	switch name {
	case "static":
		return &Static{}
	case "bimodal":
		return NewBimodal(14)
	case "gshare":
		return NewGShare(15, 14)
	case "default", "gshare-3table", "tournament":
		return NewDefault()
	case "tage":
		return NewTAGE(14, 11, 10, []int{4, 8, 16, 32, 64, 128})
	case "isl-tage":
		return NewISLTAGE(14, 12, 12, []int{4, 8, 16, 32, 64, 128}, 6, 12)
	case "perceptron":
		return NewPerceptron(10, 32)
	}
	return nil
}
