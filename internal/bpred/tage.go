package bpred

import "fmt"

// TAGE is a TAgged GEometric history length predictor (Seznec), the upper
// rungs of the Section 5.3 sensitivity ladder. ISL-TAGE composes TAGE with
// a loop predictor and a statistical corrector.

type tagEntry struct {
	ctr int8 // 3-bit signed saturating counter, taken when >= 0
	tag uint16
	u   uint8 // 2-bit useful counter
}

// TAGE is the tagged geometric-history predictor.
type TAGE struct {
	base     []ctr2
	baseMask uint64
	// choose arbitrates per-PC between the tagged prediction and the base
	// prediction: a 3-bit counter, tagged trusted only when >= 6. Heavily
	// noise-polluted global history — interleaved data-dependent branches —
	// can make history-indexed entries systematically worse than the base;
	// the asymmetric chooser bounds that loss (the role the statistical
	// corrector plays in ISL-TAGE) while still engaging the tagged tables
	// wherever they are clearly better.
	choose     []int8
	chooseMask uint64
	tables     [][]tagEntry
	idxMask    uint64
	logT       int
	tagW       int
	lens       []int
	hist       Hist

	ticks int
	rng   uint64 // deterministic xorshift for allocation choice

	probe     *Probe
	probeBase int
	probeTab  []int
}

// NewTAGE builds a TAGE predictor: a 2^logBase bimodal base plus
// len(lens) tagged tables of 2^logT entries with tagW-bit tags and the
// given geometric history lengths.
func NewTAGE(logBase, logT, tagW int, lens []int) *TAGE {
	t := &TAGE{
		base:       make([]ctr2, 1<<logBase),
		baseMask:   uint64(1<<logBase - 1),
		choose:     make([]int8, 1<<12),
		chooseMask: uint64(1<<12 - 1),
		idxMask:    uint64(1<<logT - 1),
		logT:       logT,
		tagW:       tagW,
		lens:       append([]int(nil), lens...),
		rng:        0x9e3779b97f4a7c15,
	}
	for i := range t.base {
		t.base[i] = 1
	}
	for i := range t.choose {
		t.choose[i] = 5 // just below the trust threshold
	}
	t.tables = make([][]tagEntry, len(lens))
	for i := range t.tables {
		t.tables[i] = make([]tagEntry, 1<<logT)
	}
	return t
}

// Name implements DirPredictor.
func (t *TAGE) Name() string { return "tage" }

// SizeBits implements DirPredictor.
func (t *TAGE) SizeBits() int {
	bits := len(t.base)*2 + len(t.choose)*3
	per := 3 + 2 + t.tagW
	for _, tb := range t.tables {
		bits += len(tb) * per
	}
	return bits
}

func (t *TAGE) index(i int, pc uint64, h Hist) uint64 {
	return (pc ^ (pc >> uint(t.logT)) ^ h.Fold(t.lens[i], t.logT) ^ h.Fold(t.lens[i], t.logT-1)<<1) & t.idxMask
}

func (t *TAGE) tag(i int, pc uint64, h Hist) uint16 {
	// The tag hash must stay decorrelated from the index hash (different
	// pc mixing and different fold widths), otherwise when tagW == logT a
	// slot's tag always equals its index and every lookup falsely matches.
	return uint16((pc ^ pc>>3 ^ h.Fold(t.lens[i], t.tagW) ^ h.Fold(t.lens[i], t.tagW-2)<<1) & (1<<t.tagW - 1))
}

// confident reports whether a 3-bit counter is outside the weak band.
func confident(c int8) bool { return c >= 1 || c <= -2 }

// lookup scans the tagged tables from longest history to shortest.
//
//   - provider is the longest matching entry (it is trained, and drives
//     allocation decisions); -1 when only the base matched;
//   - pred is the prediction: the longest CONFIDENT match, falling back
//     to the base table. Deferring past weak entries keeps TAGE robust
//     when interleaved unpredictable branches litter the global history
//     with noise — a freshly allocated long-history entry never masks a
//     well-trained short-history or base prediction;
//   - alt is the prediction the machine would have made without the
//     provider (for useful-bit training).
func (t *TAGE) lookup(pc uint64, h Hist) (pred, alt bool, provider int8, weak, tagged bool) {
	basePred := t.base[pc&t.baseMask].taken()
	pred, alt = basePred, basePred
	provider = -1
	havePred := false
	haveAlt := false
	for i := len(t.tables) - 1; i >= 0; i-- {
		e := &t.tables[i][t.index(i, pc, h)]
		if e.tag != t.tag(i, pc, h) {
			continue
		}
		first := provider == -1
		if first {
			provider = int8(i)
			weak = !confident(e.ctr)
		}
		if confident(e.ctr) {
			if !havePred {
				pred = e.ctr >= 0
				havePred = true
			}
			if !haveAlt && !first {
				alt = e.ctr >= 0
				haveAlt = true
			}
		}
	}
	// Arbitrate tagged vs base when they disagree.
	if havePred && pred != basePred && t.choose[pc&t.chooseMask] < 6 {
		pred = basePred
	}
	tagged = havePred
	return pred, alt, provider, weak, tagged
}

// Predict implements DirPredictor.
func (t *TAGE) Predict(pc uint64) (bool, Meta) {
	pred, alt, provider, weak, _ := t.lookup(pc, t.hist)
	return pred, Meta{Hist: t.hist, Pred: pred, Provider: provider, AltPred: alt, TagePred: pred, Weak: weak}
}

func (t *TAGE) next() uint64 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	return t.rng
}

// AttachProbe implements Observable: the provider slots are the base
// table plus each tagged table (longest-history table last), and every
// table the committed update stream writes is aliasing-tracked.
func (t *TAGE) AttachProbe(p *Probe) {
	t.probe = p
	names := make([]string, len(t.tables)+1)
	names[0] = "base"
	for i := range t.tables {
		names[i+1] = fmt.Sprintf("tage%d", i+1)
	}
	p.setProviders(names...)
	t.probeBase = p.registerTable("base", len(t.base))
	t.probeTab = make([]int, len(t.tables))
	for i := range t.tables {
		t.probeTab[i] = p.registerTable(names[i+1], len(t.tables[i]))
	}
}

// Survey implements Surveyor. A tagged entry counts as occupied once any
// of its fields moved off the zero allocation state; it is weak while
// its counter sits in the low-confidence band.
func (t *TAGE) Survey() []TableSurvey {
	out := []TableSurvey{surveyCtr2("base", t.base, 1)}
	ch := TableSurvey{Name: "choose", Entries: len(t.choose)}
	for _, c := range t.choose {
		if c != 5 {
			ch.Occupied++
		}
	}
	out = append(out, ch)
	for i, tb := range t.tables {
		s := TableSurvey{Name: fmt.Sprintf("tage%d", i+1), Entries: len(tb)}
		for j := range tb {
			e := &tb[j]
			if e.ctr == 0 && e.tag == 0 && e.u == 0 {
				continue
			}
			s.Occupied++
			if !confident(e.ctr) {
				s.Weak++
			}
		}
		out = append(out, s)
	}
	return out
}

// Update implements DirPredictor.
func (t *TAGE) Update(pc uint64, taken bool, m Meta) {
	h := m.Hist
	_, alt, provider, _, _ := t.lookup(pc, h)
	if t.probe != nil {
		t.probe.noteEntry(t.probeBase, pc&t.baseMask, pc)
		if provider >= 0 {
			t.probe.noteEntry(t.probeTab[provider], t.index(int(provider), pc, h), pc)
		}
	}

	// Train the tagged-vs-base chooser on disagreements, independent of
	// the chooser's own verdict.
	basePred := t.base[pc&t.baseMask].taken()
	taggedPred, haveTagged := basePred, false
	for i := len(t.tables) - 1; i >= 0; i-- {
		e := &t.tables[i][t.index(i, pc, h)]
		if e.tag == t.tag(i, pc, h) && confident(e.ctr) {
			taggedPred, haveTagged = e.ctr >= 0, true
			break
		}
	}
	if haveTagged && taggedPred != basePred {
		ci := pc & t.chooseMask
		if taggedPred == taken {
			if t.choose[ci] < 7 {
				t.choose[ci]++
			}
		} else if t.choose[ci] > 0 {
			t.choose[ci]--
		}
	}

	if provider >= 0 {
		e := &t.tables[provider][t.index(int(provider), pc, h)]
		provPred := e.ctr >= 0
		if provPred == taken && alt != taken && e.u < 3 {
			e.u++
		}
		if taken && e.ctr < 3 {
			e.ctr++
		} else if !taken && e.ctr > -4 {
			e.ctr--
		}
	}
	// The base always trains: the chooser may route predictions to it at
	// any time, so it must track current behaviour (hybrid semantics)
	// rather than canonical TAGE's train-when-provider semantics.
	bi := pc & t.baseMask
	t.base[bi] = t.base[bi].train(taken)

	// Allocate a longer-history entry on a misprediction. The trigger uses
	// TAGE's own prediction (TagePred) so that corrector overrides layered
	// on top (ISL-TAGE) do not perturb table training.
	if m.TagePred != taken && int(provider) < len(t.tables)-1 {
		start := int(provider) + 1
		// Pick among free (u==0) slots pseudo-randomly, biased short.
		allocated := false
		r := t.next()
		for k := start; k < len(t.tables); k++ {
			i := k
			if r&1 == 1 && k+1 < len(t.tables) {
				i = k + 1
			}
			e := &t.tables[i][t.index(i, pc, h)]
			if e.u == 0 {
				e.tag = t.tag(i, pc, h)
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				if t.probe != nil {
					// An allocation overwrites the slot, so it counts as an
					// entry touch for the aliasing books.
					t.probe.noteEntry(t.probeTab[i], t.index(i, pc, h), pc)
				}
				allocated = true
				break
			}
		}
		if !allocated {
			for k := start; k < len(t.tables); k++ {
				e := &t.tables[k][t.index(k, pc, h)]
				if e.u > 0 {
					e.u--
				}
			}
		}
		if t.probe != nil {
			t.probe.noteAlloc(allocated)
		}
	}

	// Gracefully age useful counters.
	t.ticks++
	if t.ticks >= 1<<18 {
		t.ticks = 0
		for _, tb := range t.tables {
			for i := range tb {
				tb[i].u >>= 1
			}
		}
	}
}

// PushHistory implements DirPredictor.
func (t *TAGE) PushHistory(taken bool) { t.hist.Push(taken) }

// Checkpoint implements DirPredictor.
func (t *TAGE) Checkpoint() Hist { return t.hist }

// Restore implements DirPredictor.
func (t *TAGE) Restore(h Hist) { t.hist = h }

// loopEntry tracks a loop branch with a (nearly) constant trip count.
type loopEntry struct {
	tag      uint16
	pastIter uint16
	currIter uint16
	conf     uint8
	age      uint8
}

// ISLTAGE is TAGE augmented with a loop predictor and a statistical
// corrector, the top rung of the sensitivity ladder.
type ISLTAGE struct {
	*TAGE
	loops    []loopEntry
	loopMask uint64
	sc       []int8 // statistical corrector counters
	scMask   uint64

	probeLoop int
	probeSC   int
}

// NewISLTAGE builds the ISL-TAGE-class predictor.
func NewISLTAGE(logBase, logT, tagW int, lens []int, logLoop, logSC int) *ISLTAGE {
	return &ISLTAGE{
		TAGE:     NewTAGE(logBase, logT, tagW, lens),
		loops:    make([]loopEntry, 1<<logLoop),
		loopMask: uint64(1<<logLoop - 1),
		sc:       make([]int8, 1<<logSC),
		scMask:   uint64(1<<logSC - 1),
	}
}

// Name implements DirPredictor.
func (p *ISLTAGE) Name() string { return "isl-tage" }

// SizeBits implements DirPredictor.
func (p *ISLTAGE) SizeBits() int {
	return p.TAGE.SizeBits() + len(p.loops)*(16+16+16+8+8) + len(p.sc)*6
}

func (p *ISLTAGE) loopIndex(pc uint64) uint64 { return (pc ^ pc>>6) & p.loopMask }

// loopTag disambiguates branches that share a loop-table set; it hashes the
// PC bits above the index so that nearby instruction PCs (which are small
// integers in this ISA) stay distinct.
func (p *ISLTAGE) loopTag(pc uint64) uint16 {
	h := pc / (p.loopMask + 1)
	return uint16(h^(h>>10)) & 0x3ff
}

// Predict implements DirPredictor.
func (p *ISLTAGE) Predict(pc uint64) (bool, Meta) {
	pred, meta := p.TAGE.Predict(pc)
	// Loop predictor: on a confident loop, predict taken until the trip
	// count is reached, then not-taken once.
	le := &p.loops[p.loopIndex(pc)]
	if le.tag == p.loopTag(pc) && le.conf >= 3 && le.pastIter > 0 {
		meta.LoopHit = true
		pred = le.currIter < le.pastIter
	} else if meta.Weak {
		// Statistical corrector: only low-confidence (weak) TAGE
		// predictions may be overridden, when the per-(pc, direction)
		// counter says TAGE is systematically wrong in this context.
		i := (pc ^ b2u(meta.TagePred)) & p.scMask
		if p.sc[i] <= -8 {
			pred = !pred
		}
	}
	meta.Pred = pred
	return pred, meta
}

// AttachProbe implements Observable: the TAGE tables plus the loop
// table and the statistical corrector.
func (p *ISLTAGE) AttachProbe(pr *Probe) {
	p.TAGE.AttachProbe(pr)
	p.probeLoop = pr.registerTable("loop", len(p.loops))
	p.probeSC = pr.registerTable("sc", len(p.sc))
}

// Survey implements Surveyor.
func (p *ISLTAGE) Survey() []TableSurvey {
	out := p.TAGE.Survey()
	lp := TableSurvey{Name: "loop", Entries: len(p.loops)}
	for i := range p.loops {
		le := &p.loops[i]
		if *le == (loopEntry{}) {
			continue
		}
		lp.Occupied++
		if le.conf < 3 {
			lp.Weak++
		}
	}
	sc := TableSurvey{Name: "sc", Entries: len(p.sc)}
	for _, v := range p.sc {
		if v == 0 {
			continue
		}
		sc.Occupied++
		if v > -8 && v < 8 {
			sc.Weak++
		}
	}
	return append(out, lp, sc)
}

// Update implements DirPredictor.
func (p *ISLTAGE) Update(pc uint64, taken bool, m Meta) {
	le := &p.loops[p.loopIndex(pc)]
	if p.probe != nil && (le.tag == p.loopTag(pc) || m.Pred != taken) {
		// Both arms below write the loop entry (training a match, aging
		// or reallocating a mismatch on a mispredict).
		p.probe.noteEntry(p.probeLoop, p.loopIndex(pc), pc)
	}
	if le.tag == p.loopTag(pc) {
		if taken {
			if le.currIter < 0xffff {
				le.currIter++
			}
		} else {
			if le.pastIter == le.currIter {
				if le.conf < 7 {
					le.conf++
				}
			} else {
				le.pastIter = le.currIter
				le.conf = 0
			}
			le.currIter = 0
		}
	} else if m.Pred != taken {
		if le.age > 0 {
			le.age--
		} else {
			*le = loopEntry{tag: p.loopTag(pc), age: 7}
		}
	}

	// Statistical corrector training: mirror exactly the counter the
	// corrector consulted (weak predictions only).
	if m.Weak && !m.LoopHit {
		i := (pc ^ b2u(m.TagePred)) & p.scMask
		if p.probe != nil {
			p.probe.noteEntry(p.probeSC, i, pc)
		}
		if m.TagePred == taken {
			if p.sc[i] < 31 {
				p.sc[i]++
			}
		} else {
			if p.sc[i] > -32 {
				p.sc[i]--
			}
		}
	}

	p.TAGE.Update(pc, taken, m)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
