package bpred

// Perceptron is Jiménez & Lin's perceptron branch predictor: per-PC weight
// vectors dotted against the global history, trained when the margin is
// below a threshold or the prediction is wrong. It is not part of the
// paper's ladder (the paper tops out at ISL-TAGE) but completes the
// predictor suite for extension studies: perceptrons capture linearly
// separable correlations that counter tables cannot, and degrade
// differently under the history pollution the workloads exhibit.
type Perceptron struct {
	weights  [][]int8
	bias     []int8
	mask     uint64
	histBits int
	hist     Hist
	theta    int32

	probe   *Probe
	probeTb int
}

// NewPerceptron builds a perceptron predictor with 2^logRows weight rows
// over histBits of global history.
func NewPerceptron(logRows, histBits int) *Perceptron {
	n := 1 << logRows
	p := &Perceptron{
		weights:  make([][]int8, n),
		bias:     make([]int8, n),
		mask:     uint64(n - 1),
		histBits: histBits,
		// Jiménez's threshold heuristic: 1.93*h + 14.
		theta: int32(1.93*float64(histBits) + 14),
	}
	for i := range p.weights {
		p.weights[i] = make([]int8, histBits)
	}
	return p
}

// Name implements DirPredictor.
func (p *Perceptron) Name() string { return "perceptron" }

// SizeBits implements DirPredictor.
func (p *Perceptron) SizeBits() int { return len(p.weights) * (p.histBits + 1) * 8 }

func (p *Perceptron) dot(pc uint64, h Hist) int32 {
	row := (pc ^ pc>>13) & p.mask
	w := p.weights[row]
	sum := int32(p.bias[row])
	for i := 0; i < p.histBits; i++ {
		var bit int64
		if i < 64 {
			bit = int64(h[0]>>uint(i)) & 1
		} else {
			bit = int64(h[1]>>uint(i-64)) & 1
		}
		if bit != 0 {
			sum += int32(w[i])
		} else {
			sum -= int32(w[i])
		}
	}
	return sum
}

// Predict implements DirPredictor.
func (p *Perceptron) Predict(pc uint64) (bool, Meta) {
	sum := p.dot(pc, p.hist)
	pred := sum >= 0
	weak := sum < p.theta && sum > -p.theta
	return pred, Meta{Hist: p.hist, Pred: pred, TagePred: pred, Weak: weak}
}

// Update implements DirPredictor: train on mispredictions and weak-margin
// correct predictions, saturating weights at int8 bounds.
func (p *Perceptron) Update(pc uint64, taken bool, m Meta) {
	sum := p.dot(pc, m.Hist)
	pred := sum >= 0
	if pred == taken && (sum >= p.theta || sum <= -p.theta) {
		return
	}
	row := (pc ^ pc>>13) & p.mask
	if p.probe != nil {
		p.probe.noteEntry(p.probeTb, row, pc)
	}
	w := p.weights[row]
	step := func(v int8, up bool) int8 {
		if up && v < 127 {
			return v + 1
		}
		if !up && v > -127 {
			return v - 1
		}
		return v
	}
	p.bias[row] = step(p.bias[row], taken)
	for i := 0; i < p.histBits; i++ {
		var bit int64
		if i < 64 {
			bit = int64(m.Hist[0]>>uint(i)) & 1
		} else {
			bit = int64(m.Hist[1]>>uint(i-64)) & 1
		}
		agrees := (bit != 0) == taken
		w[i] = step(w[i], agrees)
	}
}

// AttachProbe implements Observable: the weight rows are one table, and
// aliasing counts the training updates (the only path that writes them).
func (p *Perceptron) AttachProbe(pr *Probe) {
	p.probe = pr
	pr.setProviders("", "perceptron")
	p.probeTb = pr.registerTable("weights", len(p.weights))
}

// Survey implements Surveyor: a weight row is occupied once its bias or
// any weight is nonzero.
func (p *Perceptron) Survey() []TableSurvey {
	s := TableSurvey{Name: "weights", Entries: len(p.weights)}
	for row := range p.weights {
		occupied := p.bias[row] != 0
		for _, w := range p.weights[row] {
			if w != 0 {
				occupied = true
				break
			}
		}
		if occupied {
			s.Occupied++
		}
	}
	return []TableSurvey{s}
}

// PushHistory implements DirPredictor.
func (p *Perceptron) PushHistory(taken bool) { p.hist.Push(taken) }

// Checkpoint implements DirPredictor.
func (p *Perceptron) Checkpoint() Hist { return p.hist }

// Restore implements DirPredictor.
func (p *Perceptron) Restore(h Hist) { p.hist = h }
