package bpred

import (
	"math/rand"
	"testing"
)

type event struct {
	pc    uint64
	taken bool
}

// accuracy runs the standard predict/push/update protocol over a trace.
func accuracy(p DirPredictor, trace []event) float64 {
	correct := 0
	for _, e := range trace {
		pred, meta := p.Predict(e.pc)
		if pred == e.taken {
			correct++
		}
		p.PushHistory(e.taken)
		p.Update(e.pc, e.taken, meta)
	}
	return float64(correct) / float64(len(trace))
}

// biasedTrace flips a coin with P(taken)=bias at one PC.
func biasedTrace(n int, pc uint64, bias float64, seed int64) []event {
	r := rand.New(rand.NewSource(seed))
	t := make([]event, n)
	for i := range t {
		t[i] = event{pc, r.Float64() < bias}
	}
	return t
}

// periodicTrace repeats a fixed taken/not-taken pattern at one PC.
func periodicTrace(n int, pc uint64, pattern []bool) []event {
	t := make([]event, n)
	for i := range t {
		t[i] = event{pc, pattern[i%len(pattern)]}
	}
	return t
}

func TestHistPushFold(t *testing.T) {
	var h Hist
	h.Push(true)
	h.Push(false)
	h.Push(true) // history (newest first): 1,0,1 -> bits 0b101
	if h[0] != 0b101 {
		t.Fatalf("history bits = %b, want 101", h[0])
	}
	if got := h.Fold(3, 3); got != 0b101 {
		t.Errorf("Fold(3,3) = %b, want 101", got)
	}
	if got := h.Fold(3, 2); got != (0b01 ^ 0b1) {
		t.Errorf("Fold(3,2) = %b, want chunked xor %b", got, 0b01^0b1)
	}
	if h.Fold(0, 4) != 0 || h.Fold(4, 0) != 0 {
		t.Error("degenerate folds must be zero")
	}
}

func TestHistPushCrossesWordBoundary(t *testing.T) {
	var h Hist
	h.Push(true)
	for i := 0; i < 64; i++ {
		h.Push(false)
	}
	if h[1]&1 != 1 {
		t.Error("oldest bit must have carried into the high word")
	}
	if h[0] != 0 {
		t.Errorf("low word = %b, want 0", h[0])
	}
	// Fold over 65 bits must see the carried bit.
	if h.Fold(65, 16) == 0 {
		t.Error("fold over 65 bits lost the high-word bit")
	}
}

func TestCtr2Saturation(t *testing.T) {
	c := ctr2(0)
	if c.dec() != 0 {
		t.Error("dec must saturate at 0")
	}
	for i := 0; i < 10; i++ {
		c = c.inc()
	}
	if c != 3 {
		t.Errorf("inc must saturate at 3, got %d", c)
	}
	if !c.taken() || ctr2(1).taken() {
		t.Error("taken threshold wrong")
	}
}

func TestStatic(t *testing.T) {
	nt := &Static{}
	pred, _ := nt.Predict(0x40)
	if pred {
		t.Error("static not-taken predicted taken")
	}
	tk := &Static{Taken: true}
	if pred, _ := tk.Predict(0x40); !pred {
		t.Error("static taken predicted not-taken")
	}
	if nt.SizeBits() != 0 || nt.Name() == tk.Name() {
		t.Error("static metadata wrong")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(12)
	acc := accuracy(b, biasedTrace(20000, 0x400, 0.95, 1))
	if acc < 0.90 {
		t.Errorf("bimodal on 95%% biased branch: %.3f, want >= 0.90", acc)
	}
	acc = accuracy(NewBimodal(12), biasedTrace(20000, 0x400, 0.05, 2))
	if acc < 0.90 {
		t.Errorf("bimodal on 5%% biased branch: %.3f, want >= 0.90", acc)
	}
}

func TestGShareLearnsPatternBimodalCannot(t *testing.T) {
	pattern := []bool{true, true, false, true, false, false, true, false}
	trace := periodicTrace(30000, 0x400, pattern)
	bAcc := accuracy(NewBimodal(12), trace)
	gAcc := accuracy(NewGShare(14, 12), trace)
	if gAcc < 0.98 {
		t.Errorf("gshare on short periodic pattern: %.3f, want ~1", gAcc)
	}
	if gAcc <= bAcc {
		t.Errorf("gshare (%.3f) must beat bimodal (%.3f) on history-correlated branch", gAcc, bAcc)
	}
}

func TestTournamentTracksBestComponent(t *testing.T) {
	// Mixed workload: one heavily biased branch (bimodal's home turf,
	// gshare suffers cross-branch history pollution) plus one patterned
	// branch (gshare's home turf).
	r := rand.New(rand.NewSource(3))
	pattern := []bool{true, false, true, true, false, false}
	var trace []event
	k := 0
	for i := 0; i < 40000; i++ {
		if i%2 == 0 {
			trace = append(trace, event{0x100, r.Float64() < 0.98})
		} else {
			trace = append(trace, event{0x200, pattern[k%len(pattern)]})
			k++
		}
	}
	tAcc := accuracy(NewTournament(13, 12), trace)
	if tAcc < 0.95 {
		t.Errorf("tournament on mixed workload: %.3f, want >= 0.95", tAcc)
	}
}

func TestDefaultPredictorIs24KB(t *testing.T) {
	d := NewDefault()
	if got := d.SizeBits() / 8 / 1024; got != 24 {
		t.Errorf("default predictor size = %dKB, want 24KB (Table 1)", got)
	}
	if d.Name() != "gshare-3table" {
		t.Errorf("unexpected name %q", d.Name())
	}
}

func TestTAGELearnsLongPattern(t *testing.T) {
	// Period-31 pattern: too long for 12-16 bits of gshare history
	// indexing one table, easy for TAGE's long-history tables.
	pattern := make([]bool, 31)
	for i := range pattern {
		pattern[i] = i%3 == 0 || i%7 == 0
	}
	trace := periodicTrace(60000, 0x400, pattern)
	gAcc := accuracy(NewGShare(13, 10), trace)
	tAcc := accuracy(NewTAGE(12, 10, 9, []int{4, 8, 16, 32, 64}), trace)
	if tAcc < 0.95 {
		t.Errorf("TAGE on period-31 pattern: %.3f, want >= 0.95", tAcc)
	}
	if tAcc <= gAcc {
		t.Errorf("TAGE (%.3f) must beat short gshare (%.3f) on long pattern", tAcc, gAcc)
	}
}

func TestISLTAGELoopPredictor(t *testing.T) {
	// A loop with a constant 200 trip count: 199 taken, 1 not-taken.
	// No global-history predictor at these sizes catches the exit; the
	// loop predictor must.
	pattern := make([]bool, 200)
	for i := 0; i < 199; i++ {
		pattern[i] = true
	}
	trace := periodicTrace(80000, 0x400, pattern)
	isl := NewISLTAGE(12, 10, 9, []int{4, 8, 16, 32}, 6, 10)
	acc := accuracy(isl, trace)
	if acc < 0.995 {
		t.Errorf("ISL-TAGE on constant-trip loop: %.4f, want >= 0.995", acc)
	}
	plain := accuracy(NewTAGE(12, 10, 9, []int{4, 8, 16, 32}), trace)
	if acc <= plain {
		t.Errorf("loop predictor gave no benefit: isl %.4f vs tage %.4f", acc, plain)
	}
}

// TestOutOfPlaceUpdate exercises the DBB use case: updates are applied
// several branches late, with prediction-time history carried in Meta.
// Accuracy on a patterned branch must survive the delay.
func TestOutOfPlaceUpdate(t *testing.T) {
	pattern := []bool{true, true, false, true, false, false, true, false}
	trace := periodicTrace(30000, 0x400, pattern)
	p := NewGShare(14, 12)
	type pending struct {
		pc    uint64
		taken bool
		meta  Meta
	}
	var q []pending
	correct := 0
	for _, e := range trace {
		pred, meta := p.Predict(e.pc)
		if pred == e.taken {
			correct++
		}
		p.PushHistory(e.taken)
		q = append(q, pending{e.pc, e.taken, meta})
		if len(q) > 8 { // drain with an 8-branch delay, like a DBB
			u := q[0]
			q = q[1:]
			p.Update(u.pc, u.taken, u.meta)
		}
	}
	acc := float64(correct) / float64(len(trace))
	if acc < 0.97 {
		t.Errorf("delayed-update gshare accuracy %.3f, want >= 0.97", acc)
	}
}

func TestCheckpointRestore(t *testing.T) {
	g := NewGShare(12, 10)
	g.PushHistory(true)
	g.PushHistory(false)
	ck := g.Checkpoint()
	g.PushHistory(true) // wrong-path history
	g.PushHistory(true)
	g.Restore(ck)
	if g.Checkpoint() != ck {
		t.Error("restore did not rewind history")
	}
}

func TestLadderMonotonicOnHardTrace(t *testing.T) {
	// A workload mixing biased, patterned, long-patterned, and loop
	// branches; each rung of the ladder should do at least roughly as
	// well as the one below (small regressions tolerated — these are
	// heuristic structures — but the top must clearly beat the bottom).
	r := rand.New(rand.NewSource(9))
	longPat := make([]bool, 37)
	for i := range longPat {
		longPat[i] = (i*i)%5 < 2
	}
	var trace []event
	k := 0
	for i := 0; i < 60000; i++ {
		switch i % 4 {
		case 0:
			trace = append(trace, event{0x100, r.Float64() < 0.9})
		case 1:
			trace = append(trace, event{0x200, k%8 < 3})
		case 2:
			trace = append(trace, event{0x300, longPat[k%len(longPat)]})
		default:
			trace = append(trace, event{0x400, k%50 != 49})
			k++
		}
	}
	ladder := Ladder()
	accs := make([]float64, len(ladder))
	for i, p := range ladder {
		accs[i] = accuracy(p, trace)
	}
	for i := 1; i < len(accs); i++ {
		if accs[i] < accs[i-1]-0.02 {
			t.Errorf("ladder rung %d (%s, %.3f) regressed vs rung %d (%.3f)",
				i, ladder[i].Name(), accs[i], i-1, accs[i-1])
		}
	}
	if accs[len(accs)-1] < accs[0]+0.01 {
		t.Errorf("top of ladder (%.3f) not better than bottom (%.3f)", accs[len(accs)-1], accs[0])
	}
	// Sizes must be increasing, as the study intends.
	for i := 1; i < len(ladder); i++ {
		if ladder[i].SizeBits() <= ladder[i-1].SizeBits() {
			t.Errorf("ladder sizes not increasing: %s %d <= %s %d",
				ladder[i].Name(), ladder[i].SizeBits(), ladder[i-1].Name(), ladder[i-1].SizeBits())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"static", "bimodal", "gshare", "default", "tage", "isl-tage"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("nonsense") != nil {
		t.Error("unknown predictor name must return nil")
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(4)
	if _, ok := b.Lookup(0x40); ok {
		t.Error("empty BTB hit")
	}
	b.Insert(0x40, 777)
	if tgt, ok := b.Lookup(0x40); !ok || tgt != 777 {
		t.Errorf("BTB lookup = %d,%v", tgt, ok)
	}
	// Conflict: same set, different tag.
	b.Insert(0x40+16, 888)
	if _, ok := b.Lookup(0x40); ok {
		t.Error("conflicting insert must evict")
	}
	if hr := b.HitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate %f out of (0,1)", hr)
	}
}

func TestRAS(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS pop must fail")
	}
	r.Push(10)
	r.Push(20)
	ck := r.Checkpoint()
	r.Push(30)
	if pc, ok := r.Pop(); !ok || pc != 30 {
		t.Errorf("pop = %d,%v want 30", pc, ok)
	}
	r.Restore(ck)
	if pc, ok := r.Pop(); !ok || pc != 20 {
		t.Errorf("after restore pop = %d,%v want 20", pc, ok)
	}
	// Wraparound: pushing more than capacity keeps the newest entries.
	r2 := NewRAS(2)
	for i := 1; i <= 5; i++ {
		r2.Push(i * 100)
	}
	if pc, _ := r2.Pop(); pc != 500 {
		t.Errorf("wrapped pop = %d, want 500", pc)
	}
	if pc, _ := r2.Pop(); pc != 400 {
		t.Errorf("wrapped pop = %d, want 400", pc)
	}
	if _, ok := r2.Pop(); ok {
		t.Error("RAS depth must cap at capacity")
	}
}

func TestPerceptronLearnsLinearCorrelation(t *testing.T) {
	// outcome = outcome 3 branches ago (a linearly separable function of
	// history): perceptrons nail this; bimodal cannot beat 50%.
	var hist []bool
	var trace []event
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 30000; i++ {
		var v bool
		if i < 3 {
			v = r.Intn(2) == 0
		} else {
			v = hist[i-3]
		}
		hist = append(hist, v)
		trace = append(trace, event{0x400, v})
	}
	p := NewPerceptron(10, 16)
	acc := accuracy(p, trace)
	if acc < 0.95 {
		t.Errorf("perceptron on linear history function: %.3f, want >= 0.95", acc)
	}
	bAcc := accuracy(NewBimodal(12), trace)
	if acc <= bAcc {
		t.Errorf("perceptron (%.3f) must beat bimodal (%.3f)", acc, bAcc)
	}
}

func TestPerceptronBiasOnly(t *testing.T) {
	p := NewPerceptron(10, 16)
	if acc := accuracy(p, biasedTrace(20000, 0x80, 0.95, 4)); acc < 0.90 {
		t.Errorf("perceptron on biased branch: %.3f", acc)
	}
	if p.SizeBits() == 0 || p.Name() != "perceptron" {
		t.Error("metadata wrong")
	}
}

func TestByNamePerceptron(t *testing.T) {
	if ByName("perceptron") == nil {
		t.Error("perceptron missing from registry")
	}
}

// TestWrongPathHistoryRepair drives the full speculative protocol the
// pipeline uses: push predicted outcomes at fetch, then on a misprediction
// restore the checkpoint and push the actual outcome. Accuracy on a
// patterned branch must match the clean (no wrong path) protocol.
func TestWrongPathHistoryRepair(t *testing.T) {
	pattern := []bool{true, true, false, true, false, false, true, false}
	for _, name := range []string{"gshare", "tage"} {
		var p DirPredictor
		if name == "gshare" {
			p = NewGShare(14, 12)
		} else {
			p = NewTAGE(13, 10, 9, []int{4, 8, 16, 32})
		}
		correct := 0
		n := 20000
		for i := 0; i < n; i++ {
			actual := pattern[i%len(pattern)]
			ck := p.Checkpoint()
			pred, meta := p.Predict(0x400)
			p.PushHistory(pred) // speculative: push the PREDICTION
			if pred == actual {
				correct++
			} else {
				p.Restore(ck) // repair: rewind, push the actual outcome
				p.PushHistory(actual)
			}
			p.Update(0x400, actual, meta)
		}
		acc := float64(correct) / float64(n)
		if acc < 0.97 {
			t.Errorf("%s under speculative-history protocol: %.3f, want >= 0.97", name, acc)
		}
	}
}

// TestLadderSpecsFresh ensures each constructor yields independent state.
func TestLadderSpecsFresh(t *testing.T) {
	for _, spec := range LadderSpecs() {
		a, b := spec.New(), spec.New()
		a.PushHistory(true)
		a.Update(0x40, true, Meta{})
		if b.Checkpoint() != (Hist{}) {
			t.Errorf("%s: constructors share state", spec.Name)
		}
	}
}

// foldRef is the original per-bit chunked-xor fold, kept as the oracle
// for the masked fast path Fold takes when n <= 64 and w >= n.
func foldRef(h Hist, n, w int) uint64 {
	if n <= 0 || w <= 0 {
		return 0
	}
	var bits, acc uint64
	got := 0
	for i := 0; i < n; i++ {
		var b uint64
		if i < 64 {
			b = (h[0] >> i) & 1
		} else if i < 128 {
			b = (h[1] >> (i - 64)) & 1
		}
		bits |= b << got
		got++
		if got == w {
			acc ^= bits
			bits, got = 0, 0
		}
	}
	acc ^= bits
	return acc & ((1 << w) - 1)
}

func TestFoldFastPathMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	widths := []int{1, 5, 15, 16, 17, 32, 63, 64, 65, 100, 128}
	for trial := 0; trial < 200; trial++ {
		h := Hist{r.Uint64(), r.Uint64()}
		for _, n := range widths {
			for _, w := range widths {
				if got, want := h.Fold(n, w), foldRef(h, n, w); got != want {
					t.Fatalf("Fold(%d,%d) on %x = %x, reference %x", n, w, h, got, want)
				}
			}
		}
	}
}
