package bpred

import (
	"math/rand"
	"testing"
)

// boolHist is the naive reference model for Hist: an explicit shift
// register of outcomes, newest first. It shares no code with Hist, so
// agreement is a real witness rather than an identity.
type boolHist []bool

func (b *boolHist) push(taken bool) {
	n := append(boolHist{taken}, *b...)
	if len(n) > 128 {
		n = n[:128]
	}
	*b = n
}

func (b boolHist) bit(i int) uint64 {
	if i < len(b) && b[i] {
		return 1
	}
	return 0
}

// fold folds the low n bits into w by chunked xor, built directly from
// the boolean stream.
func (b boolHist) fold(n, w int) uint64 {
	if n <= 0 || w <= 0 {
		return 0
	}
	var acc uint64
	for chunk := 0; chunk*w < n; chunk++ {
		var bits uint64
		for j := 0; j < w && chunk*w+j < n; j++ {
			bits |= b.bit(chunk*w+j) << j
		}
		acc ^= bits
	}
	return acc & ((1 << w) - 1)
}

// TestHistPushMatchesBoolReference is the Push word-boundary witness:
// after arbitrary outcome streams long enough to carry bits across the
// 64-bit word boundary many times, every one of the 128 retained bits
// must match the shift-register model.
func TestHistPushMatchesBoolReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var h Hist
	var ref boolHist
	for step := 0; step < 500; step++ {
		taken := r.Intn(2) == 1
		h.Push(taken)
		ref.push(taken)
		for i := 0; i < 128; i++ {
			var got uint64
			if i < 64 {
				got = (h[0] >> i) & 1
			} else {
				got = (h[1] >> (i - 64)) & 1
			}
			if got != ref.bit(i) {
				t.Fatalf("step %d: bit %d = %d, reference %d", step, i, got, ref.bit(i))
			}
		}
	}
}

// TestHistFoldSlowPathMatchesBoolReference is the Fold slow-path
// witness: for n > 64 (chunks spanning both words) and for n <= 64 with
// w < n (multiple chunks in the low word) the chunked xor must be
// bit-exact against the boolean-stream fold. The fast path is included
// as a control.
func TestHistFoldSlowPathMatchesBoolReference(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var h Hist
	var ref boolHist
	ns := []int{1, 2, 7, 13, 31, 63, 64, 65, 66, 96, 127, 128}
	ws := []int{1, 2, 3, 11, 12, 16, 31, 32, 63, 64}
	for step := 0; step < 300; step++ {
		taken := r.Intn(2) == 1
		h.Push(taken)
		ref.push(taken)
		if step%10 != 0 {
			continue
		}
		for _, n := range ns {
			for _, w := range ws {
				if got, want := h.Fold(n, w), ref.fold(n, w); got != want {
					t.Fatalf("step %d: Fold(%d,%d) = %#x, reference %#x (hist %x)",
						step, n, w, got, want, h)
				}
			}
		}
	}
}

// TestProbeConservation drives a synthetic resolution stream through a
// bare probe and requires every conservation invariant to hold, both
// internally (Check) and against externally tracked totals
// (CheckAgainst), including resolutions whose Meta was lost.
func TestProbeConservation(t *testing.T) {
	p := NewProbe(4)
	var resolves, misp int64
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		id := r.Intn(5)
		taken := r.Intn(2) == 1
		pred := r.Intn(4) != 0 // 75% correct
		mis := pred == false
		meta := &Meta{Pred: taken != mis, Weak: r.Intn(3) == 0, Provider: int8(r.Intn(3) - 1)}
		if i%17 == 0 {
			meta = nil // a RESOLVE whose DBB entry was recycled
		}
		p.ObserveResolve(id, taken, mis, meta)
		resolves++
		if mis {
			misp++
		}
	}
	rep := p.Report(nil)
	if err := rep.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if err := rep.CheckAgainst(resolves, misp); err != nil {
		t.Fatalf("CheckAgainst: %v", err)
	}
	if rep.Updates >= rep.Resolves {
		t.Fatalf("meta-less resolutions not excluded from updates: %d/%d", rep.Updates, rep.Resolves)
	}
	if len(rep.Branches) != 5 {
		t.Fatalf("got %d branch digests, want 5", len(rep.Branches))
	}
}

// TestProbeClassification pins the three classes on streams built to
// land squarely in each: a heavily biased branch, two regime-switching
// shapes (long same-direction runs, and strict alternation — zero
// conditional entropy despite a 100% transition rate), and an
// LCG-random branch that neither bias nor 2-bit history explains.
func TestProbeClassification(t *testing.T) {
	p := NewProbe(4)
	meta := Meta{}
	rnd := uint32(12345)
	for i := 0; i < 4000; i++ {
		p.ObserveResolve(0, i%100 != 0, false, &meta) // 99% taken
		p.ObserveResolve(1, (i/200)%2 == 0, false, &meta)
		p.ObserveResolve(2, i%2 == 0, false, &meta)
		rnd = rnd*1664525 + 1013904223
		p.ObserveResolve(3, rnd>>31 == 1, false, &meta)
	}
	rep := p.Report(nil)
	if err := rep.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	want := map[int]string{0: ClassBiased, 1: ClassRegime, 2: ClassRegime, 3: ClassRandom}
	for id, cls := range want {
		d := rep.Class(id)
		if d == nil {
			t.Fatalf("branch %d missing from report", id)
		}
		if d.Class != cls {
			t.Errorf("branch %d classified %q, want %q (bias %.3f trans %.3f entropy %.3f)",
				id, d.Class, cls, d.Bias, d.TransitionRate, d.Entropy)
		}
	}
	if got := rep.Classes[ClassRegime].Branches; got != 2 {
		t.Errorf("regime class totals: %d branches, want 2", got)
	}
}

// probeDrive runs the standard predictor protocol over a synthetic
// branch set with an attached probe, mirroring what the pipeline does at
// prediction and resolution, and returns the observed totals.
func probeDrive(d DirPredictor, p *Probe, iters int) (resolves, misp int64) {
	outcome := func(pc uint64, i int) bool {
		switch pc % 3 {
		case 0:
			return true // biased
		case 1:
			return (i/7)%2 == 0 // regime
		default:
			return (uint32(i)*2654435761)>>31 == 1 // hard
		}
	}
	pcs := []uint64{0x40, 0x44, 0x48, 0x4c, 0x81, 0x85}
	for i := 0; i < iters; i++ {
		pc := pcs[i%len(pcs)]
		pred, meta := d.Predict(pc)
		actual := outcome(pc, i)
		d.PushHistory(actual)
		d.Update(pc, actual, meta)
		p.ObserveResolve(int(pc%8), actual, pred != actual, &meta)
		resolves++
		if pred != actual {
			misp++
		}
	}
	return resolves, misp
}

// TestProbeTageTableEvents attaches the observatory to a TAGE predictor
// and requires the predictor-internal books (allocation churn, aliasing,
// survey occupancy, provider slots) to be populated and conserved after
// a real training run.
func TestProbeTageTableEvents(t *testing.T) {
	tg := NewTAGE(6, 6, 8, []int{4, 8, 16})
	p := NewProbe(8)
	p.Attach(tg)
	resolves, misp := probeDrive(tg, p, 8000)
	rep := p.Report(tg)
	if err := rep.CheckAgainst(resolves, misp); err != nil {
		t.Fatalf("CheckAgainst: %v", err)
	}
	if rep.Predictor != "tage" || rep.SizeBits != tg.SizeBits() {
		t.Errorf("report header wrong: %q %d", rep.Predictor, rep.SizeBits)
	}
	if rep.AllocTried == 0 {
		t.Error("no allocation attempts recorded despite mispredictions")
	}
	if rep.AllocPlaced > rep.AllocTried {
		t.Errorf("alloc books inconsistent: %d placed of %d tried", rep.AllocPlaced, rep.AllocTried)
	}
	var base *AliasReport
	for i := range rep.Aliasing {
		if rep.Aliasing[i].Name == "base" {
			base = &rep.Aliasing[i]
		}
	}
	if base == nil {
		t.Fatal("base table missing from aliasing books")
	}
	if base.Updates != resolves {
		t.Errorf("base table saw %d updates, want one per resolution (%d)", base.Updates, resolves)
	}
	if base.Touched == 0 || base.Touched > base.Entries {
		t.Errorf("base touched = %d of %d entries", base.Touched, base.Entries)
	}
	if len(rep.Survey) == 0 {
		t.Fatal("no survey rows")
	}
	for _, s := range rep.Survey {
		if s.Occupied > s.Entries || s.Weak > s.Occupied {
			t.Errorf("survey row %s inconsistent: %+v", s.Name, s)
		}
	}
	if len(rep.Providers) == 0 || rep.Providers[0].Table != "base" {
		t.Errorf("provider slots not named from the predictor: %+v", rep.Providers)
	}
}

// TestProbeTournamentChooserArms pins the chooser-arm balance surface:
// with an attached tournament predictor, provider slots are the named
// arms and their use counts sum to the update total.
func TestProbeTournamentChooserArms(t *testing.T) {
	tn := NewTournament(8, 8)
	p := NewProbe(8)
	p.Attach(tn)
	resolves, misp := probeDrive(tn, p, 6000)
	rep := p.Report(tn)
	if err := rep.CheckAgainst(resolves, misp); err != nil {
		t.Fatalf("CheckAgainst: %v", err)
	}
	var sum int64
	seen := map[string]bool{}
	for _, pr := range rep.Providers {
		seen[pr.Table] = true
		sum += pr.Use
	}
	if !seen["bimodal"] || !seen["gshare"] {
		t.Errorf("chooser arms not surfaced: %+v", rep.Providers)
	}
	if sum != rep.Updates {
		t.Errorf("arm use sums to %d, want %d", sum, rep.Updates)
	}
	names := map[string]bool{}
	for _, s := range rep.Survey {
		names[s.Name] = true
	}
	if !names["chooser"] {
		t.Errorf("chooser table missing from survey: %+v", rep.Survey)
	}
}

// TestProbeLadderAllRungs attaches a probe to every ladder rung plus the
// perceptron, drives the full protocol, and requires conservation and a
// non-empty survey on each — no predictor gets to opt out silently.
func TestProbeLadderAllRungs(t *testing.T) {
	preds := []DirPredictor{
		NewBimodal(8), NewGShare(8, 8), NewTournament(8, 8),
		NewTAGE(6, 6, 8, []int{4, 8, 16}),
		NewISLTAGE(6, 6, 8, []int{4, 8, 16}, 4, 6),
		NewPerceptron(6, 16),
	}
	for _, d := range preds {
		p := NewProbe(8)
		p.Attach(d)
		resolves, misp := probeDrive(d, p, 4000)
		rep := p.Report(d)
		if err := rep.CheckAgainst(resolves, misp); err != nil {
			t.Errorf("%s: CheckAgainst: %v", d.Name(), err)
		}
		if len(rep.Survey) == 0 {
			t.Errorf("%s: no survey rows", d.Name())
		}
		if len(rep.Aliasing) == 0 {
			t.Errorf("%s: no aliasing books", d.Name())
		}
	}
}

// TestProbeSteadyStateZeroAllocs pins the allocation-free contract of
// the observation path itself: after warm-up, observing resolutions and
// training an attached ISL-TAGE predictor allocates nothing.
func TestProbeSteadyStateZeroAllocs(t *testing.T) {
	d := NewISLTAGE(6, 6, 8, []int{4, 8, 16}, 4, 6)
	p := NewProbe(8)
	p.Attach(d)
	probeDrive(d, p, 2000) // warm up
	i := 2000
	avg := testing.AllocsPerRun(50, func() {
		pc := uint64(0x40 + 4*(i%6))
		pred, meta := d.Predict(pc)
		actual := i%7 == 0
		d.PushHistory(actual)
		d.Update(pc, actual, meta)
		p.ObserveResolve(int(pc%8), actual, pred != actual, &meta)
		i++
	})
	if avg != 0 {
		t.Fatalf("steady-state observation allocates %.1f per resolution, want 0", avg)
	}
}
