// Package bpred implements the conditional branch direction predictors,
// branch target buffer, and return address stack of the vanguard machine.
//
// The default machine predictor matches Table 1 of the paper ("PTLSim
// default: GShare, 24 KB 3-table direction predictor"): a three-table
// combining predictor (bimodal + gshare + chooser). For the Section 5.3
// sensitivity study the package provides a ladder of ever-improving
// predictors culminating in a 64KB ISL-TAGE-class design (TAGE with a loop
// predictor and a statistical corrector).
//
// Global history is updated speculatively at prediction time; the
// Checkpoint/Restore pair lets the pipeline repair history on a
// misprediction, and Meta carries everything an out-of-place update (via
// the Decomposed Branch Buffer) needs to train the tables that produced
// the prediction.
package bpred

// Hist is the global branch history register: bit 0 is the most recent
// outcome. 128 bits is enough for the longest TAGE history length used.
type Hist [2]uint64

// Push shifts a new outcome into the history.
func (h *Hist) Push(taken bool) {
	carry := h[0] >> 63
	h[0] <<= 1
	if taken {
		h[0] |= 1
	}
	h[1] = h[1]<<1 | carry
}

// Fold compresses the low n bits of history into w bits by chunked xor,
// the standard TAGE index-folding construction.
func (h Hist) Fold(n, w int) uint64 {
	if n <= 0 || w <= 0 {
		return 0
	}
	// Fast path: with at most one chunk (n <= w) over the low word, the
	// fold degenerates to masking the low n bits — no per-bit loop. This
	// covers every stock predictor (histBits <= 64 folded into w >= n).
	if n <= 64 && w >= n {
		if n == 64 {
			return h[0]
		}
		return h[0] & (1<<uint(n) - 1)
	}
	var bits uint64
	var acc uint64
	got := 0
	for i := 0; i < n; i++ {
		var b uint64
		if i < 64 {
			b = (h[0] >> i) & 1
		} else if i < 128 {
			b = (h[1] >> (i - 64)) & 1
		}
		bits |= b << got
		got++
		if got == w {
			acc ^= bits
			bits, got = 0, 0
		}
	}
	acc ^= bits
	return acc & ((1 << w) - 1)
}

// Meta carries the prediction-time state a later Update needs to train the
// structures that produced the prediction. The paper's DBB stores 24 bits
// per entry (16 bits of table indices + 8 bits of metadata); our Meta is a
// behavioural superset — the DBB model accounts for the architected 24
// bits, while Meta carries the simulator-level equivalents.
type Meta struct {
	Hist     Hist // global history at prediction time
	Pred     bool // the direction predicted
	Provider int8 // TAGE provider table (-1 = base), chooser arm for tournament
	AltPred  bool // TAGE alternate prediction
	TagePred bool // TAGE's own prediction before any corrector override
	Weak     bool // the provider entry was newly allocated / low confidence
	LoopHit  bool // ISL-TAGE loop predictor supplied the prediction
}

// DirPredictor is a conditional branch direction predictor.
//
// Protocol: the front end calls Predict, pushes its chosen direction into
// history with PushHistory, and remembers a Checkpoint alongside the
// in-flight branch. At resolution, Update trains the tables with the
// actual outcome; on a misprediction the front end calls Restore with the
// branch's checkpoint and PushHistory with the actual outcome.
type DirPredictor interface {
	Name() string
	SizeBits() int // storage budget, for the ladder study
	Predict(pc uint64) (taken bool, meta Meta)
	Update(pc uint64, taken bool, meta Meta)
	PushHistory(taken bool)
	Checkpoint() Hist
	Restore(Hist)
}

// ctr2 is a 2-bit saturating counter; taken when >= 2.
type ctr2 uint8

// surveyCtr2 summarizes a 2-bit-counter table for the observatory:
// occupied entries have moved off their reset value; weak entries are
// occupied but sit in the central low-confidence band (1, 2).
func surveyCtr2(name string, t []ctr2, reset ctr2) TableSurvey {
	s := TableSurvey{Name: name, Entries: len(t)}
	for _, c := range t {
		if c == reset {
			continue
		}
		s.Occupied++
		if c == 1 || c == 2 {
			s.Weak++
		}
	}
	return s
}

func (c ctr2) taken() bool { return c >= 2 }
func (c ctr2) inc() ctr2 {
	if c < 3 {
		return c + 1
	}
	return c
}
func (c ctr2) dec() ctr2 {
	if c > 0 {
		return c - 1
	}
	return c
}
func (c ctr2) train(taken bool) ctr2 {
	if taken {
		return c.inc()
	}
	return c.dec()
}

// Static predicts a fixed direction; the paper's resolve instructions are
// statically predicted not-taken.
type Static struct{ Taken bool }

// Name implements DirPredictor.
func (s *Static) Name() string {
	if s.Taken {
		return "static-taken"
	}
	return "static-nottaken"
}

// SizeBits implements DirPredictor.
func (s *Static) SizeBits() int { return 0 }

// Predict implements DirPredictor.
func (s *Static) Predict(pc uint64) (bool, Meta) { return s.Taken, Meta{Pred: s.Taken} }

// Update implements DirPredictor.
func (s *Static) Update(pc uint64, taken bool, m Meta) {}

// PushHistory implements DirPredictor.
func (s *Static) PushHistory(bool) {}

// Checkpoint implements DirPredictor.
func (s *Static) Checkpoint() Hist { return Hist{} }

// Restore implements DirPredictor.
func (s *Static) Restore(Hist) {}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []ctr2
	mask  uint64

	probe   *Probe
	probeTb int
}

// NewBimodal builds a bimodal predictor with 2^logSize counters.
func NewBimodal(logSize int) *Bimodal {
	n := 1 << logSize
	t := make([]ctr2, n)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &Bimodal{table: t, mask: uint64(n - 1)}
}

// Name implements DirPredictor.
func (b *Bimodal) Name() string { return "bimodal" }

// SizeBits implements DirPredictor.
func (b *Bimodal) SizeBits() int { return len(b.table) * 2 }

// Predict implements DirPredictor.
func (b *Bimodal) Predict(pc uint64) (bool, Meta) {
	t := b.table[pc&b.mask].taken()
	return t, Meta{Pred: t}
}

// Update implements DirPredictor.
func (b *Bimodal) Update(pc uint64, taken bool, m Meta) {
	i := pc & b.mask
	if b.probe != nil {
		b.probe.noteEntry(b.probeTb, i, pc)
	}
	b.table[i] = b.table[i].train(taken)
}

// AttachProbe implements Observable.
func (b *Bimodal) AttachProbe(p *Probe) {
	b.probe = p
	p.setProviders("", "bimodal")
	b.probeTb = p.registerTable("bimodal", len(b.table))
}

// Survey implements Surveyor.
func (b *Bimodal) Survey() []TableSurvey {
	return []TableSurvey{surveyCtr2("bimodal", b.table, 1)}
}

// PushHistory implements DirPredictor.
func (b *Bimodal) PushHistory(bool) {}

// Checkpoint implements DirPredictor.
func (b *Bimodal) Checkpoint() Hist { return Hist{} }

// Restore implements DirPredictor.
func (b *Bimodal) Restore(Hist) {}

// GShare xors global history into the counter index.
type GShare struct {
	table    []ctr2
	mask     uint64
	histBits int
	hist     Hist

	probe   *Probe
	probeTb int
}

// NewGShare builds a gshare predictor with 2^logSize counters and the
// given history length.
func NewGShare(logSize, histBits int) *GShare {
	n := 1 << logSize
	t := make([]ctr2, n)
	for i := range t {
		t[i] = 1
	}
	return &GShare{table: t, mask: uint64(n - 1), histBits: histBits}
}

// Name implements DirPredictor.
func (g *GShare) Name() string { return "gshare" }

// SizeBits implements DirPredictor.
func (g *GShare) SizeBits() int { return len(g.table) * 2 }

func (g *GShare) index(pc uint64, h Hist) uint64 {
	return (pc ^ h.Fold(g.histBits, 64)) & g.mask
}

// Predict implements DirPredictor.
func (g *GShare) Predict(pc uint64) (bool, Meta) {
	t := g.table[g.index(pc, g.hist)].taken()
	return t, Meta{Hist: g.hist, Pred: t}
}

// Update implements DirPredictor. The prediction-time history carried in
// meta selects the counter, so out-of-place updates through the DBB train
// the entry that actually produced the prediction.
func (g *GShare) Update(pc uint64, taken bool, m Meta) {
	i := g.index(pc, m.Hist)
	if g.probe != nil {
		g.probe.noteEntry(g.probeTb, i, pc)
	}
	g.table[i] = g.table[i].train(taken)
}

// AttachProbe implements Observable.
func (g *GShare) AttachProbe(p *Probe) {
	g.probe = p
	p.setProviders("", "gshare")
	g.probeTb = p.registerTable("gshare", len(g.table))
}

// Survey implements Surveyor.
func (g *GShare) Survey() []TableSurvey {
	return []TableSurvey{surveyCtr2("gshare", g.table, 1)}
}

// PushHistory implements DirPredictor.
func (g *GShare) PushHistory(taken bool) { g.hist.Push(taken) }

// Checkpoint implements DirPredictor.
func (g *GShare) Checkpoint() Hist { return g.hist }

// Restore implements DirPredictor.
func (g *GShare) Restore(h Hist) { g.hist = h }

// Tournament is the Table 1 machine predictor: three equal tables —
// bimodal, gshare, and a chooser trained toward whichever component was
// right — totalling 24KB at the default logSize of 15 (3 × 32K × 2b).
type Tournament struct {
	bim      []ctr2
	gsh      []ctr2
	chooser  []ctr2 // >=2 selects gshare
	mask     uint64
	histBits int
	hist     Hist

	probe    *Probe
	probeBim int
	probeGsh int
}

// NewTournament builds the combining predictor; logSize counters per table.
func NewTournament(logSize, histBits int) *Tournament {
	n := 1 << logSize
	t := &Tournament{
		bim: make([]ctr2, n), gsh: make([]ctr2, n), chooser: make([]ctr2, n),
		mask: uint64(n - 1), histBits: histBits,
	}
	for i := 0; i < n; i++ {
		t.bim[i], t.gsh[i], t.chooser[i] = 1, 1, 2
	}
	return t
}

// NewDefault returns the Table 1 configuration: a 24KB three-table
// predictor (32K entries per table) with 16 bits of global history.
func NewDefault() *Tournament { return NewTournament(15, 16) }

// Name implements DirPredictor.
func (t *Tournament) Name() string { return "gshare-3table" }

// SizeBits implements DirPredictor.
func (t *Tournament) SizeBits() int { return (len(t.bim) + len(t.gsh) + len(t.chooser)) * 2 }

func (t *Tournament) gindex(pc uint64, h Hist) uint64 {
	return (pc ^ h.Fold(t.histBits, 64)) & t.mask
}

// Predict implements DirPredictor.
func (t *Tournament) Predict(pc uint64) (bool, Meta) {
	bi := pc & t.mask
	gi := t.gindex(pc, t.hist)
	useG := t.chooser[bi].taken()
	var pred bool
	var provider int8
	if useG {
		pred, provider = t.gsh[gi].taken(), 1
	} else {
		pred, provider = t.bim[bi].taken(), 0
	}
	return pred, Meta{Hist: t.hist, Pred: pred, Provider: provider}
}

// Update implements DirPredictor.
func (t *Tournament) Update(pc uint64, taken bool, m Meta) {
	bi := pc & t.mask
	gi := t.gindex(pc, m.Hist)
	if t.probe != nil {
		t.probe.noteEntry(t.probeBim, bi, pc)
		t.probe.noteEntry(t.probeGsh, gi, pc)
	}
	bRight := t.bim[bi].taken() == taken
	gRight := t.gsh[gi].taken() == taken
	if bRight != gRight {
		t.chooser[bi] = t.chooser[bi].train(gRight)
	}
	t.bim[bi] = t.bim[bi].train(taken)
	t.gsh[gi] = t.gsh[gi].train(taken)
}

// AttachProbe implements Observable. The provider-slot names make the
// observatory's chooser-arm balance legible: Meta.Provider selects the
// arm, so providerUse["bimodal"] vs providerUse["gshare"] is exactly the
// chooser's runtime routing.
func (t *Tournament) AttachProbe(p *Probe) {
	t.probe = p
	p.setProviders("", "bimodal", "gshare")
	t.probeBim = p.registerTable("bimodal", len(t.bim))
	t.probeGsh = p.registerTable("gshare", len(t.gsh))
}

// Survey implements Surveyor.
func (t *Tournament) Survey() []TableSurvey {
	return []TableSurvey{
		surveyCtr2("bimodal", t.bim, 1),
		surveyCtr2("gshare", t.gsh, 1),
		surveyCtr2("chooser", t.chooser, 2),
	}
}

// PushHistory implements DirPredictor.
func (t *Tournament) PushHistory(taken bool) { t.hist.Push(taken) }

// Checkpoint implements DirPredictor.
func (t *Tournament) Checkpoint() Hist { return t.hist }

// Restore implements DirPredictor.
func (t *Tournament) Restore(h Hist) { t.hist = h }
