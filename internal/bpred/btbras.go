package bpred

// BTB is a direct-mapped branch target buffer (Table 1: 4K entries) mapping
// branch PCs to their taken targets. For the fixed-width vanguard ISA the
// front end can decode targets directly from the fetch group, but the BTB
// is still modelled (and its hit rate reported) for fidelity of the
// machine description.
type BTB struct {
	tags    []uint64
	targets []int
	valid   []bool
	mask    uint64
	hits    uint64
	misses  uint64
}

// NewBTB builds a BTB with 2^logSize entries.
func NewBTB(logSize int) *BTB {
	n := 1 << logSize
	return &BTB{
		tags:    make([]uint64, n),
		targets: make([]int, n),
		valid:   make([]bool, n),
		mask:    uint64(n - 1),
	}
}

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target int, ok bool) {
	i := pc & b.mask
	if b.valid[i] && b.tags[i] == pc {
		b.hits++
		return b.targets[i], true
	}
	b.misses++
	return 0, false
}

// Insert records a taken branch's target.
func (b *BTB) Insert(pc uint64, target int) {
	i := pc & b.mask
	b.tags[i], b.targets[i], b.valid[i] = pc, target, true
}

// HitRate returns the fraction of lookups that hit.
func (b *BTB) HitRate() float64 {
	t := b.hits + b.misses
	if t == 0 {
		return 0
	}
	return float64(b.hits) / float64(t)
}

// Lookups returns the raw hit/miss counters (surfaced in run reports).
func (b *BTB) Lookups() (hits, misses uint64) { return b.hits, b.misses }

// RAS is the return address stack (Table 1: 64 entries). It wraps rather
// than overflowing, like real hardware.
type RAS struct {
	stack      []int
	top        int // index of next push slot
	depth      int // live entries, capped at len(stack)
	underflows uint64
}

// NewRAS builds a RAS with the given number of entries.
func NewRAS(entries int) *RAS {
	return &RAS{stack: make([]int, entries)}
}

// Push records a return address at a call.
func (r *RAS) Push(retPC int) {
	r.stack[r.top] = retPC
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return. ok is false when the stack has
// underflowed (the prediction is garbage and the caller should expect a
// misfetch).
func (r *RAS) Pop() (retPC int, ok bool) {
	if r.depth == 0 {
		r.underflows++
		return 0, false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return r.stack[r.top], true
}

// RASCkpt snapshots the stack pointer state for misprediction repair.
type RASCkpt struct {
	top, depth int
}

// Checkpoint captures the pointer state (entries themselves may be
// clobbered by deep wrong-path call chains — a modelled imperfection real
// hardware shares).
func (r *RAS) Checkpoint() RASCkpt { return RASCkpt{r.top, r.depth} }

// Restore rewinds to a checkpoint.
func (r *RAS) Restore(c RASCkpt) { r.top, r.depth = c.top, c.depth }

// Underflows returns how many predictions were attempted on an empty
// stack (each is a likely misfetch; surfaced in run reports).
func (r *RAS) Underflows() uint64 { return r.underflows }
