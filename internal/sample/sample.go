// Package sample implements the cycle-window time-series sampler: every N
// simulated cycles the pipeline closes a "window" recording how much each
// key counter moved during that interval, so phase behaviour — IPC
// collapses, misprediction clusters, DBB fill — is visible *inside* a run
// rather than only as whole-run aggregates.
//
// The sampler is built for the simulator's allocation-free hot path: the
// window ring is preallocated at construction and Record never allocates,
// so attaching a sampler cannot perturb the zero-alloc steady-state gate.
// When the ring fills, the oldest windows are overwritten (and counted as
// dropped), mirroring the trace.Ring post-mortem discipline.
//
// Windows telescope: each one stores deltas against the previous boundary
// snapshot, so the sum of any counter over all recorded windows equals the
// whole-run aggregate (TestSamplerWindows in internal/pipeline pins this).
package sample

import "vanguard/internal/attr"

// Counters is the cumulative counter snapshot the pipeline hands the
// sampler at each window boundary. The sampler differences consecutive
// snapshots; the pipeline never computes deltas itself.
type Counters struct {
	Committed      int64
	Issued         int64
	BrMispredicts  int64
	ResMispredicts int64
	RetMispredicts int64
	Resolves       int64
	Predicts       int64
	Flushes        int64

	// Issue-head fetch-stall breakdown (cumulative stall cycles by cause).
	StallEmpty   int64
	StallOperand int64
	StallBranch  int64
	StallResolve int64
	StallFU      int64

	// Memory-system demand misses by level.
	L1IMisses int64
	L1DMisses int64
	L2Misses  int64

	// Attr is the cumulative per-cause slot attribution (all zero unless
	// the machine runs with attribution). A fixed-size array keeps
	// Counters comparable, which Flush's no-movement check relies on.
	Attr [attr.NumCauses]int64
}

// Window is one recorded interval: cycles [Start, End), counter deltas
// over that interval, and the DBB occupancy high-water observed inside it.
// Field names are the stable snake_case keys of the telemetry schema's
// samples section.
type Window struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`

	Committed      int64 `json:"committed"`
	Issued         int64 `json:"issued"`
	BrMispredicts  int64 `json:"br_mispredicts"`
	ResMispredicts int64 `json:"res_mispredicts"`
	RetMispredicts int64 `json:"ret_mispredicts"`
	Resolves       int64 `json:"resolves"`
	Predicts       int64 `json:"predicts"`
	Flushes        int64 `json:"flushes"`

	StallEmpty   int64 `json:"stall_empty"`
	StallOperand int64 `json:"stall_operand"`
	StallBranch  int64 `json:"stall_branch"`
	StallResolve int64 `json:"stall_resolve"`
	StallFU      int64 `json:"stall_fu"`

	L1IMisses int64 `json:"l1i_misses"`
	L1DMisses int64 `json:"l1d_misses"`
	L2Misses  int64 `json:"l2_misses"`

	DBBHighWater int `json:"dbb_high_water"`

	// Attr holds the window's per-cause issue-slot deltas in attr.Causes
	// order — the per-window CPI stack. Present only when the producing
	// machine sampled with attribution enabled.
	Attr []int64 `json:"attr,omitempty"`
}

// Cycles returns the window length.
func (w *Window) Cycles() int64 { return w.End - w.Start }

// IPC returns committed instructions per cycle within the window.
func (w *Window) IPC() float64 {
	if c := w.Cycles(); c > 0 {
		return float64(w.Committed) / float64(c)
	}
	return 0
}

// Mispredicts returns all misprediction kinds summed.
func (w *Window) Mispredicts() int64 {
	return w.BrMispredicts + w.ResMispredicts + w.RetMispredicts
}

// Series is the finished time series a run exports: the configured window
// length, how many early windows the bounded ring overwrote, and the
// retained windows oldest-first.
type Series struct {
	WindowCycles int64    `json:"window_cycles"`
	Dropped      int64    `json:"dropped,omitempty"`
	Windows      []Window `json:"windows"`
}

// Values extracts one float64 per window via f — the shape the textplot
// sparklines and CSV writers consume.
func (s *Series) Values(f func(*Window) float64) []float64 {
	out := make([]float64, len(s.Windows))
	for i := range s.Windows {
		out[i] = f(&s.Windows[i])
	}
	return out
}

// DefaultWindow is the window length (cycles) CLIs use when sampling is
// requested without an explicit size.
const DefaultWindow = 10_000

// defaultCap bounds the preallocated ring: at the default window this
// retains the last ~41M cycles of any run before overwriting.
const defaultCap = 4096

// Sampler accumulates windows into a preallocated ring. One sampler
// belongs to one machine (it is not safe for concurrent use, matching the
// one-machine-per-goroutine contract).
type Sampler struct {
	window  int64
	nextAt  int64
	ring    []Window
	next    int
	wrapped bool
	dropped int64

	prevStart int64
	prev      Counters

	// attrOn marks that the ring slots carry preallocated Attr slices
	// (EnableAttr); Record then fills per-cause deltas in place.
	attrOn bool
}

// New builds a sampler with the given window length in cycles (<= 0
// selects DefaultWindow) and ring capacity in windows (<= 0 selects a
// 4096-window ring). All storage is allocated here; Record is
// allocation-free.
func New(windowCycles int64, capWindows int) *Sampler {
	if windowCycles <= 0 {
		windowCycles = DefaultWindow
	}
	if capWindows <= 0 {
		capWindows = defaultCap
	}
	return &Sampler{
		window: windowCycles,
		nextAt: windowCycles,
		ring:   make([]Window, capWindows),
	}
}

// EnableAttr preallocates a per-cause slot-delta slice for every ring
// window (one backing array, full-capacity sub-slices), so sampled runs
// with attribution record per-window CPI stacks without allocating in
// Record. Call once, before the first Record.
func (s *Sampler) EnableAttr() {
	n := int(attr.NumCauses)
	backing := make([]int64, len(s.ring)*n)
	for i := range s.ring {
		s.ring[i].Attr = backing[i*n : (i+1)*n : (i+1)*n]
	}
	s.attrOn = true
}

// Window returns the configured window length in cycles.
func (s *Sampler) Window() int64 { return s.window }

// NextAt returns the cycle at which the current window closes; callers
// check `now >= NextAt()` (one compare) before paying for Record.
func (s *Sampler) NextAt() int64 { return s.nextAt }

// Record closes the current window at cycle now against the cumulative
// snapshot c, storing deltas since the previous boundary. dbbHigh is the
// occupancy high-water the caller tracked inside the window.
func (s *Sampler) Record(now int64, c Counters, dbbHigh int) {
	w := Window{
		Start: s.prevStart,
		End:   now,

		Committed:      c.Committed - s.prev.Committed,
		Issued:         c.Issued - s.prev.Issued,
		BrMispredicts:  c.BrMispredicts - s.prev.BrMispredicts,
		ResMispredicts: c.ResMispredicts - s.prev.ResMispredicts,
		RetMispredicts: c.RetMispredicts - s.prev.RetMispredicts,
		Resolves:       c.Resolves - s.prev.Resolves,
		Predicts:       c.Predicts - s.prev.Predicts,
		Flushes:        c.Flushes - s.prev.Flushes,

		StallEmpty:   c.StallEmpty - s.prev.StallEmpty,
		StallOperand: c.StallOperand - s.prev.StallOperand,
		StallBranch:  c.StallBranch - s.prev.StallBranch,
		StallResolve: c.StallResolve - s.prev.StallResolve,
		StallFU:      c.StallFU - s.prev.StallFU,

		L1IMisses: c.L1IMisses - s.prev.L1IMisses,
		L1DMisses: c.L1DMisses - s.prev.L1DMisses,
		L2Misses:  c.L2Misses - s.prev.L2Misses,

		DBBHighWater: dbbHigh,
	}
	if s.wrapped {
		s.dropped++
	}
	if s.attrOn {
		// Reuse the slot's preallocated slice across the overwrite.
		w.Attr = s.ring[s.next].Attr
		for i := range w.Attr {
			w.Attr[i] = c.Attr[i] - s.prev.Attr[i]
		}
	}
	s.ring[s.next] = w
	s.next++
	if s.next == len(s.ring) {
		s.next, s.wrapped = 0, true
	}
	s.prevStart = now
	s.prev = c
	// Re-anchor rather than accumulate, so a caller that closes a window
	// late (it checks boundaries once per cycle) does not immediately owe
	// another one.
	s.nextAt = now + s.window
}

// Flush closes the final (possibly partial) window at end of run. It
// records nothing when no cycles passed and no counter moved since the
// last boundary, so the telescoping-sum property holds exactly.
func (s *Sampler) Flush(now int64, c Counters, dbbHigh int) {
	if now == s.prevStart && c == s.prev {
		return
	}
	s.Record(now, c, dbbHigh)
}

// Len returns the number of retained windows.
func (s *Sampler) Len() int {
	if s.wrapped {
		return len(s.ring)
	}
	return s.next
}

// Dropped returns how many windows were overwritten after the ring filled.
func (s *Sampler) Dropped() int64 { return s.dropped }

// Series copies the retained windows out, oldest first. Call after the
// run; this is the one allocating method.
func (s *Sampler) Series() *Series {
	out := &Series{WindowCycles: s.window, Dropped: s.dropped}
	if !s.wrapped {
		out.Windows = append([]Window(nil), s.ring[:s.next]...)
	} else {
		out.Windows = make([]Window, 0, len(s.ring))
		out.Windows = append(out.Windows, s.ring[s.next:]...)
		out.Windows = append(out.Windows, s.ring[:s.next]...)
	}
	if s.attrOn {
		// Detach from the ring's backing array: the series outlives the
		// sampler and must not alias reusable storage.
		for i := range out.Windows {
			out.Windows[i].Attr = append([]int64(nil), out.Windows[i].Attr...)
		}
	}
	return out
}
