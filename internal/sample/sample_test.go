package sample

import (
	"testing"
)

// counters builds a cumulative snapshot that grew linearly to cycle n.
func counters(n int64) Counters {
	return Counters{
		Committed: 2 * n, Issued: 3 * n,
		BrMispredicts: n / 10, Resolves: n / 5, Predicts: n / 5,
		StallEmpty: n / 4, L1DMisses: n / 7,
	}
}

func TestWindowsTelescope(t *testing.T) {
	s := New(100, 16)
	var now int64
	for now = 100; now <= 1000; now += 100 {
		s.Record(now, counters(now), int(now/100))
	}
	final := counters(950)
	s.Flush(950, final, 3) // partial tail window after the last boundary...

	// (Flush at 950 < last Record at 1000 would be wrong usage; redo with a
	// clean sequence instead.)
	s = New(100, 16)
	for now = 100; now <= 900; now += 100 {
		s.Record(now, counters(now), int(now/100))
	}
	final = counters(950)
	s.Flush(950, final, 3)

	sr := s.Series()
	if sr.WindowCycles != 100 {
		t.Fatalf("WindowCycles = %d, want 100", sr.WindowCycles)
	}
	if len(sr.Windows) != 10 {
		t.Fatalf("got %d windows, want 10 (9 full + 1 partial)", len(sr.Windows))
	}
	var sum Counters
	var prevEnd int64
	for i, w := range sr.Windows {
		if w.Start != prevEnd {
			t.Fatalf("window %d starts at %d, want contiguous %d", i, w.Start, prevEnd)
		}
		prevEnd = w.End
		sum.Committed += w.Committed
		sum.Issued += w.Issued
		sum.BrMispredicts += w.BrMispredicts
		sum.Resolves += w.Resolves
		sum.Predicts += w.Predicts
		sum.StallEmpty += w.StallEmpty
		sum.L1DMisses += w.L1DMisses
	}
	if prevEnd != 950 {
		t.Errorf("last window ends at %d, want 950", prevEnd)
	}
	want := counters(950)
	if sum.Committed != want.Committed || sum.Issued != want.Issued ||
		sum.BrMispredicts != want.BrMispredicts || sum.Resolves != want.Resolves ||
		sum.StallEmpty != want.StallEmpty || sum.L1DMisses != want.L1DMisses {
		t.Errorf("window sums %+v do not telescope to the aggregates %+v", sum, want)
	}
	if sr.Windows[9].Cycles() != 50 {
		t.Errorf("partial window length = %d, want 50", sr.Windows[9].Cycles())
	}
}

func TestFlushNoOpWhenNothingHappened(t *testing.T) {
	s := New(100, 4)
	c := counters(100)
	s.Record(100, c, 1)
	s.Flush(100, c, 1) // same cycle, same counters: nothing to close
	if s.Len() != 1 {
		t.Fatalf("Len = %d after no-op flush, want 1", s.Len())
	}
	// Same cycle but a counter moved (resolution work on the final cycle):
	// the flush must still record it so sums stay exact.
	c.Committed++
	s.Flush(100, c, 1)
	if s.Len() != 2 {
		t.Fatalf("Len = %d after counter-moving flush, want 2", s.Len())
	}
	got := s.Series().Windows[1]
	if got.Committed != 1 || got.Cycles() != 0 {
		t.Errorf("zero-length flush window = %+v, want committed=1 cycles=0", got)
	}
}

func TestRingOverflowKeepsNewestOldestFirst(t *testing.T) {
	s := New(10, 4)
	for i := int64(1); i <= 7; i++ {
		s.Record(i*10, counters(i*10), 0)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", s.Dropped())
	}
	sr := s.Series()
	if sr.Dropped != 3 {
		t.Errorf("Series.Dropped = %d, want 3", sr.Dropped)
	}
	wantStarts := []int64{30, 40, 50, 60}
	for i, w := range sr.Windows {
		if w.Start != wantStarts[i] {
			t.Errorf("window %d start = %d, want %d (oldest-first after wrap)", i, w.Start, wantStarts[i])
		}
	}
}

func TestDefaults(t *testing.T) {
	s := New(0, 0)
	if s.Window() != DefaultWindow {
		t.Errorf("Window = %d, want %d", s.Window(), DefaultWindow)
	}
	if len(s.ring) != defaultCap {
		t.Errorf("cap = %d, want %d", len(s.ring), defaultCap)
	}
	if s.NextAt() != DefaultWindow {
		t.Errorf("NextAt = %d, want %d", s.NextAt(), DefaultWindow)
	}
}

// TestRecordDoesNotAllocate pins the sampler's hot-path contract: once
// constructed, closing windows (including ring wrap-around) is
// allocation-free, so sampling cannot break the simulator's steady-state
// zero-alloc gate.
func TestRecordDoesNotAllocate(t *testing.T) {
	s := New(10, 8)
	var now int64
	if allocs := testing.AllocsPerRun(1000, func() {
		now += 10
		s.Record(now, counters(now), 2)
	}); allocs != 0 {
		t.Fatalf("Record allocates: %v allocs/op", allocs)
	}
}

func TestSeriesValues(t *testing.T) {
	s := New(10, 8)
	s.Record(10, Counters{Committed: 5}, 0)
	s.Record(20, Counters{Committed: 25}, 0)
	vals := s.Series().Values(func(w *Window) float64 { return w.IPC() })
	if len(vals) != 2 || vals[0] != 0.5 || vals[1] != 2.0 {
		t.Errorf("IPC values = %v, want [0.5 2]", vals)
	}
}
