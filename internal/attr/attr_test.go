package attr

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestCauseKeysDistinct(t *testing.T) {
	seen := map[string]Cause{}
	for _, c := range Causes() {
		k := c.Key()
		if k == "" {
			t.Fatalf("cause %d has no key", c)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("causes %d and %d share key %q", prev, c, k)
		}
		seen[k] = c
	}
	if len(seen) != int(NumCauses) {
		t.Fatalf("got %d keys, want %d", len(seen), NumCauses)
	}
}

// TestConservation pins the core invariant: however charges are mixed,
// slots sum to cycles × width and the per-ID splits match the aggregates.
func TestConservation(t *testing.T) {
	r := NewRecorder(16, 3, 4)
	r.ChargeCycle(4, Fetch, 0)          // full issue: cause ignored
	r.ChargeCycle(2, CondWait, 1)       // 2 slots wait on branch 1
	r.ChargeCycle(0, ResolveWindow, 2)  // 4 slots in branch 2's window
	r.ChargeCycle(1, LoadWait, 7)       // 3 slots wait on the load at pc 7
	r.ChargeCycle(0, BrMispredict, 3)   // refill bubble for branch 3
	r.ChargeCycle(0, ResMispredict, 2)  // resolve-fire bubble for branch 2
	r.ChargeCycle(3, FUContention, 0)   // structural
	r.MoveWrongPath(BrMispredict, 3, 2) // 2 issued slots were wrong-path
	r.NoteDBBOverflow()

	rep := r.Report()
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 7 || rep.Width != 4 {
		t.Fatalf("cycles=%d width=%d, want 7 and 4", rep.Cycles, rep.Width)
	}
	if got := rep.SlotSum(); got != 28 {
		t.Fatalf("slot sum %d, want 28", got)
	}
	if got := rep.Slots[Base.Key()]; got != 8 {
		t.Fatalf("base slots %d, want 10 issued - 2 wrong-path = 8", got)
	}
	if b := rep.Branch(3); b.BrMispredict != 6 {
		t.Fatalf("branch 3 br_mispredict %d, want 4 bubble + 2 wrong-path = 6", b.BrMispredict)
	}
	if b := rep.Branch(2); b.ResMispredict != 4 || b.ResolveWindow != 4 {
		t.Fatalf("branch 2 = %+v, want res_mispredict 4 and resolve_window 4", b)
	}
	if rep.DBBOverflows != 1 {
		t.Fatalf("dbb overflows %d, want 1", rep.DBBOverflows)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := NewRecorder(8, 2, 2)
	r.ChargeCycle(1, LoadWait, 5)
	r.ChargeCycle(0, CondWait, 1)
	rep := r.Report()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, &back) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", &back, rep)
	}
	if err := back.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTopTables(t *testing.T) {
	r := NewRecorder(10, 4, 4)
	r.ChargeCycle(0, CondWait, 1)     // branch 1: 4
	r.ChargeCycle(0, BrMispredict, 2) // branch 2: 4
	r.ChargeCycle(2, BrMispredict, 2) // branch 2: +2 = 6
	r.ChargeCycle(0, LoadWait, 3)     // pc 3: 4
	r.ChargeCycle(2, LoadWait, 9)     // pc 9: 2
	rep := r.Report()
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}

	top := rep.TopBranches(1)
	if len(top) != 1 || top[0].ID != 2 || top[0].BrMispredict != 6 {
		t.Fatalf("top branch = %+v, want branch 2 with 6 slots", top)
	}
	loads := rep.TopLoads(0)
	if len(loads) != 2 || loads[0].PC != 3 || loads[1].PC != 9 {
		t.Fatalf("top loads = %+v, want pcs 3 then 9", loads)
	}

	if got := rep.Stack(); got[CondWait] != 4 || got[BrMispredict] != 6 {
		t.Fatalf("stack = %v", got)
	}
}
