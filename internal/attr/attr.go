// Package attr implements simulation-time cycle attribution: a Yasin-style
// top-down accounting that charges every issue slot of every cycle to
// exactly one cause. The invariant the whole layer is built around (and
// that make attr-gate enforces) is conservation: summed over all causes,
// charged slots equal cycles × issue width, always.
//
// The Recorder is the hot-path half: flat preallocated arrays indexed by
// cause, static BranchID and static PC (the same indexing discipline as the
// pipeline's predecode table), so charging is a handful of integer adds and
// the simulator's zero-alloc steady-state gate is unaffected. The Report is
// the cold half: a compact, deterministic, JSON-serializable summary built
// once after the run, which the telemetry schema's `attribution` section
// and the offender tables render from.
package attr

import (
	"fmt"
	"sort"
)

// Cause enumerates the mutually exclusive reasons an issue slot can be
// spent. Every cycle the machine runs, each of its Width slots is charged
// to exactly one of these.
type Cause uint8

const (
	// Base is useful work: one slot per issued instruction (wrong-path
	// issues are re-charged to the flushing mispredict cause at squash).
	Base Cause = iota
	// Fetch is a front-end bubble with no more specific blame: the buffer
	// is empty or the head has not cleared the front-end depth yet.
	Fetch
	// ICache is a front-end stall on an instruction-cache miss.
	ICache
	// Exception is the injected handler penalty (pipeline drain + kernel
	// work stand-in) after an exceptional control-flow event.
	Exception
	// BrMispredict covers an ordinary BR misprediction: the wrong-path
	// slots it wasted plus the refill bubble until issue resumes, split by
	// the static BranchID of the mispredicted branch.
	BrMispredict
	// ResMispredict is the same for a RESOLVE firing (a decomposed branch
	// whose prediction was wrong), split by BranchID.
	ResMispredict
	// RetMispredict is a RAS target misprediction (no BranchID).
	RetMispredict
	// CondWait: the issue head is a BR (or its window contains one)
	// waiting on its condition operand, split by BranchID.
	CondWait
	// ResolveWindow: the blocked issue window contains a RESOLVE waiting
	// on its condition — the decomposed-branch analogue of CondWait,
	// split by BranchID.
	ResolveWindow
	// LoadWait: the head waits on an operand produced by an in-flight
	// load, split by the static PC of that load.
	LoadWait
	// OperandWait: the head waits on an operand from a non-load producer.
	OperandWait
	// FUContention: the head is ready but no functional unit is free.
	FUContention
	// DBBFull: front-end bubbles in cycles where the Decomposed Branch
	// Buffer is over capacity (outstanding predicts exceed DBBEntries, so
	// an entry was clobbered). Near zero at the paper's 16 entries; the
	// DBB-depth ablation makes it visible.
	DBBFull

	// NumCauses is the number of causes (array sizing).
	NumCauses
)

// keys are the stable snake_case identifiers of each cause — the telemetry
// schema's `attribution.slots` keys and the /metrics `cause` label values.
var keys = [NumCauses]string{
	Base:          "base",
	Fetch:         "fetch",
	ICache:        "icache",
	Exception:     "exception",
	BrMispredict:  "br_mispredict",
	ResMispredict: "res_mispredict",
	RetMispredict: "ret_mispredict",
	CondWait:      "cond_wait",
	ResolveWindow: "resolve_window",
	LoadWait:      "load_wait",
	OperandWait:   "operand_wait",
	FUContention:  "fu_contention",
	DBBFull:       "dbb_full",
}

// Key returns the cause's stable snake_case identifier.
func (c Cause) Key() string { return keys[c] }

// Causes returns every cause in charging order — the canonical segment
// order of a rendered CPI stack (base first, then front-end, control,
// data, structural).
func Causes() []Cause {
	out := make([]Cause, NumCauses)
	for i := range out {
		out[i] = Cause(i)
	}
	return out
}

// Recorder accumulates slot charges during a run. All storage is allocated
// by NewRecorder; ChargeCycle and MoveWrongPath never allocate. One
// recorder belongs to one machine (not safe for concurrent use).
type Recorder struct {
	width  int
	cycles int64
	total  [NumCauses]int64

	// Per static BranchID (index 0 = unassigned), preallocated flat.
	brMisp     []int64
	resMisp    []int64
	condWait   []int64
	resolveWin []int64
	// Per static PC of the producing load, preallocated flat.
	loadWait []int64

	dbbOverflows int64
}

// NewRecorder builds a recorder for a machine of the given issue width
// over an image with numPCs instructions whose largest static BranchID is
// maxBranchID.
func NewRecorder(numPCs, maxBranchID, width int) *Recorder {
	return &Recorder{
		width:      width,
		brMisp:     make([]int64, maxBranchID+1),
		resMisp:    make([]int64, maxBranchID+1),
		condWait:   make([]int64, maxBranchID+1),
		resolveWin: make([]int64, maxBranchID+1),
		loadWait:   make([]int64, numPCs),
	}
}

// ChargeCycle charges one cycle's worth of slots: issued slots to Base and
// the remaining width-issued slots to cause. idx is the BranchID for the
// per-branch causes, the producing load's PC for LoadWait, and ignored
// otherwise.
func (r *Recorder) ChargeCycle(issued int, cause Cause, idx int) {
	r.cycles++
	r.total[Base] += int64(issued)
	empty := int64(r.width - issued)
	if empty <= 0 {
		return
	}
	r.total[cause] += empty
	switch cause {
	case BrMispredict:
		r.brMisp[idx] += empty
	case ResMispredict:
		r.resMisp[idx] += empty
	case CondWait:
		r.condWait[idx] += empty
	case ResolveWindow:
		r.resolveWin[idx] += empty
	case LoadWait:
		r.loadWait[idx] += empty
	}
}

// MoveWrongPath re-charges n already-issued (Base) slots to the mispredict
// cause that squashed them, keeping the conservation invariant intact: the
// total never changes, blame just moves from Base to the flushing branch.
func (r *Recorder) MoveWrongPath(cause Cause, idx int, n int64) {
	if n <= 0 {
		return
	}
	r.total[Base] -= n
	r.total[cause] += n
	switch cause {
	case BrMispredict:
		r.brMisp[idx] += n
	case ResMispredict:
		r.resMisp[idx] += n
	}
}

// NoteDBBOverflow counts one PREDICT consumed while the DBB was already at
// capacity (an entry was clobbered).
func (r *Recorder) NoteDBBOverflow() { r.dbbOverflows++ }

// Totals returns the cumulative per-cause slot counts — the fixed-size
// snapshot the cycle-window sampler differences (arrays keep the sampler's
// Counters comparable).
func (r *Recorder) Totals() [NumCauses]int64 { return r.total }

// Cycles returns the number of charged cycles.
func (r *Recorder) Cycles() int64 { return r.cycles }

// BranchRow is the attribution of one static BranchID: slots lost to its
// mispredictions (ordinary and resolve-fire) and slots the issue head
// spent waiting for its condition (plain BR or decomposed RESOLVE window).
type BranchRow struct {
	ID            int   `json:"id"`
	BrMispredict  int64 `json:"br_mispredict,omitempty"`
	ResMispredict int64 `json:"res_mispredict,omitempty"`
	CondWait      int64 `json:"cond_wait,omitempty"`
	ResolveWindow int64 `json:"resolve_window,omitempty"`
}

// MispredictSlots returns the row's misprediction slots (both kinds).
func (b *BranchRow) MispredictSlots() int64 { return b.BrMispredict + b.ResMispredict }

// TotalSlots returns every slot attributed to the branch.
func (b *BranchRow) TotalSlots() int64 {
	return b.BrMispredict + b.ResMispredict + b.CondWait + b.ResolveWindow
}

// LoadRow is the attribution of one static load PC: issue-head slots spent
// waiting for a value that load had not yet produced.
type LoadRow struct {
	PC    int   `json:"pc"`
	Slots int64 `json:"slots"`
}

// Report is the finished attribution of one run: sparse, deterministic
// (rows sorted by ID/PC, map keys sorted by encoding/json) and compact
// enough to live in the run cache and the telemetry schema's
// `attribution` section.
type Report struct {
	Width  int   `json:"width"`
	Cycles int64 `json:"cycles"`
	// Slots maps every cause key to its charged slot count (zero entries
	// included, so the stack's shape is stable across runs).
	Slots        map[string]int64 `json:"slots"`
	Branches     []BranchRow      `json:"branches,omitempty"`
	Loads        []LoadRow        `json:"loads,omitempty"`
	DBBOverflows int64            `json:"dbb_overflows,omitempty"`
}

// Report freezes the recorder into its serializable form.
func (r *Recorder) Report() *Report {
	rep := &Report{
		Width:        r.width,
		Cycles:       r.cycles,
		Slots:        make(map[string]int64, NumCauses),
		DBBOverflows: r.dbbOverflows,
	}
	for c := Cause(0); c < NumCauses; c++ {
		rep.Slots[c.Key()] = r.total[c]
	}
	for id := range r.brMisp {
		row := BranchRow{
			ID:            id,
			BrMispredict:  r.brMisp[id],
			ResMispredict: r.resMisp[id],
			CondWait:      r.condWait[id],
			ResolveWindow: r.resolveWin[id],
		}
		if row.TotalSlots() > 0 {
			rep.Branches = append(rep.Branches, row)
		}
	}
	for pc, n := range r.loadWait {
		if n > 0 {
			rep.Loads = append(rep.Loads, LoadRow{PC: pc, Slots: n})
		}
	}
	return rep
}

// SlotSum returns the total charged slots across all causes.
func (r *Report) SlotSum() int64 {
	var s int64
	for _, n := range r.Slots {
		s += n
	}
	return s
}

// Branch returns the row for a BranchID (zero row if absent).
func (r *Report) Branch(id int) BranchRow {
	for i := range r.Branches {
		if r.Branches[i].ID == id {
			return r.Branches[i]
		}
	}
	return BranchRow{ID: id}
}

// Check verifies the conservation invariants: per-cause slots sum to
// cycles × width, and the per-BranchID / per-PC splits sum back to their
// aggregate cause counters.
func (r *Report) Check() error {
	if got, want := r.SlotSum(), r.Cycles*int64(r.Width); got != want {
		return fmt.Errorf("attr: charged slots %d != cycles*width %d", got, want)
	}
	var br, res, cond, rw, ld int64
	for i := range r.Branches {
		b := &r.Branches[i]
		br += b.BrMispredict
		res += b.ResMispredict
		cond += b.CondWait
		rw += b.ResolveWindow
	}
	for i := range r.Loads {
		ld += r.Loads[i].Slots
	}
	for _, c := range []struct {
		key  string
		want int64
	}{
		{BrMispredict.Key(), br},
		{ResMispredict.Key(), res},
		{CondWait.Key(), cond},
		{ResolveWindow.Key(), rw},
		{LoadWait.Key(), ld},
	} {
		if r.Slots[c.key] != c.want {
			return fmt.Errorf("attr: per-ID %s slots %d != aggregate %d", c.key, c.want, r.Slots[c.key])
		}
	}
	return nil
}

// TopBranches returns the n branches costing the most slots, sorted by
// total attributed slots descending (ties by ID for determinism).
func (r *Report) TopBranches(n int) []BranchRow {
	out := append([]BranchRow(nil), r.Branches...)
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i].TotalSlots(), out[j].TotalSlots(); a != b {
			return a > b
		}
		return out[i].ID < out[j].ID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopLoads returns the n costliest load PCs, by slots descending (ties by
// PC).
func (r *Report) TopLoads(n int) []LoadRow {
	out := append([]LoadRow(nil), r.Loads...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slots != out[j].Slots {
			return out[i].Slots > out[j].Slots
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Stack returns the report's slot counts in canonical cause order — the
// segment values of a stacked CPI bar. Dividing by Width converts slots
// to cycles.
func (r *Report) Stack() []float64 {
	out := make([]float64, NumCauses)
	for c := Cause(0); c < NumCauses; c++ {
		out[c] = float64(r.Slots[c.Key()])
	}
	return out
}
