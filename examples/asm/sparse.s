; Dot product over a sparse vector whose zero pattern repeats with
; period 5 (1,1,0,0,1): the sparsity branch is 60/40 biased but almost
; perfectly predictable -- exactly the corner the decomposed branch
; transformation targets. The prologue writes the pattern itself, so the
; program is self-contained. Try:
;
;   go run ./cmd/vgrun -pipeview-around 2 examples/asm/sparse.s
;   go run ./cmd/vgrun -transform -dump examples/asm/sparse.s
;   go run ./cmd/vgrun -transform -pipeview-around 2 examples/asm/sparse.s
;
; (EXPERIMENTS.md walks through the baseline-vs-vanguard waterfalls.)
func main
init:
	li      r0, 0
	li      r1, 0           ; i
	li      r2, 510         ; n (multiple of the pattern period)
	li      r3, 1048576     ; &x[0]
	li      r4, 1310720     ; &y[0]
	li      r10, 0          ; acc
	li      r13, 1          ; the nonzero fill value
fill:
	muli    r5, r1, 8
	add     r6, r5, r3
	st      0(r6), r13      ; x[i+0] = 1
	st      8(r6), r13      ; x[i+1] = 1
	st      16(r6), r0      ; x[i+2] = 0
	st      24(r6), r0      ; x[i+3] = 0
	st      32(r6), r13     ; x[i+4] = 1
	add     r9, r5, r4
	st      0(r9), r13      ; y[i..i+4] = 1, so dense hits accumulate
	st      8(r9), r13
	st      16(r9), r13
	st      24(r9), r13
	st      32(r9), r13
	addi    r1, r1, 5
	cmplt   r8, r1, r2
	br      r8, fill #3
	li      r1, 0           ; restart i for the main loop
loop:
	muli    r5, r1, 8
	add     r6, r5, r3
	ld      r7, 0(r6)       ; x[i]
	cmpne   r8, r7, r0
	br      r8, dense #1    ; nonzero -> do the multiply
sparse:
	jmp     next
dense:
	add     r9, r5, r4
	ld      r11, 0(r9)      ; y[i]
	mul     r12, r7, r11
	add     r10, r10, r12
next:
	addi    r1, r1, 1
	cmplt   r8, r1, r2
	br      r8, loop #2
done:
	li      r13, 16777216   ; out
	st      0(r13), r10
	call    finish
	halt
endfunc

func finish
entry:
	addi    r20, r20, 1
	ret
endfunc
