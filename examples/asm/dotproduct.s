; Dot product with a predictable-but-unbiased sparsity check, written in
; vanguard assembly. Try:
;
;   go run ./cmd/vgrun examples/asm/dotproduct.s
;   go run ./cmd/vgrun -transform -dump examples/asm/dotproduct.s
;   go run ./cmd/vgrun -transform examples/asm/dotproduct.s
;
; The branch #1 skips the multiply for zero entries; its outcome depends on
; the (initially zero) data, so with untouched memory it is fully biased —
; load real vectors at 0x100000/0x140000 to make it interesting.
func main
init:
	li      r0, 0
	li      r1, 0           ; i
	li      r2, 512         ; n
	li      r3, 1048576     ; &x[0]
	li      r4, 1310720     ; &y[0]
	li      r10, 0          ; acc
loop:
	muli    r5, r1, 8
	add     r6, r5, r3
	ld      r7, 0(r6)       ; x[i]
	cmpne   r8, r7, r0
	br      r8, dense #1    ; nonzero -> do the multiply
sparse:
	jmp     next
dense:
	add     r9, r5, r4
	ld      r11, 0(r9)      ; y[i]
	mul     r12, r7, r11
	add     r10, r10, r12
next:
	addi    r1, r1, 1
	cmplt   r8, r1, r2
	br      r8, loop #2
done:
	li      r13, 16777216   ; out
	st      0(r13), r10
	call    finish
	halt
endfunc

func finish
entry:
	addi    r20, r20, 1
	ret
endfunc
