// Figure 1 demo: the same hammock shape under the three kinds of
// conditional forward branch, showing which transformation handles each
// quadrant of (bias, predictability):
//
//	highly biased + predictable      -> superblock-style speculation
//	low bias + UNpredictable         -> predication (if-conversion)
//	low bias + predictable           -> the Decomposed Branch Transformation
//	                                    (the paper's contribution)
package main

import (
	"fmt"
	"log"

	"vanguard/internal/core"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
	"vanguard/internal/pipeline"
	"vanguard/internal/profile"
	"vanguard/internal/sched"
)

const (
	scriptBase = uint64(1 << 20)
	dataBase   = uint64(1 << 22)
	outBase    = uint64(1 << 24)
	iters      = 4000
)

// kind selects how the branch outcome stream is generated.
type kind int

const (
	biased kind = iota
	unpredictable
	predictableUnbiased
)

func (k kind) String() string {
	switch k {
	case biased:
		return "highly biased, predictable   "
	case unpredictable:
		return "unbiased, unpredictable      "
	default:
		return "unbiased, PREDICTABLE        "
	}
}

// buildHammock is the same CFG for all three kinds; only the script
// contents differ.
func buildHammock() *ir.Program {
	f := &ir.Func{Name: "hammock"}
	init := f.AddBlock("init")
	head := f.AddBlock("A")
	b := f.AddBlock("B")
	c := f.AddBlock("C")
	merge := f.AddBlock("M")
	latch := f.AddBlock("latch")
	done := f.AddBlock("done")
	r := isa.R
	f.Emit(init,
		ir.Li(r(0), 0), ir.Li(r(1), 0), ir.Li(r(2), iters),
		ir.Li(r(3), int64(scriptBase)), ir.Li(r(4), int64(dataBase)),
		ir.Li(r(5), int64(outBase)), ir.Li(r(10), 0),
	)
	f.Emit(head,
		ir.Muli(r(6), r(1), 8),
		ir.Add(r(6), r(6), r(3)),
		ir.Ld(r(7), r(6), 0),
		ir.Cmp(isa.CMPNE, r(8), r(7), r(0)),
		ir.BrID(r(8), c, 1),
	)
	f.Emit(b,
		ir.Muli(r(9), r(1), 8),
		ir.Andi(r(9), r(9), (1<<13-1)&^7),
		ir.Add(r(9), r(9), r(4)),
		ir.Ld(r(11), r(9), 0),
		ir.Ld(r(12), r(9), 8),
		ir.Add(r(10), r(10), r(11)),
		ir.Add(r(10), r(10), r(12)),
		ir.Jmp(merge),
	)
	f.Emit(c,
		ir.Muli(r(9), r(1), 8),
		ir.Andi(r(9), r(9), (1<<13-1)&^7),
		ir.Add(r(9), r(9), r(4)),
		ir.Ld(r(11), r(9), 16),
		ir.Sub(r(10), r(10), r(11)),
	)
	f.Emit(merge, ir.St(r(5), 0, r(10)))
	f.Emit(latch,
		ir.Addi(r(1), r(1), 1),
		ir.Cmp(isa.CMPLT, r(8), r(1), r(2)),
		ir.BrID(r(8), head, 2),
	)
	f.Emit(done, ir.St(r(5), 16, r(10)), ir.Halt())
	return &ir.Program{Funcs: []*ir.Func{f}}
}

func initMemory(k kind) *mem.Memory {
	m := mem.New()
	state := uint64(7)
	next := func() uint64 { state ^= state << 13; state ^= state >> 7; state ^= state << 17; return state }
	inTaken, left := true, 60
	for i := 0; i < iters; i++ {
		var v bool
		switch k {
		case biased:
			v = next()%33 == 0 // ~3% taken
		case unpredictable:
			v = next()%2 == 0 // coin flip
		default: // regime-structured: ~55/45 but ~92% predictable
			if left == 0 {
				inTaken = !inTaken
				left = 50 + int(next()%60)
			}
			v = inTaken
			if next()%12 == 0 {
				v = !v
			}
			left--
		}
		var w int64
		if v {
			w = 1
		}
		m.MustStore(scriptBase+uint64(i)*8, w)
	}
	for off := uint64(0); off < 1<<13+64; off += 8 {
		m.MustStore(dataBase+off, int64(off%31))
	}
	return m
}

func main() {
	fmt.Println("Figure 1: which transformation fits which branch?")
	fmt.Printf("%-30s %6s %6s | %-10s %-10s %-10s %9s\n",
		"branch character", "bias", "pred", "superblock", "decompose", "predicate", "speedup")
	for _, k := range []kind{biased, unpredictable, predictableUnbiased} {
		prog := buildHammock()
		memory := initMemory(k)
		prof, err := profile.CollectDefault(ir.MustLinearize(prog), memory.Clone(), 10_000_000)
		if err != nil {
			log.Fatal(err)
		}
		br := prof.ByID[1]

		baseline := prog.Clone()
		exp := prog.Clone()
		// Both binaries get the classic biased-branch speculation...
		srep, err := core.SpeculateBiasedBranches(exp, prof, core.DefaultSpeculateOptions())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := core.SpeculateBiasedBranches(baseline, prof, core.DefaultSpeculateOptions()); err != nil {
			log.Fatal(err)
		}
		// ...and only the experimental one gets the decomposition and,
		// for unpredictable hammocks, predication.
		drep, err := core.Transform(exp, prof, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		prep, err := core.IfConvertBranches(exp, prof, core.DefaultIfConvertOptions())
		if err != nil {
			log.Fatal(err)
		}
		sched.Program(baseline, sched.DefaultModel(4))
		sched.Program(exp, sched.DefaultModel(4))

		run := func(p *ir.Program) int64 {
			st, err := pipeline.New(ir.MustLinearize(p), memory.Clone(), pipeline.DefaultConfig(4)).Run()
			if err != nil {
				log.Fatal(err)
			}
			return st.Cycles
		}
		bc, ec := run(baseline), run(exp)
		mark := func(b bool) string {
			if b {
				return "yes"
			}
			return "-"
		}
		fmt.Printf("%-30s %6.2f %6.2f | %-10s %-10s %-10s %+8.2f%%\n",
			k, br.Bias(), br.Predictability(),
			mark(len(srep.Speculated) > 0), mark(len(drep.Converted) > 0),
			mark(len(prep.Converted) > 0),
			(float64(bc)/float64(ec)-1)*100)
	}
	fmt.Println("\neach quadrant of Figure 1 gets its own transformation: superblock")
	fmt.Println("speculation covers the biased branch, predication (if-conversion)")
	fmt.Println("absorbs the unpredictable one, and the paper's decomposition unlocks")
	fmt.Println("the predictable-but-unbiased one nothing else could touch.")
}
