// Quickstart: build a small program with one predictable-but-unbiased
// branch, profile it, apply the Decomposed Branch Transformation, and
// compare baseline vs transformed cycle counts on the Table 1 machine.
package main

import (
	"fmt"
	"log"

	"vanguard/internal/core"
	"vanguard/internal/interp"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
	"vanguard/internal/pipeline"
	"vanguard/internal/profile"
	"vanguard/internal/sched"
)

const (
	scriptBase = uint64(1 << 20)
	dataBase   = uint64(1 << 22)
	outBase    = uint64(1 << 24)
	iters      = 5000
)

// buildProgram returns a loop with one hammock whose condition is loaded
// from a script array: 60% taken, but regime-structured so the machine's
// predictor reaches ~90% accuracy — the paper's target branch shape.
func buildProgram() *ir.Program {
	f := &ir.Func{Name: "quickstart"}
	init := f.AddBlock("init")
	head := f.AddBlock("head")
	b := f.AddBlock("B")
	c := f.AddBlock("C")
	merge := f.AddBlock("merge")
	latch := f.AddBlock("latch")
	done := f.AddBlock("done")

	r := isa.R
	f.Emit(init,
		ir.Li(r(0), 0),
		ir.Li(r(1), 0), // i
		ir.Li(r(2), iters),
		ir.Li(r(3), int64(scriptBase)),
		ir.Li(r(4), int64(dataBase)),
		ir.Li(r(5), int64(outBase)),
		ir.Li(r(10), 0), // accumulator
	)
	// head: cond = script[i] (the condition slice the transform pushes down)
	f.Emit(head,
		ir.Muli(r(6), r(1), 8),
		ir.Add(r(6), r(6), r(3)),
		ir.Ld(r(7), r(6), 0),
		ir.Cmp(isa.CMPNE, r(8), r(7), r(0)),
		ir.BrID(r(8), c, 1),
	)
	// B: two loads feeding the accumulator, then a store.
	f.Emit(b,
		ir.Muli(r(9), r(1), 8),
		ir.Andi(r(9), r(9), (1<<14-1)&^7),
		ir.Add(r(9), r(9), r(4)),
		ir.Ld(r(11), r(9), 0),
		ir.Ld(r(12), r(9), 8),
		ir.Add(r(10), r(10), r(11)),
		ir.Add(r(10), r(10), r(12)),
		ir.St(r(5), 0, r(10)),
		ir.Jmp(merge),
	)
	// C: one load, different update.
	f.Emit(c,
		ir.Muli(r(9), r(1), 8),
		ir.Andi(r(9), r(9), (1<<14-1)&^7),
		ir.Add(r(9), r(9), r(4)),
		ir.Ld(r(11), r(9), 16),
		ir.Sub(r(10), r(10), r(11)),
		ir.St(r(5), 8, r(10)),
	)
	f.Emit(merge) // empty join
	f.Emit(latch,
		ir.Addi(r(1), r(1), 1),
		ir.Cmp(isa.CMPLT, r(8), r(1), r(2)),
		ir.BrID(r(8), head, 2),
	)
	f.Emit(done, ir.St(r(5), 16, r(10)), ir.Halt())
	return &ir.Program{Funcs: []*ir.Func{f}}
}

// initMemory writes the regime-structured outcome script and some data.
func initMemory() *mem.Memory {
	m := mem.New()
	state := uint64(0x123456789)
	next := func() uint64 { state ^= state << 13; state ^= state >> 7; state ^= state << 17; return state }
	inTaken, left := true, 60
	for i := 0; i < iters; i++ {
		if left == 0 {
			inTaken = !inTaken
			if inTaken {
				left = 70 + int(next()%40)
			} else {
				left = 45 + int(next()%30)
			}
		}
		v := inTaken
		if next()%10 == 0 { // 10% in-regime noise -> ~90% predictable
			v = !v
		}
		left--
		var w int64
		if v {
			w = 1
		}
		m.MustStore(scriptBase+uint64(i)*8, w)
	}
	for off := uint64(0); off < 1<<14+64; off += 8 {
		m.MustStore(dataBase+off, int64(off%97))
	}
	return m
}

func main() {
	prog := buildProgram()
	memory := initMemory()

	// 1. Profile on a functional run (the TRAIN pass).
	im := ir.MustLinearize(prog)
	prof, err := profile.CollectDefault(im, memory.Clone(), 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	br := prof.ByID[1]
	fmt.Printf("branch 1: executed %d times, bias %.2f, predictability %.2f\n",
		br.Execs, br.Bias(), br.Predictability())

	// 2. Transform: decompose the branch into predict + resolve.
	baseline := prog.Clone()
	experimental := prog.Clone()
	rep, err := core.Transform(experimental, prof, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted %d branch(es); static code size %+.1f%%\n",
		len(rep.Converted), rep.PISCS())

	// 3. Schedule both identically and simulate on the 4-wide machine.
	sched.Program(baseline, sched.DefaultModel(4))
	sched.Program(experimental, sched.DefaultModel(4))

	run := func(p *ir.Program) *pipeline.Stats {
		mach := pipeline.New(ir.MustLinearize(p), memory.Clone(), pipeline.DefaultConfig(4))
		st, err := mach.Run()
		if err != nil {
			log.Fatal(err)
		}
		return st
	}
	bs := run(baseline)
	es := run(experimental)

	// 4. Check both computed the same answer as the golden model.
	gm := memory.Clone()
	if _, _, err := interp.Run(im, gm, interp.Options{}); err != nil {
		log.Fatal(err)
	}
	want, _ := gm.Load(outBase + 16)
	fmt.Printf("architectural result: %d (verified on both machines)\n", want)

	fmt.Printf("baseline:     %8d cycles, IPC %.3f\n", bs.Cycles, bs.IPC())
	fmt.Printf("decomposed:   %8d cycles, IPC %.3f\n", es.Cycles, es.IPC())
	fmt.Printf("speedup:      %+.2f%%\n", (float64(bs.Cycles)/float64(es.Cycles)-1)*100)
}
