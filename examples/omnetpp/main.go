// The paper's Figure 6 case study: the hot branch in SPEC 2006 omnetpp's
// cArray::add(cObject*), transcribed into vanguard IR.
//
//	bool full = (a->last + 1 >= a->size);   // two dependent loads
//	if (full) {  /* grow path  */ }
//	else      {  /* fast insert: a->vect[++a->last] = obj */ }
//
// The branch is unbiased (the mix of full/non-full arrays is data
// dependent) but highly predictable (arrays come in phases). The condition
// needs two loads, and both successors begin with more loads — serialized
// behind the branch in the baseline. The Decomposed Branch Transformation
// pushes the condition slice down and hoists the successor loads above the
// resolution point, overlapping their latencies, which is precisely the
// win the paper reports for this code.
package main

import (
	"fmt"
	"log"
	"strings"

	"vanguard/internal/core"
	"vanguard/internal/ir"
	"vanguard/internal/isa"
	"vanguard/internal/mem"
	"vanguard/internal/pipeline"
	"vanguard/internal/profile"
	"vanguard/internal/sched"
)

// Object layout (one per 64-byte line):  0: last, 8: size, 16: vect
// (pointer), 24: growCount.
const (
	objBase    = uint64(1 << 22)
	vectBase   = uint64(1 << 24)
	driverBase = uint64(1 << 20) // scripted object-id sequence
	outBase    = uint64(1 << 26)
	numObjects = 512
	adds       = 6000
)

func buildAdd() *ir.Program {
	f := &ir.Func{Name: "cArray.add"}
	init := f.AddBlock("init")
	head := f.AddBlock("A")
	fast := f.AddBlock("B.fast-insert")
	grow := f.AddBlock("C.grow")
	merge := f.AddBlock("merge")
	latch := f.AddBlock("latch")
	done := f.AddBlock("done")

	r := isa.R
	const (
		rI      = 1 // loop counter
		rLim    = 2
		rDrv    = 3 // driver base
		rObjs   = 4 // object-table base
		rObj    = 5 // &a (current object)
		rLast   = 6 // a->last
		rSize   = 7 // a->size
		rCond   = 8
		rVect   = 9 // a->vect
		rTmp    = 10
		rOne    = 11
		rGrowth = 12
	)
	f.Emit(init,
		ir.Li(r(0), 0),
		ir.Li(r(rI), 0),
		ir.Li(r(rLim), adds),
		ir.Li(r(rDrv), int64(driverBase)),
		ir.Li(r(rObjs), int64(objBase)),
		ir.Li(r(rOne), 1),
		ir.Li(r(rGrowth), 0),
	)
	// A: a = objs[driver[i]]; full = (a->last + 1 >= a->size)
	f.Emit(head,
		ir.Muli(r(rObj), r(rI), 8),
		ir.Add(r(rObj), r(rObj), r(rDrv)),
		ir.Ld(r(rObj), r(rObj), 0),         // object id (pre-scaled address)
		ir.Add(r(rObj), r(rObj), r(rObjs)), // &a
		ir.Ld(r(rLast), r(rObj), 0),        // a->last        (line 2 of Fig. 6)
		ir.Ld(r(rSize), r(rObj), 8),        // a->size
		ir.Addi(r(rLast), r(rLast), 1),
		ir.Cmp(isa.CMPGE, r(rCond), r(rLast), r(rSize)), // line 3
		ir.BrID(r(rCond), grow, 7),
	)
	// B: fast insert — a->vect[last] = i; a->last = last (stores stay
	// below the resolution point after the transformation).
	f.Emit(fast,
		ir.Ld(r(rVect), r(rObj), 16), // line 5: a->vect
		ir.Muli(r(rTmp), r(rLast), 8),
		ir.Add(r(rVect), r(rVect), r(rTmp)),
		ir.St(r(rVect), 0, r(rI)),   // line 6: vect[last] = obj
		ir.St(r(rObj), 0, r(rLast)), // a->last++
		ir.Jmp(merge),
	)
	// C: grow path — count the grow; read the old size (line 40).
	f.Emit(grow,
		ir.Ld(r(rTmp), r(rObj), 24), // line 40: a->growCount
		ir.Add(r(rTmp), r(rTmp), r(rOne)),
		ir.Add(r(rGrowth), r(rGrowth), r(rOne)),
		ir.St(r(rObj), 24, r(rTmp)), // line 41
	)
	f.Emit(merge)
	f.Emit(latch,
		ir.Addi(r(rI), r(rI), 1),
		ir.Cmp(isa.CMPLT, r(rCond), r(rI), r(rLim)),
		ir.BrID(r(rCond), head, 1),
	)
	f.Emit(done,
		ir.Li(r(rTmp), int64(outBase)),
		ir.St(r(rTmp), 0, r(rGrowth)),
		ir.Halt(),
	)
	return &ir.Program{Funcs: []*ir.Func{f}}
}

// initMemory builds the object table and a phased driver sequence: runs of
// adds to roomy arrays alternate with runs hitting full ones, so "full" is
// ~40% overall yet ~90% predictable.
func initMemory() *mem.Memory {
	m := mem.New()
	for i := 0; i < numObjects; i++ {
		base := objBase + uint64(i)*64
		if i%2 == 0 { // roomy: never fills during the run
			m.MustStore(base+0, 0)     // last
			m.MustStore(base+8, 1<<30) // size
		} else { // full: always grows
			m.MustStore(base+0, 7)
			m.MustStore(base+8, 4)
		}
		m.MustStore(base+16, int64(vectBase)+int64(i)*4096) // vect
	}
	state := uint64(99)
	next := func() uint64 { state ^= state << 13; state ^= state >> 7; state ^= state << 17; return state }
	usingFull, left := false, 50
	for i := 0; i < adds; i++ {
		if left == 0 {
			usingFull = !usingFull
			if usingFull {
				left = 50 + int(next()%40) // ~40% of time in full phase
			} else {
				left = 80 + int(next()%50)
			}
		}
		left--
		pick := int(next() % (numObjects / 2))
		id := pick * 2
		if usingFull {
			id++
		}
		if next()%12 == 0 { // phase noise
			id ^= 1
		}
		m.MustStore(driverBase+uint64(i)*8, int64(id)*64)
	}
	return m
}

func main() {
	prog := buildAdd()
	memory := initMemory()

	prof, err := profile.CollectDefault(ir.MustLinearize(prog), memory.Clone(), 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	br := prof.ByID[7]
	fmt.Printf("cArray::add 'full?' branch: bias %.2f, predictability %.2f (gap %.2f)\n",
		br.Bias(), br.Predictability(), br.Predictability()-br.Bias())

	baseline := prog.Clone()
	exp := prog.Clone()
	rep, err := core.Transform(exp, prof, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Converted) != 1 {
		log.Fatalf("branch not converted: %v", rep.Skipped)
	}
	c := rep.Converted[0]
	fmt.Printf("transformed: %d condition-slice instrs pushed down, %d+%d hoisted, %d temps\n",
		c.SlicePushed, c.HoistedB, c.HoistedC, c.Temps)

	// Show the transformed region (the Figure 6(b)/(c) shape).
	fmt.Println("\ntransformed blocks:")
	for _, blk := range exp.Funcs[0].Blocks {
		if strings.Contains(blk.Label, ".ba") || strings.Contains(blk.Label, ".ca") ||
			strings.Contains(blk.Label, "correct") || blk.Label == "A" {
			fmt.Printf("%s:\n", blk.Label)
			for _, ins := range blk.Instrs {
				fmt.Printf("\t%s\n", ins)
			}
		}
	}

	sched.Program(baseline, sched.DefaultModel(4))
	sched.Program(exp, sched.DefaultModel(4))
	run := func(p *ir.Program) *pipeline.Stats {
		st, err := pipeline.New(ir.MustLinearize(p), memory.Clone(), pipeline.DefaultConfig(4)).Run()
		if err != nil {
			log.Fatal(err)
		}
		return st
	}
	bs, es := run(baseline), run(exp)
	fmt.Printf("\nbaseline:   %d cycles (IPC %.3f)\n", bs.Cycles, bs.IPC())
	fmt.Printf("decomposed: %d cycles (IPC %.3f)\n", es.Cycles, es.IPC())
	fmt.Printf("speedup:    %+.2f%%  (load latencies of A overlap B/C's)\n",
		(float64(bs.Cycles)/float64(es.Cycles)-1)*100)
}
