// Section 5.3 demo: sweep the branch-predictor ladder on one of the four
// hard-to-predict integer benchmarks and watch the decomposed-branch
// speedup grow as the misprediction rate falls (the paper quotes roughly
// +0.3% speedup per 1% misprediction-rate reduction).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vanguard/internal/harness"
	"vanguard/internal/workload"
)

func main() {
	log.SetFlags(0)
	bench := flag.String("bench", "astar", "one of astar, sjeng, gobmk, mcf")
	full := flag.Bool("full", false, "run all four paper benchmarks at full length")
	flag.Parse()

	o := harness.DefaultOptions()
	benches := []string{*bench}
	if *full {
		benches = harness.SensitivityBenchmarks()
	} else {
		// Demo-sized inputs keep this interactive.
		o.TrainInput = workload.Input{Seed: 101, Iters: 1500}
		o.RefInputs = []workload.Input{{Seed: 202, Iters: 2000}}
	}
	o.Widths = []int{4}

	rows, err := harness.Sensitivity(benches, o)
	if err != nil {
		log.Fatal(err)
	}
	harness.WriteSensitivity(os.Stdout, rows)
	fmt.Println("\n(the DBT system re-profiles and re-selects branches per predictor,")
	fmt.Println(" so better predictors both convert more branches and resolve them better)")
}
