module vanguard

go 1.22
