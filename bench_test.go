// Package vanguard's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment index).
// Each benchmark runs the corresponding experiment once per b.N iteration
// and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The -short variants used by the unit
// test suite shrink inputs; benchmarks run the full configuration.
package vanguard_test

import (
	"io"
	"testing"

	"vanguard/internal/harness"
	"vanguard/internal/metrics"
	"vanguard/internal/workload"
)

func benchOptions() harness.Options {
	o := harness.DefaultOptions()
	return o
}

// suiteGeomean runs a whole suite at the given widths and returns the
// per-width geomean speedups.
func suiteGeomean(b *testing.B, suite string, widths []int, bestRef bool) map[int]float64 {
	b.Helper()
	o := benchOptions()
	o.Widths = widths
	rs, err := harness.RunSuite(suite, o)
	if err != nil {
		b.Fatal(err)
	}
	out := map[int]float64{}
	for _, w := range widths {
		var ss []float64
		for _, r := range rs {
			if bestRef {
				ss = append(ss, r.SpeedupBestRefPct(w))
			} else {
				ss = append(ss, r.SpeedupAllRefsPct(w))
			}
		}
		out[w] = metrics.GeomeanSpeedupPct(ss)
	}
	return out
}

// BenchmarkFig2PredictabilityVsBiasInt regenerates Figure 2.
func BenchmarkFig2PredictabilityVsBiasInt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cur, err := harness.BiasPredictabilityCurve("int2006", workload.TrainInput())
		if err != nil {
			b.Fatal(err)
		}
		tail := harness.CurvePoints - 1
		b.ReportMetric(cur.Bias[tail], "tail-bias")
		b.ReportMetric(cur.Predictability[tail], "tail-predictability")
	}
}

// BenchmarkFig3PredictabilityVsBiasFP regenerates Figure 3.
func BenchmarkFig3PredictabilityVsBiasFP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cur, err := harness.BiasPredictabilityCurve("fp2006", workload.TrainInput())
		if err != nil {
			b.Fatal(err)
		}
		tail := harness.CurvePoints - 1
		b.ReportMetric(cur.Bias[tail], "tail-bias")
		b.ReportMetric(cur.Predictability[tail], "tail-predictability")
	}
}

// BenchmarkTable2Metrics regenerates Table 2 (SPEC 2006 INT+FP at 4-wide).
func BenchmarkTable2Metrics(b *testing.B) {
	o := benchOptions()
	o.Widths = []int{4}
	for i := 0; i < b.N; i++ {
		var all []*harness.BenchResult
		for _, s := range []string{"int2006", "fp2006"} {
			rs, err := harness.RunSuite(s, o)
			if err != nil {
				b.Fatal(err)
			}
			all = append(all, rs...)
		}
		harness.WriteTable2(io.Discard, all)
		var spds []float64
		for _, r := range all {
			spds = append(spds, r.SpeedupAllRefsPct(4))
		}
		b.ReportMetric(metrics.GeomeanSpeedupPct(spds), "geomean-spd-%")
	}
}

// BenchmarkFig8SpeedupInt2006 regenerates Figure 8 (all widths, all refs).
func BenchmarkFig8SpeedupInt2006(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := suiteGeomean(b, "int2006", []int{2, 4, 8}, false)
		b.ReportMetric(g[2], "geomean-w2-%")
		b.ReportMetric(g[4], "geomean-w4-%")
		b.ReportMetric(g[8], "geomean-w8-%")
	}
}

// BenchmarkFig9BestRefInt2006 regenerates Figure 9 (best REF input).
func BenchmarkFig9BestRefInt2006(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := suiteGeomean(b, "int2006", []int{4}, true)
		b.ReportMetric(g[4], "geomean-w4-best-%")
	}
}

// BenchmarkFig10SpeedupInt2000 regenerates Figure 10.
func BenchmarkFig10SpeedupInt2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := suiteGeomean(b, "int2000", []int{2, 4, 8}, false)
		b.ReportMetric(g[4], "geomean-w4-%")
	}
}

// BenchmarkFig11BestRefInt2000 regenerates Figure 11.
func BenchmarkFig11BestRefInt2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := suiteGeomean(b, "int2000", []int{4}, true)
		b.ReportMetric(g[4], "geomean-w4-best-%")
	}
}

// BenchmarkFig12SpeedupFP2006 regenerates Figure 12.
func BenchmarkFig12SpeedupFP2006(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := suiteGeomean(b, "fp2006", []int{2, 4, 8}, false)
		b.ReportMetric(g[4], "geomean-w4-%")
	}
}

// BenchmarkFig13SpeedupFP2000 regenerates Figure 13.
func BenchmarkFig13SpeedupFP2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := suiteGeomean(b, "fp2000", []int{2, 4, 8}, false)
		b.ReportMetric(g[4], "geomean-w4-%")
	}
}

// BenchmarkFig14IssuedIncrease regenerates Figure 14.
func BenchmarkFig14IssuedIncrease(b *testing.B) {
	o := benchOptions()
	o.Widths = []int{4}
	for i := 0; i < b.N; i++ {
		rs, err := harness.RunSuite("int2006", o)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rs {
			sum += r.IssuedIncreasePct()
		}
		b.ReportMetric(sum/float64(len(rs)), "mean-issued-increase-%")
	}
}

// BenchmarkSensitivityPredictorLadder regenerates the Section 5.3 study.
func BenchmarkSensitivityPredictorLadder(b *testing.B) {
	o := benchOptions()
	o.Widths = []int{4}
	for i := 0; i < b.N; i++ {
		rows, err := harness.Sensitivity(harness.SensitivityBenchmarks(), o)
		if err != nil {
			b.Fatal(err)
		}
		harness.WriteSensitivity(io.Discard, rows)
		// Headline: speedup gain from the bottom to the top of the ladder,
		// averaged over the four benchmarks.
		per := len(rows) / len(harness.SensitivityBenchmarks())
		gain := 0.0
		for k := 0; k < len(rows); k += per {
			gain += rows[k+per-1].SpeedupPct - rows[k].SpeedupPct
		}
		b.ReportMetric(gain/float64(len(harness.SensitivityBenchmarks())), "ladder-speedup-gain-%")
	}
}

// BenchmarkSec61CodeSizeICache regenerates the Section 6.1 study.
func BenchmarkSec61CodeSizeICache(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunICacheStudy("int2006", o)
		if err != nil {
			b.Fatal(err)
		}
		harness.WriteICacheStudy(io.Discard, rows)
		var ratios []float64
		for _, r := range rows {
			ratios = append(ratios, 1+r.SlowdownPct/100)
		}
		b.ReportMetric((metrics.Geomean(ratios)-1)*100, "geomean-icache-slowdown-%")
	}
}

// benchEngineSuite runs the reduced-input int2006 suite through the
// experiment engine at a fixed worker count, reporting the unit count so
// the per-unit cost is comparable across variants.
func benchEngineSuite(b *testing.B, jobs int) {
	b.Helper()
	o := harness.FastOptions()
	o.Jobs = jobs
	for i := 0; i < b.N; i++ {
		es := &harness.EngineStats{}
		o.EngineStats = es
		if _, err := harness.RunSuite("int2006", o); err != nil {
			b.Fatal(err)
		}
		rep := es.Report()
		b.ReportMetric(float64(rep.Units), "units")
		b.ReportMetric(float64(rep.Jobs), "workers")
	}
}

// BenchmarkEngineSuiteJobs1 and BenchmarkEngineSuiteJobsMax compare the
// same engine job set at one worker vs GOMAXPROCS workers. On a
// multi-core machine the Max variant's wall time should approach
// jobs1/GOMAXPROCS; on one core the pair bounds the worker pool's
// scheduling overhead (the two times should match).
func BenchmarkEngineSuiteJobs1(b *testing.B)   { benchEngineSuite(b, 1) }
func BenchmarkEngineSuiteJobsMax(b *testing.B) { benchEngineSuite(b, 0) }

// BenchmarkTable1Machine measures raw simulator throughput on the Table 1
// configuration — cycles simulated per second on a representative
// benchmark — so substrate performance regressions are visible.
func BenchmarkTable1Machine(b *testing.B) {
	c, _ := workload.ByName("perlbench")
	o := benchOptions()
	o.Widths = []int{4}
	o.Verify = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunBenchmark(c, o); err != nil {
			b.Fatal(err)
		}
	}
}
