// Package vanguard's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (see DESIGN.md's per-experiment index).
// Each benchmark runs the corresponding experiment once per b.N iteration
// and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The -short variants used by the unit
// test suite shrink inputs; benchmarks run the full configuration.
package vanguard_test

import (
	"io"
	"sync"
	"testing"

	"vanguard/internal/harness"
	"vanguard/internal/ir"
	"vanguard/internal/mem"
	"vanguard/internal/metrics"
	"vanguard/internal/pipeline"
	"vanguard/internal/workload"
)

func benchOptions() harness.Options {
	o := harness.DefaultOptions()
	return o
}

// suiteGeomean runs a whole suite at the given widths and returns the
// per-width geomean speedups.
func suiteGeomean(b *testing.B, suite string, widths []int, bestRef bool) map[int]float64 {
	b.Helper()
	o := benchOptions()
	o.Widths = widths
	rs, err := harness.RunSuite(suite, o)
	if err != nil {
		b.Fatal(err)
	}
	out := map[int]float64{}
	for _, w := range widths {
		var ss []float64
		for _, r := range rs {
			if bestRef {
				ss = append(ss, r.SpeedupBestRefPct(w))
			} else {
				ss = append(ss, r.SpeedupAllRefsPct(w))
			}
		}
		out[w] = metrics.GeomeanSpeedupPct(ss)
	}
	return out
}

// BenchmarkFig2PredictabilityVsBiasInt regenerates Figure 2.
func BenchmarkFig2PredictabilityVsBiasInt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cur, err := harness.BiasPredictabilityCurve("int2006", workload.TrainInput())
		if err != nil {
			b.Fatal(err)
		}
		tail := harness.CurvePoints - 1
		b.ReportMetric(cur.Bias[tail], "tail-bias")
		b.ReportMetric(cur.Predictability[tail], "tail-predictability")
	}
}

// BenchmarkFig3PredictabilityVsBiasFP regenerates Figure 3.
func BenchmarkFig3PredictabilityVsBiasFP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cur, err := harness.BiasPredictabilityCurve("fp2006", workload.TrainInput())
		if err != nil {
			b.Fatal(err)
		}
		tail := harness.CurvePoints - 1
		b.ReportMetric(cur.Bias[tail], "tail-bias")
		b.ReportMetric(cur.Predictability[tail], "tail-predictability")
	}
}

// BenchmarkTable2Metrics regenerates Table 2 (SPEC 2006 INT+FP at 4-wide).
func BenchmarkTable2Metrics(b *testing.B) {
	o := benchOptions()
	o.Widths = []int{4}
	for i := 0; i < b.N; i++ {
		var all []*harness.BenchResult
		for _, s := range []string{"int2006", "fp2006"} {
			rs, err := harness.RunSuite(s, o)
			if err != nil {
				b.Fatal(err)
			}
			all = append(all, rs...)
		}
		harness.WriteTable2(io.Discard, all)
		var spds []float64
		for _, r := range all {
			spds = append(spds, r.SpeedupAllRefsPct(4))
		}
		b.ReportMetric(metrics.GeomeanSpeedupPct(spds), "geomean-spd-%")
	}
}

// BenchmarkFig8SpeedupInt2006 regenerates Figure 8 (all widths, all refs).
func BenchmarkFig8SpeedupInt2006(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := suiteGeomean(b, "int2006", []int{2, 4, 8}, false)
		b.ReportMetric(g[2], "geomean-w2-%")
		b.ReportMetric(g[4], "geomean-w4-%")
		b.ReportMetric(g[8], "geomean-w8-%")
	}
}

// BenchmarkFig9BestRefInt2006 regenerates Figure 9 (best REF input).
func BenchmarkFig9BestRefInt2006(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := suiteGeomean(b, "int2006", []int{4}, true)
		b.ReportMetric(g[4], "geomean-w4-best-%")
	}
}

// BenchmarkFig10SpeedupInt2000 regenerates Figure 10.
func BenchmarkFig10SpeedupInt2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := suiteGeomean(b, "int2000", []int{2, 4, 8}, false)
		b.ReportMetric(g[4], "geomean-w4-%")
	}
}

// BenchmarkFig11BestRefInt2000 regenerates Figure 11.
func BenchmarkFig11BestRefInt2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := suiteGeomean(b, "int2000", []int{4}, true)
		b.ReportMetric(g[4], "geomean-w4-best-%")
	}
}

// BenchmarkFig12SpeedupFP2006 regenerates Figure 12.
func BenchmarkFig12SpeedupFP2006(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := suiteGeomean(b, "fp2006", []int{2, 4, 8}, false)
		b.ReportMetric(g[4], "geomean-w4-%")
	}
}

// BenchmarkFig13SpeedupFP2000 regenerates Figure 13.
func BenchmarkFig13SpeedupFP2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := suiteGeomean(b, "fp2000", []int{2, 4, 8}, false)
		b.ReportMetric(g[4], "geomean-w4-%")
	}
}

// BenchmarkFig14IssuedIncrease regenerates Figure 14.
func BenchmarkFig14IssuedIncrease(b *testing.B) {
	o := benchOptions()
	o.Widths = []int{4}
	for i := 0; i < b.N; i++ {
		rs, err := harness.RunSuite("int2006", o)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rs {
			sum += r.IssuedIncreasePct()
		}
		b.ReportMetric(sum/float64(len(rs)), "mean-issued-increase-%")
	}
}

// BenchmarkSensitivityPredictorLadder regenerates the Section 5.3 study.
func BenchmarkSensitivityPredictorLadder(b *testing.B) {
	o := benchOptions()
	o.Widths = []int{4}
	for i := 0; i < b.N; i++ {
		rows, err := harness.Sensitivity(harness.SensitivityBenchmarks(), o)
		if err != nil {
			b.Fatal(err)
		}
		harness.WriteSensitivity(io.Discard, rows)
		// Headline: speedup gain from the bottom to the top of the ladder,
		// averaged over the four benchmarks.
		per := len(rows) / len(harness.SensitivityBenchmarks())
		gain := 0.0
		for k := 0; k < len(rows); k += per {
			gain += rows[k+per-1].SpeedupPct - rows[k].SpeedupPct
		}
		b.ReportMetric(gain/float64(len(harness.SensitivityBenchmarks())), "ladder-speedup-gain-%")
	}
}

// BenchmarkSec61CodeSizeICache regenerates the Section 6.1 study.
func BenchmarkSec61CodeSizeICache(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunICacheStudy("int2006", o)
		if err != nil {
			b.Fatal(err)
		}
		harness.WriteICacheStudy(io.Discard, rows)
		var ratios []float64
		for _, r := range rows {
			ratios = append(ratios, 1+r.SlowdownPct/100)
		}
		b.ReportMetric((metrics.Geomean(ratios)-1)*100, "geomean-icache-slowdown-%")
	}
}

// benchEngineSuite runs the reduced-input int2006 suite through the
// experiment engine at a fixed worker count, reporting the unit count so
// the per-unit cost is comparable across variants.
func benchEngineSuite(b *testing.B, jobs int) {
	b.Helper()
	o := harness.FastOptions()
	o.Jobs = jobs
	for i := 0; i < b.N; i++ {
		es := &harness.EngineStats{}
		o.EngineStats = es
		if _, err := harness.RunSuite("int2006", o); err != nil {
			b.Fatal(err)
		}
		rep := es.Report()
		b.ReportMetric(float64(rep.Units), "units")
		b.ReportMetric(float64(rep.Jobs), "workers")
	}
}

// BenchmarkEngineSuiteJobs1 and BenchmarkEngineSuiteJobsMax compare the
// same engine job set at one worker vs GOMAXPROCS workers. On a
// multi-core machine the Max variant's wall time should approach
// jobs1/GOMAXPROCS; on one core the pair bounds the worker pool's
// scheduling overhead (the two times should match).
func BenchmarkEngineSuiteJobs1(b *testing.B)   { benchEngineSuite(b, 1) }
func BenchmarkEngineSuiteJobsMax(b *testing.B) { benchEngineSuite(b, 0) }

// ---- simulator-core throughput (the BenchmarkSim* suite) ----
//
// These benchmarks measure the single-machine hot path — pipeline.Machine
// cycling one loaded program — as simulated MIPS (committed instructions
// per wall second, in millions). `make bench` runs exactly this suite
// (-bench Sim -benchmem -count 5) against results/bench_baseline.txt, so
// core regressions show up as a diffable drop in sim-MIPS or a nonzero
// rise in allocs/op. The build products (profile, transform, schedule) are
// constructed once and shared; each iteration simulates a fresh machine
// over a fresh memory clone, exactly like one harness simulation unit.

var simSetup struct {
	once      sync.Once
	base, exp *ir.Image
	mem       *mem.Memory
	err       error
}

// simImages builds (once) the baseline and decomposed perlbench binaries
// and the REF memory image the Sim benchmarks run over.
func simImages(b *testing.B) (base, exp *ir.Image, m *mem.Memory) {
	b.Helper()
	s := &simSetup
	s.once.Do(func() {
		c, ok := workload.ByName("perlbench")
		if !ok {
			s.err = io.ErrUnexpectedEOF
			return
		}
		o := harness.FastOptions()
		o.Verify = false
		baseP, expP, _, _, err := harness.BuildBinaries(c, o)
		if err != nil {
			s.err = err
			return
		}
		in := workload.Input{Seed: 202, Iters: 12_000}
		_, refMem := c.Generate(in)
		s.base = c.PatchIters(ir.MustLinearize(baseP), in.Iters)
		s.exp = c.PatchIters(ir.MustLinearize(expP), in.Iters)
		s.mem = refMem
	})
	if s.err != nil {
		b.Fatal(s.err)
	}
	return s.base, s.exp, s.mem
}

// benchSim runs one (image, width) simulation per iteration and reports
// throughput as sim-MIPS.
func benchSim(b *testing.B, im *ir.Image, m *mem.Memory, width int) {
	b.Helper()
	var instrs, cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mach := pipeline.New(im, m.Clone(), pipeline.DefaultConfig(width))
		st, err := mach.Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs += st.Committed
		cycles += st.Cycles
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(instrs)/secs/1e6, "sim-MIPS")
		b.ReportMetric(float64(cycles)/secs/1e6, "sim-Mcyc/s")
	}
}

// BenchmarkSimBaseW2/W4/W8 cycle the baseline (speculated + scheduled)
// binary across the Table 1 widths; BenchmarkSimDecomposedW4 cycles the
// experimental binary, exercising the PREDICT/RESOLVE/DBB paths.
func BenchmarkSimBaseW2(b *testing.B) {
	base, _, m := simImages(b)
	benchSim(b, base, m, 2)
}

func BenchmarkSimBaseW4(b *testing.B) {
	base, _, m := simImages(b)
	benchSim(b, base, m, 4)
}

func BenchmarkSimBaseW8(b *testing.B) {
	base, _, m := simImages(b)
	benchSim(b, base, m, 8)
}

func BenchmarkSimDecomposedW4(b *testing.B) {
	_, exp, m := simImages(b)
	benchSim(b, exp, m, 4)
}

// ---- sweep-shaped throughput (the lane-parallel core's target shape) ----
//
// A sweep is many short, config-identical simulations differing only in
// seed — exactly what ablation ladders and sensitivity studies enumerate
// by the thousands. BenchmarkSimSweepW4 runs a 64-unit sweep through the
// default lane policy; BenchmarkSimSweepScalarW4 forces one-at-a-time
// stepping, so the pair isolates what lane grouping amortizes.
// Both report aggregate sim-MIPS across the whole sweep.

const sweepUnits = 64

var sweepSetup struct {
	once sync.Once
	im   *ir.Image
	mems []*mem.Memory
	err  error
}

// sweepImages builds (once) the shared baseline perlbench binary and one
// REF memory image per sweep unit (a distinct seed each, same iteration
// count — the same-config different-input shape lane groups coalesce).
func sweepImages(b *testing.B) (*ir.Image, []*mem.Memory) {
	b.Helper()
	s := &sweepSetup
	s.once.Do(func() {
		c, ok := workload.ByName("perlbench")
		if !ok {
			s.err = io.ErrUnexpectedEOF
			return
		}
		o := harness.FastOptions()
		o.Verify = false
		baseP, _, _, _, err := harness.BuildBinaries(c, o)
		if err != nil {
			s.err = err
			return
		}
		const iters = 1000
		s.im = c.PatchIters(ir.MustLinearize(baseP), iters)
		for u := 0; u < sweepUnits; u++ {
			_, m := c.Generate(workload.Input{Seed: int64(1000 + u), Iters: iters})
			s.mems = append(s.mems, m)
		}
	})
	if s.err != nil {
		b.Fatal(s.err)
	}
	return s.im, s.mems
}

// benchSimSweep runs the whole 64-unit sweep once per iteration, stepping
// the units in lane groups of the given width (1 = scalar), and reports
// aggregate throughput as sim-MIPS.
func benchSimSweep(b *testing.B, lanes int) {
	b.Helper()
	im, mems := sweepImages(b)
	cfg := pipeline.DefaultConfig(4)
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < len(mems); lo += lanes {
			hi := lo + lanes
			if hi > len(mems) {
				hi = len(mems)
			}
			lm := make([]*mem.Memory, 0, hi-lo)
			for _, m := range mems[lo:hi] {
				lm = append(lm, m.Clone())
			}
			g := pipeline.NewLaneGroup(im, lm, cfg)
			stats, errs := g.Run()
			for li, st := range stats {
				if errs[li] != nil {
					b.Fatal(errs[li])
				}
				instrs += st.Committed
			}
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(instrs)/secs/1e6, "sim-MIPS")
	}
}

func BenchmarkSimSweepScalarW4(b *testing.B) { benchSimSweep(b, 1) }
func BenchmarkSimSweepW4(b *testing.B)       { benchSimSweep(b, pipeline.DefaultLanes) }

// BenchmarkTable1Machine measures raw simulator throughput on the Table 1
// configuration — cycles simulated per second on a representative
// benchmark — so substrate performance regressions are visible.
func BenchmarkTable1Machine(b *testing.B) {
	c, _ := workload.ByName("perlbench")
	o := benchOptions()
	o.Widths = []int{4}
	o.Verify = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunBenchmark(c, o); err != nil {
			b.Fatal(err)
		}
	}
}
