// Command vanguard runs one benchmark end to end: generate, profile on
// TRAIN, build the baseline and decomposed-branch binaries, simulate both
// on the REF inputs, and print the resulting metrics.
//
// Usage:
//
//	vanguard -bench h264ref [-width 4] [-predictor default] [-iters 4000]
//	vanguard -bench mcf -dump          # disassemble both binaries
//	vanguard -list                     # enumerate the SPEC stand-ins
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vanguard/internal/bpred"
	"vanguard/internal/engine"
	"vanguard/internal/harness"
	"vanguard/internal/metrics"
	"vanguard/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vanguard: ")
	var (
		bench     = flag.String("bench", "h264ref", "benchmark name (any SPEC 2000/2006 stand-in)")
		width     = flag.Int("width", 4, "issue width (2, 4 or 8)")
		predictor = flag.String("predictor", "default", "direction predictor: static|bimodal|gshare|default|tage|isl-tage")
		iters     = flag.Int64("iters", 0, "override REF iteration count")
		dump      = flag.Bool("dump", false, "disassemble the baseline and experimental binaries")
		attrF     = flag.Bool("attr", false, "attribute every issue slot to a cause and print the baseline-vs-vanguard cycle stack, per-branch deltas, and offender tables")
		bpredRep  = flag.Bool("bpred-report", false, "probe the predictor on both binaries and print the table-level studies with per-branch predictability classes")
		bpredCSV  = flag.String("bpred-csv", "", "probe the predictor and write every run's per-branch classification as CSV to this file (implies -bpred-report)")
		list      = flag.Bool("list", false, "list available benchmarks and exit")
		progress  = flag.Bool("progress", false, "render a live engine status line on stderr")
		listen    = flag.String("listen", "", "serve live progress over HTTP on this address (e.g. :0): /progress JSON, /metrics Prometheus text, /debug/sweep dashboard, /healthz, /debug/pprof")
		sweepOut  = flag.String("sweep-trace", "", "record the engine flight recording (one span per unit lifecycle phase) and write it as a JSON artifact to this file")
		sweepChr  = flag.String("sweep-chrome", "", "record the engine flight recording and write it as a Chrome trace_event timeline (one track per worker) to this file")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.AllSuites() {
			fmt.Printf("%s:", s)
			for _, c := range workload.Suite(s) {
				fmt.Printf(" %s", c.Name)
			}
			fmt.Println()
		}
		return
	}

	c, ok := workload.ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q (try -list)", *bench)
	}
	o := harness.DefaultOptions()
	o.Widths = []int{*width}
	o.Attr = *attrF
	if *progress || *listen != "" {
		o.Monitor = engine.NewMonitor()
		if *listen != "" {
			addr, closeSrv, err := o.Monitor.Serve(*listen)
			if err != nil {
				log.Fatalf("listen: %v", err)
			}
			defer closeSrv()
			log.Printf("monitor listening on http://%s (/progress, /metrics, /debug/sweep, /debug/bpred, /healthz, /debug/pprof)", addr)
		}
		if *progress {
			stop := o.Monitor.StartStatus(os.Stderr, 0)
			defer stop()
		}
	}
	o.Probe = *bpredRep || *bpredCSV != ""
	if *sweepOut != "" || *sweepChr != "" {
		o.Recorder = engine.NewSweepRecorder()
	}
	if bpred.ByName(*predictor) == nil {
		log.Fatalf("unknown predictor %q", *predictor)
	}
	o.NewPredictor = func() bpred.DirPredictor { return bpred.ByName(*predictor) }
	if *iters > 0 {
		for i := range o.RefInputs {
			o.RefInputs[i].Iters = *iters
		}
	}

	if *dump {
		base, exp, _, rep, err := harness.BuildBinaries(c, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("=== baseline ===")
		fmt.Print(base)
		fmt.Println("=== experimental (decomposed branches) ===")
		fmt.Print(exp)
		fmt.Printf("converted branches: %d, static growth: %.1f%%\n",
			len(rep.Converted), rep.PISCS())
		return
	}

	r, err := harness.RunBenchmark(c, o)
	if err != nil {
		log.Fatal(err)
	}
	row := r.Table2()
	fmt.Printf("benchmark   %s (%s)\n", c.Name, c.Suite)
	fmt.Printf("speedup     %.2f%% (all refs, %d-wide); best ref %.2f%%\n",
		r.SpeedupAllRefsPct(*width), *width, r.SpeedupBestRefPct(*width))
	fmt.Printf("converted   %d of %d forward branches (PBC %.1f%%)\n",
		len(r.Report.Converted), r.Report.ForwardStatic, row.PBC)
	fmt.Printf("PDIH %.1f%%  PHI %.1f%%  ASPCB %.1f  MPPKI %.1f  PISCS %.1f%%\n",
		row.PDIH, row.PHI, row.ASPCB, row.MPPKI, row.PISCS)
	for _, in := range r.Inputs {
		for _, wr := range in.Runs {
			fmt.Printf("input seed %d: base %d cycles (IPC %.3f) -> exp %d cycles (IPC %.3f), %+.2f%%\n",
				in.Input.Seed, wr.Base.Cycles, wr.Base.IPC(), wr.Exp.Cycles, wr.Exp.IPC(),
				metrics.SpeedupPct(wr.Base.Cycles, wr.Exp.Cycles))
		}
	}
	if *attrF && len(r.Inputs) > 0 {
		wr := r.Inputs[0].Runs[0]
		if wr.Base.Attr != nil && wr.Exp.Attr != nil {
			d := &harness.AttrDiff{
				Benchmark: c.Name,
				Width:     *width,
				Input:     r.Inputs[0].Input,
				Base:      wr.Base.Attr,
				Exp:       wr.Exp.Attr,
				Profile:   r.Profile,
				Transform: r.Report,
			}
			fmt.Println()
			harness.WriteAttrDiff(os.Stdout, d, 10)
		}
	}
	if o.Probe && len(r.Inputs) > 0 {
		wr := r.Inputs[0].Runs[0]
		if *bpredRep && wr.Base.Bpred != nil && wr.Exp.Bpred != nil {
			fmt.Println()
			harness.WriteBpredStudy(os.Stdout, fmt.Sprintf("%s/base w%d", c.Name, wr.Width), wr.Base.Bpred, 10)
			harness.WriteBpredStudy(os.Stdout, fmt.Sprintf("%s/exp w%d", c.Name, wr.Width), wr.Exp.Bpred, 10)
		}
		if *bpredCSV != "" {
			f, err := os.Create(*bpredCSV)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := harness.WriteBpredCSV(f, []*harness.BenchResult{r}); err != nil {
				f.Close()
				log.Fatalf("%s: %v", *bpredCSV, err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", *bpredCSV)
		}
	}
	if _, err := harness.WriteSweepArtifacts(o.Recorder, *sweepOut, *sweepChr, o.Cache); err != nil {
		log.Fatal(err)
	}
	if *sweepOut != "" {
		log.Printf("wrote %s", *sweepOut)
	}
	if *sweepChr != "" {
		log.Printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)", *sweepChr)
	}
}
