// Command spec regenerates the paper's suite-level tables and figures:
//
//	spec -table 2           Table 2 (per-benchmark metrics, SPEC 2006)
//	spec -fig 8..13         speedup figures across suites and widths
//	spec -fig 14            issued-instruction increase
//	spec -icache            Section 6.1 (24KB vs 32KB L1-I)
//	spec -csv out.csv       machine-readable dump of everything (flat CSV)
//	spec -json out.json     structured telemetry report for all suites
//	spec -all               all of the above to stdout
//
// Use -fast for a quick smoke run with reduced inputs. Simulations run on
// the experiment engine: -jobs bounds the worker pool, and the
// content-keyed run cache (-cache-dir, -no-cache) reuses simulation
// results across tables, figures, and invocations. Output is byte-stable
// for any -jobs value; only the engine section of -json reports (wall
// times, hit counts) varies.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"vanguard/internal/engine"
	"vanguard/internal/exec"
	"vanguard/internal/harness"
	"vanguard/internal/pipeline"
	"vanguard/internal/sample"
	"vanguard/internal/textplot"
	"vanguard/internal/trace"
	"vanguard/internal/workload"
)

// startProfiles enables CPU/heap profiling per the -cpuprofile and
// -memprofile flags; the returned stop must run on (clean) exit.
func startProfiles(cpu, memf string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if memf != "" {
			f, err := os.Create(memf)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("spec: ")
	var (
		table     = flag.Int("table", 0, "regenerate a table (2)")
		fig       = flag.Int("fig", 0, "regenerate a figure (8-14)")
		icache    = flag.Bool("icache", false, "run the Section 6.1 I-cache study")
		csv       = flag.String("csv", "", "write CSV results for all suites to a file")
		jsonF     = flag.String("json", "", "write a structured telemetry report for all suites to a file")
		report    = flag.String("report", "", "write a consolidated markdown report for all suites to a file")
		all       = flag.Bool("all", false, "run every table and figure")
		fast      = flag.Bool("fast", false, "reduced inputs (quick smoke run)")
		plot      = flag.Bool("plot", false, "also render speedup figures as ASCII bar charts")
		schemaF   = flag.Bool("schema", false, "print the telemetry schema version -json would emit, then exit")
		sampleWin = flag.Int64("sample-window", 0, fmt.Sprintf("record a per-run counter time series every N cycles (0 disables; the conventional window is %d)", sample.DefaultWindow))
		attrF     = flag.Bool("attr", false, "attribute every issue slot to a cause on every simulation; -json reports gain per-run attribution sections (schema "+trace.SchemaV3+")")
		bpredRep  = flag.Bool("bpred-report", false, "probe the predictor on every simulation and print each benchmark's table-level study; -json reports gain per-run bpredstudy sections (schema "+trace.SchemaV6+")")
		bpredCSV  = flag.String("bpred-csv", "", "probe the predictor on every simulation and write the per-branch classifications of all suites as CSV to this file")
		pview     = flag.String("pipeview", "", "capture per-instruction pipeline lifetimes on the named benchmark's simulations; -json reports gain per-run pipeview sections (schema "+trace.SchemaV4+")")
		dispatch  = flag.String("dispatch", "kernels", "instruction dispatch engine: kernels (per-PC compiled at load) or switch (reference exec.Step); results are byte-identical")
		jobs      = flag.Int("jobs", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		lanes     = flag.Int("lanes", 0, fmt.Sprintf("max same-image simulations stepped as one lane group (0 = auto, %d; 1 = scalar); results are byte-identical at any value", pipeline.DefaultLanes))
		cacheDir  = flag.String("cache-dir", engine.DefaultDir(), "on-disk run cache directory")
		noCache   = flag.Bool("no-cache", false, "disable the on-disk run cache")
		progress  = flag.Bool("progress", false, "render a live engine status line on stderr")
		listen    = flag.String("listen", "", "serve live progress over HTTP on this address (e.g. :0): /progress JSON, /metrics Prometheus text, /debug/sweep dashboard, /healthz, /debug/pprof")
		sweepOut  = flag.String("sweep-trace", "", "record the engine flight recording (one span per unit lifecycle phase) and write it as a "+trace.SweepSchema+" JSON artifact to this file; -json reports gain a sweep section (schema "+trace.SchemaV5+")")
		sweepChr  = flag.String("sweep-chrome", "", "record the engine flight recording and write it as a Chrome trace_event timeline (one track per worker) to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to a file")
		memProf   = flag.String("memprofile", "", "write a heap profile to a file on exit")
	)
	flag.Parse()
	if *schemaF {
		// Reports carry the optional sections (and their tags) only when the
		// producing flag is on; bpredstudy (v6) outranks sweep (v5) outranks
		// pipeview (v4) outranks attribution (v3) outranks sampling (v2).
		switch {
		case *bpredRep || *bpredCSV != "":
			fmt.Println(trace.SchemaV6)
		case *sweepOut != "" || *sweepChr != "":
			fmt.Println(trace.SchemaV5)
		case *pview != "":
			fmt.Println(trace.SchemaV4)
		case *attrF:
			fmt.Println(trace.SchemaV3)
		case *sampleWin > 0:
			fmt.Println(trace.SchemaV2)
		default:
			fmt.Println(trace.Schema)
		}
		return
	}
	stopProfiles := startProfiles(*cpuProf, *memProf)
	defer stopProfiles()
	o := harness.DefaultOptions()
	if *fast {
		o = harness.FastOptions()
	}
	disp, err := exec.ParseDispatch(*dispatch)
	if err != nil {
		log.Fatal(err)
	}
	es := &harness.EngineStats{}
	o.Jobs = *jobs
	o.Lanes = *lanes
	o.EngineStats = es
	o.SampleWindow = *sampleWin
	o.Attr = *attrF
	o.Probe = *bpredRep || *bpredCSV != ""
	o.Dispatch = disp
	o.PipeviewBench = *pview
	if !*noCache && *cacheDir != "" {
		c, err := engine.Open(*cacheDir)
		if err != nil {
			log.Printf("warning: run cache disabled: %v", err)
		} else {
			o.Cache = c
		}
	}
	if *progress || *listen != "" {
		o.Monitor = engine.NewMonitor()
		if *listen != "" {
			addr, closeSrv, err := o.Monitor.Serve(*listen)
			if err != nil {
				log.Fatalf("listen: %v", err)
			}
			defer closeSrv()
			log.Printf("monitor listening on http://%s (/progress, /metrics, /debug/sweep, /debug/bpred, /healthz, /debug/pprof)", addr)
		}
		if *progress {
			stop := o.Monitor.StartStatus(os.Stderr, 0)
			defer stop()
		}
	}
	if *sweepOut != "" || *sweepChr != "" {
		o.Recorder = engine.NewSweepRecorder()
	}

	sc := harness.NewSuiteCache(o)
	suite := func(name string) []*harness.BenchResult {
		rs, err := sc.Suite(name)
		if err != nil {
			log.Fatal(err)
		}
		return rs
	}

	runTable2 := func() {
		fmt.Println("Table 2: SPEC 2006 Int and FP metrics (4-wide, all REF inputs)")
		harness.WriteTable2(os.Stdout, append(suite("int2006"), suite("fp2006")...))
	}
	maybePlot := func(title string, rs []*harness.BenchResult) {
		if !*plot {
			return
		}
		var bars []textplot.Bar
		for _, r := range rs {
			bars = append(bars, textplot.Bar{Label: r.Config.Name, Value: r.SpeedupAllRefsPct(4)})
		}
		textplot.Bars(os.Stdout, title+" (4-wide)", bars, 50)
	}
	figures := map[int]func(){
		8: func() {
			harness.WriteSpeedupFigure(os.Stdout,
				"Figure 8: SPEC 2006 Integer % speedup, all REF inputs", suite("int2006"), o.Widths, false)
			maybePlot("Figure 8", suite("int2006"))
		},
		9: func() {
			harness.WriteSpeedupFigure(os.Stdout,
				"Figure 9: SPEC 2006 Integer % speedup, best REF input", suite("int2006"), o.Widths, true)
		},
		10: func() {
			harness.WriteSpeedupFigure(os.Stdout,
				"Figure 10: SPEC 2000 Integer % speedup, all REF inputs", suite("int2000"), o.Widths, false)
		},
		11: func() {
			harness.WriteSpeedupFigure(os.Stdout,
				"Figure 11: SPEC 2000 Integer % speedup, best REF input", suite("int2000"), o.Widths, true)
		},
		12: func() {
			harness.WriteSpeedupFigure(os.Stdout,
				"Figure 12: SPEC 2006 FP % speedup, all REF inputs", suite("fp2006"), o.Widths, false)
			maybePlot("Figure 12", suite("fp2006"))
		},
		13: func() {
			harness.WriteSpeedupFigure(os.Stdout,
				"Figure 13: SPEC 2000 FP % speedup, all REF inputs", suite("fp2000"), o.Widths, false)
		},
		14: func() {
			harness.WriteIssuedFigure(os.Stdout, append(suite("int2006"), suite("fp2006")...))
		},
	}
	runICache := func() {
		rows, err := harness.RunICacheStudy("int2006", o)
		if err != nil {
			log.Fatal(err)
		}
		harness.WriteICacheStudy(os.Stdout, rows)
	}

	did := false
	if *table == 2 {
		runTable2()
		did = true
	}
	if f, ok := figures[*fig]; ok {
		f()
		did = true
	}
	if *icache {
		runICache()
		did = true
	}
	allSuites := func() []*harness.BenchResult {
		var rs []*harness.BenchResult
		for _, s := range workload.AllSuites() {
			rs = append(rs, suite(s)...)
		}
		return rs
	}
	if *bpredRep {
		fmt.Println("Predictor observatory (first REF input):")
		for _, r := range allSuites() {
			wr := r.Inputs[0].Runs[0]
			for _, cand := range r.Inputs[0].Runs {
				if cand.Width == 4 {
					wr = cand
				}
			}
			if wr.Base.Bpred == nil || wr.Exp.Bpred == nil {
				continue
			}
			fmt.Println()
			harness.WriteBpredStudy(os.Stdout, fmt.Sprintf("%s/base w%d", r.Config.Name, wr.Width), wr.Base.Bpred, 5)
			harness.WriteBpredStudy(os.Stdout, fmt.Sprintf("%s/exp w%d", r.Config.Name, wr.Width), wr.Exp.Bpred, 5)
		}
		did = true
	}
	if *bpredCSV != "" {
		f, err := os.Create(*bpredCSV)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := harness.WriteBpredCSV(f, allSuites()); err != nil {
			f.Close()
			log.Fatalf("%s: %v", *bpredCSV, err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *bpredCSV)
		did = true
	}
	if *all {
		runTable2()
		for _, k := range []int{8, 9, 10, 11, 12, 13, 14} {
			fmt.Println()
			figures[k]()
		}
		fmt.Println()
		runICache()
		did = true
	}
	if *csv != "" {
		var all []*harness.BenchResult
		for _, s := range workload.AllSuites() {
			all = append(all, suite(s)...)
		}
		f, err := os.Create(*csv)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		harness.WriteCSV(f, all, o.Widths)
		log.Printf("wrote %s", *csv)
		did = true
	}
	if *jsonF != "" {
		var all []*harness.BenchResult
		for _, s := range workload.AllSuites() {
			all = append(all, suite(s)...)
		}
		rep := harness.JSONReport("spec", all)
		rep.Engine = es.Report()
		if o.Recorder != nil {
			rep.Sweep = o.Recorder.Report()
		}
		if err := rep.WriteFile(*jsonF); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonF)
		did = true
	}
	if *report != "" {
		byName := map[string][]*harness.BenchResult{}
		for _, s := range workload.AllSuites() {
			byName[s] = suite(s)
		}
		f, err := os.Create(*report)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		harness.WriteMarkdownReport(f, byName, o.Widths)
		log.Printf("wrote %s", *report)
		did = true
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
	if _, err := harness.WriteSweepArtifacts(o.Recorder, *sweepOut, *sweepChr, o.Cache); err != nil {
		log.Fatal(err)
	}
	if *sweepOut != "" {
		log.Printf("wrote %s", *sweepOut)
	}
	if *sweepChr != "" {
		log.Printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)", *sweepChr)
	}
	log.Printf("engine: %s", es.Summary())
}
