package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareTwoSided(t *testing.T) {
	base := map[string][]float64{"BenchmarkSimW4": {100, 110}, "BenchmarkSimW8": {200}}
	cur := map[string][]float64{"BenchmarkSimW4": {104}, "BenchmarkSimW8": {150}}
	var sb strings.Builder
	if failed := compare(&sb, base, cur, 10); !failed {
		t.Fatalf("25%% drop on SimW8 must fail the 10%% gate:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("regressed row must be marked:\n%s", out)
	}
	if strings.Count(out, "REGRESSION") != 1 {
		t.Fatalf("only SimW8 regressed:\n%s", out)
	}
}

func TestCompareOneSidedNeverRegresses(t *testing.T) {
	// A benchmark missing from either side must print as new/removed and
	// must not trip the gate — this was the false-regression bug.
	base := map[string][]float64{"BenchmarkSimOld": {100}, "BenchmarkSimBoth": {50}}
	cur := map[string][]float64{"BenchmarkSimNew": {1}, "BenchmarkSimBoth": {50}}
	var sb strings.Builder
	if failed := compare(&sb, base, cur, 10); failed {
		t.Fatalf("one-sided benchmarks must not fail the gate:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "removed") {
		t.Fatalf("baseline-only benchmark must print as removed:\n%s", out)
	}
	if !strings.Contains(out, "new") {
		t.Fatalf("current-only benchmark must print as new:\n%s", out)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := map[string][]float64{"BenchmarkSimZ": {0}}
	cur := map[string][]float64{"BenchmarkSimZ": {10}}
	var sb strings.Builder
	if failed := compare(&sb, base, cur, 10); failed {
		t.Fatalf("zero baseline mean must be skipped, not divided:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "no-base") {
		t.Fatalf("zero baseline must print as no-base:\n%s", sb.String())
	}
}

func TestCompareDeterministicOrder(t *testing.T) {
	base := map[string][]float64{"BenchmarkB": {1}, "BenchmarkD": {1}}
	cur := map[string][]float64{"BenchmarkA": {1}, "BenchmarkC": {1}, "BenchmarkB": {1}}
	var sb strings.Builder
	compare(&sb, base, cur, 10)
	out := sb.String()
	order := []string{"BenchmarkA", "BenchmarkB", "BenchmarkC", "BenchmarkD"}
	last := -1
	for _, n := range order {
		i := strings.Index(out, n)
		if i < 0 {
			t.Fatalf("%s missing from table:\n%s", n, out)
		}
		if i < last {
			t.Fatalf("rows must sort over the union of names:\n%s", out)
		}
		last = i
	}
}

func TestParseBench(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	text := `goos: linux
BenchmarkSimW4-8   	      10	 104042625 ns/op	        12.50 sim-MIPS	       0 B/op
BenchmarkSimW4-8   	      10	 100042625 ns/op	        13.50 sim-MIPS	       0 B/op
BenchmarkSimW8-8   	       5	 204042625 ns/op	         7.25 sim-MIPS
BenchmarkNoMetric-8	      10	 104042625 ns/op
PASS
`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 benchmarks with sim-MIPS, got %v", got)
	}
	if xs := got["BenchmarkSimW4"]; len(xs) != 2 || xs[0] != 12.5 || xs[1] != 13.5 {
		t.Fatalf("BenchmarkSimW4 samples = %v", xs)
	}
	if xs := got["BenchmarkSimW8"]; len(xs) != 1 || xs[0] != 7.25 {
		t.Fatalf("BenchmarkSimW8 samples = %v", xs)
	}
}
